// Cloudcheck is the paper's Figure 1(a) scenario: Bob pays Alice for
// a machine of type T and wants to verify — from packet timings alone
// — that his software really runs on a T and not on a cheaper T'.
//
// Bob's software emits a heartbeat after each unit of memory-heavy
// work. Bob records the execution's log, replays it on a local
// machine of type T, and compares the heartbeat timings: if Alice
// provisioned the promised hardware, they line up; if she secretly
// used the slower T', the observed heartbeats lag far behind the
// replay's.
//
//	go run ./examples/cloudcheck
package main

import (
	"fmt"
	"log"

	"sanity"
)

// src runs rounds of array-walk work and sends a heartbeat after each
// round. The walk's cache behavior is what makes timing depend on the
// machine type.
const src = `
.program cloudcheck
.func main 0 6
    iconst 65536
    newarr int
    store 0
    iconst 0
    store 1              ; round
rounds:
    load 1
    iconst 6
    if_icmpge done
    iconst 0
    store 2
work:
    load 2
    iconst 65536
    if_icmpge beat
    load 0
    load 2
    load 2
    load 1
    imul
    astore
    iinc 2 7
    goto work
beat:
    iconst 4
    newarr byte
    store 3
    load 3
    iconst 0
    load 1
    astore
    load 3
    ncall io.send 1
    pop
    iinc 1 1
    goto rounds
done:
    ret
.end`

func main() {
	prog, err := sanity.Assemble("cloudcheck", src)
	if err != nil {
		log.Fatal(err)
	}

	run := func(machine sanity.MachineSpec, seed uint64) (*sanity.Execution, *sanity.Log) {
		cfg := sanity.DefaultConfig(seed)
		cfg.Machine = machine
		exec, lg, err := sanity.Play(prog, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return exec, lg
	}
	replayOnT := func(lg *sanity.Log, seed uint64) *sanity.Execution {
		cfg := sanity.DefaultConfig(seed)
		cfg.Machine = sanity.Optiplex9020() // Bob's local reference machine of type T
		exec, err := sanity.ReplayTDR(prog, lg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return exec
	}

	fmt.Println("=== case 1: Alice provisions the promised type T ===")
	honest, honestLog := run(sanity.Optiplex9020(), 11)
	honestReplay := replayOnT(honestLog, 12)
	cmp, _ := sanity.Compare(honest, honestReplay)
	fmt.Printf("  observed total: %8.3f ms, replay on T: %8.3f ms, deviation %.3f%%\n",
		float64(honest.TotalPs)/1e9, float64(honestReplay.TotalPs)/1e9, cmp.TotalRelDev*100)
	verdict(cmp.TotalRelDev)

	fmt.Println("=== case 2: Alice secretly runs Bob on the cheaper T' ===")
	cheat, cheatLog := run(sanity.SlowerT(), 21)
	cheatReplay := replayOnT(cheatLog, 22)
	cmp2, _ := sanity.Compare(cheat, cheatReplay)
	fmt.Printf("  observed total: %8.3f ms, replay on T: %8.3f ms, deviation %.1f%%\n",
		float64(cheat.TotalPs)/1e9, float64(cheatReplay.TotalPs)/1e9, cmp2.TotalRelDev*100)
	verdict(cmp2.TotalRelDev)
}

func verdict(dev float64) {
	if dev > 0.05 {
		fmt.Printf("  => timing inconsistent with machine type T (deviation %.1f%%): Bob is NOT getting what he pays for\n\n", dev*100)
	} else {
		fmt.Printf("  => timing consistent with machine type T: the promised hardware\n\n")
	}
}
