// Quickstart: record an execution with Sanity, replay it with time
// determinism, and verify that both the outputs and their timing are
// reproduced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sanity"
)

// src is a small server: it waits for packets, answers each with its
// byte-sum, reads the clock once per request (a nondeterministic
// input that must be logged), and exits when the input stream ends.
const src = `
.program quickstart
.func main 0 5
loop:
    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    ncall sys.nanotime 0
    pop                      ; logged during play, injected during replay
    iconst 0
    store 1
    iconst 0
    store 2
sum:
    load 2
    load 0
    alen
    if_icmpge reply
    load 1
    load 0
    load 2
    aload
    iadd
    store 1
    iinc 2 1
    goto sum
reply:
    iconst 8
    newarr byte
    store 3
    load 3
    iconst 0
    load 1
    iconst 255
    iand
    astore
    load 3
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end`

func main() {
	prog, err := sanity.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	// Three packets arrive at 1 ms, 4 ms, and 9 ms.
	inputs := []sanity.InputEvent{
		{ArrivalPs: 1_000_000_000, Payload: []byte("hello")},
		{ArrivalPs: 4_000_000_000, Payload: []byte("time-deterministic")},
		{ArrivalPs: 9_000_000_000, Payload: []byte("replay")},
	}

	// --- Play: the original execution, recorded into a log. ---
	play, replayLog, err := sanity.Play(prog, inputs, sanity.DefaultConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("play:")
	for _, out := range play.Outputs {
		fmt.Printf("  output %d at %8.3f ms (instr %d)\n", out.Seq, float64(out.TimePs)/1e9, out.Instr)
	}

	// --- Replay: same log, another machine of the same type
	// (different noise seed). ---
	replay, err := sanity.ReplayTDR(prog, replayLog, sanity.DefaultConfig(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay (TDR):")
	for _, out := range replay.Outputs {
		fmt.Printf("  output %d at %8.3f ms (instr %d)\n", out.Seq, float64(out.TimePs)/1e9, out.Instr)
	}

	cmp, err := sanity.Compare(play, replay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutputs match: %v\n", cmp.OutputsMatch)
	fmt.Printf("max inter-packet-delay deviation: %.4f%% (paper's bound: 1.85%%)\n", cmp.MaxRelIPDDev*100)
	fmt.Printf("total time deviation: %.4f%%\n", cmp.TotalRelDev*100)

	// For contrast: conventional (functional-only) replay skips the
	// waits and loses the timing entirely.
	functional, err := sanity.ReplayFunctional(prog, replayLog, sanity.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	fcmp, _ := sanity.Compare(play, functional)
	fmt.Printf("\nfunctional replay (XenTT-style) for comparison:\n")
	fmt.Printf("  outputs still match: %v, but max IPD deviation is %.1f%%\n",
		fcmp.OutputsMatch, fcmp.MaxRelIPDDev*100)
}
