// Quickstart: record an execution with Sanity, replay it with time
// determinism, verify that both the outputs and their timing are
// reproduced — then audit a batch of recordings for covert timing
// channels through the sanity.Auditor session API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sanity"
)

// src is a small server: it waits for packets, answers each with its
// byte-sum, reads the clock once per request (a nondeterministic
// input that must be logged), and exits when the input stream ends.
const src = `
.program quickstart
.func main 0 5
loop:
    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    ncall sys.nanotime 0
    pop                      ; logged during play, injected during replay
    iconst 0
    store 1
    iconst 0
    store 2
sum:
    load 2
    load 0
    alen
    if_icmpge reply
    load 1
    load 0
    load 2
    aload
    iadd
    store 1
    iinc 2 1
    goto sum
reply:
    iconst 8
    newarr byte
    store 3
    load 3
    iconst 0
    load 1
    iconst 255
    iand
    astore
    load 3
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end`

func main() {
	prog, err := sanity.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	// Three packets arrive at 1 ms, 4 ms, and 9 ms.
	inputs := []sanity.InputEvent{
		{ArrivalPs: 1_000_000_000, Payload: []byte("hello")},
		{ArrivalPs: 4_000_000_000, Payload: []byte("time-deterministic")},
		{ArrivalPs: 9_000_000_000, Payload: []byte("replay")},
	}

	// --- Play: the original execution, recorded into a log. ---
	play, replayLog, err := sanity.Play(prog, inputs, sanity.DefaultConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("play:")
	for _, out := range play.Outputs {
		fmt.Printf("  output %d at %8.3f ms (instr %d)\n", out.Seq, float64(out.TimePs)/1e9, out.Instr)
	}

	// --- Replay: same log, another machine of the same type
	// (different noise seed). ---
	replay, err := sanity.ReplayTDR(prog, replayLog, sanity.DefaultConfig(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay (TDR):")
	for _, out := range replay.Outputs {
		fmt.Printf("  output %d at %8.3f ms (instr %d)\n", out.Seq, float64(out.TimePs)/1e9, out.Instr)
	}

	cmp, err := sanity.Compare(play, replay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutputs match: %v\n", cmp.OutputsMatch)
	fmt.Printf("max inter-packet-delay deviation: %.4f%% (paper's bound: 1.85%%)\n", cmp.MaxRelIPDDev*100)
	fmt.Printf("total time deviation: %.4f%%\n", cmp.TotalRelDev*100)

	// For contrast: conventional (functional-only) replay skips the
	// waits and loses the timing entirely.
	functional, err := sanity.ReplayFunctional(prog, replayLog, sanity.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	fcmp, _ := sanity.Compare(play, functional)
	fmt.Printf("\nfunctional replay (XenTT-style) for comparison:\n")
	fmt.Printf("  outputs still match: %v, but max IPD deviation is %.1f%%\n",
		fcmp.OutputsMatch, fcmp.MaxRelIPDDev*100)

	// --- Audit: batches of recordings through the Auditor API. ---
	//
	// One Auditor is built from declarative options and reused; Plan
	// resolves a source of traces (here an in-memory batch; a corpus
	// directory via sanity.CorpusDir works the same) and Run streams
	// verdicts in submission order under a cancellable context.
	audit(prog)
}

// audit records a small labeled batch — benign runs of the quickstart
// server plus one compromised run that stalls every fourth reply —
// and audits it with the session API.
func audit(prog *sanity.Program) {
	const packets = 24
	inputs := func(seed int64) []sanity.InputEvent {
		evs := make([]sanity.InputEvent, packets)
		// A bursty-ish schedule: arrivals accumulate gaps of 2 ms with
		// a 7 ms pause every third packet, phase-shifted per seed so
		// every run is a distinct workload.
		arrival := int64(1_000_000_000)
		for i := range evs {
			evs[i] = sanity.InputEvent{ArrivalPs: arrival, Payload: []byte{byte(i), byte(seed)}}
			gap := int64(2_000_000_000)
			if (int64(i)+seed)%3 == 0 {
				gap = 7_000_000_000
			}
			arrival += gap
		}
		return evs
	}
	play := func(seed uint64, hook sanity.DelayHook) (*sanity.Execution, *sanity.Log) {
		cfg := sanity.DefaultConfig(seed)
		cfg.Hook = hook
		exec, lg, err := sanity.Play(prog, inputs(int64(seed)), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return exec, lg
	}
	// The covert hook: a compromised server leaks a bit by stalling
	// every fourth response 4 ms — invisible in content, visible to TDR.
	covert := func(ctx sanity.DelayCtx) int64 {
		if ctx.PacketIndex%4 != 0 {
			return 0
		}
		return 4_000_000_000 / ctx.PsPerCycle
	}

	batch := &sanity.AuditBatch{}
	var training [][]int64
	for seed := uint64(21); seed <= 23; seed++ {
		exec, _ := play(seed, nil)
		training = append(training, exec.OutputIPDs())
	}
	batch.AddShard(&sanity.AuditShard{
		Key: "quickstart", Prog: prog, Cfg: sanity.DefaultConfig(99), Training: training,
	})
	for seed := uint64(31); seed <= 33; seed++ {
		exec, lg := play(seed, nil)
		batch.Append(sanity.AuditJob{
			ID: fmt.Sprintf("benign-%d", seed), Shard: "quickstart", Label: sanity.AuditLabelBenign,
			Trace: &sanity.Trace{IPDs: exec.OutputIPDs(), Log: lg, Play: exec},
		})
	}
	exec, lg := play(77, covert)
	batch.Append(sanity.AuditJob{
		ID: "compromised", Shard: "quickstart", Label: sanity.AuditLabelCovert,
		Trace: &sanity.Trace{IPDs: exec.OutputIPDs(), Log: lg, Play: exec},
	})

	auditor, err := sanity.NewAuditor(sanity.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	plan, err := auditor.Plan(ctx, sanity.BatchSource(batch))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit (%d traces, %d shard):\n", plan.Info().Jobs, plan.Info().Shards)
	for v, err := range plan.Run(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		mark := "  ok       "
		if v.Suspicious {
			mark = "  SUSPECT  "
		}
		fmt.Printf("%s%-12s tdr-dev %7.4f%%\n", mark, v.JobID, v.TDRScore*100)
	}
}
