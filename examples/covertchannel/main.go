// Covertchannel is the paper's Figure 1(b) scenario, end to end:
// Charlie's NFS server has been compromised with a low-rate "needle"
// timing channel that leaks a password one bit at a time. The
// statistical detectors see nothing unusual; replaying the server's
// log with TDR exposes the channel immediately.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	"sanity"
	"sanity/internal/core"
	"sanity/internal/covert"
	"sanity/internal/detect"
	"sanity/internal/netsim"
	"sanity/internal/nfs"
)

const packets = 260

func main() {
	server := nfs.ServerProgram()
	cfg := func(seed uint64) core.Config {
		c := sanity.DefaultConfig(seed)
		c.Files = nfs.FileStore()
		return c
	}
	record := func(wseed, eseed uint64, hook core.DelayHook) (*core.Execution, *sanity.Log) {
		w := nfs.ClientWorkload(packets, netsim.DefaultThinkTime(), wseed)
		inputs := w.ToServerInputs(netsim.PaperPath(wseed^0xFACE), 0)
		c := cfg(eseed)
		c.Hook = hook
		exec, lg, err := core.Play(server, inputs, c)
		if err != nil {
			log.Fatal(err)
		}
		return exec, lg
	}

	// The adversary trains the channel on legitimate traffic it can
	// observe, then leaks the password one bit per ~30 packets.
	legit, legitLog := record(1000, 2000, nil)
	needle := covert.NewNeedle()
	needle.Period = 30
	secret := covert.BitsFromBytes([]byte("hunter2"))
	fmt.Printf("adversary exfiltrates %q (%d bits, 1 bit / %d packets)\n\n",
		"hunter2", len(secret), needle.Period)

	compromised, compromisedLog := record(1, 2, needle.Hook(secret))

	// --- Statistical detection: train on legitimate traces, score the
	// compromised one. ---
	var training [][]int64
	for i := 0; i < 6; i++ {
		tr, _ := record(3000+uint64(i), 4000+uint64(i), nil)
		training = append(training, tr.OutputIPDs())
	}
	detectors, err := detect.Statistical(training)
	if err != nil {
		log.Fatal(err)
	}
	trace := &detect.Trace{IPDs: compromised.OutputIPDs(), Log: compromisedLog, Play: compromised}
	legitTrace := &detect.Trace{IPDs: legit.OutputIPDs()}
	fmt.Println("statistical detectors (score on compromised vs clean trace):")
	for _, d := range detectors {
		if d.Name() == "regularity" {
			d = detect.NewRegularity(50)
		}
		sc, err := d.Score(trace)
		if err != nil {
			log.Fatal(err)
		}
		sl, err := d.Score(legitTrace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s compromised=%9.4f   clean=%9.4f   (barely distinguishable)\n", d.Name(), sc, sl)
	}

	// --- TDR detection: replay the log on the known-good binary. ---
	fmt.Println("\nSanity/TDR detector (replay the log on a known-good binary):")
	tdr := detect.NewTDR(server, cfg(9999))
	score, err := tdr.Score(trace)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := tdr.Score(&detect.Trace{IPDs: legit.OutputIPDs(), Log: legitLog, Play: legit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  compromised trace: max IPD deviation %7.2f%%  << CHANNEL DETECTED\n", score*100)
	fmt.Printf("  clean trace:       max IPD deviation %7.4f%% (within the <2%% noise floor)\n", clean*100)

	// Bonus: what the receiver actually decodes through WAN jitter.
	client := netsim.DeliverToClient(compromised.Outputs, netsim.PaperPath(5))
	ipds := make([]int64, 0, len(client)-1)
	for i := 1; i < len(client); i++ {
		ipds = append(ipds, client[i]-client[i-1])
	}
	got := needle.Decode(ipds, len(secret))
	fmt.Printf("\nreceiver-side decode accuracy through WAN jitter: %.0f%%\n", covert.Accuracy(secret, got)*100)
}
