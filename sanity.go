// Package sanity is the public API of the Sanity time-deterministic
// replay (TDR) library, a reproduction of "Detecting Covert Timing
// Channels with Time-Deterministic Replay" (Chen et al., OSDI 2014).
//
// The library can:
//
//   - run programs for the Sanity VM (a clean-slate, interpreted,
//     JVM-like bytecode machine) on a deterministic hardware timing
//     model, recording every nondeterministic input in a log;
//
//   - replay such a log with time determinism: the replayed execution
//     reproduces not only the outputs but their virtual timing, to
//     within the residual hardware noise (<2%);
//
//   - audit a machine for covert timing channels by replaying its log
//     on a known-good binary and comparing packet timings (the TDR
//     detector), alongside the four statistical detectors from the
//     literature.
//
// Quick start:
//
//	prog, _ := sanity.Assemble("hello", src)
//	play, log, _ := sanity.Play(prog, inputs, sanity.DefaultConfig(1))
//	replay, _ := sanity.ReplayTDR(prog, log, sanity.DefaultConfig(2))
//	cmp, _ := sanity.Compare(play, replay)
//	fmt.Printf("max IPD deviation: %.3f%%\n", cmp.MaxRelIPDDev*100)
//
// The subsystems live in internal packages: internal/svm (the VM),
// internal/hw (the timing model), internal/core (the TDR engine),
// internal/covert and internal/detect (channels and detectors), and
// internal/experiments (the paper's evaluation). This package
// re-exports the surface a downstream user needs.
package sanity

import (
	"sanity/internal/asm"
	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/replaylog"
	"sanity/internal/svm"
)

// Program is a loaded SVM program.
type Program = svm.Program

// Config describes one execution: machine type, noise profile, seed,
// stable-storage contents, and (for compromised machines) the covert
// delay hook.
type Config = core.Config

// Execution is the observable result of a run: outputs with virtual
// timestamps, the event trace, and hardware statistics.
type Execution = core.Execution

// InputEvent is one scheduled input (arrival time + payload).
type InputEvent = core.InputEvent

// OutputEvent is one captured output.
type OutputEvent = core.OutputEvent

// Log is the record of nondeterministic events written during play.
type Log = replaylog.Log

// TimingComparison relates a replay's timing to the observed one.
type TimingComparison = core.TimingComparison

// MachineSpec describes a machine type T (clock, caches, TLB, DRAM).
type MachineSpec = hw.MachineSpec

// NoiseProfile selects which sources of time noise are active.
type NoiseProfile = hw.NoiseProfile

// DelayHook is the covert channel's send-path primitive.
type DelayHook = core.DelayHook

// DelayCtx is what a DelayHook sees on each outgoing packet.
type DelayCtx = core.DelayCtx

// Assemble parses SVM assembly into a verified program.
func Assemble(name, src string) (*Program, error) {
	return asm.Assemble(name, src)
}

// Disassemble renders a program back to readable assembly.
func Disassemble(p *Program) string {
	return asm.Disassemble(p)
}

// Play runs the original execution and records its log.
func Play(prog *Program, inputs []InputEvent, cfg Config) (*Execution, *Log, error) {
	return core.Play(prog, inputs, cfg)
}

// ReplayTDR reproduces an execution — outputs and timing — from its
// log.
func ReplayTDR(prog *Program, log *Log, cfg Config) (*Execution, error) {
	return core.ReplayTDR(prog, log, cfg)
}

// ReplayFunctional reproduces only the functional behavior, the way
// conventional deterministic-replay systems do; its timing diverges
// from play (paper Figure 3).
func ReplayFunctional(prog *Program, log *Log, cfg Config) (*Execution, error) {
	return core.ReplayFunctional(prog, log, cfg)
}

// Compare aligns a play execution with a replay and summarizes the
// timing deviation; it is the measurement behind the TDR detector.
func Compare(play, replay *Execution) (*TimingComparison, error) {
	return core.Compare(play, replay)
}

// Calibration maps a cross-machine replay's timing onto the recorded
// machine's timebase (scale plus absolute per-IPD allowance); models
// are fitted by the calibration subsystem (`tdraudit calibrate`).
type Calibration = core.Calibration

// CompareCalibrated is Compare for cross-machine audits: the replay
// ran on a different machine type than the recording, and cal maps its
// timing back onto the recorded machine's timebase.
func CompareCalibrated(play, replay *Execution, cal Calibration) (*TimingComparison, error) {
	return core.CompareCalibrated(play, replay, cal)
}

// Optiplex9020 is the paper's testbed machine type.
func Optiplex9020() MachineSpec { return hw.Optiplex9020() }

// SlowerT is a weaker machine type T' for the cloud-verification
// scenario.
func SlowerT() MachineSpec { return hw.SlowerT() }

// ProfileSanity is the full Sanity design: all Table-1 mitigations on.
func ProfileSanity() NoiseProfile { return hw.ProfileSanity() }

// ProfileDirty is an uncontrolled multi-user environment.
func ProfileDirty() NoiseProfile { return hw.ProfileDirty() }

// DefaultConfig returns a ready-to-use Sanity configuration on the
// paper's machine with the given noise seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		MaxSteps: 4_000_000_000,
	}
}

// ---- Concurrent audit pipeline ----
//
// The audit pipeline scales the TDR detector from one execution at a
// time to batches of recorded traces: jobs fan out across a worker
// pool, each worker runs the statistical detectors plus a full
// time-deterministic replay, and verdicts stream back merged into
// submission order — identical in content and order whatever the
// worker count.

// Trace is one observation available to the detectors: inter-packet
// delays, and (for the TDR path) the machine's log and observed
// execution.
type Trace = detect.Trace

// AuditJob is one trace awaiting a verdict.
type AuditJob = pipeline.Job

// AuditShard is one audit population: traces recorded from the same
// program on the same machine profile share one shard, whose detector
// training and binary setup are paid once.
type AuditShard = pipeline.Shard

// AuditBatch is a set of shards plus the jobs to audit against them.
type AuditBatch = pipeline.Batch

// AuditConfig tunes the pipeline: worker count, chunk size, bounded
// queue depth, suspicion thresholds.
type AuditConfig = pipeline.Config

// AuditVerdict is the pipeline's per-trace output.
type AuditVerdict = pipeline.Verdict

// AuditResults is a completed run: ordered verdicts plus aggregate
// metrics (throughput, latency percentiles, confusion counts).
type AuditResults = pipeline.Results

// AuditStream is a running audit delivering verdicts as they merge.
type AuditStream = pipeline.Stream

// AuditLabel is a trace's ground truth, when known.
type AuditLabel = pipeline.Label

// Ground-truth labels for audit jobs.
const (
	AuditLabelUnknown = pipeline.LabelUnknown
	AuditLabelBenign  = pipeline.LabelBenign
	AuditLabelCovert  = pipeline.LabelCovert
)

// AuditPipeline is a reusable audit pipeline; one pipeline may run
// many batches, sequentially or concurrently.
type AuditPipeline = pipeline.Pipeline

// NewAuditPipeline builds a concurrent audit pipeline.
func NewAuditPipeline(cfg AuditConfig) *AuditPipeline {
	return pipeline.New(cfg)
}
