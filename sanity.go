// Package sanity is the public API of the Sanity time-deterministic
// replay (TDR) library, a reproduction of "Detecting Covert Timing
// Channels with Time-Deterministic Replay" (Chen et al., OSDI 2014).
//
// The library can:
//
//   - run programs for the Sanity VM (a clean-slate, interpreted,
//     JVM-like bytecode machine) on a deterministic hardware timing
//     model, recording every nondeterministic input in a log;
//
//   - replay such a log with time determinism: the replayed execution
//     reproduces not only the outputs but their virtual timing, to
//     within the residual hardware noise (<2%);
//
//   - audit a machine for covert timing channels by replaying its log
//     on a known-good binary and comparing packet timings (the TDR
//     detector), alongside the four statistical detectors from the
//     literature.
//
// Quick start:
//
//	prog, _ := sanity.Assemble("hello", src)
//	play, log, _ := sanity.Play(prog, inputs, sanity.DefaultConfig(1))
//	replay, _ := sanity.ReplayTDR(prog, log, sanity.DefaultConfig(2))
//	cmp, _ := sanity.Compare(play, replay)
//	fmt.Printf("max IPD deviation: %.3f%%\n", cmp.MaxRelIPDDev*100)
//
// The subsystems live in internal packages: internal/svm (the VM),
// internal/hw (the timing model), internal/core (the TDR engine),
// internal/covert and internal/detect (channels and detectors), and
// internal/experiments (the paper's evaluation). This package
// re-exports the surface a downstream user needs.
package sanity

import (
	"context"
	"io"
	"log/slog"

	"sanity/internal/asm"
	"sanity/internal/audit"
	"sanity/internal/calib"
	"sanity/internal/core"
	"sanity/internal/daemon"
	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/ingest"
	"sanity/internal/obs"
	"sanity/internal/pipeline"
	"sanity/internal/replaylog"
	"sanity/internal/svm"
	"sanity/internal/triage"
)

// Program is a loaded SVM program.
type Program = svm.Program

// Config describes one execution: machine type, noise profile, seed,
// stable-storage contents, and (for compromised machines) the covert
// delay hook.
type Config = core.Config

// Execution is the observable result of a run: outputs with virtual
// timestamps, the event trace, and hardware statistics.
type Execution = core.Execution

// InputEvent is one scheduled input (arrival time + payload).
type InputEvent = core.InputEvent

// OutputEvent is one captured output.
type OutputEvent = core.OutputEvent

// Log is the record of nondeterministic events written during play.
type Log = replaylog.Log

// TimingComparison relates a replay's timing to the observed one.
type TimingComparison = core.TimingComparison

// MachineSpec describes a machine type T (clock, caches, TLB, DRAM).
type MachineSpec = hw.MachineSpec

// NoiseProfile selects which sources of time noise are active.
type NoiseProfile = hw.NoiseProfile

// DelayHook is the covert channel's send-path primitive.
type DelayHook = core.DelayHook

// DelayCtx is what a DelayHook sees on each outgoing packet.
type DelayCtx = core.DelayCtx

// Assemble parses SVM assembly into a verified program.
func Assemble(name, src string) (*Program, error) {
	return asm.Assemble(name, src)
}

// Disassemble renders a program back to readable assembly.
func Disassemble(p *Program) string {
	return asm.Disassemble(p)
}

// Play runs the original execution and records its log.
func Play(prog *Program, inputs []InputEvent, cfg Config) (*Execution, *Log, error) {
	return core.Play(prog, inputs, cfg)
}

// ReplayTDR reproduces an execution — outputs and timing — from its
// log.
func ReplayTDR(prog *Program, log *Log, cfg Config) (*Execution, error) {
	return core.ReplayTDR(prog, log, cfg)
}

// ReplayFunctional reproduces only the functional behavior, the way
// conventional deterministic-replay systems do; its timing diverges
// from play (paper Figure 3).
func ReplayFunctional(prog *Program, log *Log, cfg Config) (*Execution, error) {
	return core.ReplayFunctional(prog, log, cfg)
}

// Compare aligns a play execution with a replay and summarizes the
// timing deviation; it is the measurement behind the TDR detector.
func Compare(play, replay *Execution) (*TimingComparison, error) {
	return core.Compare(play, replay)
}

// Calibration maps a cross-machine replay's timing onto the recorded
// machine's timebase (scale plus absolute per-IPD allowance); models
// are fitted by the calibration subsystem (`tdraudit calibrate`).
type Calibration = core.Calibration

// CompareCalibrated is Compare for cross-machine audits: the replay
// ran on a different machine type than the recording, and cal maps its
// timing back onto the recorded machine's timebase.
func CompareCalibrated(play, replay *Execution, cal Calibration) (*TimingComparison, error) {
	return core.CompareCalibrated(play, replay, cal)
}

// Optiplex9020 is the paper's testbed machine type.
func Optiplex9020() MachineSpec { return hw.Optiplex9020() }

// SlowerT is a weaker machine type T' for the cloud-verification
// scenario.
func SlowerT() MachineSpec { return hw.SlowerT() }

// ProfileSanity is the full Sanity design: all Table-1 mitigations on.
func ProfileSanity() NoiseProfile { return hw.ProfileSanity() }

// ProfileDirty is an uncontrolled multi-user environment.
func ProfileDirty() NoiseProfile { return hw.ProfileDirty() }

// DefaultConfig returns a ready-to-use Sanity configuration on the
// paper's machine with the given noise seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		MaxSteps: 4_000_000_000,
	}
}

// ---- Concurrent audit pipeline ----
//
// The audit pipeline scales the TDR detector from one execution at a
// time to batches of recorded traces: jobs fan out across a worker
// pool, each worker runs the statistical detectors plus a full
// time-deterministic replay, and verdicts stream back merged into
// submission order — identical in content and order whatever the
// worker count.

// Trace is one observation available to the detectors: inter-packet
// delays, and (for the TDR path) the machine's log and observed
// execution.
type Trace = detect.Trace

// AuditJob is one trace awaiting a verdict.
type AuditJob = pipeline.Job

// AuditShard is one audit population: traces recorded from the same
// program on the same machine profile share one shard, whose detector
// training and binary setup are paid once.
type AuditShard = pipeline.Shard

// AuditBatch is a set of shards plus the jobs to audit against them.
type AuditBatch = pipeline.Batch

// AuditConfig tunes the pipeline: worker count, chunk size, bounded
// queue depth, suspicion thresholds.
type AuditConfig = pipeline.Config

// AuditVerdict is the pipeline's per-trace output.
type AuditVerdict = pipeline.Verdict

// AuditResults is a completed run: ordered verdicts plus aggregate
// metrics (throughput, latency percentiles, confusion counts).
type AuditResults = pipeline.Results

// AuditStream is a running audit delivering verdicts as they merge.
type AuditStream = pipeline.Stream

// AuditLabel is a trace's ground truth, when known.
type AuditLabel = pipeline.Label

// Ground-truth labels for audit jobs.
const (
	AuditLabelUnknown = pipeline.LabelUnknown
	AuditLabelBenign  = pipeline.LabelBenign
	AuditLabelCovert  = pipeline.LabelCovert
)

// AuditPipeline is the legacy audit entry point, kept as a thin shim
// over the Auditor path: its Run/Go methods delegate to the same
// context-aware pipeline core that Auditor plans drive, with a
// background context.
//
// Migration: replace
//
//	p := sanity.NewAuditPipeline(sanity.AuditConfig{Workers: 8, WindowIPDs: 16})
//	results, err := p.Run(batch)
//
// with
//
//	a, _ := sanity.NewAuditor(sanity.WithWorkers(8), sanity.WithWindow(sanity.WindowTrailing(16)))
//	plan, err := a.Plan(ctx, sanity.BatchSource(batch))
//	results, err := plan.RunAll(ctx)
//
// and gain cancellation, streaming iteration (plan.Run), declarative
// cross-machine calibration, and automatic window selection.
type AuditPipeline = pipeline.Pipeline

// NewAuditPipeline builds a concurrent audit pipeline. New code
// should use NewAuditor; see AuditPipeline for the migration shape.
func NewAuditPipeline(cfg AuditConfig) *AuditPipeline {
	return pipeline.New(cfg)
}

// ---- Auditor sessions ----
//
// The Auditor is the one coherent audit surface: built once from
// declarative options, it plans and runs audits over any trace
// source. Windowing, calibration, and storage are properties of the
// plan — not separate code paths — and runs stream verdicts under
// real context cancellation.
//
//	auditor, _ := sanity.NewAuditor(
//	    sanity.WithWorkers(8),
//	    sanity.WithWindow(sanity.WindowAuto(0)),
//	)
//	plan, _ := auditor.Plan(ctx, sanity.CorpusDir("spool"))
//	for v, err := range plan.Run(ctx) {
//	    if err != nil { ... }       // e.g. ErrAuditCanceled
//	    fmt.Println(v.JobID, v.Suspicious)
//	}

// Auditor is a reusable audit session configuration; see NewAuditor.
type Auditor = audit.Auditor

// AuditorOption configures an Auditor (WithWorkers, WithWindow, ...).
type AuditorOption = audit.Option

// AuditPlan is a resolved audit: shards mapped onto known-good
// binaries, calibration applied, windows selected. Run streams
// verdicts; RunAll collects them.
type AuditPlan = audit.Plan

// AuditPlanInfo summarizes a plan before any replay runs.
type AuditPlanInfo = audit.PlanInfo

// AuditSource is where a plan's traces come from (CorpusDir,
// BatchSource, or a custom implementation).
type AuditSource = audit.Source

// AuditProgress is one planning/auditing milestone, delivered to the
// WithProgress callback.
type AuditProgress = audit.Progress

// AuditWindowSpec is a plan's replay-window policy; build one with
// WindowFull, WindowTrailing, or WindowAuto.
type AuditWindowSpec = audit.Window

// AuditIPDWindow is an explicit audited IPD range [From, To).
type AuditIPDWindow = pipeline.IPDWindow

// CalibrationSet is the auditor's fitted time-dilation models, the
// unit calib.json artifacts persist; see LoadCalibrations.
type CalibrationSet = calib.Set

// NewAuditor builds an audit session over the library's known-good
// program registry (the NFS and echo servers of the fixture corpora).
// Options declare everything the old flag soup wired by hand: worker
// pool (WithWorkers), thresholds (WithThresholds), replay windowing
// (WithWindow), cross-machine calibration (WithAuditorMachine +
// WithCalibration), a default corpus (WithStore), and progress
// reporting (WithProgress).
func NewAuditor(opts ...AuditorOption) (*Auditor, error) {
	return audit.New(append([]audit.Option{audit.WithRegistry(fixtures.KnownGood)}, opts...)...)
}

// WithWorkers sets the audit worker-pool size (0 = GOMAXPROCS).
func WithWorkers(n int) AuditorOption { return audit.WithWorkers(n) }

// WithSegmentWorkers lets each trace's replay run its
// checkpoint-bounded segments on up to n goroutines; the merged
// result is verdict-identical to sequential replay (0 or 1 =
// sequential).
func WithSegmentWorkers(n int) AuditorOption { return audit.WithSegmentWorkers(n) }

// WithBatchSize sets the per-chunk job count of the scheduler.
func WithBatchSize(n int) AuditorOption { return audit.WithBatchSize(n) }

// WithQueueDepth bounds the scheduler's chunk queue (0 = 2x workers).
func WithQueueDepth(n int) AuditorOption { return audit.WithQueueDepth(n) }

// WithThresholds sets the TDR and statistical suspicion thresholds
// (0 keeps either default: 0.05 and 3).
func WithThresholds(tdr, stat float64) AuditorOption { return audit.WithThresholds(tdr, stat) }

// WithWindow sets the plan's replay-window policy.
func WithWindow(w AuditWindowSpec) AuditorOption { return audit.WithWindow(w) }

// WithAuditorMachine declares the machine type the auditor owns,
// enabling cross-machine audits through the calibration set.
func WithAuditorMachine(m MachineSpec) AuditorOption { return audit.WithAuditorMachine(m) }

// WithCalibration supplies fitted time-dilation models for
// cross-machine resolution.
func WithCalibration(set *CalibrationSet) AuditorOption { return audit.WithCalibration(set) }

// WithProgress installs a (cheap, synchronous) progress callback.
func WithProgress(fn func(AuditProgress)) AuditorOption { return audit.WithProgress(fn) }

// WithStore sets the default corpus directory audited by
// Plan(ctx, nil).
func WithStore(dir string) AuditorOption { return audit.WithStore(dir) }

// WithWindowSeed lets auto-window planning short-circuit its sliding
// scan when a trace's persisted triage score flags a window that is
// decisive on its own. Off by default: a decisive seed may narrow to
// a different (equally decisive) window than the full scan, so
// seeded verdict streams are not guaranteed byte-identical to
// un-seeded ones.
func WithWindowSeed() AuditorOption { return audit.WithWindowSeed() }

// WithExplain attaches an evidence trail to every verdict: the
// selected replay window and why it was chosen, the CCE z-score per
// scanned window, and a summary of the TDR deviation that decided the
// call. Explain data never changes scores, decisions, or the
// canonical verdict encoding — AuditResults.Canonical() is
// byte-identical with or without it.
func WithExplain() AuditorOption { return audit.WithExplain() }

// WindowFull audits every trace whole (the default).
func WindowFull() AuditWindowSpec { return audit.WindowFull() }

// WindowTrailing audits each trace's trailing n IPDs via windowed
// replay; n <= 0 selects WindowFull, matching the legacy
// Config.WindowIPDs zero meaning.
func WindowTrailing(n int) AuditWindowSpec { return audit.WindowTrailing(n) }

// WindowAuto audits the n-IPD range the CCE prefilter flags as most
// suspicious per trace; traces with no statistical anomaly keep
// whole-trace coverage. n <= 0 selects the default window size.
func WindowAuto(n int) AuditWindowSpec { return audit.WindowAuto(n) }

// CorpusDir audits the persistent corpus recorded or spooled in a
// directory (`tdraudit record` / `tdraudit serve` output).
func CorpusDir(dir string) AuditSource { return audit.Dir(dir) }

// BatchSource audits an in-memory batch that already carries its
// shards' binaries and training material.
func BatchSource(b *AuditBatch) AuditSource { return audit.FromBatch(b) }

// LoadCalibrations reads a corpus directory's calib.json artifact; a
// missing artifact loads as an empty set, so audits needing a pair
// fail with the typed ErrNoModel naming the fix.
func LoadCalibrations(dir string) (*CalibrationSet, error) { return calib.Load(dir) }

// SelectAuditWindow runs the CCE-over-sliding-windows prefilter
// directly: train on a shard's benign traces, flag the most
// suspicious size-IPD range of one trace. ok is false when nothing
// stands out (audit the whole trace); the error matches ErrNoWindow
// when selection cannot run at all.
func SelectAuditWindow(training [][]int64, ipds []int64, size int) (w AuditIPDWindow, ok bool, err error) {
	return audit.SelectWindow(training, ipds, size)
}

// MachineByName resolves a machine-type name ("optiplex9020",
// "slower-t-prime") — the form machine types travel as in corpus
// metadata and calibration artifacts.
func MachineByName(name string) (MachineSpec, error) { return hw.MachineByName(name) }

// AuditBatchFromDir loads a recorded corpus directory into an audit
// batch against the library's known-good registry — the
// store-to-pipeline bridge for callers that want the batch itself.
// ctx cancels the underlying training-trace reads.
func AuditBatchFromDir(ctx context.Context, dir string) (*AuditBatch, error) {
	return audit.Dir(dir).Batch(ctx, fixtures.Resolver)
}

// ---- Audit daemon ----
//
// The daemon is the library's audit-as-a-service deployment: one
// process owning a spool directory, ingesting corpora over TCP, and
// auditing every trace as it lands. Verdicts stream over HTTP as
// NDJSON, metrics in Prometheus text format; manifest audit states
// (pending → claimed → audited/failed) make restarts and concurrent
// daemons safe — a trace is never audited twice.
//
//	auditor, _ := sanity.NewAuditor(sanity.WithWorkers(8))
//	d, _ := sanity.NewAuditDaemon(sanity.DaemonConfig{
//	    Dir:        "spool",
//	    Auditor:    auditor,
//	    IngestAddr: ":7070",
//	    HTTPAddr:   ":7071",
//	})
//	err := d.Run(ctx) // serves until ctx dies, then drains in order

// AuditDaemon is a running audit service; see NewAuditDaemon.
type AuditDaemon = daemon.Daemon

// DaemonConfig wires an AuditDaemon: the spool directory it owns, the
// Auditor that scores claimed traces, the ingest/HTTP listen
// addresses, and the ingest tuning (secret, quotas, idle timeout).
type DaemonConfig = daemon.Config

// IngestOptions tunes an ingest listener: shared secret, per-
// connection quotas, and the idle timeout that cuts stalled uploads.
type IngestOptions = ingest.Options

// NewAuditDaemon opens (or creates) the spool store, reclaims claims
// left by a crashed predecessor, and assembles the daemon; Start/Stop
// or Run serve it.
func NewAuditDaemon(cfg DaemonConfig) (*AuditDaemon, error) {
	return daemon.New(cfg)
}

// ErrIngestIdleTimeout matches a push cut server-side for lack of
// progress (the ingest idle timeout); the typed detail is
// ingest.IdleTimeoutError.
var ErrIngestIdleTimeout = ingest.ErrIdleTimeout

// ---- Ingest triage ----
//
// Triage is the audit funnel's cheap first stage: a streaming
// detector ensemble (sliding-window corrected conditional entropy, a
// regularity/oscillation test, a frequency-domain scan) scores each
// trace's inter-packet delays while it uploads, with bounded memory
// and no trace buffering. The score persists in the store's manifest
// and sidecars, and a triage-enabled daemon claims pending traces in
// descending-suspicion order — TDR replay, the expensive last stage,
// is spent on the most suspicious traces first. Triage ranks; it
// never decides: verdicts still come from the full audit pipeline,
// and a triaged funnel's verdicts are byte-identical to an
// un-triaged one's, ordering aside.
//
//	score := sanity.ScoreTraceIPDs(ipds, sanity.TriageOptions{})
//	fmt.Println(score.Suspicion, sanity.TriageBand(score.Suspicion))

// TriageScore is one trace's persisted triage result: the ensemble
// suspicion in [0,1], each detector's own score, and the flagged
// window.
type TriageScore = triage.Score

// TriageOptions tunes the triage detector ensemble (window geometry,
// CCE parameters); the zero value selects defaults matched to the
// audit planner's window size.
type TriageOptions = triage.Options

// TriageScorer streams one trace's IPDs through the detector
// ensemble; see NewTriageScorer.
type TriageScorer = triage.Scorer

// NeutralSuspicion is the suspicion assumed for traces that were
// never triaged — legacy corpora, disabled scoring, traces too short
// to assess.
const NeutralSuspicion = triage.NeutralSuspicion

// NewTriageScorer builds the streaming detector ensemble for one
// trace; Feed it IPDs in arrival order and Finish it for the Score.
func NewTriageScorer(o TriageOptions) *TriageScorer { return triage.NewScorer(o) }

// ScoreTraceIPDs scores a complete IPD slice through the triage
// ensemble in one call.
func ScoreTraceIPDs(ipds []int64, o TriageOptions) TriageScore { return triage.ScoreIPDs(ipds, o) }

// TriageBand buckets a suspicion score into "low", "neutral", or
// "high" — the census and metrics vocabulary.
func TriageBand(suspicion float64) string { return triage.Band(suspicion) }

// ---- Observability ----
//
// The audit funnel is instrumented end to end: ingest DONE, manifest
// claim, shard resolution, window selection, checkpoint restore,
// replay, compare, and verdict each run under a span carrying wall
// time and an allocated-bytes delta. An Observer placed on the
// context (Observer.Context) switches the instrumentation on; without
// one, every probe is a nil check and the funnel's behavior and
// output are unchanged.
//
//	reg := sanity.NewMetricsRegistry()
//	tr := sanity.NewTracer()
//	o := sanity.NewObserver(tr, sanity.NewStageMetrics(reg))
//	plan, _ := auditor.Plan(o.Context(ctx), nil)
//	... run the plan ...
//	sanity.WriteChromeTrace(f, tr.Drain()) // open in chrome://tracing

// MetricsRegistry is a process-local registry of typed metrics
// (counters, gauges, histograms) rendered in Prometheus text
// exposition format via WritePrometheus.
type MetricsRegistry = obs.Registry

// Tracer collects the spans the instrumented funnel emits.
type Tracer = obs.Tracer

// Observer bundles a Tracer and per-stage metrics; place it on a
// context with Observer.Context to instrument everything downstream.
type Observer = obs.Observer

// SpanRecord is one finished span: identity, tree links, wall time,
// and allocated-bytes attribution.
type SpanRecord = obs.SpanRecord

// StageMetrics are the per-stage latency and allocated-bytes
// histograms (sanity_stage_seconds, sanity_stage_alloc_bytes).
type StageMetrics = obs.StageMetrics

// AuditExplain is a verdict's evidence trail (see WithExplain).
type AuditExplain = pipeline.Explain

// AuditWindowScore is one scanned window's CCE z-score.
type AuditWindowScore = pipeline.WindowScore

// AuditTDRExplain summarizes the TDR timing deviation behind a
// verdict.
type AuditTDRExplain = pipeline.TDRExplain

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns an empty span collector.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewStageMetrics registers the per-stage histograms on reg.
func NewStageMetrics(reg *MetricsRegistry) *StageMetrics { return obs.NewStageMetrics(reg) }

// NewObserver bundles a tracer and stage metrics; either may be nil
// to collect only the other.
func NewObserver(tr *Tracer, stages *StageMetrics) *Observer { return obs.NewObserver(tr, stages) }

// WriteChromeTrace writes spans as Chrome trace_event JSON, openable
// in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error { return obs.WriteChromeTrace(w, spans) }

// WriteTraceNDJSON writes spans as NDJSON, one SpanRecord per line.
func WriteTraceNDJSON(w io.Writer, spans []SpanRecord) error { return obs.WriteNDJSON(w, spans) }

// AuditStages is the canonical audit-funnel stage list, outermost
// first — the stage vocabulary spans, logs, and funnel reports share.
var AuditStages = obs.Stages

// LogOptions configures NewLogHandler: output format ("text" or
// "json"), minimum level, and an optional LogRing tee.
type LogOptions = obs.LogOptions

// LogRing is a bounded in-memory buffer of rendered JSON log records
// (the buffer behind the daemon's GET /logz).
type LogRing = obs.LogRing

// SpanLog is a crash-safe NDJSON span sink with size-based rotation
// (fsync before rename) and bounded retention.
type SpanLog = obs.SpanLog

// SpanLogOptions bounds a SpanLog: rotate size, generations kept,
// optional age cap.
type SpanLogOptions = obs.SpanLogOptions

// TimelineIndex is a bounded per-trace span index: completed span
// trees are filed under each trace they touched, queryable by ID.
type TimelineIndex = obs.TimelineIndex

// FunnelReport decomposes a span set by audit stage: counts, p50/p99
// wall time, allocated bytes, critical-path share.
type FunnelReport = obs.FunnelReport

// StageSummary is one stage's count/wall/alloc totals (the per-stage
// decomposition BENCH_*.json reports carry).
type StageSummary = obs.StageSummary

// StageDelta compares one stage's means between two funnel reports.
type StageDelta = obs.StageDelta

// NewLogHandler returns a correlated slog handler: records logged
// under an instrumented context carry trace/span/stage attributes.
func NewLogHandler(w io.Writer, opts LogOptions) slog.Handler { return obs.NewLogHandler(w, opts) }

// NewLogRing returns a bounded log-record ring (n <= 0 picks the
// default capacity).
func NewLogRing(n int) *LogRing { return obs.NewLogRing(n) }

// ParseLogLevel maps "debug", "info", "warn", "error" onto slog
// levels.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLogLevel(s) }

// SpanFromContext returns the innermost span the instrumented funnel
// opened on ctx, or nil.
func SpanFromContext(ctx context.Context) *obs.Span { return obs.SpanFromContext(ctx) }

// OpenSpanLog opens (or resumes) a rotating span log in dir.
func OpenSpanLog(dir string, opts SpanLogOptions) (*SpanLog, error) {
	return obs.OpenSpanLog(dir, opts)
}

// NewTimelineIndex returns a bounded per-trace span index keeping at
// most maxTraces timelines of maxSpans spans each (<= 0 picks
// defaults).
func NewTimelineIndex(maxTraces, maxSpans int) *TimelineIndex {
	return obs.NewTimelineIndex(maxTraces, maxSpans)
}

// ReadSpanFiles loads persisted span records from one spans.ndjson
// file or a trace dir (rotated generations oldest-first, then the
// active file), tolerating a torn final line.
func ReadSpanFiles(path string) ([]SpanRecord, error) { return obs.ReadSpanFiles(path) }

// BuildFunnelReport decomposes span records into the per-stage audit
// funnel.
func BuildFunnelReport(spans []SpanRecord) *FunnelReport { return obs.BuildFunnelReport(spans) }

// DiffStageSummaries compares per-stage means between a baseline and
// a current decomposition, flagging regressions past tol.
func DiffStageSummaries(base, cur map[string]StageSummary, tol float64) []StageDelta {
	return obs.DiffStageSummaries(base, cur, tol)
}

// ---- Typed audit failures ----
//
// Every refusal an audit can produce is errors.Is-matchable through
// these sentinels, and errors.As recovers the typed detail structs.

// ErrAuditCanceled matches a run canceled through its context before
// every verdict was emitted (typed detail: pipeline CanceledError —
// errors.Is against context.Canceled also holds).
var ErrAuditCanceled = audit.ErrCanceled

// ErrNoWindow matches a window selection that cannot run at all (no
// benign baseline, no usable window size).
var ErrNoWindow = audit.ErrNoWindow

// ErrNoModel matches a cross-machine audit refused because the
// machine pair was never calibrated.
var ErrNoModel = calib.ErrNoModel

// ErrUnknownShard matches a corpus naming a program the known-good
// registry does not carry.
var ErrUnknownShard = fixtures.ErrUnknownShard

// ErrInvalidBatch matches a batch that cannot be audited as
// submitted (a job without trace material or with a dangling shard
// reference).
var ErrInvalidBatch = pipeline.ErrInvalidBatch
