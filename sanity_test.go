package sanity_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"sanity"
)

const echoSrc = `
.program facade-echo
.func main 0 2
loop:
    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    load 0
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end`

func TestFacadePlayReplayRoundTrip(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sanity.InputEvent{
		{ArrivalPs: 1_000_000_000, Payload: []byte("a")},
		{ArrivalPs: 3_000_000_000, Payload: []byte("bb")},
	}
	play, log, err := sanity.Play(prog, inputs, sanity.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sanity.ReplayTDR(prog, log, sanity.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sanity.Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("outputs diverged through the facade")
	}
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("IPD deviation %.4f above 2%%", cmp.MaxRelIPDDev)
	}
}

func TestFacadeFunctionalReplay(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sanity.InputEvent{
		{ArrivalPs: 5_000_000_000, Payload: []byte("x")},
		{ArrivalPs: 25_000_000_000, Payload: []byte("y")},
	}
	play, log, err := sanity.Play(prog, inputs, sanity.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := sanity.ReplayFunctional(prog, log, sanity.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if fr.TotalPs >= play.TotalPs/2 {
		t.Fatalf("functional replay should skip waits: %d vs %d", fr.TotalPs, play.TotalPs)
	}
}

func TestFacadeDisassemble(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := sanity.Disassemble(prog)
	if !strings.Contains(text, "recvblock") || !strings.Contains(text, ".func main") {
		t.Fatalf("disassembly missing expected content:\n%s", text)
	}
}

func TestFacadeMachinePresets(t *testing.T) {
	t7 := sanity.Optiplex9020()
	tp := sanity.SlowerT()
	if t7.ClockGHz <= tp.ClockGHz {
		t.Fatal("T' should be slower than T")
	}
	if err := t7.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sanity.ProfileSanity().Name != "sanity" || sanity.ProfileDirty().Name != "dirty" {
		t.Fatal("profile presets misnamed")
	}
}

// echoInputs builds a seeded bursty input schedule for the echo
// program: gaps wander between ~2 ms and ~20 ms.
func echoInputs(n int, seed int64) []sanity.InputEvent {
	inputs := make([]sanity.InputEvent, n)
	at := int64(0)
	x := seed
	for i := range inputs {
		x = x*6364136223846793005 + 1442695040888963407 // LCG
		gap := 2_000_000_000 + (x>>33)%18_000_000_000
		if gap < 0 {
			gap = -gap
		}
		at += gap
		inputs[i] = sanity.InputEvent{ArrivalPs: at, Payload: []byte{byte(i), byte(seed)}}
	}
	return inputs
}

// TestFacadeAuditPipeline drives the concurrent audit pipeline
// through the public API: benign and compromised echo traces audited
// by a multi-worker pool, with verdicts deterministic across worker
// counts.
func TestFacadeAuditPipeline(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 64
	play := func(seed int64, hook sanity.DelayHook) (*sanity.Execution, *sanity.Log) {
		cfg := sanity.DefaultConfig(uint64(seed))
		cfg.Hook = hook
		exec, log, err := sanity.Play(prog, echoInputs(packets, seed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exec, log
	}
	// Covert hook: stall every other response by 5 ms — far above the
	// replay noise floor.
	covertHook := func(ctx sanity.DelayCtx) int64 {
		if ctx.PacketIndex%2 == 0 {
			return 0
		}
		return 5_000_000_000 / ctx.PsPerCycle
	}

	var training [][]int64
	for seed := int64(1); seed <= 3; seed++ {
		exec, _ := play(seed, nil)
		training = append(training, exec.OutputIPDs())
	}
	batch := &sanity.AuditBatch{}
	batch.AddShard(&sanity.AuditShard{
		Key:      "echo",
		Prog:     prog,
		Cfg:      sanity.DefaultConfig(99),
		Training: training,
	})
	for seed := int64(10); seed < 14; seed++ {
		exec, log := play(seed, nil)
		batch.Append(sanity.AuditJob{
			ID: "benign", Shard: "echo", Label: sanity.AuditLabelBenign,
			Trace: &sanity.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec},
		})
		exec, log = play(seed+100, covertHook)
		batch.Append(sanity.AuditJob{
			ID: "covert", Shard: "echo", Label: sanity.AuditLabelCovert,
			Trace: &sanity.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec},
		})
	}

	serial, err := sanity.NewAuditPipeline(sanity.AuditConfig{Workers: 1}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sanity.NewAuditPipeline(sanity.AuditConfig{Workers: 4, BatchSize: 2}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(serial.Canonical()) != string(parallel.Canonical()) {
		t.Fatalf("verdicts diverged across worker counts:\n%s\nvs\n%s", serial.Canonical(), parallel.Canonical())
	}
	m := parallel.Metrics
	if m.FalsePositives != 0 || m.FalseNegatives != 0 {
		t.Fatalf("confusion: TP %d FP %d TN %d FN %d", m.TruePositives, m.FalsePositives, m.TrueNegatives, m.FalseNegatives)
	}
	if m.TruePositives != 4 || m.TrueNegatives != 4 {
		t.Fatalf("expected 4 TP + 4 TN, got TP %d TN %d", m.TruePositives, m.TrueNegatives)
	}
}

func TestFacadeMachineTypeDetection(t *testing.T) {
	// The cloudcheck scenario through the public API: an execution on
	// T' replayed on T shows a large timing deviation.
	prog, err := sanity.Assemble("work", `
.func main 0 3
    iconst 16384
    newarr int
    store 0
    iconst 0
    store 1
loop:
    load 1
    iconst 16384
    if_icmpge send
    load 0
    load 1
    load 1
    astore
    iinc 1 1
    goto loop
send:
    iconst 1
    newarr byte
    ncall io.send 1
    pop
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	cheatCfg := sanity.DefaultConfig(10)
	cheatCfg.Machine = sanity.SlowerT()
	cheat, log, err := sanity.Play(prog, nil, cheatCfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sanity.ReplayTDR(prog, log, sanity.DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sanity.Compare(cheat, replay)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TotalRelDev < 0.10 {
		t.Fatalf("T' vs T deviation %.3f suspiciously small", cmp.TotalRelDev)
	}
}

// facadeEchoBatch builds the small labeled echo batch the facade
// audit tests share: 3 training runs, 4 benign + 4 covert test
// traces with full TDR material.
func facadeEchoBatch(t *testing.T) *sanity.AuditBatch {
	t.Helper()
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 64
	play := func(seed int64, hook sanity.DelayHook) (*sanity.Execution, *sanity.Log) {
		cfg := sanity.DefaultConfig(uint64(seed))
		cfg.Hook = hook
		exec, log, err := sanity.Play(prog, echoInputs(packets, seed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exec, log
	}
	covertHook := func(ctx sanity.DelayCtx) int64 {
		if ctx.PacketIndex%2 == 0 {
			return 0
		}
		return 5_000_000_000 / ctx.PsPerCycle
	}
	var training [][]int64
	for seed := int64(1); seed <= 3; seed++ {
		exec, _ := play(seed, nil)
		training = append(training, exec.OutputIPDs())
	}
	batch := &sanity.AuditBatch{}
	batch.AddShard(&sanity.AuditShard{
		Key: "echo", Prog: prog, Cfg: sanity.DefaultConfig(99), Training: training,
	})
	for seed := int64(10); seed < 14; seed++ {
		exec, log := play(seed, nil)
		batch.Append(sanity.AuditJob{
			ID: "benign", Shard: "echo", Label: sanity.AuditLabelBenign,
			Trace: &sanity.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec},
		})
		exec, log = play(seed+100, covertHook)
		batch.Append(sanity.AuditJob{
			ID: "covert", Shard: "echo", Label: sanity.AuditLabelCovert,
			Trace: &sanity.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec},
		})
	}
	return batch
}

// TestFacadeAuditor drives the Auditor session API end to end through
// the public surface: plan over an in-memory source, stream verdicts
// through the iterator, and match the legacy AuditPipeline shim's
// canonical stream byte for byte.
func TestFacadeAuditor(t *testing.T) {
	batch := facadeEchoBatch(t)

	legacy, err := sanity.NewAuditPipeline(sanity.AuditConfig{Workers: 2}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}

	auditor, err := sanity.NewAuditor(sanity.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plan, err := auditor.Plan(ctx, sanity.BatchSource(batch))
	if err != nil {
		t.Fatal(err)
	}
	if info := plan.Info(); info.Jobs != 8 || info.Shards != 1 {
		t.Fatalf("plan info = %+v, want 8 jobs over 1 shard", info)
	}
	var verdicts []sanity.AuditVerdict
	for v, err := range plan.Run(ctx) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		verdicts = append(verdicts, v)
	}
	if len(verdicts) != 8 {
		t.Fatalf("streamed %d verdicts, want 8", len(verdicts))
	}
	for i, v := range verdicts {
		if v.Index != i {
			t.Fatalf("verdict %d arrived with index %d — not submission order", i, v.Index)
		}
	}
	r, err := plan.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Canonical()) != string(legacy.Canonical()) {
		t.Fatalf("Auditor stream diverged from the AuditPipeline shim:\n%s\nvs\n%s",
			r.Canonical(), legacy.Canonical())
	}
}

// TestFacadeAuditorCancellation: the public surface propagates the
// typed cancellation error and keeps the emitted prefix. Jobs past
// the first block in their loader until the test cancels, so the run
// is deterministically caught mid-batch.
func TestFacadeAuditorCancellation(t *testing.T) {
	src := facadeEchoBatch(t)
	gate := make(chan struct{})
	batch := &sanity.AuditBatch{Shards: src.Shards}
	for i, job := range src.Jobs {
		i, tr := i, job.Trace
		job.Trace = nil
		job.Load = func() (*sanity.Trace, error) {
			if i > 0 {
				<-gate
			}
			return tr, nil
		}
		batch.Append(job)
	}

	auditor, err := sanity.NewAuditor(sanity.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan, err := auditor.Plan(ctx, sanity.BatchSource(batch))
	if err != nil {
		t.Fatal(err)
	}
	var got []sanity.AuditVerdict
	var runErr error
	var release sync.Once
	for v, err := range plan.Run(ctx) {
		if err != nil {
			runErr = err
			break
		}
		got = append(got, v)
		release.Do(func() {
			cancel()    // after the first verdict...
			close(gate) // ...then release the blocked loaders
		})
	}
	if !errors.Is(runErr, sanity.ErrAuditCanceled) || !errors.Is(runErr, context.Canceled) {
		t.Fatalf("canceled run error = %v, want ErrAuditCanceled and context.Canceled", runErr)
	}
	if len(got) == 0 || len(got) >= len(batch.Jobs) {
		t.Fatalf("canceled run emitted %d verdicts, want a partial stream", len(got))
	}
	for i, v := range got {
		if v.Index != i {
			t.Fatalf("verdict %d has index %d — not an ordered prefix", i, v.Index)
		}
	}
}

// TestFacadeTypedErrors: every public sentinel is errors.Is-matchable
// through public-API calls alone.
func TestFacadeTypedErrors(t *testing.T) {
	// ErrNoWindow from the prefilter.
	if _, _, err := sanity.SelectAuditWindow(nil, make([]int64, 100), 10); !errors.Is(err, sanity.ErrNoWindow) {
		t.Fatalf("SelectAuditWindow with no training = %v, want ErrNoWindow", err)
	}
	// ErrInvalidBatch from a dangling shard reference.
	bad := &sanity.AuditBatch{}
	bad.AddShard(&sanity.AuditShard{Key: "s"})
	bad.Append(sanity.AuditJob{ID: "x", Shard: "nope"})
	auditor, err := sanity.NewAuditor()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := auditor.Plan(context.Background(), sanity.BatchSource(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunAll(context.Background()); !errors.Is(err, sanity.ErrInvalidBatch) {
		t.Fatalf("invalid batch run = %v, want ErrInvalidBatch", err)
	}
	// ErrAuditCanceled from a dead context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := auditor.Plan(ctx, sanity.BatchSource(bad)); !errors.Is(err, sanity.ErrAuditCanceled) {
		t.Fatalf("dead-context plan = %v, want ErrAuditCanceled", err)
	}
	// ErrNoModel / ErrUnknownShard surface from corpus resolution; the
	// cheap public probe is WindowAuto's sibling: a cross-machine
	// auditor with an empty calibration set refuses to even plan a
	// corpus naming another machine (exercised, with a real store, in
	// the internal audit suite — here we pin the sentinels exist and
	// are distinct).
	for _, sentinel := range []error{sanity.ErrNoModel, sanity.ErrUnknownShard} {
		if sentinel == nil {
			t.Fatal("nil public sentinel")
		}
	}
	if errors.Is(sanity.ErrNoModel, sanity.ErrUnknownShard) {
		t.Fatal("ErrNoModel and ErrUnknownShard must be distinct")
	}
}
