package sanity_test

import (
	"strings"
	"testing"

	"sanity"
)

const echoSrc = `
.program facade-echo
.func main 0 2
loop:
    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    load 0
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end`

func TestFacadePlayReplayRoundTrip(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sanity.InputEvent{
		{ArrivalPs: 1_000_000_000, Payload: []byte("a")},
		{ArrivalPs: 3_000_000_000, Payload: []byte("bb")},
	}
	play, log, err := sanity.Play(prog, inputs, sanity.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sanity.ReplayTDR(prog, log, sanity.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sanity.Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("outputs diverged through the facade")
	}
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("IPD deviation %.4f above 2%%", cmp.MaxRelIPDDev)
	}
}

func TestFacadeFunctionalReplay(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sanity.InputEvent{
		{ArrivalPs: 5_000_000_000, Payload: []byte("x")},
		{ArrivalPs: 25_000_000_000, Payload: []byte("y")},
	}
	play, log, err := sanity.Play(prog, inputs, sanity.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := sanity.ReplayFunctional(prog, log, sanity.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if fr.TotalPs >= play.TotalPs/2 {
		t.Fatalf("functional replay should skip waits: %d vs %d", fr.TotalPs, play.TotalPs)
	}
}

func TestFacadeDisassemble(t *testing.T) {
	prog, err := sanity.Assemble("facade-echo", echoSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := sanity.Disassemble(prog)
	if !strings.Contains(text, "recvblock") || !strings.Contains(text, ".func main") {
		t.Fatalf("disassembly missing expected content:\n%s", text)
	}
}

func TestFacadeMachinePresets(t *testing.T) {
	t7 := sanity.Optiplex9020()
	tp := sanity.SlowerT()
	if t7.ClockGHz <= tp.ClockGHz {
		t.Fatal("T' should be slower than T")
	}
	if err := t7.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sanity.ProfileSanity().Name != "sanity" || sanity.ProfileDirty().Name != "dirty" {
		t.Fatal("profile presets misnamed")
	}
}

func TestFacadeMachineTypeDetection(t *testing.T) {
	// The cloudcheck scenario through the public API: an execution on
	// T' replayed on T shows a large timing deviation.
	prog, err := sanity.Assemble("work", `
.func main 0 3
    iconst 16384
    newarr int
    store 0
    iconst 0
    store 1
loop:
    load 1
    iconst 16384
    if_icmpge send
    load 0
    load 1
    load 1
    astore
    iinc 1 1
    goto loop
send:
    iconst 1
    newarr byte
    ncall io.send 1
    pop
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	cheatCfg := sanity.DefaultConfig(10)
	cheatCfg.Machine = sanity.SlowerT()
	cheat, log, err := sanity.Play(prog, nil, cheatCfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sanity.ReplayTDR(prog, log, sanity.DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sanity.Compare(cheat, replay)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TotalRelDev < 0.10 {
		t.Fatalf("T' vs T deviation %.3f suspiciously small", cmp.TotalRelDev)
	}
}
