// Benchmarks regenerating the paper's tables and figures. One
// benchmark (family) exists per evaluation artifact:
//
//	Table 2   -> BenchmarkTable2_*        (engine throughput per kernel)
//	Figure 2  -> BenchmarkFigure2_*       (array zeroing per noise scenario)
//	Figure 3  -> BenchmarkFigure3_*       (functional vs TDR replay)
//	Figure 6  -> BenchmarkFigure6_*       (kernel execution per profile)
//	Figure 7  -> BenchmarkFigure7_*       (NFS play + TDR replay)
//	Figure 8  -> BenchmarkFigure8_*       (detector scoring)
//	§6.5      -> BenchmarkLogSize_*       (log encode/decode)
//	§6.9      -> via BenchmarkFigure7 numbers + netsim jitter
//	Ablations -> BenchmarkAblation_*      (replay with one mitigation off)
//
// go test -bench=. -benchmem prints the full sweep; cmd/tdrbench
// prints the corresponding paper-style tables.
package sanity

import (
	"bytes"
	"fmt"
	"testing"

	"sanity/internal/asm"
	"sanity/internal/calib"
	"sanity/internal/core"
	"sanity/internal/covert"
	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/nfs"
	"sanity/internal/pipeline"
	"sanity/internal/replaylog"
	"sanity/internal/scimark"
	"sanity/internal/store"
	"sanity/internal/svm"
)

// --- Table 2: SciMark kernels on the three engines -----------------

func benchKernelSanity(b *testing.B, name string) {
	k, err := scimark.KernelByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), uint64(i))
		if _, err := scimark.RunVM(k, plat); err != nil {
			b.Fatal(err)
		}
	}
}

func benchKernelInt(b *testing.B, name string) {
	k, err := scimark.KernelByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scimark.RunVM(k, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchKernelJit(b *testing.B, name string) {
	k, err := scimark.KernelByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = k.Native()
	}
	_ = sink
}

func BenchmarkTable2_SOR_Sanity(b *testing.B)    { benchKernelSanity(b, "SOR") }
func BenchmarkTable2_SOR_OracleINT(b *testing.B) { benchKernelInt(b, "SOR") }
func BenchmarkTable2_SOR_OracleJIT(b *testing.B) { benchKernelJit(b, "SOR") }
func BenchmarkTable2_SMM_Sanity(b *testing.B)    { benchKernelSanity(b, "SMM") }
func BenchmarkTable2_SMM_OracleINT(b *testing.B) { benchKernelInt(b, "SMM") }
func BenchmarkTable2_SMM_OracleJIT(b *testing.B) { benchKernelJit(b, "SMM") }
func BenchmarkTable2_MC_Sanity(b *testing.B)     { benchKernelSanity(b, "MC") }
func BenchmarkTable2_MC_OracleINT(b *testing.B)  { benchKernelInt(b, "MC") }
func BenchmarkTable2_MC_OracleJIT(b *testing.B)  { benchKernelJit(b, "MC") }
func BenchmarkTable2_FFT_Sanity(b *testing.B)    { benchKernelSanity(b, "FFT") }
func BenchmarkTable2_FFT_OracleINT(b *testing.B) { benchKernelInt(b, "FFT") }
func BenchmarkTable2_FFT_OracleJIT(b *testing.B) { benchKernelJit(b, "FFT") }
func BenchmarkTable2_LU_Sanity(b *testing.B)     { benchKernelSanity(b, "LU") }
func BenchmarkTable2_LU_OracleINT(b *testing.B)  { benchKernelInt(b, "LU") }
func BenchmarkTable2_LU_OracleJIT(b *testing.B)  { benchKernelJit(b, "LU") }

// --- Figure 2: array zeroing per environment -----------------------

const benchZeroWords = 65536 // 512 kB keeps the bench iteration short

func zeroArrayProgram(b *testing.B) *svm.Program {
	b.Helper()
	src := fmt.Sprintf(`
.func main 0 2
    iconst %[1]d
    newarr int
    store 0
    iconst 0
    store 1
loop:
    load 1
    iconst %[1]d
    if_icmpge done
    load 0
    load 1
    iconst 0
    astore
    iinc 1 1
    goto loop
done:
    ret
.end`, benchZeroWords)
	prog, err := asm.Assemble("zero", src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func benchFigure2(b *testing.B, profile hw.NoiseProfile) {
	prog := zeroArrayProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plat := hw.MustNewPlatform(hw.Optiplex9020(), profile, uint64(i))
		plat.Initialize()
		vm, err := svm.New(prog, nil, svm.Config{Platform: plat})
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_UserNoisy(b *testing.B)   { benchFigure2(b, hw.ProfileUserNoisy()) }
func BenchmarkFigure2_UserQuiet(b *testing.B)   { benchFigure2(b, hw.ProfileUserQuiet()) }
func BenchmarkFigure2_Kernel(b *testing.B)      { benchFigure2(b, hw.ProfileKernel()) }
func BenchmarkFigure2_KernelQuiet(b *testing.B) { benchFigure2(b, hw.ProfileKernelQuiet()) }

// --- Shared NFS trace fixture --------------------------------------

const benchPackets = 40

func benchNFSConfig(seed uint64) core.Config {
	return core.Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		Files:    nfs.FileStore(),
		MaxSteps: 2_000_000_000,
	}
}

func benchNFSTrace(b *testing.B, seed uint64, hook core.DelayHook) (*core.Execution, *replaylog.Log) {
	b.Helper()
	w := nfs.ClientWorkload(benchPackets, netsim.DefaultThinkTime(), seed)
	inputs := w.ToServerInputs(netsim.PaperPath(seed), 0)
	cfg := benchNFSConfig(seed + 1)
	cfg.Hook = hook
	exec, log, err := core.Play(nfs.ServerProgram(), inputs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return exec, log
}

// --- Figure 3: replay flavors --------------------------------------

func BenchmarkFigure3_FunctionalReplay(b *testing.B) {
	_, log := benchNFSTrace(b, 3, nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplayFunctional(nfs.ServerProgram(), log, benchNFSConfig(uint64(i)+100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_TDRReplay(b *testing.B) {
	_, log := benchNFSTrace(b, 3, nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplayTDR(nfs.ServerProgram(), log, benchNFSConfig(uint64(i)+100)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: kernel timing per profile ---------------------------

func benchFigure6(b *testing.B, profile hw.NoiseProfile) {
	k, err := scimark.KernelByName("MC")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plat := hw.MustNewPlatform(hw.Optiplex9020(), profile, uint64(i))
		if _, err := scimark.RunVM(k, plat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_MC_Dirty(b *testing.B)  { benchFigure6(b, hw.ProfileDirty()) }
func BenchmarkFigure6_MC_Clean(b *testing.B)  { benchFigure6(b, hw.ProfileClean()) }
func BenchmarkFigure6_MC_Sanity(b *testing.B) { benchFigure6(b, hw.ProfileSanity()) }

// --- Figure 7: full play + TDR replay audit cycle -------------------

func BenchmarkFigure7_PlayAndReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		play, log := benchNFSTrace(b, uint64(i)*17+1, nil)
		replay, err := core.ReplayTDR(nfs.ServerProgram(), log, benchNFSConfig(uint64(i)+9001))
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := core.Compare(play, replay)
		if err != nil {
			b.Fatal(err)
		}
		if !cmp.OutputsMatch || cmp.MaxRelIPDDev > 0.02 {
			b.Fatalf("replay broke: match=%v dev=%.4f", cmp.OutputsMatch, cmp.MaxRelIPDDev)
		}
	}
}

// --- §6.5: log encode/decode ---------------------------------------

func BenchmarkLogSize_Encode(b *testing.B) {
	_, log := benchNFSTrace(b, 5, nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := log.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogSize_Decode(b *testing.B) {
	_, log := benchNFSTrace(b, 5, nil)
	var buf bytes.Buffer
	if err := log.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := replaylog.Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: detector scoring ------------------------------------

func benchDetector(b *testing.B, name string) {
	play, log := benchNFSTrace(b, 8, nil)
	var training [][]int64
	for i := 0; i < 4; i++ {
		tr, _ := benchNFSTrace(b, 100+uint64(i), nil)
		training = append(training, tr.OutputIPDs())
	}
	ds, err := detect.Statistical(training)
	if err != nil {
		b.Fatal(err)
	}
	var d detect.Detector
	for _, cand := range ds {
		if cand.Name() == name {
			d = cand
		}
	}
	switch name {
	case "regularity":
		d = detect.NewRegularity(10)
	case "sanity-tdr":
		d = detect.NewTDR(nfs.ServerProgram(), benchNFSConfig(777))
	}
	if d == nil {
		b.Fatalf("no detector %s", name)
	}
	trace := &detect.Trace{IPDs: play.OutputIPDs(), Log: log, Play: play}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Score(trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8_ShapeTest(b *testing.B)      { benchDetector(b, "shape") }
func BenchmarkFigure8_KSTest(b *testing.B)         { benchDetector(b, "ks") }
func BenchmarkFigure8_RegularityTest(b *testing.B) { benchDetector(b, "regularity") }
func BenchmarkFigure8_CCETest(b *testing.B)        { benchDetector(b, "cce") }
func BenchmarkFigure8_TDRDetector(b *testing.B)    { benchDetector(b, "sanity-tdr") }

func BenchmarkFigure8_ChannelEncode(b *testing.B) {
	legit := make([]int64, 500)
	for i := range legit {
		legit[i] = int64(5+i%10) * 1_000_000_000
	}
	chans, err := covert.All(legit, 3)
	if err != nil {
		b.Fatal(err)
	}
	hook := chans[2].Hook(covert.RandomBits(64, 4)) // mbctc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hook(core.DelayCtx{PacketIndex: int64(i%200) + 1, TimePs: int64(i) * 7_000_000, LastSendPs: int64(i-1) * 7_000_000, PsPerCycle: 294})
	}
}

// --- Ablations: one Table-1 mitigation off -------------------------

func benchAblation(b *testing.B, mutate func(*hw.NoiseProfile)) {
	profile := hw.ProfileSanity()
	mutate(&profile)
	w := nfs.ClientWorkload(benchPackets, netsim.DefaultThinkTime(), 11)
	inputs := w.ToServerInputs(netsim.PaperPath(11), 0)
	cfg := benchNFSConfig(12)
	cfg.Profile = profile
	play, log, err := core.Play(nfs.ServerProgram(), inputs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	var maxDev float64
	for i := 0; i < b.N; i++ {
		cfgR := cfg
		cfgR.Seed = uint64(i) + 5000
		replay, err := core.ReplayTDR(nfs.ServerProgram(), log, cfgR)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := core.Compare(play, replay)
		if err != nil {
			b.Fatal(err)
		}
		if cmp.MaxRelIPDDev > maxDev {
			maxDev = cmp.MaxRelIPDDev
		}
	}
	b.ReportMetric(maxDev*100, "maxIPDdev%")
}

func BenchmarkAblation_FullSanity(b *testing.B) {
	benchAblation(b, func(p *hw.NoiseProfile) {})
}

func BenchmarkAblation_NoCacheFlush(b *testing.B) {
	benchAblation(b, func(p *hw.NoiseProfile) { p.FlushAtStart = false })
}

func BenchmarkAblation_NoFramePinning(b *testing.B) {
	benchAblation(b, func(p *hw.NoiseProfile) { p.RandomFrames = true })
}

func BenchmarkAblation_NoIOPadding(b *testing.B) {
	benchAblation(b, func(p *hw.NoiseProfile) { p.IOPadding = false })
}

func BenchmarkAblation_NoInterruptConfinement(b *testing.B) {
	benchAblation(b, func(p *hw.NoiseProfile) {
		p.InterruptsEnabled = true
		p.InterruptRate = 1.2
		p.InterruptCycles = 15_000
		p.InterruptEvicts = 80
	})
}

// --- Cross-machine calibrated audit ---------------------------------

// BenchmarkCrossMachine_CalibratedAudit is the §5.2 cloud-verification
// hot path: one trace recorded on the Optiplex testbed, audited by a
// SlowerT-only auditor through a fitted calibration (replay on T',
// rescale, compare with the absolute allowance). Fitting happens once
// in setup; the loop measures the steady-state per-trace audit cost
// that a heterogeneous fleet pays.
func BenchmarkCrossMachine_CalibratedAudit(b *testing.B) {
	var training []*detect.Trace
	for i := 0; i < 2; i++ {
		play, log := benchNFSTrace(b, 300+uint64(i)*7, nil)
		training = append(training, &detect.Trace{IPDs: play.OutputIPDs(), Log: log, Play: play})
	}
	auditorCfg := benchNFSConfig(801)
	auditorCfg.Machine = hw.SlowerT()
	model, err := calib.Fit(nfs.ServerProgram(), auditorCfg, hw.Optiplex9020().Name, training)
	if err != nil {
		b.Fatal(err)
	}
	d := detect.NewCalibratedTDR(nfs.ServerProgram(), auditorCfg, model.Calibration())
	play, log := benchNFSTrace(b, 9, nil)
	trace := &detect.Trace{IPDs: play.OutputIPDs(), Log: log, Play: play}
	limit := 0.05 + model.Slack()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		score, err := d.Score(trace)
		if err != nil {
			b.Fatal(err)
		}
		if score > limit {
			b.Fatalf("benign trace flagged cross-machine: score %.4f > %.4f", score, limit)
		}
	}
}

// --- Audit hot path: windowed replay & shard memoization ------------

// auditBenchBatch records one persisted checkpointed corpus and
// rebuilds the pipeline batch from the store, the repeated-shard
// shape `tdrbench bench` gates in CI (see internal/benchreg for the
// regression harness and BENCH_*.json for the checked-in baseline).
func auditBenchBatch(b *testing.B) *pipeline.Batch {
	b.Helper()
	set, err := fixtures.PlayedSetCheckpointed(fixtures.AuditSizes(10, 60), 12, 4242)
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.Create(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(4242+777)); err != nil {
		b.Fatal(err)
	}
	batch, err := pipeline.BatchFromStore(st, fixtures.Resolver)
	if err != nil {
		b.Fatal(err)
	}
	return batch
}

func benchAudit(b *testing.B, cfg pipeline.Config) {
	batch := auditBenchBatch(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := pipeline.New(cfg).Run(batch)
		if err != nil {
			b.Fatal(err)
		}
		if r.Metrics.Errors > 0 {
			b.Fatalf("audit errors: %+v", r.Metrics)
		}
	}
}

// BenchmarkAudit_FullReplay vs BenchmarkAudit_WindowedReplay is the
// tentpole measurement: same persisted corpus, whole-trace replay vs
// windowed replay resumed from checkpoints (trailing 8 of ~59 IPDs).
// The acceptance criterion is >=2x; `tdrbench bench -check` enforces
// it against the checked-in baseline.
func BenchmarkAudit_FullReplay(b *testing.B)     { benchAudit(b, pipeline.Config{}) }
func BenchmarkAudit_WindowedReplay(b *testing.B) { benchAudit(b, pipeline.Config{WindowIPDs: 8}) }

// BenchmarkAudit_WindowedReference measures the diagnostic mode that
// scores the same windows out of full replays — it should track
// BenchmarkAudit_FullReplay, not the windowed number.
func BenchmarkAudit_WindowedReference(b *testing.B) {
	benchAudit(b, pipeline.Config{WindowIPDs: 8, WindowViaFullReplay: true})
}

// BenchmarkAudit_ParallelWindows adds segment-level parallelism on
// top of windowing: each trace's audited window is replayed as
// checkpoint-bounded segments on up to 4 goroutines, merged with a
// verified one-output overlap at every boundary. Verdicts are
// identical to BenchmarkAudit_WindowedReplay's; the gain scales with
// free cores (GOMAXPROCS), so compare the two at -cpu > 1.
func BenchmarkAudit_ParallelWindows(b *testing.B) {
	benchAudit(b, pipeline.Config{WindowIPDs: 8, SegmentWorkers: 4})
}

// Shard setup: cold (first-seen shard identity — the memo cache is
// emptied each iteration) vs memoized (registry singleton, cache
// hit). Jobless batches, so an iteration is exactly the setup a batch
// pays before its first verdict.
func benchShardSetup(b *testing.B, cold bool) {
	training := fixtures.SyntheticTraining(6, 60, 99)
	prog := nfs.ServerProgram()
	if cold {
		prog = asm.MustAssemble("nfsd", nfs.ServerSource())
	}
	mkBatch := func() *pipeline.Batch {
		bb := &pipeline.Batch{}
		bb.AddShard(&pipeline.Shard{
			Key:      fixtures.DefaultShardKey,
			Prog:     prog,
			Cfg:      fixtures.ServerConfig(777),
			Training: training,
		})
		return bb
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if cold {
			pipeline.ResetShardMemosForTesting()
		}
		batch := mkBatch()
		b.StartTimer()
		if _, err := pipeline.New(pipeline.Config{Workers: 1}).Run(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShard_ColdSetup(b *testing.B)     { benchShardSetup(b, true) }
func BenchmarkShard_MemoizedSetup(b *testing.B) { benchShardSetup(b, false) }

// --- VM micro-benchmarks --------------------------------------------

func BenchmarkVM_InterpreterPlain(b *testing.B) {
	prog, err := asm.Assemble("spin", `
.func main 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 100000
    if_icmpge done
    iinc 0 1
    goto loop
done:
    ret
.end`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm, err := svm.New(prog, nil, svm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVM_InterpreterTimed(b *testing.B) {
	prog, err := asm.Assemble("spin", `
.func main 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 100000
    if_icmpge done
    iinc 0 1
    goto loop
done:
    ret
.end`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), uint64(i))
		vm, err := svm.New(prog, nil, svm.Config{Platform: plat})
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
