package asm

import (
	"fmt"
	"strings"

	"sanity/internal/svm"
)

// Disassemble renders a program back into readable assembly. The
// output is for diagnostics and golden tests; it round-trips through
// Assemble for programs that do not depend on label names.
func Disassemble(p *svm.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".program %s\n", p.Name)
	for _, c := range p.Classes {
		fmt.Fprintf(&sb, ".class %s %s\n", c.Name, strings.Join(c.Fields, " "))
	}
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, ".global %s\n", g)
	}
	for _, f := range p.Funcs {
		flag := ""
		if f.ReturnsValue {
			flag = " retv"
		}
		fmt.Fprintf(&sb, ".func %s %d %d%s\n", f.Name, f.NumParams, f.NumLocals, flag)
		labels := branchTargets(f)
		for pc, in := range f.Code {
			if _, ok := labels[pc]; ok {
				fmt.Fprintf(&sb, "L%d:\n", pc)
			}
			sb.WriteString("    ")
			sb.WriteString(formatInstr(p, f, in))
			sb.WriteByte('\n')
		}
		for _, h := range f.Handlers {
			cls := ""
			if h.Class >= 0 {
				cls = " " + p.Classes[h.Class].Name
			}
			fmt.Fprintf(&sb, ".catch L%d L%d L%d%s ; range [%d,%d) -> %d\n",
				h.Start, h.End, h.Target, cls, h.Start, h.End, h.Target)
		}
		sb.WriteString(".end\n")
	}
	return sb.String()
}

// branchTargets collects every PC that is the target of a branch or
// handler, so the disassembly can label it.
func branchTargets(f *svm.Function) map[int]bool {
	t := make(map[int]bool)
	for _, in := range f.Code {
		switch in.Op {
		case svm.OpGoto, svm.OpIfEq, svm.OpIfNe, svm.OpIfLt, svm.OpIfGe, svm.OpIfGt, svm.OpIfLe,
			svm.OpIfICmpEq, svm.OpIfICmpNe, svm.OpIfICmpLt, svm.OpIfICmpGe, svm.OpIfICmpGt, svm.OpIfICmpLe,
			svm.OpIfNull, svm.OpIfNonNull:
			t[int(in.A)] = true
		}
	}
	for _, h := range f.Handlers {
		t[h.Start] = true
		t[h.End] = true
		t[h.Target] = true
	}
	return t
}

func formatInstr(p *svm.Program, f *svm.Function, in svm.Instr) string {
	op := in.Op
	switch op {
	case svm.OpIConst:
		return fmt.Sprintf("iconst %d", in.A)
	case svm.OpLConst:
		return fmt.Sprintf("lconst %d", p.IntPool[in.A])
	case svm.OpFConst:
		return fmt.Sprintf("fconst %g", p.FloatPool[in.A])
	case svm.OpSConst:
		return fmt.Sprintf("sconst %q", p.StrPool[in.A])
	case svm.OpHalt:
		return fmt.Sprintf("halt %d", in.A)
	case svm.OpLoad, svm.OpStore:
		return fmt.Sprintf("%s %d", op, in.A)
	case svm.OpIInc:
		return fmt.Sprintf("iinc %d %d", in.A, in.B)
	case svm.OpGoto, svm.OpIfEq, svm.OpIfNe, svm.OpIfLt, svm.OpIfGe, svm.OpIfGt, svm.OpIfLe,
		svm.OpIfICmpEq, svm.OpIfICmpNe, svm.OpIfICmpLt, svm.OpIfICmpGe, svm.OpIfICmpGt, svm.OpIfICmpLe,
		svm.OpIfNull, svm.OpIfNonNull:
		return fmt.Sprintf("%s L%d", op, in.A)
	case svm.OpNewArr:
		return fmt.Sprintf("newarr %s", [...]string{"int", "float", "byte", "ref"}[in.A])
	case svm.OpNew:
		return fmt.Sprintf("new %s", p.Classes[in.A].Name)
	case svm.OpGetF, svm.OpPutF:
		return fmt.Sprintf("%s <class> #%d", op, in.A)
	case svm.OpGGet, svm.OpGPut:
		return fmt.Sprintf("%s %s", op, p.Globals[in.A])
	case svm.OpCall:
		return fmt.Sprintf("call %s", p.Funcs[in.A].Name)
	case svm.OpSpawn:
		return fmt.Sprintf("spawn %s", p.Funcs[in.A].Name)
	case svm.OpNCall:
		return fmt.Sprintf("ncall %s %d", p.Natives[in.A], in.B)
	default:
		return op.String()
	}
}
