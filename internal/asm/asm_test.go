package asm

import (
	"strings"
	"testing"

	"sanity/internal/svm"
)

func TestAssembleMinimal(t *testing.T) {
	p, err := Assemble("t", ".func main 0 1\nret\n.end")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "main" {
		t.Fatalf("unexpected program %+v", p)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p, err := Assemble("t", `
.func main 0 1
start:
    iconst 0
    ifeq start
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	code := p.Funcs[0].Code
	if code[1].Op != svm.OpIfEq || code[1].A != 0 {
		t.Fatalf("branch not resolved: %+v", code[1])
	}
}

func TestAssembleForwardReference(t *testing.T) {
	_, err := Assemble("t", `
.func main 0 1
    call helper
    ret
.end
.func helper 0 1
    ret
.end`)
	if err != nil {
		t.Fatalf("forward call failed: %v", err)
	}
}

func TestAssembleBigConstantSpills(t *testing.T) {
	p, err := Assemble("t", ".func main 0 1\niconst 1099511627776\npop\nret\n.end")
	if err != nil {
		t.Fatal(err)
	}
	if p.Funcs[0].Code[0].Op != svm.OpLConst {
		t.Fatalf("big constant did not spill to lconst: %v", p.Funcs[0].Code[0].Op)
	}
	if p.IntPool[p.Funcs[0].Code[0].A] != 1<<40 {
		t.Fatal("pool value wrong")
	}
}

func TestAssembleStringEscape(t *testing.T) {
	p, err := Assemble("t", `.func main 0 1`+"\n"+`sconst "a\nb\"c"`+"\n"+`pop`+"\n"+`ret`+"\n"+`.end`)
	if err != nil {
		t.Fatal(err)
	}
	if p.StrPool[0] != "a\nb\"c" {
		t.Fatalf("escape handling wrong: %q", p.StrPool[0])
	}
}

func TestAssembleClassFields(t *testing.T) {
	p, err := Assemble("t", `
.class Pair first second
.func main 0 1
    new Pair
    iconst 1
    putf Pair second
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	// putf Pair second must resolve to offset 1.
	var putf svm.Instr
	for _, in := range p.Funcs[0].Code {
		if in.Op == svm.OpPutF {
			putf = in
		}
	}
	if putf.A != 1 {
		t.Fatalf("field offset = %d, want 1", putf.A)
	}
}

func TestAssembleCatchDirective(t *testing.T) {
	p, err := Assemble("t", `
.class E code
.func main 0 1
s:
    iconst 1
    pop
e:
    ret
h:
    pop
    ret
.catch s e h E
.end`)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Funcs[0].Handlers
	if len(h) != 1 || h[0].Class != 0 || h[0].Start != 0 {
		t.Fatalf("handler wrong: %+v", h)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknownMnemonic", ".func main 0 1\nbogus\nret\n.end", "unknown mnemonic"},
		{"undefinedLabel", ".func main 0 1\ngoto nowhere\nret\n.end", "undefined label"},
		{"undefinedFunc", ".func main 0 1\ncall nope\nret\n.end", "undefined function"},
		{"undefinedGlobal", ".func main 0 1\ngget nope\npop\nret\n.end", "undefined global"},
		{"undefinedClass", ".func main 0 1\nnew Nope\npop\nret\n.end", "undefined class"},
		{"undefinedField", ".class C x\n.func main 0 1\nnew C\ngetf C y\npop\nret\n.end", "no field"},
		{"dupLabel", ".func main 0 1\na:\nnop\na:\nret\n.end", "duplicate label"},
		{"dupFunc", ".func main 0 1\nret\n.end\n.func main 0 1\nret\n.end", "duplicate function"},
		{"outsideFunc", "iconst 1", "outside .func"},
		{"unterminated", ".func main 0 1\nret", "unterminated"},
		{"badArity", ".func main 0 1\niconst 1 2\nret\n.end", "takes 1 operand"},
		{"unterminatedString", ".func main 0 1\nsconst \"abc\nret\n.end", "unterminated string"},
		{"badArrayKind", ".func main 0 1\niconst 1\nnewarr blob\npop\nret\n.end", "bad array kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("bad", tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestAssembleComments(t *testing.T) {
	_, err := Assemble("t", `
; full-line comment
.func main 0 1  ; trailing comment
    iconst 1    ; another
    pop
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleRoundTripSimple(t *testing.T) {
	src := `
.global g
.func main 0 2
    iconst 0
    store 0
L2:
    load 0
    iconst 10
    if_icmpge L9
    iinc 0 1
    goto L2
    ret
L9:
    ret
.end`
	p1, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble("t", text)
	if err != nil {
		t.Fatalf("reassembly of disassembly failed: %v\n%s", err, text)
	}
	if len(p1.Funcs[0].Code) != len(p2.Funcs[0].Code) {
		t.Fatalf("code length changed: %d vs %d", len(p1.Funcs[0].Code), len(p2.Funcs[0].Code))
	}
	for i := range p1.Funcs[0].Code {
		if p1.Funcs[0].Code[i] != p2.Funcs[0].Code[i] {
			t.Fatalf("instr %d differs: %+v vs %+v", i, p1.Funcs[0].Code[i], p2.Funcs[0].Code[i])
		}
	}
}

func TestSpawnArityFilled(t *testing.T) {
	p, err := Assemble("t", `
.func main 0 1
    iconst 1
    iconst 2
    spawn w
    pop
    ret
.end
.func w 2 2
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	var sp svm.Instr
	for _, in := range p.Funcs[0].Code {
		if in.Op == svm.OpSpawn {
			sp = in
		}
	}
	if sp.B != 2 {
		t.Fatalf("spawn arity = %d, want 2", sp.B)
	}
}

func TestTokenize(t *testing.T) {
	toks, err := tokenize(`  foo "bar baz" 12 ; comment`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1] != "bar baz" {
		t.Fatalf("tokens = %q", toks)
	}
}
