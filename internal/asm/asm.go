// Package asm implements the SVM assembler and disassembler. All
// workloads in this repository — the SciMark kernels, the NFS server,
// the Figure-2 array-zeroing microbenchmark — are written in this
// assembly language rather than hand-built instruction slices, which
// keeps them reviewable and testable.
//
// Syntax (line oriented; ';' starts a comment):
//
//	.program name
//	.class Point x y
//	.global counter
//	.func main 0 3            ; name, nparams, nlocals, optional "retv"
//	loop:                     ; labels end with ':'
//	    iconst 5
//	    store 0
//	    load 0
//	    ifle done
//	    iinc 0 -1
//	    goto loop
//	done:
//	    ret
//	.catch loop done handler  ; optional, plus a class name for typed catch
//	.end
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"sanity/internal/svm"
)

// Error is an assembly error with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble parses source text into a verified SVM program.
func Assemble(name, src string) (*svm.Program, error) {
	a := &assembler{prog: svm.NewProgram(name)}
	if err := a.firstPass(src); err != nil {
		return nil, err
	}
	if err := a.secondPass(src); err != nil {
		return nil, err
	}
	if err := svm.Verify(a.prog); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble for known-good embedded sources; it panics
// on error so workload bugs surface at package-load time in tests.
func MustAssemble(name, src string) *svm.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type pendingFunc struct {
	fn     *svm.Function
	labels map[string]int
	// fixups are instructions whose A operand is a label.
	fixups []fixup
	// catches are .catch directives to resolve after labels are known.
	catches []catchDirective
	line    int
}

type fixup struct {
	pc    int
	label string
	line  int
}

type catchDirective struct {
	start, end, target string
	class              string
	line               int
}

type assembler struct {
	prog *svm.Program
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// firstPass registers classes, globals, and function signatures so
// that forward references (call before definition) resolve.
func (a *assembler) firstPass(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		fields, err := tokenize(raw)
		if err != nil {
			return errf(line, "%v", err)
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".program":
			if len(fields) != 2 {
				return errf(line, ".program takes one name")
			}
			a.prog.Name = fields[1]
		case ".class":
			if len(fields) < 2 {
				return errf(line, ".class needs a name")
			}
			if _, err := a.prog.AddClass(&svm.Class{Name: fields[1], Fields: fields[2:]}); err != nil {
				return errf(line, "%v", err)
			}
		case ".global":
			if len(fields) != 2 {
				return errf(line, ".global takes one name")
			}
			if _, err := a.prog.AddGlobal(fields[1]); err != nil {
				return errf(line, "%v", err)
			}
		case ".func":
			fn, err := parseFuncHeader(fields, line)
			if err != nil {
				return err
			}
			if _, err := a.prog.AddFunction(fn); err != nil {
				return errf(line, "%v", err)
			}
		}
	}
	return nil
}

func parseFuncHeader(fields []string, line int) (*svm.Function, error) {
	if len(fields) < 4 {
		return nil, errf(line, ".func needs name, nparams, nlocals")
	}
	np, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, errf(line, "bad nparams %q", fields[2])
	}
	nl, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, errf(line, "bad nlocals %q", fields[3])
	}
	fn := &svm.Function{Name: fields[1], NumParams: np, NumLocals: nl}
	if len(fields) == 5 {
		if fields[4] != "retv" {
			return nil, errf(line, "unknown func flag %q", fields[4])
		}
		fn.ReturnsValue = true
	} else if len(fields) > 5 {
		return nil, errf(line, "too many .func fields")
	}
	return fn, nil
}

// secondPass emits code.
func (a *assembler) secondPass(src string) error {
	var cur *pendingFunc
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		fields, err := tokenize(raw)
		if err != nil {
			return errf(line, "%v", err)
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".program", ".class", ".global":
			if cur != nil {
				return errf(line, "%s inside .func", fields[0])
			}
			continue
		case ".func":
			if cur != nil {
				return errf(line, "nested .func (missing .end?)")
			}
			idx, _ := a.prog.FuncIndex(fields[1])
			cur = &pendingFunc{
				fn:     a.prog.Funcs[idx],
				labels: make(map[string]int),
				line:   line,
			}
			continue
		case ".end":
			if cur == nil {
				return errf(line, ".end without .func")
			}
			if err := a.finishFunc(cur); err != nil {
				return err
			}
			cur = nil
			continue
		case ".catch":
			if cur == nil {
				return errf(line, ".catch outside .func")
			}
			if len(fields) != 4 && len(fields) != 5 {
				return errf(line, ".catch needs start end target [class]")
			}
			cd := catchDirective{start: fields[1], end: fields[2], target: fields[3], line: line}
			if len(fields) == 5 {
				cd.class = fields[4]
			}
			cur.catches = append(cur.catches, cd)
			continue
		}
		if cur == nil {
			return errf(line, "instruction %q outside .func", fields[0])
		}
		// Labels (possibly several on one line before an instruction).
		for len(fields) > 0 && strings.HasSuffix(fields[0], ":") {
			lbl := strings.TrimSuffix(fields[0], ":")
			if lbl == "" {
				return errf(line, "empty label")
			}
			if _, dup := cur.labels[lbl]; dup {
				return errf(line, "duplicate label %q", lbl)
			}
			cur.labels[lbl] = len(cur.fn.Code)
			fields = fields[1:]
		}
		if len(fields) == 0 {
			continue
		}
		if err := a.emit(cur, fields, line); err != nil {
			return err
		}
	}
	if cur != nil {
		return errf(cur.line, "unterminated .func %s", cur.fn.Name)
	}
	return nil
}

func (a *assembler) finishFunc(pf *pendingFunc) error {
	for _, fx := range pf.fixups {
		pc, ok := pf.labels[fx.label]
		if !ok {
			return errf(fx.line, "undefined label %q", fx.label)
		}
		pf.fn.Code[fx.pc].A = int32(pc)
	}
	for _, cd := range pf.catches {
		start, ok := pf.labels[cd.start]
		if !ok {
			return errf(cd.line, "undefined label %q", cd.start)
		}
		end, ok := pf.labels[cd.end]
		if !ok {
			return errf(cd.line, "undefined label %q", cd.end)
		}
		target, ok := pf.labels[cd.target]
		if !ok {
			return errf(cd.line, "undefined label %q", cd.target)
		}
		cls := -1
		if cd.class != "" {
			ci, ok := a.prog.ClassIndex(cd.class)
			if !ok {
				return errf(cd.line, "undefined class %q", cd.class)
			}
			cls = ci
		}
		pf.fn.Handlers = append(pf.fn.Handlers, svm.Handler{Start: start, End: end, Target: target, Class: cls})
	}
	return nil
}

// emit assembles one instruction line.
func (a *assembler) emit(pf *pendingFunc, fields []string, line int) error {
	mn := fields[0]
	args := fields[1:]
	op, ok := svm.OpcodeByName(mn)
	if !ok {
		return errf(line, "unknown mnemonic %q", mn)
	}
	in := svm.Instr{Op: op}
	emit := func() { pf.fn.Code = append(pf.fn.Code, in) }
	need := func(n int) error {
		if len(args) != n {
			return errf(line, "%s takes %d operand(s), got %d", mn, n, len(args))
		}
		return nil
	}

	switch op {
	case svm.OpNop, svm.OpNullC, svm.OpPop, svm.OpDup, svm.OpSwap,
		svm.OpIAdd, svm.OpISub, svm.OpIMul, svm.OpIDiv, svm.OpIRem, svm.OpINeg,
		svm.OpIShl, svm.OpIShr, svm.OpIUshr, svm.OpIAnd, svm.OpIOr, svm.OpIXor,
		svm.OpFAdd, svm.OpFSub, svm.OpFMul, svm.OpFDiv, svm.OpFNeg,
		svm.OpI2F, svm.OpF2I, svm.OpICmp, svm.OpFCmp,
		svm.OpALoad, svm.OpAStore, svm.OpALen,
		svm.OpRet, svm.OpRetV, svm.OpThrow, svm.OpYield,
		svm.OpMonEnter, svm.OpMonExit:
		if err := need(0); err != nil {
			return err
		}
		emit()

	case svm.OpHalt:
		if len(args) > 1 {
			return errf(line, "halt takes at most one exit code")
		}
		if len(args) == 1 {
			v, err := strconv.ParseInt(args[0], 0, 32)
			if err != nil {
				return errf(line, "bad exit code %q", args[0])
			}
			in.A = int32(v)
		}
		emit()

	case svm.OpIConst:
		if err := need(1); err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[0], 0, 64)
		if err != nil {
			return errf(line, "bad integer %q", args[0])
		}
		if v >= -(1<<31) && v < (1<<31) {
			in.A = int32(v)
			emit()
		} else {
			in.Op = svm.OpLConst
			in.A = int32(a.prog.InternInt(v))
			emit()
		}

	case svm.OpLConst:
		if err := need(1); err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[0], 0, 64)
		if err != nil {
			return errf(line, "bad integer %q", args[0])
		}
		in.A = int32(a.prog.InternInt(v))
		emit()

	case svm.OpFConst:
		if err := need(1); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return errf(line, "bad float %q", args[0])
		}
		in.A = int32(a.prog.InternFloat(v))
		emit()

	case svm.OpSConst:
		if err := need(1); err != nil {
			return err
		}
		in.A = int32(a.prog.InternString(args[0]))
		emit()

	case svm.OpLoad, svm.OpStore:
		if err := need(1); err != nil {
			return err
		}
		slot, err := strconv.Atoi(args[0])
		if err != nil {
			return errf(line, "bad slot %q", args[0])
		}
		in.A = int32(slot)
		emit()

	case svm.OpIInc:
		if err := need(2); err != nil {
			return err
		}
		slot, err := strconv.Atoi(args[0])
		if err != nil {
			return errf(line, "bad slot %q", args[0])
		}
		delta, err := strconv.ParseInt(args[1], 0, 32)
		if err != nil {
			return errf(line, "bad delta %q", args[1])
		}
		in.A = int32(slot)
		in.B = int32(delta)
		emit()

	case svm.OpGoto, svm.OpIfEq, svm.OpIfNe, svm.OpIfLt, svm.OpIfGe, svm.OpIfGt, svm.OpIfLe,
		svm.OpIfICmpEq, svm.OpIfICmpNe, svm.OpIfICmpLt, svm.OpIfICmpGe, svm.OpIfICmpGt, svm.OpIfICmpLe,
		svm.OpIfNull, svm.OpIfNonNull:
		if err := need(1); err != nil {
			return err
		}
		pf.fixups = append(pf.fixups, fixup{pc: len(pf.fn.Code), label: args[0], line: line})
		emit()

	case svm.OpNewArr:
		if err := need(1); err != nil {
			return err
		}
		kind, ok := map[string]int32{"int": svm.ElemInt, "float": svm.ElemFloat, "byte": svm.ElemByte, "ref": svm.ElemRef}[args[0]]
		if !ok {
			return errf(line, "bad array kind %q (want int|float|byte|ref)", args[0])
		}
		in.A = kind
		emit()

	case svm.OpNew:
		if err := need(1); err != nil {
			return err
		}
		ci, ok := a.prog.ClassIndex(args[0])
		if !ok {
			return errf(line, "undefined class %q", args[0])
		}
		in.A = int32(ci)
		emit()

	case svm.OpGetF, svm.OpPutF:
		if err := need(2); err != nil {
			return err
		}
		ci, ok := a.prog.ClassIndex(args[0])
		if !ok {
			return errf(line, "undefined class %q", args[0])
		}
		off := a.prog.Classes[ci].FieldOffset(args[1])
		if off < 0 {
			return errf(line, "class %s has no field %q", args[0], args[1])
		}
		in.A = int32(off)
		emit()

	case svm.OpGGet, svm.OpGPut:
		if err := need(1); err != nil {
			return err
		}
		gi, ok := a.prog.GlobalIndex(args[0])
		if !ok {
			return errf(line, "undefined global %q", args[0])
		}
		in.A = int32(gi)
		emit()

	case svm.OpCall:
		if err := need(1); err != nil {
			return err
		}
		fi, ok := a.prog.FuncIndex(args[0])
		if !ok {
			return errf(line, "undefined function %q", args[0])
		}
		in.A = int32(fi)
		emit()

	case svm.OpSpawn:
		if err := need(1); err != nil {
			return err
		}
		fi, ok := a.prog.FuncIndex(args[0])
		if !ok {
			return errf(line, "undefined function %q", args[0])
		}
		in.A = int32(fi)
		in.B = int32(a.prog.Funcs[fi].NumParams)
		emit()

	case svm.OpNCall:
		if err := need(2); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 {
			return errf(line, "bad native arity %q", args[1])
		}
		in.A = int32(a.prog.InternNative(args[0]))
		in.B = int32(n)
		emit()

	default:
		return errf(line, "mnemonic %q not supported by assembler", mn)
	}
	return nil
}

// tokenize splits a source line into fields, honoring double-quoted
// strings (with \n, \t, \", \\ escapes) and ';' comments.
func tokenize(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			return out, nil
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(line) {
					return nil, fmt.Errorf("unterminated string")
				}
				if line[j] == '\\' {
					if j+1 >= len(line) {
						return nil, fmt.Errorf("dangling escape")
					}
					switch line[j+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '"':
						sb.WriteByte('"')
					case '\\':
						sb.WriteByte('\\')
					default:
						return nil, fmt.Errorf("bad escape \\%c", line[j+1])
					}
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				sb.WriteByte(line[j])
				j++
			}
			out = append(out, sb.String())
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != ';' && line[j] != '\r' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}
