package fixtures_test

import (
	"errors"
	"testing"

	"sanity/internal/calib"
	"sanity/internal/core"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/store"
)

// TestResolverUnknownShardTyped: an unknown program fails with the
// typed sentinel, so callers can distinguish "no known-good binary"
// from a machine mismatch.
func TestResolverUnknownShardTyped(t *testing.T) {
	_, err := fixtures.Resolver(store.ShardMeta{Key: "x", Program: "mystery", Machine: "optiplex9020", Profile: "sanity"})
	if !errors.Is(err, fixtures.ErrUnknownShard) {
		t.Fatalf("unknown program error = %v, want ErrUnknownShard", err)
	}
	var typed *fixtures.UnknownShardError
	if !errors.As(err, &typed) || typed.Program != "mystery" {
		t.Fatalf("errors.As lost the program: %v", err)
	}

	// A machine mismatch is a different failure, not ErrUnknownShard.
	_, err = fixtures.Resolver(store.ShardMeta{Key: "x", Program: "nfsd", Machine: "slower-t-prime", Profile: "sanity"})
	if err == nil || errors.Is(err, fixtures.ErrUnknownShard) {
		t.Fatalf("machine mismatch error = %v, want a non-ErrUnknownShard error", err)
	}
}

// TestCalibratedResolver: same-machine shards pass through without
// calibration, cross-machine shards pick up the model's scale and
// slack, and an uncalibrated pair is refused with the typed
// calib.ErrNoModel.
func TestCalibratedResolver(t *testing.T) {
	auditor := hw.SlowerT()
	models := calib.NewSet()
	models.Add(&calib.Model{
		Program: "nfsd", Recorded: hw.Optiplex9020().Name, Auditor: auditor.Name,
		Scale: 0.645, ResidualSpread: 0.02, AbsSpreadPs: 1000,
	})
	resolve := fixtures.CalibratedResolver(auditor, models)

	// Cross-machine: nfsd recorded on optiplex, audited on slower-t.
	r, err := resolve(store.ShardMeta{Key: "nfsd/optiplex9020/sanity", Program: "nfsd", Machine: "optiplex9020", Profile: "sanity", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cfg.Machine.Name != auditor.Name {
		t.Fatalf("cross-machine audit config uses machine %q, want the auditor's %q", r.Cfg.Machine.Name, auditor.Name)
	}
	if r.TDRCalib.Scale != 0.645 || r.TDRCalib.AbsSlackPs != 2000 || r.TDRSlack <= 0.02 {
		t.Fatalf("calibration not applied: calib=%+v slack=%f", r.TDRCalib, r.TDRSlack)
	}

	// Same machine: echod's canonical type is the auditor's own.
	r, err = resolve(store.ShardMeta{Key: "echod/slower-t-prime/sanity", Program: "echod", Machine: "slower-t-prime", Profile: "sanity", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.TDRCalib != (core.Calibration{}) || r.TDRSlack != 0 {
		t.Fatalf("same-machine shard picked up calibration: %+v", r)
	}

	// Unknown pair: an optiplex auditor with no model for slower-t
	// recordings must refuse, typed.
	reverse := fixtures.CalibratedResolver(hw.Optiplex9020(), calib.NewSet())
	_, err = reverse(store.ShardMeta{Key: "echod/slower-t-prime/sanity", Program: "echod", Machine: "slower-t-prime", Profile: "sanity", Seed: 7})
	if !errors.Is(err, calib.ErrNoModel) {
		t.Fatalf("uncalibrated pair error = %v, want ErrNoModel", err)
	}
	var noModel *calib.NoModelError
	if !errors.As(err, &noModel) || noModel.Recorded != "slower-t-prime" || noModel.Auditor != "optiplex9020" {
		t.Fatalf("errors.As lost the pair: %v", err)
	}

	// Unknown program still surfaces ErrUnknownShard through the
	// calibrated path.
	_, err = resolve(store.ShardMeta{Key: "x", Program: "mystery", Machine: "optiplex9020", Profile: "sanity"})
	if !errors.Is(err, fixtures.ErrUnknownShard) {
		t.Fatalf("unknown program error = %v, want ErrUnknownShard", err)
	}
}

// TestMachineByName: the hw registry resolves both known types and
// refuses unknown names instead of guessing a spec.
func TestMachineByName(t *testing.T) {
	for _, want := range hw.KnownMachines() {
		got, err := hw.MachineByName(want.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != want.Name || got.ClockGHz != want.ClockGHz {
			t.Fatalf("MachineByName(%q) = %+v", want.Name, got)
		}
	}
	if _, err := hw.MachineByName("quantum-mainframe"); err == nil {
		t.Fatal("unknown machine name resolved")
	}
}
