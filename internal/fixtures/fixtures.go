// Package fixtures builds the labeled trace sets shared by the
// detector tests, the pipeline tests, and the audit tooling. Two
// tiers are provided:
//
//   - Synthetic IPD traces: cheap, IPDs only (no log, no execution),
//     enough for the four statistical detectors. Benign traces follow
//     the bursty think-time model of internal/netsim; covert traces
//     apply a channel's delay hook over a natural schedule.
//
//   - Played traces: full record/replay material — the NFS server is
//     actually executed under internal/core, producing the execution
//     and its replay log — enough for the TDR detector and the audit
//     pipeline's end-to-end path.
//
// Everything is seed-deterministic: the same arguments produce the
// same traces, which is what lets the pipeline tests demand
// byte-identical results across worker counts.
package fixtures

import (
	"fmt"

	"sanity/internal/core"
	"sanity/internal/covert"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/nfs"
	"sanity/internal/pipeline"
	"sanity/internal/replaylog"
	"sanity/internal/svm"
)

// Label aliases the pipeline's ground-truth labels; fixtures are the
// labeled population the pipeline's FP/FN accounting runs against.
type Label = pipeline.Label

// Trace labels.
const (
	LabelUnknown = pipeline.LabelUnknown
	LabelBenign  = pipeline.LabelBenign
	LabelCovert  = pipeline.LabelCovert
)

// PsPerCycle is the paper testbed's clock conversion, used when a
// covert hook is applied arithmetically to a synthetic schedule.
const PsPerCycle = 294

// SyntheticIPDs returns one benign bursty IPD trace of n delays.
func SyntheticIPDs(n int, seed uint64) []int64 {
	m := netsim.DefaultThinkTime()
	sched := m.Schedule(n+1, hw.NewRNG(seed))
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = sched[i+1] - sched[i]
	}
	return out
}

// SyntheticTraining returns count benign traces of per IPDs each, for
// detector training.
func SyntheticTraining(count, per int, seed uint64) [][]int64 {
	out := make([][]int64, count)
	for i := range out {
		out[i] = SyntheticIPDs(per, seed+uint64(i))
	}
	return out
}

// SyntheticCovertIPDs applies a covert channel's delay hook over a
// natural benign schedule, returning the receiver-visible IPDs.
func SyntheticCovertIPDs(c covert.Channel, n int, seed uint64) []int64 {
	natural := SyntheticIPDs(n+1, seed)
	hook := c.Hook(covertSecret(n, seed^0xBEEF))
	last, now := int64(0), int64(0)
	var ipds []int64
	for i, gap := range natural {
		now += gap
		d := hook(core.DelayCtx{
			PacketIndex: int64(i), TimePs: now,
			LastSendPs: last, PsPerCycle: PsPerCycle,
		})
		now += d * PsPerCycle
		if i > 0 {
			ipds = append(ipds, now-last)
		}
		last = now
	}
	return ipds
}

// ServerConfig is the auditor-side execution environment on the
// paper's testbed machine: Sanity profile, NFS file store.
func ServerConfig(seed uint64) core.Config {
	return core.Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		Files:    nfs.FileStore(),
		MaxSteps: 4_000_000_000,
	}
}

// ServerProgram is the known-good NFS server binary.
func ServerProgram() *svm.Program { return nfs.ServerProgram() }

// PlayTrace records one real NFS session: the server program runs
// under the engine against a client workload of the given packet
// count. hook, when non-nil, compromises the server. The returned
// trace carries everything any detector needs (IPDs, log, execution).
func PlayTrace(packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*detect.Trace, error) {
	return PlayTraceOn(hw.Optiplex9020(), packets, workloadSeed, engineSeed, hook)
}

// PlayTraceOn is PlayTrace on an explicit machine type — the
// cross-machine scenarios record the same known-good server on
// different hardware.
func PlayTraceOn(machine hw.MachineSpec, packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*detect.Trace, error) {
	return playNFSTrace(netsim.DefaultThinkTime(), machine, packets, workloadSeed, engineSeed, 0, hook)
}

// DefaultCheckpointEvery is the checkpoint interval (in sent packets)
// the audit tooling records with: frequent enough that tail-window
// audits skip most of a trace, rare enough that the snapshots stay a
// small fraction of the log.
const DefaultCheckpointEvery = 16

// PlayTraceCheckpointed is PlayTrace with quiescence-boundary
// checkpoints emitted every `every` outputs, enabling windowed
// replay over the recorded trace.
func PlayTraceCheckpointed(packets int, workloadSeed, engineSeed uint64, every int, hook core.DelayHook) (*detect.Trace, error) {
	return playNFSTrace(netsim.DefaultThinkTime(), hw.Optiplex9020(), packets, workloadSeed, engineSeed, every, hook)
}

// playNFSTrace is the NFS recording recipe with every knob exposed:
// client think-time model, machine type, workload/engine seeds, the
// checkpoint interval (0 = no checkpoints), and the optional covert
// hook.
func playNFSTrace(think netsim.ThinkTimeModel, machine hw.MachineSpec, packets int, workloadSeed, engineSeed uint64, ckptEvery int, hook core.DelayHook) (*detect.Trace, error) {
	w := nfs.ClientWorkload(packets, think, workloadSeed)
	inputs := w.ToServerInputs(netsim.PaperPath(workloadSeed^0xABCD), 0)
	cfg := ServerConfig(engineSeed)
	cfg.Machine = machine
	cfg.Hook = hook
	cfg.CheckpointEveryOutputs = ckptEvery
	exec, log, err := core.Play(nfs.ServerProgram(), inputs, cfg)
	if err != nil {
		return nil, fmt.Errorf("fixtures: play trace: %w", err)
	}
	return &detect.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec}, nil
}

// LabeledTrace is one fixture with ground truth attached.
type LabeledTrace struct {
	// ID names the trace ("benign-3", "ipctc-0", ...).
	ID string
	// Label is the ground truth.
	Label Label
	// Channel is the covert channel's name, empty for benign traces.
	Channel string
	// Trace is the detector-visible material.
	Trace *detect.Trace
}

// Set is a complete labeled corpus: training material plus a mixed
// benign/covert test population.
type Set struct {
	// Training holds benign IPD traces for detector training.
	Training [][]int64
	// Traces is the labeled test population, benign first, then one
	// block per channel, each block in seed order.
	Traces []LabeledTrace
}

// SetSizes scales a fixture set.
type SetSizes struct {
	Training int // benign training traces
	Benign   int // benign test traces
	Covert   int // covert test traces per channel
	Packets  int // packets per trace
}

// SmallSet is the test-suite configuration: big enough for every
// detector to have signal, small enough for -race CI runs.
func SmallSet() SetSizes {
	return SetSizes{Training: 6, Benign: 8, Covert: 4, Packets: 220}
}

// SyntheticSet builds a labeled corpus of synthetic traces covering
// all four covert channels. The adaptive channels (TRCTC, MBCTC)
// train on the pooled benign training IPDs, exactly as in the paper's
// evaluation.
func SyntheticSet(sizes SetSizes, seed uint64) (*Set, error) {
	s := &Set{Training: SyntheticTraining(sizes.Training, sizes.Packets, seed)}
	var pooled []int64
	for _, tr := range s.Training {
		pooled = append(pooled, tr...)
	}
	channels, err := covert.All(pooled, seed+99)
	if err != nil {
		return nil, fmt.Errorf("fixtures: training channels: %w", err)
	}
	scaleNeedle(channels, sizes.Packets)
	for i := 0; i < sizes.Benign; i++ {
		s.Traces = append(s.Traces, LabeledTrace{
			ID:    fmt.Sprintf("benign-%d", i),
			Label: LabelBenign,
			Trace: &detect.Trace{IPDs: SyntheticIPDs(sizes.Packets, seed+5000+uint64(i))},
		})
	}
	for ci, ch := range channels {
		for i := 0; i < sizes.Covert; i++ {
			traceSeed := seed + 9000 + uint64(ci)*1000 + uint64(i)
			s.Traces = append(s.Traces, LabeledTrace{
				ID:      fmt.Sprintf("%s-%d", ch.Name(), i),
				Label:   LabelCovert,
				Channel: ch.Name(),
				Trace:   &detect.Trace{IPDs: SyntheticCovertIPDs(ch, sizes.Packets, traceSeed)},
			})
		}
	}
	return s, nil
}

// covertSecret draws the exfiltrated bits for one covert fixture. The
// leading bit is forced to 1: a short trace whose random secret holds
// only 0-bits at the channel's few mark points adds no delay at all —
// a functionally benign trace that no detector can (or should) flag —
// and a labeled *covert* fixture must actually transmit.
func covertSecret(n int, seed uint64) covert.Bits {
	b := covert.RandomBits(n, seed)
	if len(b) > 0 {
		b[0] = 1
	}
	return b
}

// PlayedSet builds a labeled corpus of real played traces (with logs
// and executions), suitable for the TDR detector and the pipeline's
// full record/replay path. Costs one engine run per trace.
func PlayedSet(sizes SetSizes, seed uint64) (*Set, error) {
	return playedSetWith(sizes, seed, PlayTrace)
}

// PlayedSetCheckpointed is PlayedSet with every trace recorded under
// checkpointing (quiescence boundaries each `every` outputs), the
// corpus shape the windowed audit path and its benchmarks run
// against. A non-positive interval selects DefaultCheckpointEvery.
func PlayedSetCheckpointed(sizes SetSizes, every int, seed uint64) (*Set, error) {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return playedSetWith(sizes, seed, func(packets int, ws, es uint64, hook core.DelayHook) (*detect.Trace, error) {
		return PlayTraceCheckpointed(packets, ws, es, every, hook)
	})
}

// playFunc records one trace of some server under some machine type.
type playFunc func(packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*detect.Trace, error)

// playedSetWith is the corpus recipe shared by every played
// population: benign training runs, channels trained on the pooled
// benign IPDs, then the labeled benign/covert test traces.
func playedSetWith(sizes SetSizes, seed uint64, play playFunc) (*Set, error) {
	s := &Set{}
	var pooled []int64
	for i := 0; i < sizes.Training; i++ {
		ws := seed + uint64(i)*31
		tr, err := play(sizes.Packets, ws, ws+1, nil)
		if err != nil {
			return nil, err
		}
		s.Training = append(s.Training, tr.IPDs)
		pooled = append(pooled, tr.IPDs...)
	}
	channels, err := covert.All(pooled, seed+99)
	if err != nil {
		return nil, fmt.Errorf("fixtures: training channels: %w", err)
	}
	scaleNeedle(channels, sizes.Packets)
	for i := 0; i < sizes.Benign; i++ {
		ws := seed + 10_000 + uint64(i)*37
		tr, err := play(sizes.Packets, ws, ws+2, nil)
		if err != nil {
			return nil, err
		}
		s.Traces = append(s.Traces, LabeledTrace{
			ID: fmt.Sprintf("benign-%d", i), Label: LabelBenign, Trace: tr,
		})
	}
	for ci, ch := range channels {
		for i := 0; i < sizes.Covert; i++ {
			ws := seed + 50_000 + uint64(ci)*10_000 + uint64(i)*41
			secret := covertSecret(sizes.Packets, ws^0xFEED)
			tr, err := play(sizes.Packets, ws, ws+2, ch.Hook(secret))
			if err != nil {
				return nil, err
			}
			s.Traces = append(s.Traces, LabeledTrace{
				ID: fmt.Sprintf("%s-%d", ch.Name(), i), Label: LabelCovert,
				Channel: ch.Name(), Trace: tr,
			})
		}
	}
	return s, nil
}

// scaleNeedle shortens the needle channel's period so scaled-down
// traces still carry several marks (a trace with zero 1-bits modifies
// nothing and is undetectable by definition).
func scaleNeedle(channels []covert.Channel, packets int) {
	for _, ch := range channels {
		if n, ok := ch.(*covert.Needle); ok {
			p := int64(packets / 8)
			if p < 16 {
				p = 16
			}
			if p > 100 {
				p = 100
			}
			n.Period = p
		}
	}
}

// RoundTripLogCheckpointed is RoundTripLog with a synthetic
// checkpoint index attached — the v2 on-disk format's fuzz seed and
// round-trip fixture. The state blobs are opaque at the replaylog
// layer, so arbitrary bytes exercise the decoder fully.
func RoundTripLogCheckpointed(seed uint64) *replaylog.Log {
	l := RoundTripLog(seed)
	rng := hw.NewRNG(seed ^ 0xC4E7)
	n := int64(len(l.Records))
	for i := int64(1); i <= 3; i++ {
		cursor := i * n / 4
		state := make([]byte, 16+rng.Int63n(64))
		for j := range state {
			state[j] = byte(rng.Uint64())
		}
		l.Checkpoints = append(l.Checkpoints, replaylog.Checkpoint{
			Instr:      l.Records[cursor-1].Instr + 1,
			Outputs:    i * 8,
			Records:    cursor,
			PlayCycles: (i * 8) * 1_000_000,
			State:      state,
		})
	}
	return l
}

// RoundTripLog is a seeded replay log exercising every record kind,
// used as the fuzz corpus seed and the encode/decode round-trip
// fixture.
func RoundTripLog(seed uint64) *replaylog.Log {
	rng := hw.NewRNG(seed)
	l := replaylog.New("nfsd", "optiplex9020", "sanity")
	instr := int64(0)
	for i := 0; i < 64; i++ {
		instr += rng.Int63n(10_000) + 1
		switch i % 3 {
		case 0:
			payload := make([]byte, rng.Int63n(96))
			for j := range payload {
				payload[j] = byte(rng.Uint64())
			}
			l.AppendPacket(instr, instr*290, payload)
		case 1:
			l.AppendValue(replaylog.KindTimeRead, instr, instr*290, rng.Int63n(1<<40))
		default:
			l.AppendValue(replaylog.KindRandom, instr, instr*290, rng.Int63n(1<<62))
		}
	}
	return l
}
