package fixtures

import (
	"fmt"
	"sync"

	"sanity/internal/asm"
	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/pipeline"
	"sanity/internal/svm"
)

// EchoShardKey names the second fixture population: a byte-summing
// echo server on the slower T' machine type — a different program AND
// a different machine in the same batch, the heterogeneous-shard
// scenario the ROADMAP calls for.
const EchoShardKey = "echod/slower-t-prime/sanity"

// echoSource is the echo server: receive a packet, read the clock
// (logged nondeterminism), sum the payload so it is actually touched
// through the cache hierarchy, and send it back.
const echoSource = `
.program echod
.func main 0 3
loop:
    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    ncall sys.nanotime 0
    pop
    iconst 0
    store 1
    iconst 0
    store 2
sum:
    load 2
    load 0
    alen
    if_icmpge send
    load 1
    load 0
    load 2
    aload
    iadd
    store 1
    iinc 2 1
    goto sum
send:
    load 0
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end`

var (
	echoOnce sync.Once
	echoMemo *svm.Program
)

// EchoProgram assembles (and memoizes) the echo server. Programs are
// immutable, so sharing one instance across executions is safe.
func EchoProgram() *svm.Program {
	echoOnce.Do(func() {
		echoMemo = asm.MustAssemble("echod", echoSource)
	})
	return echoMemo
}

// EchoConfig is the echo population's execution environment: the
// slower T' machine type under the Sanity profile, no file store.
func EchoConfig(seed uint64) core.Config {
	return core.Config{
		Machine:  hw.SlowerT(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		MaxSteps: 4_000_000_000,
	}
}

// PlayEchoTrace records one echo session: fixed-size requests on the
// bursty think-time schedule, played on the T' machine. hook, when
// non-nil, compromises the server.
func PlayEchoTrace(packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*detect.Trace, error) {
	return PlayEchoTraceOn(hw.SlowerT(), packets, workloadSeed, engineSeed, hook)
}

// PlayEchoTraceOn is PlayEchoTrace on an explicit machine type.
func PlayEchoTraceOn(machine hw.MachineSpec, packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*detect.Trace, error) {
	return playEchoTrace(netsim.DefaultThinkTime(), machine, packets, workloadSeed, engineSeed, hook)
}

// playEchoTrace is the echo recording recipe with every knob exposed.
func playEchoTrace(think netsim.ThinkTimeModel, machine hw.MachineSpec, packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*detect.Trace, error) {
	rng := hw.NewRNG(workloadSeed ^ 0xEC40)
	w := &netsim.Workload{
		Requests:   make([][]byte, packets),
		Departures: think.Schedule(packets, hw.NewRNG(workloadSeed)),
	}
	for i := range w.Requests {
		req := make([]byte, 96)
		for j := range req {
			req[j] = byte(rng.Uint64())
		}
		w.Requests[i] = req
	}
	inputs := w.ToServerInputs(netsim.PaperPath(workloadSeed^0xABCD), 0)
	cfg := EchoConfig(engineSeed)
	cfg.Machine = machine
	cfg.Hook = hook
	exec, log, err := core.Play(EchoProgram(), inputs, cfg)
	if err != nil {
		return nil, fmt.Errorf("fixtures: play echo trace: %w", err)
	}
	return &detect.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec}, nil
}

// EchoSet builds a labeled corpus of played echo traces on the T'
// machine, the second population of heterogeneous batches.
func EchoSet(sizes SetSizes, seed uint64) (*Set, error) {
	return playedSetWith(sizes, seed, PlayEchoTrace)
}

// HeterogeneousSets records the two played populations of a
// heterogeneous corpus: the NFS server on the paper's testbed machine
// and the echo server on the slower T'.
func HeterogeneousSets(sizes SetSizes, seed uint64) (nfs, echo *Set, err error) {
	if nfs, err = PlayedSet(sizes, seed); err != nil {
		return nil, nil, err
	}
	if echo, err = EchoSet(sizes, seed+0x51AB); err != nil {
		return nil, nil, err
	}
	return nfs, echo, nil
}

// HeterogeneousBatch wraps the two populations into one two-shard
// batch with the full TDR path on both, jobs interleaved alternately
// so neighboring jobs hit different shards. The job order here defines
// the corpus order everywhere: ExportHeterogeneous persists it, and
// BatchFromStore reproduces it, which is what makes in-memory and
// store-backed audits byte-comparable.
func HeterogeneousBatch(nfs, echo *Set, seed uint64) *pipeline.Batch {
	b := &pipeline.Batch{}
	b.AddShard(nfs.ShardWith(DefaultShardKey, ServerProgram(), ServerConfig(seed)))
	b.AddShard(echo.ShardWith(EchoShardKey, EchoProgram(), EchoConfig(seed+1)))
	for _, st := range interleave(nfs, echo) {
		b.Append(pipeline.Job{
			ID:    st.lt.ID,
			Shard: st.shard,
			Label: st.lt.Label,
			Trace: st.lt.Trace,
		})
	}
	return b
}

// shardedTrace pairs a labeled trace with the shard it belongs to.
type shardedTrace struct {
	shard string
	lt    LabeledTrace
}

// interleave alternates the two populations' test traces, appending
// the longer tail at the end.
func interleave(nfs, echo *Set) []shardedTrace {
	var out []shardedTrace
	for i := 0; i < len(nfs.Traces) || i < len(echo.Traces); i++ {
		if i < len(nfs.Traces) {
			out = append(out, shardedTrace{DefaultShardKey, nfs.Traces[i]})
		}
		if i < len(echo.Traces) {
			out = append(out, shardedTrace{EchoShardKey, echo.Traces[i]})
		}
	}
	return out
}
