package fixtures

import (
	"sanity/internal/pipeline"
)

// DefaultShardKey names the single-shard fixture population: the NFS
// server on the paper's testbed machine under the Sanity profile.
const DefaultShardKey = "nfsd/optiplex9020/sanity"

// Shard wraps the set's training material into a pipeline shard. When
// withTDR is set, the shard carries the known-good server binary and
// the auditor replay configuration, enabling the full record/replay
// path for traces that have logs.
func (s *Set) Shard(withTDR bool, seed uint64) *pipeline.Shard {
	sh := &pipeline.Shard{Key: DefaultShardKey, Training: s.Training}
	if withTDR {
		sh.Prog = ServerProgram()
		sh.Cfg = ServerConfig(seed)
	}
	return sh
}

// LabeledAuditBatch records a labeled NFS corpus of roughly `traces`
// test traces — half benign, half covert split across the four
// channels, every trace with its replay log — and wraps it into a
// single-shard batch with the full TDR path enabled. This is the
// shared recipe behind cmd/tdraudit and the throughput experiment.
func LabeledAuditBatch(traces, packets int, seed uint64) (*pipeline.Batch, error) {
	perChannel := traces / 8
	if perChannel < 1 {
		perChannel = 1
	}
	set, err := PlayedSet(SetSizes{
		Training: 6,
		Benign:   traces / 2,
		Covert:   perChannel,
		Packets:  packets,
	}, seed)
	if err != nil {
		return nil, err
	}
	return set.Batch(true, seed+777), nil
}

// Batch converts the labeled set into a single-shard pipeline batch,
// jobs in the set's (deterministic) order.
func (s *Set) Batch(withTDR bool, seed uint64) *pipeline.Batch {
	b := &pipeline.Batch{}
	b.AddShard(s.Shard(withTDR, seed))
	for _, lt := range s.Traces {
		b.Append(pipeline.Job{
			ID:    lt.ID,
			Shard: DefaultShardKey,
			Label: lt.Label,
			Trace: lt.Trace,
		})
	}
	return b
}
