package fixtures

import (
	"sanity/internal/core"
	"sanity/internal/pipeline"
	"sanity/internal/svm"
)

// DefaultShardKey names the single-shard fixture population: the NFS
// server on the paper's testbed machine under the Sanity profile.
const DefaultShardKey = "nfsd/optiplex9020/sanity"

// Shard wraps the set's training material into a pipeline shard. When
// withTDR is set, the shard carries the known-good server binary and
// the auditor replay configuration, enabling the full record/replay
// path for traces that have logs.
func (s *Set) Shard(withTDR bool, seed uint64) *pipeline.Shard {
	if !withTDR {
		return s.ShardWith(DefaultShardKey, nil, core.Config{})
	}
	return s.ShardWith(DefaultShardKey, ServerProgram(), ServerConfig(seed))
}

// ShardWith wraps the set's training material into a shard with an
// explicit identity — the heterogeneous-batch builders use it to pair
// each population with its own binary and machine type.
func (s *Set) ShardWith(key string, prog *svm.Program, cfg core.Config) *pipeline.Shard {
	return &pipeline.Shard{Key: key, Prog: prog, Cfg: cfg, Training: s.Training}
}

// AuditSizes is the corpus recipe behind the audit tooling: roughly
// `traces` test traces, half benign and half covert split across the
// four channels, plus a fixed training population. cmd/tdraudit's
// in-memory and record modes both use it, so a recorded corpus at the
// same flags matches the in-memory one.
func AuditSizes(traces, packets int) SetSizes {
	perChannel := traces / 8
	if perChannel < 1 {
		perChannel = 1
	}
	return SetSizes{
		Training: 6,
		Benign:   traces / 2,
		Covert:   perChannel,
		Packets:  packets,
	}
}

// LabeledAuditBatch records a labeled NFS corpus per AuditSizes, every
// trace with its replay log, and wraps it into a single-shard batch
// with the full TDR path enabled. This is the shared recipe behind
// cmd/tdraudit and the throughput experiment.
func LabeledAuditBatch(traces, packets int, seed uint64) (*pipeline.Batch, error) {
	set, err := PlayedSet(AuditSizes(traces, packets), seed)
	if err != nil {
		return nil, err
	}
	return set.Batch(true, seed+777), nil
}

// CheckpointedAuditBatch is LabeledAuditBatch over a corpus recorded
// with checkpointing: every trace carries quiescence-boundary
// snapshots each `every` outputs (<=0 selects DefaultCheckpointEvery),
// so the pipeline's windowed mode can resume replays mid-trace.
func CheckpointedAuditBatch(traces, packets, every int, seed uint64) (*pipeline.Batch, error) {
	set, err := PlayedSetCheckpointed(AuditSizes(traces, packets), every, seed)
	if err != nil {
		return nil, err
	}
	return set.Batch(true, seed+777), nil
}

// Batch converts the labeled set into a single-shard pipeline batch,
// jobs in the set's (deterministic) order.
func (s *Set) Batch(withTDR bool, seed uint64) *pipeline.Batch {
	b := &pipeline.Batch{}
	b.AddShard(s.Shard(withTDR, seed))
	for _, lt := range s.Traces {
		b.Append(pipeline.Job{
			ID:    lt.ID,
			Shard: DefaultShardKey,
			Label: lt.Label,
			Trace: lt.Trace,
		})
	}
	return b
}
