package fixtures

import (
	"sanity/internal/calib"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/netsim"
)

// burstThinkTime is the calibration-training workload flavor that
// forces back-to-back sends: request gaps small enough that network
// jitter makes requests queue at the server, producing the short,
// compute-dominated IPDs whose cross-machine divergence is *absolute*
// (cache/DRAM cost differences) rather than relative. Without them in
// the training material, a fitted model would never observe the
// absolute residual component and under-estimate it as zero.
func burstThinkTime() netsim.ThinkTimeModel {
	return netsim.ThinkTimeModel{BurstGapPs: netsim.Ms / 10, PausePs: 2 * netsim.Ms, BurstLen: 16}
}

// CalibrationTraces plays count known-good traces of the named
// program on the given machine type — the training material a
// calibration fit replays on the auditor's own hardware. Traces
// alternate between the natural think-time workload and a bursty one,
// so the fit observes both residual regimes (idle-dominated relative
// dilation and compute-dominated absolute divergence); with a single
// trace only the natural flavor is played, which is exactly the
// under-trained case the crossmachine experiment's sweep exposes. The
// traces are seed-deterministic and disjoint (by seed offset) from
// every corpus recipe in this package, so a calibration is never
// fitted on the traces it will later audit.
func CalibrationTraces(program string, machine hw.MachineSpec, count, packets int, seed uint64) ([]*detect.Trace, error) {
	var play func(think netsim.ThinkTimeModel, m hw.MachineSpec, packets int, ws, es uint64) (*detect.Trace, error)
	switch program {
	case "nfsd":
		play = func(think netsim.ThinkTimeModel, m hw.MachineSpec, packets int, ws, es uint64) (*detect.Trace, error) {
			return playNFSTrace(think, m, packets, ws, es, 0, nil)
		}
	case "echod":
		play = func(think netsim.ThinkTimeModel, m hw.MachineSpec, packets int, ws, es uint64) (*detect.Trace, error) {
			return playEchoTrace(think, m, packets, ws, es, nil)
		}
	default:
		return nil, &UnknownShardError{Program: program}
	}
	out := make([]*detect.Trace, 0, count)
	for i := 0; i < count; i++ {
		think := netsim.DefaultThinkTime()
		if i%2 == 1 {
			think = burstThinkTime()
		}
		ws := seed + 0xCA11B + uint64(i)*61
		tr, err := play(think, machine, packets, ws, ws+3)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// CalibratePair fits the time-dilation model for auditing
// `program`-shards recorded on machine type `recorded` with an auditor
// that owns machines of type `auditor`: it plays train known-good
// traces on the recorded type, replays each on the auditor type, and
// fits the scale and residual envelope (calib.Fit).
func CalibratePair(program string, recorded, auditor hw.MachineSpec, train, packets int, seed uint64) (*calib.Model, error) {
	training, err := CalibrationTraces(program, recorded, train, packets, seed)
	if err != nil {
		return nil, err
	}
	prog, cfg, err := knownGood(program, seed)
	if err != nil {
		return nil, err
	}
	cfg.Machine = auditor
	return calib.Fit(prog, cfg, recorded.Name, training)
}
