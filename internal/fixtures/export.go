package fixtures

import (
	"errors"
	"fmt"

	"sanity/internal/audit"
	"sanity/internal/calib"
	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/svm"
)

// ShardMetaFor derives the persistent shard identity from the material
// an in-memory shard is built from, so exported corpora and in-memory
// batches can never disagree about names or seeds.
func ShardMetaFor(key string, prog *svm.Program, cfg core.Config) store.ShardMeta {
	return store.ShardMeta{
		Key:     key,
		Program: prog.Name,
		Machine: cfg.Machine.Name,
		Profile: cfg.Profile.Name,
		Seed:    cfg.Seed,
	}
}

// NFSShardMeta is the persistent identity of the default NFS shard
// with the given auditor replay seed.
func NFSShardMeta(seed uint64) store.ShardMeta {
	return ShardMetaFor(DefaultShardKey, ServerProgram(), ServerConfig(seed))
}

// EchoShardMeta is the persistent identity of the echo-on-T' shard.
func EchoShardMeta(seed uint64) store.ShardMeta {
	return ShardMetaFor(EchoShardKey, EchoProgram(), EchoConfig(seed))
}

// exportTraining stores a set's benign training traces (IPDs only)
// under the given shard.
func exportTraining(st *store.Store, s *Set, shardKey string) error {
	for i, ipds := range s.Training {
		meta := store.Meta{
			ID:    fmt.Sprintf("train-%d", i),
			Shard: shardKey,
			Role:  store.RoleTraining,
			Label: store.LabelBenign,
		}
		if err := st.Put(meta, &detect.Trace{IPDs: ipds}); err != nil {
			return err
		}
	}
	return nil
}

// exportTest stores one labeled test trace under the given shard.
func exportTest(st *store.Store, shardKey string, lt LabeledTrace) error {
	meta := store.Meta{
		ID:      lt.ID,
		Shard:   shardKey,
		Role:    store.RoleTest,
		Label:   lt.Label.String(),
		Channel: lt.Channel,
	}
	return st.Put(meta, lt.Trace)
}

// ExportSet materializes a labeled set into st as one shard's corpus:
// the training traces (IPDs only), then every labeled test trace with
// its log and observed execution, then the manifest. Calling it again
// with a different set and shard grows the store into a heterogeneous
// corpus.
func ExportSet(st *store.Store, s *Set, shard store.ShardMeta) error {
	if err := st.AddShard(shard); err != nil {
		return err
	}
	if err := exportTraining(st, s, shard.Key); err != nil {
		return err
	}
	for _, lt := range s.Traces {
		if err := exportTest(st, shard.Key, lt); err != nil {
			return err
		}
	}
	return st.Flush()
}

// ExportHeterogeneous materializes the two-population corpus in
// exactly the job order HeterogeneousBatch audits it, so a store
// round-trip reproduces the in-memory verdict stream byte for byte.
// seed must match the seed passed to HeterogeneousBatch.
func ExportHeterogeneous(st *store.Store, nfs, echo *Set, seed uint64) error {
	if err := st.AddShard(NFSShardMeta(seed)); err != nil {
		return err
	}
	if err := st.AddShard(EchoShardMeta(seed + 1)); err != nil {
		return err
	}
	if err := exportTraining(st, nfs, DefaultShardKey); err != nil {
		return err
	}
	if err := exportTraining(st, echo, EchoShardKey); err != nil {
		return err
	}
	for _, sh := range interleave(nfs, echo) {
		if err := exportTest(st, sh.shard, sh.lt); err != nil {
			return err
		}
	}
	return st.Flush()
}

// ErrUnknownShard is the sentinel matched by errors.Is when a corpus
// names a program the auditor's known-good registry does not carry.
// Callers distinguish it from a machine mismatch (which calibration
// can bridge) or a corrupt corpus (which nothing should bridge).
var ErrUnknownShard = errors.New("fixtures: unknown shard")

// UnknownShardError is the typed form of ErrUnknownShard: the corpus
// asked for a program with no known-good binary in the registry. It
// unwraps to ErrUnknownShard.
type UnknownShardError struct {
	// Program is the name the corpus asked for.
	Program string
}

// Error implements error.
func (e *UnknownShardError) Error() string {
	return fmt.Sprintf("fixtures: no known-good binary for program %q", e.Program)
}

// Unwrap makes errors.Is(err, ErrUnknownShard) hold.
func (e *UnknownShardError) Unwrap() error { return ErrUnknownShard }

// knownGood is the auditor's registry: the trusted binary and the
// canonical replay configuration (machine, profile, file store) for
// each program name a corpus may carry.
func knownGood(program string, seed uint64) (*svm.Program, core.Config, error) {
	switch program {
	case "nfsd":
		return ServerProgram(), ServerConfig(seed), nil
	case "echod":
		return EchoProgram(), EchoConfig(seed), nil
	}
	return nil, core.Config{}, &UnknownShardError{Program: program}
}

// KnownGood is the fixture registry in the audit package's Registry
// shape: the trusted binaries and canonical replay configurations for
// the programs the test corpora record (nfsd, echod). It is the
// registry behind Resolver, CalibratedResolver, sanity.NewAuditor and
// cmd/tdraudit. An unknown program fails with the typed
// ErrUnknownShard.
func KnownGood(program string, seed uint64) (*svm.Program, core.Config, error) {
	return knownGood(program, seed)
}

// Resolver is the fixture registry's pipeline.ShardResolver: the one
// resolution path of audit.ResolverFrom over KnownGood. It maps the
// program named by a stored shard onto the known-good binary and
// rebuilds the replay configuration for the named machine type, then
// cross-checks that the corpus and the registry agree on the machine
// and profile names. The auditor never loads binaries or file stores
// from a corpus — a recorded log can only ever be replayed against the
// auditor's own known-good material (paper §5.3). An unknown program
// fails with ErrUnknownShard; a machine mismatch is a distinct error,
// bridged only by CalibratedResolver.
var Resolver = audit.ResolverFrom(KnownGood)

// CalibratedResolver is the cross-machine audit mode's resolver
// (audit.CalibratedResolverFrom over KnownGood): the auditor owns
// machines of type `auditor` only, and models carries the fitted
// time-dilation calibrations. Shards recorded on the auditor's own
// machine type resolve as usual; shards recorded on a different type
// resolve to the auditor's machine plus the pair's fitted scale/slack
// — and refuse, with calib.ErrNoModel, any pair that was never
// calibrated, so an uncalibrated audit can never produce silent
// garbage verdicts.
func CalibratedResolver(auditor hw.MachineSpec, models *calib.Set) pipeline.ShardResolver {
	return audit.CalibratedResolverFrom(KnownGood, auditor, models)
}
