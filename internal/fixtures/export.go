package fixtures

import (
	"fmt"

	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/store"
	"sanity/internal/svm"
)

// ShardMetaFor derives the persistent shard identity from the material
// an in-memory shard is built from, so exported corpora and in-memory
// batches can never disagree about names or seeds.
func ShardMetaFor(key string, prog *svm.Program, cfg core.Config) store.ShardMeta {
	return store.ShardMeta{
		Key:     key,
		Program: prog.Name,
		Machine: cfg.Machine.Name,
		Profile: cfg.Profile.Name,
		Seed:    cfg.Seed,
	}
}

// NFSShardMeta is the persistent identity of the default NFS shard
// with the given auditor replay seed.
func NFSShardMeta(seed uint64) store.ShardMeta {
	return ShardMetaFor(DefaultShardKey, ServerProgram(), ServerConfig(seed))
}

// EchoShardMeta is the persistent identity of the echo-on-T' shard.
func EchoShardMeta(seed uint64) store.ShardMeta {
	return ShardMetaFor(EchoShardKey, EchoProgram(), EchoConfig(seed))
}

// exportTraining stores a set's benign training traces (IPDs only)
// under the given shard.
func exportTraining(st *store.Store, s *Set, shardKey string) error {
	for i, ipds := range s.Training {
		meta := store.Meta{
			ID:    fmt.Sprintf("train-%d", i),
			Shard: shardKey,
			Role:  store.RoleTraining,
			Label: store.LabelBenign,
		}
		if err := st.Put(meta, &detect.Trace{IPDs: ipds}); err != nil {
			return err
		}
	}
	return nil
}

// exportTest stores one labeled test trace under the given shard.
func exportTest(st *store.Store, shardKey string, lt LabeledTrace) error {
	meta := store.Meta{
		ID:      lt.ID,
		Shard:   shardKey,
		Role:    store.RoleTest,
		Label:   lt.Label.String(),
		Channel: lt.Channel,
	}
	return st.Put(meta, lt.Trace)
}

// ExportSet materializes a labeled set into st as one shard's corpus:
// the training traces (IPDs only), then every labeled test trace with
// its log and observed execution, then the manifest. Calling it again
// with a different set and shard grows the store into a heterogeneous
// corpus.
func ExportSet(st *store.Store, s *Set, shard store.ShardMeta) error {
	if err := st.AddShard(shard); err != nil {
		return err
	}
	if err := exportTraining(st, s, shard.Key); err != nil {
		return err
	}
	for _, lt := range s.Traces {
		if err := exportTest(st, shard.Key, lt); err != nil {
			return err
		}
	}
	return st.Flush()
}

// ExportHeterogeneous materializes the two-population corpus in
// exactly the job order HeterogeneousBatch audits it, so a store
// round-trip reproduces the in-memory verdict stream byte for byte.
// seed must match the seed passed to HeterogeneousBatch.
func ExportHeterogeneous(st *store.Store, nfs, echo *Set, seed uint64) error {
	if err := st.AddShard(NFSShardMeta(seed)); err != nil {
		return err
	}
	if err := st.AddShard(EchoShardMeta(seed + 1)); err != nil {
		return err
	}
	if err := exportTraining(st, nfs, DefaultShardKey); err != nil {
		return err
	}
	if err := exportTraining(st, echo, EchoShardKey); err != nil {
		return err
	}
	for _, sh := range interleave(nfs, echo) {
		if err := exportTest(st, sh.shard, sh.lt); err != nil {
			return err
		}
	}
	return st.Flush()
}

// Resolver is the fixture registry's pipeline.ShardResolver: it maps
// the program named by a stored shard onto the known-good binary and
// rebuilds the replay configuration for the named machine type, then
// cross-checks that the corpus and the registry agree on the machine
// and profile names. The auditor never loads binaries or file stores
// from a corpus — a recorded log can only ever be replayed against the
// auditor's own known-good material (paper §5.3).
func Resolver(m store.ShardMeta) (*svm.Program, core.Config, error) {
	var prog *svm.Program
	var cfg core.Config
	switch m.Program {
	case "nfsd":
		prog, cfg = ServerProgram(), ServerConfig(m.Seed)
	case "echod":
		prog, cfg = EchoProgram(), EchoConfig(m.Seed)
	default:
		return nil, core.Config{}, fmt.Errorf("fixtures: no known-good binary for program %q", m.Program)
	}
	if cfg.Machine.Name != m.Machine {
		return nil, core.Config{}, fmt.Errorf("fixtures: shard %q wants machine %q, registry has %q for %s", m.Key, m.Machine, cfg.Machine.Name, m.Program)
	}
	if cfg.Profile.Name != m.Profile {
		return nil, core.Config{}, fmt.Errorf("fixtures: shard %q wants profile %q, registry has %q for %s", m.Key, m.Profile, cfg.Profile.Name, m.Program)
	}
	return prog, cfg, nil
}
