package pipeline

import (
	"context"
	"fmt"

	"sanity/internal/core"
	"sanity/internal/store"
	"sanity/internal/svm"
)

// Resolved is the audit-side material a resolver supplies for one
// stored shard: the trusted binary, the replay configuration, and —
// for cross-machine audits — the calibration that maps the auditor's
// replay timing back onto the recorded machine's timebase. A nil
// program disables the TDR path for the shard (statistical detectors
// still run); zero TDRCalib/TDRSlack is the plain same-machine audit.
type Resolved struct {
	Prog *svm.Program
	Cfg  core.Config
	// TDRCalib maps replayed timings into the recorded machine type's
	// timebase; the zero value means same-machine.
	TDRCalib core.Calibration
	// TDRSlack widens the TDR suspicion threshold by the calibration's
	// residual spread, pricing the cross-machine noise floor.
	TDRSlack float64
}

// ShardResolver maps a stored shard's metadata onto the audit side's
// own known-good material: the trusted binary for the named program
// and the replay configuration for the named machine type and noise
// profile. Binaries and machine models are code the auditor already
// has — a corpus only names them. When the shard was recorded on a
// machine type the auditor does not own, a calibrating resolver
// substitutes the auditor's machine and returns the fitted
// scale/slack; a resolver with no model for the pair must refuse
// (calib.ErrNoModel) rather than return an uncalibrated config.
type ShardResolver func(m store.ShardMeta) (Resolved, error)

// ParseLabel maps a store label string onto the pipeline's ground
// truth; unrecognized strings are LabelUnknown (excluded from FP/FN
// accounting), never an error.
func ParseLabel(s string) Label {
	switch s {
	case store.LabelBenign:
		return LabelBenign
	case store.LabelCovert:
		return LabelCovert
	}
	return LabelUnknown
}

// BatchFromStore builds a pipeline batch over a persistent corpus.
// Shard training material (IPDs only) is read up front — training
// happens before the first verdict — but test traces are NOT loaded
// here: each job carries a loader and its container is decoded on the
// worker that audits it, so a corpus far larger than memory streams
// through the pipeline under the scheduler's runahead bound. Jobs
// appear in manifest order, so verdicts over a store round-trip are
// byte-identical to auditing the same corpus in memory.
func BatchFromStore(st *store.Store, resolve ShardResolver) (*Batch, error) {
	return BatchFromStoreContext(context.Background(), st, resolve)
}

// BatchFromStoreContext is BatchFromStore under a context: the
// training-trace reads — the store loader's up-front disk work — stop
// between containers when the context is canceled, returning a
// CanceledError instead of a half-built batch.
func BatchFromStoreContext(ctx context.Context, st *store.Store, resolve ShardResolver) (*Batch, error) {
	shards := st.Shards()
	if len(shards) == 0 {
		return nil, fmt.Errorf("pipeline: store %s has no shards", st.Dir())
	}
	b := &Batch{}
	for _, sm := range shards {
		if err := ctx.Err(); err != nil {
			return nil, &CanceledError{Cause: context.Cause(ctx)}
		}
		training, err := st.TrainingIPDs(sm.Key)
		if err != nil {
			return nil, err
		}
		sh := &Shard{Key: sm.Key, Training: training}
		if resolve != nil {
			r, err := resolve(sm)
			if err != nil {
				return nil, fmt.Errorf("pipeline: resolving shard %q: %w", sm.Key, err)
			}
			sh.Prog = r.Prog
			sh.Cfg = r.Cfg
			sh.TDRCalib = r.TDRCalib
			sh.TDRSlack = r.TDRSlack
		}
		b.AddShard(sh)
	}
	for _, e := range st.Entries() {
		if e.Role != store.RoleTest {
			continue
		}
		if _, ok := b.Shards[e.Shard]; !ok {
			return nil, fmt.Errorf("pipeline: trace %q references unregistered shard %q", e.ID, e.Shard)
		}
		b.Append(storeJob(st, e))
	}
	return b, nil
}

// storeJob renders one manifest entry as a lazily-loaded audit job.
// A persisted triage score's flagged window rides along as the job's
// advisory TriageHint.
func storeJob(st *store.Store, e store.Entry) Job {
	file := e.File
	j := Job{
		ID:    e.ID,
		Shard: e.Shard,
		Label: ParseLabel(e.Label),
		Load: func() (*Trace, error) {
			_, tr, err := st.LoadTrace(file)
			return tr, err
		},
		LoadIPDs: func() ([]int64, error) {
			return st.LoadIPDs(file)
		},
	}
	if e.Triage != nil && e.Triage.HasWindow() {
		j.TriageHint = &IPDWindow{From: e.Triage.TopWindow[0], To: e.Triage.TopWindow[1]}
	}
	return j
}

// BatchFromEntries builds a batch over an explicit subset of a
// store's manifest entries — the audit daemon's claim path: it claims
// pending traces, then audits exactly those, in the given order.
// Unlike BatchFromStoreContext, only the shards the entries actually
// reference are resolved and trained, so a sweep over two new traces
// never re-reads every shard's training material. Non-test entries
// are skipped.
func BatchFromEntries(ctx context.Context, st *store.Store, entries []store.Entry, resolve ShardResolver) (*Batch, error) {
	shardMeta := make(map[string]store.ShardMeta)
	for _, sm := range st.Shards() {
		shardMeta[sm.Key] = sm
	}
	b := &Batch{}
	for _, e := range entries {
		if e.Role != store.RoleTest {
			continue
		}
		if _, ok := b.Shards[e.Shard]; !ok {
			if err := ctx.Err(); err != nil {
				return nil, &CanceledError{Cause: context.Cause(ctx)}
			}
			sm, ok := shardMeta[e.Shard]
			if !ok {
				return nil, fmt.Errorf("pipeline: trace %q references unregistered shard %q", e.ID, e.Shard)
			}
			training, err := st.TrainingIPDs(sm.Key)
			if err != nil {
				return nil, err
			}
			sh := &Shard{Key: sm.Key, Training: training}
			if resolve != nil {
				r, err := resolve(sm)
				if err != nil {
					return nil, fmt.Errorf("pipeline: resolving shard %q: %w", sm.Key, err)
				}
				sh.Prog = r.Prog
				sh.Cfg = r.Cfg
				sh.TDRCalib = r.TDRCalib
				sh.TDRSlack = r.TDRSlack
			}
			b.AddShard(sh)
		}
		b.Append(storeJob(st, e))
	}
	return b, nil
}
