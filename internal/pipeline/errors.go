package pipeline

import (
	"errors"
	"fmt"
)

// ErrInvalidBatch is the sentinel matched by errors.Is when a batch
// cannot be audited as submitted: a job without trace material, or a
// job referencing a shard the batch does not carry. The typed form is
// BatchError.
var ErrInvalidBatch = errors.New("pipeline: invalid batch")

// BatchError is the typed form of ErrInvalidBatch, naming the job that
// made the batch unauditable. It unwraps to ErrInvalidBatch.
type BatchError struct {
	// Index is the job's submission index.
	Index int
	// JobID names the job.
	JobID string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("pipeline: job %d (%q): %s", e.Index, e.JobID, e.Reason)
}

// Unwrap makes errors.Is(err, ErrInvalidBatch) hold.
func (e *BatchError) Unwrap() error { return ErrInvalidBatch }

// ErrCanceled is the sentinel matched by errors.Is when an audit run
// was canceled through its context before every verdict was emitted.
// The verdicts that were emitted are complete and in submission order
// — cancellation truncates a stream, it never corrupts one.
var ErrCanceled = errors.New("pipeline: audit canceled")

// CanceledError is the typed form of ErrCanceled: how far the run got
// and why it stopped. It unwraps to both ErrCanceled and the
// context's cause (context.Canceled or context.DeadlineExceeded), so
// errors.Is works against either.
type CanceledError struct {
	// Emitted counts the verdicts delivered, all of them the ordered
	// prefix of the submission sequence.
	Emitted int
	// Cause is the context's error.
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("pipeline: audit canceled after %d verdicts: %v", e.Emitted, e.Cause)
}

// Unwrap makes errors.Is match ErrCanceled and the context cause.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }
