package pipeline

import (
	"fmt"
	"strings"
	"testing"
)

// mkBatch builds a batch with jobs routed to shards by a pattern
// string like "aabab" (one letter per job, letter = shard key).
func mkBatch(pattern string) *Batch {
	b := &Batch{}
	for _, k := range []string{"a", "b", "c"} {
		b.AddShard(&Shard{Key: k})
	}
	for i, r := range pattern {
		b.Append(Job{ID: fmt.Sprintf("j%d", i), Shard: string(r), Trace: &Trace{}})
	}
	return b
}

// TestMakeChunks drives the chunker through its edge cases: empty
// batches and oversized or non-positive batch sizes must neither panic
// nor emit empty chunks.
func TestMakeChunks(t *testing.T) {
	cases := []struct {
		name      string
		pattern   string
		batchSize int
		// wantChunks describes each expected chunk as "shard:idx,idx".
		wantChunks []string
	}{
		{"empty batch", "", 8, nil},
		{"empty batch zero size", "", 0, nil},
		{"single job", "a", 8, []string{"a:0"}},
		{"batch larger than jobs", "aaa", 100, []string{"a:0,1,2"}},
		{"exact multiple", "aaaa", 2, []string{"a:0,1", "a:2,3"}},
		{"remainder", "aaaaa", 2, []string{"a:0,1", "a:2,3", "a:4"}},
		{"zero size degrades to one", "aaa", 0, []string{"a:0", "a:1", "a:2"}},
		{"negative size degrades to one", "aa", -5, []string{"a:0", "a:1"}},
		{"two shards interleaved", "abab", 2, []string{"a:0,2", "b:1,3"}},
		{"shard grouping preserves order", "aabba", 2, []string{"a:0,1", "b:2,3", "a:4"}},
		{"three shards size one", "abc", 1, []string{"a:0", "b:1", "c:2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks := makeChunks(mkBatch(tc.pattern), tc.batchSize)
			var got []string
			for _, c := range chunks {
				if len(c.jobs) == 0 {
					t.Fatal("empty chunk emitted")
				}
				idxs := make([]string, len(c.jobs))
				for i, ij := range c.jobs {
					idxs[i] = fmt.Sprint(ij.idx)
				}
				got = append(got, c.shard+":"+strings.Join(idxs, ","))
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.wantChunks) {
				t.Fatalf("chunks %v, want %v", got, tc.wantChunks)
			}
			// Chunks are ordered by their first job's index.
			for i := 1; i < len(chunks); i++ {
				if chunks[i].jobs[0].idx <= chunks[i-1].jobs[0].idx {
					t.Fatalf("chunk %d out of order", i)
				}
			}
		})
	}
}

// TestRunEmptyBatchNoShards: a completely empty batch (no shards, no
// jobs) must complete cleanly, not hang or panic.
func TestRunEmptyBatchNoShards(t *testing.T) {
	r, err := New(Config{Workers: 3}).Run(&Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Verdicts) != 0 || r.Metrics.Traces != 0 {
		t.Fatalf("phantom verdicts: %+v", r.Metrics)
	}
}

// TestRunBatchSizeLargerThanJobs: one chunk, every verdict present, in
// order.
func TestRunBatchSizeLargerThanJobs(t *testing.T) {
	b := &Batch{}
	b.AddShard(&Shard{Key: "s", Training: [][]int64{{10, 20, 30, 40, 50, 60}, {12, 22, 28, 41, 52, 58}}})
	for i := 0; i < 3; i++ {
		b.Append(Job{ID: fmt.Sprintf("j%d", i), Shard: "s", Trace: &Trace{IPDs: []int64{10, 20, 30, 40, 50, 60}}})
	}
	r, err := New(Config{Workers: 2, BatchSize: 1000}).Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Verdicts) != 3 {
		t.Fatalf("%d verdicts, want 3", len(r.Verdicts))
	}
	for i, v := range r.Verdicts {
		if v.Index != i {
			t.Fatalf("verdict %d has index %d", i, v.Index)
		}
	}
}
