package pipeline

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/hw"
	"sanity/internal/svm"
)

// Per-shard platform memoization. The expensive immutable parts of a
// shard's audit-side setup — verifying the known-good binary and
// assembling its code layout, deep-cloning the base replay
// configuration, binding the calibration into a TDR detector — used
// to be rebuilt for every batch (and the verification and layout even
// for every job's replay, inside svm.New). They are pure functions of
// the shard's resolved identity, so a process-wide sync.Once-guarded
// cache builds them exactly once per shard; every later batch over
// the same corpus, and every job within one, shares the same prepared
// program and detector. Statistical detector training is NOT
// memoized: it depends on the batch's training traces, which are not
// part of the shard identity.
type memoKey struct {
	prog *svm.Program // known-good binaries are singletons (registry-owned)
	// The machine and noise-profile specs are embedded whole (both are
	// comparable value structs), so two shards whose machine *names*
	// collide but whose geometries differ can never share a detector.
	machine     hw.MachineSpec
	profile     hw.NoiseProfile
	seed        uint64
	sliceBudget int64
	gcThreshold int64
	maxSteps    int64
	pollInstr   int64
	pollCycles  int64
	filesHash   uint64
	calib       core.Calibration
	slack       float64
}

type shardMemo struct {
	once     sync.Once
	prepared *svm.Prepared
	tdr      *detect.TDR
	err      error
}

var (
	shardMemos    sync.Map // memoKey -> *shardMemo
	shardMemoSize atomic.Int64

	// Hit/miss accounting, process-lifetime. A hit reuses previously
	// built shard state; a miss pays the build — including the
	// unshared fallbacks (uncomparable config, cache full), which cost
	// the same as a cold build and should read as one. The benchmark
	// gap between the memoized and cold shard paths is small (~1.05x:
	// per-batch statistical training dominates the amortized setup),
	// so these counters exist to prove sharing happens at all — the
	// speedup alone sits within noise of proving nothing.
	shardMemoHits   atomic.Int64
	shardMemoMisses atomic.Int64
)

// ShardMemoStats reports how many shard-auditor builds were served
// from the per-shard memo (hits) versus built from scratch (misses).
// Scrape-time metrics read it; tests assert sharing across batches.
func ShardMemoStats() (hits, misses int64) {
	return shardMemoHits.Load(), shardMemoMisses.Load()
}

// shardMemoCap bounds the cache. Real deployments audit a handful of
// registry binaries, so the cap exists only to keep a pathological
// caller (distinct program pointers per batch, e.g. assembled per
// upload) from growing the process without bound; past the cap, new
// shard identities build unshared state instead of caching it.
const shardMemoCap = 512

// memoizable reports whether the shard's configuration can be keyed.
// Hooks and extra natives are function values — uncomparable and
// auditor-configs never carry them — so such shards fall back to a
// per-batch build.
func memoizable(s *Shard) bool {
	return s.Cfg.Hook == nil && s.Cfg.ExtraNatives == nil
}

// filesDigest hashes the stable-storage contents into the cache key,
// so two shards that resolve to the same machine identity but
// different initial file stores can never share a detector.
func filesDigest(files map[string][]byte) uint64 {
	if len(files) == 0 {
		return 0
	}
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
		h.Write(files[n])
		h.Write([]byte{0xFF})
	}
	return h.Sum64()
}

// ResetShardMemosForTesting empties the per-shard memo cache. The
// benchmark harness uses it to measure the cold path repeatably —
// without it, every cold iteration would permanently insert a dead
// entry keyed by a throwaway program pointer (bounded by the cap,
// but retained for the process lifetime and saturating the cache).
func ResetShardMemosForTesting() {
	shardMemos.Range(func(k, _ any) bool {
		shardMemos.Delete(k)
		return true
	})
	shardMemoSize.Store(0)
}

// buildTDR constructs a shard's detector without caching (still
// preparing the program so per-replay verification is skipped).
func buildTDR(s *Shard) (*detect.TDR, error) {
	prepared, err := svm.Prepare(s.Prog)
	if err != nil {
		return nil, fmt.Errorf("pipeline: preparing shard binary: %w", err)
	}
	cfg := s.Cfg
	cfg.Prepared = prepared
	return detect.NewCalibratedTDR(s.Prog, cfg, s.TDRCalib), nil
}

// tdrForShard returns the shard's memoized TDR detector (building it
// on first use), or builds an unshared one when the configuration is
// not keyable or the cache is full.
func tdrForShard(s *Shard) (*detect.TDR, error) {
	if !memoizable(s) {
		shardMemoMisses.Add(1)
		return detect.NewCalibratedTDR(s.Prog, s.Cfg, s.TDRCalib), nil
	}
	key := memoKey{
		prog:        s.Prog,
		machine:     s.Cfg.Machine,
		profile:     s.Cfg.Profile,
		seed:        s.Cfg.Seed,
		sliceBudget: s.Cfg.SliceBudget,
		gcThreshold: s.Cfg.GCThreshold,
		maxSteps:    s.Cfg.MaxSteps,
		pollInstr:   s.Cfg.PollIterInstr,
		pollCycles:  s.Cfg.PollIterCycles,
		filesHash:   filesDigest(s.Cfg.Files),
		calib:       s.TDRCalib,
		slack:       s.TDRSlack,
	}
	v, ok := shardMemos.Load(key)
	if !ok {
		if shardMemoSize.Load() >= shardMemoCap {
			shardMemoMisses.Add(1)
			return buildTDR(s)
		}
		var loaded bool
		if v, loaded = shardMemos.LoadOrStore(key, &shardMemo{}); !loaded {
			shardMemoSize.Add(1)
		}
		ok = loaded
	}
	if ok {
		shardMemoHits.Add(1)
	} else {
		shardMemoMisses.Add(1)
	}
	m := v.(*shardMemo)
	m.once.Do(func() {
		m.prepared, m.err = svm.Prepare(s.Prog)
		if m.err != nil {
			m.err = fmt.Errorf("pipeline: preparing shard binary: %w", m.err)
			return
		}
		cfg := s.Cfg
		cfg.Prepared = m.prepared
		// NewCalibratedTDR deep-copies the configuration, so the cached
		// detector shares nothing mutable with the shard that built it.
		m.tdr = detect.NewCalibratedTDR(s.Prog, cfg, s.TDRCalib)
	})
	return m.tdr, m.err
}
