package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config tunes one pipeline.
type Config struct {
	// Workers is the audit worker-pool size. Zero or negative selects
	// GOMAXPROCS.
	Workers int
	// BatchSize groups a shard's jobs into chunks dispatched as one
	// unit, amortizing scheduling overhead. Zero selects 8.
	BatchSize int
	// QueueDepth bounds the chunk queue between the scheduler and the
	// workers: when every worker is busy and the queue is full, the
	// scheduler blocks instead of buffering the whole batch —
	// backpressure for callers that stream batches in. Zero selects
	// 2×Workers.
	QueueDepth int
	// TDRThreshold is the suspicion threshold on the TDR detector's
	// maximum relative IPD deviation. The paper's replays land within
	// 2% of the recorded timing (§6.4), so anything above that is
	// delay the software cannot explain. Zero selects 0.05.
	TDRThreshold float64
	// StatThreshold is the fallback threshold on the CCE detector's
	// z-distance for traces that carry no replay log. Zero selects 3.
	StatThreshold float64
	// WindowIPDs, when positive, switches the TDR path to windowed
	// replay: each job audits only its trailing WindowIPDs inter-packet
	// delays (or the job's explicit Window override), resuming from the
	// log's last checkpoint at or before the window. Logs without
	// checkpoints fall back to full replay transparently. The windowed
	// score is bit-identical to scoring the same window out of a full
	// replay; it differs from the whole-trace score only in coverage.
	// Zero audits the whole trace.
	WindowIPDs int

	// SegmentWorkers, when greater than one, replays each audited
	// window's checkpoint-bounded segments concurrently on up to that
	// many goroutines (core.ReplayTDRParallel) instead of replaying the
	// window front to back. The merged result is bit-identical to the
	// sequential windowed replay — a verified one-output overlap at
	// every interior boundary, with a sequential fallback on any
	// disagreement — so the knob trades cores for per-trace latency
	// without ever changing a verdict. It applies to full-trace audits
	// too (the whole IPD range is one window). Zero or one keeps replay
	// sequential. These goroutines multiply with Workers; a pipeline
	// saturating its cores on trace-level parallelism gains nothing
	// from segment-level parallelism on top.
	SegmentWorkers int

	// WindowViaFullReplay switches the windowed path to its reference
	// semantics: a full replay from virtual time zero, scored over the
	// same window. It exists for diagnostics and for the differential
	// tests that prove windowed replay never changes a verdict — it
	// pays full-replay cost for a windowed answer, so production
	// audits leave it off.
	WindowViaFullReplay bool

	// Explain attaches the evidence trail (Verdict.Explain) to every
	// verdict: the audited window and the policy that chose it, the
	// selector's per-window z-scores when a plan seeded them, and the
	// TDR deviation summary. It never changes scores, decisions, or
	// the canonical encoding.
	Explain bool
}

// withDefaults normalizes the configuration.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.TDRThreshold <= 0 {
		c.TDRThreshold = 0.05
	}
	if c.StatThreshold <= 0 {
		c.StatThreshold = 3
	}
	return c
}

// Pipeline is a reusable audit pipeline configuration. One Pipeline
// may run many batches, sequentially or concurrently.
type Pipeline struct {
	cfg Config
}

// New builds a pipeline with the given configuration.
func New(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg.withDefaults()}
}

// Workers reports the effective worker-pool size.
func (p *Pipeline) Workers() int { return p.cfg.Workers }

// indexedJob carries a job's submission index through the pool.
type indexedJob struct {
	idx int
	job Job
}

// chunk is the dispatch unit: consecutive same-shard jobs.
type chunk struct {
	shard string
	jobs  []indexedJob
}

// Stream is a running audit. Verdicts delivers every verdict in
// submission order as soon as it is available; Wait blocks until the
// run completes and returns the aggregate results. Wait drains any
// verdicts the caller has not consumed, so fire-and-forget callers
// can ignore the channel entirely.
type Stream struct {
	Verdicts <-chan Verdict

	done    chan struct{}
	results *Results
	err     error
}

// Wait drains the verdict stream and returns the completed results.
func (s *Stream) Wait() *Results {
	for range s.Verdicts {
	}
	<-s.done
	return s.results
}

// Err reports how the run ended: nil for a complete stream, a
// CanceledError (matching ErrCanceled and the context cause via
// errors.Is) when the run's context was canceled mid-batch. Valid
// only after Wait returns or the Verdicts channel is closed.
func (s *Stream) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Run audits a batch to completion and returns the results.
func (p *Pipeline) Run(b *Batch) (*Results, error) {
	return p.RunContext(context.Background(), b)
}

// RunContext is Run under a context. On cancellation it returns the
// partial results — the ordered prefix of the verdict stream — along
// with a CanceledError.
func (p *Pipeline) RunContext(ctx context.Context, b *Batch) (*Results, error) {
	s, err := p.GoContext(ctx, b)
	if err != nil {
		return nil, err
	}
	r := s.Wait()
	return r, s.Err()
}

// Go starts auditing a batch and returns the verdict stream. Shard
// training happens before Go returns, so a training error (too few
// benign traces, a bad binary) fails fast instead of surfacing
// mid-stream.
func (p *Pipeline) Go(b *Batch) (*Stream, error) {
	return p.GoContext(context.Background(), b)
}

// GoContext is Go under a context, the cancellable form every other
// entry point is a shim over. Cancellation is honored at every layer:
// the scheduler stops dispatching chunks, each worker abandons its
// queue (finishing at most the job it is on, so a verdict is never
// half-built), and the collector closes the stream after emitting the
// ordered prefix of verdicts that completed. The stream then reports
// a CanceledError through Err. Verdicts already emitted are exactly
// what a complete run would have emitted for those jobs.
func (p *Pipeline) GoContext(ctx context.Context, b *Batch) (*Stream, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	auditors, err := p.train(ctx, b)
	if err != nil {
		return nil, err
	}
	chunks := makeChunks(b, p.cfg.BatchSize)

	// Bounded chunk queue: the scheduler blocks when workers fall
	// behind, instead of buffering everything.
	in := make(chan chunk, p.cfg.QueueDepth)
	out := make(chan Verdict, p.cfg.QueueDepth*p.cfg.BatchSize)
	// The reorder buffer must stay bounded too: one slow job would
	// otherwise let every later verdict pile up waiting for it. The
	// collector reports its emission watermark and the scheduler
	// refuses to dispatch a chunk that starts more than runahead jobs
	// past it, so pending verdicts never exceed runahead plus the
	// in-flight work. Deadlock-free: every chunk below the dispatch
	// point is already dispatched, so the watermark job is always
	// either done or on a worker.
	runahead := (p.cfg.QueueDepth + p.cfg.Workers) * p.cfg.BatchSize
	emitted := make(chan int, len(b.Jobs)+1)
	go func() {
		// The scheduler owns closing `in`: on cancellation it stops
		// feeding and closes, so workers always see end-of-queue.
		defer close(in)
		watermark := 0
		for _, c := range chunks {
			for c.jobs[0].idx >= watermark+runahead {
				select {
				case watermark = <-emitted:
				case <-ctx.Done():
					return
				}
			}
			select {
			case in <- c:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range in {
				a := auditors[c.shard]
				for _, ij := range c.jobs {
					// Checked per job, not per chunk: a canceled run
					// stops paying for replays as soon as the job in
					// flight finishes.
					if ctx.Err() != nil {
						return
					}
					t0 := time.Now()
					v := a.audit(ctx, ij.job, ij.idx)
					v.latencyNs = time.Since(t0).Nanoseconds()
					out <- v
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	public := make(chan Verdict, p.cfg.QueueDepth*p.cfg.BatchSize)
	s := &Stream{Verdicts: public, done: make(chan struct{}), results: &Results{}}
	go func() {
		// Reorder buffer: workers finish in any interleaving; verdicts
		// leave in submission order. On cancellation, verdicts past the
		// first gap are dropped with their jobs — the emitted stream is
		// always a prefix.
		pending := make(map[int]Verdict)
		next := 0
		for v := range out {
			pending[v.Index] = v
			for {
				nv, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				s.results.add(nv)
				public <- nv
				next++
			}
			// Non-blocking by construction: capacity covers every job.
			emitted <- next
		}
		if next < len(b.Jobs) {
			if cause := context.Cause(ctx); cause != nil {
				s.err = &CanceledError{Emitted: next, Cause: cause}
			}
		}
		s.results.finish(time.Since(start).Nanoseconds(), p.cfg.Workers, p.cfg.BatchSize)
		// done closes before the verdict channel: a consumer that
		// drains Verdicts may call Err immediately after, and must
		// never observe a truncated stream as a nil error.
		close(s.done)
		close(public)
	}()
	return s, nil
}

// train builds every shard's auditor, in parallel across shards (CCE
// training and binary setup dominate batch startup for small
// batches). Shards are processed in sorted-key order so error
// reporting is deterministic. A canceled context stops scheduling
// further shards and fails the run before any verdict streams.
func (p *Pipeline) train(ctx context.Context, b *Batch) (map[string]*auditor, error) {
	keys := make([]string, 0, len(b.Shards))
	for k := range b.Shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	auditors := make([]*auditor, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, p.cfg.Workers)
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = &CanceledError{Cause: context.Cause(ctx)}
				return
			}
			auditors[i], errs[i] = newAuditor(s, p.cfg)
		}(i, b.Shards[k])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]*auditor, len(keys))
	for i, k := range keys {
		out[k] = auditors[i]
	}
	return out, nil
}

// makeChunks groups each shard's jobs (in submission order) into
// chunks of at most batchSize, then orders chunks by their first
// job's index so a single worker processes the batch in submission
// order exactly.
func makeChunks(b *Batch, batchSize int) []chunk {
	// Guard the edges: an empty batch yields no chunks (never an empty
	// chunk — dispatch assumes chunk.jobs is non-empty), and a
	// non-positive batch size degrades to one job per chunk instead of
	// looping forever.
	if len(b.Jobs) == 0 {
		return nil
	}
	if batchSize <= 0 {
		batchSize = 1
	}
	perShard := make(map[string][]indexedJob)
	for i, j := range b.Jobs {
		perShard[j.Shard] = append(perShard[j.Shard], indexedJob{idx: i, job: j})
	}
	var chunks []chunk
	for shard, jobs := range perShard {
		for start := 0; start < len(jobs); start += batchSize {
			end := start + batchSize
			if end > len(jobs) {
				end = len(jobs)
			}
			chunks = append(chunks, chunk{shard: shard, jobs: jobs[start:end]})
		}
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].jobs[0].idx < chunks[j].jobs[0].idx })
	return chunks
}

// String describes the pipeline for logs.
func (p *Pipeline) String() string {
	return fmt.Sprintf("pipeline{workers=%d batch=%d queue=%d}", p.cfg.Workers, p.cfg.BatchSize, p.cfg.QueueDepth)
}
