package pipeline_test

import (
	"bytes"
	"testing"

	"sanity/internal/calib"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/store"
)

// The differential property this file pins: a windowed-replay audit
// (resume from checkpoint, halt at window end, per-shard memoized
// platform state) produces a verdict stream — including every
// detector score rendered at full precision by Canonical() — that is
// byte-identical to the reference semantics of "full replay from
// virtual time zero, scored over the same window". Across worker
// counts, over a persisted corpus, same-machine and calibrated
// cross-machine. Windowed replay may change what an audit costs,
// never what it says.

// exportCheckpointedNFS records a small checkpointed NFS corpus into
// a fresh store under t.
func exportCheckpointedNFS(t *testing.T, traces, packets, every int, seed uint64) *store.Store {
	t.Helper()
	set, err := fixtures.PlayedSetCheckpointed(fixtures.AuditSizes(traces, packets), every, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(seed+777)); err != nil {
		t.Fatal(err)
	}
	return st
}

// runCanonical audits the store's batch under cfg and returns the
// canonical verdict stream.
func runCanonical(t *testing.T, st *store.Store, resolve pipeline.ShardResolver, cfg pipeline.Config) ([]byte, *pipeline.Results) {
	t.Helper()
	b, err := pipeline.BatchFromStore(st, resolve)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pipeline.New(cfg).Run(b)
	if err != nil {
		t.Fatal(err)
	}
	return r.Canonical(), r
}

// TestDifferentialWindowedSameMachine: windowed+memoized vs the
// full-replay reference, 1 worker vs N workers, over a persisted
// checkpointed corpus.
func TestDifferentialWindowedSameMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus")
	}
	st := exportCheckpointedNFS(t, 8, 60, 8, 4242)
	const window = 12

	refCanon, ref := runCanonical(t, st, fixtures.Resolver,
		pipeline.Config{Workers: 1, WindowIPDs: window, WindowViaFullReplay: true})

	for _, workers := range []int{1, 4} {
		canon, res := runCanonical(t, st, fixtures.Resolver,
			pipeline.Config{Workers: workers, WindowIPDs: window})
		if !bytes.Equal(canon, refCanon) {
			t.Fatalf("windowed verdict stream (workers=%d) diverged from full-replay reference\nwindowed:\n%s\nreference:\n%s",
				workers, canon, refCanon)
		}
		// The equality must not be vacuous: the TDR path ran windowed
		// on every job and still discriminated the labeled corpus.
		for _, v := range res.Verdicts {
			if !v.TDRAudited || !v.TDRWindowed {
				t.Fatalf("job %s was not audited through the windowed TDR path", v.JobID)
			}
			if v.TDR.WindowTo-v.TDR.WindowFrom > window {
				t.Fatalf("job %s audited %d IPDs, window is %d", v.JobID, v.TDR.WindowTo-v.TDR.WindowFrom, window)
			}
		}
		if res.Metrics.TruePositives == 0 || res.Metrics.TrueNegatives == 0 {
			t.Fatalf("degenerate corpus: TP %d TN %d", res.Metrics.TruePositives, res.Metrics.TrueNegatives)
		}
	}
	_ = ref
}

// TestDifferentialWindowedCrossMachine: the calibrated path — corpus
// recorded on the testbed type, audited by a SlowerT-only auditor
// through a fitted time-dilation model — under windowed replay, vs
// the same calibrated audit over full replays.
func TestDifferentialWindowedCrossMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus and fits a calibration")
	}
	st := exportCheckpointedNFS(t, 6, 60, 8, 991)
	auditor := hw.SlowerT()
	model, err := fixtures.CalibratePair("nfsd", hw.Optiplex9020(), auditor, 2, 60, 1717)
	if err != nil {
		t.Fatal(err)
	}
	models := &calib.Set{}
	models.Add(model)
	resolve := fixtures.CalibratedResolver(auditor, models)
	const window = 10

	refCanon, _ := runCanonical(t, st, resolve,
		pipeline.Config{Workers: 1, WindowIPDs: window, WindowViaFullReplay: true})
	for _, workers := range []int{1, 3} {
		canon, res := runCanonical(t, st, resolve,
			pipeline.Config{Workers: workers, WindowIPDs: window})
		if !bytes.Equal(canon, refCanon) {
			t.Fatalf("calibrated windowed stream (workers=%d) diverged from its full-replay reference", workers)
		}
		if res.Metrics.FalsePositives != 0 {
			t.Fatalf("calibrated windowed audit flagged benign traces: FP %d", res.Metrics.FalsePositives)
		}
	}
}

// TestDifferentialMixedCheckpointedAndLegacy: a corpus mixing a
// checkpointed shard with a legacy (checkpoint-free) one — the
// windowed pipeline resumes where it can and falls back to full
// replay where it must, and the stream still matches the reference
// byte for byte.
func TestDifferentialMixedCheckpointedAndLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("records two played corpora")
	}
	seed := uint64(313)
	sizes := fixtures.AuditSizes(6, 60)
	nfsSet, err := fixtures.PlayedSetCheckpointed(sizes, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	echoSet, err := fixtures.EchoSet(sizes, seed+0x51AB) // no checkpoints
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, nfsSet, fixtures.NFSShardMeta(seed+777)); err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, echoSet, fixtures.EchoShardMeta(seed+778)); err != nil {
		t.Fatal(err)
	}
	const window = 12
	refCanon, _ := runCanonical(t, st, fixtures.Resolver,
		pipeline.Config{Workers: 1, WindowIPDs: window, WindowViaFullReplay: true})
	canon, res := runCanonical(t, st, fixtures.Resolver,
		pipeline.Config{Workers: 4, WindowIPDs: window})
	if !bytes.Equal(canon, refCanon) {
		t.Fatal("mixed checkpointed/legacy stream diverged from its full-replay reference")
	}
	shards := map[string]bool{}
	for _, v := range res.Verdicts {
		shards[v.Shard] = true
	}
	if len(shards) != 2 {
		t.Fatalf("expected both shards audited, got %v", shards)
	}
}
