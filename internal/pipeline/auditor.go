package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/obs"
	"sanity/internal/svm"
)

// IPDWindow is an explicit audited IPD range [From, To) for one job
// in windowed mode.
type IPDWindow struct {
	From, To int
}

// Trace is the detector-visible material of one job.
type Trace = detect.Trace

// Shard is one audit population: every trace recorded from the same
// program on the same machine profile. The per-population setup —
// the known-good binary and the statistical detectors' training — is
// paid once per shard and shared, read-only, by all workers.
type Shard struct {
	// Key names the shard ("nfsd/optiplex9020/sanity").
	Key string
	// Prog is the known-good binary for TDR replay. Nil disables the
	// TDR path for this shard (statistical detectors only).
	Prog *svm.Program
	// Cfg is the auditor's replay configuration. Its Hook is cleared
	// by the TDR detector; the maps are deep-copied at training time.
	Cfg core.Config
	// Training holds benign IPD traces that train Shape, KS, and CCE.
	Training [][]int64
	// RegularityWindow overrides the regularity test's window; zero
	// scales it to the training trace length as the Figure-8
	// experiment does.
	RegularityWindow int

	// TDRCalib and TDRSlack enable the cross-machine audit mode: the
	// shard's traces were recorded on a machine type the auditor does
	// not own, Cfg.Machine is the auditor's own type, TDRCalib maps
	// replayed timings back onto the recorded timebase, and TDRSlack
	// widens the TDR suspicion threshold by the calibration's residual
	// spread. Zero values select the plain same-machine audit.
	TDRCalib core.Calibration
	TDRSlack float64
}

// auditor is a shard's trained, immutable audit state. All methods
// are safe for concurrent use: scoring never mutates detector state.
type auditor struct {
	shard      *Shard
	detectors  []detect.Detector // statistical, in the paper's order
	tdr        *detect.TDR       // nil when the shard has no binary
	tdrLimit   float64
	statsLimit float64
	tdrWindow  int  // >0: audit only the trailing window of IPDs
	segWorkers int  // >1: replay checkpoint segments concurrently
	refWindow  bool // windowed scoring via full replay (differential tests)
	explain    bool // attach the evidence trail to each verdict
}

// newAuditor trains a shard's detectors. The statistical detectors
// are trained here, per batch; the TDR side comes from the per-shard
// memo, built once per process for a given shard identity.
func newAuditor(s *Shard, cfg Config) (*auditor, error) {
	detectors, err := detect.Statistical(s.Training)
	if err != nil {
		return nil, fmt.Errorf("pipeline: shard %q training: %w", s.Key, err)
	}
	window := s.RegularityWindow
	if window <= 0 && len(s.Training) > 0 {
		// Scale the window to the trace length so short populations
		// still produce enough windows (cf. experiments.Figure8).
		window = len(s.Training[0]) / 5
		if window > 100 {
			window = 100
		}
		if window < 20 {
			window = 20
		}
	}
	a := &auditor{
		shard:      s,
		detectors:  detectors,
		tdrLimit:   cfg.TDRThreshold + s.TDRSlack,
		statsLimit: cfg.StatThreshold,
		tdrWindow:  cfg.WindowIPDs,
		segWorkers: cfg.SegmentWorkers,
		refWindow:  cfg.WindowViaFullReplay,
		explain:    cfg.Explain,
	}
	for i, d := range a.detectors {
		if d.Name() == "regularity" && window > 0 {
			a.detectors[i] = detect.NewRegularity(window)
		}
	}
	if s.Prog != nil {
		if a.tdr, err = tdrForShard(s); err != nil {
			return nil, fmt.Errorf("pipeline: shard %q: %w", s.Key, err)
		}
	}
	return a, nil
}

// windowFor resolves the audited IPD range for one job. Windowing is
// opt-in at the pipeline level (Config.WindowIPDs > 0): only then do
// per-job overrides apply, else the trailing configured window; a
// pipeline configured for whole-trace audits ignores Job.Window
// entirely (ok == false), so stale overrides can never silently
// shrink an audit's coverage.
func (a *auditor) windowFor(job Job, tr *Trace) (from, to int, ok bool) {
	if a.tdrWindow <= 0 {
		return 0, 0, false
	}
	if job.Window != nil {
		return job.Window.From, job.Window.To, true
	}
	n := len(tr.IPDs)
	from = n - a.tdrWindow
	if from < 0 {
		from = 0
	}
	return from, n, true
}

// audit scores one job with every detector the trace supports and
// renders the verdict. Per-detector failures (e.g. a trace too short
// for the regularity test) degrade the verdict instead of failing the
// batch.
func (a *auditor) audit(ctx context.Context, job Job, index int) Verdict {
	ctx, root := obs.StartSpan(ctx, obs.StageTrace)
	root.Attr("job", job.ID)
	root.Attr("shard", job.Shard)
	defer root.End()

	v := Verdict{JobID: job.ID, Index: index, Shard: job.Shard, Label: job.Label}
	tr := job.Trace
	if tr == nil {
		_, sp := obs.StartSpan(ctx, obs.StageLoad)
		loaded, err := job.Load()
		sp.End()
		if err == nil && loaded == nil {
			err = fmt.Errorf("loader returned no trace")
		}
		if err != nil {
			v.Err = fmt.Sprintf("load: %v", err)
			return v
		}
		tr = loaded
		// A trace the auditor loaded is the auditor's to release: its
		// log payloads and checkpoint states may live on pooled buffers
		// (store.ReadTrace / replaylog.Decode), and the verdict keeps
		// only scores and the comparison summary, never the raw trace.
		// Caller-provided job.Trace stays untouched — its lifetime is
		// the caller's.
		defer tr.Release()
	}
	var errs []string
	_, statSpan := obs.StartSpan(ctx, obs.StageStat)
	for _, d := range a.detectors {
		s, err := d.Score(tr)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", d.Name(), err))
			continue
		}
		v.Scores = append(v.Scores, Score{Detector: d.Name(), Value: s})
	}
	statSpan.End()
	from, to, windowed := a.windowFor(job, tr)
	if a.tdr != nil && tr.Log != nil && tr.Play != nil {
		tctx, tdrSpan := obs.StartSpan(ctx, obs.StageTDR)
		var cmp *core.TimingComparison
		var err error
		switch {
		case windowed && a.refWindow:
			cmp, err = a.tdr.ScoreDetailWindowFullCtx(tctx, tr, from, to)
			v.TDRWindowed = true
		case windowed && a.segWorkers > 1:
			cmp, err = a.tdr.ScoreDetailParallelCtx(tctx, tr, from, to, a.segWorkers)
			v.TDRWindowed = true
		case windowed:
			cmp, err = a.tdr.ScoreDetailWindowCtx(tctx, tr, from, to)
			v.TDRWindowed = true
		case a.segWorkers > 1:
			// A full audit is the whole-range window. The replayed
			// timings and therefore the decisive quantities
			// (OutputsMatch, MaxRelIPDDev) are bit-identical to
			// ScoreDetailCtx's; only the summary's TotalRelDev differs
			// (window span vs total execution time), which decides
			// nothing.
			cmp, err = a.tdr.ScoreDetailParallelCtx(tctx, tr, 0, len(tr.IPDs), a.segWorkers)
		default:
			cmp, err = a.tdr.ScoreDetailCtx(tctx, tr)
		}
		tdrSpan.End()
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", a.tdr.Name(), err))
		} else {
			score := cmp.MaxRelIPDDev
			if !cmp.OutputsMatch {
				score = detect.FunctionalDivergenceScore
			}
			v.Scores = append(v.Scores, Score{Detector: a.tdr.Name(), Value: score})
			v.TDR = cmp
			v.TDRScore = score
			v.TDRAudited = true
		}
	}
	_, verdictSpan := obs.StartSpan(ctx, obs.StageVerdict)
	sort.Slice(v.Scores, func(i, j int) bool { return v.Scores[i].Detector < v.Scores[j].Detector })
	v.Suspicious = a.decide(&v)
	if len(errs) > 0 {
		v.Err = strings.Join(errs, "; ")
	}
	if a.explain {
		a.fillExplain(&v, job, from, to, windowed)
	}
	verdictSpan.End()
	return v
}

// fillExplain attaches the evidence trail: the audited window and the
// policy behind it (seeded by the plan in auto mode), plus the TDR
// deviation summary located under the same slack the threshold used.
func (a *auditor) fillExplain(v *Verdict, job Job, from, to int, windowed bool) {
	ex := job.Explain.clone()
	if windowed {
		ex.Window = &IPDWindow{From: from, To: to}
	}
	if ex.WindowMode == "" {
		if windowed {
			ex.WindowMode = "trailing"
			ex.WindowReason = fmt.Sprintf("trailing %d IPDs (pipeline window policy)", a.tdrWindow)
		} else {
			ex.WindowMode = "full"
			ex.WindowReason = "whole trace audited (no window policy)"
		}
	}
	if v.TDR != nil {
		slack := int64(0)
		if a.tdr != nil {
			slack = a.tdr.Calib.AbsSlackPs
		}
		ex.TDR = tdrExplain(v.TDR, slack)
	}
	v.Explain = ex
}

// decide renders the binary verdict. When the TDR path ran, it alone
// decides — that is the paper's point: replayed timing explains the
// benign variation, so anything above the noise floor is the
// adversary's. Without a log, the best statistical detector (CCE)
// decides on its z-distance from the legitimate baseline.
func (a *auditor) decide(v *Verdict) bool {
	if v.TDRAudited {
		return v.TDRScore > a.tdrLimit
	}
	if s, ok := v.Score("cce"); ok {
		return s > a.statsLimit
	}
	return false
}
