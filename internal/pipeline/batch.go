// Package pipeline implements the concurrent multi-trace audit
// pipeline: batches of recorded traces fan out across a worker pool,
// each worker runs the full TDR record/replay/compare path alongside
// the statistical detectors, and a collector merges the per-trace
// verdicts back into a deterministic stream with aggregate metrics.
//
// The unit of scheduling is the *shard*: all traces recorded from the
// same program on the same machine profile share one shard, so the
// expensive per-population setup — assembling the known-good binary,
// training Shape/KS/CCE on legitimate traffic — happens once per
// shard instead of once per trace. Within a shard, jobs are grouped
// into chunks of Config.BatchSize to amortize dispatch overhead.
//
// Determinism is a first-class requirement, matching the rest of the
// codebase: the verdict stream of an N-worker run is identical in
// content and order to a 1-worker run over the same batch. Workers
// may finish jobs in any interleaving; the collector's reorder buffer
// restores submission order, and every score is a pure function of
// the job and its shard.
package pipeline

import "fmt"

// Label is a trace's ground truth, when known. Labeled fixtures let
// the collector report false-positive/false-negative counts.
type Label int

// Trace labels.
const (
	// LabelUnknown marks production traffic: no ground truth, excluded
	// from FP/FN accounting.
	LabelUnknown Label = iota
	// LabelBenign marks a trace recorded from the unmodified server.
	LabelBenign
	// LabelCovert marks a trace recorded from a compromised server.
	LabelCovert
)

func (l Label) String() string {
	switch l {
	case LabelBenign:
		return "benign"
	case LabelCovert:
		return "covert"
	}
	return "unknown"
}

// Job is one audit unit: a recorded trace awaiting a verdict.
type Job struct {
	// ID names the trace in verdicts and reports.
	ID string
	// Shard keys the job into its audit population (program + machine
	// profile). Must name an entry in the batch's Shards.
	Shard string
	// Label is the ground truth, when known.
	Label Label
	// Trace is the detector-visible material: IPDs always; log and
	// observed execution when the TDR path should run.
	Trace *Trace
	// Load, when Trace is nil, materializes the trace on demand on the
	// worker that audits the job. Store-backed batches use this so a
	// corpus is streamed from disk as it is audited instead of being
	// loaded whole; at most workers×runahead traces are resident at
	// once. A load failure degrades to a per-job error verdict, not a
	// batch failure. Load must be safe for concurrent use across jobs.
	Load func() (*Trace, error)
	// LoadIPDs, optionally set alongside Load, materializes only the
	// job's inter-packet delays, skipping the (much larger) log and
	// execution sections. Statistical prefilters — the audit planner's
	// window selection — use it so planning a corpus never decodes a
	// replay log. Optional; when nil, a prefilter falls back to Load.
	LoadIPDs func() ([]int64, error)
	// Window, when non-nil and the pipeline runs in windowed mode,
	// overrides the audited IPD range for this job — e.g. the region a
	// cheap statistical prefilter flagged. Nil selects the pipeline's
	// trailing default window.
	Window *IPDWindow
	// TriageHint is the IPD range the ingest-time triage ensemble
	// flagged as most suspicious, when the trace carries a persisted
	// score with one. It is advisory: the audit planner's seeded
	// window selection (audit.WithWindowSeed) checks the hinted
	// region first and skips its full scan when the hint proves
	// decisive. Nil (or planners without seeding) changes nothing.
	TriageHint *IPDWindow
	// Explain, when the pipeline runs with Config.Explain, seeds the
	// verdict's evidence trail — the audit planner stores the window
	// scan that chose (or declined) this job's window here. Ignored
	// when explain mode is off.
	Explain *Explain
}

// Batch is one pipeline input: a set of shards and the jobs to audit
// against them. Jobs are audited logically in slice order — the
// verdict stream preserves it regardless of worker interleaving.
type Batch struct {
	Shards map[string]*Shard
	Jobs   []Job
}

// AddShard registers a shard, allocating the map on first use.
func (b *Batch) AddShard(s *Shard) {
	if b.Shards == nil {
		b.Shards = make(map[string]*Shard)
	}
	b.Shards[s.Key] = s
}

// Append adds a job.
func (b *Batch) Append(j Job) { b.Jobs = append(b.Jobs, j) }

// validate checks shard references before any worker starts. Failures
// are typed: errors.Is(err, ErrInvalidBatch) holds and errors.As
// recovers the offending job through *BatchError.
func (b *Batch) validate() error {
	for i, j := range b.Jobs {
		if j.Trace == nil && j.Load == nil {
			return &BatchError{Index: i, JobID: j.ID, Reason: "has no trace and no loader"}
		}
		if _, ok := b.Shards[j.Shard]; !ok {
			return &BatchError{Index: i, JobID: j.ID, Reason: fmt.Sprintf("references unknown shard %q", j.Shard)}
		}
	}
	return nil
}
