package pipeline_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// syntheticBatch builds the shared synthetic corpus once: 8 benign +
// 4 covert traces per channel, statistical detectors only.
var syntheticBatch = sync.OnceValue(func() *pipeline.Batch {
	set, err := fixtures.SyntheticSet(fixtures.SmallSet(), 42)
	if err != nil {
		panic(err)
	}
	return set.Batch(false, 7)
})

// playedBatch builds the shared played corpus once: real engine runs
// with logs, so the full TDR record/replay path is exercised.
var playedBatch = sync.OnceValue(func() *pipeline.Batch {
	set, err := fixtures.PlayedSet(fixtures.SetSizes{
		Training: 3, Benign: 4, Covert: 2, Packets: 60,
	}, 42)
	if err != nil {
		panic(err)
	}
	return set.Batch(true, 777)
})

func run(t *testing.T, b *pipeline.Batch, cfg pipeline.Config) *pipeline.Results {
	t.Helper()
	r, err := pipeline.New(cfg).Run(b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDeterministicAcrossWorkers is the pipeline's core contract: an
// N-worker run produces results identical in content and order to a
// 1-worker run over the same batch.
func TestDeterministicAcrossWorkers(t *testing.T) {
	b := syntheticBatch()
	base := run(t, b, pipeline.Config{Workers: 1, BatchSize: 1}).Canonical()
	if len(base) == 0 {
		t.Fatal("empty canonical results")
	}
	for _, cfg := range []pipeline.Config{
		{Workers: 2, BatchSize: 1},
		{Workers: 4, BatchSize: 3},
		{Workers: 8, BatchSize: 8},
		{Workers: 3, BatchSize: 100, QueueDepth: 1},
		// Tiny runahead: the scheduler's reorder-bound watermark must
		// throttle dispatch without deadlocking or reordering.
		{Workers: 2, BatchSize: 1, QueueDepth: 1},
	} {
		got := run(t, b, cfg).Canonical()
		if !bytes.Equal(base, got) {
			t.Fatalf("workers=%d batch=%d diverged from 1-worker run:\n--- want\n%s--- got\n%s",
				cfg.Workers, cfg.BatchSize, base, got)
		}
	}
}

// TestDeterministicTDRPath repeats the determinism check over the
// full record/replay path.
func TestDeterministicTDRPath(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	b := playedBatch()
	base := run(t, b, pipeline.Config{Workers: 1}).Canonical()
	got := run(t, b, pipeline.Config{Workers: 4, BatchSize: 2}).Canonical()
	if !bytes.Equal(base, got) {
		t.Fatalf("TDR path diverged across worker counts:\n--- 1 worker\n%s--- 4 workers\n%s", base, got)
	}
}

// TestStreamOrder checks the verdict stream arrives in submission
// order with matching job IDs, whatever the worker interleaving.
func TestStreamOrder(t *testing.T) {
	b := syntheticBatch()
	s, err := pipeline.New(pipeline.Config{Workers: 6, BatchSize: 2}).Go(b)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for v := range s.Verdicts {
		if v.Index != i {
			t.Fatalf("verdict %d arrived with index %d", i, v.Index)
		}
		if v.JobID != b.Jobs[i].ID {
			t.Fatalf("verdict %d is for job %q, want %q", i, v.JobID, b.Jobs[i].ID)
		}
		i++
	}
	r := s.Wait()
	if i != len(b.Jobs) || r.Metrics.Traces != len(b.Jobs) {
		t.Fatalf("streamed %d verdicts, metrics saw %d, want %d", i, r.Metrics.Traces, len(b.Jobs))
	}
}

// TestTDRConfusion checks the end-to-end verdicts against ground
// truth: with replay logs available, TDR separates covert from benign
// perfectly at the default threshold (the paper's Figure 8 result).
func TestTDRConfusion(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	r := run(t, playedBatch(), pipeline.Config{Workers: 4})
	m := r.Metrics
	if m.FalsePositives != 0 {
		t.Errorf("false positives: %d benign traces flagged", m.FalsePositives)
	}
	if m.FalseNegatives != 0 {
		t.Errorf("false negatives: %d covert traces missed", m.FalseNegatives)
	}
	if m.TruePositives == 0 || m.TrueNegatives == 0 {
		t.Fatalf("degenerate corpus: TP=%d TN=%d", m.TruePositives, m.TrueNegatives)
	}
	for _, v := range r.Verdicts {
		if !v.TDRAudited {
			t.Errorf("trace %s skipped the TDR path", v.JobID)
		}
	}
}

// TestMetrics sanity-checks the aggregate numbers.
func TestMetrics(t *testing.T) {
	b := syntheticBatch()
	r := run(t, b, pipeline.Config{Workers: 4})
	m := r.Metrics
	if m.Traces != len(b.Jobs) {
		t.Fatalf("traces = %d, want %d", m.Traces, len(b.Jobs))
	}
	if m.ThroughputPerSec <= 0 {
		t.Fatalf("throughput = %f", m.ThroughputPerSec)
	}
	if m.P99LatencyNs < m.P50LatencyNs {
		t.Fatalf("p99 %d < p50 %d", m.P99LatencyNs, m.P50LatencyNs)
	}
	if m.Workers != 4 {
		t.Fatalf("workers = %d", m.Workers)
	}
	total := m.TruePositives + m.FalsePositives + m.TrueNegatives + m.FalseNegatives
	if total != m.Traces {
		t.Fatalf("confusion total %d != traces %d (all fixture jobs are labeled)", total, m.Traces)
	}
}

// TestValidation checks batch errors fail fast.
func TestValidation(t *testing.T) {
	p := pipeline.New(pipeline.Config{})
	b := &pipeline.Batch{}
	b.Append(pipeline.Job{ID: "orphan", Shard: "nope", Trace: &pipeline.Trace{}})
	if _, err := p.Run(b); err == nil {
		t.Fatal("unknown shard accepted")
	}
	b2 := &pipeline.Batch{}
	b2.AddShard(&pipeline.Shard{Key: "s"})
	b2.Append(pipeline.Job{ID: "no-trace", Shard: "s"})
	if _, err := p.Run(b2); err == nil {
		t.Fatal("nil trace accepted")
	}
	// Training failure (too few benign traces) must surface from Go.
	b3 := &pipeline.Batch{}
	b3.AddShard(&pipeline.Shard{Key: "s", Training: nil})
	b3.Append(pipeline.Job{ID: "j", Shard: "s", Trace: &pipeline.Trace{IPDs: []int64{1, 2, 3}}})
	if _, err := p.Run(b3); err == nil {
		t.Fatal("untrainable shard accepted")
	}
}

// TestEmptyBatch checks the zero-job edge.
func TestEmptyBatch(t *testing.T) {
	b := &pipeline.Batch{}
	b.AddShard(syntheticBatch().Shards[fixtures.DefaultShardKey])
	r := run(t, b, pipeline.Config{Workers: 2})
	if len(r.Verdicts) != 0 || r.Metrics.Traces != 0 {
		t.Fatalf("empty batch produced %d verdicts", len(r.Verdicts))
	}
}

// TestMultiShard routes jobs to two shards and checks each job is
// scored against its own shard's training.
func TestMultiShard(t *testing.T) {
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 4, Benign: 3, Covert: 1, Packets: 220}, 99)
	if err != nil {
		t.Fatal(err)
	}
	b := &pipeline.Batch{}
	b.AddShard(&pipeline.Shard{Key: "a", Training: set.Training})
	b.AddShard(&pipeline.Shard{Key: "b", Training: set.Training})
	for i, lt := range set.Traces {
		shard := "a"
		if i%2 == 1 {
			shard = "b"
		}
		b.Append(pipeline.Job{ID: lt.ID, Shard: shard, Label: lt.Label, Trace: lt.Trace})
	}
	r := run(t, b, pipeline.Config{Workers: 3, BatchSize: 2})
	for i, v := range r.Verdicts {
		want := "a"
		if i%2 == 1 {
			want = "b"
		}
		if v.Shard != want {
			t.Fatalf("verdict %d audited by shard %q, want %q", i, v.Shard, want)
		}
	}
	// Identical shards, deterministic scoring: a job's scores must not
	// depend on which shard (with equal training) handled it.
	base := run(t, b, pipeline.Config{Workers: 1, BatchSize: 1}).Canonical()
	if got := r.Canonical(); !bytes.Equal(base, got) {
		t.Fatalf("multi-shard run not deterministic:\n%s\nvs\n%s", base, got)
	}
}

// TestStreamErrAfterVerdictsClose pins the Err contract a canceled
// run's direct consumer relies on: once the Verdicts channel closes,
// Err immediately reports the truncation — never a nil that would
// pass a partial stream off as complete.
func TestStreamErrAfterVerdictsClose(t *testing.T) {
	b := syntheticBatch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := pipeline.New(pipeline.Config{Workers: 2}).GoContext(ctx, b)
	if err != nil {
		// Pre-canceled contexts may also fail at training time; that is
		// an equally typed refusal.
		if !errors.Is(err, pipeline.ErrCanceled) {
			t.Fatalf("GoContext error = %v, want ErrCanceled", err)
		}
		return
	}
	for range s.Verdicts {
	}
	// No Wait(): the channel just closed, and Err must already be set.
	if err := s.Err(); !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("Err after Verdicts close = %v, want ErrCanceled", err)
	}
}
