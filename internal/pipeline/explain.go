package pipeline

import "sanity/internal/core"

// WindowScore is one candidate window from the auto-selection scan:
// the CCE z-score of the IPD range [From, To) against the shard's
// benign baseline. Sign is kept (suspicion is |Z|) so the evidence
// shows which direction the entropy moved.
type WindowScore struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Z    float64 `json:"z"`
}

// TDRExplain summarizes the timing comparison behind a TDR verdict:
// the deviation statistics the threshold was applied to and the
// single worst inter-packet delay (absolute index into the trace), so
// a flagged trace points at where to look.
type TDRExplain struct {
	MaxRelIPDDev  float64 `json:"maxRelIPDDev"`
	MeanRelIPDDev float64 `json:"meanRelIPDDev"`
	WorstIPD      int     `json:"worstIPD"`
	OutputsMatch  bool    `json:"outputsMatch"`
}

// Explain is the optional evidence trail attached to a Verdict when
// explain mode is on: which window was audited and why, the
// per-window z-scores the selector saw, and the TDR deviation
// summary. It never participates in Canonical() — explainability is
// additive, determinism contracts are untouched.
type Explain struct {
	// WindowMode names the policy that chose the audited range:
	// "full", "trailing", or "auto".
	WindowMode string `json:"windowMode,omitempty"`
	// Window is the audited IPD range, when the audit was windowed.
	Window *IPDWindow `json:"window,omitempty"`
	// WindowReason says in words why this range was audited.
	WindowReason string `json:"windowReason,omitempty"`
	// Windows holds the selector's per-window CCE z-scores (auto mode
	// only) — the scan that picked (or declined to pick) a window.
	Windows []WindowScore `json:"windows,omitempty"`
	// SelectedZ is the winning window's z-score in auto mode.
	SelectedZ float64 `json:"selectedZ,omitempty"`
	// TDR summarizes the replay comparison when the TDR path ran.
	TDR *TDRExplain `json:"tdr,omitempty"`
}

// clone deep-copies the explain seed so per-verdict fills never
// mutate plan-owned state shared across reruns.
func (e *Explain) clone() *Explain {
	if e == nil {
		return &Explain{}
	}
	cp := *e
	if e.Window != nil {
		w := *e.Window
		cp.Window = &w
	}
	cp.Windows = append([]WindowScore(nil), e.Windows...)
	return &cp
}

// tdrExplain condenses a timing comparison into the verdict evidence,
// locating the worst IPD under the same slack the threshold used.
func tdrExplain(cmp *core.TimingComparison, absSlackPs int64) *TDRExplain {
	ex := &TDRExplain{
		MaxRelIPDDev:  cmp.MaxRelIPDDev,
		MeanRelIPDDev: cmp.MeanRelIPDDev,
		OutputsMatch:  cmp.OutputsMatch,
		WorstIPD:      -1,
	}
	worst := -1.0
	for i, pair := range cmp.IPDs {
		if d := pair.RelDevSlack(absSlackPs); d > worst {
			worst = d
			ex.WorstIPD = cmp.WindowFrom + i
		}
	}
	return ex
}
