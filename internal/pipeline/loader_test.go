package pipeline_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// lazyCopy rebuilds a batch with every job's trace behind a Load
// closure instead of an eager pointer.
func lazyCopy(b *pipeline.Batch) *pipeline.Batch {
	out := &pipeline.Batch{Shards: b.Shards}
	for _, j := range b.Jobs {
		tr := j.Trace
		out.Append(pipeline.Job{
			ID: j.ID, Shard: j.Shard, Label: j.Label,
			Load: func() (*pipeline.Trace, error) { return tr, nil },
		})
	}
	return out
}

// TestLazyLoadMatchesEager: a batch of Load-backed jobs produces the
// byte-identical verdict stream of its eager twin, across worker
// counts.
func TestLazyLoadMatchesEager(t *testing.T) {
	eager := syntheticBatch()
	base := run(t, eager, pipeline.Config{Workers: 1, BatchSize: 1}).Canonical()
	lazy := lazyCopy(eager)
	for _, cfg := range []pipeline.Config{
		{Workers: 1, BatchSize: 1},
		{Workers: 4, BatchSize: 3},
	} {
		if got := run(t, lazy, cfg).Canonical(); !bytes.Equal(base, got) {
			t.Fatalf("lazy batch diverged at workers=%d:\n--- want\n%s--- got\n%s", cfg.Workers, base, got)
		}
	}
}

// TestLoaderFailure: a failing loader degrades to a per-job error
// verdict; the rest of the batch is audited normally.
func TestLoaderFailure(t *testing.T) {
	eager := syntheticBatch()
	lazy := lazyCopy(eager)
	lazy.Jobs[2].Load = func() (*pipeline.Trace, error) {
		return nil, fmt.Errorf("container vanished")
	}
	r := run(t, lazy, pipeline.Config{Workers: 3})
	v := r.Verdicts[2]
	if !strings.HasPrefix(v.Err, "load:") || !strings.Contains(v.Err, "container vanished") {
		t.Fatalf("verdict 2 error = %q", v.Err)
	}
	if v.Suspicious || len(v.Scores) != 0 {
		t.Fatalf("unloadable job scored anyway: %+v", v)
	}
	if r.Metrics.Errors == 0 {
		t.Fatal("loader failure not counted")
	}
	for i, v := range r.Verdicts {
		if i != 2 && v.Err != "" {
			t.Fatalf("healthy job %d contaminated: %q", i, v.Err)
		}
	}
}

// heteroSets records the two-population corpus once for the
// heterogeneous tests: different programs AND different machine types
// in one batch.
var heteroSets = sync.OnceValues(func() (*fixtures.Set, *fixtures.Set) {
	nfs, echo, err := fixtures.HeterogeneousSets(fixtures.SetSizes{
		Training: 3, Benign: 2, Covert: 1, Packets: 50,
	}, 4242)
	if err != nil {
		panic(err)
	}
	return nfs, echo
})

// TestHeterogeneousDeterminism is the ROADMAP's missing exercise: one
// batch whose shards run different programs on different machine types
// (nfsd on the testbed Optiplex vs the echo server on the slower T'),
// with the full TDR path on both, must still produce a 1-worker-
// identical verdict stream at any worker count.
func TestHeterogeneousDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	nfs, echo := heteroSets()
	b := fixtures.HeterogeneousBatch(nfs, echo, 777)
	if len(b.Shards) != 2 {
		t.Fatalf("%d shards", len(b.Shards))
	}
	base := run(t, b, pipeline.Config{Workers: 1, BatchSize: 1}).Canonical()
	for _, cfg := range []pipeline.Config{
		{Workers: 4, BatchSize: 2},
		{Workers: 8, BatchSize: 3, QueueDepth: 1},
	} {
		if got := run(t, b, cfg).Canonical(); !bytes.Equal(base, got) {
			t.Fatalf("heterogeneous batch diverged at workers=%d:\n--- want\n%s--- got\n%s", cfg.Workers, base, got)
		}
	}
	// Every trace carries a log, so both populations must take the full
	// record/replay path against their own shard's binary and machine.
	r := run(t, b, pipeline.Config{Workers: 4})
	seen := map[string]int{}
	for _, v := range r.Verdicts {
		seen[v.Shard]++
		if !v.TDRAudited {
			t.Errorf("trace %s (shard %s) skipped the TDR path", v.JobID, v.Shard)
		}
	}
	if seen[fixtures.DefaultShardKey] == 0 || seen[fixtures.EchoShardKey] == 0 {
		t.Fatalf("a population went missing: %v", seen)
	}
}
