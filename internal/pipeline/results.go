package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"

	"sanity/internal/core"
	"sanity/internal/stats"
)

// Score is one detector's opinion of one trace.
type Score struct {
	Detector string  `json:"detector"`
	Value    float64 `json:"value"`
}

// Verdict is the pipeline's output for one job.
type Verdict struct {
	// JobID and Index identify the job; Index is the submission order,
	// and the verdict stream is emitted in Index order.
	JobID string
	Index int
	// Shard is the audit population the job was scored against.
	Shard string
	// Label is the job's ground truth, echoed for downstream
	// accounting.
	Label Label
	// Scores holds every detector that produced a score, sorted by
	// detector name for stable output.
	Scores []Score
	// TDRAudited reports whether the full record/replay path ran;
	// TDRScore and TDR are only meaningful when it did.
	TDRAudited bool
	TDRScore   float64
	// TDRWindowed reports that the TDR path audited only an IPD
	// window (TDR.WindowFrom/WindowTo) rather than the whole trace.
	TDRWindowed bool
	// TDR is the full timing comparison behind the TDR score.
	TDR *core.TimingComparison
	// Suspicious is the binary verdict.
	Suspicious bool
	// Err collects per-detector failures ("" when all ran clean).
	Err string
	// Explain is the optional evidence trail (Config.Explain): why
	// this window, what the selector scanned, where the timing
	// deviated. Nil when explain mode is off; excluded from
	// Canonical(), so determinism contracts are unaffected.
	Explain *Explain

	// latencyNs is the wall-clock audit time of this job. It feeds the
	// latency percentiles but stays out of the canonical encoding: it
	// is the one non-deterministic field.
	latencyNs int64
}

// MarshalJSON renders the deterministic part of a verdict for -json
// consumers: latency stays out (it is the one non-deterministic
// field), the label becomes its string form, and the full TDR timing
// comparison is reduced to the fields a downstream consumer acts on.
func (v Verdict) MarshalJSON() ([]byte, error) {
	out := struct {
		Index      int      `json:"index"`
		ID         string   `json:"id"`
		Shard      string   `json:"shard"`
		Label      string   `json:"label"`
		Scores     []Score  `json:"scores"`
		TDRAudited bool     `json:"tdrAudited"`
		TDRScore   float64  `json:"tdrScore"`
		TDRWindow  []int    `json:"tdrWindow,omitempty"`
		Suspicious bool     `json:"suspicious"`
		Err        string   `json:"err,omitempty"`
		Explain    *Explain `json:"explain,omitempty"`
	}{
		Index: v.Index, ID: v.JobID, Shard: v.Shard, Label: v.Label.String(),
		Scores: v.Scores, TDRAudited: v.TDRAudited, TDRScore: v.TDRScore,
		Suspicious: v.Suspicious, Err: v.Err, Explain: v.Explain,
	}
	if v.TDRWindowed && v.TDR != nil {
		out.TDRWindow = []int{v.TDR.WindowFrom, v.TDR.WindowTo}
	}
	return json.Marshal(out)
}

// Score finds one detector's score.
func (v *Verdict) Score(detector string) (float64, bool) {
	for _, s := range v.Scores {
		if s.Detector == detector {
			return s.Value, true
		}
	}
	return 0, false
}

// Metrics aggregates one pipeline run.
type Metrics struct {
	Traces     int `json:"traces"`
	Suspicious int `json:"suspicious"`
	// Errors counts verdicts with at least one detector failure.
	Errors int `json:"errors"`

	// Confusion counts against labeled jobs; LabelUnknown jobs are
	// excluded.
	TruePositives  int `json:"truePositives"`
	FalsePositives int `json:"falsePositives"`
	TrueNegatives  int `json:"trueNegatives"`
	FalseNegatives int `json:"falseNegatives"`

	// ElapsedNs is the wall-clock duration of the whole run;
	// ThroughputPerSec is Traces normalized by it.
	ElapsedNs        int64   `json:"elapsedNs"`
	ThroughputPerSec float64 `json:"throughputPerSec"`
	// P50LatencyNs / P99LatencyNs summarize per-trace audit latency.
	P50LatencyNs int64 `json:"p50LatencyNs"`
	P99LatencyNs int64 `json:"p99LatencyNs"`

	// Workers and BatchSize echo the configuration that produced the
	// run (after defaulting).
	Workers   int `json:"workers"`
	BatchSize int `json:"batchSize"`
}

// Results is a completed run: every verdict in submission order plus
// the aggregate metrics.
type Results struct {
	Verdicts []Verdict
	Metrics  Metrics
}

// Canonical renders the deterministic part of the results: one line
// per verdict with every score, excluding latency and wall-clock
// fields. Two runs over the same batch must produce byte-identical
// canonical encodings regardless of worker count — the concurrency
// tests compare exactly this.
func (r *Results) Canonical() []byte {
	var sb strings.Builder
	for _, v := range r.Verdicts {
		fmt.Fprintf(&sb, "%d %s shard=%s label=%s suspicious=%t tdr=%t", v.Index, v.JobID, v.Shard, v.Label, v.Suspicious, v.TDRAudited)
		if v.TDRWindowed && v.TDR != nil {
			// Only windowed runs carry the range, so whole-trace runs
			// keep their historical canonical encoding.
			fmt.Fprintf(&sb, " window=[%d,%d)", v.TDR.WindowFrom, v.TDR.WindowTo)
		}
		for _, s := range v.Scores {
			fmt.Fprintf(&sb, " %s=%.12g", s.Detector, s.Value)
		}
		if v.Err != "" {
			fmt.Fprintf(&sb, " err=%q", v.Err)
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// Collect folds an already-ordered verdict stream into Results,
// recomputing the aggregate metrics — the bridge for consumers that
// drained a plan's verdict iterator themselves and still want the
// summary shape. elapsedNs is the caller-measured wall-clock time of
// the run (0 leaves throughput unset).
func Collect(verdicts []Verdict, workers, batchSize int, elapsedNs int64) *Results {
	r := &Results{}
	for _, v := range verdicts {
		r.add(v)
	}
	r.finish(elapsedNs, workers, batchSize)
	return r
}

// collect folds the verdict stream into Results, assuming verdicts
// arrive already reordered (the collector goroutine guarantees it).
func (r *Results) add(v Verdict) {
	r.Verdicts = append(r.Verdicts, v)
	m := &r.Metrics
	m.Traces++
	if v.Suspicious {
		m.Suspicious++
	}
	if v.Err != "" {
		m.Errors++
	}
	switch v.Label {
	case LabelBenign:
		if v.Suspicious {
			m.FalsePositives++
		} else {
			m.TrueNegatives++
		}
	case LabelCovert:
		if v.Suspicious {
			m.TruePositives++
		} else {
			m.FalseNegatives++
		}
	}
}

// finish computes the derived metrics.
func (r *Results) finish(elapsedNs int64, workers, batchSize int) {
	m := &r.Metrics
	m.ElapsedNs = elapsedNs
	m.Workers = workers
	m.BatchSize = batchSize
	if elapsedNs > 0 {
		m.ThroughputPerSec = float64(m.Traces) / (float64(elapsedNs) / 1e9)
	}
	if len(r.Verdicts) > 0 {
		lat := make([]float64, len(r.Verdicts))
		for i, v := range r.Verdicts {
			lat[i] = float64(v.latencyNs)
		}
		m.P50LatencyNs = int64(stats.Percentile(lat, 0.5))
		m.P99LatencyNs = int64(stats.Percentile(lat, 0.99))
	}
}

// Format renders a human-readable run summary.
func (r *Results) Format() string {
	m := r.Metrics
	var sb strings.Builder
	fmt.Fprintf(&sb, "audited %d traces with %d workers (batch %d) in %.2fs — %.1f traces/s\n",
		m.Traces, m.Workers, m.BatchSize, float64(m.ElapsedNs)/1e9, m.ThroughputPerSec)
	fmt.Fprintf(&sb, "  latency p50 %.1fms  p99 %.1fms\n", float64(m.P50LatencyNs)/1e6, float64(m.P99LatencyNs)/1e6)
	fmt.Fprintf(&sb, "  suspicious %d/%d", m.Suspicious, m.Traces)
	if m.TruePositives+m.FalsePositives+m.TrueNegatives+m.FalseNegatives > 0 {
		fmt.Fprintf(&sb, "  (labeled: TP %d  FP %d  TN %d  FN %d)", m.TruePositives, m.FalsePositives, m.TrueNegatives, m.FalseNegatives)
	}
	if m.Errors > 0 {
		fmt.Fprintf(&sb, "  detector errors on %d traces", m.Errors)
	}
	sb.WriteByte('\n')
	return sb.String()
}
