package pipeline_test

import (
	"bytes"
	"sync"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// The property this file pins: Config.SegmentWorkers changes how many
// goroutines a trace's replay spreads its checkpoint-bounded segments
// across — never what the audit says. The canonical verdict stream
// (every score at full precision) of a segment-parallel run is
// byte-identical to the sequential run's, windowed and whole-trace,
// across worker counts.

// checkpointedBatch builds the shared checkpointed played corpus
// once: logs carry a checkpoint every 8 outputs, so a windowed or
// whole-trace replay has interior boundaries to parallelize at.
var checkpointedBatch = sync.OnceValue(func() *pipeline.Batch {
	set, err := fixtures.PlayedSetCheckpointed(fixtures.SetSizes{
		Training: 3, Benign: 4, Covert: 2, Packets: 60,
	}, 8, 4711)
	if err != nil {
		panic(err)
	}
	return set.Batch(true, 4242)
})

// TestDifferentialSegmentWorkersWindowed: windowed audits with
// segment-parallel replay vs the sequential windowed run, across
// trace-level worker counts.
func TestDifferentialSegmentWorkersWindowed(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus")
	}
	b := checkpointedBatch()
	const window = 24
	ref := run(t, b, pipeline.Config{Workers: 1, WindowIPDs: window}).Canonical()
	for _, cfg := range []pipeline.Config{
		{Workers: 1, WindowIPDs: window, SegmentWorkers: 2},
		{Workers: 1, WindowIPDs: window, SegmentWorkers: 8},
		{Workers: 4, WindowIPDs: window, SegmentWorkers: 3},
	} {
		res := run(t, b, cfg)
		if got := res.Canonical(); !bytes.Equal(ref, got) {
			t.Fatalf("segment-parallel windowed stream (workers=%d segments=%d) diverged:\n--- want\n%s--- got\n%s",
				cfg.Workers, cfg.SegmentWorkers, ref, got)
		}
		// Not vacuous: the TDR path ran windowed on every logged job.
		for _, v := range res.Verdicts {
			if v.TDRAudited && !v.TDRWindowed {
				t.Fatalf("job %s audited without the window", v.JobID)
			}
		}
	}
}

// TestDifferentialSegmentWorkersFullTrace: a whole-trace audit under
// SegmentWorkers treats the full IPD range as one window and still
// matches the sequential full-replay stream byte for byte.
func TestDifferentialSegmentWorkersFullTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus")
	}
	b := checkpointedBatch()
	ref := run(t, b, pipeline.Config{Workers: 1}).Canonical()
	got := run(t, b, pipeline.Config{Workers: 2, SegmentWorkers: 4}).Canonical()
	if !bytes.Equal(ref, got) {
		t.Fatalf("segment-parallel whole-trace stream diverged:\n--- want\n%s--- got\n%s", ref, got)
	}
}

// TestShardMemoHitsAcrossBatches pins the memo actually sharing: the
// first batch over a fresh shard identity pays builds, every later
// batch over the same shard is served from the memo. (The speedup
// benchmark cannot pin this — per-batch statistical training
// dominates the amortized setup, so memoized-vs-cold times sit within
// ~5% of each other — the counters prove the sharing directly.)
func TestShardMemoHitsAcrossBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	b := playedBatch()
	pipeline.ResetShardMemosForTesting()

	h0, m0 := pipeline.ShardMemoStats()
	run(t, b, pipeline.Config{Workers: 1})
	h1, m1 := pipeline.ShardMemoStats()
	if m1 == m0 {
		t.Fatal("first batch over a fresh memo reported no build")
	}
	if h1 != h0 {
		t.Fatalf("first batch over a fresh memo reported %d hits", h1-h0)
	}
	for i := 0; i < 3; i++ {
		run(t, b, pipeline.Config{Workers: 1})
	}
	h2, m2 := pipeline.ShardMemoStats()
	if m2 != m1 {
		t.Fatalf("repeat batches over one shard rebuilt %d times", m2-m1)
	}
	if h2-h1 != 3 {
		t.Fatalf("3 repeat batches reported %d memo hits, want 3", h2-h1)
	}
}
