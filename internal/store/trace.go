package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"sanity/internal/bufpool"
	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/replaylog"
)

// ErrMetaTooLarge reports a metadata section larger than MaxFrame —
// an admission-control limit, not a framing one: the section arrives
// chunked in valid frames, but no legitimate writer produces a
// megabyte of trace metadata, so an oversized section is treated as
// corruption (or an allocation bomb) and rejected as a whole rather
// than truncated into something the JSON decoder might accept.
// Callers match it with errors.Is.
var ErrMetaTooLarge = errors.New("store: metadata section too large")

// Trace roles within a corpus.
const (
	// RoleTraining marks a benign trace used to train the statistical
	// detectors of its shard; only its IPDs are consumed.
	RoleTraining = "training"
	// RoleTest marks a trace awaiting a verdict.
	RoleTest = "test"
)

// Labels, the string form of pipeline ground truth.
const (
	LabelUnknown = "unknown"
	LabelBenign  = "benign"
	LabelCovert  = "covert"
)

// Meta is the per-trace metadata, stored both inside the container
// (the 'M' section) and beside it as a human-readable JSON sidecar.
type Meta struct {
	// ID names the trace within its shard ("benign-3", "ipctc-0").
	ID string `json:"id"`
	// Shard keys the trace into its audit population.
	Shard string `json:"shard"`
	// Role is RoleTraining or RoleTest.
	Role string `json:"role"`
	// Label is the ground truth ("benign", "covert", "unknown").
	Label string `json:"label"`
	// Channel names the covert channel, empty for benign traces.
	Channel string `json:"channel,omitempty"`
	// Program, Machine and Profile identify what produced the trace;
	// they are filled from the replay log when one is present.
	Program string `json:"program,omitempty"`
	Machine string `json:"machine,omitempty"`
	Profile string `json:"profile,omitempty"`
	// IPDs and Records are integrity cross-checks: the counts the data
	// sections must decode to.
	IPDs    int `json:"ipds"`
	Records int `json:"records"`
}

// validate rejects metadata a store cannot admit.
func (m *Meta) validate() error {
	if m.ID == "" {
		return fmt.Errorf("store: trace has no ID")
	}
	if m.Shard == "" {
		return fmt.Errorf("store: trace %q has no shard", m.ID)
	}
	for _, s := range []string{m.ID, m.Shard, m.Channel, m.Program, m.Machine, m.Profile} {
		if strings.ContainsAny(s, "\r\n") {
			return fmt.Errorf("store: trace identity fields must be single-line (%q)", s)
		}
	}
	// ID and Shard become the container's file name; ".." would survive
	// the sanitizer's dot-preserving pass only to be refused by
	// OpenTrace's traversal guard later — reject it at admission, not
	// after the trace is already in the manifest.
	for _, s := range []string{m.ID, m.Shard} {
		if strings.Contains(s, "..") {
			return fmt.Errorf("store: trace identity fields must not contain %q (%q)", "..", s)
		}
	}
	switch m.Role {
	case RoleTraining, RoleTest:
	default:
		return fmt.Errorf("store: trace %q has unknown role %q", m.ID, m.Role)
	}
	switch m.Label {
	case LabelUnknown, LabelBenign, LabelCovert:
	default:
		return fmt.Errorf("store: trace %q has unknown label %q", m.ID, m.Label)
	}
	return nil
}

// execCap bounds the outputs a stored execution may claim, mirroring
// replaylog's allocation-bomb guards.
const execCap = 1 << 24

// completeMeta fills the count fields and, when a log is present, the
// identity fields from the trace. It is the single source of the
// metadata a container carries: WriteTrace applies it, and the store
// uses it to index a trace without re-reading what it just wrote.
func completeMeta(meta Meta, tr *detect.Trace) Meta {
	meta.IPDs = len(tr.IPDs)
	meta.Records = 0
	if tr.Log != nil {
		meta.Records = len(tr.Log.Records)
		if meta.Program == "" {
			meta.Program = tr.Log.Program
		}
		if meta.Machine == "" {
			meta.Machine = tr.Log.Machine
		}
		if meta.Profile == "" {
			meta.Profile = tr.Log.Profile
		}
	}
	return meta
}

// WriteTrace streams one trace into w as a container. The metadata's
// count fields and, when a log is present, its identity fields are
// filled in from the trace. Sections flow through bounded frame
// chunks; the log is encoded straight into the container, never
// buffered whole.
func WriteTrace(w io.Writer, meta Meta, tr *detect.Trace) error {
	if tr == nil {
		return fmt.Errorf("store: nil trace")
	}
	meta = completeMeta(meta, tr)
	if err := meta.validate(); err != nil {
		return err
	}
	// A container is only v2 when it actually carries v2 content (a
	// checkpointed log); everything else stays v1 so that pre-v2
	// readers keep accepting corpora that never needed the bump.
	version := byte(1)
	if tr.Log != nil && len(tr.Log.Checkpoints) > 0 {
		version = 2
	}
	fw, err := NewWriterVersion(w, version)
	if err != nil {
		return err
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: encoding metadata: %w", err)
	}
	if _, err := fw.Section(FrameMeta).Write(mj); err != nil {
		return err
	}
	if len(tr.IPDs) > 0 {
		sw := bufio.NewWriter(fw.Section(FrameIPD))
		var buf [8]byte
		for _, d := range tr.IPDs {
			binary.LittleEndian.PutUint64(buf[:], uint64(d))
			if _, err := sw.Write(buf[:]); err != nil {
				return err
			}
		}
		if err := sw.Flush(); err != nil {
			return err
		}
	}
	if tr.Log != nil {
		if err := tr.Log.Encode(fw.Section(FrameLog)); err != nil {
			return fmt.Errorf("store: encoding log: %w", err)
		}
	}
	if tr.Play != nil {
		if err := encodeExec(fw.Section(FrameExec), tr.Play); err != nil {
			return err
		}
	}
	return fw.Close()
}

// encodeExec serializes the audit-relevant view of an observed
// execution: the output stream with its timing, and the totals the
// timing comparison consumes. Events, stdout and the hardware report
// are play-side instrumentation and are not persisted.
func encodeExec(w io.Writer, e *core.Execution) error {
	bw := bufio.NewWriter(w)
	var buf [8]byte
	put := func(v int64) error {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		_, err := bw.Write(buf[:])
		return err
	}
	if err := bw.WriteByte(byte(e.Mode)); err != nil {
		return err
	}
	if err := put(int64(len(e.Outputs))); err != nil {
		return err
	}
	for _, o := range e.Outputs {
		for _, v := range []int64{int64(o.Seq), o.Instr, o.TimePs, int64(len(o.Payload))} {
			if err := put(v); err != nil {
				return err
			}
		}
		if _, err := bw.Write(o.Payload); err != nil {
			return err
		}
	}
	for _, v := range []int64{e.TotalPs, e.Instructions, e.ExitCode} {
		if err := put(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decodeExec reads the execution section back. Output payloads are
// carved from arena when one is given; the caller ties the arena's
// release to the execution's lifetime.
func decodeExec(r io.Reader, arena *bufpool.Arena) (*core.Execution, error) {
	br := bufio.NewReader(r)
	var buf [8]byte
	get := func() (int64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return int64(binary.LittleEndian.Uint64(buf[:])), nil
	}
	mode, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("store: execution mode: %w", err)
	}
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("store: execution output count: %w", err)
	}
	if n < 0 || n > execCap {
		return nil, fmt.Errorf("store: implausible output count %d", n)
	}
	e := &core.Execution{Mode: core.Mode(mode)}
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	e.Outputs = make([]core.OutputEvent, 0, capHint)
	for i := int64(0); i < n; i++ {
		var o core.OutputEvent
		var vals [4]int64
		for j := range vals {
			if vals[j], err = get(); err != nil {
				return nil, fmt.Errorf("store: execution output %d: %w", i, err)
			}
		}
		o.Seq = int(vals[0])
		o.Instr = vals[1]
		o.TimePs = vals[2]
		plen := vals[3]
		if plen < 0 || plen > execCap {
			return nil, fmt.Errorf("store: output %d payload of %d bytes", i, plen)
		}
		o.Payload = arena.Alloc(int(plen))
		if _, err := io.ReadFull(br, o.Payload); err != nil {
			return nil, fmt.Errorf("store: execution output %d payload: %w", i, err)
		}
		e.Outputs = append(e.Outputs, o)
	}
	for _, dst := range []*int64{&e.TotalPs, &e.Instructions, &e.ExitCode} {
		if *dst, err = get(); err != nil {
			return nil, fmt.Errorf("store: execution totals: %w", err)
		}
	}
	switch _, err := br.ReadByte(); err {
	case io.EOF:
	case nil:
		return nil, fmt.Errorf("store: trailing bytes in execution section")
	default:
		return nil, fmt.Errorf("store: after execution totals: %w", err)
	}
	return e, nil
}

// readMetaSection expects and decodes the leading 'M' section.
func readMetaSection(fr *Reader) (Meta, error) {
	var meta Meta
	t, sec, err := fr.Next()
	if err != nil {
		return meta, fmt.Errorf("store: container has no sections: %w", err)
	}
	if t != FrameMeta {
		return meta, fmt.Errorf("store: first section is %q, want metadata", byte(t))
	}
	mj, err := io.ReadAll(io.LimitReader(sec, MaxFrame+1))
	if err != nil {
		return meta, err
	}
	if len(mj) > MaxFrame {
		return meta, fmt.Errorf("%w: exceeds %d bytes", ErrMetaTooLarge, MaxFrame)
	}
	if err := json.Unmarshal(mj, &meta); err != nil {
		return meta, fmt.Errorf("store: decoding metadata: %w", err)
	}
	if err := meta.validate(); err != nil {
		return meta, err
	}
	return meta, nil
}

// readIPDSection decodes an 'I' section of the given expected length.
func readIPDSection(sec io.Reader, want int) ([]int64, error) {
	br := bufio.NewReader(sec)
	var buf [8]byte
	capHint := want + 1
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([]int64, 0, capHint)
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("store: IPD section: %w", err)
		}
		out = append(out, int64(binary.LittleEndian.Uint64(buf[:])))
		if len(out) > want {
			break
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("store: IPD section holds %d+ delays, metadata says %d", len(out), want)
	}
	return out, nil
}

// ReadTrace decodes a complete container: metadata plus every data
// section, verifying frame CRCs, section order, the end frame, and the
// metadata's count cross-checks.
func ReadTrace(r io.Reader) (Meta, *detect.Trace, error) {
	fr, err := NewReader(r)
	if err != nil {
		return Meta{}, nil, err
	}
	meta, err := readMetaSection(fr)
	if err != nil {
		return Meta{}, nil, err
	}
	tr := &detect.Trace{}
	// Error paths hand the partially-decoded trace's pooled buffers
	// back immediately; a successful return transfers ownership (and
	// the Release obligation) to the caller.
	fail := func(err error) (Meta, *detect.Trace, error) {
		tr.Release()
		return meta, nil, err
	}
	prev := FrameMeta
	order := map[FrameType]int{FrameMeta: 0, FrameIPD: 1, FrameLog: 2, FrameExec: 3}
	for {
		t, sec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		if order[t] <= order[prev] {
			return fail(fmt.Errorf("store: section %q out of order after %q", byte(t), byte(prev)))
		}
		prev = t
		switch t {
		case FrameIPD:
			if tr.IPDs, err = readIPDSection(sec, meta.IPDs); err != nil {
				return fail(err)
			}
		case FrameLog:
			if tr.Log, err = replaylog.Decode(sec); err != nil {
				return fail(fmt.Errorf("store: decoding log: %w", err))
			}
			if len(tr.Log.Records) != meta.Records {
				return fail(fmt.Errorf("store: log holds %d records, metadata says %d", len(tr.Log.Records), meta.Records))
			}
		case FrameExec:
			execArena := &bufpool.Arena{}
			tr.OnRelease(execArena.Release)
			if tr.Play, err = decodeExec(sec, execArena); err != nil {
				return fail(err)
			}
		}
	}
	if meta.IPDs > 0 && tr.IPDs == nil {
		return fail(fmt.Errorf("store: metadata promises %d IPDs but the section is missing", meta.IPDs))
	}
	if meta.Records > 0 && tr.Log == nil {
		return fail(fmt.Errorf("store: metadata promises %d log records but the section is missing", meta.Records))
	}
	return meta, tr, nil
}

// ReadMeta decodes only the leading metadata section, leaving the rest
// of the container unread.
func ReadMeta(r io.Reader) (Meta, error) {
	fr, err := NewReader(r)
	if err != nil {
		return Meta{}, err
	}
	return readMetaSection(fr)
}

// ReadIPDs decodes the metadata and IPD sections and stops, skipping
// the (potentially large) log and execution sections. This is the
// training-trace fast path: shard training needs only delays.
func ReadIPDs(r io.Reader) (Meta, []int64, error) {
	fr, err := NewReader(r)
	if err != nil {
		return Meta{}, nil, err
	}
	meta, err := readMetaSection(fr)
	if err != nil {
		return Meta{}, nil, err
	}
	if meta.IPDs == 0 {
		return meta, nil, nil
	}
	for {
		t, sec, err := fr.Next()
		if err == io.EOF {
			return meta, nil, fmt.Errorf("store: metadata promises %d IPDs but the section is missing", meta.IPDs)
		}
		if err != nil {
			return meta, nil, err
		}
		if t != FrameIPD {
			continue
		}
		ipds, err := readIPDSection(sec, meta.IPDs)
		if err != nil {
			return meta, nil, err
		}
		return meta, ipds, nil
	}
}
