package store_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// triageStore builds a store with scoring enabled and the default
// test shard registered.
func triageStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.EnableTriage(triage.Options{})
	if err := st.AddShard(store.ShardMeta{Key: testMeta().Shard, Program: "nfsd", Machine: "optiplex9020", Profile: "sanity"}); err != nil {
		t.Fatal(err)
	}
	return st
}

// ipdOnlyMeta names an IPD-only synthetic trace (no log, so no
// program/machine cross-checks to satisfy).
func ipdOnlyMeta(id, role, label string) store.Meta {
	return store.Meta{ID: id, Shard: testMeta().Shard, Role: role, Label: label}
}

func TestTriageScoredOnIngest(t *testing.T) {
	st := triageStore(t)
	tr := &detect.Trace{IPDs: fixtures.SyntheticIPDs(128, 3)}
	raw := encode(t, ipdOnlyMeta("scored-0", store.RoleTest, store.LabelBenign), tr)
	meta, sc, err := st.PutContainerScored(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("PutContainerScored: %v", err)
	}
	if sc == nil {
		t.Fatal("test trace admitted without a score")
	}
	if sc.Schema != triage.SchemaVersion || len(sc.PerDetector) == 0 {
		t.Fatalf("degenerate score: %+v", sc)
	}
	// The score is in the manifest entry...
	var entry store.Entry
	for _, e := range st.Entries() {
		if e.ID == meta.ID {
			entry = e
		}
	}
	if entry.Triage == nil || entry.Triage.Suspicion != sc.Suspicion {
		t.Fatalf("manifest entry score %+v, want %+v", entry.Triage, sc)
	}
	// ...and in the sidecar from the first write.
	side, err := os.ReadFile(filepath.Join(st.Dir(), entry.File+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(side), `"suspicion"`) {
		t.Fatalf("sidecar has no triage score: %s", side)
	}
	// Training traces are never scored.
	trainRaw := encode(t, ipdOnlyMeta("train-0", store.RoleTraining, store.LabelBenign), tr)
	_, trainSc, err := st.PutContainerScored(bytes.NewReader(trainRaw))
	if err != nil {
		t.Fatal(err)
	}
	if trainSc != nil {
		t.Fatalf("training trace scored: %+v", trainSc)
	}
	// A trace too short for a single window still admits, with the
	// neutral score.
	shortRaw := encode(t, ipdOnlyMeta("short-0", store.RoleTest, store.LabelBenign),
		&detect.Trace{IPDs: []int64{5, 6, 7}})
	_, shortSc, err := st.PutContainerScored(bytes.NewReader(shortRaw))
	if err != nil {
		t.Fatal(err)
	}
	if shortSc == nil || shortSc.Suspicion != triage.NeutralSuspicion {
		t.Fatalf("short trace score %+v, want neutral", shortSc)
	}
}

// TestClaimPendingHonorsPersistedScores is the restart regression for
// the priority queue: a fresh daemon over an old spool must resume
// highest-suspicion-first from the persisted scores, not in manifest
// (arrival) order, with unscored legacy traces slotting in at the
// neutral midpoint and ties keeping manifest order.
func TestClaimPendingHonorsPersistedScores(t *testing.T) {
	st := triageStore(t)
	put := func(id string) store.Entry {
		t.Helper()
		raw := encode(t, ipdOnlyMeta(id, store.RoleTest, store.LabelUnknown),
			&detect.Trace{IPDs: fixtures.SyntheticIPDs(64, 9)})
		if _, err := st.PutContainer(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
		for _, e := range st.Entries() {
			if e.ID == id {
				return e
			}
		}
		t.Fatalf("entry %s not found", id)
		return store.Entry{}
	}
	score := func(e store.Entry, suspicion float64) {
		t.Helper()
		sc := triage.Neutral()
		sc.Suspicion = suspicion
		if err := st.SetTriageScore(e.File, &sc); err != nil {
			t.Fatal(err)
		}
	}
	low := put("arrival-0-low")
	score(low, 0.12)
	high := put("arrival-1-high")
	score(high, 0.91)
	legacy := put("arrival-2-legacy")
	if err := st.SetTriageScore(legacy.File, nil); err != nil { // wipe: pre-triage corpus shape
		t.Fatal(err)
	}
	mid := put("arrival-3-mid")
	score(mid, 0.64)
	tieA := put("arrival-4-tie")
	score(tieA, 0.64)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new Store over the flushed manifest.
	re, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	claimed := re.ClaimPending()
	var ids []string
	for _, e := range claimed {
		ids = append(ids, e.ID)
	}
	want := []string{"arrival-1-high", "arrival-3-mid", "arrival-4-tie", "arrival-2-legacy", "arrival-0-low"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("claim order %v, want %v", ids, want)
	}
	for _, e := range claimed {
		if e.Audit != store.AuditClaimed {
			t.Fatalf("claimed entry %s in state %q", e.ID, e.Audit)
		}
	}
	// Second claim: nothing left.
	if again := re.ClaimPending(); len(again) != 0 {
		t.Fatalf("double claim: %v", again)
	}
}

func TestClaimPendingLimitAndPriorityOverride(t *testing.T) {
	st := triageStore(t)
	for i := 0; i < 4; i++ {
		raw := encode(t, ipdOnlyMeta(fmt.Sprintf("t-%d", i), store.RoleTest, store.LabelUnknown),
			&detect.Trace{IPDs: []int64{5, 6, 7}})
		if _, err := st.PutContainer(bytes.NewReader(raw)); err != nil {
			t.Fatal(err)
		}
	}
	// Priority override inverts the order; the limit caps the batch.
	boost := map[string]float64{"t-0": 0.1, "t-1": 0.9, "t-2": 0.5, "t-3": 0.7}
	claimed := st.ClaimPendingLimit(2, func(e store.Entry) float64 { return boost[e.ID] })
	if len(claimed) != 2 || claimed[0].ID != "t-1" || claimed[1].ID != "t-3" {
		t.Fatalf("limited claim wrong: %+v", claimed)
	}
	if got := len(st.PendingTest()); got != 2 {
		t.Fatalf("%d still pending, want 2", got)
	}
	rest := st.ClaimPending()
	if len(rest) != 2 {
		t.Fatalf("second claim got %d", len(rest))
	}
}

// TestPreTriageCorpusCompat is the schema-bump backward-compatibility
// contract: a corpus written before triage existed (no triage fields
// anywhere) must decode with neutral-score defaults, and neither
// opening it nor re-flushing may rewrite its manifest or sidecars —
// no churn, byte for byte.
func TestPreTriageCorpusCompat(t *testing.T) {
	// Record the corpus with scoring disabled: by construction this is
	// the pre-triage on-disk shape (omitempty drops the new fields).
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddShard(store.ShardMeta{Key: testMeta().Shard, Program: "nfsd", Machine: "optiplex9020", Profile: "sanity"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ipdOnlyMeta("old-0", store.RoleTest, store.LabelBenign),
		&detect.Trace{IPDs: fixtures.SyntheticIPDs(64, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(st.Dir(), store.ManifestName)
	before, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(before), "triage") {
		t.Fatalf("un-triaged manifest mentions triage: %s", before)
	}
	entry := st.Entries()[0]
	sideBefore, err := os.ReadFile(filepath.Join(st.Dir(), entry.File+".json"))
	if err != nil {
		t.Fatal(err)
	}

	re, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	e := re.Entries()[0]
	if e.Triage != nil {
		t.Fatalf("legacy entry decoded a phantom score: %+v", e.Triage)
	}
	if got := e.Suspicion(); got != triage.NeutralSuspicion {
		t.Fatalf("legacy suspicion %v, want neutral %v", got, triage.NeutralSuspicion)
	}
	// Re-flush and an audit-state round trip: still no churn beyond
	// the audit field that predates triage.
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("manifest churned on reopen+flush:\n--- before\n%s\n--- after\n%s", before, after)
	}
	sideAfter, err := os.ReadFile(filepath.Join(re.Dir(), e.File+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sideBefore, sideAfter) {
		t.Fatalf("sidecar churned:\n--- before\n%s\n--- after\n%s", sideBefore, sideAfter)
	}

	// Backfill: ScorePending scores exactly the unscored test traces,
	// and a second pass is a no-op.
	n, err := re.ScorePending(triage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("backfilled %d traces, want 1", n)
	}
	if got := re.Entries()[0].Triage; got == nil || got.Schema != triage.SchemaVersion {
		t.Fatalf("backfill did not persist: %+v", got)
	}
	if n, err = re.ScorePending(triage.Options{}); err != nil || n != 0 {
		t.Fatalf("second backfill pass scored %d (%v), want 0", n, err)
	}
}

// TestConcurrentScoredIngest hammers PutContainerScored from many
// goroutines with scoring enabled — the race detector proves the
// scorer state is per-upload and the manifest/claim machinery stays
// consistent under concurrent ingest connections.
func TestConcurrentScoredIngest(t *testing.T) {
	st := triageStore(t)
	const workers, each = 8, 6
	raws := make([][]byte, workers*each)
	for i := range raws {
		raws[i] = encode(t, ipdOnlyMeta(fmt.Sprintf("c-%d", i), store.RoleTest, store.LabelUnknown),
			&detect.Trace{IPDs: fixtures.SyntheticIPDs(96, uint64(i))})
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(raws))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				_, sc, err := st.PutContainerScored(bytes.NewReader(raws[w*each+j]))
				if err != nil {
					errs <- err
					continue
				}
				if sc == nil {
					errs <- fmt.Errorf("worker %d trace %d: no score", w, j)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(st.Entries()); got != workers*each {
		t.Fatalf("%d entries, want %d", got, workers*each)
	}
	for _, e := range st.Entries() {
		if e.Triage == nil {
			t.Fatalf("entry %s admitted unscored", e.ID)
		}
	}
}

// FuzzScoreSidecar throws hostile bytes at the sidecar/manifest-entry
// decode path that now carries the triage score. Properties: never
// panic, and any successfully decoded entry re-encodes and re-decodes
// to the same score (round-trip stability), with Suspicion() always
// usable.
func FuzzScoreSidecar(f *testing.F) {
	seed := func(e store.Entry) {
		b, err := json.Marshal(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	sc := triage.ScoreIPDs(fixtures.SyntheticIPDs(64, 1), triage.Options{})
	seed(store.Entry{File: "traces/a.trace", Meta: ipdOnlyMeta("a", store.RoleTest, store.LabelBenign)})
	seed(store.Entry{File: "traces/b.trace", Audit: store.AuditAudited,
		Meta: ipdOnlyMeta("b", store.RoleTest, store.LabelCovert), Triage: &sc})
	neutral := triage.Neutral()
	seed(store.Entry{File: "traces/c.trace", Meta: ipdOnlyMeta("c", store.RoleTraining, store.LabelBenign), Triage: &neutral})
	f.Add([]byte(`{"file":"x","triage":{"schema":9,"suspicion":1e308,"topWindow":[-4,2]}}`))
	f.Add([]byte(`{"triage":{"perDetector":{"cce":null}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var e store.Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return
		}
		_ = e.Suspicion()
		b, err := json.Marshal(e)
		if err != nil {
			// Hostile numerics (NaN can't arrive via JSON, but huge
			// floats can) must still re-encode; anything else is a bug.
			t.Fatalf("re-encode of decoded entry failed: %v", err)
		}
		var back store.Entry
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, b)
		}
		if (back.Triage == nil) != (e.Triage == nil) {
			t.Fatalf("score presence not stable: %+v vs %+v", e.Triage, back.Triage)
		}
		if e.Triage != nil && back.Triage.Suspicion != e.Triage.Suspicion {
			t.Fatalf("suspicion drifted: %v vs %v", e.Triage.Suspicion, back.Triage.Suspicion)
		}
	})
}
