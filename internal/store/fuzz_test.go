package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/store"
)

// FuzzReadTrace throws hostile containers at the full trace decode
// path. The seed corpus covers both container versions, checkpoint
// sections (the SANLOG2 'L' payload), chunked multi-frame sections,
// and the oversized-metadata rejection path, so the fuzzer starts
// from every boundary the reader defends. Properties: never panic,
// errors stay wrapped, the typed ErrMetaTooLarge is the only way an
// oversized metadata section resolves, and a successfully decoded
// trace can be released and decoded again identically (the pooled
// buffers never leak state between decodes).
func FuzzReadTrace(f *testing.F) {
	addContainer := func(meta store.Meta, seed uint64, checkpointed bool) []byte {
		log := fixtures.RoundTripLog(seed)
		if checkpointed {
			log = fixtures.RoundTripLogCheckpointed(seed)
		}
		tr := fullTrace()
		tr.Log = log
		var buf bytes.Buffer
		if err := store.WriteTrace(&buf, meta, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		return buf.Bytes()
	}
	meta := testMeta()
	addContainer(meta, 1, false)
	full := addContainer(meta, 2, true)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-3])

	// The oversized-metadata rejection path: a metadata section chunked
	// across enough valid frames to pass MaxFrame.
	var big bytes.Buffer
	w, err := store.NewWriter(&big)
	if err != nil {
		f.Fatal(err)
	}
	huge := fmt.Sprintf(`{"id":"x","shard":"s","role":"test","label":"unknown","channel":%q}`,
		strings.Repeat("a", store.MaxFrame+1))
	if _, err := w.Section(store.FrameMeta).Write([]byte(huge)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(big.Bytes())
	f.Add([]byte("TDRTRACE\x01"))
	f.Add([]byte("TDRTRACE\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, tr, err := store.ReadTrace(bytes.NewReader(data))
		if err != nil {
			msg := err.Error()
			if !strings.HasPrefix(msg, "store:") && !strings.HasPrefix(msg, "replaylog:") && !isIOError(err) {
				t.Fatalf("unwrapped error: %v", err)
			}
			if strings.Contains(msg, "metadata section too large") && !errors.Is(err, store.ErrMetaTooLarge) {
				t.Fatalf("oversized metadata not typed: %v", err)
			}
			return
		}
		// A decodable container must decode identically after the first
		// trace's pooled buffers are recycled.
		var logCopy []byte
		if tr.Log != nil {
			var lb bytes.Buffer
			if err := tr.Log.Encode(&lb); err != nil {
				t.Fatalf("re-encode of decoded log: %v", err)
			}
			logCopy = lb.Bytes()
		}
		tr.Release()
		_, tr2, err := store.ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second decode failed after release: %v", err)
		}
		defer tr2.Release()
		if tr2.Log != nil {
			var lb bytes.Buffer
			if err := tr2.Log.Encode(&lb); err != nil {
				t.Fatalf("re-encode of second decode: %v", err)
			}
			if !bytes.Equal(logCopy, lb.Bytes()) {
				t.Fatal("pooled-buffer reuse changed a decoded log")
			}
		}
	})
}

// isIOError reports low-level readers' unwrapped io errors
// (io.ErrUnexpectedEOF from ReadFull) that surface through decode.
func isIOError(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "EOF") || strings.Contains(msg, "unexpected")
}
