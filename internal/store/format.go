// Package store implements the durable on-disk trace corpus the
// auditor consumes (paper §3, §6.5): during play the supporting core
// writes replay material to stable storage; the audit side later reads
// it back — possibly on a different machine — and replays it. A corpus
// is a directory of per-trace container files plus JSON sidecars and a
// directory-level manifest.json naming every trace and the shards
// (program + machine type + noise profile populations) they belong to.
//
// Container format, version 1:
//
//	magic    "TDRTRACE"                      (8 bytes)
//	version  0x01                            (1 byte)
//	frames   until the end frame:
//	  type     one of 'M' 'I' 'L' 'X' 'E'    (1 byte)
//	  length   payload bytes, little-endian  (uint32, <= MaxFrame)
//	  payload  length bytes
//	  crc      IEEE CRC-32 over type+length+payload, little-endian
//	end      an 'E' frame with empty payload, then EOF
//
// Sections ('M' metadata JSON, 'I' inter-packet delays, 'L' the
// replaylog encoding, 'X' the observed execution) are sequences of
// consecutive frames of one type; large sections are chunked so that
// neither writing nor reading ever buffers a whole log. Trailing bytes
// after the end frame are corruption, as is a missing end frame — a
// truncated upload can never be mistaken for a complete trace.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"sanity/internal/bufpool"
)

// FrameType tags one container frame.
type FrameType byte

// Frame types, in the order their sections appear in a container.
const (
	// FrameMeta is the JSON-encoded Meta, always the first section.
	FrameMeta FrameType = 'M'
	// FrameIPD carries the trace's inter-packet delays.
	FrameIPD FrameType = 'I'
	// FrameLog carries the replaylog binary encoding.
	FrameLog FrameType = 'L'
	// FrameExec carries the observed play execution.
	FrameExec FrameType = 'X'
	// FrameEnd terminates the container; its payload is empty.
	FrameEnd FrameType = 'E'
)

// Version is the container format version this package writes.
// Version 2 containers may carry checkpointed replay logs (the
// SANLOG2 encoding with quiescence-boundary snapshots) in their 'L'
// section; the frame layout is unchanged. Readers accept version 1
// containers too — their logs simply carry no checkpoints, so audits
// over old corpora fall back to full replay.
const Version = 2

// minVersion is the oldest container version readers accept.
const minVersion = 1

const (
	// chunkSize bounds the payload of frames the Writer emits, so
	// streaming a large section never buffers it whole.
	chunkSize = 64 << 10
	// MaxFrame bounds the payload a Reader accepts; a corrupted length
	// field cannot demand an arbitrary allocation.
	MaxFrame = 1 << 20
)

var containerMagic = []byte("TDRTRACE")

// Writer streams a container: a versioned header followed by CRC-32
// checksummed frames. Callers open sections with Section, stream bytes
// into them, and Close to emit the end frame.
type Writer struct {
	w      io.Writer
	cur    FrameType
	buf    []byte
	err    error
	closed bool
}

// NewWriter writes the container header at the current Version and
// returns the frame writer. WriteTrace downgrades to v1 when nothing
// in the trace needs v2 (see NewWriterVersion), so checkpoint-free
// corpora stay readable by pre-v2 auditors.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterVersion(w, Version)
}

// NewWriterVersion writes the container header at an explicit
// version. Only versions this package can itself read are accepted.
func NewWriterVersion(w io.Writer, version byte) (*Writer, error) {
	if version < minVersion || version > Version {
		return nil, fmt.Errorf("store: cannot write container version %d (supported %d..%d)", version, minVersion, Version)
	}
	if _, err := w.Write(containerMagic); err != nil {
		return nil, fmt.Errorf("store: writing magic: %w", err)
	}
	if _, err := w.Write([]byte{version}); err != nil {
		return nil, fmt.Errorf("store: writing version: %w", err)
	}
	return &Writer{w: w, buf: make([]byte, 0, chunkSize)}, nil
}

// writeFrame emits one complete frame.
func (w *Writer) writeFrame(t FrameType, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, b := range [][]byte{hdr[:], payload, sum[:]} {
		if _, err := w.w.Write(b); err != nil {
			w.err = fmt.Errorf("store: writing frame: %w", err)
			return w.err
		}
	}
	return nil
}

// flushSection emits the buffered tail of the current section.
func (w *Writer) flushSection() error {
	if len(w.buf) == 0 {
		return w.err
	}
	err := w.writeFrame(w.cur, w.buf)
	w.buf = w.buf[:0]
	return err
}

// Section finishes the current section and starts a new one of the
// given type, returning the writer to stream its bytes into. Bytes are
// chunked into frames of at most chunkSize; a section nobody writes to
// produces no frames at all.
func (w *Writer) Section(t FrameType) io.Writer {
	w.flushSection()
	w.cur = t
	return sectionWriter{w}
}

type sectionWriter struct{ w *Writer }

func (s sectionWriter) Write(p []byte) (int, error) {
	w := s.w
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("store: write to closed container")
	}
	total := len(p)
	for len(p) > 0 {
		if len(w.buf) == chunkSize {
			if err := w.flushSection(); err != nil {
				return 0, err
			}
		}
		n := chunkSize - len(w.buf)
		if n > len(p) {
			n = len(p)
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

// Close flushes the open section and writes the end frame. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushSection()
	w.writeFrame(FrameEnd, nil)
	return w.err
}

// Reader streams a container back: NewReader consumes the header, and
// each Next call yields the following section as an io.Reader that
// verifies every frame's CRC as it goes. Next returns io.EOF once the
// end frame — and nothing after it — has been seen.
type Reader struct {
	r       io.Reader
	pending *frame
	cursec  *sectionReader
	done    bool
	// scratch backs every frame payload this Reader yields. At most
	// one frame is live at a time — a section's current chunk (cur) or
	// the lookahead frame that ended it (pending), never both — and
	// sectionReader.Read hands bytes out by copy, so reusing one
	// buffer is safe and removes the per-frame make([]byte, n) that
	// used to dominate the load stage (every skipped section still
	// paid it in full).
	scratch bufpool.Scratch
}

type frame struct {
	t       FrameType
	payload []byte
}

// NewReader validates the container header.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, len(containerMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("store: reading container header: %w", err)
	}
	if string(hdr[:len(containerMagic)]) != string(containerMagic) {
		return nil, fmt.Errorf("store: bad container magic %q", hdr[:len(containerMagic)])
	}
	if v := hdr[len(containerMagic)]; v < minVersion || v > Version {
		return nil, fmt.Errorf("store: unsupported container version %d (want %d..%d)", v, minVersion, Version)
	}
	return &Reader{r: r}, nil
}

// readFrame reads and CRC-checks one frame.
func (r *Reader) readFrame() (*frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: reading frame header: %w", err)
	}
	t := FrameType(hdr[0])
	switch t {
	case FrameMeta, FrameIPD, FrameLog, FrameExec, FrameEnd:
	default:
		return nil, fmt.Errorf("store: unknown frame type %q", hdr[0])
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return nil, fmt.Errorf("store: frame of %d bytes exceeds the %d limit", n, MaxFrame)
	}
	payload := r.scratch.Grow(int(n))
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("store: reading %q frame payload: %w", byte(t), err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.r, sum[:]); err != nil {
		return nil, fmt.Errorf("store: reading %q frame checksum: %w", byte(t), err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if got, want := binary.LittleEndian.Uint32(sum[:]), crc.Sum32(); got != want {
		return nil, fmt.Errorf("store: %q frame CRC mismatch (corrupted container)", byte(t))
	}
	return &frame{t: t, payload: payload}, nil
}

// Next returns the next section's type and a streaming reader over its
// concatenated frames. Any unread remainder of the previous section is
// drained first, so callers may skip sections they do not need. After
// the end frame Next verifies the stream is exhausted and returns
// io.EOF.
func (r *Reader) Next() (FrameType, io.Reader, error) {
	if r.done {
		return 0, nil, io.EOF
	}
	if r.cursec != nil {
		if _, err := io.Copy(io.Discard, r.cursec); err != nil {
			return 0, nil, err
		}
		r.cursec = nil
	}
	f := r.pending
	r.pending = nil
	if f == nil {
		var err error
		if f, err = r.readFrame(); err != nil {
			return 0, nil, err
		}
	}
	if f.t == FrameEnd {
		if len(f.payload) != 0 {
			return 0, nil, fmt.Errorf("store: end frame carries %d payload bytes", len(f.payload))
		}
		var one [1]byte
		switch _, err := io.ReadFull(r.r, one[:]); err {
		case io.EOF:
		case nil:
			return 0, nil, fmt.Errorf("store: trailing garbage after end frame")
		default:
			return 0, nil, fmt.Errorf("store: after end frame: %w", err)
		}
		r.done = true
		return 0, nil, io.EOF
	}
	r.cursec = &sectionReader{r: r, t: f.t, cur: f.payload}
	return f.t, r.cursec, nil
}

// sectionReader concatenates consecutive same-type frames.
type sectionReader struct {
	r    *Reader
	t    FrameType
	cur  []byte
	done bool
}

func (s *sectionReader) Read(p []byte) (int, error) {
	for len(s.cur) == 0 {
		if s.done {
			return 0, io.EOF
		}
		f, err := s.r.readFrame()
		if err != nil {
			return 0, err
		}
		if f.t != s.t {
			s.r.pending = f
			s.done = true
			return 0, io.EOF
		}
		s.cur = f.payload
	}
	n := copy(p, s.cur)
	s.cur = s.cur[n:]
	return n, nil
}
