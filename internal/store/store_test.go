package store_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"sanity/internal/core"
	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/store"
)

// fullTrace builds a trace with all three data sections: IPDs, a log
// exercising every record kind, and an observed execution.
func fullTrace() *detect.Trace {
	log := fixtures.RoundTripLog(11)
	exec := &core.Execution{
		Mode: core.ModePlay,
		Outputs: []core.OutputEvent{
			{Seq: 0, Instr: 100, TimePs: 5_000, Payload: []byte("first")},
			{Seq: 1, Instr: 900, TimePs: 12_345, Payload: []byte{0, 1, 2, 255}},
			{Seq: 2, Instr: 2_000, TimePs: 99_000, Payload: nil},
		},
		TotalPs:      123_456_789,
		Instructions: 42_000,
		ExitCode:     0,
	}
	return &detect.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec}
}

func testMeta() store.Meta {
	return store.Meta{
		ID: "covert-0", Shard: "nfsd/optiplex9020/sanity",
		Role: store.RoleTest, Label: store.LabelCovert, Channel: "ipctc",
	}
}

func encode(t testing.TB, meta store.Meta, tr *detect.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := store.WriteTrace(&buf, meta, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	tr := fullTrace()
	raw := encode(t, testMeta(), tr)
	meta, got, err := store.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if meta.ID != "covert-0" || meta.Channel != "ipctc" || meta.Label != store.LabelCovert {
		t.Fatalf("metadata lost: %+v", meta)
	}
	if meta.Program != "nfsd" || meta.Machine != "optiplex9020" || meta.Profile != "sanity" {
		t.Fatalf("identity not filled from the log: %+v", meta)
	}
	if meta.IPDs != len(tr.IPDs) || meta.Records != len(tr.Log.Records) {
		t.Fatalf("count cross-checks wrong: %+v", meta)
	}
	if len(got.IPDs) != len(tr.IPDs) {
		t.Fatalf("IPDs lost: %d vs %d", len(got.IPDs), len(tr.IPDs))
	}
	for i := range tr.IPDs {
		if got.IPDs[i] != tr.IPDs[i] {
			t.Fatalf("IPD %d drifted", i)
		}
	}
	if !got.Log.Equal(tr.Log) {
		t.Fatal("log did not round-trip")
	}
	if got.Play == nil || len(got.Play.Outputs) != len(tr.Play.Outputs) {
		t.Fatal("execution lost")
	}
	for i, o := range tr.Play.Outputs {
		g := got.Play.Outputs[i]
		if g.Seq != o.Seq || g.Instr != o.Instr || g.TimePs != o.TimePs || !bytes.Equal(g.Payload, o.Payload) {
			t.Fatalf("output %d differs: %+v vs %+v", i, g, o)
		}
	}
	if got.Play.TotalPs != tr.Play.TotalPs || got.Play.Instructions != tr.Play.Instructions {
		t.Fatal("execution totals differ")
	}
}

// TestIPDOnlyTrace checks a synthetic trace (no log, no execution)
// survives a round trip.
func TestIPDOnlyTrace(t *testing.T) {
	tr := &detect.Trace{IPDs: []int64{10, 20, -3, 1 << 60}}
	meta := testMeta()
	meta.Label = store.LabelBenign
	meta.Channel = ""
	raw := encode(t, meta, tr)
	got, gotTr, err := store.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Records != 0 || gotTr.Log != nil || gotTr.Play != nil {
		t.Fatal("phantom sections appeared")
	}
	if len(gotTr.IPDs) != 4 || gotTr.IPDs[2] != -3 || gotTr.IPDs[3] != 1<<60 {
		t.Fatalf("IPDs wrong: %v", gotTr.IPDs)
	}
}

// TestCorruptionRejected flips every byte position (sparsely) and
// demands an error — frame CRCs must catch any single-byte corruption
// in any section, and never panic.
func TestCorruptionRejected(t *testing.T) {
	raw := encode(t, testMeta(), fullTrace())
	rejected := 0
	for off := 0; off < len(raw); off += 7 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xA5
		if _, _, err := store.ReadTrace(bytes.NewReader(mut)); err != nil {
			rejected++
		}
	}
	// Every flip lands in the header, a frame header, a payload, or a
	// CRC — all covered by the magic check or a checksum.
	if total := (len(raw) + 6) / 7; rejected != total {
		t.Fatalf("%d/%d corruptions detected", rejected, total)
	}
}

func TestTruncationRejected(t *testing.T) {
	raw := encode(t, testMeta(), fullTrace())
	for _, cut := range []int{0, 4, 9, 14, len(raw) / 2, len(raw) - 1} {
		if _, _, err := store.ReadTrace(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	raw := encode(t, testMeta(), fullTrace())
	for _, extra := range [][]byte{{0}, []byte("junk"), raw} {
		mut := append(append([]byte(nil), raw...), extra...)
		if _, _, err := store.ReadTrace(bytes.NewReader(mut)); err == nil {
			t.Fatalf("accepted %d trailing bytes", len(extra))
		}
	}
}

func TestBadVersionRejected(t *testing.T) {
	raw := encode(t, testMeta(), fullTrace())
	mut := append([]byte(nil), raw...)
	mut[8] = 99
	if _, _, err := store.ReadTrace(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

// TestReadIPDsSkipsHeavySections checks the training fast path decodes
// the delays without touching the log or execution bytes.
func TestReadIPDsSkipsHeavySections(t *testing.T) {
	tr := fullTrace()
	raw := encode(t, testMeta(), tr)
	meta, ipds, err := store.ReadIPDs(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadIPDs: %v", err)
	}
	if meta.ID != "covert-0" || len(ipds) != len(tr.IPDs) {
		t.Fatalf("fast path lost data: %d IPDs", len(ipds))
	}
	// Corrupt a byte near the end (inside the exec section): the fast
	// path must not notice, the full read must.
	mut := append([]byte(nil), raw...)
	mut[len(mut)-20] ^= 0xFF
	if _, _, err := store.ReadIPDs(bytes.NewReader(mut)); err != nil {
		t.Fatalf("fast path read a section it should skip: %v", err)
	}
	if _, _, err := store.ReadTrace(bytes.NewReader(mut)); err == nil {
		t.Fatal("full read missed exec-section corruption")
	}
}

// TestMetaCountMismatchRejected forges a container whose metadata
// promises more IPDs than its data section holds: the counts are
// integrity checks, not hints.
func TestMetaCountMismatchRejected(t *testing.T) {
	forge := func(claim int, ipds []int64) []byte {
		var buf bytes.Buffer
		fw, err := store.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		meta := testMeta()
		meta.IPDs = claim
		mj, err := json.Marshal(meta)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Section(store.FrameMeta).Write(mj); err != nil {
			t.Fatal(err)
		}
		sw := fw.Section(store.FrameIPD)
		var b [8]byte
		for _, d := range ipds {
			binary.LittleEndian.PutUint64(b[:], uint64(d))
			if _, err := sw.Write(b[:]); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if _, _, err := store.ReadTrace(bytes.NewReader(forge(5, []int64{1, 2, 3}))); err == nil {
		t.Fatal("short IPD section accepted")
	}
	if _, _, err := store.ReadTrace(bytes.NewReader(forge(2, []int64{1, 2, 3}))); err == nil {
		t.Fatal("long IPD section accepted")
	}
	if _, _, err := store.ReadTrace(bytes.NewReader(forge(3, []int64{1, 2, 3}))); err != nil {
		t.Fatalf("honest container rejected: %v", err)
	}
}

func TestStoreDirectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Create(filepath.Join(dir, "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	shard := store.ShardMeta{Key: "nfsd/optiplex9020/sanity", Program: "nfsd", Machine: "optiplex9020", Profile: "sanity", Seed: 7}
	if err := st.AddShard(shard); err != nil {
		t.Fatal(err)
	}
	if err := st.AddShard(shard); err != nil {
		t.Fatalf("idempotent re-add failed: %v", err)
	}
	bad := shard
	bad.Seed = 8
	if err := st.AddShard(bad); err == nil {
		t.Fatal("conflicting shard accepted")
	}
	train := store.Meta{ID: "train-0", Shard: shard.Key, Role: store.RoleTraining, Label: store.LabelBenign}
	if err := st.Put(train, &detect.Trace{IPDs: []int64{5, 6, 7}}); err != nil {
		t.Fatal(err)
	}
	test := testMeta()
	if err := st.Put(test, fullTrace()); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(test, fullTrace()); err == nil {
		t.Fatal("duplicate trace accepted")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	re, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Shards(); len(got) != 1 || got[0] != shard {
		t.Fatalf("shards did not persist: %+v", got)
	}
	entries := re.Entries()
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	training, err := re.TrainingIPDs(shard.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(training) != 1 || len(training[0]) != 3 || training[0][2] != 7 {
		t.Fatalf("training IPDs wrong: %v", training)
	}
	for _, e := range entries {
		if e.Role != store.RoleTest {
			continue
		}
		meta, tr, err := re.LoadTrace(e.File)
		if err != nil {
			t.Fatalf("LoadTrace(%s): %v", e.File, err)
		}
		if meta.ID != "covert-0" || tr.Log == nil || tr.Play == nil {
			t.Fatalf("test trace lost material: %+v", meta)
		}
		// The sidecar exists and parses as the same metadata.
		side, err := os.ReadFile(filepath.Join(re.Dir(), e.File+".json"))
		if err != nil {
			t.Fatalf("sidecar: %v", err)
		}
		if !strings.Contains(string(side), `"covert-0"`) {
			t.Fatalf("sidecar does not name the trace: %s", side)
		}
	}
	// Path traversal is refused.
	if _, err := re.OpenTrace("../../etc/passwd"); err == nil {
		t.Fatal("path traversal accepted")
	}
}

// TestAdmissionGuards: duplicate file names after sanitization and
// unregistered shards are rejected before any container is written.
func TestAdmissionGuards(t *testing.T) {
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Unregistered shard: rejected.
	stray := testMeta()
	if err := st.Put(stray, fullTrace()); err == nil || !strings.Contains(err.Error(), "unregistered shard") {
		t.Fatalf("unregistered shard accepted: %v", err)
	}
	if err := st.AddShard(store.ShardMeta{Key: stray.Shard, Program: "nfsd", Machine: "optiplex9020", Profile: "sanity"}); err != nil {
		t.Fatal(err)
	}
	// Two IDs that sanitize onto the same container file must not
	// silently overwrite one another.
	a := testMeta()
	a.ID = "x/y"
	b := testMeta()
	b.ID = "x_y"
	if err := st.Put(a, fullTrace()); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(b, fullTrace()); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("file-name collision accepted: %v", err)
	}
	if got := len(st.Entries()); got != 1 {
		t.Fatalf("%d entries after rejected collision, want 1", got)
	}
	// Identity fields that could break the line-framed ingest protocol
	// are refused outright.
	evil := testMeta()
	evil.ID = "x\nBYE 0"
	if err := st.Put(evil, fullTrace()); err == nil {
		t.Fatal("newline in trace ID accepted")
	}
	// ".." would be admitted, land in the manifest, and then be refused
	// forever by OpenTrace's traversal guard — reject it up front.
	dots := testMeta()
	dots.ID = "a..b"
	if err := st.Put(dots, fullTrace()); err == nil {
		t.Fatal("'..' in trace ID accepted")
	}
	// Metadata that contradicts the embedded log's identity is a lying
	// upload, rejected at admission.
	liar := testMeta()
	liar.ID = "liar"
	liar.Program = "echod"
	if err := st.Put(liar, fullTrace()); err == nil || !strings.Contains(err.Error(), "recorded on") {
		t.Fatalf("meta/log identity mismatch accepted: %v", err)
	}
	// Metadata that contradicts the registered shard is rejected too.
	if err := st.AddShard(store.ShardMeta{Key: "other/shard", Program: "echod", Machine: "slower-t-prime", Profile: "sanity"}); err != nil {
		t.Fatal(err)
	}
	stray2 := testMeta()
	stray2.ID = "wrong-shard"
	stray2.Shard = "other/shard" // trace's log says nfsd/optiplex9020
	if err := st.Put(stray2, fullTrace()); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("meta/shard identity mismatch accepted: %v", err)
	}
}

// TestPutContainerValidates is the ingest-side contract: a flipped CRC
// byte is a per-trace error, a valid container is admitted and
// readable.
func TestPutContainerValidates(t *testing.T) {
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddShard(store.ShardMeta{Key: testMeta().Shard, Program: "nfsd", Machine: "optiplex9020", Profile: "sanity"}); err != nil {
		t.Fatal(err)
	}
	raw := encode(t, testMeta(), fullTrace())
	mut := append([]byte(nil), raw...)
	mut[len(mut)-6] ^= 0x01 // inside the end frame / last CRC region
	if _, err := st.PutContainer(bytes.NewReader(mut)); err == nil {
		t.Fatal("corrupted container admitted")
	}
	if len(st.Entries()) != 0 {
		t.Fatal("rejected container left a manifest entry")
	}
	meta, err := st.PutContainer(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "covert-0" {
		t.Fatalf("admitted wrong meta: %+v", meta)
	}
	if len(st.Entries()) != 1 {
		t.Fatal("admitted container missing from the manifest")
	}
}

// TestManifestVersionFollowsContent: corpora are stamped by what they
// contain. Checkpoint-free corpora stay at manifest (and container)
// v1 — readable by pre-checkpointing auditors — while admitting one
// checkpointed trace upgrades the manifest to v2; and Open accepts
// the whole readable version range, so legacy corpora keep auditing
// through the full-replay fallback.
func TestManifestVersionFollowsContent(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	shard := store.ShardMeta{Key: "nfsd/optiplex9020/sanity", Program: "nfsd", Machine: "optiplex9020", Profile: "sanity"}
	if err := st.AddShard(shard); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testMeta(), fullTrace()); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	readVersion := func() int {
		b, err := os.ReadFile(filepath.Join(dir, store.ManifestName))
		if err != nil {
			t.Fatal(err)
		}
		var m struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		return m.Version
	}
	if v := readVersion(); v != 1 {
		t.Fatalf("checkpoint-free corpus stamped manifest v%d, want 1", v)
	}
	// A legacy (v1) manifest must open and audit-load normally.
	reopened, err := store.Open(dir)
	if err != nil {
		t.Fatalf("legacy-version corpus rejected: %v", err)
	}
	if _, _, err := reopened.LoadTrace(reopened.Entries()[0].File); err != nil {
		t.Fatal(err)
	}
	// Admitting a checkpointed trace upgrades the manifest.
	ck := fullTrace()
	ck.Log = fixtures.RoundTripLogCheckpointed(11)
	meta := testMeta()
	meta.ID = "covert-ck"
	if err := reopened.Put(meta, ck); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Flush(); err != nil {
		t.Fatal(err)
	}
	if v := readVersion(); v != 2 {
		t.Fatalf("checkpointed corpus stamped manifest v%d, want 2", v)
	}
	if _, err := store.Open(dir); err != nil {
		t.Fatal(err)
	}
	// Versions beyond what this package reads are still refused.
	b, _ := os.ReadFile(filepath.Join(dir, store.ManifestName))
	b = bytes.Replace(b, []byte(`"version": 2`), []byte(`"version": 9`), 1)
	if err := os.WriteFile(filepath.Join(dir, store.ManifestName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future manifest version accepted: %v", err)
	}
}

// TestAutoCheckpointInterval pins the autotuning heuristic: interval
// ~ sqrt(2n) of the median trace length, clamped to the supported
// range, robust to outliers and degenerate inputs.
func TestAutoCheckpointInterval(t *testing.T) {
	cases := []struct {
		name    string
		lengths []int
		want    int
	}{
		{"empty population defaults to the floor", nil, store.MinCheckpointInterval},
		{"only nonpositive lengths default to the floor", []int{0, -3}, store.MinCheckpointInterval},
		{"short traces clamp to the floor", []int{4, 5, 6}, store.MinCheckpointInterval},
		{"the tooling's default corpus shape", []int{60, 60, 60}, 11},   // sqrt(120) ~ 10.95
		{"paper-scale traces", []int{400, 400, 400}, 28},                // sqrt(800) ~ 28.3
		{"median decides, not the mean", []int{60, 60, 60, 100000}, 11}, // one huge outlier
		{"zero-length traces are ignored", []int{0, 60, 60, 0}, 11},     //
		{"very long traces clamp to the ceiling", []int{10_000_000}, store.MaxCheckpointInterval},
	}
	for _, c := range cases {
		if got := store.AutoCheckpointInterval(c.lengths); got != c.want {
			t.Errorf("%s: AutoCheckpointInterval(%v) = %d, want %d", c.name, c.lengths, got, c.want)
		}
	}
	// Monotone-ish sanity: longer traces never pick a smaller interval.
	prev := 0
	for n := 1; n <= 4096; n *= 2 {
		got := store.AutoCheckpointInterval([]int{n})
		if got < prev {
			t.Fatalf("interval shrank from %d to %d as traces grew to %d packets", prev, got, n)
		}
		prev = got
	}
}

// TestTraceLengths: the manifest carries each trace's IPD count, so
// length statistics never re-read a container.
func TestTraceLengths(t *testing.T) {
	st, err := store.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddShard(store.ShardMeta{Key: "s", Program: "p", Machine: "m", Profile: "q"}); err != nil {
		t.Fatal(err)
	}
	for i, n := range []int{5, 9, 3} {
		tr := &detect.Trace{IPDs: make([]int64, n)}
		meta := store.Meta{ID: fmt.Sprintf("t%d", i), Shard: "s", Role: store.RoleTest, Label: store.LabelUnknown}
		if err := st.Put(meta, tr); err != nil {
			t.Fatal(err)
		}
	}
	got := st.TraceLengths()
	want := []int{5, 9, 3}
	if len(got) != len(want) {
		t.Fatalf("TraceLengths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TraceLengths = %v, want %v", got, want)
		}
	}
}

// auditStateCorpus builds a small corpus: one training trace plus n
// IPD-only test traces under one shard.
func auditStateCorpus(t *testing.T, dir string, n int) *store.Store {
	t.Helper()
	st, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	shard := store.ShardMeta{Key: "s", Program: "nfsd", Machine: "optiplex9020", Profile: "sanity", Seed: 1}
	if err := st.AddShard(shard); err != nil {
		t.Fatal(err)
	}
	train := store.Meta{ID: "train-0", Shard: "s", Role: store.RoleTraining, Label: store.LabelBenign}
	if err := st.Put(train, &detect.Trace{IPDs: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		meta := store.Meta{ID: fmt.Sprintf("t-%d", i), Shard: "s", Role: store.RoleTest, Label: store.LabelUnknown}
		if err := st.Put(meta, &detect.Trace{IPDs: []int64{10, 20, 30}}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestAuditStateLifecycle: pending test traces are claimed exactly
// once, terminal states persist across Flush/Open, and ReclaimStale
// demotes only in-flight claims.
func TestAuditStateLifecycle(t *testing.T) {
	st := auditStateCorpus(t, t.TempDir(), 3)

	claimed := st.ClaimPending()
	if len(claimed) != 3 {
		t.Fatalf("claimed %d traces, want 3 (training must not be claimed)", len(claimed))
	}
	for _, e := range claimed {
		if e.Audit != store.AuditClaimed || e.Role != store.RoleTest {
			t.Fatalf("claimed entry in wrong state: %+v", e)
		}
	}
	if again := st.ClaimPending(); len(again) != 0 {
		t.Fatalf("second claim got %d traces, want 0", len(again))
	}

	// One audited, one failed, one stays claimed (simulating a crash).
	if err := st.SetAuditState(claimed[0].File, store.AuditAudited); err != nil {
		t.Fatal(err)
	}
	if err := st.SetAuditState(claimed[1].File, store.AuditFailed); err != nil {
		t.Fatal(err)
	}
	if err := st.SetAuditState(claimed[2].File, "bogus"); err == nil {
		t.Fatal("unknown audit state accepted")
	}
	if err := st.SetAuditState("no/such.trace", store.AuditAudited); err == nil {
		t.Fatal("unknown container accepted")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	re, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	states := re.AuditStates()
	if states[store.AuditAudited] != 1 || states[store.AuditFailed] != 1 || states[store.AuditClaimed] != 1 {
		t.Fatalf("persisted states wrong: %v", states)
	}
	// The restarted daemon reclaims the stale claim; terminal states
	// stay terminal, so nothing is ever double-audited.
	if n := re.ReclaimStale(); n != 1 {
		t.Fatalf("ReclaimStale demoted %d, want 1", n)
	}
	reclaimed := re.ClaimPending()
	if len(reclaimed) != 1 || reclaimed[0].File != claimed[2].File {
		t.Fatalf("reclaim got %+v, want the crashed trace only", reclaimed)
	}
	// The audited trace's sidecar records its state.
	side, err := os.ReadFile(filepath.Join(re.Dir(), claimed[0].File+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(side), `"audit": "audited"`) {
		t.Fatalf("sidecar does not record audit state: %s", side)
	}
}

// TestSidecarAtomicUnderConcurrentReads hammers audit-state changes
// (each of which rewrites the sidecar) against a reader re-reading
// the same sidecar: every read must observe a complete, parseable
// JSON document. Before sidecars went through atomicWrite, a direct
// os.WriteFile here let the reader catch truncated documents.
func TestSidecarAtomicUnderConcurrentReads(t *testing.T) {
	st := auditStateCorpus(t, t.TempDir(), 1)
	claimed := st.ClaimPending()
	if len(claimed) != 1 {
		t.Fatalf("claimed %d, want 1", len(claimed))
	}
	side := filepath.Join(st.Dir(), claimed[0].File+".json")

	var stop atomic.Bool
	done := make(chan struct{})
	var readerErr error
	go func() {
		defer close(done)
		for i := 0; !stop.Load(); i++ {
			b, err := os.ReadFile(side)
			if err != nil {
				readerErr = fmt.Errorf("read %d: %v", i, err)
				return
			}
			var doc map[string]any
			if err := json.Unmarshal(b, &doc); err != nil {
				readerErr = fmt.Errorf("read %d: torn sidecar (%v): %q", i, err, b)
				return
			}
		}
	}()

	states := []string{store.AuditAudited, store.AuditClaimed, store.AuditFailed, store.AuditClaimed}
	for i := 0; i < 400; i++ {
		if err := st.SetAuditState(claimed[0].File, states[i%len(states)]); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	<-done
	if readerErr != nil {
		t.Fatal(readerErr)
	}
}

// TestOversizedMetadataRejected builds a container whose metadata
// section spans enough chunked frames to exceed MaxFrame — every
// frame individually valid — and demands the typed ErrMetaTooLarge
// from every reader entry point, instead of a truncated blob reaching
// the JSON decoder.
func TestOversizedMetadataRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := store.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	huge := fmt.Sprintf(`{"id":"x","shard":"s","role":"test","label":"unknown","channel":%q}`,
		strings.Repeat("a", store.MaxFrame+1))
	if _, err := w.Section(store.FrameMeta).Write([]byte(huge)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, _, err := store.ReadTrace(bytes.NewReader(raw)); !errors.Is(err, store.ErrMetaTooLarge) {
		t.Fatalf("ReadTrace: got %v, want ErrMetaTooLarge", err)
	}
	if _, err := store.ReadMeta(bytes.NewReader(raw)); !errors.Is(err, store.ErrMetaTooLarge) {
		t.Fatalf("ReadMeta: got %v, want ErrMetaTooLarge", err)
	}
	if _, _, err := store.ReadIPDs(bytes.NewReader(raw)); !errors.Is(err, store.ErrMetaTooLarge) {
		t.Fatalf("ReadIPDs: got %v, want ErrMetaTooLarge", err)
	}

	// One byte under the limit is fine: the limit gates size, and the
	// JSON beneath it still decodes.
	var ok bytes.Buffer
	w2, err := store.NewWriter(&ok)
	if err != nil {
		t.Fatal(err)
	}
	legal := fmt.Sprintf(`{"id":"x","shard":"s","role":"test","label":"unknown","channel":%q}`,
		strings.Repeat("a", store.MaxFrame-256))
	if _, err := w2.Section(store.FrameMeta).Write([]byte(legal)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadMeta(bytes.NewReader(ok.Bytes())); err != nil {
		t.Fatalf("metadata just under the limit rejected: %v", err)
	}
}

// TestTraceReleaseAndPoolReuse loads the same container twice,
// releases the first trace's pooled buffers, and demands the second
// decode — now running over recycled pool blocks — reproduce the
// exact payload bytes. Also checks Release is safe to call on traces
// without pooled sections.
func TestTraceReleaseAndPoolReuse(t *testing.T) {
	src := fullTrace()
	raw := encode(t, testMeta(), src)

	_, tr1, err := store.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Copy what we will compare before releasing.
	wantPayloads := make([][]byte, len(tr1.Log.Records))
	for i, r := range tr1.Log.Records {
		wantPayloads[i] = append([]byte(nil), r.Payload...)
	}
	tr1.Release()
	for _, r := range tr1.Log.Records {
		if r.Payload != nil {
			t.Fatal("Release left a payload alias behind")
		}
	}

	_, tr2, err := store.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Release()
	for i, r := range tr2.Log.Records {
		if !bytes.Equal(r.Payload, wantPayloads[i]) {
			t.Fatalf("record %d payload corrupted after pool reuse", i)
		}
	}
	if !tr2.Log.Equal(src.Log) {
		t.Fatal("second decode over recycled buffers differs from source")
	}

	var none *detect.Trace
	none.Release() // nil trace: no-op
	(&detect.Trace{IPDs: []int64{1, 2}}).Release()
}
