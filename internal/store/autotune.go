package store

import (
	"math"
	"sort"
)

// Checkpoint-interval autotuning bounds. The floor keeps a checkpoint
// from landing on nearly every output of a short trace (each snapshot
// costs a quiescence boundary at play time and container bytes
// forever); the ceiling keeps at least a few resume points in any
// trace long enough to be worth windowing.
const (
	MinCheckpointInterval = 4
	MaxCheckpointInterval = 256
)

// AutoCheckpointInterval picks a checkpoint interval (in sent
// packets) from a population of trace lengths (packets per trace).
//
// The trade it balances: a windowed audit resumes from the last
// checkpoint at or before its window, so it replays interval/2 wasted
// outputs on average — cost proportional to the interval — while the
// recording pays one quiescence boundary and one state snapshot per
// interval — cost proportional to n/interval. The total is minimized
// at interval ~ sqrt(n); the factor sqrt(2) weights a stored snapshot
// as roughly two replayed outputs, which matches the measured
// snapshot sizes of the NFS fixture corpus. The median length decides
// for a mixed population, so a few very long traces cannot starve the
// typical trace of resume points.
func AutoCheckpointInterval(lengths []int) int {
	usable := make([]int, 0, len(lengths))
	for _, n := range lengths {
		if n > 0 {
			usable = append(usable, n)
		}
	}
	if len(usable) == 0 {
		return MinCheckpointInterval
	}
	sort.Ints(usable)
	median := usable[len(usable)/2]
	interval := int(math.Round(math.Sqrt(2 * float64(median))))
	if interval < MinCheckpointInterval {
		interval = MinCheckpointInterval
	}
	if interval > MaxCheckpointInterval {
		interval = MaxCheckpointInterval
	}
	return interval
}

// TraceLengths returns the IPD count of every admitted trace in the
// manifest, in admission order — the trace-length statistics behind
// checkpoint-interval autotuning (`tdraudit record -checkpoint-every
// auto` over an existing corpus).
func (s *Store) TraceLengths() []int {
	entries := s.Entries()
	out := make([]int, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.IPDs)
	}
	return out
}
