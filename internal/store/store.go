package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sanity/internal/detect"
	"sanity/internal/obs"
	"sanity/internal/triage"
)

// ManifestName is the directory-level index file.
const ManifestName = "manifest.json"

// tracesDir is the subdirectory holding containers and sidecars.
const tracesDir = "traces"

// ShardMeta identifies one audit population of a corpus: which
// program ran, on which machine type, under which noise profile, and
// the auditor-side replay seed. The audit side resolves these names
// against its own registry of known-good binaries and machine models —
// programs and file stores are code, not data, and are never shipped
// inside a corpus.
type ShardMeta struct {
	Key     string `json:"key"`
	Program string `json:"program"`
	Machine string `json:"machine"`
	Profile string `json:"profile"`
	Seed    uint64 `json:"seed"`
}

// Audit states a manifest entry moves through. The zero value
// (AuditPending) is what every entry starts as — and what every
// pre-daemon manifest decodes to, so old corpora need no migration:
// their traces simply look unaudited.
const (
	// AuditPending marks a trace no auditor has picked up.
	AuditPending = ""
	// AuditClaimed marks a trace an auditor has taken but not yet
	// finished — in-flight work. A claim that outlives its daemon
	// (crash, SIGKILL) is demoted back to pending by ReclaimStale.
	AuditClaimed = "claimed"
	// AuditAudited marks a trace with a delivered verdict. Terminal:
	// a restarted or second daemon never re-audits it.
	AuditAudited = "audited"
	// AuditFailed marks a trace whose container could not be audited
	// at all (corrupt on disk, unresolvable shard). Terminal, so a
	// poisoned container cannot wedge a daemon into a retry loop.
	AuditFailed = "failed"
)

// Entry is one manifest line: a trace container and its metadata.
type Entry struct {
	// File is the container path relative to the store directory.
	File string `json:"file"`
	// Audit is the entry's audit state (AuditPending/Claimed/
	// Audited/Failed); omitted from JSON while pending, so manifests
	// written before audit state existed round-trip unchanged.
	Audit string `json:"audit,omitempty"`
	Meta
	// Triage is the ingest-time suspicion score (schema-versioned by
	// triage.SchemaVersion). Nil for traces stored before triage
	// existed or with scoring disabled — they read as Neutral via
	// Suspicion(), and the omitempty keeps pre-triage manifests and
	// sidecars byte-identical on rewrite.
	Triage *triage.Score `json:"triage,omitempty"`
}

// Suspicion is the entry's triage suspicion, defaulting unscored
// (legacy) entries to the neutral score — the daemon's claim-priority
// key.
func (e *Entry) Suspicion() float64 {
	if e.Triage == nil {
		return triage.NeutralSuspicion
	}
	return e.Triage.Suspicion
}

// Manifest indexes a corpus directory.
type Manifest struct {
	Version int         `json:"version"`
	Shards  []ShardMeta `json:"shards"`
	Traces  []Entry     `json:"traces"`
}

// Store is a corpus directory: trace containers, their sidecars, and
// the manifest. All methods are safe for concurrent use; Flush
// persists the manifest atomically.
type Store struct {
	dir string

	// obs, when set, feeds the shared stage histograms on container
	// decodes ("store.decode"). Set it with SetObserver before any
	// concurrent use; nil-safe throughout.
	obs *obs.Observer

	// triage, when non-nil, enables ingest-time scoring: every test
	// trace admitted through Put/PutContainer runs the streaming
	// detector ensemble and carries the result in its manifest entry
	// and sidecar. Set with EnableTriage before concurrent use.
	triage *triage.Options

	mu       sync.Mutex
	manifest Manifest
	// pending marks reserved entries whose container is still being
	// written; snapshots (Entries, Flush, TrainingIPDs) exclude them so
	// a concurrent Flush can never persist an entry without a file.
	pending map[string]struct{}
}

// EnableTriage turns on ingest-time suspicion scoring with the given
// detector options. Call before concurrent use of the store (the
// embedding daemon does, right after Create).
func (s *Store) EnableTriage(o triage.Options) { s.triage = &o }

// scoreIPDs runs the streaming detector ensemble over an admitted
// trace's IPDs, timed as the triage funnel stage. Nil when scoring is
// disabled.
func (s *Store) scoreIPDs(ipds []int64) *triage.Score {
	if s.triage == nil {
		return nil
	}
	t := s.obs.Stage(obs.StageTriage)
	defer t.End()
	sc := triage.ScoreIPDs(ipds, *s.triage)
	return &sc
}

// SetObserver attaches an observability sink: container decodes are
// timed into the per-stage histograms. Call before concurrent use of
// the store (the embedding daemon does, right after Create).
func (s *Store) SetObserver(o *obs.Observer) { s.obs = o }

// Create opens dir as a store, creating it (and its traces
// subdirectory) if needed. An existing manifest is loaded, so Create
// is also "open for append".
func Create(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, tracesDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	// A fresh corpus starts at the oldest format and is upgraded by
	// content: admitting a checkpointed trace bumps the manifest (and
	// that trace's container) to v2, so corpora that never use v2
	// features remain readable by pre-v2 auditors.
	s := &Store{dir: dir, manifest: Manifest{Version: minVersion}}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return Open(dir)
	}
	return s, nil
}

// Open loads an existing store's manifest. Every version this
// package can read is accepted — v1 corpora (recorded before
// checkpointing existed) audit through the full-replay fallback.
func Open(dir string) (*Store, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	if m.Version < minVersion || m.Version > Version {
		return nil, fmt.Errorf("store: manifest version %d, want %d..%d", m.Version, minVersion, Version)
	}
	return &Store{dir: dir, manifest: m}, nil
}

// noteTrace upgrades the manifest version when admitted content
// needs it (a checkpointed log makes the corpus v2).
func (s *Store) noteTrace(tr *detect.Trace) {
	if tr == nil || tr.Log == nil || len(tr.Log.Checkpoints) == 0 {
		return
	}
	s.mu.Lock()
	if s.manifest.Version < 2 {
		s.manifest.Version = 2
	}
	s.mu.Unlock()
}

// Dir returns the corpus directory.
func (s *Store) Dir() string { return s.dir }

// AddShard registers a shard. Re-registering an identical shard is a
// no-op; registering a conflicting one under the same key is an error.
func (s *Store) AddShard(m ShardMeta) error {
	if m.Key == "" {
		return fmt.Errorf("store: shard has no key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.manifest.Shards {
		if have.Key == m.Key {
			if have == m {
				return nil
			}
			return fmt.Errorf("store: shard %q already registered with different metadata", m.Key)
		}
	}
	s.manifest.Shards = append(s.manifest.Shards, m)
	return nil
}

// Shards returns the registered shards, sorted by key.
func (s *Store) Shards() []ShardMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]ShardMeta(nil), s.manifest.Shards...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Entries returns the fully admitted manifest entries in admission
// order; entries still being written are excluded.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admittedLocked()
}

// admittedLocked snapshots the non-pending entries. Callers hold s.mu.
func (s *Store) admittedLocked() []Entry {
	out := make([]Entry, 0, len(s.manifest.Traces))
	for _, e := range s.manifest.Traces {
		if _, busy := s.pending[e.File]; !busy {
			out = append(out, e)
		}
	}
	return out
}

// ClaimPending atomically transitions every fully admitted, pending
// test trace to AuditClaimed and returns the claimed entries (with
// their new state) in descending suspicion order — the persisted
// triage scores decide who is audited first, manifest order breaks
// ties, and unscored legacy traces sort at the neutral midpoint. The
// order survives restarts: it is computed from the manifest, so a
// fresh daemon over an old spool resumes highest-suspicion-first.
// A trace is claimed exactly once: a second call — or a second daemon
// sharing this Store — gets only traces admitted since. Training
// traces are never claimed; they are baseline material, not audit
// subjects. The claim lives in the in-memory manifest until Flush
// persists it.
func (s *Store) ClaimPending() []Entry { return s.ClaimPendingLimit(0, nil) }

// ClaimPendingLimit is ClaimPending with a per-call cap and an
// optional priority override. limit <= 0 claims everything pending;
// otherwise only the top `limit` entries are claimed and the rest
// stay pending for a later sweep — the knob that makes daemon-side
// aging meaningful. prio, when non-nil, replaces the persisted
// suspicion as the sort key (the daemon feeds an aged priority
// through it); ties keep manifest order either way.
func (s *Store) ClaimPendingLimit(limit int, prio func(Entry) float64) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var idx []int
	var keys []float64
	for i := range s.manifest.Traces {
		e := &s.manifest.Traces[i]
		if _, busy := s.pending[e.File]; busy {
			continue
		}
		if e.Role != RoleTest || e.Audit != AuditPending {
			continue
		}
		k := e.Suspicion()
		if prio != nil {
			k = prio(*e)
		}
		idx = append(idx, i)
		keys = append(keys, k)
	}
	// idx starts in manifest order; a stable sort on strictly-greater
	// keys preserves it across ties.
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
	if limit > 0 && len(order) > limit {
		order = order[:limit]
	}
	var out []Entry
	for _, o := range order {
		e := &s.manifest.Traces[idx[o]]
		e.Audit = AuditClaimed
		out = append(out, *e)
	}
	return out
}

// PendingTest snapshots the fully admitted test traces still awaiting
// a claim, in manifest order — the daemon's aging bookkeeping and the
// /triage census read it.
func (s *Store) PendingTest() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for _, e := range s.admittedLocked() {
		if e.Role == RoleTest && e.Audit == AuditPending {
			out = append(out, e)
		}
	}
	return out
}

// SetAuditState records a trace's audit state by its manifest-relative
// container path and rewrites the sidecar so the on-disk twin agrees.
// The state must be one of the Audit* constants; the entry must exist.
func (s *Store) SetAuditState(file, state string) error {
	switch state {
	case AuditPending, AuditClaimed, AuditAudited, AuditFailed:
	default:
		return fmt.Errorf("store: unknown audit state %q", state)
	}
	s.mu.Lock()
	var entry *Entry
	for i := range s.manifest.Traces {
		if s.manifest.Traces[i].File == file {
			s.manifest.Traces[i].Audit = state
			entry = &s.manifest.Traces[i]
			break
		}
	}
	var snapshot Entry
	if entry != nil {
		snapshot = *entry
	}
	s.mu.Unlock()
	if entry == nil {
		return fmt.Errorf("store: no trace with container %q", file)
	}
	return s.writeSidecar(snapshot)
}

// SetTriageScore records a trace's triage score by its
// manifest-relative container path and rewrites the sidecar so the
// on-disk twin agrees — the persistence half of ScorePending.
func (s *Store) SetTriageScore(file string, sc *triage.Score) error {
	s.mu.Lock()
	var snapshot Entry
	found := false
	for i := range s.manifest.Traces {
		if s.manifest.Traces[i].File == file {
			s.manifest.Traces[i].Triage = sc
			snapshot = s.manifest.Traces[i]
			found = true
			break
		}
	}
	s.mu.Unlock()
	if !found {
		return fmt.Errorf("store: no trace with container %q", file)
	}
	return s.writeSidecar(snapshot)
}

// ScorePending runs the triage ensemble over every admitted test
// trace that has no persisted score — the backfill for corpora
// recorded before triage existed — and persists each score to the
// manifest entry and sidecar. Already-scored traces are untouched (no
// sidecar churn). Returns how many traces were scored; the caller
// flushes the manifest.
func (s *Store) ScorePending(o triage.Options) (int, error) {
	n := 0
	for _, e := range s.Entries() {
		if e.Role != RoleTest || e.Triage != nil {
			continue
		}
		ipds, err := s.LoadIPDs(e.File)
		if err != nil {
			return n, fmt.Errorf("store: scoring %s: %w", e.ID, err)
		}
		sc := triage.ScoreIPDs(ipds, o)
		if err := s.SetTriageScore(e.File, &sc); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ReclaimStale demotes every claimed trace back to pending and
// returns how many it demoted. A daemon calls it once at startup:
// claims that survived in the manifest belong to a previous process
// that died mid-audit, and its unfinished traces should be audited
// again — while audited and failed entries stay terminal.
func (s *Store) ReclaimStale() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.manifest.Traces {
		if s.manifest.Traces[i].Audit == AuditClaimed {
			s.manifest.Traces[i].Audit = AuditPending
			n++
		}
	}
	return n
}

// AuditStates counts the admitted test traces by audit state, keyed
// by the Audit* constants ("" for pending) — the daemon's queue-depth
// and corpus-status source.
func (s *Store) AuditStates() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for _, e := range s.admittedLocked() {
		if e.Role == RoleTest {
			out[e.Audit]++
		}
	}
	return out
}

// fileName derives a container file name unique within the store from
// the trace's shard, role and ID.
func fileName(m Meta) string {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
				return r
			}
			return '_'
		}, s)
	}
	return sanitize(m.Shard) + "--" + sanitize(m.Role) + "-" + sanitize(m.ID) + ".trace"
}

// reserve claims the manifest slot AND the container file for a trace
// under one lock acquisition, before any bytes hit disk. This is what
// makes concurrent admissions safe: a duplicate identity, a sanitized
// file-name collision ("a/b" vs "a_b" both map to "a_b"), or an
// unregistered shard is rejected before it could overwrite an already
// admitted trace's container.
func (s *Store) reserve(full Meta, sc *triage.Score) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var shard *ShardMeta
	for i := range s.manifest.Shards {
		if s.manifest.Shards[i].Key == full.Shard {
			shard = &s.manifest.Shards[i]
			break
		}
	}
	if shard == nil {
		return Entry{}, fmt.Errorf("store: trace %q references unregistered shard %q", full.ID, full.Shard)
	}
	// A trace that names its origin must agree with its shard — a lying
	// upload is rejected here, not discovered as a replay failure later.
	for _, c := range []struct{ field, got, want string }{
		{"program", full.Program, shard.Program},
		{"machine", full.Machine, shard.Machine},
		{"profile", full.Profile, shard.Profile},
	} {
		if c.got != "" && c.got != c.want {
			return Entry{}, fmt.Errorf("store: trace %q claims %s %q but shard %q is %q", full.ID, c.field, c.got, full.Shard, c.want)
		}
	}
	e := Entry{File: filepath.Join(tracesDir, fileName(full)), Meta: full, Triage: sc}
	for _, have := range s.manifest.Traces {
		if have.Shard == full.Shard && have.Role == full.Role && have.ID == full.ID {
			return Entry{}, fmt.Errorf("store: trace %s/%s/%s already stored", full.Shard, full.Role, full.ID)
		}
		if have.File == e.File {
			return Entry{}, fmt.Errorf("store: trace %q collides with %q on container file %s", full.ID, have.ID, e.File)
		}
	}
	s.manifest.Traces = append(s.manifest.Traces, e)
	if s.pending == nil {
		s.pending = make(map[string]struct{})
	}
	s.pending[e.File] = struct{}{}
	return e, nil
}

// commit marks a reserved entry's container as durably written.
func (s *Store) commit(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, e.File)
}

// unreserve rolls a reservation back after a failed write.
func (s *Store) unreserve(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, e.File)
	for i := range s.manifest.Traces {
		if s.manifest.Traces[i].File == e.File {
			s.manifest.Traces = append(s.manifest.Traces[:i], s.manifest.Traces[i+1:]...)
			return
		}
	}
}

// atomicWrite writes a store-relative file via temp-file-then-rename,
// so readers never observe a partial file. Like the rest of the store
// it does not fsync: atomicity against concurrent readers is ours,
// durability across power loss is the filesystem's.
func (s *Store) atomicWrite(dest string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(s.dir, ".spool-*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", dest, err)
	}
	defer os.Remove(f.Name())
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: writing %s: %w", dest, err)
	}
	if err := os.Rename(f.Name(), filepath.Join(s.dir, dest)); err != nil {
		return fmt.Errorf("store: writing %s: %w", dest, err)
	}
	return nil
}

// sidecarDoc is the sidecar's JSON shape: the trace metadata plus the
// entry's audit state and triage score (each omitted when absent, so
// sidecars written before either existed are byte-identical to
// today's).
type sidecarDoc struct {
	Meta
	Audit  string        `json:"audit,omitempty"`
	Triage *triage.Score `json:"triage,omitempty"`
}

// writeSidecar writes an entry's human-readable JSON twin. It goes
// through atomicWrite — the sidecar is rewritten on every audit-state
// change, and the daemon's watcher (or any operator tooling) may be
// reading it at that moment; a direct os.WriteFile would let such a
// reader observe a truncated document.
func (s *Store) writeSidecar(e Entry) error {
	side, err := json.MarshalIndent(sidecarDoc{Meta: e.Meta, Audit: e.Audit, Triage: e.Triage}, "", "  ")
	if err != nil {
		return err
	}
	if err := s.atomicWrite(e.File+".json", func(w io.Writer) error {
		_, err := w.Write(append(side, '\n'))
		return err
	}); err != nil {
		return fmt.Errorf("store: writing sidecar: %w", err)
	}
	return nil
}

// admitSpooled renames a spooled temp file onto a reserved entry's
// container path and writes the sidecar.
func (s *Store) admitSpooled(tmpName string, e Entry) error {
	if err := os.Rename(tmpName, filepath.Join(s.dir, e.File)); err != nil {
		return fmt.Errorf("store: admitting container: %w", err)
	}
	return s.writeSidecar(e)
}

// writeContainer encodes a reserved entry's container plus sidecar
// atomically (temp file then rename).
func (s *Store) writeContainer(e Entry, tr *detect.Trace) error {
	err := s.atomicWrite(e.File, func(w io.Writer) error {
		return WriteTrace(w, e.Meta, tr)
	})
	if err != nil {
		return err
	}
	return s.writeSidecar(e)
}

// checkedMeta completes the metadata and rejects a meta section that
// contradicts the embedded log's identity.
func checkedMeta(meta Meta, tr *detect.Trace) (Meta, error) {
	if tr.Log != nil {
		for _, c := range []struct{ field, claimed, logged string }{
			{"program", meta.Program, tr.Log.Program},
			{"machine", meta.Machine, tr.Log.Machine},
			{"profile", meta.Profile, tr.Log.Profile},
		} {
			if c.claimed != "" && c.claimed != c.logged {
				return meta, fmt.Errorf("store: trace %q metadata claims %s %q but its log was recorded on %q", meta.ID, c.field, c.claimed, c.logged)
			}
		}
	}
	full := completeMeta(meta, tr)
	return full, full.validate()
}

// triageFor scores a trace at admission when scoring is enabled and
// the trace is an audit subject; training traces are baseline
// material and stay unscored.
func (s *Store) triageFor(full Meta, tr *detect.Trace) *triage.Score {
	if full.Role != RoleTest {
		return nil
	}
	return s.scoreIPDs(tr.IPDs)
}

// put completes the metadata, reserves the slot, and writes the
// container, rolling the reservation back on failure.
func (s *Store) put(meta Meta, tr *detect.Trace) (Meta, error) {
	if tr == nil {
		return meta, fmt.Errorf("store: nil trace")
	}
	full, err := checkedMeta(meta, tr)
	if err != nil {
		return full, err
	}
	e, err := s.reserve(full, s.triageFor(full, tr))
	if err != nil {
		return full, err
	}
	if err := s.writeContainer(e, tr); err != nil {
		s.unreserve(e)
		return full, err
	}
	s.commit(e)
	s.noteTrace(tr)
	return full, nil
}

// Put encodes a trace into the store and indexes it in the manifest.
// Its shard must already be registered with AddShard. The manifest
// itself is only persisted by Flush.
func (s *Store) Put(meta Meta, tr *detect.Trace) error {
	_, err := s.put(meta, tr)
	return err
}

// PutContainer validates a container streamed from r — frame CRCs,
// section structure, log decoding, metadata and shard identity
// cross-checks — and spools it into the store. This is the ingest
// path: a corrupted, truncated, or lying upload is rejected here, as
// a per-trace error, before it can reach an auditor. The validated
// bytes are teed straight to the spool file as they stream in — no
// re-encode — so the admitted container is byte-identical to the
// upload.
func (s *Store) PutContainer(r io.Reader) (Meta, error) {
	meta, _, err := s.PutContainerScored(r)
	return meta, err
}

// PutContainerScored is PutContainer returning the ingest-time triage
// score alongside the metadata — nil when scoring is disabled, the
// trace is training material, or it was too short to assess (the
// Neutral case still returns a score so the caller can report it).
// The detector ensemble runs between the validate and admit steps, so
// a rejected upload is never scored and an admitted one always
// carries its score in the manifest and sidecar from the first write.
func (s *Store) PutContainerScored(r io.Reader) (Meta, *triage.Score, error) {
	f, err := os.CreateTemp(s.dir, ".spool-*")
	if err != nil {
		return Meta{}, nil, fmt.Errorf("store: spooling: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	meta, tr, err := ReadTrace(io.TeeReader(r, f))
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: spooling: %w", cerr)
	}
	if err != nil {
		return meta, nil, err
	}
	full, err := checkedMeta(meta, tr)
	if err != nil {
		return full, nil, err
	}
	sc := s.triageFor(full, tr)
	e, err := s.reserve(full, sc)
	if err != nil {
		return full, nil, err
	}
	if err := s.admitSpooled(tmp, e); err != nil {
		s.unreserve(e)
		return full, nil, err
	}
	s.commit(e)
	s.noteTrace(tr)
	return full, sc, nil
}

// OpenTrace opens a container by its manifest-relative path.
func (s *Store) OpenTrace(rel string) (*os.File, error) {
	if rel != filepath.Clean(rel) || strings.Contains(rel, "..") || filepath.IsAbs(rel) {
		return nil, fmt.Errorf("store: invalid trace path %q", rel)
	}
	return os.Open(filepath.Join(s.dir, rel))
}

// LoadTrace decodes a full trace by its manifest-relative path.
func (s *Store) LoadTrace(rel string) (Meta, *detect.Trace, error) {
	t := s.obs.Stage(obs.StageStoreDecode)
	defer t.End()
	f, err := s.OpenTrace(rel)
	if err != nil {
		return Meta{}, nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// LoadIPDs decodes only a trace's inter-packet delays by its
// manifest-relative path, skipping the log and execution sections.
// This is the prefilter fast path: statistical window selection over
// a corpus reads every trace's delays without ever decoding a log.
func (s *Store) LoadIPDs(rel string) ([]int64, error) {
	t := s.obs.Stage(obs.StageStoreDecode)
	defer t.End()
	f, err := s.OpenTrace(rel)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, ipds, err := ReadIPDs(f)
	return ipds, err
}

// TrainingIPDs loads the IPDs of every training trace of a shard, in
// manifest order, reading only the metadata and IPD sections of each
// container.
func (s *Store) TrainingIPDs(shardKey string) ([][]int64, error) {
	var out [][]int64
	for _, e := range s.Entries() {
		if e.Shard != shardKey || e.Role != RoleTraining {
			continue
		}
		f, err := s.OpenTrace(e.File)
		if err != nil {
			return nil, err
		}
		_, ipds, err := ReadIPDs(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: training trace %s: %w", e.ID, err)
		}
		out = append(out, ipds)
	}
	return out, nil
}

// Flush persists the manifest atomically. The whole write happens
// under the store lock: concurrent Flushes must not be able to land an
// older snapshot over a newer one.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snapshot := s.manifest
	snapshot.Traces = s.admittedLocked()
	b, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		return err
	}
	return s.atomicWrite(ManifestName, func(w io.Writer) error {
		_, err := w.Write(append(b, '\n'))
		return err
	})
}
