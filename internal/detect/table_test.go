package detect_test

import (
	"fmt"
	"sync"
	"testing"

	"sanity/internal/detect"
	"sanity/internal/fixtures"
	"sanity/internal/stats"
)

// corpus is the shared labeled synthetic fixture set: 8 benign test
// traces plus 4 covert traces per channel, 220 packets each.
var corpus = sync.OnceValue(func() *fixtures.Set {
	set, err := fixtures.SyntheticSet(fixtures.SmallSet(), 1234)
	if err != nil {
		panic(err)
	}
	return set
})

// playedCorpus is the shared played fixture set for the TDR rows:
// real executions with replay logs.
var playedCorpus = sync.OnceValue(func() *fixtures.Set {
	set, err := fixtures.PlayedSet(fixtures.SetSizes{
		Training: 2, Benign: 3, Covert: 2, Packets: 60,
	}, 4321)
	if err != nil {
		panic(err)
	}
	return set
})

// scoresByChannel scores every trace of the set with d, splitting
// benign scores from per-channel covert scores.
func scoresByChannel(t *testing.T, d detect.Detector, set *fixtures.Set) (benign []float64, covert map[string][]float64) {
	t.Helper()
	covert = make(map[string][]float64)
	for _, lt := range set.Traces {
		s, err := d.Score(lt.Trace)
		if err != nil {
			t.Fatalf("%s on %s: %v", d.Name(), lt.ID, err)
		}
		if lt.Label == fixtures.LabelBenign {
			benign = append(benign, s)
		} else {
			covert[lt.Channel] = append(covert[lt.Channel], s)
		}
	}
	return benign, covert
}

// TestDetectorTable drives every statistical detector over the shared
// labeled fixtures. For each (detector, channel) pair the paper's
// Figure 8 predicts, covert traces must score strictly worse (higher)
// than benign ones — asserted as an AUC floor. Pairs the paper shows
// *evading* a detector get a ceiling instead: a reproduction where
// the shape test caught MBCTC would be wrong.
func TestDetectorTable(t *testing.T) {
	set := corpus()
	newDetector := map[string]func() (detect.Detector, error){
		"shape": func() (detect.Detector, error) { return detect.NewShape(set.Training) },
		"ks":    func() (detect.Detector, error) { return detect.NewKS(set.Training) },
		"regularity": func() (detect.Detector, error) {
			return detect.NewRegularity(len(set.Traces[0].Trace.IPDs) / 5), nil
		},
		"cce": func() (detect.Detector, error) { return detect.NewCCE(set.Training, 5, 10) },
	}
	rows := []struct {
		detector string
		channel  string
		minAUC   float64 // 0 = no floor
		maxAUC   float64 // 0 = no ceiling
	}{
		// IPCTC's on/off signature is caught by everything (paper: 1.0
		// across the row).
		{detector: "shape", channel: "ipctc", minAUC: 0.95},
		{detector: "ks", channel: "ipctc", minAUC: 0.95},
		{detector: "regularity", channel: "ipctc", minAUC: 0.7},
		{detector: "cce", channel: "ipctc", minAUC: 0.9},
		// TRCTC's finite replay sets distort the distribution: CCE
		// catches it (paper 1.0). Its first-order *evasion* of the
		// shape test only holds in the played environment, where queue
		// backlog attenuates the natural gaps the channel rides on —
		// the synthetic sender stacks delays instead, so that claim is
		// asserted by experiments.Figure8, not here.
		{detector: "cce", channel: "trctc", minAUC: 0.75},
		// MBCTC loses the burst correlation of real traffic; CCE sees
		// it (paper 0.885). Same caveat as TRCTC for shape/KS evasion.
		{detector: "cce", channel: "mbctc", minAUC: 0.75},
		// The needle barely moves aggregate statistics; every
		// statistical detector hovers near chance (paper ≤ 0.813).
		{detector: "shape", channel: "needle", maxAUC: 0.9},
		{detector: "regularity", channel: "needle", maxAUC: 0.9},
		{detector: "cce", channel: "needle", maxAUC: 0.9},
	}
	for _, row := range rows {
		t.Run(row.detector+"/"+row.channel, func(t *testing.T) {
			d, err := newDetector[row.detector]()
			if err != nil {
				t.Fatal(err)
			}
			benign, covert := scoresByChannel(t, d, set)
			auc := stats.AUC(covert[row.channel], benign)
			if row.minAUC > 0 && auc < row.minAUC {
				t.Errorf("%s on %s: AUC %.3f below floor %.2f (covert must score worse than benign)",
					row.detector, row.channel, auc, row.minAUC)
			}
			if row.maxAUC > 0 && auc > row.maxAUC {
				t.Errorf("%s on %s: AUC %.3f above ceiling %.2f (this channel is built to evade the detector)",
					row.detector, row.channel, auc, row.maxAUC)
			}
		})
	}
}

// TestTDRTable drives the TDR detector over the played fixture set:
// perfect separation — every covert trace of every channel scores
// strictly above every benign trace, the paper's headline result.
func TestTDRTable(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	set := playedCorpus()
	d := detect.NewTDR(fixtures.ServerProgram(), fixtures.ServerConfig(999))
	benign, covert := scoresByChannel(t, d, set)
	maxBenign := benign[0]
	for _, s := range benign {
		if s > maxBenign {
			maxBenign = s
		}
	}
	if maxBenign > 0.05 {
		t.Errorf("benign replay deviation %.4f exceeds the paper's noise floor", maxBenign)
	}
	for ch, scores := range covert {
		for i, s := range scores {
			if s <= maxBenign {
				t.Errorf("TDR on %s trace %d: score %.4f not above max benign %.4f", ch, i, s, maxBenign)
			}
		}
		if auc := stats.AUC(scores, benign); auc < 1 {
			t.Errorf("TDR on %s: AUC %.3f, want 1.0 (perfect separation)", ch, auc)
		}
	}
}

// TestTDRConcurrentScore hammers one shared TDR detector from many
// goroutines over the same traces: scores must equal the sequential
// ones bit-for-bit, and -race must stay quiet. This is the contract
// the audit pipeline's worker pool relies on.
func TestTDRConcurrentScore(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	set := playedCorpus()
	d := detect.NewTDR(fixtures.ServerProgram(), fixtures.ServerConfig(999))
	want := make([]float64, len(set.Traces))
	for i, lt := range set.Traces {
		s, err := d.Score(lt.Trace)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(set.Traces))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range set.Traces {
				// Stagger start points so goroutines collide on
				// different traces.
				idx := (i + g) % len(set.Traces)
				s, err := d.Score(set.Traces[idx].Trace)
				if err != nil {
					errs <- err
					continue
				}
				if s != want[idx] {
					errs <- fmt.Errorf("trace %d: concurrent score %.12g != sequential %.12g", idx, s, want[idx])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTDRScoreWindowDegenerateWindows: the detector-level windowed
// score on degenerate ranges — empty window, a single IPD, a window
// past end-of-log, a checkpoint landing exactly on the boundary —
// always agrees with the full-replay reference and never errors on a
// well-formed trace.
func TestTDRScoreWindowDegenerateWindows(t *testing.T) {
	const every = 6
	tr, err := fixtures.PlayTraceCheckpointed(40, 777, 778, every, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := detect.NewTDR(fixtures.ServerProgram(), fixtures.ServerConfig(999))
	n := len(tr.IPDs)
	cases := []struct {
		name     string
		from, to int
	}{
		{"empty", every + 1, every + 1},
		{"single IPD", every + 2, every + 3},
		{"boundary-exact start", every, every + 4},
		{"past end-of-log", n - 2, n + 40},
		{"entirely past the end", n + 5, n + 9},
		{"whole trace", 0, n},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := d.ScoreWindow(tr, tc.from, tc.to)
			if err != nil {
				t.Fatalf("ScoreWindow(%d,%d): %v", tc.from, tc.to, err)
			}
			ref, err := d.ScoreDetailWindowFull(tr, tc.from, tc.to)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.MaxRelIPDDev
			if !ref.OutputsMatch {
				want = detect.FunctionalDivergenceScore
			}
			if got != want {
				t.Fatalf("windowed score %v != full-replay reference %v", got, want)
			}
			if tc.from >= tc.to || tc.from >= n {
				if got != 0 {
					t.Fatalf("degenerate window scored %v, want 0", got)
				}
			}
		})
	}
	if _, err := d.ScoreWindow(tr, -2, 4); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := d.ScoreWindow(&detect.Trace{IPDs: tr.IPDs}, 0, 4); err == nil {
		t.Fatal("windowed score without log/play accepted")
	}
}
