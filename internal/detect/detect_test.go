package detect

import (
	"strings"
	"testing"

	"sanity/internal/core"
	"sanity/internal/covert"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/stats"
)

// synthTrace builds a legitimate bursty IPD trace.
func synthTrace(n int, seed uint64) []int64 {
	m := netsim.DefaultThinkTime()
	sched := m.Schedule(n+1, hw.NewRNG(seed))
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = sched[i+1] - sched[i]
	}
	return out
}

func trainingSet(n, per int, base uint64) [][]int64 {
	var tr [][]int64
	for i := 0; i < n; i++ {
		tr = append(tr, synthTrace(per, base+uint64(i)))
	}
	return tr
}

// covertTrace applies a channel hook over a natural schedule.
func covertTrace(c covert.Channel, n int, seed uint64) []int64 {
	natural := synthTrace(n+1, seed)
	hook := c.Hook(covert.RandomBits(n, seed^0xBEEF))
	const psPerCycle = 294
	last, now := int64(0), int64(0)
	var ipds []int64
	for i, gap := range natural {
		now += gap
		d := hook(core.DelayCtx{PacketIndex: int64(i), TimePs: now, LastSendPs: last, PsPerCycle: psPerCycle})
		now += d * psPerCycle
		if i > 0 {
			ipds = append(ipds, now-last)
		}
		last = now
	}
	return ipds
}

func aucFor(t *testing.T, d Detector, c covert.Channel, traces, per int) float64 {
	t.Helper()
	var pos, neg []float64
	for i := 0; i < traces; i++ {
		s, err := d.Score(&Trace{IPDs: covertTrace(c, per, 9000+uint64(i))})
		if err != nil {
			t.Fatalf("%s on covert: %v", d.Name(), err)
		}
		pos = append(pos, s)
		s, err = d.Score(&Trace{IPDs: synthTrace(per, 5000+uint64(i))})
		if err != nil {
			t.Fatalf("%s on legit: %v", d.Name(), err)
		}
		neg = append(neg, s)
	}
	return stats.AUC(pos, neg)
}

func TestShapeCatchesIPCTC(t *testing.T) {
	shape, err := NewShape(trainingSet(10, 400, 100))
	if err != nil {
		t.Fatal(err)
	}
	auc := aucFor(t, shape, covert.NewIPCTC(), 12, 400)
	if auc < 0.95 {
		t.Fatalf("shape AUC on IPCTC = %.3f, want ~1", auc)
	}
}

func TestShapeMissesNeedle(t *testing.T) {
	shape, err := NewShape(trainingSet(10, 400, 200))
	if err != nil {
		t.Fatal(err)
	}
	auc := aucFor(t, shape, covert.NewNeedle(), 12, 400)
	if auc > 0.9 {
		t.Fatalf("shape AUC on needle = %.3f; the needle should be hard for first-order stats", auc)
	}
}

func TestKSCatchesIPCTC(t *testing.T) {
	ks, err := NewKS(trainingSet(10, 400, 300))
	if err != nil {
		t.Fatal(err)
	}
	auc := aucFor(t, ks, covert.NewIPCTC(), 12, 400)
	if auc < 0.95 {
		t.Fatalf("KS AUC on IPCTC = %.3f", auc)
	}
}

func TestRegularityDirection(t *testing.T) {
	// A constant-variance (covert-like) trace must score higher than
	// a bursty one.
	rt := NewRegularity(50)
	bursty := synthTrace(600, 400)
	flat := make([]int64, 600)
	rng := hw.NewRNG(5)
	for i := range flat {
		flat[i] = 7*netsim.Ms + rng.Int63n(netsim.Ms/4)
	}
	sb, err := rt.Score(&Trace{IPDs: bursty})
	if err != nil {
		t.Fatal(err)
	}
	sf, err := rt.Score(&Trace{IPDs: flat})
	if err != nil {
		t.Fatal(err)
	}
	if sf <= sb {
		t.Fatalf("regularity: flat %.4f should exceed bursty %.4f", sf, sb)
	}
}

func TestRegularityNeedsEnoughWindows(t *testing.T) {
	rt := NewRegularity(100)
	if _, err := rt.Score(&Trace{IPDs: make([]int64, 50)}); err == nil {
		t.Fatal("short trace accepted")
	}
}

func TestCCECatchesIPCTC(t *testing.T) {
	cce, err := NewCCE(trainingSet(10, 400, 500), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	auc := aucFor(t, cce, covert.NewIPCTC(), 12, 400)
	if auc < 0.9 {
		t.Fatalf("CCE AUC on IPCTC = %.3f", auc)
	}
}

func TestStatisticalBundle(t *testing.T) {
	ds, err := Statistical(trainingSet(6, 400, 600))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("detectors = %d", len(ds))
	}
	names := []string{"shape", "ks", "regularity", "cce"}
	for i, d := range ds {
		if d.Name() != names[i] {
			t.Fatalf("detector %d = %s, want %s", i, d.Name(), names[i])
		}
	}
}

func TestTDRNeedsLog(t *testing.T) {
	d := NewTDR(nil, core.Config{})
	if _, err := d.Score(&Trace{IPDs: []int64{1, 2}}); err == nil || !strings.Contains(err.Error(), "log") {
		t.Fatalf("expected log-required error, got %v", err)
	}
}

func TestTDRHookCleared(t *testing.T) {
	cfg := core.Config{Hook: func(core.DelayCtx) int64 { return 100 }}
	d := NewTDR(nil, cfg)
	if d.Cfg.Hook != nil {
		t.Fatal("TDR detector must audit with the unmodified software")
	}
}

func TestShapeRejectsTinyTraining(t *testing.T) {
	if _, err := NewShape(nil); err == nil {
		t.Fatal("no training accepted")
	}
}
