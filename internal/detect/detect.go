// Package detect implements the five covert-timing-channel detectors
// compared in the paper's evaluation (§5.2, §6.6–6.8): the shape
// test, the Kolmogorov-Smirnov test, the regularity test, the
// corrected-conditional-entropy test, and the Sanity/TDR detector.
//
// All detectors expose the same interface: given a trace, produce a
// suspicion score where higher means "more likely covert". Sweeping a
// threshold over the scores of covert and legitimate trace sets
// yields each detector's ROC curve (Figure 8).
package detect

import (
	"context"
	"fmt"

	"sanity/internal/core"
	"sanity/internal/obs"
	"sanity/internal/replaylog"
	"sanity/internal/stats"
	"sanity/internal/svm"
)

// Trace is one observation available to a detector: the server-side
// inter-packet delays, and — for the TDR detector only — the
// machine's log and the observed execution.
type Trace struct {
	IPDs []int64
	Log  *replaylog.Log
	Play *core.Execution

	// releasers return pooled decode buffers (exec payloads, IPD
	// slabs) registered by whoever materialized the trace; see
	// Release.
	releasers []func()
}

// OnRelease registers a hook to run when the trace's owner releases
// it. The store's trace reader uses this to tie pooled decode
// buffers to the trace's lifetime.
func (t *Trace) OnRelease(fn func()) {
	t.releasers = append(t.releasers, fn)
}

// Release returns the trace's pooled decode buffers (its replay log's
// packet payloads and checkpoint states, plus anything registered via
// OnRelease) to the shared pools. Only the owner that loaded the
// trace may call it, exactly once, after the last read of the trace's
// log, play execution, and IPDs; afterwards the trace contents are
// invalid. Safe on a nil trace and on traces built without pooled
// buffers, for which it is a no-op.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.Log.Release()
	for _, fn := range t.releasers {
		fn()
	}
	t.releasers = nil
}

// Detector scores traces for covert-channel likelihood.
type Detector interface {
	Name() string
	Score(tr *Trace) (float64, error)
}

// Shape is the shape test of Cabuk et al.: it compares only
// first-order statistics (mean and standard deviation of IPDs)
// against their distribution over legitimate training traces.
type Shape struct {
	meanMu, meanSd float64
	sdMu, sdSd     float64
}

// NewShape trains the test on per-trace statistics of legitimate
// traffic.
func NewShape(training [][]int64) (*Shape, error) {
	if len(training) < 2 {
		return nil, fmt.Errorf("detect: shape test needs >= 2 training traces")
	}
	var means, sds []float64
	for _, tr := range training {
		xs := stats.Int64sToFloats(tr)
		means = append(means, stats.Mean(xs))
		sds = append(sds, stats.StdDev(xs))
	}
	s := &Shape{
		meanMu: stats.Mean(means), meanSd: stats.StdDev(means),
		sdMu: stats.Mean(sds), sdSd: stats.StdDev(sds),
	}
	// Degenerate training (identical traces) still needs a usable
	// denominator.
	if s.meanSd <= 0 {
		s.meanSd = s.meanMu/100 + 1
	}
	if s.sdSd <= 0 {
		s.sdSd = s.sdMu/100 + 1
	}
	return s, nil
}

// Name implements Detector.
func (s *Shape) Name() string { return "shape" }

// Score implements Detector: the sum of z-scores of the trace's mean
// and standard deviation.
func (s *Shape) Score(tr *Trace) (float64, error) {
	xs := stats.Int64sToFloats(tr.IPDs)
	zm := abs(stats.Mean(xs)-s.meanMu) / s.meanSd
	zs := abs(stats.StdDev(xs)-s.sdMu) / s.sdSd
	return zm + zs, nil
}

// KS is the Kolmogorov-Smirnov test (Peng et al.): the distance
// between the trace's empirical IPD distribution and the pooled
// legitimate distribution.
type KS struct {
	pooled []float64
}

// NewKS pools the training traces into one reference sample.
func NewKS(training [][]int64) (*KS, error) {
	var pooled []float64
	for _, tr := range training {
		pooled = append(pooled, stats.Int64sToFloats(tr)...)
	}
	if len(pooled) == 0 {
		return nil, fmt.Errorf("detect: KS test needs training data")
	}
	return &KS{pooled: pooled}, nil
}

// Name implements Detector.
func (k *KS) Name() string { return "ks" }

// Score implements Detector.
func (k *KS) Score(tr *Trace) (float64, error) {
	return stats.KSStatistic(stats.Int64sToFloats(tr.IPDs), k.pooled), nil
}

// Regularity is the regularity test of Cabuk et al.: group the trace
// into windows of W packets, compute each window's standard
// deviation, and measure the spread of pairwise relative differences.
// Legitimate traffic's variance wanders over time (large spread);
// a constant encoding scheme keeps it flat (small spread). The score
// is the negated spread so that higher means more covert.
type Regularity struct {
	Window int
}

// NewRegularity returns the test with the standard window size.
func NewRegularity(window int) *Regularity {
	if window <= 1 {
		window = 100
	}
	return &Regularity{Window: window}
}

// Name implements Detector.
func (r *Regularity) Name() string { return "regularity" }

// Score implements Detector.
func (r *Regularity) Score(tr *Trace) (float64, error) {
	xs := stats.Int64sToFloats(tr.IPDs)
	var sigmas []float64
	for start := 0; start+r.Window <= len(xs); start += r.Window {
		sigmas = append(sigmas, stats.StdDev(xs[start:start+r.Window]))
	}
	if len(sigmas) < 2 {
		return 0, fmt.Errorf("detect: regularity test needs >= 2 windows of %d packets, have %d IPDs", r.Window, len(xs))
	}
	var diffs []float64
	for i := 0; i < len(sigmas); i++ {
		for j := i + 1; j < len(sigmas); j++ {
			if sigmas[j] > 0 {
				diffs = append(diffs, abs(sigmas[i]-sigmas[j])/sigmas[j])
			}
		}
	}
	return -stats.StdDev(diffs), nil
}

// CCE is the corrected-conditional-entropy test (Gianvecchio & Wang):
// IPDs are binned into Q equiprobable bins (cut points learned from
// legitimate traffic) and the corrected conditional entropy of the
// symbol sequence is the statistic. Legitimate bursty traffic sits at
// a characteristic entropy level; covert channels deviate from it —
// constant encodings (IPCTC, TRCTC's finite replay sets) push the
// entropy down, while memoryless model-based traffic loses the burst
// correlation and pushes it up. The score is therefore the absolute
// z-distance of the trace's CCE from the training distribution.
type CCE struct {
	cuts []float64
	Q    int
	MaxM int

	mu, sd float64 // CCE distribution over legitimate traces
}

// NewCCE trains the binning and the legitimate-CCE baseline on
// training traces.
func NewCCE(training [][]int64, q, maxM int) (*CCE, error) {
	if q <= 1 {
		q = 5
	}
	if maxM <= 1 {
		maxM = 10
	}
	var pooled []float64
	for _, tr := range training {
		pooled = append(pooled, stats.Int64sToFloats(tr)...)
	}
	if len(pooled) < q {
		return nil, fmt.Errorf("detect: CCE test needs at least %d training IPDs", q)
	}
	c := &CCE{cuts: stats.EquiprobableBins(pooled, q), Q: q, MaxM: maxM}
	var baseline []float64
	for _, tr := range training {
		baseline = append(baseline, c.cce(tr))
	}
	c.mu = stats.Mean(baseline)
	c.sd = stats.StdDev(baseline)
	if c.sd <= 0 {
		c.sd = c.mu/100 + 1e-6
	}
	return c, nil
}

// cce computes the raw statistic for one IPD sequence.
func (c *CCE) cce(ipds []int64) float64 {
	symbols := make([]int, len(ipds))
	for i, d := range ipds {
		symbols[i] = stats.BinIndex(c.cuts, float64(d))
	}
	return stats.CCE(symbols, c.Q, c.MaxM)
}

// Name implements Detector.
func (c *CCE) Name() string { return "cce" }

// Score implements Detector.
func (c *CCE) Score(tr *Trace) (float64, error) {
	return abs(c.cce(tr.IPDs)-c.mu) / c.sd, nil
}

// TDR is the Sanity-based detector (§5.3): replay the machine's log
// on a known-good binary with time-deterministic replay and compare
// the observed packet timing against the reconstruction. The score is
// the maximum relative IPD deviation — in effect, "how much timing
// the adversary added that the software cannot explain".
//
// A TDR detector is safe for concurrent use: NewTDR severs the
// configuration from the caller's copy, Score never mutates detector
// state, and every replay builds its engine (platform, VM, ring
// buffers) from scratch. One detector can therefore serve a whole
// audit worker pool.
type TDR struct {
	// Prog is the known-good binary of the audited software. Programs
	// are immutable after assembly, so sharing one across goroutines
	// is safe.
	Prog *svm.Program
	// Cfg is the auditor's replay configuration (machine of the same
	// type T; no covert hook). It is a private deep copy; callers must
	// not mutate it after construction.
	Cfg core.Config
	// Calib, when the auditor's machine type differs from the
	// recorder's (cloud verification, §5.2), maps the replayed timing
	// back onto the recorded machine's timebase. It comes from a fitted
	// calibration model (internal/calib); the zero value is the
	// same-machine audit of the paper's main setting.
	Calib core.Calibration
}

// FunctionalDivergenceScore is returned by Score when the replay's
// outputs do not match the observed execution at all: the machine was
// not running the claimed software, the strongest possible signal.
const FunctionalDivergenceScore = 1e9

// NewTDR builds the detector. The configuration's Hook is forcibly
// cleared — the auditor replays the *unmodified* software — and the
// configuration is deep-copied so later caller-side mutation of its
// Files/ExtraNatives maps cannot race with audits in flight.
func NewTDR(prog *svm.Program, cfg core.Config) *TDR {
	cfg.Hook = nil
	return &TDR{Prog: prog, Cfg: cfg.Clone()}
}

// NewCalibratedTDR builds the detector for a cross-machine audit: the
// configuration's machine is the auditor's own type T', and cal is
// the fitted time-dilation model mapping T'-replay timing back onto
// the recorded machine type T. The zero calibration behaves exactly
// like NewTDR.
func NewCalibratedTDR(prog *svm.Program, cfg core.Config, cal core.Calibration) *TDR {
	d := NewTDR(prog, cfg)
	d.Calib = cal
	return d
}

// Name implements Detector.
func (d *TDR) Name() string { return "sanity-tdr" }

// Score implements Detector: it runs the replay. Traces without a log
// cannot be audited and return an error.
func (d *TDR) Score(tr *Trace) (float64, error) {
	cmp, err := d.ScoreDetail(tr)
	if err != nil {
		return 0, err
	}
	if !cmp.OutputsMatch {
		return FunctionalDivergenceScore, nil
	}
	return cmp.MaxRelIPDDev, nil
}

// ScoreDetail runs the replay and returns the full timing comparison
// — the material an audit pipeline reports alongside the scalar
// verdict. Safe to call from multiple goroutines.
func (d *TDR) ScoreDetail(tr *Trace) (*core.TimingComparison, error) {
	return d.ScoreDetailCtx(context.Background(), tr)
}

// ScoreDetailCtx is ScoreDetail with context-carried observability:
// an obs.Observer on the context records "replay" and "compare" spans
// around the two halves of the audit.
func (d *TDR) ScoreDetailCtx(ctx context.Context, tr *Trace) (*core.TimingComparison, error) {
	if tr.Log == nil || tr.Play == nil {
		return nil, fmt.Errorf("detect: TDR detector needs the machine's log and observed execution")
	}
	replay, err := core.ReplayTDRCtx(ctx, d.Prog, tr.Log, d.Cfg)
	if err != nil {
		return nil, fmt.Errorf("detect: replay failed: %w", err)
	}
	_, sp := obs.StartSpan(ctx, obs.StageCompare)
	cmp, err := core.CompareCalibrated(tr.Play, replay, d.Calib)
	sp.End()
	return cmp, err
}

// ScoreWindow is Score restricted to the IPD window [from, to): it
// replays only the audited range (resuming from the log's last
// checkpoint at or before it; logs without checkpoints fall back to
// replaying from virtual time zero, still halting at the window's
// end) and thresholds the window's maximum relative IPD deviation.
func (d *TDR) ScoreWindow(tr *Trace, from, to int) (float64, error) {
	cmp, err := d.ScoreDetailWindow(tr, from, to)
	if err != nil {
		return 0, err
	}
	if !cmp.OutputsMatch {
		return FunctionalDivergenceScore, nil
	}
	return cmp.MaxRelIPDDev, nil
}

// ScoreDetailWindow runs the windowed replay and returns the window's
// timing comparison. Its result is bit-identical to
// ScoreDetailWindowFull for the same window — windowing changes the
// cost of an audit, never its outcome.
func (d *TDR) ScoreDetailWindow(tr *Trace, from, to int) (*core.TimingComparison, error) {
	return d.ScoreDetailWindowCtx(context.Background(), tr, from, to)
}

// ScoreDetailWindowCtx is ScoreDetailWindow with context-carried
// observability ("restore"/"replay"/"compare" spans).
func (d *TDR) ScoreDetailWindowCtx(ctx context.Context, tr *Trace, from, to int) (*core.TimingComparison, error) {
	if tr.Log == nil || tr.Play == nil {
		return nil, fmt.Errorf("detect: TDR detector needs the machine's log and observed execution")
	}
	replay, err := core.ReplayTDRWindowCtx(ctx, d.Prog, tr.Log, d.Cfg, from, to)
	if err != nil {
		return nil, fmt.Errorf("detect: windowed replay failed: %w", err)
	}
	_, sp := obs.StartSpan(ctx, obs.StageCompare)
	cmp, err := core.CompareWindow(tr.Play, replay, from, to, d.Calib)
	sp.End()
	return cmp, err
}

// ScoreDetailParallel is ScoreDetailWindow with the replay's
// checkpoint-bounded segments run concurrently on up to workers
// goroutines (core.ReplayTDRParallel). The comparison is
// bit-identical to ScoreDetailWindow's for the same window — segment
// parallelism, like windowing, changes the cost of an audit, never
// its outcome. workers is per-call rather than detector state so one
// memoized detector can serve callers with different parallelism
// budgets.
func (d *TDR) ScoreDetailParallel(tr *Trace, from, to, workers int) (*core.TimingComparison, error) {
	return d.ScoreDetailParallelCtx(context.Background(), tr, from, to, workers)
}

// ScoreDetailParallelCtx is ScoreDetailParallel with context-carried
// cancellation and observability ("segment" spans wrapping each
// segment's "restore"/"replay").
func (d *TDR) ScoreDetailParallelCtx(ctx context.Context, tr *Trace, from, to, workers int) (*core.TimingComparison, error) {
	if tr.Log == nil || tr.Play == nil {
		return nil, fmt.Errorf("detect: TDR detector needs the machine's log and observed execution")
	}
	replay, err := core.ReplayTDRParallelCtx(ctx, d.Prog, tr.Log, d.Cfg, from, to, workers)
	if err != nil {
		return nil, fmt.Errorf("detect: parallel windowed replay failed: %w", err)
	}
	_, sp := obs.StartSpan(ctx, obs.StageCompare)
	cmp, err := core.CompareWindow(tr.Play, replay, from, to, d.Calib)
	sp.End()
	return cmp, err
}

// ScoreDetailWindowFull is the reference semantics of a windowed
// audit: a full replay from virtual time zero, compared over the
// window only. The differential tests pin ScoreDetailWindow against
// it; it is exported for diagnostics (e.g. confirming a suspicious
// windowed verdict with an independent full replay).
func (d *TDR) ScoreDetailWindowFull(tr *Trace, from, to int) (*core.TimingComparison, error) {
	return d.ScoreDetailWindowFullCtx(context.Background(), tr, from, to)
}

// ScoreDetailWindowFullCtx is ScoreDetailWindowFull with
// context-carried observability ("replay"/"compare" spans).
func (d *TDR) ScoreDetailWindowFullCtx(ctx context.Context, tr *Trace, from, to int) (*core.TimingComparison, error) {
	if tr.Log == nil || tr.Play == nil {
		return nil, fmt.Errorf("detect: TDR detector needs the machine's log and observed execution")
	}
	replay, err := core.ReplayTDRCtx(ctx, d.Prog, tr.Log, d.Cfg)
	if err != nil {
		return nil, fmt.Errorf("detect: replay failed: %w", err)
	}
	_, sp := obs.StartSpan(ctx, obs.StageCompare)
	cmp, err := core.CompareWindow(tr.Play, replay, from, to, d.Calib)
	sp.End()
	return cmp, err
}

// Statistical builds the four statistical detectors trained on the
// given legitimate traces, in the paper's order.
func Statistical(training [][]int64) ([]Detector, error) {
	shape, err := NewShape(training)
	if err != nil {
		return nil, err
	}
	ks, err := NewKS(training)
	if err != nil {
		return nil, err
	}
	cce, err := NewCCE(training, 5, 10)
	if err != nil {
		return nil, err
	}
	return []Detector{shape, ks, NewRegularity(100), cce}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
