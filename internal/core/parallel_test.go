package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"sanity/internal/asm"
	"sanity/internal/replaylog"
	"sanity/internal/svm"
)

func echoProg() *svm.Program { return asm.MustAssemble("echo", echoSrc) }

// playCheckpointed records a checkpointed trace for the parallel
// differential tests: 24 packets, a boundary every 4 outputs.
func playCheckpointed(t *testing.T, seed uint64, hook DelayHook) (*Execution, *replaylog.Log) {
	t.Helper()
	prog := asm.MustAssemble("echo", echoSrc)
	playCfg := testConfig(seed)
	playCfg.CheckpointEveryOutputs = 4
	playCfg.Hook = hook
	play, log, err := Play(prog, manyInputs(24, seed^0xF00D), playCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Checkpoints) < 3 {
		t.Fatalf("expected several checkpoints, got %d", len(log.Checkpoints))
	}
	return play, log
}

// sameExecution asserts byte-identity of everything a comparison can
// observe: the output stream (absolute sequence numbers, instruction
// counts, virtual times, payloads) and the end-of-range totals.
func sameExecution(t *testing.T, label string, want, got *Execution) {
	t.Helper()
	if len(want.Outputs) != len(got.Outputs) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got.Outputs), len(want.Outputs))
	}
	for i := range want.Outputs {
		if !reflect.DeepEqual(want.Outputs[i], got.Outputs[i]) {
			t.Fatalf("%s: output %d differs:\n want %+v\n  got %+v", label, i, want.Outputs[i], got.Outputs[i])
		}
	}
	if want.TotalPs != got.TotalPs || want.Instructions != got.Instructions || want.ExitCode != got.ExitCode {
		t.Fatalf("%s: totals differ: (%d ps, %d instr, exit %d) vs (%d ps, %d instr, exit %d)",
			label, got.TotalPs, got.Instructions, got.ExitCode,
			want.TotalPs, want.Instructions, want.ExitCode)
	}
}

// TestParallelReplayBitIdenticalToSequential is the tentpole
// differential property: for every window shape and every worker
// count, the merged parallel replay is byte-identical to the
// sequential windowed replay of the same range, and the timing
// comparison it feeds is byte-identical to one cut out of a
// sequential full replay.
func TestParallelReplayBitIdenticalToSequential(t *testing.T) {
	hooks := map[string]DelayHook{
		"benign": nil,
		"covert": func(ctx DelayCtx) int64 {
			if ctx.PacketIndex%2 == 1 {
				return 40_000_000
			}
			return 0
		},
	}
	for name, hook := range hooks {
		t.Run(name, func(t *testing.T) {
			play, log := playCheckpointed(t, 77, hook)
			replayCfg := testConfig(9001)
			full, err := ReplayTDR(echoProg(), log, replayCfg)
			if err != nil {
				t.Fatal(err)
			}
			nIPDs := len(play.OutputIPDs())
			for _, w := range windowsUnderTest(nIPDs, 4) {
				seq, err := ReplayTDRWindow(echoProg(), log, replayCfg, w[0], w[1])
				if err != nil {
					t.Fatalf("window %v: sequential windowed replay: %v", w, err)
				}
				want, err := CompareWindow(play, full, w[0], w[1], Calibration{})
				if err != nil {
					t.Fatalf("window %v: full-side compare: %v", w, err)
				}
				for _, workers := range []int{1, 2, 3, 8} {
					par, err := ReplayTDRParallel(echoProg(), log, replayCfg, w[0], w[1], workers)
					if err != nil {
						t.Fatalf("window %v workers %d: %v", w, workers, err)
					}
					sameExecution(t, "window/workers", seq, par)
					got, err := CompareWindow(play, par, w[0], w[1], Calibration{})
					if err != nil {
						t.Fatalf("window %v workers %d: compare: %v", w, workers, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("window %v workers %d: comparison diverged from full replay", w, workers)
					}
				}
			}
		})
	}
}

// TestParallelReplayLegacyLog: a log recorded without checkpoints
// degrades to the sequential full-replay fallback at any worker
// count — byte-identical outputs, no error.
func TestParallelReplayLegacyLog(t *testing.T) {
	p := echoProg()
	playCfg := testConfig(11) // no CheckpointEveryOutputs
	play, log, err := Play(p, manyInputs(12, 0xB0B), playCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Checkpoints) != 0 {
		t.Fatal("legacy log unexpectedly has checkpoints")
	}
	n := len(play.OutputIPDs())
	seq, err := ReplayTDRWindow(p, log, testConfig(12), 0, n)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayTDRParallel(p, log, testConfig(12), 0, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameExecution(t, "legacy", seq, par)
}

// TestParallelReplayAdversarialCheckpoints: tampering with an
// interior checkpoint — which only the parallel path restores — must
// never change the result relative to the sequential windowed replay.
// Every tamper either trips the boundary-overlap verification or
// fails the segment restore; both fall back to the sequential path.
func TestParallelReplayAdversarialCheckpoints(t *testing.T) {
	_, log := playCheckpointed(t, 31, nil)
	replayCfg := testConfig(33)
	p := echoProg()
	n := int(log.Checkpoints[len(log.Checkpoints)-1].Outputs) + 2
	from, to := 1, n // interior checkpoints exist strictly inside

	seq, err := ReplayTDRWindow(p, log, replayCfg, from, to)
	if err != nil {
		t.Fatal(err)
	}

	tampers := map[string]func(c *replaylog.Checkpoint){
		"state-flip":     func(c *replaylog.Checkpoint) { c.State[len(c.State)/2] ^= 0xA5 },
		"state-truncate": func(c *replaylog.Checkpoint) { c.State = c.State[:len(c.State)/3] },
		"state-version":  func(c *replaylog.Checkpoint) { c.State[0] = 99 },
		"play-cycles":    func(c *replaylog.Checkpoint) { c.PlayCycles += 12345 },
		"instr":          func(c *replaylog.Checkpoint) { c.Instr += 7 },
	}
	for name, tamper := range tampers {
		t.Run(name, func(t *testing.T) {
			// Deep-copy the log so each subtest tampers independently.
			mut := &replaylog.Log{
				Program: log.Program, Machine: log.Machine, Profile: log.Profile,
				Records: log.Records,
			}
			mut.Checkpoints = make([]replaylog.Checkpoint, len(log.Checkpoints))
			copy(mut.Checkpoints, log.Checkpoints)
			for i := range mut.Checkpoints {
				mut.Checkpoints[i].State = append([]byte(nil), log.Checkpoints[i].State...)
			}
			// Tamper an interior checkpoint: strictly inside (from, to),
			// never the one a sequential windowed replay would restore.
			idx := -1
			for i := range mut.Checkpoints {
				if b := mut.Checkpoints[i].Outputs; b > int64(from) && b < int64(to) {
					idx = i
				}
			}
			if idx < 0 {
				t.Fatal("no interior checkpoint to tamper")
			}
			tamper(&mut.Checkpoints[idx])
			par, err := ReplayTDRParallel(p, mut, replayCfg, from, to, 4)
			if err != nil {
				t.Fatalf("tampered interior checkpoint produced an error instead of a fallback: %v", err)
			}
			sameExecution(t, name, seq, par)
		})
	}
}

// TestParallelReplayCancellation: a canceled context surfaces as the
// context's error and leaves no replay goroutines behind.
func TestParallelReplayCancellation(t *testing.T) {
	_, log := playCheckpointed(t, 41, nil)
	replayCfg := testConfig(42)
	p := echoProg()
	n := int(log.Checkpoints[len(log.Checkpoints)-1].Outputs) + 2

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first segment launches
	if _, err := ReplayTDRParallelCtx(ctx, p, log, replayCfg, 0, n, 4); err != context.Canceled {
		t.Fatalf("pre-canceled context: got %v, want context.Canceled", err)
	}

	// Cancel while segments are in flight: the call must still return
	// (in-flight segments drain; unstarted ones are skipped) with the
	// context's error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ReplayTDRParallelCtx(ctx2, p, log, replayCfg, 0, n, 2)
		done <- err
	}()
	cancel2()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Fatalf("mid-flight cancel: unexpected error %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel replay did not return after cancellation")
	}

	// Goroutine-leak accounting: give the pool a moment to drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
