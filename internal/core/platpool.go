package core

import (
	"sync"

	"sanity/internal/hw"
)

// Platform pooling. hw.NewPlatform allocates the cache, TLB, and
// stamp arrays — megabytes per call on a realistic machine model —
// and an audit pipeline builds one platform per replayed job.
// Platforms for the same (machine, profile) pair are therefore pooled
// and re-keyed with hw.Platform.Reset, which reproduces the freshly
// constructed state exactly (see its contract). Pools are keyed by
// machine and profile name and every reuse re-checks the full specs
// for equality, so a test that registers a divergent spec under a
// colliding name gets a fresh platform rather than a wrong geometry.
type platPoolKey struct {
	machine string
	profile string
}

var platPools sync.Map // platPoolKey -> *sync.Pool

func platPoolFor(cfg *Config) *sync.Pool {
	key := platPoolKey{machine: cfg.Machine.Name, profile: cfg.Profile.Name}
	if v, ok := platPools.Load(key); ok {
		return v.(*sync.Pool)
	}
	v, _ := platPools.LoadOrStore(key, &sync.Pool{})
	return v.(*sync.Pool)
}

// acquirePlatform returns a pooled platform reset to (cfg.Machine,
// cfg.Profile, cfg.Seed), or builds one.
func acquirePlatform(cfg *Config) (*hw.Platform, error) {
	pool := platPoolFor(cfg)
	for {
		p, _ := pool.Get().(*hw.Platform)
		if p == nil {
			return hw.NewPlatform(cfg.Machine, cfg.Profile, cfg.Seed)
		}
		if p.Spec != cfg.Machine || p.Profile != cfg.Profile {
			// Name collision with a different spec: drop it and look on.
			continue
		}
		p.Reset(cfg.Seed)
		return p, nil
	}
}

// releasePlatform returns an engine's platform to its pool. The
// engine must be done with it — nothing an engine returns (Execution,
// log) retains a platform reference.
func releasePlatform(p *hw.Platform) {
	if p == nil {
		return
	}
	pool := platPoolFor(&Config{Machine: p.Spec, Profile: p.Profile})
	pool.Put(p)
}
