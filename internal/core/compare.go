package core

import (
	"bytes"
	"fmt"
)

// IPDPair is one inter-packet delay observed during play and its
// counterpart during replay, in picoseconds.
type IPDPair struct {
	PlayPs   int64
	ReplayPs int64
}

// RelDev returns the relative deviation |replay-play|/play.
func (p IPDPair) RelDev() float64 {
	return p.RelDevSlack(0)
}

// RelDevSlack returns the relative deviation after forgiving absPs
// picoseconds of absolute error: max(0, |replay-play|-absPs)/play.
// Cross-machine calibration uses the allowance for the
// compute-dominated divergence (cache and DRAM cost differences
// between machine types) that is absolute in nature — without it, a
// microsecond-scale modelling error on a back-to-back send would read
// as a huge *relative* deviation and flag benign traffic.
func (p IPDPair) RelDevSlack(absPs int64) float64 {
	d := p.ReplayPs - p.PlayPs
	if d < 0 {
		d = -d
	}
	d -= absPs
	if d <= 0 {
		return 0
	}
	if p.PlayPs == 0 {
		return 1
	}
	return float64(d) / float64(p.PlayPs)
}

// TimingComparison is the auditor's verdict material: how the
// replayed timing relates to the observed one.
type TimingComparison struct {
	// OutputsMatch reports functional equivalence: same packet count
	// and identical payloads in order. Any mismatch means the replay
	// diverged (wrong binary, wrong log) and timing is meaningless.
	OutputsMatch bool
	MismatchAt   int // index of first payload mismatch, -1 if none

	// IPDs pairs every play inter-packet delay with its replay twin.
	IPDs []IPDPair

	// MaxRelIPDDev is the largest relative IPD deviation — the
	// quantity thresholded by the TDR detector and plotted in Fig. 7.
	MaxRelIPDDev float64
	// MeanRelIPDDev averages the per-IPD deviations.
	MeanRelIPDDev float64
	// TotalRelDev is the relative difference of total execution time
	// (the §6.4 "97% of replays within 1%" metric); for a windowed
	// comparison it covers the window's span instead.
	TotalRelDev float64

	// WindowFrom/WindowTo record the audited IPD range when the
	// comparison was windowed (CompareWindow); both are zero for a
	// whole-trace comparison.
	WindowFrom, WindowTo int
}

// Calibration maps a cross-machine replay's timing onto the recorded
// machine's timebase. The zero value (and Scale 1 with no slack) is
// the identity: a plain same-machine comparison.
type Calibration struct {
	// Scale multiplies every replayed timing: recorded-time ≈ Scale ×
	// replay-time. Zero or one means same timebase.
	Scale float64
	// AbsSlackPs forgives that much absolute per-IPD error before the
	// relative deviation is computed — the allowance for
	// compute-dominated divergence (cache/DRAM cost differences) that
	// does not scale with the IPD. Zero means no allowance.
	AbsSlackPs int64
}

// enabled reports whether the calibration changes the comparison.
func (c Calibration) enabled() bool {
	return (c.Scale > 0 && c.Scale != 1) || c.AbsSlackPs > 0
}

// Compare aligns a play execution with a replay of its log and
// summarizes the timing deviations.
func Compare(play, replay *Execution) (*TimingComparison, error) {
	return CompareCalibrated(play, replay, Calibration{})
}

// CompareCalibrated is Compare for cross-machine audits: the replay
// ran on a different machine type than the recording, and cal maps the
// replay's timebase back onto the recorded machine's (a calibration
// learned from known-good traces, internal/calib). Every replayed IPD
// and the replay total are rescaled, and per-IPD deviations forgive
// the calibration's absolute allowance; the resulting MaxRelIPDDev is
// "deviation the software AND the machine-pair model cannot explain".
// The zero calibration degrades to the plain comparison.
func CompareCalibrated(play, replay *Execution, cal Calibration) (*TimingComparison, error) {
	if play == nil || replay == nil {
		return nil, fmt.Errorf("core: Compare needs two executions")
	}
	c := &TimingComparison{OutputsMatch: true, MismatchAt: -1}
	if len(play.Outputs) != len(replay.Outputs) {
		c.OutputsMatch = false
		c.MismatchAt = min(len(play.Outputs), len(replay.Outputs))
	} else {
		for i := range play.Outputs {
			if !bytes.Equal(play.Outputs[i].Payload, replay.Outputs[i].Payload) {
				c.OutputsMatch = false
				c.MismatchAt = i
				break
			}
		}
	}
	pIPD := play.OutputIPDs()
	rIPD := replay.OutputIPDs()
	replayTotal := replay.TotalPs
	if cal.enabled() && cal.Scale > 0 && cal.Scale != 1 {
		for i := range rIPD {
			rIPD[i] = rescalePs(rIPD[i], cal.Scale)
		}
		replayTotal = rescalePs(replayTotal, cal.Scale)
	}
	n := min(len(pIPD), len(rIPD))
	var sum float64
	for i := 0; i < n; i++ {
		pair := IPDPair{PlayPs: pIPD[i], ReplayPs: rIPD[i]}
		c.IPDs = append(c.IPDs, pair)
		d := pair.RelDevSlack(cal.AbsSlackPs)
		sum += d
		if d > c.MaxRelIPDDev {
			c.MaxRelIPDDev = d
		}
	}
	if n > 0 {
		c.MeanRelIPDDev = sum / float64(n)
	}
	if play.TotalPs > 0 {
		d := replayTotal - play.TotalPs
		if d < 0 {
			d = -d
		}
		c.TotalRelDev = float64(d) / float64(play.TotalPs)
	}
	return c, nil
}

// CompareWindow is CompareCalibrated restricted to the IPD window
// [fromIPD, toIPD): only the outputs spanning the window are checked
// functionally and only the window's IPD pairs feed the deviation
// statistics, with TotalRelDev computed over the window's span. The
// replay execution may be a full replay or a windowed replay resumed
// mid-stream — outputs are aligned by their absolute sequence
// numbers, and both produce bit-identical comparisons for the same
// window (the differential tests pin exactly this).
//
// Windows extending past the recorded execution are clipped to it; a
// window entirely past the end compares nothing and reports a clean
// empty result. A replay missing an output the window needs reads as
// a functional mismatch at that index.
func CompareWindow(play, replay *Execution, fromIPD, toIPD int, cal Calibration) (*TimingComparison, error) {
	if play == nil || replay == nil {
		return nil, fmt.Errorf("core: CompareWindow needs two executions")
	}
	if fromIPD < 0 || toIPD < fromIPD {
		return nil, fmt.Errorf("core: invalid IPD window [%d, %d)", fromIPD, toIPD)
	}
	c := &TimingComparison{OutputsMatch: true, MismatchAt: -1, WindowFrom: fromIPD, WindowTo: toIPD}
	// Clip to the recorded execution: IPD i exists when outputs i and
	// i+1 do.
	to := toIPD
	if max := len(play.Outputs) - 1; to > max {
		to = max
	}
	if fromIPD >= to {
		return c, nil
	}
	// Replay outputs carry absolute sequence numbers; a windowed
	// replay's slice starts at its resume point.
	firstSeq := 0
	if len(replay.Outputs) > 0 {
		firstSeq = replay.Outputs[0].Seq
	}
	rOut := func(i int) *OutputEvent {
		j := i - firstSeq
		if j < 0 || j >= len(replay.Outputs) {
			return nil
		}
		return &replay.Outputs[j]
	}
	for i := fromIPD; i <= to && c.OutputsMatch; i++ {
		ro := rOut(i)
		if ro == nil || !bytes.Equal(play.Outputs[i].Payload, ro.Payload) {
			c.OutputsMatch = false
			c.MismatchAt = i
		}
	}
	var sum float64
	var spanPlay, spanReplay int64
	for i := fromIPD; i < to; i++ {
		ra, rb := rOut(i), rOut(i+1)
		if ra == nil || rb == nil {
			break
		}
		pIPD := play.Outputs[i+1].TimePs - play.Outputs[i].TimePs
		rIPD := rb.TimePs - ra.TimePs
		if cal.enabled() && cal.Scale > 0 && cal.Scale != 1 {
			rIPD = rescalePs(rIPD, cal.Scale)
		}
		pair := IPDPair{PlayPs: pIPD, ReplayPs: rIPD}
		c.IPDs = append(c.IPDs, pair)
		spanPlay += pIPD
		spanReplay += rIPD
		d := pair.RelDevSlack(cal.AbsSlackPs)
		sum += d
		if d > c.MaxRelIPDDev {
			c.MaxRelIPDDev = d
		}
	}
	if n := len(c.IPDs); n > 0 {
		c.MeanRelIPDDev = sum / float64(n)
	}
	if spanPlay > 0 {
		d := spanReplay - spanPlay
		if d < 0 {
			d = -d
		}
		c.TotalRelDev = float64(d) / float64(spanPlay)
	}
	return c, nil
}

// rescalePs maps a picosecond quantity between machine timebases,
// rounding to the nearest integer so comparisons stay bit-exact for a
// fixed (execution, scale) pair.
func rescalePs(ps int64, scale float64) int64 {
	s := float64(ps) * scale
	if s < 0 {
		return int64(s - 0.5)
	}
	return int64(s + 0.5)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
