package core

import (
	"bytes"
	"fmt"
)

// IPDPair is one inter-packet delay observed during play and its
// counterpart during replay, in picoseconds.
type IPDPair struct {
	PlayPs   int64
	ReplayPs int64
}

// RelDev returns the relative deviation |replay-play|/play.
func (p IPDPair) RelDev() float64 {
	if p.PlayPs == 0 {
		if p.ReplayPs == 0 {
			return 0
		}
		return 1
	}
	d := p.ReplayPs - p.PlayPs
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(p.PlayPs)
}

// TimingComparison is the auditor's verdict material: how the
// replayed timing relates to the observed one.
type TimingComparison struct {
	// OutputsMatch reports functional equivalence: same packet count
	// and identical payloads in order. Any mismatch means the replay
	// diverged (wrong binary, wrong log) and timing is meaningless.
	OutputsMatch bool
	MismatchAt   int // index of first payload mismatch, -1 if none

	// IPDs pairs every play inter-packet delay with its replay twin.
	IPDs []IPDPair

	// MaxRelIPDDev is the largest relative IPD deviation — the
	// quantity thresholded by the TDR detector and plotted in Fig. 7.
	MaxRelIPDDev float64
	// MeanRelIPDDev averages the per-IPD deviations.
	MeanRelIPDDev float64
	// TotalRelDev is the relative difference of total execution time
	// (the §6.4 "97% of replays within 1%" metric).
	TotalRelDev float64
}

// Compare aligns a play execution with a replay of its log and
// summarizes the timing deviations.
func Compare(play, replay *Execution) (*TimingComparison, error) {
	if play == nil || replay == nil {
		return nil, fmt.Errorf("core: Compare needs two executions")
	}
	c := &TimingComparison{OutputsMatch: true, MismatchAt: -1}
	if len(play.Outputs) != len(replay.Outputs) {
		c.OutputsMatch = false
		c.MismatchAt = min(len(play.Outputs), len(replay.Outputs))
	} else {
		for i := range play.Outputs {
			if !bytes.Equal(play.Outputs[i].Payload, replay.Outputs[i].Payload) {
				c.OutputsMatch = false
				c.MismatchAt = i
				break
			}
		}
	}
	pIPD := play.OutputIPDs()
	rIPD := replay.OutputIPDs()
	n := min(len(pIPD), len(rIPD))
	var sum float64
	for i := 0; i < n; i++ {
		pair := IPDPair{PlayPs: pIPD[i], ReplayPs: rIPD[i]}
		c.IPDs = append(c.IPDs, pair)
		d := pair.RelDev()
		sum += d
		if d > c.MaxRelIPDDev {
			c.MaxRelIPDDev = d
		}
	}
	if n > 0 {
		c.MeanRelIPDDev = sum / float64(n)
	}
	if play.TotalPs > 0 {
		d := replay.TotalPs - play.TotalPs
		if d < 0 {
			d = -d
		}
		c.TotalRelDev = float64(d) / float64(play.TotalPs)
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
