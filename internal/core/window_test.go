package core

import (
	"reflect"
	"testing"

	"sanity/internal/asm"
	"sanity/internal/hw"
)

// manyInputs builds n inputs a few virtual milliseconds apart with
// seed-jittered spacing, enough outputs for several checkpoints.
func manyInputs(n int, seed uint64) []InputEvent {
	rng := hw.NewRNG(seed)
	var in []InputEvent
	t := int64(0)
	for i := 0; i < n; i++ {
		t += 1_000_000_000 + rng.Int63n(3_000_000_000)
		in = append(in, InputEvent{ArrivalPs: t, Payload: []byte{byte(i + 1), 0xAB, byte(i), byte(i * 7)}})
	}
	return in
}

// windowsUnderTest covers the degenerate shapes the satellite task
// names, plus representative interior windows.
func windowsUnderTest(nIPDs, every int) [][2]int {
	return [][2]int{
		{0, nIPDs},              // full range (forces the fallback-from-zero path)
		{nIPDs / 2, nIPDs},      // tail window
		{every, every + 5},      // checkpoint exactly on the window boundary
		{every + 1, every + 2},  // single IPD
		{every + 3, every + 3},  // empty window
		{nIPDs - 2, nIPDs + 50}, // window past end-of-log
		{nIPDs + 10, nIPDs + 20}, // window entirely past the end
		{3, nIPDs - 3},          // spans several interior boundaries
	}
}

// TestWindowedReplayBitIdenticalToFull is the core differential
// property: for every window, a windowed replay's comparison is
// byte-identical to the same window cut out of a full replay — same
// IPD pairs, same deviations, same functional verdict — under both
// the quiet Sanity profile and a noisy profile where the quiescence
// re-keying actually has work to do.
func TestWindowedReplayBitIdenticalToFull(t *testing.T) {
	profiles := []hw.NoiseProfile{hw.ProfileSanity(), hw.ProfileUserQuiet()}
	hooks := map[string]DelayHook{
		"benign": nil,
		"covert": func(ctx DelayCtx) int64 {
			if ctx.PacketIndex%2 == 1 {
				return 40_000_000 // ~12ms on the testbed clock: far over threshold
			}
			return 0
		},
	}
	for _, profile := range profiles {
		for name, hook := range hooks {
			t.Run(profile.Name+"/"+name, func(t *testing.T) {
				prog := asm.MustAssemble("echo", echoSrc)
				playCfg := testConfig(77)
				playCfg.Profile = profile
				playCfg.CheckpointEveryOutputs = 4
				playCfg.Hook = hook
				play, log, err := Play(prog, manyInputs(24, 0xF00D), playCfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(log.Checkpoints) < 3 {
					t.Fatalf("expected several checkpoints, got %d", len(log.Checkpoints))
				}
				replayCfg := testConfig(9001) // auditor's own seed, no hook
				replayCfg.Profile = profile
				full, err := ReplayTDR(prog, log, replayCfg)
				if err != nil {
					t.Fatal(err)
				}
				nIPDs := len(play.OutputIPDs())
				for _, w := range windowsUnderTest(nIPDs, 4) {
					want, err := CompareWindow(play, full, w[0], w[1], Calibration{})
					if err != nil {
						t.Fatalf("window %v: full-side compare: %v", w, err)
					}
					windowed, err := ReplayTDRWindow(prog, log, replayCfg, w[0], w[1])
					if err != nil {
						t.Fatalf("window %v: windowed replay: %v", w, err)
					}
					got, err := CompareWindow(play, windowed, w[0], w[1], Calibration{})
					if err != nil {
						t.Fatalf("window %v: windowed-side compare: %v", w, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("window %v: comparisons diverged\n full: %+v\n wind: %+v", w, want, got)
					}
				}
			})
		}
	}
}

// TestWindowedReplaySkipsPrefix checks the point of the feature: a
// tail-window replay resumed from a checkpoint executes only the tail
// of the instruction stream.
func TestWindowedReplaySkipsPrefix(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	playCfg := testConfig(5)
	playCfg.CheckpointEveryOutputs = 4
	play, log, err := Play(prog, manyInputs(24, 0xBEE), playCfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ReplayTDR(prog, log, testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	n := len(play.OutputIPDs())
	windowed, err := ReplayTDRWindow(prog, log, testConfig(6), n-4, n)
	if err != nil {
		t.Fatal(err)
	}
	// The windowed replay starts at a restored instruction count, so
	// the instructions it executed itself are the total minus the
	// checkpoint's. A <25% share is conservative for a 4-of-23 window.
	win, err := log.Window(n-4, n)
	if err != nil || win.Start == nil {
		t.Fatalf("no usable checkpoint for the tail window: %v", err)
	}
	ck := win.Start
	executed := windowed.Instructions - ck.Instr
	if executed <= 0 || executed*2 > full.Instructions {
		t.Fatalf("windowed replay executed %d of %d instructions — no prefix skip", executed, full.Instructions)
	}
	// And its outputs carry the absolute sequence numbers of the tail.
	if len(windowed.Outputs) == 0 || windowed.Outputs[0].Seq != int(ck.Outputs) {
		t.Fatalf("windowed outputs start at seq %d, want %d", windowed.Outputs[0].Seq, ck.Outputs)
	}
}

// TestWindowedReplayDetectsCovertDelay: the covert hook's delays land
// inside the audited window and nowhere else is replayed, yet the
// deviation is fully visible.
func TestWindowedReplayDetectsCovertDelay(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	playCfg := testConfig(21)
	playCfg.CheckpointEveryOutputs = 4
	playCfg.Hook = func(ctx DelayCtx) int64 { return 60_000_000 }
	play, log, err := Play(prog, manyInputs(20, 0xCAFE), playCfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(play.OutputIPDs())
	windowed, err := ReplayTDRWindow(prog, log, testConfig(22), n-6, n)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareWindow(play, windowed, n-6, n, Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatalf("outputs diverged: %+v", cmp)
	}
	if cmp.MaxRelIPDDev < 0.003 {
		t.Fatalf("covert delay invisible in window: max dev %.6f", cmp.MaxRelIPDDev)
	}
}

// TestCheckpointedBenignStaysUnderFloor: quiescence boundaries cancel
// out of the comparison — a benign checkpointed trace replays as
// accurately as an uncheckpointed one.
func TestCheckpointedBenignStaysUnderFloor(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	playCfg := testConfig(31)
	playCfg.CheckpointEveryOutputs = 5
	play, log, err := Play(prog, manyInputs(20, 0xD00D), playCfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTDR(prog, log, testConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("outputs diverged on a checkpointed benign trace")
	}
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("checkpointed benign replay above the noise floor: %.4f", cmp.MaxRelIPDDev)
	}
}

// TestReplayWindowValidation: nonsensical windows are rejected, and
// an unknown program still refuses.
func TestReplayWindowValidation(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	_, log, err := Play(prog, msInputs(1, 3), testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTDRWindow(prog, log, testConfig(2), -1, 3); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := ReplayTDRWindow(prog, log, testConfig(2), 5, 2); err == nil {
		t.Fatal("inverted window accepted")
	}
	log.Program = "someothersoftware"
	if _, err := ReplayTDRWindow(prog, log, testConfig(2), 0, 1); err == nil {
		t.Fatal("wrong program accepted")
	}
}
