package core

import (
	"bytes"
	"strings"
	"testing"

	"sanity/internal/asm"
	"sanity/internal/hw"
)

// echoSrc is a server that echoes every packet back after summing its
// bytes (so the payload is actually touched, like a real handler).
const echoSrc = `
.program echo
.func main 0 4
loop:
    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    iconst 0
    store 1
    iconst 0
    store 2
sum:
    load 2
    load 0
    alen
    if_icmpge send
    load 1
    load 0
    load 2
    aload
    iadd
    store 1
    iinc 2 1
    goto sum
send:
    load 0
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end`

// timeSrc reads nanoTime twice and prints the difference, exercising
// the logged-value path.
const timeSrc = `
.program timereader
.func main 0 3
    ncall sys.nanotime 0
    store 0
    iconst 0
    store 2
spin:
    load 2
    iconst 5000
    if_icmpge after
    iinc 2 1
    goto spin
after:
    ncall sys.nanotime 0
    load 0
    isub
    ncall sys.print 1
    pop
    ret
.end`

func testConfig(seed uint64) Config {
	return Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		MaxSteps: 200_000_000,
	}
}

func msInputs(times ...int64) []InputEvent {
	var in []InputEvent
	for i, t := range times {
		in = append(in, InputEvent{ArrivalPs: t * 1_000_000_000, Payload: []byte{byte(i + 1), 0xAB, byte(i)}})
	}
	return in
}

func TestPlayEchoProducesOutputs(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 3, 7)
	exec, log, err := Play(prog, inputs, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Outputs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(exec.Outputs))
	}
	for i, out := range exec.Outputs {
		if !bytes.Equal(out.Payload, inputs[i].Payload) {
			t.Fatalf("output %d = %v, want echo of %v", i, out.Payload, inputs[i].Payload)
		}
	}
	if got := len(log.Packets()); got != 3 {
		t.Fatalf("log has %d packets, want 3", got)
	}
	// Outputs must be timestamped after their inputs arrived.
	for i, out := range exec.Outputs {
		if out.TimePs < inputs[i].ArrivalPs {
			t.Fatalf("output %d at %d before input arrival %d", i, out.TimePs, inputs[i].ArrivalPs)
		}
	}
}

func TestPlayRespectsArrivalSpacing(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	exec, _, err := Play(prog, msInputs(1, 5, 6), testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ipds := exec.OutputIPDs()
	if len(ipds) != 2 {
		t.Fatalf("ipds = %d", len(ipds))
	}
	// The first gap should be ~4ms, the second ~1ms: processing time
	// is microseconds, so arrival spacing dominates.
	if !within(ipds[0], 4_000_000_000, 0.2) {
		t.Fatalf("ipd[0] = %d ps, want ~4ms", ipds[0])
	}
	if !within(ipds[1], 1_000_000_000, 0.2) {
		t.Fatalf("ipd[1] = %d ps, want ~1ms", ipds[1])
	}
}

func TestReplayTDRReproducesOutputsAndInstrCounts(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 3, 7, 9, 14)
	play, log, err := Play(prog, inputs, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Replay on a different machine of the same type: different seed.
	replay, err := ReplayTDR(prog, log, testConfig(999))
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Outputs) != len(play.Outputs) {
		t.Fatalf("replay outputs %d, play %d", len(replay.Outputs), len(play.Outputs))
	}
	for i := range play.Outputs {
		if !bytes.Equal(play.Outputs[i].Payload, replay.Outputs[i].Payload) {
			t.Fatalf("output %d payload differs", i)
		}
		if play.Outputs[i].Instr != replay.Outputs[i].Instr {
			t.Fatalf("output %d instruction count differs: %d vs %d",
				i, play.Outputs[i].Instr, replay.Outputs[i].Instr)
		}
	}
	if play.Instructions != replay.Instructions {
		t.Fatalf("total instructions differ: %d vs %d", play.Instructions, replay.Instructions)
	}
}

func TestReplayTDRTimingAccuracy(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 3, 7, 9, 14, 15, 21, 28)
	play, log, err := Play(prog, inputs, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTDR(prog, log, testConfig(777))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatalf("outputs diverged at %d", cmp.MismatchAt)
	}
	// The paper's headline: replay within 1.85% (we demand 2%).
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("max IPD deviation %.4f above 2%%", cmp.MaxRelIPDDev)
	}
	if cmp.TotalRelDev > 0.02 {
		t.Fatalf("total-time deviation %.4f above 2%%", cmp.TotalRelDev)
	}
}

func TestReplayFunctionalDivergesInTiming(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	// Long idle gaps: functional replay skips them, so its total time
	// collapses.
	inputs := msInputs(10, 30, 70)
	play, log, err := Play(prog, inputs, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ReplayFunctional(prog, log, testConfig(778))
	if err != nil {
		t.Fatal(err)
	}
	// Functionally correct...
	cmp, err := Compare(play, fr)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("functional replay changed the outputs")
	}
	// ...but temporally broken: total time far below play's (idle
	// phases skipped).
	if float64(fr.TotalPs) > 0.5*float64(play.TotalPs) {
		t.Fatalf("functional replay did not skip waits: %d vs %d ps", fr.TotalPs, play.TotalPs)
	}
	if cmp.MaxRelIPDDev < 0.10 {
		t.Fatalf("functional replay IPDs suspiciously accurate (%.4f); Figure 3 expects divergence", cmp.MaxRelIPDDev)
	}
}

func TestNanoTimeLoggedAndReplayed(t *testing.T) {
	prog := asm.MustAssemble("timereader", timeSrc)
	play, log, err := Play(prog, nil, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Values()) != 2 {
		t.Fatalf("log has %d value records, want 2", len(log.Values()))
	}
	replay, err := ReplayTDR(prog, log, testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// The printed delta is computed from logged values, so the replay
	// prints the exact same bytes.
	if !bytes.Equal(play.Stdout, replay.Stdout) {
		t.Fatalf("stdout differs: %q vs %q", play.Stdout, replay.Stdout)
	}
}

func TestRandLoggedAndReplayed(t *testing.T) {
	src := `
.func main 0 1
    ncall sys.rand 0
    ncall sys.print 1
    pop
    ret
.end`
	prog := asm.MustAssemble("rand", src)
	play, log, err := Play(prog, nil, testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTDR(prog, log, testConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(play.Stdout, replay.Stdout) {
		t.Fatalf("random value not replayed: %q vs %q", play.Stdout, replay.Stdout)
	}
	// A different play seed must (overwhelmingly) give a different
	// random value.
	play2, _, err := Play(prog, nil, testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(play.Stdout, play2.Stdout) {
		t.Fatal("different seeds produced identical random values")
	}
}

func TestCovertHookDelaysDetectedByComparison(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 3, 5, 7, 9, 11)
	cfg := testConfig(8)
	// Compromised machine: delay every second packet by 1M cycles
	// (~0.3 ms).
	cfg.Hook = func(ctx DelayCtx) int64 {
		if ctx.PacketIndex%2 == 1 {
			return 1_000_000
		}
		return 0
	}
	play, log, err := Play(prog, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The auditor replays with the known-good configuration (no hook).
	replay, err := ReplayTDR(prog, log, testConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("outputs should still match (the channel only shifts timing)")
	}
	// ~0.3ms on ~2ms IPDs is ~15%, far above the TDR noise floor.
	if cmp.MaxRelIPDDev < 0.05 {
		t.Fatalf("covert delay invisible in comparison: max dev %.4f", cmp.MaxRelIPDDev)
	}
}

func TestCleanPlayVsReplayStaysUnderDetectionFloor(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 3, 5, 7, 9, 11)
	play, log, err := Play(prog, inputs, testConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTDR(prog, log, testConfig(90))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("clean trace deviation %.4f above noise floor", cmp.MaxRelIPDDev)
	}
}

func TestFsReadPaddedDeterministic(t *testing.T) {
	src := `
.func main 0 2
    sconst "data.bin"
    ncall fs.read 1
    store 0
    load 0
    ifnull missing
    load 0
    alen
    ncall sys.print 1
    pop
    ret
missing:
    sconst "missing"
    ncall sys.print 1
    pop
    ret
.end`
	prog := asm.MustAssemble("fsread", src)
	cfg := testConfig(10)
	cfg.Files = map[string][]byte{"data.bin": bytes.Repeat([]byte{7}, 12345)}
	play, log, err := Play(prog, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(play.Stdout) != "12345" {
		t.Fatalf("stdout %q", play.Stdout)
	}
	cfgR := cfg
	cfgR.Seed = 11
	replay, err := ReplayTDR(prog, log, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	// I/O padding makes the read cost identical, so totals must agree
	// tightly even across seeds.
	cmp, _ := Compare(play, replay)
	if cmp.TotalRelDev > 0.02 {
		t.Fatalf("padded-I/O total deviation %.4f", cmp.TotalRelDev)
	}
}

func TestFsReadMissingFileReturnsNull(t *testing.T) {
	src := `
.func main 0 1
    sconst "nope"
    ncall fs.read 1
    ifnull ok
    sconst "found"
    ncall sys.print 1
    pop
    ret
ok:
    sconst "null"
    ncall sys.print 1
    pop
    ret
.end`
	prog := asm.MustAssemble("fsmiss", src)
	exec, _, err := Play(prog, nil, testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if string(exec.Stdout) != "null" {
		t.Fatalf("stdout %q, want null", exec.Stdout)
	}
}

func TestRecvBlockRejectsMultithreaded(t *testing.T) {
	src := `
.func main 0 1
    spawn spinner
    pop
    ncall io.recvblock 0
    pop
    ret
.end
.func spinner 0 1
loop:
    yield
    goto loop
.end`
	prog := asm.MustAssemble("mt", src)
	_, _, err := Play(prog, msInputs(1), testConfig(13))
	if err == nil || !strings.Contains(err.Error(), "single runnable thread") {
		t.Fatalf("expected single-thread error, got %v", err)
	}
}

func TestNonBlockingRecvPolling(t *testing.T) {
	// A server that does bounded work between polls, using io.recv.
	src := `
.func main 0 3
    iconst 0
    store 1          ; packets handled
loop:
    ncall io.recv 0
    store 0
    load 0
    ifnull idle
    load 0
    ncall io.send 1
    pop
    iinc 1 1
    load 1
    iconst 2
    if_icmpge done
idle:
    iconst 0
    store 2
work:
    load 2
    iconst 500
    if_icmpge loop
    iinc 2 1
    goto work
done:
    ret
.end`
	prog := asm.MustAssemble("poller", src)
	exec, log, err := Play(prog, msInputs(1, 2), testConfig(14))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(exec.Outputs))
	}
	replay, err := ReplayTDR(prog, log, testConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	if replay.Instructions != exec.Instructions {
		t.Fatalf("instr counts differ: %d vs %d", replay.Instructions, exec.Instructions)
	}
}

func TestReplayWrongProgramRejected(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	_, log, err := Play(prog, msInputs(1), testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	other := asm.MustAssemble("timereader", timeSrc)
	if _, err := ReplayTDR(other, log, testConfig(17)); err == nil {
		t.Fatal("replaying the wrong program must fail")
	}
}

func TestEventsAlignedBetweenPlayAndReplay(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	play, log, err := Play(prog, msInputs(1, 4), testConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTDR(prog, log, testConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	if len(play.Events) != len(replay.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(play.Events), len(replay.Events))
	}
	for i := range play.Events {
		if play.Events[i].Kind != replay.Events[i].Kind {
			t.Fatalf("event %d kind differs: %s vs %s", i, play.Events[i].Kind, replay.Events[i].Kind)
		}
		if play.Events[i].Instr != replay.Events[i].Instr {
			t.Fatalf("event %d instr differs: %d vs %d", i, play.Events[i].Instr, replay.Events[i].Instr)
		}
	}
}

func TestCompareDetectsPayloadMismatch(t *testing.T) {
	a := &Execution{Outputs: []OutputEvent{{Payload: []byte{1}, TimePs: 10}, {Payload: []byte{2}, TimePs: 20}}, TotalPs: 30}
	b := &Execution{Outputs: []OutputEvent{{Payload: []byte{1}, TimePs: 10}, {Payload: []byte{9}, TimePs: 20}}, TotalPs: 30}
	cmp, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OutputsMatch || cmp.MismatchAt != 1 {
		t.Fatalf("mismatch not found: %+v", cmp)
	}
}

func TestCompareIPDMath(t *testing.T) {
	a := &Execution{Outputs: []OutputEvent{{TimePs: 0}, {TimePs: 100}, {TimePs: 300}}, TotalPs: 300}
	b := &Execution{Outputs: []OutputEvent{{TimePs: 0}, {TimePs: 110}, {TimePs: 310}}, TotalPs: 310}
	cmp, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.IPDs) != 2 {
		t.Fatalf("ipds = %d", len(cmp.IPDs))
	}
	if !close64(cmp.MaxRelIPDDev, 0.10) {
		t.Fatalf("max dev %.4f, want 0.10", cmp.MaxRelIPDDev)
	}
}

func within(got, want int64, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return float64(d) <= tol*float64(want)
}

func close64(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
