package core

import (
	"sync"

	"sanity/internal/replaylog"
)

// recBufs is the per-replay scratch an engine needs to walk a log:
// the record stream split by kind. The split used to be allocated per
// replay (replaylog.Packets/Values); the audit pipeline replays one
// log per job across a worker pool, so the slices are pooled and the
// Record values copied into them — payload backing arrays still
// belong to the log, which outlives the run.
type recBufs struct {
	packets []replaylog.Record
	values  []replaylog.Record
}

var recBufPool = sync.Pool{New: func() any { return &recBufs{} }}

// splitRecords partitions the record stream into pooled per-kind
// slices. Callers must release() the result when the run is over.
func splitRecords(recs []replaylog.Record) *recBufs {
	b := recBufPool.Get().(*recBufs)
	b.packets = b.packets[:0]
	b.values = b.values[:0]
	for _, r := range recs {
		if r.Kind == replaylog.KindPacket {
			b.packets = append(b.packets, r)
		} else {
			b.values = append(b.values, r)
		}
	}
	return b
}

// release returns the scratch to the pool. The record values held in
// the slices are dropped on next reuse; payloads are never owned by
// the pool.
func (b *recBufs) release() {
	recBufPool.Put(b)
}
