package core

import (
	"bytes"
	"testing"

	"sanity/internal/asm"
	"sanity/internal/replaylog"
)

// TestReplayFromSerializedLog exercises the full audit pipeline the
// way cmd/sanity and a real auditor would: play -> encode the log to
// bytes -> decode it back -> TDR replay. The timing guarantees must
// survive serialization.
func TestReplayFromSerializedLog(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 4, 6, 9)
	play, log, err := Play(prog, inputs, testConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := replaylog.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTDR(prog, decoded, testConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatal("outputs diverged after log serialization")
	}
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("IPD deviation %.4f after serialization", cmp.MaxRelIPDDev)
	}
}

// TestReplayIsIdempotent replays the same log twice with the same
// seed: the two replays must be bit-identical in instruction counts
// and cycle-exact in timing (replay is itself deterministic).
func TestReplayIsIdempotent(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	_, log, err := Play(prog, msInputs(2, 5), testConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ReplayTDR(prog, log, testConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReplayTDR(prog, log, testConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Instructions != r2.Instructions || r1.TotalPs != r2.TotalPs {
		t.Fatalf("replay not deterministic: %d/%d ps vs %d/%d ps",
			r1.Instructions, r1.TotalPs, r2.Instructions, r2.TotalPs)
	}
	for i := range r1.Outputs {
		if r1.Outputs[i].TimePs != r2.Outputs[i].TimePs {
			t.Fatalf("output %d timing differs between identical replays", i)
		}
	}
}

// TestReplayOfReplayedLogChain verifies the transitivity an auditor
// relies on: if machine A's log replays cleanly on B, and the same log
// replays cleanly on C, then B and C agree with each other.
func TestReplayOfReplayedLogChain(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	_, log, err := Play(prog, msInputs(1, 3, 8), testConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayTDR(prog, log, testConfig(26))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ReplayTDR(prog, log, testConfig(27))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch || cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("two replays of one log disagree: %.4f", cmp.MaxRelIPDDev)
	}
}

// TestTamperedLogChangesOutputs modifies a packet in the log; the
// replay must produce different outputs (the echo reflects the
// payload), which Compare reports as functional divergence — the
// strongest audit signal.
func TestTamperedLogChangesOutputs(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	play, log, err := Play(prog, msInputs(1, 3), testConfig(28))
	if err != nil {
		t.Fatal(err)
	}
	for i := range log.Records {
		if log.Records[i].Kind == 'P' {
			log.Records[i].Payload[0] ^= 0xFF
			break
		}
	}
	replay, err := ReplayTDR(prog, log, testConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OutputsMatch {
		t.Fatal("tampered log went unnoticed")
	}
}

// TestHookDoesNotChangeOutputsOnlyTiming confirms the covert channel
// threat model: delays shift timestamps but never payloads — and the
// TDR replay of the compromised log still reproduces the compromised
// execution's instruction counts exactly (the channel lives below the
// VM's ISA, so replay aligns; only the virtual timing differs).
func TestHookDoesNotChangeOutputsOnlyTiming(t *testing.T) {
	prog := asm.MustAssemble("echo", echoSrc)
	inputs := msInputs(1, 3, 5)
	clean, _, err := Play(prog, inputs, testConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(30)
	cfg.Hook = func(ctx DelayCtx) int64 { return 500_000 }
	dirty, dirtyLog, err := Play(prog, inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Outputs) != len(dirty.Outputs) {
		t.Fatal("hook changed output count")
	}
	for i := range clean.Outputs {
		if !bytes.Equal(clean.Outputs[i].Payload, dirty.Outputs[i].Payload) {
			t.Fatalf("hook changed payload %d", i)
		}
	}
	if dirty.Outputs[1].TimePs <= clean.Outputs[1].TimePs {
		t.Fatal("hook did not delay outputs")
	}
	// The auditor's replay (no hook) follows the logged instruction
	// counts, so it aligns with the compromised execution instruction
	// for instruction — while its timing reveals the injected delays.
	replay, err := ReplayTDR(prog, dirtyLog, testConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	for i := range dirty.Outputs {
		if replay.Outputs[i].Instr != dirty.Outputs[i].Instr {
			t.Fatalf("replay instruction count differs at output %d", i)
		}
	}
	cmp, err := Compare(dirty, replay)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MaxRelIPDDev < 0.05 {
		t.Fatalf("injected delay invisible to the comparison: %.4f", cmp.MaxRelIPDDev)
	}
}
