// Parallel windowed replay. A checkpointed log makes one long trace
// resumable at every quiescence boundary, which turns replay — the
// audit's dominant cost — into an embarrassingly parallel problem:
// partition the audited IPD range at checkpoint boundaries, replay
// each segment concurrently on its own pooled platform, and stitch
// the per-segment output streams back together. Per-trace replay
// latency becomes per-segment latency.
//
// Why the stitched result is bit-identical to a sequential replay of
// the same range: at a quiescence boundary the platform's timing
// state is a pure function of (machine spec, noise profile,
// epochSeed(cfg.Seed, boundary)) — see the package comment in
// checkpoint.go — and the functional state is the recorded snapshot.
// A segment resumed at boundary b therefore starts from exactly the
// state a sequential replay has when it crosses b, so the outputs it
// emits are the same bytes at the same virtual times.
//
// One guarantee needs care: a sequential windowed replay restores
// only the FIRST checkpoint at or before the window and re-derives
// every later boundary by replaying across it, whereas the parallel
// path restores interior checkpoints too. A corrupted (or tampered)
// interior checkpoint could thus make the parallel path diverge where
// the sequential path would not. Each interior boundary output is
// replayed by BOTH adjacent segments — the last output of segment j
// is the first output of segment j+1 — and the merge verifies that
// overlap byte for byte. Any mismatch, or any segment failure,
// abandons the parallel attempt and falls back to the sequential
// windowed replay, so a hostile checkpoint table can slow an audit
// down but can never change its verdict.
package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"sanity/internal/obs"
	"sanity/internal/replaylog"
	"sanity/internal/svm"
)

// ReplayTDRParallel reproduces the IPD window [fromIPD, toIPD) of an
// execution like ReplayTDRWindow, but replays the checkpoint-bounded
// segments of the range concurrently on up to workers goroutines. The
// returned execution is bit-identical to ReplayTDRWindow's over the
// same range (the differential property the tests pin): same outputs
// with their absolute sequence numbers, and the same end-of-range
// totals. Events, Stdout and the hardware report are not merged —
// they are per-engine instrumentation that no comparison reads.
//
// workers <= 1, a checkpoint-free log, or a range with no interior
// boundary all degrade to the sequential windowed replay.
func ReplayTDRParallel(prog *svm.Program, log *replaylog.Log, cfg Config, fromIPD, toIPD, workers int) (*Execution, error) {
	return ReplayTDRParallelCtx(context.Background(), prog, log, cfg, fromIPD, toIPD, workers)
}

// ReplayTDRParallelCtx is ReplayTDRParallel with context-carried
// cancellation and observability: each segment's replay is recorded
// as a "segment" span (wrapping its "restore" and "replay" children),
// and a canceled context stops launching segments and returns the
// context's error once in-flight segments drain.
func ReplayTDRParallelCtx(ctx context.Context, prog *svm.Program, log *replaylog.Log, cfg Config, fromIPD, toIPD, workers int) (*Execution, error) {
	if log.Program != prog.Name {
		return nil, fmt.Errorf("core: log was recorded for program %q, not %q", log.Program, prog.Name)
	}
	if fromIPD < 0 || toIPD < fromIPD {
		return nil, fmt.Errorf("core: invalid IPD window [%d, %d)", fromIPD, toIPD)
	}
	if fromIPD == toIPD {
		return &Execution{Mode: ModeReplayTDR}, nil
	}
	cuts := segmentCuts(log, fromIPD, toIPD)
	if workers <= 1 || len(cuts) == 0 {
		return ReplayTDRWindowCtx(ctx, prog, log, cfg, fromIPD, toIPD)
	}

	// Segment j replays [starts[j], ends[j]); adjacent segments share
	// the boundary output (the last output of one is the first of the
	// next), which the merge verifies.
	starts := append([]int{fromIPD}, cuts...)
	ends := append(append([]int(nil), cuts...), toIPD)
	segs := make([]*Execution, len(starts))
	errs := make([]error, len(starts))

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > len(starts) {
		workers = len(starts)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for j := range starts {
		if cctx.Err() != nil {
			errs[j] = cctx.Err()
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			defer func() { <-sem }()
			segCtx, sp := obs.StartSpan(cctx, obs.StageSegment)
			segs[j], errs[j] = ReplayTDRWindowCtx(segCtx, prog, log, cfg, starts[j], ends[j])
			sp.End()
			if errs[j] != nil {
				// First failure stops further launches; in-flight
				// segments run to completion (the engine does not
				// poll the context mid-replay).
				cancel()
			}
		}(j)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged, err := mergeSegments(segs, errs, cuts)
	if err != nil {
		// A failed or inconsistent segment — most likely a corrupted
		// interior checkpoint that the sequential path would never
		// have restored. Fall back so the verdict matches what a
		// sequential audit of the same trace produces.
		return ReplayTDRWindowCtx(ctx, prog, log, cfg, fromIPD, toIPD)
	}
	return merged, nil
}

// segmentCuts returns the interior cut points of [fromIPD, toIPD):
// every checkpoint boundary strictly inside the range. A replay
// segment starting at a cut restores that exact checkpoint.
func segmentCuts(log *replaylog.Log, fromIPD, toIPD int) []int {
	var cuts []int
	for i := range log.Checkpoints {
		b := log.Checkpoints[i].Outputs
		if b > int64(fromIPD) && b < int64(toIPD) {
			cuts = append(cuts, int(b))
		}
	}
	return cuts
}

// mergeSegments stitches per-segment executions into one, verifying
// the one-output overlap at every interior boundary. The merged
// totals (TotalPs, Instructions, ExitCode) are the last segment's —
// it halts at the same output the sequential replay halts at, from
// the same boundary state, so its totals are the sequential ones.
func mergeSegments(segs []*Execution, errs []error, cuts []int) (*Execution, error) {
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", j, err)
		}
		if segs[j] == nil {
			return nil, fmt.Errorf("core: segment %d produced no execution", j)
		}
	}
	merged := &Execution{Mode: ModeReplayTDR}
	outs := 0
	for _, s := range segs {
		outs += len(s.Outputs)
	}
	merged.Outputs = make([]OutputEvent, 0, outs)
	merged.Outputs = append(merged.Outputs, segs[0].Outputs...)
	for j := 1; j < len(segs); j++ {
		cur := segs[j].Outputs
		if len(merged.Outputs) == 0 || len(cur) == 0 {
			return nil, fmt.Errorf("core: segment %d has no boundary output to verify", j)
		}
		prev := merged.Outputs[len(merged.Outputs)-1]
		first := cur[0]
		if prev.Seq != cuts[j-1] || first.Seq != cuts[j-1] ||
			prev.Instr != first.Instr || prev.TimePs != first.TimePs ||
			!bytes.Equal(prev.Payload, first.Payload) {
			return nil, fmt.Errorf("core: segments disagree on boundary output %d (checkpoint corrupt?)", cuts[j-1])
		}
		merged.Outputs = append(merged.Outputs, cur[1:]...)
	}
	last := segs[len(segs)-1]
	merged.TotalPs = last.TotalPs
	merged.Instructions = last.Instructions
	merged.ExitCode = last.ExitCode
	merged.HWReport = last.HWReport
	return merged, nil
}
