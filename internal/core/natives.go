package core

import (
	"fmt"

	"sanity/internal/replaylog"
	"sanity/internal/svm"
)

// natives builds the engine's native-function set. These are the only
// doors between the VM and the world; every nondeterministic value
// crossing them is recorded during play and injected during replay.
func (e *engine) natives() map[string]svm.NativeFunc {
	return map[string]svm.NativeFunc{
		"io.recv":      e.nativeRecv,
		"io.recvblock": e.nativeRecvBlock,
		"io.send":      e.nativeSend,
		"sys.nanotime": e.nativeNanoTime,
		"sys.rand":     e.nativeRand,
		"sys.print":    e.nativePrint,
		"fs.read":      e.nativeFsRead,
	}
}

// nativeRecv is the non-blocking input poll: it returns the next due
// packet as a byte array, or null when none is available.
func (e *engine) nativeRecv(ctx *svm.NativeCtx) error {
	payload, ok, err := e.pollOnce()
	if err != nil {
		return err
	}
	if !ok {
		ctx.Result = svm.Null()
		return nil
	}
	ctx.Result = svm.RefV(ctx.VM.Heap.AllocBytes(payload))
	return nil
}

// nativeRecvBlock blocks until the next input (or returns null when
// the input schedule / log is exhausted — the end of the audited
// segment). Waiting is modeled as iterations of the fixed-cost poll
// loop, advanced arithmetically with SkipIdle so that the instruction
// counter lands exactly where the log says it must.
//
// The blocking form assumes a single runnable thread (the paper's
// prototype runs multithreaded Java entirely on one TC; its NFS
// server blocks the whole VM the same way). Multithreaded programs
// should use io.recv with their own yield loop.
func (e *engine) nativeRecvBlock(ctx *svm.NativeCtx) error {
	for _, t := range ctx.VM.Threads() {
		if t != ctx.Thread && t.State == svm.ThreadRunnable {
			return fmt.Errorf("io.recvblock requires a single runnable thread")
		}
	}
	for {
		payload, ok, err := e.pollOnce()
		if err != nil {
			return err
		}
		if ok {
			ctx.Result = svm.RefV(ctx.VM.Heap.AllocBytes(payload))
			return nil
		}
		switch e.mode {
		case ModePlay:
			if e.nextInput >= len(e.inputs) {
				ctx.Result = svm.Null()
				return nil
			}
			next := e.inputs[e.nextInput].ArrivalPs
			remaining := next - e.plat.TimePs()
			psPerIter := e.pollIterCycles * e.plat.PsPerCycle()
			iters := remaining/psPerIter + 1
			if iters < 1 {
				iters = 1
			}
			ctx.VM.SkipIdle(iters, e.pollIterInstr, e.pollIterCycles)
		case ModeReplayTDR:
			if e.nextPacket >= len(e.logPackets) && e.st.Pending() == 0 {
				ctx.Result = svm.Null()
				return nil
			}
			target := e.logPackets[e.nextPacket].Instr
			delta := target - ctx.VM.InstrCount
			if delta <= 0 {
				// Due now; preload and poll again.
				if err := e.preloadDue(); err != nil {
					return err
				}
				continue
			}
			iters := delta / e.pollIterInstr
			if iters < 1 {
				iters = 1
			}
			ctx.VM.SkipIdle(iters, e.pollIterInstr, e.pollIterCycles)
		case ModeReplayFunctional:
			// A conventional replay system skips idle phases: the
			// logged packet is injected immediately, with a
			// synchronous log read charged instead of a wait.
			if e.nextPacket >= len(e.logPackets) {
				ctx.Result = svm.Null()
				return nil
			}
			rec := e.logPackets[e.nextPacket]
			e.nextPacket++
			e.plat.AddCycles(2000 + int64(len(rec.Payload))*4) // log read
			e.event("packet.in")
			ctx.Result = svm.RefV(ctx.VM.Heap.AllocBytes(rec.Payload))
			return nil
		}
	}
}

// pollOnce performs one TC poll of the S-T buffer, with mode-specific
// delivery and logging around it.
func (e *engine) pollOnce() ([]byte, bool, error) {
	switch e.mode {
	case ModePlay:
		if err := e.deliverDue(); err != nil {
			return nil, false, err
		}
		payload, ts, ok := e.st.TCPoll(e.vm.InstrCount, e.mask)
		if !ok {
			return nil, false, nil
		}
		e.log.AppendPacket(ts, e.plat.TimePs(), payload)
		e.plat.SetDMAActive(false)
		e.event("packet.in")
		return payload, true, nil
	case ModeReplayTDR:
		if err := e.preloadDue(); err != nil {
			return nil, false, err
		}
		payload, _, ok := e.st.TCPoll(e.vm.InstrCount, e.mask)
		if !ok {
			return nil, false, nil
		}
		e.plat.SetDMAActive(false)
		e.event("packet.in")
		return payload, true, nil
	default: // ModeReplayFunctional: non-blocking poll reads the log directly.
		if e.nextPacket >= len(e.logPackets) {
			return nil, false, nil
		}
		rec := e.logPackets[e.nextPacket]
		e.nextPacket++
		e.plat.AddCycles(2000 + int64(len(rec.Payload))*4)
		e.event("packet.in")
		return rec.Payload, true, nil
	}
}

// nativeSend transmits a byte array. This is also where the covert
// channel's delay primitive lives (§6.6): when a hook is configured
// (the compromised configuration), the TC stalls for the channel's
// chosen delay before the packet leaves.
func (e *engine) nativeSend(ctx *svm.NativeCtx) error {
	if len(ctx.Args) != 1 || ctx.Args[0].K != svm.KRef {
		return fmt.Errorf("io.send needs one byte-array argument")
	}
	o := ctx.VM.Heap.Get(ctx.Args[0].Ref())
	if o == nil || o.Kind != svm.ObjArrB {
		return fmt.Errorf("io.send argument is not a byte array")
	}
	if e.cfg.Hook != nil {
		delay := e.cfg.Hook(DelayCtx{
			PacketIndex: e.sendCount,
			TimePs:      e.plat.TimePs(),
			LastSendPs:  e.lastSendPs,
			PsPerCycle:  e.plat.PsPerCycle(),
		})
		if delay > 0 {
			// The primitive spins the timed core: pure cycles, no
			// instruction-count change (it is below the VM's ISA).
			e.plat.AddCycles(delay)
		}
	}
	payload := append([]byte(nil), o.AB...)
	if err := e.ts.TCSendOutput(payload); err != nil {
		return err
	}
	// The SC drains the buffer and (in play) forwards the packet; in
	// replay it discards it. Either way the TC-visible cost is the
	// buffer write above; capturing the output is measurement.
	e.ts.SCDrain()
	out := OutputEvent{
		Seq:     int(e.sendCount),
		Instr:   ctx.VM.InstrCount,
		TimePs:  e.plat.TimePs(),
		Payload: payload,
	}
	e.exec.Outputs = append(e.exec.Outputs, out)
	e.sendCount++
	e.lastSendPs = out.TimePs
	e.event("packet.out")
	ctx.Result = svm.IntV(int64(len(payload)))
	if e.stopAfterOutputs > 0 && e.sendCount >= e.stopAfterOutputs {
		// The audited window is fully reproduced; end the replay here
		// instead of paying for the rest of the log.
		ctx.VM.Halt(0)
		return nil
	}
	return e.maybeBoundary(ctx, ctx.Result)
}

// maybeBoundary handles a quiescence boundary at the current output
// count. During play with checkpointing enabled, boundaries fall at
// multiples of the configured interval: the engine snapshots the
// functional machine state into the log, then re-quiesces the
// platform. During TDR replay, boundaries are wherever the log's
// checkpoints say the recorder quiesced, and only the re-quiesce
// happens, keyed by the replay configuration's own seed. Both sides
// cross each boundary at the identical point of the instruction
// stream (immediately after the same send), so the quiescence cost
// cancels out of the timing comparison.
func (e *engine) maybeBoundary(ctx *svm.NativeCtx, result svm.Value) error {
	switch e.mode {
	case ModePlay:
		k := int64(e.cfg.CheckpointEveryOutputs)
		if k <= 0 || e.sendCount%k != 0 {
			return nil
		}
		if err := e.captureCheckpoint(ctx, result); err != nil {
			return fmt.Errorf("checkpoint at output %d: %w", e.sendCount, err)
		}
		e.plat.Quiesce(epochSeed(e.cfg.Seed, e.sendCount))
	case ModeReplayTDR:
		if e.nextBoundary >= len(e.boundaries) || e.sendCount != e.boundaries[e.nextBoundary] {
			return nil
		}
		e.nextBoundary++
		e.plat.Quiesce(epochSeed(e.cfg.Seed, e.sendCount))
	}
	return nil
}

// nativeNanoTime returns the current time in virtual nanoseconds
// during play (and logs it); during TDR replay the logged value is
// injected through the T-S buffer's symmetric access, so the TC's
// control flow and memory traffic are identical (§3.5).
func (e *engine) nativeNanoTime(ctx *svm.NativeCtx) error {
	return e.loggedValue(ctx, replaylog.KindTimeRead, "time.read", e.plat.TimePs()/1000)
}

// nativeRand returns a logged pseudo-random value (§3.2: random
// decisions are avoided or logged).
func (e *engine) nativeRand(ctx *svm.NativeCtx) error {
	return e.loggedValue(ctx, replaylog.KindRandom, "random", int64(e.rng.Uint64()>>1))
}

// loggedValue implements the record-during-play / inject-during-replay
// protocol for one small nondeterministic value.
func (e *engine) loggedValue(ctx *svm.NativeCtx, kind replaylog.Kind, eventKind string, live int64) error {
	switch e.mode {
	case ModePlay:
		v, err := e.ts.TCEvent(live, e.mask)
		if err != nil {
			return err
		}
		e.ts.SCDrain()
		e.log.AppendValue(kind, ctx.VM.InstrCount, e.plat.TimePs(), v)
		e.event(eventKind)
		ctx.Result = svm.IntV(v)
		return nil
	case ModeReplayTDR:
		if e.nextValue >= len(e.logValues) {
			return fmt.Errorf("replay log exhausted: program requested more %q values than were recorded", kind)
		}
		rec := e.logValues[e.nextValue]
		if rec.Kind != kind {
			return fmt.Errorf("replay log divergence: expected %q record, log has %q", kind, rec.Kind)
		}
		e.nextValue++
		e.ts.SCPreloadEvent(rec.Value)
		v, err := e.ts.TCEvent(live, e.mask)
		if err != nil {
			return err
		}
		e.ts.SCDrain()
		e.event(eventKind)
		ctx.Result = svm.IntV(v)
		return nil
	default: // functional replay: direct log read, different cost model
		if e.nextValue >= len(e.logValues) {
			return fmt.Errorf("replay log exhausted: program requested more %q values than were recorded", kind)
		}
		rec := e.logValues[e.nextValue]
		e.nextValue++
		e.plat.AddCycles(2000) // synchronous log read
		e.event(eventKind)
		ctx.Result = svm.IntV(rec.Value)
		return nil
	}
}

// nativePrint appends a byte array (or renders an int) to the
// captured stdout. Output is deterministic, so it is not logged.
func (e *engine) nativePrint(ctx *svm.NativeCtx) error {
	if len(ctx.Args) != 1 {
		return fmt.Errorf("sys.print takes one argument")
	}
	switch ctx.Args[0].K {
	case svm.KRef:
		o := ctx.VM.Heap.Get(ctx.Args[0].Ref())
		if o == nil || o.Kind != svm.ObjArrB {
			return fmt.Errorf("sys.print ref argument is not a byte array")
		}
		e.exec.Stdout = append(e.exec.Stdout, o.AB...)
	case svm.KInt:
		e.exec.Stdout = append(e.exec.Stdout, []byte(fmt.Sprintf("%d", ctx.Args[0].I))...)
	case svm.KFloat:
		e.exec.Stdout = append(e.exec.Stdout, []byte(fmt.Sprintf("%g", ctx.Args[0].F))...)
	}
	return nil
}

// nativeFsRead reads a file from stable storage. File contents are
// part of the machine's initial state — identical during play and
// replay — so only the (padded) I/O latency matters, not logging.
func (e *engine) nativeFsRead(ctx *svm.NativeCtx) error {
	if len(ctx.Args) != 1 || ctx.Args[0].K != svm.KRef {
		return fmt.Errorf("fs.read needs one byte-array filename")
	}
	o := ctx.VM.Heap.Get(ctx.Args[0].Ref())
	if o == nil || o.Kind != svm.ObjArrB {
		return fmt.Errorf("fs.read filename is not a byte array")
	}
	content, ok := e.cfg.Files[string(o.AB)]
	if !ok {
		ctx.Result = svm.Null()
		return nil
	}
	e.plat.IORead(int64(len(content)))
	ctx.Result = svm.RefV(ctx.VM.Heap.AllocBytes(content))
	return nil
}
