// Checkpointed (windowed) replay. During play, the engine can
// periodically snapshot the machine's complete *functional* state —
// VM heap, threads, globals, the TC/SC ring buffers, the DMA flag —
// into the replay log (replaylog.Checkpoint), turning each snapshot
// point into a quiescence boundary (§3.6 applied mid-run). An auditor
// that only cares about an IPD window [from, to) then restores the
// last checkpoint at or before the window and replays forward just
// far enough, instead of replaying from virtual time zero.
//
// Why this reproduces the full replay bit for bit: at a quiescence
// boundary the platform's timing state is re-derived from
// (machine spec, noise profile, epochSeed(cfg.Seed, boundary)) alone
// — Platform.Quiesce flushes the caches and TLB, re-pins the page
// mapper, and reschedules every noise process relative to the clock.
// The functional state at the boundary is identical in play and in
// any replay (that is deterministic replay's invariant), so the
// recorded snapshot plus the auditor's own epoch key reconstructs
// exactly the state a full replay has when it crosses the boundary.
// Nothing about the recorded machine's *timing* survives into the
// resumed replay: the snapshot is treated like the rest of the log —
// functional claims to be checked by replaying and comparing outputs.
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"sanity/internal/hw"
	"sanity/internal/obs"
	"sanity/internal/replaylog"
	"sanity/internal/ringbuf"
	"sanity/internal/svm"
)

// ckptBlobVersion tags the engine-level checkpoint encoding carried
// opaquely inside replaylog.Checkpoint.State.
const ckptBlobVersion = 1

// ringSlotCap bounds the words a restored ring slot may claim.
const ringSlotCap = 1 << 16

// captureCheckpoint snapshots the engine's functional state and
// appends it to the log being recorded. It runs inside the io.send
// native, so the VM state is captured "as of native completion" with
// the send's result already applied.
func (e *engine) captureCheckpoint(ctx *svm.NativeCtx, result svm.Value) error {
	var buf bytes.Buffer
	buf.WriteByte(ckptBlobVersion)
	if e.plat.DMAActive() {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	encodeRing(&buf, e.st.State())
	encodeRing(&buf, e.ts.State())
	if err := ctx.VM.EncodeStateMidNative(&buf, result); err != nil {
		return err
	}
	e.log.Checkpoints = append(e.log.Checkpoints, replaylog.Checkpoint{
		Instr:      ctx.VM.InstrCount,
		Outputs:    e.sendCount,
		Records:    int64(len(e.log.Records)),
		PlayCycles: e.plat.Cycles(),
		State:      buf.Bytes(),
	})
	return nil
}

func encodeRing(buf *bytes.Buffer, st ringbuf.RingState) {
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf.Write(b[:])
	}
	put(int64(st.Head))
	put(int64(st.Tail))
	put(int64(st.Count))
	put(int64(len(st.Slots)))
	for _, slot := range st.Slots {
		if slot == nil {
			put(-1)
			continue
		}
		put(int64(len(slot)))
		for _, w := range slot {
			put(w)
		}
	}
}

// skipRing structurally validates an encoded ring state without
// materializing it — the restore path decodes the play-side rings
// only to check the blob's shape (the cursors are re-derived from the
// record prefix; see resumeAt), so allocating slot slices for them
// was pure churn in the windowed hot loop.
func skipRing(r *bytes.Reader) error {
	var b [8]byte
	get := func() (int64, error) {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return int64(binary.LittleEndian.Uint64(b[:])), nil
	}
	for i := 0; i < 3; i++ { // head, tail, count
		if _, err := get(); err != nil {
			return fmt.Errorf("core: checkpoint ring header: %w", err)
		}
	}
	n, err := get()
	if err != nil {
		return fmt.Errorf("core: checkpoint ring header: %w", err)
	}
	if n < 0 || n > ringSlotCap {
		return fmt.Errorf("core: checkpoint ring of %d slots", n)
	}
	for i := int64(0); i < n; i++ {
		ln, err := get()
		if err != nil {
			return fmt.Errorf("core: checkpoint ring slot %d: %w", i, err)
		}
		if ln < 0 {
			continue
		}
		if ln > ringSlotCap {
			return fmt.Errorf("core: checkpoint ring slot of %d words", ln)
		}
		if int64(r.Len()) < 8*ln {
			return fmt.Errorf("core: checkpoint ring slot %d words: %w", i, io.ErrUnexpectedEOF)
		}
		if _, err := r.Seek(8*ln, io.SeekCurrent); err != nil {
			return fmt.Errorf("core: checkpoint ring slot %d words: %w", i, err)
		}
	}
	return nil
}

// ReplayTDRWindow reproduces only the IPD window [fromIPD, toIPD) of
// an execution: it restores the log's last checkpoint at or before
// the window (falling back to a replay from virtual time zero when
// the log carries none — every pre-checkpointing corpus), replays
// forward, and halts as soon as output toIPD has been emitted. The
// returned execution holds the outputs from the resume point on, with
// their original absolute sequence numbers; CompareWindow aligns them
// against the recorded execution.
//
// The replayed window's output timings are bit-identical to the same
// output range of a full ReplayTDR with the same configuration — the
// property the differential tests pin — so windowing can never change
// a verdict relative to scoring the same window out of a full replay.
func ReplayTDRWindow(prog *svm.Program, log *replaylog.Log, cfg Config, fromIPD, toIPD int) (*Execution, error) {
	return ReplayTDRWindowCtx(context.Background(), prog, log, cfg, fromIPD, toIPD)
}

// ReplayTDRWindowCtx is ReplayTDRWindow with context-carried
// observability: with an obs.Observer on the context, the checkpoint
// restore and the bounded replay each become a span ("restore",
// "replay"), decomposing windowed-audit cost.
func ReplayTDRWindowCtx(ctx context.Context, prog *svm.Program, log *replaylog.Log, cfg Config, fromIPD, toIPD int) (*Execution, error) {
	if log.Program != prog.Name {
		return nil, fmt.Errorf("core: log was recorded for program %q, not %q", log.Program, prog.Name)
	}
	if fromIPD < 0 || toIPD < fromIPD {
		return nil, fmt.Errorf("core: invalid IPD window [%d, %d)", fromIPD, toIPD)
	}
	if fromIPD == toIPD {
		// An empty window has nothing to reproduce.
		return &Execution{Mode: ModeReplayTDR}, nil
	}
	win, err := log.Window(fromIPD, toIPD)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(prog, cfg, ModeReplayTDR)
	if err != nil {
		return nil, err
	}
	defer e.release()
	// IPD toIPD-1 spans outputs toIPD-1 and toIPD, so the replay is
	// done once toIPD+1 outputs exist.
	e.stopAfterOutputs = int64(toIPD) + 1
	if win.Start == nil {
		e.setReplayLog(log)
		e.boundaries = boundaryOutputs(log)
	} else {
		_, sp := obs.StartSpan(ctx, obs.StageRestore)
		err := e.resumeAt(log, win)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: restoring checkpoint at output %d: %w", win.Start.Outputs, err)
		}
	}
	_, sp := obs.StartSpan(ctx, obs.StageReplay)
	runErr := e.run()
	sp.End()
	if runErr != nil {
		return nil, runErr
	}
	return e.exec, nil
}

// resumeAt restores the engine's functional state from a window's
// checkpoint and positions every cursor for the record suffix.
func (e *engine) resumeAt(full *replaylog.Log, win *replaylog.LogWindow) error {
	c := win.Start
	r := bytes.NewReader(c.State)
	version, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("core: checkpoint state: %w", err)
	}
	if version != ckptBlobVersion {
		return fmt.Errorf("core: unsupported checkpoint state version %d", version)
	}
	dma, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("core: checkpoint DMA flag: %w", err)
	}
	// The play-side ring states are decoded for structural validation
	// but deliberately NOT restored: entries pending in the S-T ring
	// at the boundary are inputs the SC had pushed that the TC had
	// not consumed yet, and their consumption records are in the
	// record suffix — a replay injects inputs exclusively from the
	// log at their recorded instruction counts, and a full replay
	// provably holds no pending entry when it crosses a send boundary
	// (a record's instruction count is its consumption point, so
	// nothing pre-pushes across the boundary). What must carry over
	// is the ring *cursors*, which determine the virtual addresses
	// the TC's buffer traffic is charged at; they are re-derived from
	// the record prefix below, matching the full replay's exactly.
	if err := skipRing(r); err != nil {
		return err
	}
	if err := skipRing(r); err != nil {
		return err
	}
	if err := e.vm.RestoreState(r); err != nil {
		return err
	}
	valuesBefore := c.Records - win.SkippedPackets
	e.st.AlignResume(win.SkippedPackets)
	e.ts.AlignResume(c.Outputs + valuesBefore)
	e.setReplayLog(win.Suffix)
	e.plat.RestoreCycles(c.PlayCycles)
	e.plat.SetDMAActive(dma != 0)
	e.sendCount = c.Outputs
	e.startOutputs = c.Outputs
	e.resumed = true
	// Later boundaries still apply; earlier ones are behind us.
	e.boundaries = boundaryOutputs(full)
	for e.nextBoundary < len(e.boundaries) && e.boundaries[e.nextBoundary] <= c.Outputs {
		e.nextBoundary++
	}
	// The engine's random source must be in the state a full replay
	// has at the boundary: the same seed advanced once per sys.rand
	// drawn before it. (The drawn values are discarded under the
	// replay mask; restoring the state keeps the streams aligned
	// regardless.)
	e.rng = hw.NewRNG(e.cfg.Seed ^ 0xC0FFEE)
	e.rng.Skip(uint64(win.SkippedRandoms))
	return nil
}
