// Package core implements the TDR engine: it wires the Sanity VM
// (internal/svm), the hardware timing model (internal/hw), the TC/SC
// ring buffers (internal/ringbuf), and the event log
// (internal/replaylog) into three execution modes:
//
//   - Play: the original execution. Inputs arrive from a schedule at
//     virtual times, the SC records every nondeterministic event in a
//     log, and outputs are captured with their virtual timestamps.
//
//   - ReplayTDR: time-deterministic replay. The same program runs
//     with inputs injected at their logged instruction counts through
//     the same buffer protocol and the symmetric read/write algorithm,
//     so the TC's instruction stream and memory accesses are identical
//     to play; the only timing divergence left is residual hardware
//     noise.
//
//   - ReplayFunctional: a deliberately conventional replay in the
//     style of XenTT (paper §2.5, Figure 3): functionally correct, but
//     idle phases are skipped and log reads are charged synchronously,
//     so the replayed timing diverges from play. This is the baseline
//     that motivates TDR.
package core

import (
	"context"
	"fmt"

	"sanity/internal/hw"
	"sanity/internal/obs"
	"sanity/internal/replaylog"
	"sanity/internal/ringbuf"
	"sanity/internal/svm"
)

// Mode selects the execution mode.
type Mode int

// Execution modes.
const (
	ModePlay Mode = iota
	ModeReplayTDR
	ModeReplayFunctional
)

func (m Mode) String() string {
	switch m {
	case ModePlay:
		return "play"
	case ModeReplayTDR:
		return "replay-tdr"
	case ModeReplayFunctional:
		return "replay-functional"
	}
	return "?"
}

// InputEvent is one scheduled input: a payload that arrives at the
// machine at a given virtual time.
type InputEvent struct {
	ArrivalPs int64
	Payload   []byte
}

// OutputEvent is one captured output with its timing.
type OutputEvent struct {
	Seq     int
	Instr   int64
	TimePs  int64
	Payload []byte
}

// TimedEvent is one replay-visible event with its virtual time; play
// and replay executions produce the same event sequence, so aligning
// by index compares Tp(e) with Tr(e) (Figure 3).
type TimedEvent struct {
	Kind   string // "packet.in", "packet.out", "time.read", "random"
	Instr  int64
	TimePs int64
}

// DelayCtx is what the covert-channel hook sees on each outgoing
// packet: its index in the output stream and the current virtual
// time. The hook returns extra cycles to stall before the send — this
// models the paper's "special JVM primitive that we can enable or
// disable at runtime" (§6.6).
type DelayCtx struct {
	PacketIndex int64
	TimePs      int64
	LastSendPs  int64
	PsPerCycle  int64
}

// DelayHook computes the covert channel's delay for one packet.
type DelayHook func(DelayCtx) int64

// Config describes one execution.
type Config struct {
	Machine hw.MachineSpec
	Profile hw.NoiseProfile
	Seed    uint64

	SliceBudget int64
	GCThreshold int64
	MaxSteps    int64

	// Files is the stable-storage content, part of the machine's
	// initial state (identical in play and replay, hence not logged).
	Files map[string][]byte

	// Hook, when set, is the covert-channel delay primitive. The
	// auditor's known-good configuration leaves it nil.
	Hook DelayHook

	// PollIterInstr/PollIterCycles model one iteration of the TC's
	// input polling loop (§3.4: the TC inspects the S-T buffer "at
	// regular intervals"). Zero selects the defaults.
	PollIterInstr  int64
	PollIterCycles int64

	// ExtraNatives are merged into the engine's native set (tests and
	// workloads can add primitives).
	ExtraNatives map[string]svm.NativeFunc

	// CheckpointEveryOutputs, when positive, makes Play emit a
	// quiescence-boundary checkpoint into the log after every that
	// many sent packets: the machine's functional state is snapshotted
	// and the platform re-quiesced (§3.6 applied mid-run), so an
	// auditor can later replay only the IPD window it cares about.
	// Replay modes ignore the field — boundaries are driven by the
	// checkpoints the log actually carries.
	CheckpointEveryOutputs int

	// Prepared, when non-nil, carries the program's memoized
	// verification and code layout (svm.Prepare); audit pipelines set
	// it once per shard so per-replay engine construction skips both.
	Prepared *svm.Prepared
}

// Clone returns a deep copy of the configuration: the Files and
// ExtraNatives maps are duplicated so that the copy shares no mutable
// state with the original. File *contents* are still shared — the
// engine treats stable storage as read-only initial state — but a
// holder of the clone may add or remove entries freely.
//
// Play/ReplayTDR/ReplayFunctional already take Config by value and
// build all engine state per run, so concurrent executions are safe
// as long as no goroutine mutates a shared Files/ExtraNatives map or
// installs a Hook with unsynchronized captured state. Clone is how an
// auditor that reuses one prototype Config across a worker pool
// severs that last bit of sharing.
func (c Config) Clone() Config {
	out := c
	if c.Files != nil {
		out.Files = make(map[string][]byte, len(c.Files))
		for k, v := range c.Files {
			out.Files[k] = v
		}
	}
	if c.ExtraNatives != nil {
		out.ExtraNatives = make(map[string]svm.NativeFunc, len(c.ExtraNatives))
		for k, v := range c.ExtraNatives {
			out.ExtraNatives[k] = v
		}
	}
	return out
}

// Default polling-loop cost model: a handful of instructions and a
// couple of dozen cycles per check.
const (
	DefaultPollIterInstr  = 8
	DefaultPollIterCycles = 24
)

// Execution is the observable result of a run.
type Execution struct {
	Mode         Mode
	Outputs      []OutputEvent
	Events       []TimedEvent
	Stdout       []byte
	TotalPs      int64
	Instructions int64
	ExitCode     int64
	HWReport     hw.NoiseReport
}

// OutputIPDs returns the inter-packet delays of the output stream in
// picoseconds — the quantity the covert-channel detectors analyze.
func (e *Execution) OutputIPDs() []int64 {
	if len(e.Outputs) < 2 {
		return nil
	}
	out := make([]int64, len(e.Outputs)-1)
	for i := 1; i < len(e.Outputs); i++ {
		out[i-1] = e.Outputs[i].TimePs - e.Outputs[i-1].TimePs
	}
	return out
}

// engine is the per-run state.
type engine struct {
	cfg  Config
	mode Mode
	mask int64

	plat *hw.Platform
	vm   *svm.VM
	st   *ringbuf.ST
	ts   *ringbuf.TS

	// Play-side input schedule.
	inputs    []InputEvent
	nextInput int

	// Replay-side log cursors.
	logPackets []replaylog.Record
	nextPacket int
	logValues  []replaylog.Record
	nextValue  int

	log  *replaylog.Log // play: written; replay: read-only source
	exec *Execution
	rng  *hw.RNG // play-side source for sys.rand
	recs *recBufs

	pollIterInstr  int64
	pollIterCycles int64

	sendCount  int64
	lastSendPs int64

	// Quiescence-boundary state. boundaries holds the output counts at
	// which replay must re-quiesce (from the log's checkpoints);
	// nextBoundary is the cursor. resumed marks an engine restored from
	// a checkpoint (startOutputs = the boundary's output count), and
	// stopAfterOutputs, when positive, halts the VM once that many
	// outputs exist — the end of the audited window.
	boundaries       []int64
	nextBoundary     int
	resumed          bool
	startOutputs     int64
	stopAfterOutputs int64
}

const (
	stBufferAddr = int64(0x9000_0000)
	tsBufferAddr = int64(0xA000_0000)
	ringCapacity = 4096
)

// Play runs the original execution of prog against the input
// schedule, returning the observable execution and the event log an
// auditor would later replay.
func Play(prog *svm.Program, inputs []InputEvent, cfg Config) (*Execution, *replaylog.Log, error) {
	e, err := newEngine(prog, cfg, ModePlay)
	if err != nil {
		return nil, nil, err
	}
	e.inputs = inputs
	e.log = replaylog.New(prog.Name, cfg.Machine.Name, cfg.Profile.Name)
	defer e.release()
	if err := e.run(); err != nil {
		return nil, nil, err
	}
	return e.exec, e.log, nil
}

// ReplayTDR reproduces an execution from its log with
// time-deterministic replay. Logs recorded with checkpointing carry
// quiescence boundaries; the replay re-quiesces at the same output
// counts the recorder did, with noise re-keyed from its own
// configuration seed, so the boundary cost cancels out of the
// comparison exactly like initialization does.
func ReplayTDR(prog *svm.Program, log *replaylog.Log, cfg Config) (*Execution, error) {
	return ReplayTDRCtx(context.Background(), prog, log, cfg)
}

// ReplayTDRCtx is ReplayTDR with context-carried observability: when
// the context holds an obs.Observer, the replay loop is recorded as a
// "replay" span with wall time and allocation delta. The replay
// itself is unaffected — the context is read once, never polled.
func ReplayTDRCtx(ctx context.Context, prog *svm.Program, log *replaylog.Log, cfg Config) (*Execution, error) {
	if log.Program != prog.Name {
		return nil, fmt.Errorf("core: log was recorded for program %q, not %q", log.Program, prog.Name)
	}
	e, err := newEngine(prog, cfg, ModeReplayTDR)
	if err != nil {
		return nil, err
	}
	e.setReplayLog(log)
	e.boundaries = boundaryOutputs(log)
	defer e.release()
	_, sp := obs.StartSpan(ctx, obs.StageReplay)
	err = e.run()
	sp.End()
	if err != nil {
		return nil, err
	}
	return e.exec, nil
}

// ReplayFunctional reproduces only the functional behavior, the way a
// conventional deterministic-replay system does: inputs are injected
// as soon as the program asks for them (idle phases are skipped), and
// log reads are charged synchronously. Outputs are bit-identical to
// play but their timing is not.
func ReplayFunctional(prog *svm.Program, log *replaylog.Log, cfg Config) (*Execution, error) {
	if log.Program != prog.Name {
		return nil, fmt.Errorf("core: log was recorded for program %q, not %q", log.Program, prog.Name)
	}
	e, err := newEngine(prog, cfg, ModeReplayFunctional)
	if err != nil {
		return nil, err
	}
	e.setReplayLog(log)
	defer e.release()
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.exec, nil
}

// setReplayLog installs the log and splits its record stream into the
// per-kind cursors, reusing pooled scratch slices.
func (e *engine) setReplayLog(log *replaylog.Log) {
	e.log = log
	e.recs = splitRecords(log.Records)
	e.logPackets = e.recs.packets
	e.logValues = e.recs.values
}

// release returns pooled scratch — the record-split buffers and the
// platform — to their pools. The engine must not be used afterwards;
// nothing an engine has returned to its caller references either.
func (e *engine) release() {
	if e.recs != nil {
		e.logPackets, e.logValues = nil, nil
		e.recs.release()
		e.recs = nil
	}
	if e.plat != nil {
		releasePlatform(e.plat)
		e.plat = nil
	}
}

// boundaryOutputs extracts the quiescence-boundary schedule (output
// counts) from a log's checkpoints.
func boundaryOutputs(log *replaylog.Log) []int64 {
	if len(log.Checkpoints) == 0 {
		return nil
	}
	out := make([]int64, len(log.Checkpoints))
	for i := range log.Checkpoints {
		out[i] = log.Checkpoints[i].Outputs
	}
	return out
}

// epochSeed derives the noise key for the quiescence boundary at the
// given output count from a configuration seed (SplitMix64-style
// finalizer). Play and replay key their own seeds, so replay noise
// stays independent of play noise — the residual the paper measures —
// while any two replays with the same configuration (full or resumed
// from a checkpoint) derive identical epochs.
func epochSeed(seed uint64, outputs int64) uint64 {
	z := seed ^ (uint64(outputs)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newEngine(prog *svm.Program, cfg Config, mode Mode) (*engine, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	plat, err := acquirePlatform(&cfg)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:            cfg,
		mode:           mode,
		plat:           plat,
		exec:           &Execution{Mode: mode},
		rng:            hw.NewRNG(cfg.Seed ^ 0xC0FFEE),
		pollIterInstr:  cfg.PollIterInstr,
		pollIterCycles: cfg.PollIterCycles,
	}
	if e.pollIterInstr <= 0 {
		e.pollIterInstr = DefaultPollIterInstr
	}
	if e.pollIterCycles <= 0 {
		e.pollIterCycles = DefaultPollIterCycles
	}
	switch mode {
	case ModePlay:
		e.mask = ringbuf.PlayMask
	default:
		e.mask = ringbuf.ReplayMask
	}
	access := func(addr int64, write bool) { plat.Access(addr, 8, write) }
	e.st = ringbuf.NewST(stBufferAddr, ringCapacity, access)
	e.ts = ringbuf.NewTS(tsBufferAddr, ringCapacity, access)

	natives := e.natives()
	for name, fn := range cfg.ExtraNatives {
		natives[name] = fn
	}
	vm, err := svm.New(prog, natives, svm.Config{
		Platform:    plat,
		SliceBudget: cfg.SliceBudget,
		GCThreshold: cfg.GCThreshold,
		MaxSteps:    cfg.MaxSteps,
		Prepared:    cfg.Prepared,
	})
	if err != nil {
		return nil, err
	}
	e.vm = vm
	return e, nil
}

// run performs initialization & quiescence, executes the VM to
// completion, and fills in the execution summary. A resumed engine
// re-quiesces at its boundary instead of initializing from scratch —
// the same epoch transition a full replay performs when it crosses
// that boundary, so the timing state (and therefore every subsequent
// output time offset) is identical between the two.
func (e *engine) run() error {
	if e.resumed {
		e.plat.Quiesce(epochSeed(e.cfg.Seed, e.startOutputs))
	} else {
		e.plat.Initialize()
	}
	if err := e.vm.Run(); err != nil {
		return fmt.Errorf("core: %s: %w", e.mode, err)
	}
	e.exec.TotalPs = e.plat.TimePs()
	e.exec.Instructions = e.vm.InstrCount
	e.exec.ExitCode = e.vm.ExitCode
	e.exec.HWReport = e.plat.Report()
	return nil
}

// deliverDue pushes every scheduled input whose arrival time has
// passed (play mode). Each push opens a DMA contention window on the
// memory bus.
func (e *engine) deliverDue() error {
	for e.nextInput < len(e.inputs) && e.inputs[e.nextInput].ArrivalPs <= e.plat.TimePs() {
		if err := e.st.SCPush(e.inputs[e.nextInput].Payload, ringbuf.FreshTimestamp); err != nil {
			return err
		}
		e.plat.SetDMAActive(true)
		e.nextInput++
	}
	return nil
}

// preloadDue pushes logged packets whose delivery point has been
// reached (TDR replay).
func (e *engine) preloadDue() error {
	for e.nextPacket < len(e.logPackets) && e.logPackets[e.nextPacket].Instr <= e.vm.InstrCount {
		rec := e.logPackets[e.nextPacket]
		if err := e.st.SCPush(rec.Payload, rec.Instr); err != nil {
			return err
		}
		e.plat.SetDMAActive(true)
		e.nextPacket++
	}
	return nil
}

// event appends a timed event to the execution trace.
func (e *engine) event(kind string) {
	e.exec.Events = append(e.exec.Events, TimedEvent{Kind: kind, Instr: e.vm.InstrCount, TimePs: e.plat.TimePs()})
}
