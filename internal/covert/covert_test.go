package covert

import (
	"testing"

	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/stats"
)

// synthIPDs generates legitimate-looking bursty IPDs for training.
func synthIPDs(n int, seed uint64) []int64 {
	m := netsim.DefaultThinkTime()
	sched := m.Schedule(n+1, hw.NewRNG(seed))
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = sched[i+1] - sched[i]
	}
	return out
}

// applyHook simulates a send stream: natural gaps from the schedule,
// plus the hook's delay, producing the IPDs a receiver would see
// (without network jitter).
func applyHook(hook core.DelayHook, natural []int64) []int64 {
	const psPerCycle = 294
	last := int64(0)
	now := int64(0)
	var ipds []int64
	for i, gap := range natural {
		now += gap
		d := hook(core.DelayCtx{
			PacketIndex: int64(i),
			TimePs:      now,
			LastSendPs:  last,
			PsPerCycle:  psPerCycle,
		})
		now += d * psPerCycle
		if i > 0 {
			ipds = append(ipds, now-last)
		}
		last = now
	}
	return ipds
}

func TestRandomBitsDeterministic(t *testing.T) {
	a, b := RandomBits(100, 5), RandomBits(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bits differ across same-seed calls")
		}
		if a[i] > 1 {
			t.Fatalf("bit value %d", a[i])
		}
	}
	c := RandomBits(100, 6)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 80 {
		t.Fatal("different seeds produced near-identical bits")
	}
}

func TestBitsFromBytes(t *testing.T) {
	bits := BitsFromBytes([]byte{0b10110001})
	want := Bits{1, 0, 1, 1, 0, 0, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy(Bits{1, 0, 1, 0}, Bits{1, 0, 0, 0}); a != 0.75 {
		t.Fatalf("accuracy %v", a)
	}
	if a := Accuracy(Bits{}, Bits{}); a != 0 {
		t.Fatalf("empty accuracy %v", a)
	}
}

func TestIPCTCEncodesDecodably(t *testing.T) {
	c := NewIPCTC()
	secret := RandomBits(64, 1)
	// Natural gaps well below the channel's targets, so the encoding
	// dominates.
	natural := make([]int64, 66)
	for i := range natural {
		natural[i] = 2 * Ms
	}
	ipds := applyHook(c.Hook(secret), natural)
	got := c.Decode(ipds, 64)
	if acc := Accuracy(secret, got); acc < 0.95 {
		t.Fatalf("IPCTC decode accuracy %.2f, want >= 0.95", acc)
	}
}

func TestIPCTCShiftsFirstOrderStats(t *testing.T) {
	legit := synthIPDs(400, 2)
	c := NewIPCTC()
	ipds := applyHook(c.Hook(RandomBits(400, 3)), append([]int64{Ms}, legit...))
	lm := stats.Mean(stats.Int64sToFloats(legit))
	cm := stats.Mean(stats.Int64sToFloats(ipds))
	// IPCTC's long/short targets are far above legit's ~8ms mean; the
	// shape change is what makes it trivially detectable.
	if cm < lm*1.5 {
		t.Fatalf("IPCTC mean %.0f not far from legit %.0f", cm, lm)
	}
}

func TestTRCTCPreservesFirstOrderStats(t *testing.T) {
	legit := synthIPDs(2000, 4)
	c, err := NewTRCTC(legit, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Natural gaps small so targets are reachable.
	natural := make([]int64, 1201)
	for i := range natural {
		natural[i] = Ms / 2
	}
	ipds := applyHook(c.Hook(RandomBits(1200, 5)), natural)
	lm := stats.Mean(stats.Int64sToFloats(legit))
	cm := stats.Mean(stats.Int64sToFloats(ipds))
	rel := (cm - lm) / lm
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.25 {
		t.Fatalf("TRCTC mean off by %.0f%%; should roughly preserve first-order stats", rel*100)
	}
}

func TestTRCTCDecode(t *testing.T) {
	legit := synthIPDs(2000, 6)
	c, err := NewTRCTC(legit, 8)
	if err != nil {
		t.Fatal(err)
	}
	secret := RandomBits(200, 9)
	natural := make([]int64, 202)
	for i := range natural {
		natural[i] = Ms / 4
	}
	ipds := applyHook(c.Hook(secret), natural)
	got := c.Decode(ipds, 200)
	if acc := Accuracy(secret, got); acc < 0.85 {
		t.Fatalf("TRCTC decode accuracy %.2f", acc)
	}
}

func TestTRCTCNeedsTraining(t *testing.T) {
	if _, err := NewTRCTC([]int64{1, 2}, 1); err == nil {
		t.Fatal("tiny training set accepted")
	}
}

func TestMBCTCMatchesModelMean(t *testing.T) {
	legit := synthIPDs(3000, 10)
	c, err := NewMBCTC(legit, 11)
	if err != nil {
		t.Fatal(err)
	}
	natural := make([]int64, 2001)
	for i := range natural {
		natural[i] = Ms / 4
	}
	ipds := applyHook(c.Hook(RandomBits(2000, 12)), natural)
	lm := stats.Mean(stats.Int64sToFloats(legit))
	cm := stats.Mean(stats.Int64sToFloats(ipds))
	rel := (cm - lm) / lm
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.30 {
		t.Fatalf("MBCTC mean off by %.0f%%", rel*100)
	}
}

func TestMBCTCDecode(t *testing.T) {
	legit := synthIPDs(3000, 13)
	c, err := NewMBCTC(legit, 14)
	if err != nil {
		t.Fatal(err)
	}
	secret := RandomBits(300, 15)
	natural := make([]int64, 302)
	for i := range natural {
		natural[i] = Ms / 10
	}
	ipds := applyHook(c.Hook(secret), natural)
	got := c.Decode(ipds, 300)
	if acc := Accuracy(secret, got); acc < 0.8 {
		t.Fatalf("MBCTC decode accuracy %.2f", acc)
	}
}

func TestNeedleSparseFootprint(t *testing.T) {
	c := NewNeedle()
	secret := Bits{1, 1, 1, 1}
	natural := make([]int64, 402)
	for i := range natural {
		natural[i] = 5 * Ms
	}
	hook := c.Hook(secret)
	delayed := 0
	for i := 0; i < 401; i++ {
		d := hook(core.DelayCtx{PacketIndex: int64(i), TimePs: int64(i) * 5 * Ms, LastSendPs: int64(i-1) * 5 * Ms, PsPerCycle: 294})
		if d > 0 {
			delayed++
		}
	}
	// Only every 100th packet may carry a delay.
	if delayed != 4 {
		t.Fatalf("needle delayed %d packets, want 4", delayed)
	}
}

func TestNeedleDecodes(t *testing.T) {
	c := NewNeedle()
	secret := Bits{1, 0, 1, 1}
	natural := make([]int64, 452)
	for i := range natural {
		natural[i] = 5 * Ms
	}
	ipds := applyHook(c.Hook(secret), natural)
	got := c.Decode(ipds, 4)
	if acc := Accuracy(secret, got); acc < 0.99 {
		t.Fatalf("needle decode accuracy %.2f (sent %v got %v)", acc, secret, got)
	}
}

func TestNeedleBarelyMovesStats(t *testing.T) {
	legit := synthIPDs(1000, 16)
	c := NewNeedle()
	withChan := applyHook(c.Hook(RandomBits(16, 17)), append([]int64{Ms}, legit...))
	lm := stats.Mean(stats.Int64sToFloats(legit))
	cm := stats.Mean(stats.Int64sToFloats(withChan))
	rel := (cm - lm) / lm
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.05 {
		t.Fatalf("needle shifted mean by %.1f%%; should be nearly invisible", rel*100)
	}
}

func TestAllChannels(t *testing.T) {
	chans, err := All(synthIPDs(500, 18), 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != 4 {
		t.Fatalf("channels = %d", len(chans))
	}
	names := map[string]bool{}
	for _, c := range chans {
		names[c.Name()] = true
	}
	for _, want := range []string{"ipctc", "trctc", "mbctc", "needle"} {
		if !names[want] {
			t.Fatalf("missing channel %s", want)
		}
	}
}

func TestFirstPacketNeverDelayed(t *testing.T) {
	chans, err := All(synthIPDs(500, 20), 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chans {
		hook := c.Hook(RandomBits(32, 22))
		if d := hook(core.DelayCtx{PacketIndex: 0, TimePs: 1000, PsPerCycle: 294}); d != 0 {
			t.Fatalf("%s delays the first packet", c.Name())
		}
	}
}
