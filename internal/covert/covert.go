// Package covert implements the four covert timing channels of the
// paper's evaluation (§5.1, §6.6–6.8): IPCTC, TRCTC, MBCTC, and the
// low-rate "Needle" channel. Each channel is expressed as a delay
// schedule injected through the engine's send-path primitive (the
// compromised server's "special JVM primitive"), plus a decoder that
// recovers bits from receiver-observed inter-packet delays.
//
// The channels are *senders that can only add delay*: the NFS server
// answers requests, so a channel targets a total IPD and stalls the
// send until the target is reached (or transmits a corrupted symbol
// when the natural gap already exceeds it — exactly the coding
// problem a real exfiltrating server faces).
package covert

import (
	"fmt"
	"sort"

	"sanity/internal/core"
	"sanity/internal/hw"
)

// Ms is one millisecond in picoseconds.
const Ms = int64(1_000_000_000)

// Bits is a secret bitstream (values 0 or 1).
type Bits []byte

// RandomBits returns n seeded random bits — the secret the channel
// exfiltrates.
func RandomBits(n int, seed uint64) Bits {
	rng := hw.NewRNG(seed)
	b := make(Bits, n)
	for i := range b {
		b[i] = byte(rng.Uint64() & 1)
	}
	return b
}

// BitsFromBytes expands a byte secret into its bits, MSB first.
func BitsFromBytes(data []byte) Bits {
	out := make(Bits, 0, len(data)*8)
	for _, b := range data {
		for k := 7; k >= 0; k-- {
			out = append(out, (b>>uint(k))&1)
		}
	}
	return out
}

// Accuracy returns the fraction of bits decoded correctly.
func Accuracy(sent, got Bits) float64 {
	n := len(sent)
	if len(got) < n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	ok := 0
	for i := 0; i < n; i++ {
		if sent[i] == got[i] {
			ok++
		}
	}
	return float64(ok) / float64(n)
}

// Channel is one covert timing channel.
type Channel interface {
	// Name identifies the channel in reports ("ipctc", ...).
	Name() string
	// Hook returns the delay primitive that encodes secret into the
	// output stream of one execution.
	Hook(secret Bits) core.DelayHook
	// Decode recovers up to nbits bits from receiver-side IPDs.
	Decode(ipds []int64, nbits int) Bits
}

// delayToTarget converts "reach this total IPD" into cycles to stall,
// given what has already elapsed since the previous send.
func delayToTarget(ctx core.DelayCtx, targetPs int64) int64 {
	if ctx.PacketIndex == 0 {
		return 0 // no previous packet; nothing to encode on
	}
	elapsed := ctx.TimePs - ctx.LastSendPs
	if elapsed >= targetPs {
		return 0
	}
	return (targetPs - elapsed) / ctx.PsPerCycle
}

// IPCTC is the IP covert timing channel (Cabuk et al.): the crudest
// scheme, transmitting a 1 as a short IPD and a 0 as a long one
// (packet-in-interval vs. silence). Its on/off signature shifts every
// first-order statistic, which is why all detectors catch it.
type IPCTC struct {
	ShortPs int64
	LongPs  int64
}

// NewIPCTC returns the channel with the evaluation's parameters.
func NewIPCTC() *IPCTC {
	return &IPCTC{ShortPs: 12 * Ms, LongPs: 36 * Ms}
}

// Name implements Channel.
func (c *IPCTC) Name() string { return "ipctc" }

// Hook implements Channel.
func (c *IPCTC) Hook(secret Bits) core.DelayHook {
	return func(ctx core.DelayCtx) int64 {
		if len(secret) == 0 || ctx.PacketIndex == 0 {
			return 0
		}
		bit := secret[int(ctx.PacketIndex-1)%len(secret)]
		target := c.LongPs
		if bit == 1 {
			target = c.ShortPs
		}
		return delayToTarget(ctx, target)
	}
}

// Decode implements Channel.
func (c *IPCTC) Decode(ipds []int64, nbits int) Bits {
	mid := (c.ShortPs + c.LongPs) / 2
	out := make(Bits, 0, nbits)
	for _, d := range ipds {
		if len(out) == nbits {
			break
		}
		if d < mid {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// rateMargin is the factor by which the adaptive channels inflate
// their target IPDs. A sender that can only *add* delay keeps control
// of the timing only while its targets exceed the natural gaps (the
// response queue then stays non-empty); the margin is the throughput
// the adversary sacrifices for that control.
const rateMargin = 1.08

// replaySetSize bounds TRCTC's per-bin replay sets. Cabuk's channel
// replays a recorded list of legitimate IPDs; the finite list is what
// gives the traffic its repeating structure (and what the CCE test
// ultimately catches).
const replaySetSize = 30

// TRCTC is the traffic-replay channel (Cabuk): legitimate IPDs are
// split into a small bin B0 and a large bin B1; a 0 is transmitted by
// replaying a delay from B0 and a 1 from B1. First-order statistics
// roughly match legitimate traffic (defeating the shape test) but the
// two-bin resampling from a finite replay set distorts the
// distribution and creates repeating patterns.
type TRCTC struct {
	b0, b1 []int64 // finite replay sets from the two halves
	cut    int64
	seed   uint64
}

// NewTRCTC trains the channel on a sample of legitimate IPDs.
func NewTRCTC(legitIPDs []int64, seed uint64) (*TRCTC, error) {
	if len(legitIPDs) < 4 {
		return nil, fmt.Errorf("covert: TRCTC needs at least 4 training IPDs, have %d", len(legitIPDs))
	}
	s := append([]int64(nil), legitIPDs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	pick := func(half []int64, rng *hw.RNG) []int64 {
		n := replaySetSize
		if n > len(half) {
			n = len(half)
		}
		out := make([]int64, n)
		for i := range out {
			v := half[rng.Int63n(int64(len(half)))]
			out[i] = int64(float64(v) * rateMargin)
		}
		return out
	}
	rng := hw.NewRNG(seed ^ 0x7C7C)
	return &TRCTC{
		b0:   pick(s[:mid], rng),
		b1:   pick(s[mid:], rng),
		cut:  int64(float64(s[mid]) * rateMargin),
		seed: seed,
	}, nil
}

// Name implements Channel.
func (c *TRCTC) Name() string { return "trctc" }

// Hook implements Channel.
func (c *TRCTC) Hook(secret Bits) core.DelayHook {
	rng := hw.NewRNG(c.seed)
	return func(ctx core.DelayCtx) int64 {
		if len(secret) == 0 || ctx.PacketIndex == 0 {
			return 0
		}
		bit := secret[int(ctx.PacketIndex-1)%len(secret)]
		var target int64
		if bit == 0 {
			target = c.b0[rng.Int63n(int64(len(c.b0)))]
		} else {
			target = c.b1[rng.Int63n(int64(len(c.b1)))]
		}
		return delayToTarget(ctx, target)
	}
}

// Decode implements Channel.
func (c *TRCTC) Decode(ipds []int64, nbits int) Bits {
	out := make(Bits, 0, nbits)
	for _, d := range ipds {
		if len(out) == nbits {
			break
		}
		if d < c.cut {
			out = append(out, 0)
		} else {
			out = append(out, 1)
		}
	}
	return out
}

// MBCTC is the model-based channel (Gianvecchio et al.): it fits a
// model to legitimate traffic — the paper's channel fits several
// parametric families and picks the best; ours uses the empirical
// quantile function with linear interpolation, which is the limiting
// "best fit" — and draws each IPD from the fitted distribution,
// mapping bit 0 to the lower half of the CDF and bit 1 to the upper
// half. The marginal shape mimics legitimate traffic closely
// (defeating shape and KS tests), but consecutive IPDs are
// independent, losing the burst correlation of real traffic.
type MBCTC struct {
	sorted  []float64 // sorted legit IPDs (ps), the empirical model
	deflate float64   // calibration against truncation inflation
	seed    uint64
}

// NewMBCTC fits the empirical model to legitimate IPDs and calibrates
// it. A sender that can only add delay produces IPDs of the form
// max(natural, target), which inflates the mean above the model's;
// the channel therefore deflates its targets so that the *encoded*
// traffic's first-order statistics land back on the legitimate ones
// (this is the "automated modeling" part of Gianvecchio et al.'s
// design — the channel tunes itself to look right).
func NewMBCTC(legitIPDs []int64, seed uint64) (*MBCTC, error) {
	if len(legitIPDs) < 4 {
		return nil, fmt.Errorf("covert: MBCTC needs at least 4 training IPDs, have %d", len(legitIPDs))
	}
	s := make([]float64, len(legitIPDs))
	var mean float64
	for i, d := range legitIPDs {
		s[i] = float64(d)
		mean += float64(d)
	}
	mean /= float64(len(s))
	sort.Float64s(s)
	c := &MBCTC{sorted: s, deflate: 1.0, seed: seed}
	// Fixed-point calibration: find deflate such that
	// E[max(natural, deflate*target)] ~= legit mean, with natural and
	// target both drawn from the legit sample. Natural gaps shrink
	// when the channel's own delays build a backlog, so the effective
	// natural draw is attenuated.
	rng := hw.NewRNG(seed ^ 0xCAFE)
	n := int64(len(s))
	for iter := 0; iter < 8; iter++ {
		var sum float64
		const samples = 2048
		for k := 0; k < samples; k++ {
			natural := s[rng.Int63n(n)] * 0.5 // backlog attenuation
			target := s[rng.Int63n(n)] * c.deflate
			if target > natural {
				sum += target
			} else {
				sum += natural
			}
		}
		got := sum / samples
		if got <= 0 {
			break
		}
		c.deflate *= mean / got
		if c.deflate > 1.0 {
			c.deflate = 1.0 // never inflate: that is what the margin channels do
		}
		if c.deflate < 0.5 {
			c.deflate = 0.5
		}
	}
	return c, nil
}

// quantile inverts the fitted (empirical, interpolated) CDF. MBCTC
// runs margin-free: matching the legitimate distribution exactly is
// the channel's whole point, and the backlog the delays themselves
// create keeps enough packets under the channel's control.
func (c *MBCTC) quantile(u float64) int64 {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = 1 - 1e-12
	}
	pos := u * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	v := c.sorted[lo]
	if lo+1 < len(c.sorted) {
		v = v*(1-frac) + c.sorted[lo+1]*frac
	}
	return int64(v * c.deflate)
}

// cdf evaluates the fitted model.
func (c *MBCTC) cdf(x int64) float64 {
	v := float64(x) / c.deflate
	// Binary search over the sorted sample.
	lo, hi := 0, len(c.sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.sorted[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(len(c.sorted))
}

// Name implements Channel.
func (c *MBCTC) Name() string { return "mbctc" }

// Hook implements Channel.
func (c *MBCTC) Hook(secret Bits) core.DelayHook {
	rng := hw.NewRNG(c.seed)
	return func(ctx core.DelayCtx) int64 {
		if len(secret) == 0 || ctx.PacketIndex == 0 {
			return 0
		}
		bit := secret[int(ctx.PacketIndex-1)%len(secret)]
		u := rng.Float64() / 2 // [0, 0.5)
		if bit == 1 {
			u += 0.5 // [0.5, 1)
		}
		return delayToTarget(ctx, c.quantile(u))
	}
}

// Decode implements Channel.
func (c *MBCTC) Decode(ipds []int64, nbits int) Bits {
	out := make(Bits, 0, nbits)
	for _, d := range ipds {
		if len(out) == nbits {
			break
		}
		if c.cdf(d) >= 0.5 {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// Needle is the paper's short-lived channel (§6.8): to exfiltrate a
// small secret (a password, a key) with minimal statistical footprint,
// the sender transmits a single bit once every Period packets — a 1
// as an added delay, a 0 as no modification. High-level traffic
// statistics barely move, defeating the statistical detectors, while
// TDR still sees each individual delayed packet.
type Needle struct {
	Period  int64
	DeltaPs int64
}

// NewNeedle returns the channel with the evaluation's parameters: one
// bit per 100 packets, with a delay that stays inside the range of
// legitimate bursty IPDs (so first-order statistics barely move) while
// exceeding TDR's replay noise floor by almost two orders of
// magnitude.
func NewNeedle() *Needle {
	return &Needle{Period: 100, DeltaPs: 6 * Ms}
}

// Name implements Channel.
func (c *Needle) Name() string { return "needle" }

// Hook implements Channel.
func (c *Needle) Hook(secret Bits) core.DelayHook {
	return func(ctx core.DelayCtx) int64 {
		if len(secret) == 0 || ctx.PacketIndex == 0 {
			return 0
		}
		if ctx.PacketIndex%c.Period != 0 {
			return 0
		}
		bit := secret[int(ctx.PacketIndex/c.Period-1)%len(secret)]
		if bit == 0 {
			return 0
		}
		return c.DeltaPs / ctx.PsPerCycle
	}
}

// Decode implements Channel.
func (c *Needle) Decode(ipds []int64, nbits int) Bits {
	out := make(Bits, 0, nbits)
	for i := int(c.Period) - 1; i < len(ipds); i += int(c.Period) {
		if len(out) == nbits {
			break
		}
		// Compare the marked IPD against the local median.
		lo := i - 8
		if lo < 0 {
			lo = 0
		}
		hi := i + 8
		if hi > len(ipds) {
			hi = len(ipds)
		}
		window := append([]int64(nil), ipds[lo:hi]...)
		sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
		med := window[len(window)/2]
		if ipds[i] > med+c.DeltaPs/2 {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// All returns the four channels of the evaluation, training the
// adaptive ones on the provided legitimate IPDs.
func All(legitIPDs []int64, seed uint64) ([]Channel, error) {
	tr, err := NewTRCTC(legitIPDs, seed)
	if err != nil {
		return nil, err
	}
	mb, err := NewMBCTC(legitIPDs, seed+1)
	if err != nil {
		return nil, err
	}
	return []Channel{NewIPCTC(), tr, mb, NewNeedle()}, nil
}
