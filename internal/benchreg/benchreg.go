// Package benchreg is the benchmark-regression harness behind
// `tdrbench bench`: it measures the audit hot path with
// testing.Benchmark — full vs windowed replay over a persisted
// checkpointed corpus, cold vs memoized shard setup — and renders the
// measurements as a JSON report (BENCH_<date>.json) that later runs
// gate against.
//
// Cross-machine comparability: absolute ns/op is machine-dependent,
// so a checked-in baseline is never compared on it. What IS enforced
// is machine-independent: the windowed-over-full and memoized-over-
// cold speedup *ratios* (within a tolerance of the baseline, and the
// windowed ratio also against the hard 2x floor the optimization
// promises) and allocations per op (within tolerance, when the
// baseline was produced at the same corpus scale).
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"sanity/internal/obs"
)

// Measurement is one benchmark's result.
type Measurement struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// Derived holds the machine-independent ratios the gate enforces.
type Derived struct {
	// WindowedSpeedup is full-audit ns/op over windowed-audit ns/op —
	// what checkpointed windowed replay buys on the same corpus.
	WindowedSpeedup float64 `json:"windowedSpeedup"`
	// MemoSpeedup is cold-shard ns/op over memoized-shard ns/op — what
	// the per-shard platform memo buys on repeated-shard corpora.
	// Informational only: at CI scale the delta drowns in scheduler
	// noise, so Check gates the memo on its (deterministic)
	// allocation saving instead. The hit/miss counters
	// (pipeline.ShardMemoStats) prove the sharing that this ratio —
	// ~1.05x, dominated by per-batch statistical training — cannot.
	MemoSpeedup float64 `json:"memoSpeedup"`
	// ParallelSpeedup is windowed-audit ns/op over segment-parallel
	// windowed-audit ns/op — what spreading each replay's
	// checkpoint-bounded segments across goroutines buys on top of
	// windowing. It depends on free cores: ~1x at GOMAXPROCS 1 (the
	// CI shape), above it elsewhere — so the absolute gate only
	// demands it never costs, and the baseline comparison applies
	// only between runs at the same GOMAXPROCS.
	ParallelSpeedup float64 `json:"parallelSpeedup"`
	// TriageOverhead is the relative ingest cost the streaming triage
	// ensemble adds at admission: triaged-ingest allocated bytes/op
	// over plain-ingest bytes/op, minus one. Like the memoization
	// gate, it is deliberately allocation-based, not time-based: the
	// scoring cost (~µs per trace) sits far under one run's GC and
	// scheduler noise (~ms on a corpus-sized op), but the bytes it
	// allocates are deterministic. Triage rides the upload's existing
	// decode pass, so its promise is "roughly free next to the I/O" —
	// the gate holds it under MaxTriageOverhead.
	TriageOverhead float64 `json:"triageOverhead"`
}

// SchemaVersion is the report format this harness writes. Version 2
// added the per-stage latency/alloc breakdown (Stages); version-1
// baselines (no schema field) still load and gate — Check never reads
// Stages.
const SchemaVersion = 2

// Report is one harness run.
type Report struct {
	Schema     int                    `json:"schema,omitempty"`
	Date       string                 `json:"date"`
	GoOS       string                 `json:"goos"`
	GoArch     string                 `json:"goarch"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Short      bool                   `json:"short"`
	Seed       uint64                 `json:"seed"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
	Derived    Derived                `json:"derived"`
	// Stages decomposes an un-timed instrumented pass of each audit
	// benchmark by funnel stage: benchmark name -> stage name ->
	// count/total-seconds/total-alloc. Informational (never gated);
	// measured outside the testing.Benchmark loops so the probes cannot
	// perturb the gated numbers.
	Stages map[string]map[string]obs.StageSummary `json:"stages,omitempty"`
}

// Benchmark names.
const (
	BenchAuditFull     = "audit_full"
	BenchAuditWindowed = "audit_windowed"
	BenchAuditParallel = "audit_parallel"
	BenchShardCold     = "shard_cold"
	BenchShardMemoized = "shard_memoized"
	BenchIngestPlain   = "ingest_plain"
	BenchIngestTriaged = "ingest_triaged"
)

// Gate thresholds.
const (
	// MinWindowedSpeedup is the absolute floor on the windowed-replay
	// speedup — the optimization's acceptance criterion, enforced even
	// without a baseline.
	MinWindowedSpeedup = 2.0
	// Tolerance is the allowed relative regression against a baseline
	// (ratios may degrade and allocations may grow by this fraction).
	Tolerance = 0.25
	// MinParallelSpeedup is the absolute floor on the segment-parallel
	// ratio: parallelism may buy nothing on a saturated machine
	// (GOMAXPROCS 1 leaves it ~1x), but it must never cost more than
	// the tolerance — above that, the merge/fallback machinery is
	// overhead, not a latency trade.
	MinParallelSpeedup = 1 - Tolerance
	// MaxTriageOverhead caps what the streaming triage ensemble may
	// add to ingest, in allocated bytes per admitted corpus: scoring
	// shares the admission pass's decoded IPDs, so a triaged upload
	// must stay within 10% of a plain one or the "cheap first stage"
	// premise of the funnel is broken.
	MaxTriageOverhead = 0.10
)

// NewReport stamps an empty report with the environment.
func NewReport(short bool, seed uint64) *Report {
	return &Report{
		Schema:     SchemaVersion,
		Date:       time.Now().Format("2006-01-02"),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Short:      short,
		Seed:       seed,
		Benchmarks: make(map[string]Measurement),
	}
}

// Finalize computes the derived ratios from the recorded benchmarks.
func (r *Report) Finalize() {
	full, okF := r.Benchmarks[BenchAuditFull]
	win, okW := r.Benchmarks[BenchAuditWindowed]
	if okF && okW && win.NsPerOp > 0 {
		r.Derived.WindowedSpeedup = full.NsPerOp / win.NsPerOp
	}
	par, okP := r.Benchmarks[BenchAuditParallel]
	if okW && okP && par.NsPerOp > 0 {
		r.Derived.ParallelSpeedup = win.NsPerOp / par.NsPerOp
	}
	cold, okC := r.Benchmarks[BenchShardCold]
	memo, okM := r.Benchmarks[BenchShardMemoized]
	if okC && okM && memo.NsPerOp > 0 {
		r.Derived.MemoSpeedup = cold.NsPerOp / memo.NsPerOp
	}
	plain, okI := r.Benchmarks[BenchIngestPlain]
	triaged, okT := r.Benchmarks[BenchIngestTriaged]
	if okI && okT && plain.BytesPerOp > 0 {
		r.Derived.TriageOverhead = float64(triaged.BytesPerOp)/float64(plain.BytesPerOp) - 1
	}
}

// DefaultFileName is the report name the harness writes when no
// output path is given.
func (r *Report) DefaultFileName() string {
	return "BENCH_" + r.Date + ".json"
}

// Write renders the report as indented JSON.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a report back.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchreg: decoding %s: %w", path, err)
	}
	return &r, nil
}

// Check gates current against baseline and the absolute floors,
// returning one message per violation (empty = pass). baseline may be
// nil, in which case only the baseline-independent gates apply.
//
// The memoization gate is deliberately allocation-based, not
// time-based: the memo's wall-clock delta (a few hundred µs of
// Prepare/clone work under ~1ms of statistical training) drowns in
// scheduler noise, but the allocations it avoids are deterministic —
// a memoized shard setup must allocate strictly less than a cold one,
// or the memo has stopped memoizing.
func Check(baseline, current *Report) []string {
	var violations []string
	if current.Derived.WindowedSpeedup < MinWindowedSpeedup {
		violations = append(violations, fmt.Sprintf(
			"windowed-replay speedup %.2fx below the required %.2fx floor",
			current.Derived.WindowedSpeedup, MinWindowedSpeedup))
	}
	if current.Derived.ParallelSpeedup > 0 &&
		current.Derived.ParallelSpeedup < MinParallelSpeedup {
		violations = append(violations, fmt.Sprintf(
			"segment-parallel replay costs instead of trading: %.2fx vs the windowed audit (floor %.2fx)",
			current.Derived.ParallelSpeedup, MinParallelSpeedup))
	}
	// The windowed audit replays less, so it must never allocate more
	// than the full audit of the same corpus. It used to — the load
	// path re-read the container per window and paid a fresh buffer
	// per frame — and this absolute gate keeps that inversion from
	// coming back.
	full, okF := current.Benchmarks[BenchAuditFull]
	win, okW := current.Benchmarks[BenchAuditWindowed]
	if okF && okW && win.BytesPerOp > full.BytesPerOp {
		violations = append(violations, fmt.Sprintf(
			"windowed audit allocates more than the full audit: %d B/op vs %d B/op",
			win.BytesPerOp, full.BytesPerOp))
	}
	// The triage ensemble must stay a rounding error next to ingest
	// I/O; past the cap, scoring-at-admission is costing the upload
	// path what it was supposed to save the audit queue.
	_, okI := current.Benchmarks[BenchIngestPlain]
	_, okT := current.Benchmarks[BenchIngestTriaged]
	if okI && okT && current.Derived.TriageOverhead > MaxTriageOverhead {
		violations = append(violations, fmt.Sprintf(
			"triage ingest overhead %.1f%% exceeds the %.0f%% cap",
			current.Derived.TriageOverhead*100, MaxTriageOverhead*100))
	}
	cold, okC := current.Benchmarks[BenchShardCold]
	memo, okM := current.Benchmarks[BenchShardMemoized]
	if okC && okM && memo.AllocsPerOp >= cold.AllocsPerOp {
		violations = append(violations, fmt.Sprintf(
			"shard memoization is not saving work: memoized setup allocates %d/op vs cold %d/op",
			memo.AllocsPerOp, cold.AllocsPerOp))
	}
	if baseline == nil {
		return violations
	}
	floor := 1 - Tolerance
	if base := baseline.Derived.WindowedSpeedup; base > 0 &&
		current.Derived.WindowedSpeedup < base*floor {
		violations = append(violations, fmt.Sprintf(
			"windowed-replay speedup regressed: %.2fx vs baseline %.2fx (>%0.f%% loss)",
			current.Derived.WindowedSpeedup, base, Tolerance*100))
	}
	// The parallel ratio depends on free cores, so it only gates runs
	// at the baseline's GOMAXPROCS.
	if base := baseline.Derived.ParallelSpeedup; base > 0 &&
		baseline.GoMaxProcs == current.GoMaxProcs &&
		current.Derived.ParallelSpeedup > 0 &&
		current.Derived.ParallelSpeedup < base*floor {
		violations = append(violations, fmt.Sprintf(
			"segment-parallel speedup regressed: %.2fx vs baseline %.2fx (>%0.f%% loss)",
			current.Derived.ParallelSpeedup, base, Tolerance*100))
	}
	// Allocations are machine-independent but scale with the corpus,
	// so they only gate runs at the same scale as the baseline.
	if baseline.Short == current.Short {
		ceil := 1 + Tolerance
		for name, base := range baseline.Benchmarks {
			cur, ok := current.Benchmarks[name]
			if !ok || base.AllocsPerOp <= 0 {
				continue
			}
			if float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*ceil {
				violations = append(violations, fmt.Sprintf(
					"%s allocations regressed: %d/op vs baseline %d/op (>%0.f%% growth)",
					name, cur.AllocsPerOp, base.AllocsPerOp, Tolerance*100))
			}
		}
		// The load stage's allocated bytes are the zero-alloc path's
		// guarded gain: pooled frame/payload buffers cut them severalfold,
		// and unlike wall time they are near-deterministic at Workers 1,
		// so a growth past tolerance means someone un-pooled the path.
		for _, name := range []string{BenchAuditFull, BenchAuditWindowed} {
			base, okB := baseline.Stages[name][obs.StageLoad]
			cur, okC := current.Stages[name][obs.StageLoad]
			if !okB || !okC || base.TotalAllocBytes <= 0 {
				continue
			}
			if cur.TotalAllocBytes > base.TotalAllocBytes*ceil {
				violations = append(violations, fmt.Sprintf(
					"%s load-stage allocations regressed: %.0f B vs baseline %.0f B (>%0.f%% growth)",
					name, cur.TotalAllocBytes, base.TotalAllocBytes, Tolerance*100))
			}
		}
	}
	return violations
}

// Format renders the report for humans.
func (r *Report) Format() string {
	out := fmt.Sprintf("bench report %s (%s/%s, GOMAXPROCS %d, short=%v)\n",
		r.Date, r.GoOS, r.GoArch, r.GoMaxProcs, r.Short)
	for _, name := range []string{BenchAuditFull, BenchAuditWindowed, BenchAuditParallel, BenchShardCold, BenchShardMemoized, BenchIngestPlain, BenchIngestTriaged} {
		m, ok := r.Benchmarks[name]
		if !ok {
			continue
		}
		out += fmt.Sprintf("  %-16s %12.0f ns/op  %8d allocs/op  %10d B/op  (n=%d)\n",
			name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.N)
	}
	out += fmt.Sprintf("  windowed-replay speedup: %.2fx   segment-parallel speedup: %.2fx   shard-memo speedup: %.2fx\n",
		r.Derived.WindowedSpeedup, r.Derived.ParallelSpeedup, r.Derived.MemoSpeedup)
	if _, ok := r.Benchmarks[BenchIngestTriaged]; ok {
		out += fmt.Sprintf("  triage ingest overhead: %+.1f%% alloc\n", r.Derived.TriageOverhead*100)
	}
	for _, name := range []string{BenchAuditFull, BenchAuditWindowed, BenchAuditParallel} {
		stages, ok := r.Stages[name]
		if !ok || len(stages) == 0 {
			continue
		}
		out += fmt.Sprintf("  %s by stage (1 instrumented pass):\n", name)
		names := make([]string, 0, len(stages))
		for s := range stages {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			sum := stages[s]
			out += fmt.Sprintf("    %-12s %4d spans  %10.3f ms  %12.0f B\n",
				s, sum.Count, sum.TotalSeconds*1e3, sum.TotalAllocBytes)
		}
	}
	return out
}

// FormatStageDelta renders the per-stage funnel deltas between two
// reports, one table per audit benchmark both reports decomposed.
// Informational, never gated: the per-stage numbers come from one
// instrumented pass, too noisy to fail CI on, but exactly what a
// human wants when the gated aggregate regresses. Returns a note
// instead of a table when the baseline predates the per-stage schema.
func FormatStageDelta(baseline, current *Report) string {
	if baseline == nil || len(baseline.Stages) == 0 {
		return "per-stage delta: baseline has no stage breakdown (schema 1); regenerate it with tdrbench bench -out to enable\n"
	}
	var out string
	for _, name := range []string{BenchAuditFull, BenchAuditWindowed, BenchAuditParallel} {
		base, cur := baseline.Stages[name], current.Stages[name]
		if len(base) == 0 || len(cur) == 0 {
			continue
		}
		deltas := obs.DiffStageSummaries(base, cur, Tolerance)
		if len(deltas) == 0 {
			continue
		}
		out += fmt.Sprintf("%s per-stage delta vs baseline %s:\n", name, baseline.Date)
		out += obs.FormatStageDeltas(deltas)
	}
	if out == "" {
		return "per-stage delta: no benchmark decomposed by both reports\n"
	}
	return out
}
