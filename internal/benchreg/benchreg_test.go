package benchreg

import (
	"sanity/internal/obs"

	"path/filepath"
	"strings"
	"testing"
)

// report builds a synthetic harness report: windowed speedup as
// given, and a memo that saves memoSaved allocations per op relative
// to the cold setup.
func report(winSpeedup float64, memoSaved int64, short bool, allocs int64) *Report {
	r := NewReport(short, 1)
	r.Benchmarks[BenchAuditFull] = Measurement{N: 3, NsPerOp: 100e6 * winSpeedup, AllocsPerOp: allocs}
	r.Benchmarks[BenchAuditWindowed] = Measurement{N: 10, NsPerOp: 100e6, AllocsPerOp: allocs}
	r.Benchmarks[BenchShardCold] = Measurement{N: 50, NsPerOp: 1.2e6, AllocsPerOp: allocs / 10}
	r.Benchmarks[BenchShardMemoized] = Measurement{N: 50, NsPerOp: 1e6, AllocsPerOp: allocs/10 - memoSaved}
	r.Finalize()
	return r
}

func TestCheckEnforcesWindowedFloor(t *testing.T) {
	if v := Check(nil, report(3.0, 10, true, 1000)); len(v) != 0 {
		t.Fatalf("healthy report flagged: %v", v)
	}
	v := Check(nil, report(1.4, 10, true, 1000))
	if len(v) != 1 || !strings.Contains(v[0], "floor") {
		t.Fatalf("sub-2x windowed speedup not flagged: %v", v)
	}
}

func TestCheckEnforcesMemoAllocSaving(t *testing.T) {
	// A memoized setup that allocates as much as (or more than) a cold
	// one means the memo stopped memoizing — baseline-independent.
	v := Check(nil, report(3.0, 0, true, 1000))
	if len(v) != 1 || !strings.Contains(v[0], "memoization") {
		t.Fatalf("alloc-neutral memo not flagged: %v", v)
	}
	if v := Check(nil, report(3.0, -5, true, 1000)); len(v) != 1 {
		t.Fatalf("alloc-regressing memo not flagged: %v", v)
	}
}

func TestCheckAgainstBaseline(t *testing.T) {
	base := report(4.0, 10, true, 1000)
	// Within tolerance: 4.0 -> 3.2 (-20%), allocs +20%.
	if v := Check(base, report(3.2, 10, true, 1200)); len(v) != 0 {
		t.Fatalf("in-tolerance run flagged: %v", v)
	}
	// Windowed-ratio regression beyond tolerance (still above the
	// absolute floor).
	v := Check(base, report(2.5, 10, true, 1000))
	if len(v) != 1 || !strings.Contains(v[0], "regressed") {
		t.Fatalf("expected the windowed regression, got %v", v)
	}
	// Alloc regression beyond tolerance.
	v = Check(base, report(4.0, 10, true, 1500))
	if len(v) == 0 || !strings.Contains(strings.Join(v, " "), "allocations") {
		t.Fatalf("alloc regression not flagged: %v", v)
	}
	// Allocations are only gated at matching scale.
	if v := Check(base, report(4.0, 10, false, 100000)); len(v) != 0 {
		t.Fatalf("cross-scale alloc comparison happened: %v", v)
	}
}

func TestCheckEnforcesParallelFloor(t *testing.T) {
	r := report(3.0, 10, true, 1000)
	// Parallelism buying nothing (1x) is fine — GOMAXPROCS 1 CI.
	r.Benchmarks[BenchAuditParallel] = Measurement{N: 10, NsPerOp: 100e6}
	r.Finalize()
	if v := Check(nil, r); len(v) != 0 {
		t.Fatalf("1x parallel ratio flagged: %v", v)
	}
	// Parallelism costing beyond tolerance is not.
	r.Benchmarks[BenchAuditParallel] = Measurement{N: 10, NsPerOp: 150e6}
	r.Finalize()
	v := Check(nil, r)
	if len(v) != 1 || !strings.Contains(v[0], "segment-parallel") {
		t.Fatalf("0.67x parallel ratio not flagged: %v", v)
	}
	// Regression vs baseline gates only at matching GOMAXPROCS.
	base := report(3.0, 10, true, 1000)
	base.Benchmarks[BenchAuditParallel] = Measurement{N: 10, NsPerOp: 33e6} // 3x
	base.Finalize()
	cur := report(3.0, 10, true, 1000)
	cur.Benchmarks[BenchAuditParallel] = Measurement{N: 10, NsPerOp: 100e6} // 1x
	cur.Finalize()
	v = Check(base, cur)
	if len(v) != 1 || !strings.Contains(v[0], "segment-parallel speedup regressed") {
		t.Fatalf("parallel regression at matching GOMAXPROCS not flagged: %v", v)
	}
	base.GoMaxProcs = cur.GoMaxProcs + 7
	if v := Check(base, cur); len(v) != 0 {
		t.Fatalf("cross-GOMAXPROCS parallel comparison happened: %v", v)
	}
}

func TestCheckWindowedAllocatesMoreThanFull(t *testing.T) {
	r := report(3.0, 10, true, 1000)
	full, win := r.Benchmarks[BenchAuditFull], r.Benchmarks[BenchAuditWindowed]
	full.BytesPerOp, win.BytesPerOp = 45 << 20, 46 << 20
	r.Benchmarks[BenchAuditFull], r.Benchmarks[BenchAuditWindowed] = full, win
	v := Check(nil, r)
	if len(v) != 1 || !strings.Contains(v[0], "windowed audit allocates more") {
		t.Fatalf("windowed>full alloc inversion not flagged: %v", v)
	}
	win.BytesPerOp = full.BytesPerOp
	r.Benchmarks[BenchAuditWindowed] = win
	if v := Check(nil, r); len(v) != 0 {
		t.Fatalf("equal B/op flagged: %v", v)
	}
}

func TestCheckLoadStageAllocGate(t *testing.T) {
	withLoad := func(bytes float64) *Report {
		r := report(3.0, 10, true, 1000)
		r.Stages = map[string]map[string]obs.StageSummary{
			BenchAuditFull: {obs.StageLoad: {Count: 10, TotalSeconds: 0.1, TotalAllocBytes: bytes}},
		}
		return r
	}
	base := withLoad(10 << 20)
	if v := Check(base, withLoad(11 << 20)); len(v) != 0 {
		t.Fatalf("in-tolerance load-stage growth flagged: %v", v)
	}
	v := Check(base, withLoad(20 << 20))
	if len(v) != 1 || !strings.Contains(v[0], "load-stage") {
		t.Fatalf("2x load-stage alloc growth not flagged: %v", v)
	}
	// Cross-scale runs never compare stage allocations.
	cur := withLoad(20 << 20)
	cur.Short = false
	if v := Check(base, cur); len(v) != 0 {
		t.Fatalf("cross-scale load-stage comparison happened: %v", v)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := report(3.5, 12, true, 1234)
	path := filepath.Join(t.TempDir(), r.DefaultFileName())
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Derived != r.Derived || len(got.Benchmarks) != len(r.Benchmarks) {
		t.Fatalf("round trip lost data: %+v vs %+v", got, r)
	}
	if !strings.HasPrefix(r.DefaultFileName(), "BENCH_") {
		t.Fatalf("unexpected default name %q", r.DefaultFileName())
	}
}

func TestCheckMissingDerived(t *testing.T) {
	// A report with no measurements has zero speedups and must fail
	// the floor, not pass vacuously (the memo gate skips benchmarks
	// that are absent, so exactly the floor violation remains).
	empty := NewReport(true, 1)
	empty.Finalize()
	v := Check(nil, empty)
	if len(v) != 1 || !strings.Contains(v[0], "floor") {
		t.Fatalf("empty report: %v", v)
	}
}

func TestFormatStageDelta(t *testing.T) {
	cur := report(3.0, 10, true, 1000)
	cur.Stages = map[string]map[string]obs.StageSummary{
		BenchAuditWindowed: {
			obs.StageReplay: {Count: 10, TotalSeconds: 2.0, TotalAllocBytes: 1 << 20},
			obs.StageStat:   {Count: 10, TotalSeconds: 0.1, TotalAllocBytes: 1 << 16},
		},
	}

	// Schema-1 baseline (no Stages): a note, not a table, not a panic.
	if got := FormatStageDelta(report(3.0, 10, true, 1000), cur); !strings.Contains(got, "schema 1") {
		t.Fatalf("schema-1 baseline did not degrade to a note: %q", got)
	}
	if got := FormatStageDelta(nil, cur); !strings.Contains(got, "schema 1") {
		t.Fatalf("nil baseline did not degrade to a note: %q", got)
	}

	base := report(3.0, 10, true, 1000)
	base.Stages = map[string]map[string]obs.StageSummary{
		BenchAuditWindowed: {
			obs.StageReplay: {Count: 10, TotalSeconds: 1.0, TotalAllocBytes: 1 << 20},
			obs.StageStat:   {Count: 10, TotalSeconds: 0.1, TotalAllocBytes: 1 << 16},
		},
	}
	got := FormatStageDelta(base, cur)
	if !strings.Contains(got, BenchAuditWindowed) || !strings.Contains(got, obs.StageReplay) {
		t.Fatalf("delta table missing benchmark/stage rows:\n%s", got)
	}
	if !strings.Contains(got, "REGRESSED(wall)") {
		t.Fatalf("2x replay wall growth not marked regressed:\n%s", got)
	}
	if strings.Contains(got, BenchAuditFull) {
		t.Fatalf("benchmark absent from both reports still rendered:\n%s", got)
	}
}

func TestCheckEnforcesTriageOverheadCap(t *testing.T) {
	// The overhead ratio is allocation-based (scoring cost is
	// deterministic in bytes, noise-bound in time), so the synthetic
	// reports vary BytesPerOp and keep ns/op equal.
	withIngest := func(overhead float64) *Report {
		r := report(3.0, 10, true, 1000)
		r.Benchmarks[BenchIngestPlain] = Measurement{N: 20, NsPerOp: 10e6, AllocsPerOp: 100, BytesPerOp: 1 << 20}
		r.Benchmarks[BenchIngestTriaged] = Measurement{N: 20, NsPerOp: 10e6, AllocsPerOp: 120, BytesPerOp: int64((1 << 20) * (1 + overhead))}
		r.Finalize()
		return r
	}
	if v := Check(nil, withIngest(0.05)); len(v) != 0 {
		t.Fatalf("5%% triage overhead flagged: %v", v)
	}
	v := Check(nil, withIngest(0.30))
	if len(v) != 1 || !strings.Contains(v[0], "triage") {
		t.Fatalf("30%% triage overhead not flagged: %v", v)
	}
	// Reports without the ingest pair (older harness versions) must
	// not trip the cap.
	if v := Check(nil, report(3.0, 10, true, 1000)); len(v) != 0 {
		t.Fatalf("ingest-less report flagged: %v", v)
	}
}
