package benchreg

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"sanity/internal/asm"
	"sanity/internal/fixtures"
	"sanity/internal/nfs"
	"sanity/internal/obs"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/svm"
	"sanity/internal/triage"
)

// Scale is the corpus shape a harness run measures against.
type Scale struct {
	Traces  int // labeled test traces in the persisted corpus
	Packets int // packets per trace
	Every   int // checkpoint interval (outputs)
	Window  int // audited trailing window (IPDs) for the windowed rows
}

// ShortScale keeps a harness run CI-sized; FullScale is the local
// deep-measurement configuration.
func ShortScale() Scale { return Scale{Traces: 10, Packets: 48, Every: 12, Window: 8} }
func FullScale() Scale  { return Scale{Traces: 24, Packets: 120, Every: 16, Window: 12} }

// Run records a checkpointed corpus into a throwaway persisted store,
// audits it through the pipeline, and measures the four hot-path
// benchmarks. The corpus is repeated-shard: every trace resolves to
// the same known-good binary, the shape the per-shard memo optimizes.
func Run(short bool, seed uint64) (*Report, error) {
	scale := FullScale()
	if short {
		scale = ShortScale()
	}
	report := NewReport(short, seed)

	dir, err := os.MkdirTemp("", "tdrbench-corpus-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Create(dir)
	if err != nil {
		return nil, err
	}
	set, err := fixtures.PlayedSetCheckpointed(
		fixtures.AuditSizes(scale.Traces, scale.Packets), scale.Every, seed)
	if err != nil {
		return nil, fmt.Errorf("benchreg: recording corpus: %w", err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(seed+777)); err != nil {
		return nil, fmt.Errorf("benchreg: persisting corpus: %w", err)
	}
	batch, err := pipeline.BatchFromStore(st, fixtures.Resolver)
	if err != nil {
		return nil, err
	}

	measure := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		report.Benchmarks[name] = Measurement{
			N:           res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}

	// A broken replay path degrades to per-job error verdicts, not a
	// pipeline error — and erroring audits are fast, so they'd gate as
	// a speedup. Every measured run must therefore be error-free for
	// its measurement to count.
	auditErr := error(nil)
	runClean := func(cfg pipeline.Config, bb *pipeline.Batch) {
		r, err := pipeline.New(cfg).Run(bb)
		if err == nil && r.Metrics.Errors > 0 {
			err = fmt.Errorf("%d of %d audits errored", r.Metrics.Errors, r.Metrics.Traces)
		}
		if err != nil && auditErr == nil {
			auditErr = err
		}
	}
	audit := func(cfg pipeline.Config) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runClean(cfg, batch)
			}
		}
	}
	measure(BenchAuditFull, audit(pipeline.Config{}))
	measure(BenchAuditWindowed, audit(pipeline.Config{WindowIPDs: scale.Window}))
	// Segment-parallel windowed audit: the same windows, each replay
	// spread across its checkpoint-bounded segments. Its gain scales
	// with free cores (≈1x at GOMAXPROCS 1); the derived ratio is
	// gated only against costing, and against same-GOMAXPROCS
	// baselines.
	measure(BenchAuditParallel, audit(pipeline.Config{WindowIPDs: scale.Window, SegmentWorkers: 4}))

	// Shard setup cost, isolated: batches with shards but no jobs, so
	// an iteration measures exactly what a batch pays before its first
	// verdict — statistical training plus the TDR side's resolution.
	// The cold variant empties the memo cache before every iteration
	// (one freshly assembled binary, never the registry singleton), so
	// each run takes the genuine first-seen path with stable per-op
	// cost and no permanent cache pollution; the memoized variant
	// reuses the registry singleton and hits the cache after its first
	// iteration.
	trainIPDs := set.Training
	shardBatch := func(prog *svm.Program) *pipeline.Batch {
		b := &pipeline.Batch{}
		sh := set.ShardWith(fixtures.DefaultShardKey, prog, fixtures.ServerConfig(seed+777))
		sh.Training = trainIPDs
		b.AddShard(sh)
		return b
	}
	coldProg := asm.MustAssemble("nfsd", nfs.ServerSource())
	measure(BenchShardCold, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pipeline.ResetShardMemosForTesting()
			bb := shardBatch(coldProg)
			b.StartTimer()
			runClean(pipeline.Config{Workers: 1}, bb)
		}
	})
	measure(BenchShardMemoized, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bb := shardBatch(fixtures.ServerProgram())
			b.StartTimer()
			runClean(pipeline.Config{Workers: 1}, bb)
		}
	})
	if auditErr != nil {
		return nil, fmt.Errorf("benchreg: audit failed during measurement: %w", auditErr)
	}

	// Per-stage breakdown: one instrumented pass of each audit
	// benchmark AFTER the gated measurements, so the observer's probes
	// never run inside a testing.Benchmark loop. Workers:1 makes the
	// process-wide alloc deltas exact per stage.
	report.Stages = make(map[string]map[string]obs.StageSummary)
	stagePass := func(name string, cfg pipeline.Config) error {
		reg := obs.NewRegistry()
		sm := obs.NewStageMetrics(reg)
		ctx := obs.NewObserver(nil, sm).Context(context.Background())
		cfg.Workers = 1
		r, err := pipeline.New(cfg).RunContext(ctx, batch)
		if err == nil && r.Metrics.Errors > 0 {
			err = fmt.Errorf("%d of %d audits errored", r.Metrics.Errors, r.Metrics.Traces)
		}
		if err != nil {
			return fmt.Errorf("benchreg: instrumented %s pass: %w", name, err)
		}
		report.Stages[name] = sm.Snapshot()
		return nil
	}
	if err := stagePass(BenchAuditFull, pipeline.Config{}); err != nil {
		return nil, err
	}
	if err := stagePass(BenchAuditWindowed, pipeline.Config{WindowIPDs: scale.Window}); err != nil {
		return nil, err
	}
	// The parallel pass runs segments concurrently even at Workers 1,
	// so its per-stage alloc numbers are upper bounds (overlapping
	// process-wide deltas) — informational, and never part of the
	// load-stage gate, which reads the sequential passes above.
	if err := stagePass(BenchAuditParallel, pipeline.Config{WindowIPDs: scale.Window, SegmentWorkers: 4}); err != nil {
		return nil, err
	}

	// Ingest admission cost, plain vs triaged: the same pre-encoded
	// containers stream through PutContainer into a fresh store each
	// iteration (setup outside the timer), once with scoring off and
	// once with the streaming ensemble on. The corpus is the recorded
	// checkpointed set — log-bearing containers, the shape uploads
	// actually have, where admission pays for the whole container but
	// triage only ever touches the IPD section. The pair isolates
	// exactly what ingest-time suspicion scoring adds to the upload
	// hot path; the derived TriageOverhead allocation ratio is what
	// the gate caps. Measured last: churning corpus-sized admissions
	// through the buffer pools would otherwise perturb the
	// near-deterministic load-stage numbers the instrumented passes
	// above just recorded.
	ingestShardMeta := fixtures.NFSShardMeta(seed + 777)
	ingestShardMeta.Key = ingestShard
	ingestRaws, err := ingestCorpus(set)
	if err != nil {
		return nil, fmt.Errorf("benchreg: encoding ingest corpus: %w", err)
	}
	ingestErr := error(nil)
	ingest := func(triaged bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, st, err := ingestStore(triaged, ingestShardMeta)
				if err == nil {
					b.StartTimer()
					err = ingestAll(st, ingestRaws)
					b.StopTimer()
				}
				if dir != "" {
					os.RemoveAll(dir)
				}
				if err != nil && ingestErr == nil {
					ingestErr = err
				}
				b.StartTimer()
			}
		}
	}
	measure(BenchIngestPlain, ingest(false))
	measure(BenchIngestTriaged, ingest(true))
	if ingestErr != nil {
		return nil, fmt.Errorf("benchreg: ingest failed during measurement: %w", ingestErr)
	}

	report.Finalize()
	return report, nil
}

// ingestShard keys the ingest benchmark's corpus, separate from the
// audited shard so the two measurements never share manifest state.
const ingestShard = "ingest-bench"

// ingestCorpus pre-encodes the set's labeled test traces — log,
// execution, IPDs, the full container — so encoding cost never lands
// inside the timed region.
func ingestCorpus(set *fixtures.Set) ([][]byte, error) {
	raws := make([][]byte, 0, len(set.Traces))
	for _, lt := range set.Traces {
		meta := store.Meta{
			ID:      lt.ID,
			Shard:   ingestShard,
			Role:    store.RoleTest,
			Label:   lt.Label.String(),
			Channel: lt.Channel,
		}
		var buf bytes.Buffer
		if err := store.WriteTrace(&buf, meta, lt.Trace); err != nil {
			return nil, err
		}
		raws = append(raws, buf.Bytes())
	}
	return raws, nil
}

// ingestStore builds a fresh throwaway store ready to admit the
// ingest corpus, with the triage ensemble on or off.
func ingestStore(triaged bool, sh store.ShardMeta) (dir string, st *store.Store, err error) {
	dir, err = os.MkdirTemp("", "tdrbench-ingest-*")
	if err != nil {
		return "", nil, err
	}
	st, err = store.Create(dir)
	if err == nil {
		err = st.AddShard(sh)
	}
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	if triaged {
		st.EnableTriage(triage.Options{})
	}
	return dir, st, nil
}

// ingestAll streams every pre-encoded container through admission.
func ingestAll(st *store.Store, raws [][]byte) error {
	for _, raw := range raws {
		if _, err := st.PutContainer(bytes.NewReader(raw)); err != nil {
			return err
		}
	}
	return nil
}
