package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SpanLogOptions bounds a SpanLog's disk footprint.
type SpanLogOptions struct {
	// MaxBytes rotates the active file once it reaches this size
	// (<= 0 means DefaultSpanLogMaxBytes).
	MaxBytes int64
	// MaxFiles keeps at most this many rotated files (<= 0 means
	// DefaultSpanLogMaxFiles). The active file is not counted.
	MaxFiles int
	// MaxAge, when positive, additionally prunes rotated files older
	// than this.
	MaxAge time.Duration
}

// Defaults for SpanLogOptions zero values.
const (
	DefaultSpanLogMaxBytes = 64 << 20
	DefaultSpanLogMaxFiles = 8
)

// SpanLogName is the active NDJSON file a SpanLog appends to; rotated
// generations are renamed to spans-NNNNNN.ndjson.
const SpanLogName = "spans.ndjson"

// SpanLog is a crash-safe, size/age-rotated NDJSON span sink: appends
// batch into a single write syscall, rotation fsyncs the finished
// file before renaming it (a rotated file is always whole lines), and
// opening repairs a torn final line left by a crash mid-append, so no
// reader ever sees a partial record.
type SpanLog struct {
	dir  string
	opts SpanLogOptions

	mu   sync.Mutex
	f    *os.File
	size int64
	seq  int
	buf  bytes.Buffer
}

// OpenSpanLog opens (creating dir if needed) the span log in dir. An
// existing active file is repaired — a trailing partial line from a
// crash is truncated away — and appended to.
func OpenSpanLog(dir string, opts SpanLogOptions) (*SpanLog, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultSpanLogMaxBytes
	}
	if opts.MaxFiles <= 0 {
		opts.MaxFiles = DefaultSpanLogMaxFiles
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &SpanLog{dir: dir, opts: opts, seq: nextSpanLogSeq(dir)}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

func nextSpanLogSeq(dir string) int {
	matches, _ := filepath.Glob(filepath.Join(dir, "spans-*.ndjson"))
	max := 0
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "spans-%d.ndjson", &n); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// openActive opens the active file for appending, truncating any torn
// final line first.
func (l *SpanLog) openActive() error {
	path := filepath.Join(l.dir, SpanLogName)
	size, err := repairNDJSON(path)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size = f, size
	return nil
}

// repairNDJSON truncates path after its last newline (a crash can
// leave at most one torn trailing line) and returns the resulting
// size. A missing file is size 0.
func repairNDJSON(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var off, lastNL int64
	for {
		b, err := br.ReadByte()
		if err != nil {
			break
		}
		off++
		if b == '\n' {
			lastNL = off
		}
	}
	if lastNL != off {
		if err := f.Truncate(lastNL); err != nil {
			return 0, err
		}
	}
	return lastNL, nil
}

// Append writes spans as NDJSON lines in one write syscall. Rotation
// happens on both sides of the write: before, when the batch would
// push a non-empty active file past the size cap, and after, when a
// single oversized batch into an empty file leaves the active file
// over the cap anyway — so the active file never sits above MaxBytes
// between appends.
func (l *SpanLog) Append(spans []SpanRecord) error {
	if l == nil || len(spans) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf.Reset()
	enc := json.NewEncoder(&l.buf)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	if l.size > 0 && l.size+int64(l.buf.Len()) > l.opts.MaxBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(l.buf.Bytes())
	l.size += int64(n)
	if err != nil {
		return err
	}
	if l.size > l.opts.MaxBytes {
		return l.rotate()
	}
	return nil
}

// rotate fsyncs and closes the active file, renames it to the next
// spans-NNNNNN.ndjson generation, prunes old generations, and opens a
// fresh active file. The fsync-before-rename order guarantees a
// rotated file's content is durable under the name readers find it
// at.
func (l *SpanLog) rotate() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	rotated := filepath.Join(l.dir, fmt.Sprintf("spans-%06d.ndjson", l.seq))
	if err := os.Rename(filepath.Join(l.dir, SpanLogName), rotated); err != nil {
		return err
	}
	l.seq++
	l.prune()
	return l.openActive()
}

// prune applies the MaxFiles / MaxAge retention to rotated files.
func (l *SpanLog) prune() {
	matches, _ := filepath.Glob(filepath.Join(l.dir, "spans-*.ndjson"))
	sort.Strings(matches)
	for len(matches) > l.opts.MaxFiles {
		os.Remove(matches[0])
		matches = matches[1:]
	}
	if l.opts.MaxAge > 0 {
		cutoff := time.Now().Add(-l.opts.MaxAge)
		for _, m := range matches {
			if fi, err := os.Stat(m); err == nil && fi.ModTime().Before(cutoff) {
				os.Remove(m)
			}
		}
	}
}

// Size is the active file's current size in bytes.
func (l *SpanLog) Size() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close syncs and closes the active file.
func (l *SpanLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
