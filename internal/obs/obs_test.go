package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestDisabledPath pins the contract the bench gate rests on: with no
// observer on the context, StartSpan returns the context unchanged
// and a nil span, and every downstream operation is a no-op.
func TestDisabledPath(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, StageReplay)
	if sp != nil {
		t.Fatal("StartSpan on a bare context returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan on a bare context layered a new context")
	}
	sp.Attr("k", "v") // must not panic
	sp.End()

	var o *Observer
	if got := o.Context(ctx); got != ctx {
		t.Fatal("nil Observer.Context layered a new context")
	}
	if o.StartRoot("x") != nil {
		t.Fatal("nil Observer.StartRoot returned a span")
	}
	o.Event("x")
	o.Stage("x").End()
	if o.Tracer() != nil {
		t.Fatal("nil Observer.Tracer returned a tracer")
	}

	var zero StageTimer
	zero.End() // must not panic
}

// TestSpanTree builds a nested set of spans through contexts and
// checks the recorded parent/root links, timestamps, and stage
// metrics agree.
func TestSpanTree(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	sm := NewStageMetrics(reg)
	o := NewObserver(tr, sm)

	ctx := o.Context(context.Background())
	ctx, root := StartSpan(ctx, StageTrace)
	root.Attr("job", "t1")
	cctx, child := StartSpan(ctx, StageTDR)
	_, grand := StartSpan(cctx, StageReplay)
	grand.End()
	child.End()
	o.Event("mark")
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d records, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootRec, childRec, grandRec := byName[StageTrace], byName[StageTDR], byName[StageReplay]
	if rootRec.Parent != 0 {
		t.Errorf("root has parent %d", rootRec.Parent)
	}
	if childRec.Parent != rootRec.ID || grandRec.Parent != childRec.ID {
		t.Errorf("parent links wrong: root=%d child.parent=%d child=%d grand.parent=%d",
			rootRec.ID, childRec.Parent, childRec.ID, grandRec.Parent)
	}
	for _, s := range []SpanRecord{rootRec, childRec, grandRec} {
		if s.Root != rootRec.ID {
			t.Errorf("span %s root = %d, want %d", s.Name, s.Root, rootRec.ID)
		}
	}
	if len(rootRec.Attrs) != 1 || rootRec.Attrs[0] != (Attr{"job", "t1"}) {
		t.Errorf("root attrs = %v", rootRec.Attrs)
	}
	if childRec.Start.Before(rootRec.Start) {
		t.Error("child started before its parent")
	}
	if childRec.Dur > rootRec.Dur {
		t.Error("child outlasted its parent")
	}
	if !byName["mark"].Instant {
		t.Error("event not marked instant")
	}

	snap := sm.Snapshot()
	for _, stage := range []string{StageTrace, StageTDR, StageReplay} {
		if snap[stage].Count != 1 {
			t.Errorf("stage %s count = %d, want 1", stage, snap[stage].Count)
		}
	}
}

func TestChromeTraceAndNDJSON(t *testing.T) {
	tr := NewTracer()
	o := NewObserver(tr, nil)
	ctx := o.Context(context.Background())
	ctx, root := StartSpan(ctx, StageTrace)
	_, child := StartSpan(ctx, StageReplay)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	o.Event("done")

	spans := tr.Spans()

	var chrome strings.Builder
	if err := WriteChromeTrace(&chrome, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome.String()), &parsed); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, chrome.String())
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("chrome trace has %d events, want 3", len(parsed.TraceEvents))
	}
	phs := map[string]string{}
	for _, ev := range parsed.TraceEvents {
		phs[ev.Name] = ev.Ph
		if ev.Ts < 0 {
			t.Errorf("event %s has negative ts", ev.Name)
		}
		if ev.Pid != 1 {
			t.Errorf("event %s pid = %d", ev.Name, ev.Pid)
		}
	}
	if phs[StageTrace] != "X" || phs[StageReplay] != "X" || phs["done"] != "i" {
		t.Errorf("phases = %v", phs)
	}

	var nd strings.Builder
	if err := WriteNDJSON(&nd, spans); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("NDJSON has %d lines, want 3", len(lines))
	}
	for _, ln := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("NDJSON line does not parse: %v\n%s", err, ln)
		}
		if rec.ID == 0 {
			t.Errorf("record without ID: %s", ln)
		}
	}

	if got := tr.Drain(); len(got) != 3 {
		t.Fatalf("Drain returned %d spans", len(got))
	}
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("tracer not empty after Drain: %d spans", len(got))
	}
}
