package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func makeSpans(n int, start uint64) []SpanRecord {
	out := make([]SpanRecord, n)
	for i := range out {
		id := start + uint64(i)
		out[i] = SpanRecord{
			ID: id, Root: id, Name: StageReplay,
			Start: time.Unix(0, int64(id)), Dur: time.Millisecond, Alloc: 4096,
			Attrs: []Attr{{Key: "job", Value: fmt.Sprintf("t%d", id)}},
		}
	}
	return out
}

func parseSpanFile(t *testing.T, path string) []SpanRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []SpanRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("%s has a torn/bad line %q: %v", path, sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// TestSpanLogRotation: the active file rotates at the size cap, old
// generations are pruned to MaxFiles, and no record is lost across
// the retained window.
func TestSpanLogRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSpanLog(dir, SpanLogOptions{MaxBytes: 2048, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := l.Append(makeSpans(4, uint64(i*4+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(filepath.Join(dir, SpanLogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 2048+1024 {
		t.Fatalf("active file way past cap: %d bytes", fi.Size())
	}
	rotated, _ := filepath.Glob(filepath.Join(dir, "spans-*.ndjson"))
	if len(rotated) == 0 || len(rotated) > 3 {
		t.Fatalf("rotated generations = %d, want 1..3: %v", len(rotated), rotated)
	}
	total := 0
	for _, f := range append(rotated, filepath.Join(dir, SpanLogName)) {
		total += len(parseSpanFile(t, f))
	}
	if total == 0 || total > 160 {
		t.Fatalf("retained %d records, want (0, 160]", total)
	}

	// Reopen continues the generation sequence rather than
	// overwriting an existing rotation.
	l2, err := OpenSpanLog(dir, SpanLogOptions{MaxBytes: 2048, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	before := len(rotated)
	for i := 0; i < 10; i++ {
		if err := l2.Append(makeSpans(4, uint64(1000+i*4))); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := filepath.Glob(filepath.Join(dir, "spans-*.ndjson"))
	if len(after) < before {
		t.Fatalf("reopen clobbered rotations: %d -> %d", before, len(after))
	}
}

// TestSpanLogRepairsTornLine: a partial trailing line (crash
// mid-write) is truncated on open and appends continue cleanly.
func TestSpanLogRepairsTornLine(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSpanLog(dir, SpanLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(makeSpans(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SpanLogName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":99,"root":99,"name":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenSpanLog(dir, SpanLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(makeSpans(2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := parseSpanFile(t, path) // fails the test on any torn line
	if len(recs) != 5 {
		t.Fatalf("got %d records after repair+append, want 5", len(recs))
	}
}

// TestSpanLogKillMidWrite re-execs the test binary as a writer child
// hammering a small-capped span log, SIGKILLs it mid-write, and
// verifies: rotated generations parse cleanly as-is (fsync before
// rename), and the active file parses cleanly after the reopen
// repair.
func TestSpanLogKillMidWrite(t *testing.T) {
	if dir := os.Getenv("SPANLOG_HELPER_DIR"); dir != "" {
		spanLogWriterHelper(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestSpanLogKillMidWrite")
	cmd.Env = append(os.Environ(), "SPANLOG_HELPER_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child write (and rotate) for a while, then kill it
	// mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rotated, _ := filepath.Glob(filepath.Join(dir, "spans-*.ndjson"))
		if len(rotated) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("child never rotated twice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Rotated files must be whole without any repair.
	rotated, _ := filepath.Glob(filepath.Join(dir, "spans-*.ndjson"))
	if len(rotated) == 0 {
		t.Fatal("no rotated generations survived the kill")
	}
	n := 0
	for _, f := range rotated {
		n += len(parseSpanFile(t, f))
	}
	// The active file may be torn at the kill point; reopening
	// repairs it, after which it must parse.
	l, err := OpenSpanLog(dir, SpanLogOptions{MaxBytes: 4096, MaxFiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n += len(parseSpanFile(t, filepath.Join(dir, SpanLogName)))
	if n == 0 {
		t.Fatal("no records survived the kill")
	}
}

// spanLogWriterHelper is the child side of the kill test: append
// forever until killed.
func spanLogWriterHelper(dir string) {
	l, err := OpenSpanLog(dir, SpanLogOptions{MaxBytes: 4096, MaxFiles: 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var id uint64 = 1
	for {
		if err := l.Append(makeSpans(3, id)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		id += 3
	}
}
