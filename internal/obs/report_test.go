package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func funnelFixture() []SpanRecord {
	var spans []SpanRecord
	var id uint64
	next := func() uint64 { id++; return id }
	base := time.Unix(100, 0)
	for i := 0; i < 4; i++ {
		root := next()
		spans = append(spans, SpanRecord{
			ID: root, Root: root, Name: StageTrace, Start: base,
			Dur: 100 * time.Millisecond, Alloc: 1 << 20,
			Attrs: []Attr{{Key: "job", Value: "t"}},
		})
		for _, child := range []string{StageStat, StageReplay, StageVerdict} {
			cid := next()
			spans = append(spans, SpanRecord{
				ID: cid, Parent: root, Root: root, Name: child, Start: base,
				Dur: 20 * time.Millisecond, Alloc: 1 << 16,
			})
		}
	}
	return spans
}

// TestBuildFunnelReport: counts, percentiles, critical-path shares,
// and canonical stage ordering.
func TestBuildFunnelReport(t *testing.T) {
	rep := BuildFunnelReport(funnelFixture())
	if rep.Traces != 4 || rep.Roots != 4 {
		t.Fatalf("traces=%d roots=%d, want 4/4", rep.Traces, rep.Roots)
	}
	if want := 0.4; rep.RootSeconds < want-1e-9 || rep.RootSeconds > want+1e-9 {
		t.Fatalf("RootSeconds = %v, want %v", rep.RootSeconds, want)
	}
	byStage := make(map[string]FunnelStage)
	var order []string
	for _, s := range rep.Stages {
		byStage[s.Stage] = s
		order = append(order, s.Stage)
	}
	for _, name := range []string{StageTrace, StageStat, StageReplay, StageVerdict} {
		s, ok := byStage[name]
		if !ok || s.Count != 4 {
			t.Fatalf("stage %s missing or wrong count: %+v", name, s)
		}
		if s.P50Seconds <= 0 || s.P99Seconds < s.P50Seconds {
			t.Fatalf("stage %s percentiles wrong: %+v", name, s)
		}
	}
	if got := byStage[StageTrace].CriticalShare; got < 0.99 || got > 1.01 {
		t.Fatalf("trace critical share = %v, want ~1", got)
	}
	if got := byStage[StageStat].CriticalShare; got < 0.19 || got > 0.21 {
		t.Fatalf("stat critical share = %v, want ~0.2", got)
	}
	// Canonical ordering: trace before stat before replay before verdict.
	want := []string{StageTrace, StageStat, StageReplay, StageVerdict}
	for i, name := range order {
		if name != want[i] {
			t.Fatalf("stage order %v, want %v", order, want)
		}
	}
	// Rendered table carries every stage row.
	table := rep.Format()
	for _, name := range want {
		if !strings.Contains(table, name) {
			t.Fatalf("table lacks stage %s:\n%s", name, table)
		}
	}
}

// TestReadSpanFiles: a rotated trace dir reads oldest-first across
// generations plus the active file, tolerating a torn tail.
func TestReadSpanFiles(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSpanLog(dir, SpanLogOptions{MaxBytes: 512, MaxFiles: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 6; i++ {
		if err := l.Append(makeSpans(2, uint64(i*2+1))); err != nil {
			t.Fatal(err)
		}
		want += 2
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the active file's tail; the reader must tolerate it.
	f, err := os.OpenFile(filepath.Join(dir, SpanLogName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":999,"na`)
	f.Close()

	recs, err := ReadSpanFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != want {
		t.Fatalf("read %d records, want %d", len(recs), want)
	}

	// A malformed line mid-file is an error, not silently skipped.
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	os.WriteFile(bad, []byte("not json\n{\"id\":1,\"root\":1,\"name\":\"x\",\"start\":\"2026-01-01T00:00:00Z\",\"durNs\":1,\"allocBytes\":0}\n"), 0o644)
	if _, err := ReadSpanFiles(bad); err == nil {
		t.Fatal("mid-file garbage not rejected")
	}
}

// TestDiffStageSummaries: regression flags fire past tolerance on
// wall or alloc means, and new/gone stages are marked not regressed.
func TestDiffStageSummaries(t *testing.T) {
	base := map[string]StageSummary{
		StageReplay:  {Count: 10, TotalSeconds: 1.0, TotalAllocBytes: 10 << 20},
		StageStat:    {Count: 10, TotalSeconds: 0.1, TotalAllocBytes: 1 << 20},
		StageCompare: {Count: 10, TotalSeconds: 0.2, TotalAllocBytes: 1 << 20},
		"old.stage":  {Count: 5, TotalSeconds: 0.5},
	}
	cur := map[string]StageSummary{
		StageReplay:  {Count: 10, TotalSeconds: 2.0, TotalAllocBytes: 10 << 20}, // wall 2x
		StageStat:    {Count: 10, TotalSeconds: 0.1, TotalAllocBytes: 4 << 20},  // alloc 4x
		StageCompare: {Count: 20, TotalSeconds: 0.44, TotalAllocBytes: 2 << 20}, // means ~+10%
		"new.stage":  {Count: 5, TotalSeconds: 0.5},
	}
	deltas := DiffStageSummaries(base, cur, 0.25)
	byStage := make(map[string]StageDelta)
	for _, d := range deltas {
		byStage[d.Stage] = d
	}
	if d := byStage[StageReplay]; !d.Regressed || d.RegressedBecause != "wall" {
		t.Fatalf("replay should flag wall regression: %+v", d)
	}
	if d := byStage[StageStat]; !d.Regressed || d.RegressedBecause != "alloc" {
		t.Fatalf("stat should flag alloc regression: %+v", d)
	}
	if d := byStage[StageCompare]; d.Regressed {
		t.Fatalf("compare within tolerance flagged: %+v", d)
	}
	if d := byStage["new.stage"]; d.Regressed || d.BaseCount != 0 {
		t.Fatalf("new stage mishandled: %+v", d)
	}
	if d := byStage["old.stage"]; d.Regressed || d.Count != 0 {
		t.Fatalf("gone stage mishandled: %+v", d)
	}
	table := FormatStageDeltas(deltas)
	if !strings.Contains(table, "REGRESSED(wall)") || !strings.Contains(table, "REGRESSED(alloc)") {
		t.Fatalf("delta table lacks regression markers:\n%s", table)
	}
	if !strings.Contains(table, "(new)") || !strings.Contains(table, "(gone)") {
		t.Fatalf("delta table lacks new/gone markers:\n%s", table)
	}
}
