package obs

import "time"

// Canonical stage names for the audit funnel, ingest DONE through
// verdict. Instrumented code uses these so spans and the stage
// histograms agree on vocabulary.
const (
	StageIngest      = "ingest"
	StageTriage      = "triage"
	StageSweep       = "sweep"
	StageClaim       = "claim"
	StageResolve     = "resolve"
	StageSelect      = "select"
	StageTrace       = "trace"
	StageLoad        = "load"
	StageStat        = "stat"
	StageTDR         = "tdr"
	StageSegment     = "segment"
	StageRestore     = "restore"
	StageReplay      = "replay"
	StageCompare     = "compare"
	StageVerdict     = "verdict"
	StageStoreDecode = "store.decode"
)

// Stages lists every canonical stage in funnel order — the row order
// reports and delta tables print, and the vocabulary CI checks
// rendered tables against.
var Stages = []string{
	StageIngest, StageTriage, StageSweep, StageClaim, StageResolve, StageSelect,
	StageTrace, StageLoad, StageStat, StageTDR, StageSegment,
	StageRestore, StageReplay, StageCompare, StageVerdict, StageStoreDecode,
}

// DefLatencyBuckets spans sub-millisecond stage work (compare,
// verdict assembly) up to multi-second full replays.
var DefLatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// DefAllocBuckets spans 4KB decode blips up to the ~45MB/trace replay
// ceiling the ROADMAP names (and past it, to see improvements move).
var DefAllocBuckets = []float64{4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}

// StageMetrics is the per-stage decomposition of audit cost: one
// latency histogram and one allocated-bytes histogram, labeled by
// stage name. It is the Observer's metrics sink; spans feed it on
// End.
type StageMetrics struct {
	seconds *HistogramVec
	alloc   *HistogramVec
}

// NewStageMetrics registers the stage histograms on a registry.
func NewStageMetrics(r *Registry) *StageMetrics {
	return &StageMetrics{
		seconds: r.HistogramVec("sanity_stage_seconds",
			"Wall-clock time spent in each audit-funnel stage.",
			DefLatencyBuckets, "stage"),
		alloc: r.HistogramVec("sanity_stage_alloc_bytes",
			"Heap bytes allocated during each audit-funnel stage (process-wide delta; an upper bound under concurrency).",
			DefAllocBuckets, "stage"),
	}
}

// Observe records one stage execution. Negative alloc deltas (GC
// accounting quirks around a sample boundary) clamp to zero.
func (m *StageMetrics) Observe(stage string, d time.Duration, allocBytes int64) {
	if allocBytes < 0 {
		allocBytes = 0
	}
	m.seconds.With(stage).Observe(d.Seconds())
	m.alloc.With(stage).Observe(float64(allocBytes))
}

// StageSummary is the aggregate view of one stage, as persisted into
// bench reports.
type StageSummary struct {
	Count           uint64  `json:"count"`
	TotalSeconds    float64 `json:"totalSeconds"`
	TotalAllocBytes float64 `json:"totalAllocBytes"`
}

// Snapshot summarizes every stage observed so far.
func (m *StageMetrics) Snapshot() map[string]StageSummary {
	out := make(map[string]StageSummary)
	m.seconds.Each(func(lvs []string, h *Histogram) {
		if len(lvs) != 1 {
			return
		}
		s := out[lvs[0]]
		s.Count = h.Count()
		s.TotalSeconds = h.Sum()
		out[lvs[0]] = s
	})
	m.alloc.Each(func(lvs []string, h *Histogram) {
		if len(lvs) != 1 {
			return
		}
		s := out[lvs[0]]
		s.TotalAllocBytes = h.Sum()
		out[lvs[0]] = s
	})
	return out
}
