package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

// TestLogHandlerCorrelation: records emitted under an instrumented
// context carry trace/span/stage; records outside any span do not.
func TestLogHandlerCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(&buf, LogOptions{Format: "json"}))
	o := NewObserver(NewTracer(), nil)

	ctx, span := StartSpan(o.Context(context.Background()), StageReplay)
	logger.InfoContext(ctx, "inside", "k", "v")
	span.End()
	logger.Info("outside")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 records, got %d:\n%s", len(lines), buf.String())
	}
	var in struct {
		Msg   string `json:"msg"`
		K     string `json:"k"`
		Trace uint64 `json:"trace"`
		Span  uint64 `json:"span"`
		Stage string `json:"stage"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &in); err != nil {
		t.Fatal(err)
	}
	if in.Msg != "inside" || in.K != "v" {
		t.Fatalf("record mangled: %+v", in)
	}
	if in.Trace != span.RootID() || in.Span != span.ID() || in.Stage != StageReplay {
		t.Fatalf("correlation attrs wrong: %+v (span id=%d root=%d)", in, span.ID(), span.RootID())
	}
	if strings.Contains(lines[1], `"trace"`) || strings.Contains(lines[1], `"stage"`) {
		t.Fatalf("uninstrumented record carries correlation attrs: %s", lines[1])
	}
}

// TestLogHandlerFormatsAndLevels: text vs json rendering, and the
// level floor suppressing records.
func TestLogHandlerFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	text := slog.New(NewLogHandler(&buf, LogOptions{}))
	text.Info("hello", "n", 7)
	if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "n=7") {
		t.Fatalf("text rendering wrong: %s", buf.String())
	}

	buf.Reset()
	warn := slog.New(NewLogHandler(&buf, LogOptions{Format: "json", Level: slog.LevelWarn}))
	warn.Info("quiet")
	warn.Warn("loud")
	if strings.Contains(buf.String(), "quiet") || !strings.Contains(buf.String(), "loud") {
		t.Fatalf("level floor not honored: %s", buf.String())
	}

	if _, err := ParseLogLevel("warn"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("ParseLogLevel accepted garbage")
	}
}

// TestLogHandlerRingTee: the ring captures JSON copies of emitted
// records regardless of the primary format, With-attrs included.
func TestLogHandlerRingTee(t *testing.T) {
	ring := NewLogRing(8)
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(&buf, LogOptions{Ring: ring})).With("daemon", "d1")
	logger.Info("hello")

	lines := ring.Last(0)
	if len(lines) != 1 {
		t.Fatalf("ring has %d records, want 1", len(lines))
	}
	var rec struct {
		Msg    string `json:"msg"`
		Daemon string `json:"daemon"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("ring line is not JSON: %s", lines[0])
	}
	if rec.Msg != "hello" || rec.Daemon != "d1" {
		t.Fatalf("ring record wrong: %+v", rec)
	}
}

// TestLogRingBounds: the ring retains exactly its capacity, oldest
// evicted first, with eviction accounting.
func TestLogRingBounds(t *testing.T) {
	ring := NewLogRing(4)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(ring, "line-%d\n", i)
	}
	if ring.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ring.Len())
	}
	if ring.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", ring.Dropped())
	}
	last := ring.Last(0)
	for i, want := range []string{"line-6", "line-7", "line-8", "line-9"} {
		if got := strings.TrimSpace(string(last[i])); got != want {
			t.Fatalf("Last(0)[%d] = %q, want %q", i, got, want)
		}
	}
	if got := ring.Last(2); len(got) != 2 || strings.TrimSpace(string(got[1])) != "line-9" {
		t.Fatalf("Last(2) wrong: %q", got)
	}
}

// TestWrapHandlerIdempotent: re-wrapping an already-correlated
// handler (the daemon wrapping a caller-supplied NewLogHandler
// logger) must not stamp trace/span/stage twice.
func TestWrapHandlerIdempotent(t *testing.T) {
	ring := NewLogRing(8)
	var buf bytes.Buffer
	base := NewLogHandler(&buf, LogOptions{Format: "json"})
	logger := slog.New(WrapHandler(base, ring))
	o := NewObserver(NewTracer(), nil)

	ctx, span := StartSpan(o.Context(context.Background()), StageReplay)
	logger.InfoContext(ctx, "once")
	span.End()

	line := strings.TrimSpace(buf.String())
	if got := strings.Count(line, `"trace"`); got != 1 {
		t.Fatalf("stderr record stamped %d times: %s", got, line)
	}
	rl := ring.Last(0)
	if len(rl) != 1 {
		t.Fatalf("ring has %d records, want 1", len(rl))
	}
	if got := strings.Count(string(rl[0]), `"trace"`); got != 1 {
		t.Fatalf("ring record stamped %d times: %s", got, rl[0])
	}
}
