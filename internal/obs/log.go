package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// LogOptions configures NewLogHandler.
type LogOptions struct {
	// Format selects the rendering: "text" (default) or "json".
	Format string
	// Level is the minimum level emitted (nil means slog.LevelInfo).
	Level slog.Leveler
	// Ring, when non-nil, additionally captures every emitted record
	// as one JSON line — the buffer behind GET /logz.
	Ring *LogRing
}

// ParseLogLevel maps the -log-level flag vocabulary (debug, info,
// warn, error) onto slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogHandler builds the library's correlated slog handler: records
// render to w as text or JSON, and every record emitted under a
// context carrying an instrumented span (StartSpan) is stamped with
// trace (the span tree's root ID), span, and stage attrs — the keys
// that join log lines to span exports and /traces/{id}/timeline.
func NewLogHandler(w io.Writer, opts LogOptions) slog.Handler {
	ho := &slog.HandlerOptions{Level: opts.Level}
	var inner slog.Handler
	if strings.EqualFold(opts.Format, "json") {
		inner = slog.NewJSONHandler(w, ho)
	} else {
		inner = slog.NewTextHandler(w, ho)
	}
	return WrapHandler(inner, opts.Ring)
}

// WrapHandler layers span correlation (and an optional LogRing tee)
// over any slog.Handler — the hook the daemon uses to correlate a
// caller-supplied logger without dictating its rendering. Wrapping an
// already-correlated handler (one built by NewLogHandler or a prior
// WrapHandler) does not stamp twice: the existing correlation layer
// is reused and only the ring tee is added.
func WrapHandler(h slog.Handler, ring *LogRing) slog.Handler {
	var ringHandler slog.Handler
	if ring != nil {
		ringHandler = slog.NewJSONHandler(ring, &slog.HandlerOptions{Level: slog.LevelDebug})
	}
	if lh, ok := h.(*logHandler); ok {
		nh := &logHandler{inner: lh.inner, ring: lh.ring}
		if ringHandler != nil {
			nh.ring = ringHandler
		}
		return nh
	}
	return &logHandler{inner: h, ring: ringHandler}
}

// logHandler stamps span correlation attrs and tees records into the
// ring. The ring sees exactly the records the inner handler accepts
// (Enabled delegates to inner).
type logHandler struct {
	inner slog.Handler
	ring  slog.Handler
}

func (h *logHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := SpanFromContext(ctx); s.ID() != 0 {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.Uint64("trace", s.RootID()),
			slog.Uint64("span", s.ID()),
			slog.String("stage", s.Stage()),
		)
	}
	if h.ring != nil {
		_ = h.ring.Handle(ctx, rec)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &logHandler{inner: h.inner.WithAttrs(attrs)}
	if h.ring != nil {
		nh.ring = h.ring.WithAttrs(attrs)
	}
	return nh
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	nh := &logHandler{inner: h.inner.WithGroup(name)}
	if h.ring != nil {
		nh.ring = h.ring.WithGroup(name)
	}
	return nh
}

// LogRing is a bounded in-memory buffer of rendered log lines, newest
// last — the storage behind GET /logz?n=. It implements io.Writer on
// the contract the stdlib slog handlers honor: one Write call per
// record.
type LogRing struct {
	mu      sync.Mutex
	lines   [][]byte
	next    int
	count   int
	dropped uint64
}

// DefaultLogRingLines is the capacity NewLogRing applies when given a
// non-positive size.
const DefaultLogRingLines = 1024

// NewLogRing returns a ring holding the last n rendered records
// (n <= 0 means DefaultLogRingLines).
func NewLogRing(n int) *LogRing {
	if n <= 0 {
		n = DefaultLogRingLines
	}
	return &LogRing{lines: make([][]byte, n)}
}

// Write stores one rendered record, evicting the oldest when full.
func (r *LogRing) Write(p []byte) (int, error) {
	line := make([]byte, len(p))
	copy(line, p)
	r.mu.Lock()
	if r.count == len(r.lines) {
		r.dropped++
	} else {
		r.count++
	}
	r.lines[r.next] = line
	r.next = (r.next + 1) % len(r.lines)
	r.mu.Unlock()
	return len(p), nil
}

// Last returns up to n of the most recent records, oldest first
// (n <= 0 returns everything retained).
func (r *LogRing) Last(n int) [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.count {
		n = r.count
	}
	out := make([][]byte, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.lines)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.lines[(start+i)%len(r.lines)])
	}
	return out
}

// Len is the number of records currently retained.
func (r *LogRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped counts records evicted since the ring filled.
func (r *LogRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
