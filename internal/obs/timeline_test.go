package obs

import (
	"context"
	"fmt"
	"testing"
)

// TestTimelineIndexFilesTrees mirrors the daemon's span shape — an
// ingest root keyed by "id", then a sweep tree whose per-trace audit
// subtrees are keyed by "job" with sweep-scoped claim/resolve spans
// shared — and asserts each trace's timeline assembles its full life.
func TestTimelineIndexFilesTrees(t *testing.T) {
	ix := NewTimelineIndex(8, 32)
	o := NewObserver(nil, nil)
	o.SetTimeline(ix)
	ctx := o.Context(context.Background())

	// Ingest: one root span per pushed trace.
	for _, id := range []string{"t1", "t2"} {
		sp := o.StartRoot(StageIngest)
		sp.Attr("id", id)
		sp.Attr("shard", "s0")
		sp.End()
	}
	o.Event("ingest.done", Attr{Key: "id", Value: "t1"})

	// One sweep auditing both traces.
	sctx, sweep := StartSpan(ctx, StageSweep)
	_, claim := StartSpan(sctx, StageClaim)
	claim.End()
	_, resolve := StartSpan(sctx, StageResolve)
	resolve.End()
	for _, id := range []string{"t1", "t2"} {
		tctx, tr := StartSpan(sctx, StageTrace)
		tr.Attr("job", id)
		_, stat := StartSpan(tctx, StageStat)
		stat.End()
		_, verdict := StartSpan(tctx, StageVerdict)
		verdict.End()
		tr.End()
	}
	sweep.End()

	for _, id := range []string{"t1", "t2"} {
		tl, ok := ix.Timeline(id)
		if !ok {
			t.Fatalf("no timeline for %s", id)
		}
		stages := make(map[string]int)
		for _, s := range tl.Spans {
			stages[s.Name]++
		}
		want := map[string]int{
			StageIngest: 1, StageSweep: 1, StageClaim: 1, StageResolve: 1,
			StageTrace: 1, StageStat: 1, StageVerdict: 1,
		}
		if id == "t1" {
			want["ingest.done"] = 1
		}
		for name, n := range want {
			if stages[name] != n {
				t.Errorf("%s timeline has %d %q spans, want %d (%v)", id, stages[name], name, n, stages)
			}
		}
		// Sorted by start: ingest first, the trace's verdict before
		// the sweep close is irrelevant — just check ordering holds.
		for i := 1; i < len(tl.Spans); i++ {
			if tl.Spans[i].Start.Before(tl.Spans[i-1].Start) {
				t.Fatalf("%s timeline not start-ordered", id)
			}
		}
	}
	if _, ok := ix.Timeline("unknown"); ok {
		t.Fatal("Timeline returned ok for an unknown trace")
	}
}

// TestTimelineIndexBounds: trace-count eviction (oldest first) and
// the per-trace span cap.
func TestTimelineIndexBounds(t *testing.T) {
	ix := NewTimelineIndex(3, 4)
	o := NewObserver(nil, nil)
	o.SetTimeline(ix)
	ctx := o.Context(context.Background())

	for i := 0; i < 5; i++ {
		_, tr := StartSpan(ctx, StageTrace)
		tr.Attr("job", fmt.Sprintf("t%d", i))
		tr.End()
	}
	if got := len(ix.Traces()); got != 3 {
		t.Fatalf("index holds %d traces, want 3: %v", got, ix.Traces())
	}
	if _, ok := ix.Timeline("t0"); ok {
		t.Fatal("oldest trace not evicted")
	}
	if _, ok := ix.Timeline("t4"); !ok {
		t.Fatal("newest trace missing")
	}
	if ix.Evicted() != 2 {
		t.Fatalf("Evicted = %d, want 2", ix.Evicted())
	}

	// Span cap: a tree with more spans than the per-trace bound
	// truncates instead of growing.
	tctx, tr := StartSpan(ctx, StageTrace)
	tr.Attr("job", "big")
	for i := 0; i < 10; i++ {
		_, c := StartSpan(tctx, StageReplay)
		c.End()
	}
	tr.End()
	tl, ok := ix.Timeline("big")
	if !ok {
		t.Fatal("no timeline for big")
	}
	if len(tl.Spans) != 4 || tl.Truncated != 7 {
		t.Fatalf("span cap not honored: %d spans, %d truncated (want 4, 7)", len(tl.Spans), tl.Truncated)
	}
}

// TestTimelineIndexPendingBound: a tree whose root never closes
// cannot grow the in-flight buffer without bound.
func TestTimelineIndexPendingBound(t *testing.T) {
	ix := NewTimelineIndex(4, 8)
	ix.maxPending = 16
	o := NewObserver(nil, nil)
	o.SetTimeline(ix)
	ctx := o.Context(context.Background())

	sctx, _ := StartSpan(ctx, StageSweep) // root never ends
	for i := 0; i < 100; i++ {
		_, c := StartSpan(sctx, StageReplay)
		c.End()
	}
	ix.mu.Lock()
	pending := ix.pendingSpans
	ix.mu.Unlock()
	if pending > 16 {
		t.Fatalf("pending buffer grew to %d spans, cap 16", pending)
	}
}

// TestObserverSampling: with SetSample(n) the tracer keeps 1 in n
// whole trees while the timeline still sees every span.
func TestObserverSampling(t *testing.T) {
	tr := NewTracer()
	ix := NewTimelineIndex(64, 16)
	o := NewObserver(tr, nil)
	o.SetTimeline(ix)
	o.SetSample(4)
	ctx := o.Context(context.Background())

	for i := 0; i < 16; i++ {
		tctx, root := StartSpan(ctx, StageTrace)
		root.Attr("job", fmt.Sprintf("t%d", i))
		_, c := StartSpan(tctx, StageStat)
		c.End()
		root.End()
	}
	spans := tr.Spans()
	if len(spans) != 8 { // 4 of 16 trees, 2 spans each
		t.Fatalf("tracer kept %d spans, want 8 (1-in-4 trees of 2 spans)", len(spans))
	}
	// Sampled trees are complete: every kept span's root has both
	// members present.
	byRoot := make(map[uint64]int)
	for _, s := range spans {
		byRoot[s.Root]++
	}
	for root, n := range byRoot {
		if n != 2 {
			t.Fatalf("sampled tree %d has %d spans, want 2 (tree torn by sampling)", root, n)
		}
	}
	if got := len(ix.Traces()); got != 16 {
		t.Fatalf("timeline saw %d traces, want all 16 despite sampling", got)
	}
}
