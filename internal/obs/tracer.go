package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span (or instant event) as the tracer
// stores it: IDs link the tree (Parent is 0 for roots, Root names the
// tree so concurrent traces untangle), Start/Dur give the interval,
// and Alloc is the heap-allocation delta attributed to the span.
type SpanRecord struct {
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent,omitempty"`
	Root    uint64        `json:"root"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"durNs"`
	Alloc   int64         `json:"allocBytes"`
	Instant bool          `json:"instant,omitempty"`
	Attrs   []Attr        `json:"attrs,omitempty"`
}

// Tracer collects finished spans. Record-side cost is one mutex'd
// append; span identity comes from the Observer's atomic counter so
// concurrent workers never contend on ID allocation.
type Tracer struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, r)
	t.mu.Unlock()
}

// Spans returns a copy of every span recorded so far.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Drain returns the recorded spans and resets the tracer — the
// daemon's per-sweep export primitive.
func (t *Tracer) Drain() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.spans
	t.spans = nil
	return out
}

// WriteNDJSON writes one SpanRecord JSON object per line — the raw,
// lossless export (attrs, absolute timestamps, alloc deltas).
func WriteNDJSON(w io.Writer, spans []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format's
// JSON-array flavor; ts/dur are microseconds relative to the capture
// origin, and we map each span tree (Root) onto a thread lane so
// chrome://tracing and Perfetto draw one row per audited trace.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the spans in Chrome trace_event JSON
// ({"traceEvents": [...]}), directly openable in chrome://tracing or
// Perfetto. Spans become complete ("X") events; instants become "i"
// events with global scope.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	var origin time.Time
	for _, s := range spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ts:   float64(s.Start.Sub(origin).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Root,
		}
		if s.Instant {
			ev.Ph, ev.S = "i", "g"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(s.Dur.Nanoseconds()) / 1e3
			ev.Args = map[string]any{"allocBytes": s.Alloc}
		}
		for _, a := range s.Attrs {
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			ev.Args[a.Key] = a.Value
		}
		events = append(events, ev)
	}
	if _, err := io.WriteString(w, `{"traceEvents":`); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
