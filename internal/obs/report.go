package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// FunnelStage is one stage's aggregate in a FunnelReport.
type FunnelStage struct {
	Stage           string  `json:"stage"`
	Count           int     `json:"count"`
	TotalSeconds    float64 `json:"totalSeconds"`
	P50Seconds      float64 `json:"p50Seconds"`
	P99Seconds      float64 `json:"p99Seconds"`
	TotalAllocBytes int64   `json:"totalAllocBytes"`
	// CriticalShare is the stage's total wall time as a fraction of
	// the summed root-span wall time (the funnel's critical path).
	CriticalShare float64 `json:"criticalShare"`
}

// FunnelReport aggregates a span dump into the per-stage funnel view
// `tdraudit obs report` prints.
type FunnelReport struct {
	Spans       int           `json:"spans"`
	Traces      int           `json:"traces"` // spans named StageTrace
	Roots       int           `json:"roots"`
	RootSeconds float64       `json:"rootSeconds"`
	Stages      []FunnelStage `json:"stages"`
}

// BuildFunnelReport aggregates span records per stage: counts,
// p50/p99 wall time, alloc totals, and each stage's share of the
// summed root-span wall time. Instant events are excluded. Stage rows
// come out in canonical Stages order, unknown names after.
func BuildFunnelReport(spans []SpanRecord) *FunnelReport {
	rep := &FunnelReport{Spans: len(spans)}
	durs := make(map[string][]float64)
	allocs := make(map[string]int64)
	for _, s := range spans {
		if s.Instant {
			continue
		}
		if s.Name == StageTrace {
			rep.Traces++
		}
		if s.Parent == 0 {
			rep.Roots++
			rep.RootSeconds += s.Dur.Seconds()
		}
		durs[s.Name] = append(durs[s.Name], s.Dur.Seconds())
		allocs[s.Name] += s.Alloc
	}
	for _, name := range stageOrder(durs) {
		ds := durs[name]
		sort.Float64s(ds)
		total := 0.0
		for _, d := range ds {
			total += d
		}
		fs := FunnelStage{
			Stage:           name,
			Count:           len(ds),
			TotalSeconds:    total,
			P50Seconds:      percentile(ds, 0.50),
			P99Seconds:      percentile(ds, 0.99),
			TotalAllocBytes: allocs[name],
		}
		if rep.RootSeconds > 0 {
			fs.CriticalShare = total / rep.RootSeconds
		}
		rep.Stages = append(rep.Stages, fs)
	}
	return rep
}

// stageOrder returns the keys of m in canonical Stages order, with
// unknown stage names sorted after.
func stageOrder(m map[string][]float64) []string {
	var out, extra []string
	seen := make(map[string]bool)
	for _, name := range Stages {
		if _, ok := m[name]; ok {
			out = append(out, name)
			seen[name] = true
		}
	}
	for name := range m {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// percentile reads the p-quantile of sorted (ascending) samples via
// the nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Summaries converts the report to the StageSummary map shape bench
// baselines persist, for diffing via DiffStageSummaries.
func (r *FunnelReport) Summaries() map[string]StageSummary {
	out := make(map[string]StageSummary, len(r.Stages))
	for _, s := range r.Stages {
		out[s.Stage] = StageSummary{
			Count:           uint64(s.Count),
			TotalSeconds:    s.TotalSeconds,
			TotalAllocBytes: float64(s.TotalAllocBytes),
		}
	}
	return out
}

// Format renders the funnel table.
func (r *FunnelReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "funnel: %d spans, %d traces, %d roots, %.3fs critical path\n",
		r.Spans, r.Traces, r.Roots, r.RootSeconds)
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %12s %12s %9s\n",
		"stage", "count", "p50", "p99", "total", "alloc/span", "critical")
	for _, s := range r.Stages {
		allocPer := int64(0)
		if s.Count > 0 {
			allocPer = s.TotalAllocBytes / int64(s.Count)
		}
		fmt.Fprintf(&b, "%-14s %8d %12s %12s %12s %12s %8.1f%%\n",
			s.Stage, s.Count,
			fmtSeconds(s.P50Seconds), fmtSeconds(s.P99Seconds), fmtSeconds(s.TotalSeconds),
			fmtBytes(allocPer), s.CriticalShare*100)
	}
	return b.String()
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ReadSpansNDJSON decodes one SpanRecord per line. A torn final line
// (a crash mid-append before SpanLog repair ran) is tolerated;
// malformed lines anywhere else are an error.
func ReadSpansNDJSON(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			// Only fatal if another line follows — a bad last line is
			// a torn tail.
			pendingErr = fmt.Errorf("obs: bad span record on line %d: %w", line, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSpanFiles loads span records from path: a single NDJSON file,
// or a trace directory holding rotated spans-*.ndjson generations
// plus the active spans.ndjson, read oldest first.
func ReadSpanFiles(path string) ([]SpanRecord, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if fi.IsDir() {
		rotated, _ := filepath.Glob(filepath.Join(path, "spans-*.ndjson"))
		sort.Strings(rotated)
		files = rotated
		active := filepath.Join(path, SpanLogName)
		if _, err := os.Stat(active); err == nil {
			files = append(files, active)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("obs: no spans.ndjson or spans-*.ndjson in %s", path)
		}
	}
	var out []SpanRecord
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		recs, err := ReadSpansNDJSON(fh)
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// StageDelta compares one stage's per-span means between a baseline
// and a current run.
type StageDelta struct {
	Stage            string  `json:"stage"`
	BaseCount        uint64  `json:"baseCount"`
	Count            uint64  `json:"count"`
	BaseMeanSeconds  float64 `json:"baseMeanSeconds"`
	MeanSeconds      float64 `json:"meanSeconds"`
	BaseMeanAlloc    float64 `json:"baseMeanAlloc"`
	MeanAlloc        float64 `json:"meanAlloc"`
	WallDeltaFrac    float64 `json:"wallDeltaFrac"`  // (cur-base)/base, 0 when base is 0
	AllocDeltaFrac   float64 `json:"allocDeltaFrac"` // (cur-base)/base, 0 when base is 0
	Regressed        bool    `json:"regressed"`
	RegressedBecause string  `json:"regressedBecause,omitempty"`
}

// DiffStageSummaries compares per-stage means against a baseline and
// flags stages whose mean wall time or mean allocation grew past
// 1+tol. Wall-time deltas are machine-dependent (same caveat as every
// ns/op comparison); the flags are advisory, not a gate.
func DiffStageSummaries(base, cur map[string]StageSummary, tol float64) []StageDelta {
	names := make(map[string][]float64) // reuse stageOrder's key ordering
	for name := range base {
		names[name] = nil
	}
	for name := range cur {
		names[name] = nil
	}
	var out []StageDelta
	for _, name := range stageOrder(names) {
		b, c := base[name], cur[name]
		d := StageDelta{Stage: name, BaseCount: b.Count, Count: c.Count}
		if b.Count > 0 {
			d.BaseMeanSeconds = b.TotalSeconds / float64(b.Count)
			d.BaseMeanAlloc = b.TotalAllocBytes / float64(b.Count)
		}
		if c.Count > 0 {
			d.MeanSeconds = c.TotalSeconds / float64(c.Count)
			d.MeanAlloc = c.TotalAllocBytes / float64(c.Count)
		}
		if d.BaseMeanSeconds > 0 {
			d.WallDeltaFrac = (d.MeanSeconds - d.BaseMeanSeconds) / d.BaseMeanSeconds
		}
		if d.BaseMeanAlloc > 0 {
			d.AllocDeltaFrac = (d.MeanAlloc - d.BaseMeanAlloc) / d.BaseMeanAlloc
		}
		switch {
		case b.Count > 0 && c.Count > 0 && d.WallDeltaFrac > tol:
			d.Regressed, d.RegressedBecause = true, "wall"
		case b.Count > 0 && c.Count > 0 && d.AllocDeltaFrac > tol:
			d.Regressed, d.RegressedBecause = true, "alloc"
		}
		out = append(out, d)
	}
	return out
}

// FormatStageDeltas renders a delta table, one row per stage, with a
// REGRESSED marker on flagged rows.
func FormatStageDeltas(deltas []StageDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %8s %12s %12s %8s\n",
		"stage", "base", "now", "wall", "base alloc", "now alloc", "alloc")
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED(" + d.RegressedBecause + ")"
		}
		switch {
		case d.BaseCount == 0:
			mark = "  (new)"
		case d.Count == 0:
			mark = "  (gone)"
		}
		fmt.Fprintf(&b, "%-14s %12s %12s %+7.1f%% %12s %12s %+7.1f%%%s\n",
			d.Stage,
			fmtSeconds(d.BaseMeanSeconds), fmtSeconds(d.MeanSeconds), d.WallDeltaFrac*100,
			fmtBytes(int64(d.BaseMeanAlloc)), fmtBytes(int64(d.MeanAlloc)), d.AllocDeltaFrac*100,
			mark)
	}
	return b.String()
}
