package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. Registration is strict — a duplicate name
// panics at startup, where it is a programming error, rather than
// silently merging at scrape time.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// family is one metric family: a name, help, and type plus either
// static children (counters/gauges/histograms keyed by label values)
// or a scrape-time sample function.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]any
	keys     []string

	fn func() []Sample
}

// Sample is one scrape-time value from a Func metric.
type Sample struct {
	LabelValues []string
	Value       float64
}

func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", f.name))
	}
	r.fams[f.name] = f
	return f
}

// Counter is a monotonically increasing value with an atomic hot
// path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as atomic float
// bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value (CAS loop; safe under concurrency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets; Observe is
// atomic (one counter add plus a CAS float sum), no locks.
type Histogram struct {
	upper []float64
	// counts has len(upper)+1 entries; the last is the overflow
	// (+Inf) bucket. Rendered cumulatively at scrape time.
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Prometheus buckets are inclusive upper bounds (v <= le), which
	// is exactly what SearchFloat64s's insertion point gives for the
	// first upper >= v.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// labelSep joins label values into a child key; 0xff cannot appear in
// valid UTF-8 label text, so the join is unambiguous.
const labelSep = "\xff"

func (f *family) child(lvs []string, make func() any) any {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter", children: map[string]any{}})
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge", children: map[string]any{}})
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers and returns an unlabeled histogram with the
// given upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram", buckets: buckets, children: map[string]any{}})
	return f.child(nil, func() any { return newHistogram(buckets) }).(*Histogram)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, typ: "counter", labels: labels, children: map[string]any{}})}
}

// With returns (creating if needed) the child for the label values.
func (v *CounterVec) With(lvs ...string) *Counter {
	return v.f.child(lvs, func() any { return &Counter{} }).(*Counter)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{name: name, help: help, typ: "histogram", buckets: buckets, labels: labels, children: map[string]any{}})}
}

// With returns (creating if needed) the child for the label values.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	return v.f.child(lvs, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Each visits every child histogram with its label values.
func (v *HistogramVec) Each(fn func(labelValues []string, h *Histogram)) {
	v.f.mu.Lock()
	keys := append([]string(nil), v.f.keys...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.f.children[k].(*Histogram)
	}
	v.f.mu.Unlock()
	for i, k := range keys {
		var lvs []string
		if k != "" || len(v.f.labels) > 0 {
			lvs = strings.Split(k, labelSep)
		}
		fn(lvs, children[i])
	}
}

// Func registers a family whose samples are produced at scrape time —
// for values owned elsewhere (queue depth from the manifest, ingest
// counters from the server).
func (r *Registry) Func(name, help, typ string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: typ, labels: labels, fn: fn})
}

// CounterFunc registers an unlabeled scrape-time counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.Func(name, help, "counter", nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// GaugeFunc registers an unlabeled scrape-time gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Func(name, help, "gauge", nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// WritePrometheus renders every family in text exposition format
// 0.0.4, families sorted by name, label values escaped per the spec.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			for _, s := range f.fn() {
				writeSample(&b, f.name, f.labels, s.LabelValues, s.Value)
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return keys[idx[i]] < keys[idx[j]] })
		for _, i := range idx {
			var lvs []string
			if keys[i] != "" || len(f.labels) > 0 {
				lvs = strings.Split(keys[i], labelSep)
			}
			switch c := children[i].(type) {
			case *Counter:
				writeSample(&b, f.name, f.labels, lvs, float64(c.Value()))
			case *Gauge:
				writeSample(&b, f.name, f.labels, lvs, c.Value())
			case *Histogram:
				writeHistogram(&b, f.name, f.labels, lvs, c)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, labels, lvs []string, h *Histogram) {
	bucketLabels := append(append([]string{}, labels...), "le")
	var cum uint64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", bucketLabels, append(append([]string{}, lvs...), formatFloat(upper)), float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(b, name+"_bucket", bucketLabels, append(append([]string{}, lvs...), "+Inf"), float64(cum))
	writeSample(b, name+"_sum", labels, lvs, h.Sum())
	writeSample(b, name+"_count", labels, lvs, float64(h.Count()))
}

func writeSample(b *strings.Builder, name string, labels, lvs []string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(lvs[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
