package obs

import (
	"sort"
	"sync"
)

// traceKeyAttrs are the span attrs that name the trace a span belongs
// to: "job" on the pipeline's per-trace audit span, "id" on the
// ingest PUT span.
var traceKeyAttrs = []string{"job", "id"}

func traceKey(attrs []Attr) string {
	for _, want := range traceKeyAttrs {
		for _, a := range attrs {
			if a.Key == want && a.Value != "" {
				return a.Value
			}
		}
	}
	return ""
}

// Timeline is one trace's assembled span history: every span recorded
// under the trace's ingest and audit trees, plus the sweep-scoped
// spans (sweep, claim, resolve, select) of the sweeps that processed
// it, sorted by start time.
type Timeline struct {
	Trace     string       `json:"trace"`
	Spans     []SpanRecord `json:"spans"`
	Truncated int          `json:"truncated,omitempty"`
}

// TimelineIndex is a bounded per-trace span index — the storage
// behind GET /traces/{id}/timeline. Spans buffer per tree until the
// tree's root closes; the completed tree is then filed under every
// trace key ("job"/"id" attrs) it carries, with tree-scoped spans
// that name no trace (a sweep and its claim/resolve/select children)
// shared across every trace in the tree. Both the finished index and
// the in-flight buffer are bounded; the oldest entry is evicted
// first.
type TimelineIndex struct {
	mu           sync.Mutex
	maxTraces    int
	maxSpans     int
	maxPending   int
	traces       map[string]*Timeline
	order        []string
	pending      map[uint64][]SpanRecord
	pendingOrder []uint64
	pendingSpans int
	evicted      uint64
}

// Defaults for NewTimelineIndex when given non-positive bounds.
const (
	DefaultTimelineTraces       = 512
	DefaultTimelineSpansPer     = 160
	defaultTimelinePendingSpans = 8192
)

// NewTimelineIndex builds an index retaining the last maxTraces
// traces with at most maxSpansPerTrace spans each (non-positive
// arguments take the defaults).
func NewTimelineIndex(maxTraces, maxSpansPerTrace int) *TimelineIndex {
	if maxTraces <= 0 {
		maxTraces = DefaultTimelineTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultTimelineSpansPer
	}
	return &TimelineIndex{
		maxTraces:  maxTraces,
		maxSpans:   maxSpansPerTrace,
		maxPending: defaultTimelinePendingSpans,
		traces:     make(map[string]*Timeline),
		pending:    make(map[uint64][]SpanRecord),
	}
}

// Timeline returns a copy of one trace's assembled history. ok is
// false when the index holds nothing for the ID (never seen, or
// evicted).
func (ix *TimelineIndex) Timeline(id string) (Timeline, bool) {
	if ix == nil {
		return Timeline{}, false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tl, ok := ix.traces[id]
	if !ok {
		return Timeline{}, false
	}
	out := Timeline{Trace: tl.Trace, Truncated: tl.Truncated}
	out.Spans = make([]SpanRecord, len(tl.Spans))
	copy(out.Spans, tl.Spans)
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].Start.Before(out.Spans[j].Start) })
	return out, true
}

// Traces returns the IDs currently indexed, oldest first.
func (ix *TimelineIndex) Traces() []string {
	if ix == nil {
		return nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]string, len(ix.order))
	copy(out, ix.order)
	return out
}

// Evicted counts traces dropped to honor the index bound.
func (ix *TimelineIndex) Evicted() uint64 {
	if ix == nil {
		return 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.evicted
}

// record is the Observer-side sink. Instants carrying a trace key
// file immediately; spans buffer under their tree root until the root
// closes (children always End before their parent's record arrives).
func (ix *TimelineIndex) record(r SpanRecord) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if r.Instant {
		if key := traceKey(r.Attrs); key != "" {
			ix.file(key, r)
		}
		return
	}
	if r.Root == 0 {
		return
	}
	if r.ID != r.Root {
		if _, ok := ix.pending[r.Root]; !ok {
			ix.pendingOrder = append(ix.pendingOrder, r.Root)
		}
		ix.pending[r.Root] = append(ix.pending[r.Root], r)
		ix.pendingSpans++
		// A tree whose root never closes (crash mid-sweep, runaway
		// instrumentation) must not grow without bound: drop whole
		// oldest trees until back under the cap.
		for ix.pendingSpans > ix.maxPending && len(ix.pendingOrder) > 0 {
			oldest := ix.pendingOrder[0]
			ix.pendingOrder = ix.pendingOrder[1:]
			ix.pendingSpans -= len(ix.pending[oldest])
			delete(ix.pending, oldest)
		}
		return
	}
	// Root closed: assemble and file the completed tree.
	spans := append(ix.pending[r.Root], r)
	if _, ok := ix.pending[r.Root]; ok {
		ix.pendingSpans -= len(ix.pending[r.Root])
		delete(ix.pending, r.Root)
		for i, id := range ix.pendingOrder {
			if id == r.Root {
				ix.pendingOrder = append(ix.pendingOrder[:i], ix.pendingOrder[i+1:]...)
				break
			}
		}
	}
	ix.fileTree(spans)
}

// fileTree distributes a completed span tree across the traces it
// touched: each span files under its nearest self-or-ancestor span
// that names a trace, and spans under no such ancestor (the sweep
// frame) are shared with every trace in the tree.
func (ix *TimelineIndex) fileTree(spans []SpanRecord) {
	parent := make(map[uint64]uint64, len(spans))
	key := make(map[uint64]string, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
		key[s.ID] = traceKey(s.Attrs)
	}
	// keyFor resolves a span's owning trace by walking ancestors;
	// memoized into key so each edge is walked once.
	var keyFor func(id uint64, depth int) string
	keyFor = func(id uint64, depth int) string {
		if id == 0 || depth > len(spans) {
			return ""
		}
		if k, ok := key[id]; ok && k != "" {
			return k
		}
		k := keyFor(parent[id], depth+1)
		if k != "" {
			key[id] = k
		}
		return k
	}
	var shared []SpanRecord
	perKey := make(map[string][]SpanRecord)
	for _, s := range spans {
		if k := keyFor(s.ID, 0); k != "" {
			perKey[k] = append(perKey[k], s)
		} else {
			shared = append(shared, s)
		}
	}
	if len(perKey) == 0 {
		return
	}
	for k, ss := range perKey {
		ix.file(k, shared...)
		ix.file(k, ss...)
	}
}

// file appends spans to one trace's timeline, honoring the per-trace
// span bound and evicting the oldest trace when the index is full.
func (ix *TimelineIndex) file(id string, spans ...SpanRecord) {
	tl, ok := ix.traces[id]
	if !ok {
		for len(ix.order) >= ix.maxTraces {
			oldest := ix.order[0]
			ix.order = ix.order[1:]
			delete(ix.traces, oldest)
			ix.evicted++
		}
		tl = &Timeline{Trace: id}
		ix.traces[id] = tl
		ix.order = append(ix.order, id)
	}
	for _, s := range spans {
		if len(tl.Spans) >= ix.maxSpans {
			tl.Truncated++
			continue
		}
		tl.Spans = append(tl.Spans, s)
	}
}
