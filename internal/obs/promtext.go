package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one sample line from a text-format scrape.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily groups a scrape's samples under their family: for a
// histogram the _bucket/_sum/_count series all land in the family
// named by the # TYPE line.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseExposition parses Prometheus text exposition format 0.0.4 —
// the round-trip half of the registry, used by tests to assert that
// /metrics stays machine-readable (names, types, help, escaping).
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	get := func(name string) *ParsedFamily {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &ParsedFamily{Name: name}
		fams[name] = f
		return f
	}
	// histFor maps histogram series suffixes back onto their family.
	histFams := make(map[string]string)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			get(name).Help = unescapeHelp(help)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			get(name).Type = typ
			if typ == "histogram" {
				histFams[name+"_bucket"] = name
				histFams[name+"_sum"] = name
				histFams[name+"_count"] = name
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := s.Name
		if h, ok := histFams[s.Name]; ok {
			fam = h
		}
		f := get(fam)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(line[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("no value in %q", line)
		}
	}
	// A timestamp may trail the value; take the first field.
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(valStr[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("bad label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(s) {
			return fmt.Errorf("label %s: unterminated value", name)
		}
		into[name] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
