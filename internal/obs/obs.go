// Package obs is the library's one telemetry spine: a lightweight
// span tracer, a typed Prometheus-exposition metrics registry, and
// per-stage profiling hooks, shared by ingest, store, pipeline, and
// daemon. It depends on the standard library only, so every internal
// package — core, detect, store — can import it without cycles.
//
// The design constraint is the disabled path: audits run with
// observability off by default, and the bench-regression gate compares
// them against pre-instrumentation baselines, so an un-observed
// StartSpan must cost one context lookup and a nil check — no
// allocation, no clock read, no atomic. Everything on a *Span, a
// StageTimer, or an *Observer is therefore safe (and free) on a nil
// receiver.
//
// Usage: build an Observer from a Tracer (span records) and/or
// StageMetrics (latency + allocated-bytes histograms over a Registry),
// attach it to a context with Observer.Context, and thread that
// context through the funnel. Instrumented code calls
//
//	ctx, span := obs.StartSpan(ctx, obs.StageReplay)
//	defer span.End()
//
// and never checks whether observability is on.
package obs

import (
	"context"
	runtimemetrics "runtime/metrics"
	"sync/atomic"
	"time"
)

// Observer bundles the sinks instrumentation writes to: a Tracer
// collecting span records, StageMetrics feeding the shared registry's
// per-stage histograms, and an optional TimelineIndex assembling
// per-trace span histories. Any sink may be nil; a nil *Observer
// disables everything.
type Observer struct {
	tracer   *Tracer
	stages   *StageMetrics
	timeline *TimelineIndex

	// ids allocates span identity. It lives on the observer (not the
	// tracer) so spans keep linkable IDs when only the timeline sink is
	// on; roots counts span trees for sampling.
	ids   atomic.Uint64
	roots atomic.Uint64
	// sampleN records 1 in sampleN span trees into the tracer (<=1
	// records everything). Stage metrics and the timeline always see
	// every span — sampling only thins the raw export.
	sampleN int64
}

// NewObserver builds an observer over a tracer and/or stage metrics
// (either may be nil).
func NewObserver(tracer *Tracer, stages *StageMetrics) *Observer {
	return &Observer{tracer: tracer, stages: stages}
}

// SetTimeline attaches a per-trace span index as a third sink. Call
// before the observer is shared across goroutines.
func (o *Observer) SetTimeline(ix *TimelineIndex) {
	if o == nil {
		return
	}
	o.timeline = ix
}

// Timeline exposes the observer's timeline index, nil when none is
// attached.
func (o *Observer) Timeline() *TimelineIndex {
	if o == nil {
		return nil
	}
	return o.timeline
}

// SetSample makes the tracer record 1 in n span trees (the whole tree
// is kept or dropped together, so sampled traces stay complete).
// n <= 1 records everything. Call before the observer is shared
// across goroutines.
func (o *Observer) SetSample(n int) {
	if o == nil {
		return
	}
	o.sampleN = int64(n)
}

// Tracer exposes the observer's tracer, nil when tracing is off.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// ctxKey keys the observer and the current span on a context.
type ctxKey int

const (
	observerKey ctxKey = iota
	spanKey
)

// Context attaches the observer to a context; instrumented code down
// the call chain picks it up through StartSpan. A nil observer
// returns ctx unchanged, keeping the disabled path free of context
// layers.
func (o *Observer) Context(ctx context.Context) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey, o)
}

// FromContext recovers the observer attached by Context, nil when the
// context carries none.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}

// StartSpan opens a span named after a funnel stage. When the context
// carries no observer it returns (ctx, nil) after a single context
// lookup, and every method on the nil span is a no-op — the
// disabled-path contract the bench gate rests on. The returned
// context carries the span, so nested StartSpan calls build the
// parent/child tree.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	o, _ := ctx.Value(observerKey).(*Observer)
	if o == nil {
		return ctx, nil
	}
	p, _ := ctx.Value(spanKey).(*Span)
	s := o.newSpan(name, p)
	return context.WithValue(ctx, spanKey, s), s
}

// SpanFromContext recovers the innermost span opened by StartSpan,
// nil when the context carries none — the correlation hook the slog
// LogHandler uses to stamp records with trace/span/stage.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartRoot opens a parentless span outside any context chain — the
// entry point for code that has no context to thread (the ingest
// session loop). Nil-safe.
func (o *Observer) StartRoot(name string) *Span {
	if o == nil {
		return nil
	}
	return o.newSpan(name, nil)
}

// Event records an instant event (a point in time, no duration) —
// e.g. an ingest session's DONE. Nil-safe; events reach the tracer
// and the timeline (when an attr names a trace), never the stage
// histograms.
func (o *Observer) Event(name string, attrs ...Attr) {
	if o == nil || (o.tracer == nil && o.timeline == nil) {
		return
	}
	r := SpanRecord{
		ID:      o.ids.Add(1),
		Name:    name,
		Start:   time.Now(),
		Instant: true,
		Attrs:   attrs,
	}
	if o.tracer != nil {
		o.tracer.record(r)
	}
	if o.timeline != nil {
		o.timeline.record(r)
	}
}

func (o *Observer) newSpan(name string, p *Span) *Span {
	s := &Span{o: o, name: name}
	if o.tracer != nil || o.timeline != nil {
		s.id = o.ids.Add(1)
	}
	if p != nil {
		s.parent, s.root, s.sampled = p.id, p.root, p.sampled
	} else {
		s.root = s.id
		s.sampled = o.sampleRoot()
	}
	s.allocStart = heapAllocBytes()
	s.start = time.Now()
	return s
}

// sampleRoot decides whether a new span tree is exported to the
// tracer. Children inherit the root's decision so a sampled trace is
// always complete.
func (o *Observer) sampleRoot() bool {
	if o.sampleN <= 1 {
		return true
	}
	return o.roots.Add(1)%uint64(o.sampleN) == 1
}

// Span is one timed region of the audit funnel. All methods are
// no-ops on a nil receiver, so instrumented code never branches on
// whether observability is enabled.
type Span struct {
	o          *Observer
	id         uint64
	parent     uint64
	root       uint64
	sampled    bool
	name       string
	start      time.Time
	allocStart uint64
	attrs      []Attr
}

// Attr annotates the span with a key/value pair. Nil-safe.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// ID is the span's identity, 0 on a nil span or when neither tracing
// nor the timeline is on.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// RootID names the span tree (the trace) this span belongs to, 0 on a
// nil span.
func (s *Span) RootID() uint64 {
	if s == nil {
		return 0
	}
	return s.root
}

// Stage is the funnel-stage name the span was opened with, "" on a
// nil span.
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span: wall time and the heap-allocation delta since
// StartSpan are recorded into the tracer and the stage histograms.
// The allocation delta is process-wide (runtime/metrics
// /gc/heap/allocs:bytes), so it is exact for single-worker runs and
// an upper bound when other goroutines allocate concurrently.
// Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	alloc := int64(heapAllocBytes() - s.allocStart)
	if s.o.stages != nil {
		s.o.stages.Observe(s.name, dur, alloc)
	}
	if s.o.tracer == nil && s.o.timeline == nil {
		return
	}
	r := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Root:   s.root,
		Name:   s.name,
		Start:  s.start,
		Dur:    dur,
		Alloc:  alloc,
		Attrs:  s.attrs,
	}
	if s.o.tracer != nil && s.sampled {
		s.o.tracer.record(r)
	}
	if s.o.timeline != nil {
		s.o.timeline.record(r)
	}
}

// StageTimer is the metrics-only sibling of a Span: it feeds the
// stage histograms without producing a trace record, for call sites
// (store decode) that run outside any span tree and would otherwise
// litter the trace with orphans. The zero value is a no-op.
type StageTimer struct {
	stages *StageMetrics
	name   string
	start  time.Time
	alloc  uint64
}

// Stage starts a metrics-only stage timer. Nil-safe: with no observer
// or no stage metrics it returns the zero timer, whose End is free.
func (o *Observer) Stage(name string) StageTimer {
	if o == nil || o.stages == nil {
		return StageTimer{}
	}
	return StageTimer{stages: o.stages, name: name, start: time.Now(), alloc: heapAllocBytes()}
}

// End records the stage's wall time and allocation delta.
func (t StageTimer) End() {
	if t.stages == nil {
		return
	}
	t.stages.Observe(t.name, time.Since(t.start), int64(heapAllocBytes()-t.alloc))
}

// heapAllocBytes reads the cumulative heap allocation counter — the
// cheap (no stop-the-world) runtime/metrics sample behind per-span
// alloc attribution.
func heapAllocBytes() uint64 {
	sample := []runtimemetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	runtimemetrics.Read(sample)
	return sample[0].Value.Uint64()
}
