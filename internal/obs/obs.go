// Package obs is the library's one telemetry spine: a lightweight
// span tracer, a typed Prometheus-exposition metrics registry, and
// per-stage profiling hooks, shared by ingest, store, pipeline, and
// daemon. It depends on the standard library only, so every internal
// package — core, detect, store — can import it without cycles.
//
// The design constraint is the disabled path: audits run with
// observability off by default, and the bench-regression gate compares
// them against pre-instrumentation baselines, so an un-observed
// StartSpan must cost one context lookup and a nil check — no
// allocation, no clock read, no atomic. Everything on a *Span, a
// StageTimer, or an *Observer is therefore safe (and free) on a nil
// receiver.
//
// Usage: build an Observer from a Tracer (span records) and/or
// StageMetrics (latency + allocated-bytes histograms over a Registry),
// attach it to a context with Observer.Context, and thread that
// context through the funnel. Instrumented code calls
//
//	ctx, span := obs.StartSpan(ctx, obs.StageReplay)
//	defer span.End()
//
// and never checks whether observability is on.
package obs

import (
	"context"
	runtimemetrics "runtime/metrics"
	"time"
)

// Observer bundles the two sinks instrumentation writes to: a Tracer
// collecting span records and StageMetrics feeding the shared
// registry's per-stage histograms. Either may be nil; a nil *Observer
// disables everything.
type Observer struct {
	tracer *Tracer
	stages *StageMetrics
}

// NewObserver builds an observer over a tracer and/or stage metrics
// (either may be nil).
func NewObserver(tracer *Tracer, stages *StageMetrics) *Observer {
	return &Observer{tracer: tracer, stages: stages}
}

// Tracer exposes the observer's tracer, nil when tracing is off.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// ctxKey keys the observer and the current span on a context.
type ctxKey int

const (
	observerKey ctxKey = iota
	spanKey
)

// Context attaches the observer to a context; instrumented code down
// the call chain picks it up through StartSpan. A nil observer
// returns ctx unchanged, keeping the disabled path free of context
// layers.
func (o *Observer) Context(ctx context.Context) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey, o)
}

// FromContext recovers the observer attached by Context, nil when the
// context carries none.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}

// StartSpan opens a span named after a funnel stage. When the context
// carries no observer it returns (ctx, nil) after a single context
// lookup, and every method on the nil span is a no-op — the
// disabled-path contract the bench gate rests on. The returned
// context carries the span, so nested StartSpan calls build the
// parent/child tree.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	o, _ := ctx.Value(observerKey).(*Observer)
	if o == nil {
		return ctx, nil
	}
	var parent, root uint64
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		parent, root = p.id, p.root
	}
	s := o.newSpan(name, parent, root)
	return context.WithValue(ctx, spanKey, s), s
}

// StartRoot opens a parentless span outside any context chain — the
// entry point for code that has no context to thread (the ingest
// session loop). Nil-safe.
func (o *Observer) StartRoot(name string) *Span {
	if o == nil {
		return nil
	}
	return o.newSpan(name, 0, 0)
}

// Event records an instant event (a point in time, no duration) —
// e.g. an ingest session's DONE. Nil-safe; events only reach the
// tracer, never the stage histograms.
func (o *Observer) Event(name string) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.record(SpanRecord{
		ID:      o.tracer.nextID(),
		Name:    name,
		Start:   time.Now(),
		Instant: true,
	})
}

func (o *Observer) newSpan(name string, parent, root uint64) *Span {
	s := &Span{o: o, name: name}
	if o.tracer != nil {
		s.id = o.tracer.nextID()
	}
	if root == 0 {
		root = s.id
	}
	s.parent, s.root = parent, root
	s.allocStart = heapAllocBytes()
	s.start = time.Now()
	return s
}

// Span is one timed region of the audit funnel. All methods are
// no-ops on a nil receiver, so instrumented code never branches on
// whether observability is enabled.
type Span struct {
	o          *Observer
	id         uint64
	parent     uint64
	root       uint64
	name       string
	start      time.Time
	allocStart uint64
	attrs      []Attr
}

// Attr annotates the span with a key/value pair. Nil-safe.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span: wall time and the heap-allocation delta since
// StartSpan are recorded into the tracer and the stage histograms.
// The allocation delta is process-wide (runtime/metrics
// /gc/heap/allocs:bytes), so it is exact for single-worker runs and
// an upper bound when other goroutines allocate concurrently.
// Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	alloc := int64(heapAllocBytes() - s.allocStart)
	if s.o.stages != nil {
		s.o.stages.Observe(s.name, dur, alloc)
	}
	if s.o.tracer != nil {
		s.o.tracer.record(SpanRecord{
			ID:     s.id,
			Parent: s.parent,
			Root:   s.root,
			Name:   s.name,
			Start:  s.start,
			Dur:    dur,
			Alloc:  alloc,
			Attrs:  s.attrs,
		})
	}
}

// StageTimer is the metrics-only sibling of a Span: it feeds the
// stage histograms without producing a trace record, for call sites
// (store decode) that run outside any span tree and would otherwise
// litter the trace with orphans. The zero value is a no-op.
type StageTimer struct {
	stages *StageMetrics
	name   string
	start  time.Time
	alloc  uint64
}

// Stage starts a metrics-only stage timer. Nil-safe: with no observer
// or no stage metrics it returns the zero timer, whose End is free.
func (o *Observer) Stage(name string) StageTimer {
	if o == nil || o.stages == nil {
		return StageTimer{}
	}
	return StageTimer{stages: o.stages, name: name, start: time.Now(), alloc: heapAllocBytes()}
}

// End records the stage's wall time and allocation delta.
func (t StageTimer) End() {
	if t.stages == nil {
		return
	}
	t.stages.Observe(t.name, time.Since(t.start), int64(heapAllocBytes()-t.alloc))
}

// heapAllocBytes reads the cumulative heap allocation counter — the
// cheap (no stop-the-world) runtime/metrics sample behind per-span
// alloc attribution.
func heapAllocBytes() uint64 {
	sample := []runtimemetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	runtimemetrics.Read(sample)
	return sample[0].Value.Uint64()
}
