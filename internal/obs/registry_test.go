package obs

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionRoundTrip renders a registry holding every metric
// kind — including label values that need escaping — and parses the
// output back, asserting names, types, help, labels, and values all
// survive.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.")
	c.Add(7)
	g := r.Gauge("test_depth", "A gauge.")
	g.Set(3.5)
	cv := r.CounterVec("test_labeled_total", "A labeled counter.", "outcome")
	cv.With("clean").Add(2)
	cv.With(`we"ird\label` + "\nvalue").Inc()
	h := r.Histogram("test_seconds", "A histogram.", []float64{0.1, 1, 10})
	h.Observe(0.1) // le is inclusive: lands in the 0.1 bucket
	h.Observe(0.5)
	h.Observe(100) // overflow
	r.GaugeFunc("test_func", "A func gauge.", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := b.String()

	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, text)
	}

	want := map[string]string{
		"test_total":         "counter",
		"test_depth":         "gauge",
		"test_labeled_total": "counter",
		"test_seconds":       "histogram",
		"test_func":          "gauge",
	}
	for name, typ := range want {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %q missing from scrape:\n%s", name, text)
		}
		if f.Type != typ {
			t.Errorf("family %q: type %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("family %q: no help text", name)
		}
	}

	if got := fams["test_total"].Samples[0].Value; got != 7 {
		t.Errorf("test_total = %v, want 7", got)
	}
	if got := fams["test_depth"].Samples[0].Value; got != 3.5 {
		t.Errorf("test_depth = %v, want 3.5", got)
	}
	if got := fams["test_func"].Samples[0].Value; got != 42 {
		t.Errorf("test_func = %v, want 42", got)
	}

	// The escaped label value must round-trip byte-identically.
	weird := `we"ird\label` + "\nvalue"
	found := false
	for _, s := range fams["test_labeled_total"].Samples {
		if s.Labels["outcome"] == weird {
			found = true
			if s.Value != 1 {
				t.Errorf("weird-labeled counter = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip:\n%s", text)
	}

	// Histogram: cumulative buckets, inclusive le, +Inf, sum, count.
	buckets := map[string]float64{}
	var sum, count float64
	for _, s := range fams["test_seconds"].Samples {
		switch s.Name {
		case "test_seconds_bucket":
			buckets[s.Labels["le"]] = s.Value
		case "test_seconds_sum":
			sum = s.Value
		case "test_seconds_count":
			count = s.Value
		}
	}
	for le, want := range map[string]float64{"0.1": 1, "1": 2, "10": 2, "+Inf": 3} {
		if buckets[le] != want {
			t.Errorf("bucket le=%s = %v, want %v", le, buckets[le], want)
		}
	}
	if math.Abs(sum-100.6) > 1e-9 {
		t.Errorf("sum = %v, want 100.6", sum)
	}
	if count != 3 {
		t.Errorf("count = %v, want 3", count)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestUnlabeledRenderFormat(t *testing.T) {
	// The daemon tests (and the CI smoke's awk) match the exact
	// "name value" form for unlabeled metrics — pin it.
	r := NewRegistry()
	r.Counter("tdrauditd_traces_audited_total", "Traces that produced a verdict.")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tdrauditd_traces_audited_total 0\n") {
		t.Errorf("unlabeled counter not rendered as 'name value':\n%s", b.String())
	}
}

func TestHistogramVecEach(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("stage_seconds", "h", []float64{1}, "stage")
	hv.With("replay").Observe(0.5)
	hv.With("compare").Observe(2)
	seen := map[string]uint64{}
	hv.Each(func(lvs []string, h *Histogram) {
		if len(lvs) != 1 {
			t.Fatalf("label values = %v", lvs)
		}
		seen[lvs[0]] = h.Count()
	})
	if seen["replay"] != 1 || seen["compare"] != 1 {
		t.Errorf("Each saw %v", seen)
	}
}
