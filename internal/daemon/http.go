package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"sanity/internal/ingest"
	"sanity/internal/pipeline"
)

// verdictLog is the daemon's in-memory verdict history plus a
// broadcast for followers. Appends never block on slow readers: each
// append closes the current update channel and installs a fresh one,
// so every follower wakes, snapshots what it has not yet sent, and
// goes back to waiting — the goroutine-free follow pattern.
type verdictLog struct {
	mu       sync.Mutex
	verdicts []pipeline.Verdict
	// dropped counts verdicts rotated out of the retention window, so
	// follower offsets stay stable across rotation.
	dropped int
	limit   int
	updated chan struct{}
	closed  bool
}

func newVerdictLog(limit int) *verdictLog {
	return &verdictLog{limit: limit, updated: make(chan struct{})}
}

// append records a verdict and wakes every follower.
func (l *verdictLog) append(v pipeline.Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.verdicts = append(l.verdicts, v)
	if len(l.verdicts) > l.limit {
		n := len(l.verdicts) - l.limit
		l.verdicts = append([]pipeline.Verdict(nil), l.verdicts[n:]...)
		l.dropped += n
	}
	close(l.updated)
	l.updated = make(chan struct{})
}

// close wakes every follower one last time; snapshots after close
// report done, so /verdicts?follow=1 streams terminate during
// shutdown instead of outliving the daemon.
func (l *verdictLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.updated)
	l.updated = make(chan struct{})
}

// snapshot returns the verdicts at absolute offset from onward, the
// next offset to resume from, a channel that closes on the next
// append, and whether the log has closed. Offsets before the
// retention window are clamped forward.
func (l *verdictLog) snapshot(from int) (vs []pipeline.Verdict, next int, updated <-chan struct{}, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.dropped {
		from = l.dropped
	}
	if i := from - l.dropped; i < len(l.verdicts) {
		vs = append([]pipeline.Verdict(nil), l.verdicts[i:]...)
	}
	return vs, from + len(vs), l.updated, l.closed
}

// httpHandler assembles the daemon's HTTP surface.
func (d *Daemon) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /verdicts", d.handleVerdicts)
	mux.HandleFunc("GET /corpora", d.handleCorpora)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

// handleVerdicts streams the verdict log as NDJSON — one verdict per
// line in audit order, the same deterministic encoding tdraudit -json
// emits. With ?follow=1 the response stays open and new verdicts are
// flushed as they land, until the client disconnects or the daemon
// shuts down. With ?explain=1 each line carries the verdict's
// evidence trail (requires the auditor to run with WithExplain);
// without it the explain detail is stripped, keeping the default
// stream's shape stable for existing consumers.
func (d *Daemon) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") == "1"
	explain := r.URL.Query().Get("explain") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	from := 0
	for {
		vs, next, updated, done := d.vlog.snapshot(from)
		for _, v := range vs {
			if !explain {
				v.Explain = nil
			}
			if err := enc.Encode(v); err != nil {
				return
			}
		}
		from = next
		if len(vs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if !follow || done {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// corpusStatus is one /corpora response.
type corpusStatus struct {
	Dir     string         `json:"dir"`
	Shards  int            `json:"shards"`
	Traces  int            `json:"traces"`
	States  map[string]int `json:"states"`
	Ingest  *ingest.Stats  `json:"ingest,omitempty"`
	Audited uint64         `json:"audited"`
}

// handleCorpora reports the spool's audit-state census as JSON.
func (d *Daemon) handleCorpora(w http.ResponseWriter, r *http.Request) {
	states := d.st.AuditStates()
	labeled := make(map[string]int, len(states))
	total := 0
	for k, n := range states {
		labeled[stateLabel(k)] = n
		total += n
	}
	audited := d.met.audited.Value()
	out := corpusStatus{
		Dir:     d.st.Dir(),
		Shards:  len(d.st.Shards()),
		Traces:  total,
		States:  labeled,
		Audited: audited,
	}
	if d.ing != nil {
		s := d.ing.Stats()
		out.Ingest = &s
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, fmt.Sprintf("encoding status: %v", err), http.StatusInternalServerError)
	}
}

// handleMetrics renders the shared registry in Prometheus text
// exposition format: daemon counters, the claim-to-verdict latency
// histogram, the per-stage latency/alloc histograms, and the
// scrape-time manifest/ingest families.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := d.met.reg.WritePrometheus(w); err != nil {
		d.logf("tdrauditd: rendering /metrics: %v", err)
	}
}
