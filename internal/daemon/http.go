package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"sanity/internal/ingest"
	"sanity/internal/obs"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// verdictLog is the daemon's in-memory verdict history plus a
// broadcast for followers. Appends never block on slow readers: each
// append closes the current update channel and installs a fresh one,
// so every follower wakes, snapshots what it has not yet sent, and
// goes back to waiting — the goroutine-free follow pattern.
type verdictLog struct {
	mu       sync.Mutex
	verdicts []pipeline.Verdict
	// dropped counts verdicts rotated out of the retention window, so
	// follower offsets stay stable across rotation.
	dropped int
	limit   int
	updated chan struct{}
	closed  bool
}

func newVerdictLog(limit int) *verdictLog {
	return &verdictLog{limit: limit, updated: make(chan struct{})}
}

// append records a verdict and wakes every follower.
func (l *verdictLog) append(v pipeline.Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.verdicts = append(l.verdicts, v)
	if len(l.verdicts) > l.limit {
		n := len(l.verdicts) - l.limit
		l.verdicts = append([]pipeline.Verdict(nil), l.verdicts[n:]...)
		l.dropped += n
	}
	close(l.updated)
	l.updated = make(chan struct{})
}

// close wakes every follower one last time; snapshots after close
// report done, so /verdicts?follow=1 streams terminate during
// shutdown instead of outliving the daemon.
func (l *verdictLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.updated)
	l.updated = make(chan struct{})
}

// snapshot returns the verdicts at absolute offset from onward, the
// next offset to resume from, a channel that closes on the next
// append, and whether the log has closed. Offsets before the
// retention window are clamped forward.
func (l *verdictLog) snapshot(from int) (vs []pipeline.Verdict, next int, updated <-chan struct{}, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.dropped {
		from = l.dropped
	}
	if i := from - l.dropped; i < len(l.verdicts) {
		vs = append([]pipeline.Verdict(nil), l.verdicts[i:]...)
	}
	return vs, from + len(vs), l.updated, l.closed
}

// find returns the most recent retained verdict for one job ID.
func (l *verdictLog) find(jobID string) (pipeline.Verdict, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.verdicts) - 1; i >= 0; i-- {
		if l.verdicts[i].JobID == jobID {
			return l.verdicts[i], true
		}
	}
	return pipeline.Verdict{}, false
}

// httpHandler assembles the daemon's HTTP surface.
func (d *Daemon) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /verdicts", d.handleVerdicts)
	mux.HandleFunc("GET /corpora", d.handleCorpora)
	mux.HandleFunc("GET /triage", d.handleTriage)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /logz", d.handleLogz)
	mux.HandleFunc("GET /traces/{id}/timeline", d.handleTimeline)
	return mux
}

// handleHealthz is liveness: the process is up and serving HTTP.
// Always 200 — orchestrators restart on failure to answer, not on
// body content.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readiness evaluates the /readyz checks: the spool store is open,
// the ingest listener is up (when one is configured), the first
// spool sweep has completed, and the daemon is not draining.
func (d *Daemon) readiness() (ok bool, checks map[string]bool) {
	checks = map[string]bool{
		"store":       d.st != nil,
		"ingest":      d.cfg.IngestAddr == "" || d.ing != nil,
		"firstSweep":  d.firstSweep.Load(),
		"notDraining": !d.draining.Load(),
	}
	ok = true
	for _, c := range checks {
		ok = ok && c
	}
	return ok, checks
}

// handleReadyz is readiness for load balancers: 200 once the first
// sweep has reconciled the spool, 503 before that and — critically —
// 503 again the moment Stop begins draining, while the rest of the
// surface still answers, so traffic shifts away before the verdict
// log closes.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ok, checks := d.readiness()
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Ready  bool            `json:"ready"`
		Checks map[string]bool `json:"checks"`
	}{ok, checks})
}

// handleLogz serves the newest entries of the in-memory log ring as
// NDJSON (JSON per record regardless of the stderr format), oldest
// first. ?n= bounds the count (default 100).
func (d *Daemon) handleLogz(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad n=%q", q), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, line := range d.logRing.Last(n) {
		w.Write(line)
	}
}

// traceTimeline is one /traces/{id}/timeline response: manifest
// identity and audit state, the verdict when still retained, and the
// assembled span history (ingest PUT, sweep/claim/resolve/select,
// and the per-stage audit spans), start-ordered.
type traceTimeline struct {
	Trace          string            `json:"trace"`
	Shard          string            `json:"shard,omitempty"`
	File           string            `json:"file,omitempty"`
	Role           string            `json:"role,omitempty"`
	State          string            `json:"state"`
	Triage         *triage.Score     `json:"triage,omitempty"`
	Verdict        *pipeline.Verdict `json:"verdict,omitempty"`
	Spans          []obs.SpanRecord  `json:"spans"`
	TruncatedSpans int               `json:"truncatedSpans,omitempty"`
}

// handleTimeline assembles one trace's full life. 404 when the ID is
// neither in the manifest nor in the span index.
func (d *Daemon) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	out := traceTimeline{Trace: id, State: "unknown", Spans: []obs.SpanRecord{}}
	found := false
	for _, e := range d.st.Entries() {
		if e.ID == id {
			out.Shard, out.File, out.Role = e.Shard, e.File, e.Role
			out.State = stateLabel(e.Audit)
			out.Triage = e.Triage
			found = true
			break
		}
	}
	if tl, ok := d.timeline.Timeline(id); ok {
		out.Spans = tl.Spans
		out.TruncatedSpans = tl.Truncated
		found = true
	}
	if v, ok := d.vlog.find(id); ok {
		v.Explain = nil
		out.Verdict = &v
		found = true
	}
	if !found {
		http.Error(w, fmt.Sprintf("unknown trace %q", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		d.log.Error("encoding timeline failed", "id", id, "err", err)
	}
}

// handleVerdicts streams the verdict log as NDJSON — one verdict per
// line in audit order, the same deterministic encoding tdraudit -json
// emits. With ?follow=1 the response stays open and new verdicts are
// flushed as they land, until the client disconnects or the daemon
// shuts down. With ?explain=1 each line carries the verdict's
// evidence trail (requires the auditor to run with WithExplain);
// without it the explain detail is stripped, keeping the default
// stream's shape stable for existing consumers.
func (d *Daemon) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") == "1"
	explain := r.URL.Query().Get("explain") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	from := 0
	for {
		vs, next, updated, done := d.vlog.snapshot(from)
		for _, v := range vs {
			if !explain {
				v.Explain = nil
			}
			if err := enc.Encode(v); err != nil {
				return
			}
		}
		from = next
		if len(vs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if !follow || done {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// corpusStatus is one /corpora response.
type corpusStatus struct {
	Dir     string         `json:"dir"`
	Shards  int            `json:"shards"`
	Traces  int            `json:"traces"`
	States  map[string]int `json:"states"`
	Ingest  *ingest.Stats  `json:"ingest,omitempty"`
	Audited uint64         `json:"audited"`
}

// handleCorpora reports the spool's audit-state census as JSON.
func (d *Daemon) handleCorpora(w http.ResponseWriter, r *http.Request) {
	states := d.st.AuditStates()
	labeled := make(map[string]int, len(states))
	total := 0
	for k, n := range states {
		labeled[stateLabel(k)] = n
		total += n
	}
	audited := d.met.audited.Value()
	out := corpusStatus{
		Dir:     d.st.Dir(),
		Shards:  len(d.st.Shards()),
		Traces:  total,
		States:  labeled,
		Audited: audited,
	}
	if d.ing != nil {
		s := d.ing.Stats()
		out.Ingest = &s
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, fmt.Sprintf("encoding status: %v", err), http.StatusInternalServerError)
	}
}

// triageTrace is one test trace's row in the /triage census.
type triageTrace struct {
	ID        string  `json:"id"`
	Shard     string  `json:"shard"`
	State     string  `json:"state"`
	Scored    bool    `json:"scored"`
	Suspicion float64 `json:"suspicion"`
	Band      string  `json:"band"`
}

// triageStatus is the /triage response: the funnel's knobs, a census
// of the scored population, and every test trace in claim-priority
// order (descending suspicion, manifest order on ties — the order an
// idle daemon would audit them in, ignoring aging).
type triageStatus struct {
	Enabled    bool           `json:"enabled"`
	ClaimBatch int            `json:"claimBatch"`
	AgingBoost float64        `json:"agingBoost"`
	Scored     int            `json:"scored"`
	Unscored   int            `json:"unscored"`
	Bands      map[string]int `json:"bands"`
	Traces     []triageTrace  `json:"traces"`
}

// handleTriage reports the triage census as JSON.
func (d *Daemon) handleTriage(w http.ResponseWriter, r *http.Request) {
	out := triageStatus{
		Enabled:    !d.cfg.DisableTriage,
		ClaimBatch: d.cfg.ClaimBatch,
		AgingBoost: d.cfg.AgingBoost,
		Bands:      map[string]int{"low": 0, "neutral": 0, "high": 0},
		Traces:     []triageTrace{},
	}
	for _, e := range d.st.Entries() {
		if e.Role != store.RoleTest {
			continue
		}
		s := e.Suspicion()
		if e.Triage != nil {
			out.Scored++
		} else {
			out.Unscored++
		}
		out.Bands[triage.Band(s)]++
		out.Traces = append(out.Traces, triageTrace{
			ID:        e.ID,
			Shard:     e.Shard,
			State:     stateLabel(e.Audit),
			Scored:    e.Triage != nil,
			Suspicion: s,
			Band:      triage.Band(s),
		})
	}
	sort.SliceStable(out.Traces, func(a, b int) bool {
		return out.Traces[a].Suspicion > out.Traces[b].Suspicion
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, fmt.Sprintf("encoding triage status: %v", err), http.StatusInternalServerError)
	}
}

// handleMetrics renders the shared registry in Prometheus text
// exposition format: daemon counters, the claim-to-verdict latency
// histogram, the per-stage latency/alloc histograms, and the
// scrape-time manifest/ingest families.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := d.met.reg.WritePrometheus(w); err != nil {
		d.log.Error("rendering /metrics failed", "err", err)
	}
}
