package daemon_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"sanity/internal/audit"
	"sanity/internal/daemon"
	"sanity/internal/obs"
	"sanity/internal/store"
)

// TestDaemonObservability is the telemetry spine end to end, daemon
// edition: a daemon with tracing, explain, and the pprof listener all
// on audits a spooled corpus, after which
//
//   - /metrics parses as Prometheus text exposition and carries the
//     daemon families AND the per-stage latency/alloc histograms,
//   - /verdicts strips explain by default and carries it with
//     ?explain=1,
//   - the trace dir holds a valid Chrome trace_event file plus an
//     NDJSON span log,
//   - /debug/pprof/ answers on the opt-in listener only,
//
// and Stop leaves no goroutine behind.
func TestDaemonObservability(t *testing.T) {
	baseline := runtime.NumGoroutine()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	dir := filepath.Join(t.TempDir(), "spool")
	st := exportSynthetic(t, dir, testSizes, 99)
	traceDir := filepath.Join(t.TempDir(), "traces")

	d, err := daemon.New(daemon.Config{
		Dir:       dir,
		Auditor:   newAuditor(t, audit.WithExplain()),
		HTTPAddr:  "127.0.0.1:0",
		DebugAddr: "127.0.0.1:0",
		TraceDir:  traceDir,
		Poll:      20 * time.Millisecond,
		Logf:      quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	base := "http://" + d.HTTPAddr().String()

	wantAudited := countTest(st)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if states := d.Store().AuditStates(); states[store.AuditAudited] == wantAudited {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never audited the corpus: %v", d.Store().AuditStates())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The scrape round-trips through the exposition parser, and every
	// family the daemon promises is present with its declared type.
	body := httpGet(t, client, base+"/metrics")
	fams, err := obs.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("GET /metrics does not parse as text exposition: %v\n%s", err, body)
	}
	wantFams := map[string]string{
		"tdrauditd_traces_audited_total":  "counter",
		"tdrauditd_verdicts_total":        "counter",
		"tdrauditd_traces_corrupt_total":  "counter",
		"tdrauditd_plan_failures_total":   "counter",
		"tdrauditd_audit_latency_seconds": "histogram",
		"tdrauditd_queue_depth":           "gauge",
		"tdrauditd_store_traces":          "gauge",
		"sanity_stage_seconds":            "histogram",
		"sanity_stage_alloc_bytes":        "histogram",
	}
	for name, typ := range wantFams {
		f, ok := fams[name]
		if !ok {
			t.Fatalf("/metrics lacks family %s:\n%s", name, body)
		}
		if f.Type != typ {
			t.Errorf("%s has type %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("%s has no HELP line", name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("%s has no samples", name)
		}
	}

	// The stage histograms decompose the audit the daemon just ran:
	// the synthetic corpus is IPD-only (statistical detectors, no
	// engine replay), so sweep/claim/trace/stat/verdict must each have
	// recorded wantAudited observations (1 per sweep for sweep/claim).
	stageCount := func(stage string) float64 {
		for _, s := range fams["sanity_stage_seconds"].Samples {
			if strings.HasSuffix(s.Name, "_count") && s.Labels["stage"] == stage {
				return s.Value
			}
		}
		return -1
	}
	for _, stage := range []string{obs.StageTrace, obs.StageStat, obs.StageVerdict} {
		if got := stageCount(stage); got != float64(wantAudited) {
			t.Errorf("sanity_stage_seconds{stage=%q} count = %v, want %d", stage, got, wantAudited)
		}
	}
	for _, stage := range []string{obs.StageSweep, obs.StageClaim} {
		if got := stageCount(stage); got < 1 {
			t.Errorf("sanity_stage_seconds{stage=%q} count = %v, want >= 1", stage, got)
		}
	}

	// Explain gating: the default stream has no explain key; ?explain=1
	// carries the evidence trail the auditor recorded.
	plain := httpGet(t, client, base+"/verdicts")
	if strings.Contains(plain, `"explain"`) {
		t.Fatalf("GET /verdicts leaks explain without ?explain=1:\n%s", plain)
	}
	explained := httpGet(t, client, base+"/verdicts?explain=1")
	sc := bufio.NewScanner(strings.NewReader(explained))
	lines := 0
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		lines++
		var v struct {
			Explain *struct {
				WindowMode string `json:"windowMode"`
			} `json:"explain"`
		}
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad explained verdict line %q: %v", sc.Text(), err)
		}
		if v.Explain == nil || v.Explain.WindowMode == "" {
			t.Fatalf("verdict line lacks an explain trail: %s", sc.Text())
		}
	}
	if lines != wantAudited {
		t.Fatalf("GET /verdicts?explain=1 returned %d lines, want %d", lines, wantAudited)
	}

	// The opt-in pprof listener answers on its own port.
	pprofBody := httpGet(t, client, "http://"+d.DebugAddr().String()+"/debug/pprof/")
	if !strings.Contains(pprofBody, "goroutine") {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%s", pprofBody)
	}

	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)

	// The trace dir: at least one per-sweep Chrome trace_event file
	// that parses, with every event under pid 1, plus the cumulative
	// NDJSON span log whose lines each decode to a SpanRecord.
	chromeFiles, err := filepath.Glob(filepath.Join(traceDir, "sweep-*.trace.json"))
	if err != nil || len(chromeFiles) == 0 {
		t.Fatalf("no sweep-*.trace.json in %s (err=%v)", traceDir, err)
	}
	totalEvents := 0
	for _, path := range chromeFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tf struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Ph   string  `json:"ph"`
				Pid  int     `json:"pid"`
				Ts   float64 `json:"ts"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &tf); err != nil {
			t.Fatalf("%s is not valid trace_event JSON: %v", path, err)
		}
		for _, ev := range tf.TraceEvents {
			if ev.Name == "" || (ev.Ph != "X" && ev.Ph != "i") || ev.Pid != 1 {
				t.Fatalf("%s has a malformed event: %+v", path, ev)
			}
		}
		totalEvents += len(tf.TraceEvents)
	}
	if totalEvents == 0 {
		t.Fatal("trace files carry no events")
	}
	ndjson, err := os.Open(filepath.Join(traceDir, "spans.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer ndjson.Close()
	spans := 0
	sc = bufio.NewScanner(ndjson)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad spans.ndjson line %q: %v", sc.Text(), err)
		}
		if rec.Name == "" || rec.Root == 0 {
			t.Fatalf("span record missing name or root: %q", sc.Text())
		}
		spans++
	}
	if spans != totalEvents {
		t.Fatalf("spans.ndjson has %d records, Chrome files have %d events", spans, totalEvents)
	}
}
