package daemon_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sanity/internal/audit"
	"sanity/internal/daemon"
	"sanity/internal/fixtures"
	"sanity/internal/ingest"
	"sanity/internal/store"
)

// exportDense materializes a corpus of benign traces plus the dense
// covert channels only (IPCTC — every packet modulated, the channel
// the triage ensemble separates essentially perfectly). Priority
// tests need "covert ranks above benign" to hold trace-by-trace, not
// just in AUC, so the designed-to-evade needle stays out.
func exportDense(t testing.TB, dir string, benign, covert, packets int, seed uint64) *store.Store {
	t.Helper()
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 4, Benign: benign, Covert: covert, Packets: packets}, seed)
	if err != nil {
		t.Fatal(err)
	}
	kept := set.Traces[:0]
	for _, lt := range set.Traces {
		if lt.Channel == "" || lt.Channel == "ipctc" {
			kept = append(kept, lt)
		}
	}
	set.Traces = kept
	st, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return st
}

// triageCensus is the GET /triage response shape the tests decode.
type triageCensus struct {
	Enabled    bool           `json:"enabled"`
	ClaimBatch int            `json:"claimBatch"`
	AgingBoost float64        `json:"agingBoost"`
	Scored     int            `json:"scored"`
	Unscored   int            `json:"unscored"`
	Bands      map[string]int `json:"bands"`
	Traces     []struct {
		ID        string  `json:"id"`
		State     string  `json:"state"`
		Scored    bool    `json:"scored"`
		Suspicion float64 `json:"suspicion"`
		Band      string  `json:"band"`
	} `json:"traces"`
}

// waitAudited polls the metrics page until want traces have verdicts.
func waitAudited(t testing.TB, client *http.Client, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		body := httpGet(t, client, base+"/metrics")
		if v, ok := metricValue(body, "tdrauditd_traces_audited_total"); ok && v == fmt.Sprint(want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never audited %d traces; metrics:\n%s", want, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonPriorityFunnel is the triage funnel end to end: a mixed
// benign/covert batch lands over ingest in arbitrary (manifest)
// order, every trace is scored during upload, and the single
// DONE-triggered sweep claims — and therefore audits and streams —
// the covert traces first, in exactly the descending-suspicion order
// GET /triage reports.
func TestDaemonPriorityFunnel(t *testing.T) {
	client := &http.Client{}
	defer client.CloseIdleConnections()

	src := exportDense(t, filepath.Join(t.TempDir(), "src"), 3, 2, 256, 31)
	wantAudited := countTest(src)
	d, err := daemon.New(daemon.Config{
		Dir:        filepath.Join(t.TempDir(), "spool"),
		Auditor:    newAuditor(t),
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Ingest:     ingest.Options{IdleTimeout: time.Minute},
		Poll:       10 * time.Second, // one DONE-triggered sweep claims everything
		Logf:       quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	base := "http://" + d.HTTPAddr().String()

	if _, err := ingest.Push(d.IngestAddr().String(), src); err != nil {
		t.Fatal(err)
	}
	waitAudited(t, client, base, wantAudited)

	// The census: every test trace scored during ingest, sorted by
	// descending suspicion, with the covert traces in the high band at
	// the top and every benign one below them.
	var census triageCensus
	if err := json.Unmarshal([]byte(httpGet(t, client, base+"/triage")), &census); err != nil {
		t.Fatal(err)
	}
	if !census.Enabled || census.Scored != wantAudited || census.Unscored != 0 {
		t.Fatalf("census = %+v, want %d scored with triage enabled", census, wantAudited)
	}
	if len(census.Traces) != wantAudited {
		t.Fatalf("census lists %d traces, want %d", len(census.Traces), wantAudited)
	}
	for i := 1; i < len(census.Traces); i++ {
		if census.Traces[i].Suspicion > census.Traces[i-1].Suspicion {
			t.Fatalf("census not sorted by suspicion: %+v", census.Traces)
		}
	}
	for i, tr := range census.Traces {
		covert := strings.HasPrefix(tr.ID, "ipctc-")
		if i < 2 && !covert {
			t.Fatalf("census rank %d is %q (suspicion %.3f), want a covert trace first:\n%+v", i, tr.ID, tr.Suspicion, census.Traces)
		}
		if i >= 2 && covert {
			t.Fatalf("covert trace %q ranked %d, below a benign one:\n%+v", tr.ID, i, census.Traces)
		}
	}

	// The verdict stream is the claim order: descending suspicion,
	// covert first — the funnel spent its replay budget on the most
	// suspicious traces before touching the benign bulk.
	verdicts := decodeVerdicts(t, httpGet(t, client, base+"/verdicts"))
	if len(verdicts) != wantAudited {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), wantAudited)
	}
	for i, v := range verdicts {
		if v.ID != census.Traces[i].ID {
			t.Fatalf("verdict %d audited %q, want census order %q\nverdicts: %+v\ncensus: %+v",
				i, v.ID, census.Traces[i].ID, verdicts, census.Traces)
		}
	}

	// Triage flowed into the metrics and the per-trace timeline.
	body := httpGet(t, client, base+"/metrics")
	if v, _ := metricValue(body, "sanity_triage_scored_total"); v != fmt.Sprint(wantAudited) {
		t.Fatalf("sanity_triage_scored_total = %q, want %d", v, wantAudited)
	}
	if !strings.Contains(body, `sanity_triage_backlog{band="high"} 0`) {
		t.Fatalf("metrics missing drained triage backlog:\n%s", body)
	}
	timeline := httpGet(t, client, base+"/traces/"+census.Traces[0].ID+"/timeline")
	if !strings.Contains(timeline, `"triage"`) || !strings.Contains(timeline, `"suspicion"`) {
		t.Fatalf("timeline for %q carries no triage score:\n%s", census.Traces[0].ID, timeline)
	}

	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestDaemonClaimBatchDrains: a ClaimBatch smaller than the landing
// still drains the whole backlog (each sweep re-wakes the watcher),
// the highest-suspicion traces go in the first batch, and nothing is
// audited twice.
func TestDaemonClaimBatchDrains(t *testing.T) {
	client := &http.Client{}
	defer client.CloseIdleConnections()
	src := exportDense(t, filepath.Join(t.TempDir(), "src"), 4, 2, 256, 53)
	wantAudited := countTest(src)
	d, err := daemon.New(daemon.Config{
		Dir:        filepath.Join(t.TempDir(), "spool"),
		Auditor:    newAuditor(t),
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		ClaimBatch: 2,
		Poll:       10 * time.Second, // draining must ride the self-notify, not the ticker
		Logf:       quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	base := "http://" + d.HTTPAddr().String()

	if _, err := ingest.Push(d.IngestAddr().String(), src); err != nil {
		t.Fatal(err)
	}
	waitAudited(t, client, base, wantAudited)

	verdicts := decodeVerdicts(t, httpGet(t, client, base+"/verdicts"))
	if len(verdicts) != wantAudited {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), wantAudited)
	}
	seen := map[string]bool{}
	for _, v := range verdicts {
		if seen[v.ID] {
			t.Fatalf("trace %q audited twice", v.ID)
		}
		seen[v.ID] = true
	}
	// The two covert traces outscore every benign one, so the first
	// (batch-limited) sweep must have claimed exactly them.
	for i := 0; i < 2; i++ {
		if !strings.HasPrefix(verdicts[i].ID, "ipctc-") {
			t.Fatalf("verdict %d is %q, want the covert traces in the first claim batch: %+v", i, verdicts[i].ID, verdicts)
		}
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestDaemonVerdictsMatchUntriaged pins the funnel's safety property:
// triage reorders the audit queue but never changes a verdict. The
// same corpus audited by a triaged daemon and by a plain un-triaged
// plan must produce byte-identical verdict encodings per trace —
// ordering (and the order-dependent index field) aside.
func TestDaemonVerdictsMatchUntriaged(t *testing.T) {
	client := &http.Client{}
	defer client.CloseIdleConnections()
	srcDir := filepath.Join(t.TempDir(), "src")
	src := exportSynthetic(t, srcDir, testSizes, 99)
	wantAudited := countTest(src)

	// Reference: a plain plan over the same corpus, no triage anywhere.
	plan, err := newAuditor(t).Plan(context.Background(), audit.Dir(srcDir))
	if err != nil {
		t.Fatal(err)
	}
	results, err := plan.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(results.Verdicts))
	for _, v := range results.Verdicts {
		want[v.JobID] = canonicalVerdictJSON(t, mustJSON(t, v))
	}

	d, err := daemon.New(daemon.Config{
		Dir:        filepath.Join(t.TempDir(), "spool"),
		Auditor:    newAuditor(t),
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Poll:       10 * time.Second,
		Logf:       quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	base := "http://" + d.HTTPAddr().String()
	if _, err := ingest.Push(d.IngestAddr().String(), src); err != nil {
		t.Fatal(err)
	}
	waitAudited(t, client, base, wantAudited)

	lines := strings.Split(strings.TrimSpace(httpGet(t, client, base+"/verdicts")), "\n")
	if len(lines) != len(want) {
		t.Fatalf("daemon streamed %d verdicts, reference produced %d", len(lines), len(want))
	}
	for _, line := range lines {
		var probe struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad verdict line %q: %v", line, err)
		}
		ref, ok := want[probe.ID]
		if !ok {
			t.Fatalf("daemon audited %q, which the reference never saw", probe.ID)
		}
		if got := canonicalVerdictJSON(t, line); got != ref {
			t.Errorf("verdict for %q diverged:\ntriaged:   %s\nuntriaged: %s", probe.ID, got, ref)
		}
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// canonicalVerdictJSON re-encodes one verdict JSON object with its
// order-dependent index field dropped and keys sorted (encoding/json
// sorts map keys), so two encodings of the same verdict compare equal
// regardless of where in their streams they appeared.
func canonicalVerdictJSON(t testing.TB, line string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("bad verdict JSON %q: %v", line, err)
	}
	delete(m, "index")
	return mustJSON(t, m)
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
