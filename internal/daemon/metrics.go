package daemon

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"sanity/internal/ingest"
	"sanity/internal/pipeline"
	"sanity/internal/stats"
	"sanity/internal/store"
)

// metrics is the daemon's lifetime instrumentation, rendered in
// Prometheus text exposition format on GET /metrics. Hand-rolled — no
// client library dependency — because the surface is a handful of
// counters and two latency quantiles.
type metrics struct {
	mu sync.Mutex

	audited      uint64 // traces that produced a verdict
	suspicious   uint64
	clean        uint64
	errored      uint64 // verdicts carrying a detector error
	corruptN     uint64 // claimed traces failed before auditing
	planFailures uint64

	// latencies holds claim→verdict wall times (seconds) for the
	// quantile gauges, bounded so a long-lived daemon's scrape cost
	// stays flat; the recent window is what an operator wants anyway.
	latencies []float64
}

const latencyWindow = 4096

func newMetrics() *metrics {
	return &metrics{}
}

// observe records one verdict and its claim→verdict latency.
func (m *metrics) observe(v pipeline.Verdict, lat time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.audited++
	switch {
	case v.Err != "":
		m.errored++
	case v.Suspicious:
		m.suspicious++
	default:
		m.clean++
	}
	if len(m.latencies) >= latencyWindow {
		m.latencies = m.latencies[1:]
	}
	m.latencies = append(m.latencies, lat.Seconds())
}

// corrupt records a claimed trace that failed before auditing.
func (m *metrics) corrupt() {
	m.mu.Lock()
	m.corruptN++
	m.mu.Unlock()
}

// planFailure records a sweep whose plan could not be built.
func (m *metrics) planFailure() {
	m.mu.Lock()
	m.planFailures++
	m.mu.Unlock()
}

// stateLabel maps the store's audit-state constants ("" = pending)
// onto Prometheus label values.
func stateLabel(state string) string {
	if state == store.AuditPending {
		return "pending"
	}
	return state
}

// render emits the Prometheus text format. states is the store's
// audit-state census (keyed by the store constants), ing the embedded
// ingest server's counters (zero when no listener is configured).
func (m *metrics) render(states map[string]int, ing ingest.Stats) string {
	m.mu.Lock()
	audited, susp, clean, errored := m.audited, m.suspicious, m.clean, m.errored
	corruptN, planFail := m.corruptN, m.planFailures
	lat := append([]float64(nil), m.latencies...)
	m.mu.Unlock()

	var sb strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("tdrauditd_traces_audited_total", "Traces that produced a verdict.", audited)

	fmt.Fprintf(&sb, "# HELP tdrauditd_verdicts_total Verdicts by outcome.\n# TYPE tdrauditd_verdicts_total counter\n")
	fmt.Fprintf(&sb, "tdrauditd_verdicts_total{outcome=\"suspicious\"} %d\n", susp)
	fmt.Fprintf(&sb, "tdrauditd_verdicts_total{outcome=\"clean\"} %d\n", clean)
	fmt.Fprintf(&sb, "tdrauditd_verdicts_total{outcome=\"error\"} %d\n", errored)

	counter("tdrauditd_traces_corrupt_total", "Claimed traces failed before auditing (unreadable container).", corruptN)
	counter("tdrauditd_plan_failures_total", "Sweeps whose audit plan could not be built.", planFail)

	fmt.Fprintf(&sb, "# HELP tdrauditd_audit_latency_seconds Claim-to-verdict latency quantiles over the recent window.\n# TYPE tdrauditd_audit_latency_seconds summary\n")
	p50, p99 := 0.0, 0.0
	if len(lat) > 0 {
		p50 = stats.Percentile(lat, 0.5)
		p99 = stats.Percentile(lat, 0.99)
	}
	fmt.Fprintf(&sb, "tdrauditd_audit_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(&sb, "tdrauditd_audit_latency_seconds{quantile=\"0.99\"} %g\n", p99)

	queue := states[store.AuditPending] + states[store.AuditClaimed]
	fmt.Fprintf(&sb, "# HELP tdrauditd_queue_depth Test traces awaiting a verdict (pending + claimed).\n# TYPE tdrauditd_queue_depth gauge\ntdrauditd_queue_depth %d\n", queue)

	fmt.Fprintf(&sb, "# HELP tdrauditd_store_traces Admitted test traces by audit state.\n# TYPE tdrauditd_store_traces gauge\n")
	for _, state := range []string{store.AuditPending, store.AuditClaimed, store.AuditAudited, store.AuditFailed} {
		fmt.Fprintf(&sb, "tdrauditd_store_traces{state=%q} %d\n", stateLabel(state), states[state])
	}

	counter("tdrauditd_ingest_connections_total", "Ingest connections accepted.", ing.Conns)
	counter("tdrauditd_ingest_bytes_total", "Payload bytes accepted over ingest.", ing.Bytes)
	counter("tdrauditd_ingest_quota_rejections_total", "Ingest sessions or traces refused over quota.", ing.QuotaRejections)
	counter("tdrauditd_ingest_idle_timeouts_total", "Ingest connections cut for lack of progress.", ing.IdleTimeouts)
	return sb.String()
}
