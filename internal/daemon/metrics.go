package daemon

import (
	"time"

	"sanity/internal/ingest"
	"sanity/internal/obs"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// latencyBuckets spans claim-to-verdict wall times from fast windowed
// audits to multi-minute full-replay sweeps.
var latencyBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// suspicionBuckets decile-buckets the [0,1] ensemble suspicion, so a
// scrape shows the shape of the scored population around the neutral
// 0.5 midpoint.
var suspicionBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// metrics is the daemon's lifetime instrumentation over the shared
// obs registry: the daemon-level counters, the claim-to-verdict
// latency histogram, and the per-stage latency/alloc histograms the
// funnel's spans feed. GET /metrics renders the registry; the same
// registry backs scrape-time func metrics for state owned elsewhere
// (manifest census, ingest counters).
type metrics struct {
	reg    *obs.Registry
	stages *obs.StageMetrics

	audited  *obs.Counter
	verdicts *obs.CounterVec
	corruptC *obs.Counter
	planFail *obs.Counter
	latency  *obs.Histogram

	triageScored    *obs.Counter
	triageSuspicion *obs.Histogram
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:      reg,
		stages:   obs.NewStageMetrics(reg),
		audited:  reg.Counter("tdrauditd_traces_audited_total", "Traces that produced a verdict."),
		verdicts: reg.CounterVec("tdrauditd_verdicts_total", "Verdicts by outcome.", "outcome"),
		corruptC: reg.Counter("tdrauditd_traces_corrupt_total", "Claimed traces failed before auditing (unreadable container)."),
		planFail: reg.Counter("tdrauditd_plan_failures_total", "Sweeps whose audit plan could not be built."),
		latency:  reg.Histogram("tdrauditd_audit_latency_seconds", "Claim-to-verdict latency.", latencyBuckets),
		triageScored: reg.Counter("sanity_triage_scored_total",
			"Test traces scored by the ingest triage ensemble."),
		triageSuspicion: reg.Histogram("sanity_triage_suspicion",
			"Ensemble suspicion of triage-scored traces.", suspicionBuckets),
	}
	// Pre-create every outcome so a scrape always shows all three
	// series, zeros included.
	m.verdicts.With("suspicious")
	m.verdicts.With("clean")
	m.verdicts.With("error")
	return m
}

// observe records one verdict and its claim→verdict latency.
func (m *metrics) observe(v pipeline.Verdict, lat time.Duration) {
	m.audited.Inc()
	switch {
	case v.Err != "":
		m.verdicts.With("error").Inc()
	case v.Suspicious:
		m.verdicts.With("suspicious").Inc()
	default:
		m.verdicts.With("clean").Inc()
	}
	m.latency.Observe(lat.Seconds())
}

// corrupt records a claimed trace that failed before auditing.
func (m *metrics) corrupt() { m.corruptC.Inc() }

// planFailure records a sweep whose plan could not be built.
func (m *metrics) planFailure() { m.planFail.Inc() }

// stateLabel maps the store's audit-state constants ("" = pending)
// onto Prometheus label values.
func stateLabel(state string) string {
	if state == store.AuditPending {
		return "pending"
	}
	return state
}

// registerFuncMetrics adds the scrape-time families whose truth lives
// outside the metrics struct: the manifest's audit-state census and
// the embedded ingest server's counters. Closures read the daemon at
// scrape time (d.ing is nil until Start — and forever, with no ingest
// listener — so they report zero until it exists).
func (d *Daemon) registerFuncMetrics() {
	reg := d.met.reg
	reg.GaugeFunc("tdrauditd_queue_depth", "Test traces awaiting a verdict (pending + claimed).", func() float64 {
		states := d.st.AuditStates()
		return float64(states[store.AuditPending] + states[store.AuditClaimed])
	})
	auditStates := []string{store.AuditPending, store.AuditClaimed, store.AuditAudited, store.AuditFailed}
	reg.Func("tdrauditd_store_traces", "Admitted test traces by audit state.", "gauge", []string{"state"}, func() []obs.Sample {
		states := d.st.AuditStates()
		out := make([]obs.Sample, 0, len(auditStates))
		for _, st := range auditStates {
			out = append(out, obs.Sample{LabelValues: []string{stateLabel(st)}, Value: float64(states[st])})
		}
		return out
	})
	triageBands := []string{"low", "neutral", "high"}
	reg.Func("sanity_triage_backlog", "Pending test traces awaiting claim, by suspicion band.",
		"gauge", []string{"band"}, func() []obs.Sample {
			counts := make(map[string]int, len(triageBands))
			for _, e := range d.st.PendingTest() {
				counts[triage.Band(e.Suspicion())]++
			}
			out := make([]obs.Sample, 0, len(triageBands))
			for _, b := range triageBands {
				out = append(out, obs.Sample{LabelValues: []string{b}, Value: float64(counts[b])})
			}
			return out
		})
	ingCounter := func(name, help string, get func(ingest.Stats) uint64) {
		reg.CounterFunc(name, help, func() float64 {
			if d.ing == nil {
				return 0
			}
			return float64(get(d.ing.Stats()))
		})
	}
	ingCounter("tdrauditd_ingest_connections_total", "Ingest connections accepted.",
		func(s ingest.Stats) uint64 { return s.Conns })
	ingCounter("tdrauditd_ingest_bytes_total", "Payload bytes accepted over ingest.",
		func(s ingest.Stats) uint64 { return s.Bytes })
	ingCounter("tdrauditd_ingest_quota_rejections_total", "Ingest sessions or traces refused over quota.",
		func(s ingest.Stats) uint64 { return s.QuotaRejections })
	ingCounter("tdrauditd_ingest_idle_timeouts_total", "Ingest connections cut for lack of progress.",
		func(s ingest.Stats) uint64 { return s.IdleTimeouts })
	reg.CounterFunc("tdrauditd_shard_memo_hits_total",
		"Shard auditor builds served from the per-shard memo (reused prepared binary and TDR detector).",
		func() float64 { h, _ := pipeline.ShardMemoStats(); return float64(h) })
	reg.CounterFunc("tdrauditd_shard_memo_misses_total",
		"Shard auditor builds paid from scratch (first use, uncomparable config, or memo full).",
		func() float64 { _, m := pipeline.ShardMemoStats(); return float64(m) })
}
