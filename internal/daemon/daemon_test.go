package daemon_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sanity/internal/audit"
	"sanity/internal/daemon"
	"sanity/internal/fixtures"
	"sanity/internal/ingest"
	"sanity/internal/store"
)

// testSizes is the synthetic corpus every lifecycle test uses:
// IPD-only traces (statistical detectors, no engine runs) keep the
// suite cheap; 4 test traces unless a test says otherwise.
var testSizes = fixtures.SetSizes{Training: 4, Benign: 3, Covert: 1, Packets: 220}

// exportSynthetic materializes a synthetic corpus into dir.
func exportSynthetic(t testing.TB, dir string, sizes fixtures.SetSizes, seed uint64) *store.Store {
	t.Helper()
	set, err := fixtures.SyntheticSet(sizes, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return st
}

// countTest counts a corpus's test traces (SyntheticSet emits Benign
// benign traces plus Covert per covert channel).
func countTest(st *store.Store) int {
	n := 0
	for _, e := range st.Entries() {
		if e.Role == store.RoleTest {
			n++
		}
	}
	return n
}

func newAuditor(t testing.TB, opts ...audit.Option) *audit.Auditor {
	t.Helper()
	a, err := audit.New(append([]audit.Option{audit.WithRegistry(fixtures.KnownGood)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// quietLogf keeps daemon chatter out of test output unless -v.
func quietLogf(t testing.TB) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

func httpGet(t testing.TB, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts one un-labeled metric's value line.
func metricValue(body, name string) (string, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest, true
		}
	}
	return "", false
}

// verdictLine is the NDJSON shape GET /verdicts streams.
type verdictLine struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Shard string `json:"shard"`
}

func decodeVerdicts(t testing.TB, body string) []verdictLine {
	t.Helper()
	var out []verdictLine
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var v verdictLine
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	return out
}

// waitForGoroutines polls until the goroutine count drops back near
// the baseline, or fails with a stack dump.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonEndToEnd is the service's whole story: a corpus pushed
// over the ingest protocol while the daemon is watching gets audited
// without any operator action, and the verdicts come back over HTTP —
// the stream, the corpus census, and the Prometheus counters all
// agreeing.
func TestDaemonEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	src := exportSynthetic(t, filepath.Join(t.TempDir(), "src"), testSizes, 99)
	d, err := daemon.New(daemon.Config{
		Dir:        filepath.Join(t.TempDir(), "spool"),
		Auditor:    newAuditor(t),
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Ingest:     ingest.Options{IdleTimeout: time.Minute},
		Poll:       10 * time.Second, // the DONE notification, not the ticker, must trigger the sweep
		Logf:       quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	base := "http://" + d.HTTPAddr().String()

	// Nothing has landed yet.
	if body := httpGet(t, client, base+"/metrics"); !strings.Contains(body, "tdrauditd_traces_audited_total 0\n") {
		t.Fatalf("pre-push metrics claim audits happened:\n%s", body)
	}

	if _, err := ingest.Push(d.IngestAddr().String(), src); err != nil {
		t.Fatal(err)
	}

	// The DONE notification wakes the watcher; poll the metrics until
	// every test trace has a verdict.
	wantAudited := countTest(src)
	deadline := time.Now().Add(30 * time.Second)
	for {
		body := httpGet(t, client, base+"/metrics")
		if v, ok := metricValue(body, "tdrauditd_traces_audited_total"); ok && v == fmt.Sprint(wantAudited) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never audited the pushed corpus; metrics:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The verdict stream: one NDJSON line per test trace, an ordered
	// prefix with distinct IDs (one sweep covered the whole landing).
	verdicts := decodeVerdicts(t, httpGet(t, client, base+"/verdicts"))
	if len(verdicts) != wantAudited {
		t.Fatalf("GET /verdicts returned %d lines, want %d", len(verdicts), wantAudited)
	}
	ids := make(map[string]bool)
	for i, v := range verdicts {
		if v.Index != i {
			t.Fatalf("verdict %d has index %d — not an ordered prefix", i, v.Index)
		}
		if ids[v.ID] {
			t.Fatalf("verdict id %q appears twice", v.ID)
		}
		ids[v.ID] = true
	}

	// The corpus census agrees: everything audited, nothing queued.
	var status struct {
		Traces int            `json:"traces"`
		States map[string]int `json:"states"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, client, base+"/corpora")), &status); err != nil {
		t.Fatal(err)
	}
	if status.Traces != wantAudited || status.States["audited"] != wantAudited ||
		status.States["pending"] != 0 || status.States["claimed"] != 0 {
		t.Fatalf("corpus census %+v, want %d audited and an empty queue", status, wantAudited)
	}

	// Ingest counters flowed through to the metrics page.
	body := httpGet(t, client, base+"/metrics")
	if v, _ := metricValue(body, "tdrauditd_ingest_connections_total"); v != "1" {
		t.Fatalf("ingest connections metric = %q, want 1\n%s", v, body)
	}
	if v, _ := metricValue(body, "tdrauditd_queue_depth"); v != "0" {
		t.Fatalf("queue depth = %q, want 0", v)
	}

	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}

// TestDaemonSkipsCorruptContainer: a container that cannot be read is
// marked failed and logged; the rest of the corpus still gets its
// verdicts and the daemon never crashes or wedges on the poisoned
// trace.
func TestDaemonSkipsCorruptContainer(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")
	st := exportSynthetic(t, dir, testSizes, 99)

	// Corrupt one test container on disk before the daemon looks.
	var corrupted string
	for _, e := range st.Entries() {
		if e.Role == store.RoleTest {
			corrupted = e.File
			break
		}
	}
	if corrupted == "" {
		t.Fatal("no test entry to corrupt")
	}
	if err := os.WriteFile(filepath.Join(dir, corrupted), []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logMu sync.Mutex
	var logBuf strings.Builder
	d, err := daemon.New(daemon.Config{
		Dir:     dir,
		Auditor: newAuditor(t),
		Poll:    20 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			fmt.Fprintf(&logBuf, format+"\n", args...)
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })

	want := map[string]int{
		store.AuditAudited: countTest(st) - 1,
		store.AuditFailed:  1,
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		states := d.Store().AuditStates()
		if states[store.AuditAudited] == want[store.AuditAudited] && states[store.AuditFailed] == want[store.AuditFailed] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("audit states %v never reached %v", states, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "corrupt") || !strings.Contains(logged, corrupted) {
		t.Fatalf("daemon log never named the corrupt container %q:\n%s", corrupted, logged)
	}

	// The failure is terminal: a reopened store reports it and a fresh
	// daemon has nothing to reclaim or re-audit.
	reopened, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := reopened.ReclaimStale(); n != 0 {
		t.Fatalf("ReclaimStale reclaimed %d after a clean stop", n)
	}
	if states := reopened.AuditStates(); states[store.AuditFailed] != 1 {
		t.Fatalf("failed state did not persist: %v", states)
	}
}

// TestDaemonStopMidPlanThenResume is the SIGTERM story. A daemon is
// stopped while a plan is mid-flight: the verdict stream it recorded
// must be an ordered prefix, Stop must return cleanly with no
// goroutine left behind, and a restarted daemon must audit exactly
// the traces the first one never finished — never the ones it did.
//
// The catch is made deterministic, not timing-lucky: the auditor's
// progress callback blocks the verdict loop after the third verdict,
// which stalls the pipeline's emission watermark; with tiny
// workers/batch/queue bounds the scheduler then refuses to dispatch
// the tail of the corpus, so the plan cannot complete while Stop's
// cancellation lands.
func TestDaemonStopMidPlanThenResume(t *testing.T) {
	baseline := runtime.NumGoroutine()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	sizes := fixtures.SetSizes{Training: 4, Benign: 12, Covert: 4, Packets: 220}
	dir := filepath.Join(t.TempDir(), "spool")
	total := countTest(exportSynthetic(t, dir, sizes, 41))

	reached := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	blocking := newAuditor(t,
		audit.WithWorkers(2),
		audit.WithBatchSize(2),
		audit.WithQueueDepth(1),
		audit.WithProgress(func(p audit.Progress) {
			if p.Stage == "audit" && p.Done == 3 {
				once.Do(func() { close(reached) })
				<-gate
			}
		}),
	)

	d, err := daemon.New(daemon.Config{
		Dir:      dir,
		Auditor:  blocking,
		HTTPAddr: "127.0.0.1:0",
		Poll:     10 * time.Second,
		Logf:     quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })

	// Open a follow stream before stopping: it must drain the ordered
	// prefix and terminate when the daemon shuts down, not hang.
	followURL := "http://" + d.HTTPAddr().String() + "/verdicts?follow=1"
	followBody := make(chan string, 1)
	followErr := make(chan error, 1)
	go func() {
		resp, err := client.Get(followURL)
		if err != nil {
			followErr <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			followErr <- err
			return
		}
		followBody <- string(b)
	}()

	<-reached // three verdicts recorded, watcher blocked in the callback

	stopDone := make(chan error, 1)
	go func() { stopDone <- d.Stop() }()
	// Give Stop time to cancel the audit context, then release the
	// blocked callback so the run can observe the cancellation.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	if err := <-stopDone; err != nil {
		t.Fatalf("Stop mid-plan: %v", err)
	}

	var verdicts []verdictLine
	select {
	case body := <-followBody:
		verdicts = decodeVerdicts(t, body)
	case err := <-followErr:
		t.Fatalf("follow stream: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("follow stream never terminated after Stop")
	}
	n := len(verdicts)
	if n < 3 || n >= total {
		t.Fatalf("recorded %d verdicts, want a strict partial prefix of %d (>= 3)", n, total)
	}
	for i, v := range verdicts {
		if v.Index != i {
			t.Fatalf("verdict %d has index %d — cancellation punched a hole in the stream", i, v.Index)
		}
	}
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)

	// The manifest froze the split: n audited, the rest still claimed
	// by the dead daemon.
	states, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := states.AuditStates(); got[store.AuditAudited] != n || got[store.AuditClaimed] != total-n {
		t.Fatalf("persisted states %v, want %d audited + %d claimed", got, n, total-n)
	}

	// Restart: the successor reclaims the orphaned claims and audits
	// exactly the remainder — the first daemon's verdicts are never
	// re-earned.
	d2, err := daemon.New(daemon.Config{
		Dir:      dir,
		Auditor:  newAuditor(t),
		HTTPAddr: "127.0.0.1:0",
		Poll:     20 * time.Millisecond,
		Logf:     quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Stop() })

	base2 := "http://" + d2.HTTPAddr().String()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := d2.Store().AuditStates(); st[store.AuditAudited] == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted daemon never finished the remainder: %v", d2.Store().AuditStates())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resumed := decodeVerdicts(t, httpGet(t, client, base2+"/verdicts"))
	if len(resumed) != total-n {
		t.Fatalf("restarted daemon audited %d traces, want exactly the %d unfinished ones", len(resumed), total-n)
	}
	if err := d2.Stop(); err != nil {
		t.Fatalf("Stop after resume: %v", err)
	}
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}

// TestDaemonStopIdempotent: Stop again after a clean stop (and from
// several goroutines at once) returns the same result and never
// panics or double-closes anything.
func TestDaemonStopIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")
	exportSynthetic(t, dir, testSizes, 99)
	d, err := daemon.New(daemon.Config{
		Dir:     dir,
		Auditor: newAuditor(t),
		Logf:    quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = d.Stop()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("concurrent Stop %d returned %v, first returned %v", i, err, errs[0])
		}
	}
	if err := d.Stop(); err != errs[0] {
		t.Fatalf("Stop after stop returned %v, want %v", err, errs[0])
	}
}
