// Package daemon is the audit-as-a-service deployment of the TDR
// auditor: the paper's cloud-verification story (§5.2) — and the
// audit-service framing of Aviram et al. and Determinating — as one
// long-running process instead of one-shot CLI invocations.
//
// A Daemon owns a spool directory (a store corpus), embeds an ingest
// server that fills it over TCP, and watches it: every trace that
// lands is claimed in the manifest (pending → claimed → audited, so a
// restarted or second daemon never audits a trace twice), audited
// through a sanity Auditor plan, and its verdict recorded and served.
// The HTTP surface exposes the verdict stream (GET /verdicts,
// NDJSON), corpus status (GET /corpora), and Prometheus-format
// metrics (GET /metrics).
//
// Shutdown is ordered: close ingest (no new corpora), cancel the
// in-flight audit plan (the pipeline yields its ordered verdict
// prefix and reclaims every goroutine — PR 5's cancellation machinery
// exercised for real), then drain HTTP and flush the manifest.
// Traces still claimed when the process dies are demoted back to
// pending at the next startup and audited then.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sanity/internal/audit"
	"sanity/internal/ingest"
	"sanity/internal/obs"
	"sanity/internal/pipeline"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// Config wires a Daemon.
type Config struct {
	// Dir is the spool/store directory the daemon owns (created if
	// missing). Required.
	Dir string
	// Auditor audits every claimed corpus. Required; build it with
	// audit.New (or sanity.NewAuditor) — workers, thresholds, window
	// policy, and cross-machine calibration are all its options.
	Auditor *audit.Auditor
	// IngestAddr is the TCP address the embedded ingest server listens
	// on (e.g. ":7070", "127.0.0.1:0"). Empty runs no ingest listener:
	// the daemon only audits what the spool already holds or what
	// lands through other means.
	IngestAddr string
	// HTTPAddr is the HTTP surface's listen address (e.g. ":7071").
	// Empty runs no HTTP server.
	HTTPAddr string
	// Ingest tunes the embedded ingest server (secret, quotas, idle
	// timeout). Its OnDone and OnTrace are owned by the daemon and
	// must be nil.
	Ingest ingest.Options
	// DisableTriage turns off ingest-time triage. With triage on (the
	// default) every admitted test trace is scored by the streaming
	// detector ensemble while it uploads, the score persists in the
	// manifest and sidecar, legacy unscored pending traces are
	// backfilled at startup, and sweeps claim pending traces in
	// descending-suspicion order. Disabled restores pure
	// arrival-order (FIFO) claiming and writes no scores.
	DisableTriage bool
	// Triage tunes the detector ensemble (window geometry, CCE
	// parameters). Zero values select the triage package defaults,
	// which match the audit planner's window geometry.
	Triage triage.Options
	// ClaimBatch caps how many pending traces one sweep claims,
	// highest priority first. Zero claims everything pending — the
	// default, under which aging never fires because no sweep leaves
	// a backlog behind.
	ClaimBatch int
	// AgingBoost is added to a pending trace's claim priority for
	// every sweep it has already waited unclaimed, so when ClaimBatch
	// leaves a backlog a benign-looking trace still drifts to the
	// front instead of starving behind a steady covert stream. Zero
	// selects 0.05 (twenty sweeps outweigh any suspicion gap);
	// negative disables aging.
	AgingBoost float64
	// Poll is how often the watcher sweeps the spool for pending
	// traces even without an ingest completion notification (a corpus
	// admitted mid-session, a previous daemon's reclaimed claims).
	// Zero selects 2s.
	Poll time.Duration
	// VerdictRetention bounds how many verdicts GET /verdicts can
	// replay from memory; the oldest are dropped past it. Metrics
	// counters are lifetime and unaffected. Zero selects 4096.
	VerdictRetention int
	// Logger sinks the daemon's operational log as structured slog
	// records; build one over obs.NewLogHandler for span-correlated
	// JSON/text output. When nil (and Logf is nil too) the daemon
	// logs text to stderr at Info, prefixed with a per-daemon
	// "daemon" attr so two daemons in one process stay
	// distinguishable. Whatever the sink, records are correlated
	// (trace/span/stage attrs under instrumented contexts) and teed
	// into the /logz ring.
	Logger *slog.Logger
	// Logf is the legacy printf-style sink, kept as a migration shim:
	// when set (and Logger is nil) records render as "msg key=value"
	// lines through it. Deprecated: use Logger.
	Logf func(format string, args ...any)
	// LogRingSize bounds the in-memory log ring behind GET /logz?n=
	// (records, not bytes). Zero selects obs.DefaultLogRingLines.
	LogRingSize int
	// TraceDir, when non-empty, turns span tracing on: after each
	// sweep the collected spans (ingest admissions, claim, resolve,
	// select, and the full per-trace replay timeline) are written to
	// TraceDir as one Chrome trace_event JSON file per sweep
	// (sweep-NNNN.trace.json, openable in chrome://tracing or
	// Perfetto) and appended to a rotated spans.ndjson log. The
	// directory is created if missing. Empty disables tracing; stage
	// metrics stay on either way.
	TraceDir string
	// TraceRotateBytes caps the active spans.ndjson before it rotates
	// to a spans-NNNNNN.ndjson generation (fsync-then-rename, so a
	// crash never tears a rotated file). Zero selects
	// obs.DefaultSpanLogMaxBytes.
	TraceRotateBytes int64
	// TraceRotateFiles bounds how many rotated generations are kept.
	// Zero selects obs.DefaultSpanLogMaxFiles.
	TraceRotateFiles int
	// TraceSample exports 1 in N span trees to TraceDir (whole trees,
	// so sampled traces stay complete) — always-on production tracing
	// without unbounded volume. 0 or 1 exports everything. Stage
	// metrics and the timeline index always see every span.
	TraceSample int
	// TimelineTraces / TimelineSpansPerTrace bound the in-memory
	// per-trace span index behind GET /traces/{id}/timeline. Zeros
	// select obs defaults (512 traces x 160 spans).
	TimelineTraces        int
	TimelineSpansPerTrace int
	// DrainGrace holds readiness at 503 for this long at the start of
	// Stop before any teardown begins, giving load balancers time to
	// drain in-flight work away while /verdicts and the rest of the
	// surface still answer. Zero skips the hold.
	DrainGrace time.Duration
	// DebugAddr, when non-empty, serves net/http/pprof under
	// /debug/pprof/ on its own listener — heap and CPU profiles of
	// the live daemon, deliberately separate from the public HTTP
	// surface. Empty (the default) serves no profiler.
	DebugAddr string
}

// Daemon is a running audit service; build one with New, drive it
// with Run (or Start + Stop).
type Daemon struct {
	cfg     Config
	st      *store.Store
	auditor *audit.Auditor
	log     *slog.Logger
	logRing *obs.LogRing

	met      *metrics
	obs      *obs.Observer
	tracer   *obs.Tracer
	spanLog  *obs.SpanLog
	timeline *obs.TimelineIndex
	vlog     *verdictLog
	wake     chan struct{}

	// Readiness state: firstSweep flips once the initial spool sweep
	// completes, draining flips at the top of Stop — together they
	// drive GET /readyz.
	firstSweep atomic.Bool
	draining   atomic.Bool

	// traceSeq numbers the per-sweep trace files; only the watch
	// goroutine (and Stop, after it exits) touches it.
	traceSeq int

	ing      *ingest.Server
	httpLn   net.Listener
	httpSrv  *http.Server
	debugLn  net.Listener
	debugSrv *http.Server

	auditCtx    context.Context
	cancelAudit context.CancelFunc
	watchDone   chan struct{}

	// waits counts, per pending trace file, how many sweeps have
	// claimed past it — the aging input to claim priority. Only the
	// watch goroutine touches it.
	waits map[string]int

	started  bool
	stopOnce sync.Once
	stopErr  error
}

// New opens (or creates) the spool store and assembles a daemon.
// Claims left behind by a previous process are demoted back to
// pending here, so interrupted audits resume at the next sweep —
// while audited traces stay audited, never re-run.
func New(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("daemon: Config.Dir is required")
	}
	if cfg.Auditor == nil {
		return nil, fmt.Errorf("daemon: Config.Auditor is required")
	}
	if cfg.Ingest.OnDone != nil {
		return nil, fmt.Errorf("daemon: Config.Ingest.OnDone is owned by the daemon")
	}
	if cfg.Ingest.OnTrace != nil {
		return nil, fmt.Errorf("daemon: Config.Ingest.OnTrace is owned by the daemon")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.VerdictRetention <= 0 {
		cfg.VerdictRetention = 4096
	}
	if cfg.AgingBoost == 0 {
		cfg.AgingBoost = 0.05
	}
	st, err := store.Create(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if !cfg.DisableTriage {
		st.EnableTriage(cfg.Triage)
	}
	d := &Daemon{
		cfg:       cfg,
		st:        st,
		auditor:   cfg.Auditor,
		met:       newMetrics(),
		vlog:      newVerdictLog(cfg.VerdictRetention),
		wake:      make(chan struct{}, 1),
		watchDone: make(chan struct{}),
		waits:     make(map[string]int),
	}
	d.logRing = obs.NewLogRing(cfg.LogRingSize)
	d.log = buildLogger(cfg, d.logRing)
	d.registerFuncMetrics()
	if cfg.TraceDir != "" {
		d.tracer = obs.NewTracer()
		d.spanLog, err = obs.OpenSpanLog(cfg.TraceDir, obs.SpanLogOptions{
			MaxBytes: cfg.TraceRotateBytes,
			MaxFiles: cfg.TraceRotateFiles,
		})
		if err != nil {
			return nil, fmt.Errorf("daemon: opening span log: %w", err)
		}
	}
	// The observer is always on for a daemon: stage metrics are part
	// of /metrics and the timeline index backs /traces/{id}/timeline;
	// the tracer half is nil unless TraceDir asked for span export.
	d.timeline = obs.NewTimelineIndex(cfg.TimelineTraces, cfg.TimelineSpansPerTrace)
	d.obs = obs.NewObserver(d.tracer, d.met.stages)
	d.obs.SetTimeline(d.timeline)
	d.obs.SetSample(cfg.TraceSample)
	d.st.SetObserver(d.obs)
	if n := st.ReclaimStale(); n > 0 {
		d.log.Info("reclaimed traces claimed by a previous run", "count", n)
	}
	// Backfill triage scores over whatever legacy pending corpus the
	// spool already holds, so the very first sweep's claim order is
	// already suspicion-driven. Traces it cannot score stay neutral.
	if !cfg.DisableTriage {
		if n, err := st.ScorePending(cfg.Triage); err != nil {
			d.log.Warn("triage backfill failed", "err", err)
		} else if n > 0 {
			d.log.Info("triage-scored legacy pending traces", "count", n)
			d.flushQuietly()
		}
	}
	return d, nil
}

// buildLogger assembles the daemon's logger: the caller's Logger, or
// the legacy Logf shim, or a stderr text handler — in every case
// wrapped for span correlation and teed into the /logz ring, with a
// per-daemon "daemon" attr so two daemons in one process never
// interleave anonymously.
func buildLogger(cfg Config, ring *obs.LogRing) *slog.Logger {
	var base slog.Handler
	switch {
	case cfg.Logger != nil:
		base = cfg.Logger.Handler()
	case cfg.Logf != nil:
		base = &logfHandler{fn: cfg.Logf}
	default:
		base = obs.NewLogHandler(os.Stderr, obs.LogOptions{})
	}
	return slog.New(obs.WrapHandler(base, ring)).With("daemon", filepath.Base(cfg.Dir))
}

// logfHandler adapts the deprecated printf-style Config.Logf to
// slog, rendering records as the "msg key=value" lines the old sink
// expects.
type logfHandler struct {
	fn    func(string, ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	line := r.Message
	for _, a := range h.attrs {
		line += " " + a.Key + "=" + a.Value.String()
	}
	r.Attrs(func(a slog.Attr) bool {
		line += " " + a.Key + "=" + a.Value.String()
		return true
	})
	h.fn("%s", line)
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{fn: h.fn, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// Store exposes the daemon's spool store (tests, embedding callers).
func (d *Daemon) Store() *store.Store { return d.st }

// IngestAddr is the bound address of the embedded ingest server, nil
// when none is configured. Valid after Start.
func (d *Daemon) IngestAddr() net.Addr {
	if d.ing == nil {
		return nil
	}
	return d.ing.Addr()
}

// HTTPAddr is the bound address of the HTTP surface, nil when none is
// configured. Valid after Start.
func (d *Daemon) HTTPAddr() net.Addr {
	if d.httpLn == nil {
		return nil
	}
	return d.httpLn.Addr()
}

// DebugAddr is the bound address of the opt-in pprof listener, nil
// when none is configured. Valid after Start.
func (d *Daemon) DebugAddr() net.Addr {
	if d.debugLn == nil {
		return nil
	}
	return d.debugLn.Addr()
}

// Start binds the listeners and launches the watcher. It returns as
// soon as the daemon is serving; pair it with Stop.
func (d *Daemon) Start() error {
	if d.started {
		return fmt.Errorf("daemon: already started")
	}
	d.started = true
	if d.cfg.IngestAddr != "" {
		opts := d.cfg.Ingest
		opts.OnDone = d.notify
		opts.OnTrace = d.observeTriage
		opts.Obs = d.obs
		if opts.Log == nil {
			opts.Log = d.log.With("component", "ingest")
		}
		srv, err := ingest.ListenOpts(d.cfg.IngestAddr, d.st, opts)
		if err != nil {
			return err
		}
		d.ing = srv
		d.log.Info("ingest listening", "addr", srv.Addr().String())
	}
	if d.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", d.cfg.HTTPAddr)
		if err != nil {
			if d.ing != nil {
				d.ing.Close()
			}
			return fmt.Errorf("daemon: http listen %s: %w", d.cfg.HTTPAddr, err)
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: d.httpHandler()}
		go d.httpSrv.Serve(ln)
		d.log.Info("http listening", "addr", ln.Addr().String())
	}
	if d.cfg.DebugAddr != "" {
		ln, err := net.Listen("tcp", d.cfg.DebugAddr)
		if err != nil {
			if d.ing != nil {
				d.ing.Close()
			}
			if d.httpSrv != nil {
				d.httpSrv.Close()
			}
			return fmt.Errorf("daemon: debug listen %s: %w", d.cfg.DebugAddr, err)
		}
		d.debugLn = ln
		d.debugSrv = &http.Server{Handler: debugHandler()}
		go d.debugSrv.Serve(ln)
		d.log.Info("pprof listening", "addr", ln.Addr().String()+"/debug/pprof/")
	}
	d.auditCtx, d.cancelAudit = context.WithCancel(context.Background())
	go d.watch(d.auditCtx)
	return nil
}

// Run starts the daemon and serves until ctx is canceled (SIGTERM in
// cmd/tdrauditd), then performs the ordered shutdown and returns its
// result.
func (d *Daemon) Run(ctx context.Context) error {
	if err := d.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	return d.Stop()
}

// Stop shuts the daemon down in order: stop ingest (no new corpora
// land, in-flight uploads are cut), cancel the in-flight audit plan
// (its ordered verdict prefix is recorded, the pipeline's goroutines
// are reclaimed), release verdict followers, drain HTTP, and flush
// the manifest so claimed/audited states persist. Safe to call
// repeatedly and concurrently; every call returns the same result
// after shutdown has fully completed.
func (d *Daemon) Stop() error {
	d.stopOnce.Do(func() {
		// Flip readiness first and hold for the drain grace: load
		// balancers see /readyz go 503 while the rest of the surface
		// (verdict followers included) still answers.
		d.draining.Store(true)
		if d.cfg.DrainGrace > 0 {
			d.log.Info("draining", "grace", d.cfg.DrainGrace.String())
			time.Sleep(d.cfg.DrainGrace)
		}
		var errs []error
		if d.ing != nil {
			if err := d.ing.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		if d.cancelAudit != nil {
			d.cancelAudit()
			<-d.watchDone
		}
		// Residual spans (e.g. ingest admissions after the last sweep)
		// still get exported; the watcher is gone, so this is the only
		// flusher left.
		d.flushTrace()
		if err := d.spanLog.Close(); err != nil {
			errs = append(errs, err)
		}
		d.vlog.close()
		if d.httpSrv != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := d.httpSrv.Shutdown(sctx); err != nil {
				errs = append(errs, err)
			}
			cancel()
		}
		if d.debugSrv != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := d.debugSrv.Shutdown(sctx); err != nil {
				errs = append(errs, err)
			}
			cancel()
		}
		if err := d.st.Flush(); err != nil {
			errs = append(errs, err)
		}
		d.stopErr = errors.Join(errs...)
	})
	return d.stopErr
}

// observeTriage records one ingest-time triage score in the metrics.
// It runs on ingest handler goroutines; the metrics are atomic.
func (d *Daemon) observeTriage(_ store.Meta, sc *triage.Score) {
	if sc == nil {
		return
	}
	d.met.triageScored.Inc()
	d.met.triageSuspicion.Observe(sc.Suspicion)
}

// claimPriority orders a sweep's claims: the trace's persisted
// suspicion plus an aging boost per sweep it has already waited, so
// the most suspicious traces go first but nothing starves behind a
// steady covert stream when ClaimBatch leaves a backlog.
func (d *Daemon) claimPriority(e store.Entry) float64 {
	p := e.Suspicion()
	if d.cfg.AgingBoost > 0 {
		p += d.cfg.AgingBoost * float64(d.waits[e.File])
	}
	return p
}

// ageBacklog charges one waited sweep to every pending trace the
// claim pass left behind, forgets the claimed ones, and reports how
// many are still waiting. Only the watch goroutine calls it, so the
// waits map needs no lock.
func (d *Daemon) ageBacklog(claimed []store.Entry) int {
	for _, e := range claimed {
		delete(d.waits, e.File)
	}
	backlog := d.st.PendingTest()
	for _, e := range backlog {
		d.waits[e.File]++
	}
	return len(backlog)
}

// notify wakes the watcher without blocking the ingest handler that
// delivered the completion.
func (d *Daemon) notify() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// watch is the daemon's main loop: sweep whatever is already pending,
// then sleep until an ingest session completes, the poll interval
// elapses, or the daemon stops.
func (d *Daemon) watch(ctx context.Context) {
	defer close(d.watchDone)
	ticker := time.NewTicker(d.cfg.Poll)
	defer ticker.Stop()
	for {
		d.sweep(ctx)
		// The first sweep completing — even over an empty spool — is
		// the readiness gate: from here the daemon has reconciled
		// whatever the spool already held.
		d.firstSweep.Store(true)
		select {
		case <-ctx.Done():
			return
		case <-d.wake:
		case <-ticker.C:
		}
	}
}

// sweep claims every pending test trace and audits the claimed set as
// one plan. Traces whose containers cannot even be opened are marked
// failed (logged, skipped — a corrupt upload must never crash or
// wedge the service); the rest stream through the auditor, each
// verdict recorded in the log, the metrics, and the manifest.
func (d *Daemon) sweep(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	claimed := d.st.ClaimPendingLimit(d.cfg.ClaimBatch, d.claimPriority)
	if d.ageBacklog(claimed) > 0 && len(claimed) > 0 {
		// ClaimBatch left a backlog: wake the watcher again as soon as
		// this sweep finishes instead of waiting out the poll interval.
		d.notify()
	}
	if len(claimed) == 0 {
		return
	}
	// Export the sweep's spans once it finishes; the defer is
	// registered before the sweep span's End so the span is closed by
	// the time the flush drains the tracer (LIFO).
	defer d.flushTrace()
	ctx = d.obs.Context(ctx)
	ctx, sweepSpan := obs.StartSpan(ctx, obs.StageSweep)
	defer sweepSpan.End()
	sweepSpan.Attr("claimed", fmt.Sprint(len(claimed)))
	claimedAt := time.Now()
	// Persist the claims before auditing: a crash from here on leaves
	// "claimed" states on disk for the next startup to reclaim.
	_, claimSpan := obs.StartSpan(ctx, obs.StageClaim)
	err := d.st.Flush()
	claimSpan.End()
	if err != nil {
		d.log.ErrorContext(ctx, "persisting claims failed", "err", err)
	}

	// Quarantine containers that cannot be read at all, so one corrupt
	// landing cannot poison the whole sweep's plan.
	good := claimed[:0]
	for _, e := range claimed {
		if _, err := d.st.LoadIPDs(e.File); err != nil {
			d.log.WarnContext(ctx, "skipping corrupt container", "file", e.File, "shard", e.Shard, "id", e.ID, "err", err)
			d.failTrace(e)
			continue
		}
		good = append(good, e)
	}
	if len(good) == 0 {
		d.flushQuietly()
		return
	}
	d.log.InfoContext(ctx, "auditing claimed traces", "count", len(good))

	// Verdicts name (shard, job ID); map them back to container files
	// for the manifest's audit state.
	files := make(map[string]string, len(good))
	for _, e := range good {
		files[e.Shard+"\x00"+e.ID] = e.File
	}

	plan, err := d.auditor.Plan(ctx, claimedSource{st: d.st, entries: good})
	if err != nil {
		if errors.Is(err, audit.ErrCanceled) || ctx.Err() != nil {
			return // claims stay; the next startup reclaims them
		}
		// A plan that cannot resolve (unknown program, uncalibrated
		// machine pair, unreadable training material) fails every
		// trace it covered: terminal, logged, never retried in a loop.
		d.log.ErrorContext(ctx, "planning failed, marking traces failed", "count", len(good), "err", err)
		d.met.planFailure()
		for _, e := range good {
			d.failTrace(e)
		}
		d.flushQuietly()
		return
	}

	canceled := false
	for v, err := range plan.Run(ctx) {
		if err != nil {
			if errors.Is(err, audit.ErrCanceled) {
				canceled = true
			} else {
				d.log.ErrorContext(ctx, "audit run failed", "err", err)
			}
			break
		}
		d.vlog.append(v)
		d.met.observe(v, time.Since(claimedAt))
		if file, ok := files[v.Shard+"\x00"+v.JobID]; ok {
			if err := d.st.SetAuditState(file, store.AuditAudited); err != nil {
				d.log.ErrorContext(ctx, "recording verdict failed", "id", v.JobID, "err", err)
			}
		}
	}
	if canceled {
		d.log.InfoContext(ctx, "audit canceled mid-plan; verdict prefix recorded, unfinished claims will be reclaimed")
	}
	d.flushQuietly()
}

// flushTrace drains the tracer into the trace directory: one Chrome
// trace_event JSON file per sweep plus an append-only NDJSON log.
// Export failures are logged, never fatal — observability must not
// take the service down. No-op when tracing is off.
func (d *Daemon) flushTrace() {
	if d.tracer == nil {
		return
	}
	spans := d.tracer.Drain()
	if len(spans) == 0 {
		return
	}
	d.traceSeq++
	name := filepath.Join(d.cfg.TraceDir, fmt.Sprintf("sweep-%04d.trace.json", d.traceSeq))
	f, err := os.Create(name)
	if err != nil {
		d.log.Error("writing trace file failed", "err", err)
	} else {
		if err := obs.WriteChromeTrace(f, spans); err != nil {
			d.log.Error("writing trace file failed", "file", name, "err", err)
		}
		if err := f.Close(); err != nil {
			d.log.Error("closing trace file failed", "file", name, "err", err)
		}
	}
	if err := d.spanLog.Append(spans); err != nil {
		d.log.Error("appending span log failed", "err", err)
	}
}

// failTrace marks one claimed trace terminally failed.
func (d *Daemon) failTrace(e store.Entry) {
	d.met.corrupt()
	if err := d.st.SetAuditState(e.File, store.AuditFailed); err != nil {
		d.log.Error("marking trace failed errored", "file", e.File, "err", err)
	}
}

// flushQuietly persists the manifest, logging (not propagating) any
// failure — the daemon keeps serving on a transient disk error.
func (d *Daemon) flushQuietly() {
	if err := d.st.Flush(); err != nil {
		d.log.Error("flushing manifest failed", "err", err)
	}
}

// debugHandler builds the pprof mux: index, cmdline, profile, symbol,
// and trace under /debug/pprof/ (named profiles — heap, goroutine,
// block, mutex — come through the index handler). A dedicated mux, so
// opting into the profiler never touches http.DefaultServeMux or the
// public surface.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// claimedSource is the audit.Source over one sweep's claimed entries:
// the auditor resolves and trains only the shards those entries
// reference.
type claimedSource struct {
	st      *store.Store
	entries []store.Entry
}

// Batch implements audit.Source.
func (s claimedSource) Batch(ctx context.Context, resolve pipeline.ShardResolver) (*pipeline.Batch, error) {
	return pipeline.BatchFromEntries(ctx, s.st, s.entries, resolve)
}
