package daemon_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sanity/internal/audit"
	"sanity/internal/daemon"
	"sanity/internal/obs"
	"sanity/internal/store"
)

// httpStatus is httpGet without the 200 assertion: status + body.
func httpStatus(t testing.TB, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// TestDaemonHealthReadinessLifecycle walks the probe state machine:
// /healthz answers 200 from the moment HTTP is up; /readyz is 503
// while the first sweep is still reconciling the spool, flips to 200
// once it completes, and flips back to 503 the moment Stop begins
// draining — while the surface still answers — before the listener
// finally goes away.
func TestDaemonHealthReadinessLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	dir := filepath.Join(t.TempDir(), "spool")
	exportSynthetic(t, dir, testSizes, 99)

	// Gate the first sweep mid-audit so "before first sweep" is an
	// observable state, not a race.
	reached := make(chan struct{})
	gate := make(chan struct{})
	var reachedOnce, releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	blocking := newAuditor(t, audit.WithProgress(func(p audit.Progress) {
		if p.Stage == "audit" && p.Done == 1 {
			reachedOnce.Do(func() { close(reached) })
			<-gate
		}
	}))

	d, err := daemon.New(daemon.Config{
		Dir:        dir,
		Auditor:    blocking,
		HTTPAddr:   "127.0.0.1:0",
		Poll:       10 * time.Second,
		DrainGrace: 500 * time.Millisecond,
		Logf:       quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { release(); d.Stop() })
	base := "http://" + d.HTTPAddr().String()

	<-reached // first sweep is in flight, blocked in the audit callback

	if code, body := httpStatus(t, client, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d (%s), want 200", code, body)
	}
	code, body := httpStatus(t, client, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before first sweep = %d (%s), want 503", code, body)
	}
	var rz struct {
		Ready  bool            `json:"ready"`
		Checks map[string]bool `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &rz); err != nil {
		t.Fatalf("/readyz body is not JSON: %s", body)
	}
	if rz.Ready || rz.Checks["firstSweep"] || !rz.Checks["store"] || !rz.Checks["notDraining"] {
		t.Fatalf("/readyz checks wrong before first sweep: %+v", rz)
	}

	// Release the sweep; readiness must flip once it completes.
	release()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code, _ := httpStatus(t, client, base+"/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 200 after the first sweep")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Stop with a drain grace: readiness goes 503 immediately while
	// /healthz (and the rest of the surface) still answers.
	stopDone := make(chan error, 1)
	go func() { stopDone <- d.Stop() }()
	sawDraining := false
	for !sawDraining {
		code, body := httpStatus(t, client, base+"/readyz")
		if code == http.StatusServiceUnavailable && strings.Contains(body, `"notDraining":false`) {
			sawDraining = true
			break
		}
		if code == 0 {
			t.Fatalf("listener went away before a draining 503 was observable: %s", body)
		}
		select {
		case err := <-stopDone:
			t.Fatalf("Stop finished (err=%v) before a draining 503 was observable", err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := httpStatus(t, client, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d (%s), want 200", code, body)
	}
	if err := <-stopDone; err != nil {
		t.Fatalf("Stop: %v", err)
	}
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}

// TestDaemonTimelineAndLogz audits a corpus with one poisoned
// container, then reads the lifecycle API: a populated timeline with
// verdict and audit state for an audited trace, a failed state for
// the quarantined one, 404 for an unknown ID, and the bounded /logz
// ring.
func TestDaemonTimelineAndLogz(t *testing.T) {
	baseline := runtime.NumGoroutine()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	dir := filepath.Join(t.TempDir(), "spool")
	st := exportSynthetic(t, dir, testSizes, 99)
	var corruptedFile string
	for _, e := range st.Entries() {
		if e.Role == store.RoleTest {
			corruptedFile = e.File
			break
		}
	}
	if err := os.WriteFile(filepath.Join(dir, corruptedFile), []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := daemon.New(daemon.Config{
		Dir:         dir,
		Auditor:     newAuditor(t),
		HTTPAddr:    "127.0.0.1:0",
		Poll:        20 * time.Millisecond,
		LogRingSize: 4,
		Logf:        quietLogf(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	base := "http://" + d.HTTPAddr().String()

	wantAudited := countTest(st) - 1
	deadline := time.Now().Add(30 * time.Second)
	for {
		states := d.Store().AuditStates()
		if states[store.AuditAudited] == wantAudited && states[store.AuditFailed] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("audit never settled: %v", d.Store().AuditStates())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// An audited trace: state, verdict, and the per-stage spans of its
	// audit (trace/stat/verdict at minimum for an IPD-only corpus),
	// plus the sweep frame shared into its timeline.
	verdicts := decodeVerdicts(t, httpGet(t, client, base+"/verdicts"))
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	auditedID := verdicts[0].ID
	var tl struct {
		Trace   string           `json:"trace"`
		Shard   string           `json:"shard"`
		State   string           `json:"state"`
		Verdict *json.RawMessage `json:"verdict"`
		Spans   []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, client, base+"/traces/"+auditedID+"/timeline")), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Trace != auditedID || tl.State != "audited" || tl.Verdict == nil || tl.Shard == "" {
		t.Fatalf("audited timeline wrong: trace=%q state=%q verdict=%v shard=%q", tl.Trace, tl.State, tl.Verdict, tl.Shard)
	}
	stages := make(map[string]int)
	for _, s := range tl.Spans {
		stages[s.Name]++
	}
	for _, want := range []string{obs.StageSweep, obs.StageClaim, obs.StageTrace, obs.StageStat, obs.StageVerdict} {
		if stages[want] == 0 {
			t.Errorf("audited timeline lacks a %q span: %v", want, stages)
		}
	}
	for i := 1; i < len(tl.Spans); i++ {
		if tl.Spans[i].Start.Before(tl.Spans[i-1].Start) {
			t.Fatal("timeline spans not start-ordered")
		}
	}

	// The quarantined trace: failed state from the manifest, no
	// verdict (it never entered a plan).
	var failedID string
	for _, e := range d.Store().Entries() {
		if e.Audit == store.AuditFailed {
			failedID = e.ID
		}
	}
	if failedID == "" {
		t.Fatal("no failed entry")
	}
	var ftl struct {
		State   string           `json:"state"`
		Verdict *json.RawMessage `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, client, base+"/traces/"+failedID+"/timeline")), &ftl); err != nil {
		t.Fatal(err)
	}
	if ftl.State != "failed" || ftl.Verdict != nil {
		t.Fatalf("failed timeline wrong: state=%q verdict=%s", ftl.State, ftl.Verdict)
	}

	// Unknown IDs are 404, not empty timelines.
	if code, _ := httpStatus(t, client, base+"/traces/no-such-trace/timeline"); code != http.StatusNotFound {
		t.Fatalf("unknown trace timeline = %d, want 404", code)
	}

	// /logz: the ring holds structured JSON records, bounded by
	// LogRingSize regardless of how much the daemon logged.
	logz := strings.TrimSpace(httpGet(t, client, base+"/logz"))
	lines := strings.Split(logz, "\n")
	if len(lines) == 0 || logz == "" {
		t.Fatal("/logz is empty")
	}
	if len(lines) > 4 {
		t.Fatalf("/logz returned %d lines, ring size is 4", len(lines))
	}
	for _, line := range lines {
		var rec struct {
			Msg    string `json:"msg"`
			Daemon string `json:"daemon"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("/logz line is not JSON: %q", line)
		}
		if rec.Msg == "" || rec.Daemon == "" {
			t.Fatalf("/logz record lacks msg or daemon attr: %q", line)
		}
	}
	if got := strings.TrimSpace(httpGet(t, client, base+"/logz?n=1")); strings.Count(got, "\n") != 0 || got == "" {
		t.Fatalf("/logz?n=1 did not return exactly one line: %q", got)
	}

	if err := d.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}
