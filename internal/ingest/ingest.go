// Package ingest implements the network leg of the audit hand-off:
// the play side records trace corpora to stable storage
// (internal/store) and ships them to an auditor machine over TCP,
// mirroring the cloud-verification setting of paper §5.2 where
// recorded executions are checked by a separate verifier.
//
// The protocol is line-framed commands with binary payloads. After
// exchanging the banner, a client issues:
//
//	AUTH <token>\n  shared-secret authentication (when the server requires it)
//	SHARD <n>\n     followed by n bytes of ShardMeta JSON
//	PUT <n>\n       followed by n bytes of trace container
//	DONE\n          flush the manifest and end the session
//
// The server answers every command with one line, "OK ..." or
// "ERR <reason>". A PUT is validated while it is spooled — frame
// CRCs, section structure, log decoding, metadata cross-checks — and
// a corrupted upload earns a per-trace ERR while the connection stays
// usable for the next command. Uploads from many connections may
// interleave; the store serializes admissions.
//
// A server configured with a shared secret (Options.Secret) refuses
// every command until the session has authenticated: a wrong or
// missing token earns exactly one ERR line and a closed connection,
// so an unauthenticated peer can neither fill the spool nor probe the
// validator.
//
// Per-connection quotas (Options.MaxTracesPerConn, MaxBytesPerConn)
// bound what any one session may upload: the trace budget counts
// every PUT attempt, the byte budget is charged against declared
// payload sizes before a byte is read, and exceeding either earns
// exactly one "ERR quota ..." line and a closed connection — the
// typed ErrQuota on the client side.
package ingest

import (
	"bufio"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sanity/internal/obs"
	"sanity/internal/store"
	"sanity/internal/triage"
)

// Banner is the protocol greeting either side must send first.
const Banner = "TDR-INGEST/1"

// Upload size limits. Shard metadata is a handful of names; containers
// are bounded generously (a day-long NFS log at the paper's §6.5
// growth rate is well under this).
const (
	maxShardJSON = 64 << 10
	maxContainer = 1 << 30
)

// Options tunes a server beyond its listener and store.
type Options struct {
	// Secret, when non-empty, requires every session to authenticate
	// with "AUTH <secret>" before any other command. The comparison is
	// constant-time. An empty secret accepts all sessions (trusted
	// networks, tests), and treats a client's AUTH as a no-op so a
	// token-configured client can still talk to an open server.
	Secret string
	// MaxTracesPerConn caps how many traces one connection may PUT
	// (accepted or rejected — a validator probe spends quota too).
	// Exceeding it earns a single "ERR quota ..." reply and a closed
	// connection. Zero means unlimited.
	MaxTracesPerConn int
	// MaxBytesPerConn caps the total payload bytes (SHARD and PUT
	// declarations combined) one connection may upload. The check
	// runs against the declared size before any payload byte is read,
	// so an over-quota upload is refused without spooling it.
	// Exceeding it earns a single "ERR quota ..." reply and a closed
	// connection. Zero means unlimited.
	MaxBytesPerConn int64
	// IdleTimeout bounds how long a connection may sit without
	// progressing: the deadline is refreshed before every read (each
	// protocol line, each payload chunk) and every reply write, so a
	// slow-but-moving upload never trips it while a half-open or
	// stalled client — which would otherwise pin a handler goroutine
	// and a quota slot for the life of the process — earns a single
	// "ERR idle-timeout ..." reply and a closed connection (the typed
	// ErrIdleTimeout on the client side). Zero disables the timeout
	// (trusted networks, tests); long-running daemons should set it.
	IdleTimeout time.Duration
	// OnDone, when non-nil, is called after a session's DONE command
	// has flushed the manifest — the "a corpus landed" notification a
	// watching daemon audits on. It runs synchronously on the handler
	// goroutine and must be cheap and non-blocking.
	OnDone func()
	// OnTrace, when non-nil, is called after each accepted container
	// with its admitted metadata and triage score (nil when the store
	// has triage disabled or the trace is not scoreable — training
	// corpora). Like OnDone it runs synchronously on the handler
	// goroutine and must be cheap and non-blocking; uploads from many
	// connections may invoke it concurrently.
	OnTrace func(store.Meta, *triage.Score)
	// Obs, when non-nil, records each accepted container as an
	// "ingest" span (with the admitted trace's ID and shard) and each
	// session DONE as an instant event. Owned by the embedding
	// daemon; nil disables.
	Obs *obs.Observer
	// Log, when non-nil, receives structured records for the paths an
	// operator needs to see — rejected containers, quota refusals,
	// idle-timeout cuts, failed authentication. Nil keeps the server
	// silent (library embedding, tests).
	Log *slog.Logger
}

// logger returns the configured log sink or a discard logger, so the
// hot path never branches on nil at each call site.
func (s *Server) logger() *slog.Logger {
	if s.opts.Log == nil {
		return discardLogger
	}
	return s.opts.Log
}

var discardLogger = slog.New(slog.DiscardHandler)

// Stats is a snapshot of a server's lifetime counters.
type Stats struct {
	// Conns counts accepted connections.
	Conns uint64
	// Bytes counts accepted payload bytes: declared SHARD and PUT
	// sizes actually admitted to the byte budget (refused payloads are
	// drained but not counted).
	Bytes uint64
	// QuotaRejections counts sessions cut off for exceeding a
	// per-connection quota.
	QuotaRejections uint64
	// IdleTimeouts counts sessions cut off by Options.IdleTimeout.
	IdleTimeouts uint64
}

// ErrQuota is the sentinel matched by errors.Is when the server
// closed a session for exceeding a per-connection quota — the typed
// form the "ERR quota ..." protocol reply takes on the client side.
var ErrQuota = errors.New("ingest: per-connection quota exceeded")

// QuotaError is the typed form of ErrQuota: which quota tripped, as
// reported by the server's ERR line. It unwraps to ErrQuota.
type QuotaError struct {
	// Detail is the server's reason ("traces: ...", "bytes: ...").
	Detail string
}

// Error implements error.
func (e *QuotaError) Error() string {
	return "ingest: per-connection quota exceeded: " + e.Detail
}

// Unwrap makes errors.Is(err, ErrQuota) hold.
func (e *QuotaError) Unwrap() error { return ErrQuota }

// quotaPrefix marks a quota refusal on the wire; clients map it back
// to the typed QuotaError.
const quotaPrefix = "ERR quota "

// ErrIdleTimeout is the sentinel matched by errors.Is when the server
// cut a session off for idling past Options.IdleTimeout — the typed
// form of the "ERR idle-timeout ..." protocol reply.
var ErrIdleTimeout = errors.New("ingest: connection idle timeout")

// IdleTimeoutError is the typed form of ErrIdleTimeout, carrying the
// server's reason line. It unwraps to ErrIdleTimeout.
type IdleTimeoutError struct {
	// Detail is the server's reason ("no progress for 2m0s").
	Detail string
}

// Error implements error.
func (e *IdleTimeoutError) Error() string {
	return "ingest: connection idle timeout: " + e.Detail
}

// Unwrap makes errors.Is(err, ErrIdleTimeout) hold.
func (e *IdleTimeoutError) Unwrap() error { return ErrIdleTimeout }

// timeoutPrefix marks an idle-timeout refusal on the wire.
const timeoutPrefix = "ERR idle-timeout "

// Server accepts framed log uploads and spools them into a store.
type Server struct {
	st   *store.Store
	ln   net.Listener
	opts Options

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	conns64   atomic.Uint64
	bytes64   atomic.Uint64
	quota64   atomic.Uint64
	timeout64 atomic.Uint64
}

// Listen starts an ingest server on addr (e.g. ":7070" or
// "127.0.0.1:0") spooling into st.
func Listen(addr string, st *store.Store) (*Server, error) {
	return ListenOpts(addr, st, Options{})
}

// ListenOpts is Listen with explicit options.
func ListenOpts(addr string, st *store.Store, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen %s: %w", addr, err)
	}
	return ServeOpts(ln, st, opts), nil
}

// Serve starts an ingest server on an existing listener.
func Serve(ln net.Listener, st *store.Store) *Server {
	return ServeOpts(ln, st, Options{})
}

// ServeOpts is Serve with explicit options.
func ServeOpts(ln net.Listener, st *store.Store, opts Options) *Server {
	s := &Server{st: st, ln: ln, opts: opts, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Stats snapshots the server's lifetime counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:           s.conns64.Load(),
		Bytes:           s.bytes64.Load(),
		QuotaRejections: s.quota64.Load(),
		IdleTimeouts:    s.timeout64.Load(),
	}
}

// Close stops accepting, closes live connections, waits for handlers
// AND the accept loop, and flushes the manifest. It is safe to call
// from any number of goroutines: every call — not just the first —
// returns only after the shutdown has fully completed, so "Close
// returned" always means "no handler goroutine is left and the
// manifest is on disk". (The first version returned early from
// repeated calls, which let a daemon's ordered shutdown race its own
// ingest teardown.)
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.ln.Close()
		s.wg.Wait()
		s.closeErr = s.st.Flush()
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		// On some platforms Accept can hand back a connection that was
		// already queued when Close ran ln.Close() — or this goroutine
		// can sit here, conn in hand, while Close walks the conns map.
		// Either way the conn is not yet in the map, so Close cannot
		// have closed it: re-checking the closed flag under the same
		// lock Close takes guarantees every accepted connection is
		// either registered (and thus closed by Close) or closed here.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.conns64.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// idleConn enforces Options.IdleTimeout as a progress bound: the
// deadline is pushed forward before every Read and Write, so any
// moving transfer lives on while a stalled one fails with a timeout
// at most IdleTimeout after its last progress. A zero timeout leaves
// the connection deadline-free.
type idleConn struct {
	net.Conn
	d time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Read(p)
}

func (c *idleConn) Write(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Write(p)
}

// isTimeout reports whether an error is a connection deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// oneline folds any newlines out of text destined for a reply line,
// so identifiers that originate in an upload cannot inject extra
// protocol lines.
func oneline(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
}

// errLine renders an error as a single protocol line.
func errLine(err error) string {
	return "ERR " + oneline(err.Error()) + "\n"
}

// bail ends a session after a fatal read failure. An idle-timeout
// expiry earns the one typed ERR line the protocol promises (the
// reply write refreshes the write deadline, so it goes out even
// though the read side just expired); any other failure — peer gone,
// connection closed by Close — ends the session silently as before.
func (s *Server) bail(conn net.Conn, err error) {
	if isTimeout(err) {
		s.timeout64.Add(1)
		s.logger().Warn("ingest session idle timeout", "remote", conn.RemoteAddr().String(), "timeout", s.opts.IdleTimeout.String())
		fmt.Fprintf(conn, timeoutPrefix+"no progress for %s\n", s.opts.IdleTimeout)
	}
}

func (s *Server) handle(raw net.Conn) {
	defer raw.Close()
	// Every read and reply goes through the idle-deadline wrapper: a
	// protocol line, a payload chunk, a reply write each push the
	// deadline forward, so only a genuinely stalled peer trips it.
	conn := &idleConn{Conn: raw, d: s.opts.IdleTimeout}
	br := bufio.NewReader(conn)
	line, err := readLine(br)
	if err != nil || line != Banner {
		if err != nil && isTimeout(err) {
			s.bail(conn, err)
			return
		}
		fmt.Fprintf(conn, "ERR expected banner %s\n", Banner)
		return
	}
	fmt.Fprintf(conn, "OK %s\n", Banner)
	authed := s.opts.Secret == ""
	// Per-connection quota accounting: payload bytes are charged
	// against the declared size before they are read, traces against
	// every PUT attempt. A refusal must still keep the protocol's
	// one-reply-per-command shape readable by the client: the ERR
	// line goes out first, then the declared payload is drained (the
	// client writes it before reading any reply, so closing with
	// unread bytes in the socket would turn the reply into a broken
	// pipe or an RST) — mirroring the rejected-container path. The
	// payload is never spooled or validated, only discarded.
	var usedBytes int64
	usedTraces := 0
	refuseQuota := func(br *bufio.Reader, n int64, format string, args ...any) {
		s.quota64.Add(1)
		s.logger().Warn("ingest quota refused", "remote", conn.RemoteAddr().String(), "reason", fmt.Sprintf(format, args...))
		fmt.Fprintf(conn, quotaPrefix+format+"\n", args...)
		io.CopyN(io.Discard, br, n)
	}
	chargeBytes := func(br *bufio.Reader, n int64) bool {
		if s.opts.MaxBytesPerConn > 0 && usedBytes+n > s.opts.MaxBytesPerConn {
			refuseQuota(br, n, "bytes: payload of %d would exceed the connection's %d-byte budget (%d used)",
				n, s.opts.MaxBytesPerConn, usedBytes)
			return false
		}
		usedBytes += n
		s.bytes64.Add(uint64(n))
		return true
	}
	for {
		line, err := readLine(br)
		if err != nil {
			s.bail(conn, err)
			return
		}
		cmd, arg, _ := strings.Cut(line, " ")
		if cmd == "AUTH" {
			// Constant-time comparison: a probing client learns nothing
			// about the secret from timing. With no secret configured the
			// command is a no-op, so token-carrying clients interoperate
			// with open servers.
			if authed || subtle.ConstantTimeCompare([]byte(arg), []byte(s.opts.Secret)) == 1 {
				authed = true
				fmt.Fprint(conn, "OK authenticated\n")
				continue
			}
			s.logger().Warn("ingest auth rejected", "remote", conn.RemoteAddr().String())
			fmt.Fprint(conn, "ERR invalid auth token\n")
			return
		}
		if !authed {
			fmt.Fprint(conn, "ERR authentication required\n")
			return
		}
		switch cmd {
		case "SHARD":
			n, err := parseSize(arg, maxShardJSON)
			if err != nil {
				fmt.Fprint(conn, errLine(err))
				return
			}
			if !chargeBytes(br, n) {
				return
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				s.bail(conn, err)
				return
			}
			var m store.ShardMeta
			if err := json.Unmarshal(buf, &m); err != nil {
				fmt.Fprint(conn, errLine(fmt.Errorf("ingest: shard metadata: %w", err)))
				continue
			}
			if err := s.st.AddShard(m); err != nil {
				fmt.Fprint(conn, errLine(err))
				continue
			}
			fmt.Fprintf(conn, "OK shard %s\n", oneline(m.Key))
		case "PUT":
			n, err := parseSize(arg, maxContainer)
			if err != nil {
				fmt.Fprint(conn, errLine(err))
				return
			}
			if s.opts.MaxTracesPerConn > 0 && usedTraces >= s.opts.MaxTracesPerConn {
				refuseQuota(br, n, "traces: connection already uploaded its %d-trace budget",
					s.opts.MaxTracesPerConn)
				return
			}
			usedTraces++
			if !chargeBytes(br, n) {
				return
			}
			lr := io.LimitReader(br, n)
			sp := s.opts.Obs.StartRoot(obs.StageIngest)
			meta, sc, perr := s.st.PutContainerScored(lr)
			// Always drain the declared payload so a rejected container
			// does not desynchronize the command stream.
			if _, err := io.Copy(io.Discard, lr); err != nil {
				sp.End()
				s.bail(conn, err)
				return
			}
			if perr != nil {
				sp.Attr("rejected", "true")
				sp.End()
				s.logger().Warn("ingest container rejected", "remote", conn.RemoteAddr().String(), "err", perr)
				fmt.Fprint(conn, errLine(perr))
				continue
			}
			sp.Attr("id", meta.ID)
			sp.Attr("shard", meta.Shard)
			if sc != nil {
				sp.Attr("suspicion", strconv.FormatFloat(sc.Suspicion, 'g', 6, 64))
			}
			sp.End()
			if s.opts.OnTrace != nil {
				s.opts.OnTrace(meta, sc)
			}
			fmt.Fprintf(conn, "OK %s\n", oneline(meta.ID))
		case "DONE":
			if err := s.st.Flush(); err != nil {
				fmt.Fprint(conn, errLine(err))
				return
			}
			fmt.Fprintf(conn, "BYE %d\n", len(s.st.Entries()))
			s.opts.Obs.Event("ingest.done")
			if s.opts.OnDone != nil {
				s.opts.OnDone()
			}
			return
		default:
			fmt.Fprintf(conn, "ERR unknown command %q\n", cmd)
			return
		}
	}
}

// readLine reads one newline-terminated command or reply. The line
// must fit the bufio buffer (4 KiB): a peer that streams bytes without
// ever sending a newline gets an error, not unbounded buffering.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return "", fmt.Errorf("ingest: protocol line exceeds %d bytes", br.Size())
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(string(line), "\r\n"), nil
}

func parseSize(arg string, limit int64) (int64, error) {
	n, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("ingest: bad payload size %q", arg)
	}
	if n > limit {
		return 0, fmt.Errorf("ingest: payload of %d bytes exceeds the %d limit", n, limit)
	}
	return n, nil
}

// PushResult summarizes one Push: how many traces the server accepted
// and any per-trace rejections (which do not abort the session).
type PushResult struct {
	Shards   int
	Accepted int
	Rejected []string // "id: reason" for every ERR reply
}

// Push uploads every shard and trace of a local store to the ingest
// server at addr. Containers are streamed straight from disk. It
// returns the per-trace outcome; err is non-nil only for protocol or
// transport failures.
func Push(addr string, st *store.Store) (*PushResult, error) {
	return PushAuth(addr, st, "")
}

// PushAuth is Push with a shared-secret token, sent as an AUTH line
// right after the banner exchange. An empty secret sends no AUTH line.
func PushAuth(addr string, st *store.Store, secret string) (*PushResult, error) {
	if strings.ContainsAny(secret, "\r\n") {
		return nil, fmt.Errorf("ingest: auth token must be a single line")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial %s: %w", addr, err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "%s\n", Banner)
	if reply, err := readLine(br); err != nil || !strings.HasPrefix(reply, "OK") {
		return nil, fmt.Errorf("ingest: banner rejected: %q err=%v", reply, err)
	}
	if secret != "" {
		fmt.Fprintf(conn, "AUTH %s\n", secret)
		if reply, err := readLine(br); err != nil || !strings.HasPrefix(reply, "OK") {
			return nil, fmt.Errorf("ingest: authentication rejected: %q err=%v", reply, err)
		}
	}
	res := &PushResult{}
	for _, sh := range st.Shards() {
		b, err := json.Marshal(sh)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(conn, "SHARD %d\n", len(b))
		conn.Write(b)
		reply, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %s: %w", sh.Key, err)
		}
		if se := sessionError(reply); se != nil {
			return res, fmt.Errorf("ingest: shard %s: %w", sh.Key, se)
		}
		if !strings.HasPrefix(reply, "OK") {
			return nil, fmt.Errorf("ingest: shard %s rejected: %s", sh.Key, reply)
		}
		res.Shards++
	}
	for _, e := range st.Entries() {
		if err := pushOne(conn, br, st, e, res); err != nil {
			return res, err
		}
	}
	fmt.Fprintf(conn, "DONE\n")
	reply, err := readLine(br)
	if err != nil {
		return res, fmt.Errorf("ingest: closing session: %w", err)
	}
	if !strings.HasPrefix(reply, "BYE") {
		return res, fmt.Errorf("ingest: unexpected close reply %q", reply)
	}
	return res, nil
}

func pushOne(conn net.Conn, br *bufio.Reader, st *store.Store, e store.Entry, res *PushResult) error {
	f, err := st.OpenTrace(e.File)
	if err != nil {
		return fmt.Errorf("ingest: opening %s: %w", e.File, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("ingest: sizing %s: %w", e.File, err)
	}
	fmt.Fprintf(conn, "PUT %d\n", info.Size())
	if _, err := io.Copy(conn, f); err != nil {
		return fmt.Errorf("ingest: uploading %s: %w", e.ID, err)
	}
	reply, err := readLine(br)
	if err != nil {
		return fmt.Errorf("ingest: upload %s: %w", e.ID, err)
	}
	if strings.HasPrefix(reply, "OK") {
		res.Accepted++
		return nil
	}
	// A quota or idle-timeout refusal closes the session: surface it
	// as the typed error instead of a per-trace rejection, so callers
	// can tell "the server rejected this trace" from "the server cut
	// us off".
	if se := sessionError(reply); se != nil {
		return fmt.Errorf("ingest: upload %s: %w", e.ID, se)
	}
	res.Rejected = append(res.Rejected, e.ID+": "+strings.TrimPrefix(reply, "ERR "))
	return nil
}

// quotaReply maps a server "ERR quota ..." line onto the typed
// QuotaError, or nil for any other reply.
func quotaReply(reply string) *QuotaError {
	if detail, ok := strings.CutPrefix(reply, quotaPrefix); ok {
		return &QuotaError{Detail: detail}
	}
	return nil
}

// sessionError maps a server reply that ends the whole session —
// quota exceeded, idle timeout — onto its typed error, or nil for a
// per-trace rejection or success.
func sessionError(reply string) error {
	if qe := quotaReply(reply); qe != nil {
		return qe
	}
	if detail, ok := strings.CutPrefix(reply, timeoutPrefix); ok {
		return &IdleTimeoutError{Detail: detail}
	}
	return nil
}
