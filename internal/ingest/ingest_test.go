package ingest_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sanity/internal/fixtures"
	"sanity/internal/ingest"
	"sanity/internal/pipeline"
	"sanity/internal/store"
)

// exportSynthetic materializes a small synthetic (IPD-only) corpus —
// no engine runs, so the protocol tests stay cheap.
func exportSynthetic(t testing.TB, dir string) *store.Store {
	t.Helper()
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 4, Benign: 3, Covert: 1, Packets: 220}, 99)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportSet(st, set, fixtures.NFSShardMeta(7)); err != nil {
		t.Fatal(err)
	}
	return st
}

func startServer(t testing.TB, dir string) (*ingest.Server, *store.Store) {
	t.Helper()
	spool, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ingest.Listen("127.0.0.1:0", spool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, spool
}

// TestPushSyntheticCorpus ships a synthetic corpus over TCP and
// audits both sides: the spooled corpus must verdict byte-identically
// to the in-memory set it came from.
func TestPushSyntheticCorpus(t *testing.T) {
	src := exportSynthetic(t, filepath.Join(t.TempDir(), "src"))
	srv, spool := startServer(t, filepath.Join(t.TempDir(), "spool"))

	res, err := ingest.Push(srv.Addr().String(), src)
	if err != nil {
		t.Fatal(err)
	}
	want := len(src.Entries())
	if res.Accepted != want || len(res.Rejected) != 0 || res.Shards != 1 {
		t.Fatalf("push result %+v, want %d accepted", res, want)
	}

	// The spool's manifest was flushed by DONE: reopen from disk.
	reopened, err := store.Open(spool.Dir())
	if err != nil {
		t.Fatal(err)
	}
	set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 4, Benign: 3, Covert: 1, Packets: 220}, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Workers: 2, BatchSize: 3}
	base, err := pipeline.New(cfg).Run(set.Batch(false, 7))
	if err != nil {
		t.Fatal(err)
	}
	// No resolver: statistical detectors only, same as Batch(false).
	b, err := pipeline.BatchFromStore(reopened, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pipeline.New(cfg).Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Canonical(), got.Canonical()) {
		t.Fatalf("spooled corpus diverged from in-memory audit:\n--- want\n%s--- got\n%s", base.Canonical(), got.Canonical())
	}
}

// TestCorruptedUploadRejectedPerTrace flips one byte of a stored
// container and pushes the corpus: the server must reject exactly that
// trace with an ERR reply, keep the connection usable, and accept the
// rest.
func TestCorruptedUploadRejectedPerTrace(t *testing.T) {
	src := exportSynthetic(t, filepath.Join(t.TempDir(), "src"))
	entries := src.Entries()
	victim := entries[len(entries)/2]
	path := filepath.Join(src.Dir(), victim.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), raw...)
	mut[len(mut)-2] ^= 0x40 // inside the end frame's CRC
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, spool := startServer(t, filepath.Join(t.TempDir(), "spool"))
	res, err := ingest.Push(srv.Addr().String(), src)
	if err != nil {
		t.Fatalf("push aborted instead of degrading: %v", err)
	}
	if res.Accepted != len(entries)-1 {
		t.Fatalf("accepted %d of %d", res.Accepted, len(entries))
	}
	if len(res.Rejected) != 1 || !strings.Contains(res.Rejected[0], victim.ID) {
		t.Fatalf("rejections %v, want one naming %s", res.Rejected, victim.ID)
	}
	if !strings.Contains(res.Rejected[0], "CRC") {
		t.Fatalf("rejection does not blame the checksum: %v", res.Rejected[0])
	}
	if got := len(spool.Entries()); got != len(entries)-1 {
		t.Fatalf("spool holds %d traces, want %d", got, len(entries)-1)
	}
}

// TestProtocolRaw speaks the wire protocol by hand: bad banner, bad
// sizes, unknown commands, and a valid session.
func TestProtocolRaw(t *testing.T) {
	srv, _ := startServer(t, filepath.Join(t.TempDir(), "spool"))
	addr := srv.Addr().String()

	dial := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn, bufio.NewReader(conn)
	}
	expect := func(br *bufio.Reader, prefix string) string {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply: %v", err)
		}
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("reply %q, want prefix %q", line, prefix)
		}
		return line
	}

	t.Run("bad banner", func(t *testing.T) {
		conn, br := dial()
		fmt.Fprintf(conn, "HELLO\n")
		expect(br, "ERR")
	})
	t.Run("oversized put", func(t *testing.T) {
		conn, br := dial()
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		expect(br, "OK")
		fmt.Fprintf(conn, "PUT 99999999999999\n")
		expect(br, "ERR")
	})
	t.Run("unknown command", func(t *testing.T) {
		conn, br := dial()
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		expect(br, "OK")
		fmt.Fprintf(conn, "FROB 12\n")
		expect(br, "ERR")
	})
	t.Run("garbage put then valid session", func(t *testing.T) {
		conn, br := dial()
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		expect(br, "OK")
		// A PUT whose payload is noise: per-trace ERR, connection lives.
		junk := bytes.Repeat([]byte{0xEE}, 100)
		fmt.Fprintf(conn, "PUT %d\n", len(junk))
		conn.Write(junk)
		expect(br, "ERR")
		fmt.Fprintf(conn, "DONE\n")
		expect(br, "BYE 0")
	})
}

// TestAuth covers the shared-secret slice of ingest hardening: an
// authenticated server admits only clients presenting the right
// token, answers a wrong or missing token with exactly one ERR and a
// closed connection, and an open server still interoperates with
// token-carrying clients.
func TestAuth(t *testing.T) {
	const secret = "squeamish-ossifrage"
	src := exportSynthetic(t, filepath.Join(t.TempDir(), "src"))
	spool, err := store.Create(filepath.Join(t.TempDir(), "spool"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ingest.ListenOpts("127.0.0.1:0", spool, ingest.Options{Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr().String()

	t.Run("right token", func(t *testing.T) {
		res, err := ingest.PushAuth(addr, src, secret)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != len(src.Entries()) || len(res.Rejected) != 0 {
			t.Fatalf("authenticated push result %+v", res)
		}
	})
	t.Run("missing token", func(t *testing.T) {
		if _, err := ingest.Push(addr, src); err == nil || !strings.Contains(err.Error(), "authentication required") {
			t.Fatalf("unauthenticated push error = %v, want authentication required", err)
		}
	})
	t.Run("wrong token closes connection", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		fmt.Fprintf(conn, "%s\nAUTH wrong-token\n", ingest.Banner)
		if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "OK") {
			t.Fatalf("banner reply %q err=%v", line, err)
		}
		if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "ERR") {
			t.Fatalf("wrong token reply %q err=%v, want one ERR", line, err)
		}
		// Exactly one ERR, then the connection is gone.
		fmt.Fprintf(conn, "DONE\n")
		if line, err := br.ReadString('\n'); err == nil {
			t.Fatalf("connection still alive after bad token: got %q", line)
		}
	})
	t.Run("multiline token rejected client-side", func(t *testing.T) {
		if _, err := ingest.PushAuth(addr, src, "a\nb"); err == nil {
			t.Fatal("newline token accepted")
		}
	})
	t.Run("open server tolerates AUTH", func(t *testing.T) {
		open, openSpool := startServer(t, filepath.Join(t.TempDir(), "openspool"))
		res, err := ingest.PushAuth(open.Addr().String(), src, "anything")
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != len(src.Entries()) {
			t.Fatalf("open-server push result %+v", res)
		}
		_ = openSpool
	})

	// Only the authenticated session's traces made it into the spool.
	if got := len(spool.Entries()); got != len(src.Entries()) {
		t.Fatalf("spool holds %d traces, want %d", got, len(src.Entries()))
	}
}

// startServerOpts is startServer with explicit server options.
func startServerOpts(t testing.TB, dir string, opts ingest.Options) (*ingest.Server, *store.Store) {
	t.Helper()
	spool, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ingest.ListenOpts("127.0.0.1:0", spool, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, spool
}

// TestQuotaMaxTraces: a connection may PUT at most MaxTracesPerConn
// traces; the next PUT earns the typed quota refusal and a closed
// connection, with exactly the budgeted traces admitted.
func TestQuotaMaxTraces(t *testing.T) {
	src := exportSynthetic(t, filepath.Join(t.TempDir(), "src"))
	srv, spool := startServerOpts(t, filepath.Join(t.TempDir(), "spool"),
		ingest.Options{MaxTracesPerConn: 2})

	_, err := ingest.Push(srv.Addr().String(), src)
	if !errors.Is(err, ingest.ErrQuota) {
		t.Fatalf("over-budget push error = %v, want ErrQuota", err)
	}
	var qe *ingest.QuotaError
	if !errors.As(err, &qe) || !strings.Contains(qe.Detail, "traces") {
		t.Fatalf("errors.As lost the quota detail: %v", err)
	}
	if got := len(spool.Entries()); got != 2 {
		t.Fatalf("spool admitted %d traces, want exactly the 2-trace budget", got)
	}
}

// TestQuotaMaxBytes: the byte budget is charged against the declared
// payload size before any byte is read, so an over-quota container is
// refused without being spooled.
func TestQuotaMaxBytes(t *testing.T) {
	src := exportSynthetic(t, filepath.Join(t.TempDir(), "src"))
	// The shard JSON fits; the first ~2KB trace container does not.
	srv, spool := startServerOpts(t, filepath.Join(t.TempDir(), "spool"),
		ingest.Options{MaxBytesPerConn: 1024})

	_, err := ingest.Push(srv.Addr().String(), src)
	if !errors.Is(err, ingest.ErrQuota) {
		t.Fatalf("over-budget push error = %v, want ErrQuota", err)
	}
	var qe *ingest.QuotaError
	if !errors.As(err, &qe) || !strings.Contains(qe.Detail, "bytes") {
		t.Fatalf("errors.As lost the quota detail: %v", err)
	}
	if got := len(spool.Entries()); got != 0 {
		t.Fatalf("spool admitted %d traces despite the byte quota", got)
	}
}

// TestQuotaProtocolRaw pins the wire behavior: exceeding a quota
// earns exactly one "ERR quota" line and a closed connection, and the
// budget is per connection — a fresh session starts from zero.
func TestQuotaProtocolRaw(t *testing.T) {
	srv, _ := startServerOpts(t, filepath.Join(t.TempDir(), "spool"),
		ingest.Options{MaxTracesPerConn: 1})
	addr := srv.Addr().String()

	session := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		br := bufio.NewReader(conn)
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
		return conn, br
	}
	spendBudget := func(conn net.Conn, br *bufio.Reader) {
		t.Helper()
		// A junk PUT spends a trace slot (rejected, connection lives).
		junk := bytes.Repeat([]byte{0xEE}, 16)
		fmt.Fprintf(conn, "PUT %d\n", len(junk))
		conn.Write(junk)
		if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "ERR") {
			t.Fatalf("junk PUT reply %q err=%v", line, err)
		}
	}

	conn, br := session()
	spendBudget(conn, br)
	fmt.Fprintf(conn, "PUT 16\n")
	conn.Write(bytes.Repeat([]byte{0xEE}, 16)) // the refusal drains the declared payload
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERR quota") {
		t.Fatalf("over-budget PUT reply %q err=%v, want ERR quota", line, err)
	}
	// The server hung up: the next read sees EOF, not another reply.
	if extra, err := br.ReadString('\n'); err == nil {
		t.Fatalf("connection still open after quota refusal, read %q", extra)
	}

	// A fresh connection gets a fresh budget.
	conn2, br2 := session()
	spendBudget(conn2, br2)
	fmt.Fprintf(conn2, "DONE\n")
	if line, err := br2.ReadString('\n'); err != nil || !strings.HasPrefix(line, "BYE") {
		t.Fatalf("fresh session close reply %q err=%v", line, err)
	}
}

// TestQuotaLargePayloadStillGetsReply: a refused PUT's payload is
// drained before the connection closes, so the typed quota reply
// survives even when the declared payload is far larger than any
// socket buffer (the client writes the whole container before it
// reads a reply).
func TestQuotaLargePayloadStillGetsReply(t *testing.T) {
	srv, _ := startServerOpts(t, filepath.Join(t.TempDir(), "spool"),
		ingest.Options{MaxBytesPerConn: 1024})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "%s\n", ingest.Banner)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	const size = 4 << 20 // well past any default socket buffer
	fmt.Fprintf(conn, "PUT %d\n", size)
	payload := bytes.Repeat([]byte{0xAB}, 64<<10)
	for sent := 0; sent < size; sent += len(payload) {
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("payload write failed at %d bytes: %v — server closed without draining", sent, err)
		}
	}
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERR quota") {
		t.Fatalf("reply %q err=%v, want ERR quota", line, err)
	}
}

// TestConcurrentPushes runs several clients at once; the store must
// serialize admissions without losing or duplicating traces.
func TestConcurrentPushes(t *testing.T) {
	srv, spool := startServer(t, filepath.Join(t.TempDir(), "spool"))
	const clients = 4
	dirs := make([]*store.Store, clients)
	for i := range dirs {
		set, err := fixtures.SyntheticSet(fixtures.SetSizes{Training: 2, Benign: 2, Covert: 1, Packets: 220}, 100+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Create(filepath.Join(t.TempDir(), fmt.Sprintf("c%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		shard := fixtures.NFSShardMeta(7)
		shard.Key = fmt.Sprintf("shard-%d", i)
		if err := fixtures.ExportSet(st, set, shard); err != nil {
			t.Fatal(err)
		}
		dirs[i] = st
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := range dirs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := ingest.Push(srv.Addr().String(), dirs[i])
			if err == nil && (res.Accepted != len(dirs[i].Entries()) || len(res.Rejected) != 0) {
				err = fmt.Errorf("client %d: %+v", i, res)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	for _, d := range dirs {
		want += len(d.Entries())
	}
	if got := len(spool.Entries()); got != want {
		t.Fatalf("spool holds %d traces, want %d", got, want)
	}
	if got := len(spool.Shards()); got != clients {
		t.Fatalf("spool holds %d shards, want %d", got, clients)
	}
}

// TestStoreIngestAuditRoundTrip is the acceptance path: record a
// heterogeneous corpus (two programs, two machine types), export it,
// ship it over TCP, load the spooled corpus through BatchFromStore,
// and demand byte-identical verdicts to auditing the same population
// in memory — with 1 worker and with N.
func TestStoreIngestAuditRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpus in -short mode")
	}
	const seed = 777
	nfs, echo, err := fixtures.HeterogeneousSets(fixtures.SetSizes{
		Training: 3, Benign: 2, Covert: 1, Packets: 50,
	}, 4242)
	if err != nil {
		t.Fatal(err)
	}
	mem := fixtures.HeterogeneousBatch(nfs, echo, seed)
	base, err := pipeline.New(pipeline.Config{Workers: 1, BatchSize: 1}).Run(mem)
	if err != nil {
		t.Fatal(err)
	}

	src, err := store.Create(filepath.Join(t.TempDir(), "playside"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtures.ExportHeterogeneous(src, nfs, echo, seed); err != nil {
		t.Fatal(err)
	}
	srv, spool := startServer(t, filepath.Join(t.TempDir(), "auditside"))
	res, err := ingest.Push(srv.Addr().String(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 || res.Accepted != len(src.Entries()) || res.Shards != 2 {
		t.Fatalf("push result %+v", res)
	}

	for _, cfg := range []pipeline.Config{
		{Workers: 1, BatchSize: 1},
		{Workers: 4, BatchSize: 2},
	} {
		b, err := pipeline.BatchFromStore(spool, fixtures.Resolver)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pipeline.New(cfg).Run(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base.Canonical(), got.Canonical()) {
			t.Fatalf("store round trip diverged at workers=%d:\n--- in-memory\n%s--- store\n%s",
				cfg.Workers, base.Canonical(), got.Canonical())
		}
	}
}

// TestIdleClientTimedOut: a client that connects and goes silent must
// not pin a handler goroutine (and its quota slot) forever. With
// IdleTimeout set, the server answers the stall with exactly one
// typed "ERR idle-timeout ..." line and closes the connection — in
// both the mid-command and mid-payload positions.
func TestIdleClientTimedOut(t *testing.T) {
	const idle = 150 * time.Millisecond
	srv, _ := startServerOpts(t, filepath.Join(t.TempDir(), "spool"),
		ingest.Options{IdleTimeout: idle})

	t.Run("silent after banner", func(t *testing.T) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		br := bufio.NewReader(conn)
		if reply, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(reply, "OK") {
			t.Fatalf("banner reply %q err=%v", reply, err)
		}
		// Go silent: the server must give up on its own.
		start := time.Now()
		rest, _ := io.ReadAll(br)
		if got := string(rest); !strings.Contains(got, "ERR idle-timeout") {
			t.Fatalf("silent connection ended with %q, want an idle-timeout ERR", got)
		}
		if waited := time.Since(start); waited > 10*idle {
			t.Fatalf("server took %v to cut a silent client off (timeout %v)", waited, idle)
		}
	})

	t.Run("stalled mid payload", func(t *testing.T) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		br := bufio.NewReader(conn)
		if reply, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(reply, "OK") {
			t.Fatalf("banner reply %q err=%v", reply, err)
		}
		// Declare a payload, send half of it, stall.
		fmt.Fprintf(conn, "PUT 1000\n")
		conn.Write(bytes.Repeat([]byte{0xAB}, 500))
		rest, _ := io.ReadAll(br)
		if got := string(rest); !strings.Contains(got, "ERR idle-timeout") {
			t.Fatalf("stalled upload ended with %q, want an idle-timeout ERR", got)
		}
	})

	t.Run("slow but moving upload survives", func(t *testing.T) {
		// Each chunk arrives well inside the idle window but the whole
		// transfer takes several windows: progress must keep it alive.
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "%s\n", ingest.Banner)
		br := bufio.NewReader(conn)
		if reply, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(reply, "OK") {
			t.Fatalf("banner reply %q err=%v", reply, err)
		}
		const total = 600
		fmt.Fprintf(conn, "PUT %d\n", total)
		for sent := 0; sent < total; sent += 100 {
			if _, err := conn.Write(bytes.Repeat([]byte{0xCD}, 100)); err != nil {
				t.Fatalf("write at %d bytes: %v", sent, err)
			}
			time.Sleep(idle / 3)
		}
		// The junk payload is rejected per-trace — but over a live
		// connection, which is the point.
		reply, err := br.ReadString('\n')
		if err != nil || !strings.HasPrefix(reply, "ERR") || strings.Contains(reply, "idle-timeout") {
			t.Fatalf("slow upload got %q err=%v, want a per-trace ERR, not a timeout", reply, err)
		}
		fmt.Fprintf(conn, "DONE\n")
		if reply, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(reply, "BYE") {
			t.Fatalf("DONE reply %q err=%v", reply, err)
		}
	})

	if s := srv.Stats(); s.IdleTimeouts != 2 {
		t.Fatalf("Stats.IdleTimeouts = %d, want 2", s.IdleTimeouts)
	}
}

// TestIdleTimeoutTypedOnClient: the wire-level timeout refusal maps
// onto the typed ErrIdleTimeout on the client side, the way quota
// refusals map onto ErrQuota.
func TestIdleTimeoutTypedOnClient(t *testing.T) {
	if se := ingest.ErrorFromReply("ERR idle-timeout no progress for 2m0s"); !errors.Is(se, ingest.ErrIdleTimeout) {
		t.Fatalf("timeout reply did not map to ErrIdleTimeout: %v", se)
	}
	var te *ingest.IdleTimeoutError
	if se := ingest.ErrorFromReply("ERR idle-timeout no progress for 2m0s"); !errors.As(se, &te) || te.Detail != "no progress for 2m0s" {
		t.Fatalf("typed detail lost: %v", se)
	}
	if se := ingest.ErrorFromReply("ERR something else"); se != nil {
		t.Fatalf("unrelated ERR mapped to a session error: %v", se)
	}
	if se := ingest.ErrorFromReply("ERR quota traces: over budget"); !errors.Is(se, ingest.ErrQuota) {
		t.Fatalf("quota reply did not map to ErrQuota: %v", se)
	}
}

// TestServerCloseIdempotentAndConcurrent: every Close call — first,
// repeated, concurrent — returns only after shutdown has fully
// completed, and a connection accepted while Close runs is closed,
// never leaked. Run under -race, this is the close/accept
// interleaving audit.
func TestServerCloseIdempotentAndConcurrent(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		spool, err := store.Create(filepath.Join(t.TempDir(), fmt.Sprintf("spool-%d", round)))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ingest.Listen("127.0.0.1:0", spool)
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr().String()

		// Dialers hammer the listener while Close races them.
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						return // listener closed
					}
					fmt.Fprintf(conn, "%s\n", ingest.Banner)
					br := bufio.NewReader(conn)
					br.ReadString('\n')
					conn.Close()
				}
			}()
		}

		// Several goroutines close concurrently; each must observe the
		// fully-shut-down server when its call returns.
		var closers sync.WaitGroup
		for i := 0; i < 3; i++ {
			closers.Add(1)
			go func() {
				defer closers.Done()
				if err := srv.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
		}
		closers.Wait()
		// After any Close returns, the manifest must be on disk.
		if _, err := store.Open(spool.Dir()); err != nil {
			t.Fatalf("round %d: manifest not flushed when Close returned: %v", round, err)
		}
		close(stop)
		wg.Wait()
	}
	// No handler, accept-loop, or dialer goroutines may survive.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
