package ingest

// ErrorFromReply exposes the client-side reply mapping to the
// external test package: which ERR lines become typed session errors.
var ErrorFromReply = sessionError
