package svm_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"sanity/internal/asm"
	"sanity/internal/hw"
	"sanity/internal/svm"
)

// genExpr builds a random arithmetic straight-line program and the Go
// value it should compute, from a deterministic RNG. Operations are
// chosen to avoid traps (no division), so the program must complete.
func genExpr(r *hw.RNG, depth int) (asmText string, value int64) {
	if depth == 0 || r.Int63n(3) == 0 {
		v := r.Int63n(1000) - 500
		return fmt.Sprintf("    iconst %d\n", v), v
	}
	left, lv := genExpr(r, depth-1)
	right, rv := genExpr(r, depth-1)
	switch r.Int63n(5) {
	case 0:
		return left + right + "    iadd\n", lv + rv
	case 1:
		return left + right + "    isub\n", lv - rv
	case 2:
		return left + right + "    imul\n", lv * rv
	case 3:
		return left + right + "    iand\n", lv & rv
	default:
		return left + right + "    ixor\n", lv ^ rv
	}
}

// TestQuickRandomExpressions cross-checks the interpreter's integer
// arithmetic against Go over randomly generated expression trees.
func TestQuickRandomExpressions(t *testing.T) {
	f := func(seed uint64) bool {
		r := hw.NewRNG(seed)
		body, want := genExpr(r, 5)
		src := ".global out\n.func main 0 2\n" + body + "    gput out\n    ret\n.end\n"
		prog, err := asm.Assemble("expr", src)
		if err != nil {
			t.Logf("assemble failed: %v\n%s", err, src)
			return false
		}
		vm, err := svm.New(prog, nil, svm.Config{MaxSteps: 1_000_000})
		if err != nil {
			return false
		}
		if err := vm.Run(); err != nil {
			return false
		}
		gi, _ := prog.GlobalIndex("out")
		return vm.Globals[gi].I == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVerifierNeverPanics throws random instruction streams at
// the verifier: it must reject or accept, never crash. Accepted
// programs must additionally run without panicking (errors are fine).
func TestQuickVerifierNeverPanics(t *testing.T) {
	f := func(seed uint64, n uint8) (ok bool) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Logf("panic on seed %d: %v", seed, rec)
				ok = false
			}
		}()
		r := hw.NewRNG(seed)
		codeLen := int(n%40) + 2
		code := make([]svm.Instr, codeLen)
		for i := range code {
			code[i] = svm.Instr{
				Op: svm.Opcode(r.Int63n(80)),
				A:  int32(r.Int63n(64) - 8),
				B:  int32(r.Int63n(8)),
			}
		}
		code[codeLen-1] = svm.Instr{Op: svm.OpRet}
		prog := svm.NewProgram("fuzz")
		prog.IntPool = []int64{1, 2}
		prog.FloatPool = []float64{1.5}
		prog.StrPool = []string{"s"}
		if _, err := prog.AddClass(&svm.Class{Name: "C", Fields: []string{"f"}}); err != nil {
			return false
		}
		if _, err := prog.AddGlobal("g"); err != nil {
			return false
		}
		fn := &svm.Function{Name: "main", NumLocals: 4, Code: code}
		if _, err := prog.AddFunction(fn); err != nil {
			return false
		}
		if err := svm.Verify(prog); err != nil {
			return true // rejected: fine
		}
		vm, err := svm.New(prog, nil, svm.Config{MaxSteps: 100_000})
		if err != nil {
			return true
		}
		_ = vm.Run() // traps are fine; panics are not (caught above)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism runs random verified expression programs twice
// under the timed platform with the same seed: instruction counts and
// cycles must match exactly.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		r := hw.NewRNG(seed)
		body, _ := genExpr(r, 4)
		src := ".global out\n.func main 0 2\n" + body + "    gput out\n    ret\n.end\n"
		prog, err := asm.Assemble("expr", src)
		if err != nil {
			return false
		}
		run := func() (int64, int64) {
			plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), seed)
			vm, err := svm.New(prog, nil, svm.Config{Platform: plat, MaxSteps: 1_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Run(); err != nil {
				t.Fatal(err)
			}
			return vm.InstrCount, plat.Cycles()
		}
		i1, c1 := run()
		i2, c2 := run()
		return i1 == i2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGCInvariant allocates random object graphs and verifies
// the collector's fundamental invariant: live bytes after collection
// equal the sum of reachable objects' sizes.
func TestQuickGCInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := hw.NewRNG(seed)
		h := svm.NewHeap(0)
		var roots []svm.Ref
		var all []svm.Ref
		for i := 0; i < 40; i++ {
			var ref svm.Ref
			if r.Int63n(2) == 0 {
				ref = h.AllocBytes(make([]byte, r.Int63n(256)))
			} else {
				var err error
				ref, err = h.AllocArray(svm.ElemRef, int(r.Int63n(4)))
				if err != nil {
					return false
				}
				// Link to an earlier object sometimes.
				o := h.Get(ref)
				if len(o.AR) > 0 && len(all) > 0 {
					o.AR[0] = all[r.Int63n(int64(len(all)))]
				}
			}
			all = append(all, ref)
			if r.Int63n(3) == 0 {
				roots = append(roots, ref)
			}
		}
		h.Collect(roots)
		// Everything reachable from roots must still resolve; the
		// reachable byte count must equal BytesLive.
		var reach func(ref svm.Ref, seen map[svm.Ref]bool)
		seen := make(map[svm.Ref]bool)
		reach = func(ref svm.Ref, seen map[svm.Ref]bool) {
			if ref == 0 || seen[ref] {
				return
			}
			seen[ref] = true
			o := h.Get(ref)
			if o == nil {
				return
			}
			for _, c := range o.AR {
				reach(c, seen)
			}
		}
		for _, rt := range roots {
			reach(rt, seen)
		}
		var want int64
		for ref := range seen {
			o := h.Get(ref)
			if o == nil {
				return false // reachable object was swept
			}
			want += o.Size
		}
		return h.BytesLive == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
