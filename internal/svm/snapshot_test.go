package svm

import (
	"bytes"
	"testing"
)

// snapProgram allocates, loops, and calls a native, so its mid-run
// state exercises heap objects, locals, stack, and globals.
func snapProgram(t *testing.T) *Program {
	t.Helper()
	prog := NewProgram("snap")
	g, err := prog.AddGlobal("acc")
	if err != nil {
		t.Fatal(err)
	}
	nIdx := prog.InternNative("test.mark")
	code := []Instr{
		{Op: OpIConst, A: 64},
		{Op: OpNewArr, A: ElemInt}, // arr in local 0
		{Op: OpStore, A: 0},
		{Op: OpIConst, A: 0}, // i in local 1
		{Op: OpStore, A: 1},
		// loop:
		{Op: OpLoad, A: 1},          // 5
		{Op: OpIConst, A: 2000},
		{Op: OpICmp},
		{Op: OpIfGe, A: 17},
		{Op: OpLoad, A: 0},
		{Op: OpLoad, A: 1},
		{Op: OpIConst, A: 64},
		{Op: OpIRem},
		{Op: OpLoad, A: 1},
		{Op: OpAStore},
		{Op: OpIInc, A: 1, B: 1},
		{Op: OpGoto, A: 5},
		// done:
		{Op: OpNCall, A: int32(nIdx), B: 0}, // 17
		{Op: OpGPut, A: int32(g)},
		{Op: OpLoad, A: 1},
		{Op: OpRetV},
	}
	if _, err := prog.AddFunction(&Function{Name: "main", NumLocals: 2, Code: code, ReturnsValue: true}); err != nil {
		t.Fatal(err)
	}
	return prog
}

func snapNatives() map[string]NativeFunc {
	return map[string]NativeFunc{
		"test.mark": func(ctx *NativeCtx) error {
			ctx.Result = IntV(ctx.VM.InstrCount)
			return nil
		},
	}
}

// TestSnapshotResumeMatchesUninterrupted: snapshot a VM mid-run,
// restore into a fresh VM, run both to completion — identical final
// state.
func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	prog := snapProgram(t)
	ref, err := New(prog, snapNatives(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	vm, err := New(prog, snapNatives(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.RunBudget(1500); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vm.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}

	resumed, err := New(prog, snapNatives(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if resumed.InstrCount != vm.InstrCount {
		t.Fatalf("restored instr count %d, want %d", resumed.InstrCount, vm.InstrCount)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed.InstrCount != ref.InstrCount {
		t.Fatalf("resumed run ended at instr %d, uninterrupted at %d", resumed.InstrCount, ref.InstrCount)
	}
	if resumed.Globals[0] != ref.Globals[0] {
		t.Fatalf("resumed global %+v, want %+v", resumed.Globals[0], ref.Globals[0])
	}
	if got, want := resumed.Threads()[0].Result, ref.Threads()[0].Result; got != want {
		t.Fatalf("resumed result %+v, want %+v", got, want)
	}
	if resumed.Heap.Live() != ref.Heap.Live() || resumed.Heap.BytesLive != ref.Heap.BytesLive {
		t.Fatalf("heap diverged: %d objs/%d bytes vs %d/%d",
			resumed.Heap.Live(), resumed.Heap.BytesLive, ref.Heap.Live(), ref.Heap.BytesLive)
	}
}

// TestSnapshotRestoreRejectsDamage: truncations and structural
// corruption must produce errors, never panics or silent acceptance.
func TestSnapshotRestoreRejectsDamage(t *testing.T) {
	prog := snapProgram(t)
	vm, err := New(prog, snapNatives(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.RunBudget(800); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vm.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	fresh := func() *VM {
		v, err := New(prog, snapNatives(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if err := fresh().RestoreState(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	for _, cut := range []int{1, len(valid) / 3, len(valid) - 1} {
		if err := fresh().RestoreState(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), valid...)
	bad[0] = 99 // version
	if err := fresh().RestoreState(bytes.NewReader(bad)); err == nil {
		t.Fatal("future snapshot version accepted")
	}
	// A snapshot from a different program shape (wrong global count).
	other := NewProgram("other")
	if _, err := other.AddFunction(&Function{Name: "main", NumLocals: 1, Code: []Instr{{Op: OpHalt}}}); err != nil {
		t.Fatal(err)
	}
	ovm, err := New(other, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ovm.RestoreState(bytes.NewReader(valid)); err == nil {
		t.Fatal("snapshot restored into a mismatched program")
	}
}
