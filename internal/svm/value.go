package svm

import "fmt"

// Kind tags the dynamic type of a Value slot.
type Kind uint8

// Value kinds: 64-bit integers, IEEE-754 doubles, and references.
const (
	KInt Kind = iota
	KFloat
	KRef
)

// Ref is a heap handle. Ref 0 is the null reference.
type Ref int64

// Value is one operand-stack or local slot. The SVM is dynamically
// checked: arithmetic on a mistyped slot raises a VM trap rather than
// corrupting state, which keeps workload bugs diagnosable.
type Value struct {
	K Kind
	I int64
	F float64
}

// IntV makes an integer value.
func IntV(i int64) Value { return Value{K: KInt, I: i} }

// FloatV makes a floating-point value.
func FloatV(f float64) Value { return Value{K: KFloat, F: f} }

// RefV makes a reference value.
func RefV(r Ref) Value { return Value{K: KRef, I: int64(r)} }

// Null is the null reference value.
func Null() Value { return Value{K: KRef} }

// Ref returns the value as a reference handle (valid only for KRef).
func (v Value) Ref() Ref { return Ref(v.I) }

// IsNull reports whether the value is the null reference.
func (v Value) IsNull() bool { return v.K == KRef && v.I == 0 }

// String renders the value for diagnostics and the disassembler.
func (v Value) String() string {
	switch v.K {
	case KInt:
		return fmt.Sprintf("i:%d", v.I)
	case KFloat:
		return fmt.Sprintf("f:%g", v.F)
	case KRef:
		if v.I == 0 {
			return "null"
		}
		return fmt.Sprintf("ref:%d", v.I)
	}
	return "?"
}
