package svm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sanity/internal/asm"
	"sanity/internal/hw"
	"sanity/internal/svm"
)

func TestSwapAndDup(t *testing.T) {
	v := mainResult(t, `
	    iconst 3
	    iconst 10
	    swap
	    isub          ; 10 - 3
	    dup
	    iadd          ; 7 + 7
	    gput out
	    ret`)
	if v.I != 14 {
		t.Fatalf("got %d, want 14", v.I)
	}
}

func TestRefArrays(t *testing.T) {
	vm := run(t, `
.global out
.func main 0 3
    iconst 2
    newarr ref
    store 0
    load 0
    iconst 0
    sconst "abc"
    astore
    load 0
    iconst 1
    sconst "defgh"
    astore
    load 0
    iconst 0
    aload
    alen
    load 0
    iconst 1
    aload
    alen
    iadd
    gput out
    ret
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if vm.Globals[gi].I != 8 {
		t.Fatalf("total string length %d, want 8", vm.Globals[gi].I)
	}
}

func TestNullStoreIntoRefArray(t *testing.T) {
	run(t, `
.func main 0 2
    iconst 1
    newarr ref
    store 0
    load 0
    iconst 0
    nullc
    astore
    load 0
    iconst 0
    aload
    ifnull ok
    iconst 1
    iconst 0
    idiv
    pop
ok:
    ret
.end`, nil)
}

func TestMixedTypeArrayStoreTraps(t *testing.T) {
	runErr(t, `
.func main 0 2
    iconst 1
    newarr float
    store 0
    load 0
    iconst 0
    iconst 7
    astore
    ret
.end`, "float array")
}

func TestNestedExceptionHandlers(t *testing.T) {
	// Inner handler rethrows; outer handler catches.
	v := mainResult(t, `
	outer_s:
	    call risky
	    ret
	outer_e:
	outer_h:
	    pop
	    iconst 42
	    gput out
	    ret
	.catch outer_s outer_e outer_h
	.end
	.func risky 0 1
	inner_s:
	    sconst "boom"
	    throw
	    ret
	inner_e:
	inner_h:
	    throw        ; rethrow to the caller
	    ret
	.catch inner_s inner_e inner_h`)
	if v.I != 42 {
		t.Fatalf("outer handler result %d, want 42", v.I)
	}
}

func TestSpawnedThreadResultIsolated(t *testing.T) {
	// A value-returning function can be spawned; its return value is
	// stored on the thread, not pushed anywhere.
	vm := run(t, `
.global out
.func main 0 2
    iconst 5
    spawn double
    pop
    ret
.end
.func double 1 1 retv
    load 0
    load 0
    iadd
    dup
    gput out
    retv
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if vm.Globals[gi].I != 10 {
		t.Fatalf("spawned result %d, want 10", vm.Globals[gi].I)
	}
	threads := vm.Threads()
	if len(threads) != 2 {
		t.Fatalf("threads = %d", len(threads))
	}
	if threads[1].Result.I != 10 {
		t.Fatalf("thread result %v", threads[1].Result)
	}
}

func TestReentrantMonitor(t *testing.T) {
	run(t, `
.global lock
.func main 0 1
    iconst 1
    newarr int
    gput lock
    gget lock
    monenter
    gget lock
    monenter     ; re-entry by the owner must not deadlock
    gget lock
    monexit
    gget lock
    monexit
    ret
.end`, nil)
}

func TestMonitorExitWithoutOwnershipTraps(t *testing.T) {
	runErr(t, `
.func main 0 1
    iconst 1
    newarr int
    monexit
    ret
.end`, "monexit without ownership")
}

func TestSliceBudgetBoundsInterleaving(t *testing.T) {
	// With a huge budget, the first spawned thread runs to completion
	// before the second starts; with budget 1 they alternate. The
	// recorded order must reflect that.
	src := `
.global buf
.global pos
.func main 0 1
    iconst 40
    newarr int
    gput buf
    iconst 1
    spawn writer
    pop
    iconst 2
    spawn writer
    pop
    ret
.end
.func writer 1 2
    iconst 0
    store 1
loop:
    load 1
    iconst 10
    if_icmpge done
    gget buf
    gget pos
    load 0
    astore
    gget pos
    iconst 1
    iadd
    gput pos
    iinc 1 1
    goto loop
done:
    ret
.end`
	order := func(budget int64) []int64 {
		prog := asm.MustAssemble("sched", src)
		vm, err := svm.New(prog, nil, svm.Config{SliceBudget: budget, MaxSteps: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		gi, _ := prog.GlobalIndex("buf")
		return vm.Heap.Get(vm.Globals[gi].Ref()).AI[:20]
	}
	big := order(1 << 20)
	// Sequential: all 1s then all 2s.
	for i := 0; i < 10; i++ {
		if big[i] != 1 || big[10+i] != 2 {
			t.Fatalf("big budget interleaved: %v", big)
		}
	}
	// With a tiny budget the threads interleave (and, absent locks,
	// race on pos — deterministically). The result cannot be the
	// sequential pattern above.
	small := order(7)
	sequential := true
	for i := 0; i < 10; i++ {
		if small[i] != 1 || small[10+i] != 2 {
			sequential = false
			break
		}
	}
	if sequential {
		t.Fatalf("small budget still sequential: %v", small)
	}
	// And it must be reproducible: deterministic multithreading means
	// the same racy interleaving every run.
	again := order(7)
	for i := range small {
		if small[i] != again[i] {
			t.Fatalf("racy interleaving not deterministic at %d", i)
		}
	}
}

func TestVerifierHandlerChecks(t *testing.T) {
	prog := svm.NewProgram("h")
	fn := &svm.Function{Name: "main", NumLocals: 1, Code: []svm.Instr{
		{Op: svm.OpNop}, {Op: svm.OpRet},
	}, Handlers: []svm.Handler{{Start: 0, End: 5, Target: 0, Class: -1}}}
	if _, err := prog.AddFunction(fn); err != nil {
		t.Fatal(err)
	}
	err := svm.Verify(prog)
	if err == nil || !strings.Contains(err.Error(), "handler") {
		t.Fatalf("bad handler range accepted: %v", err)
	}
}

func TestVerifierSpawnArity(t *testing.T) {
	_, err := asm.Assemble("s", `
.func main 0 1
    iconst 1
    iconst 2
    spawn w
    pop
    ret
.end
.func w 2 2
    ret
.end`)
	// The assembler auto-fills spawn arity from the callee, so this
	// assembles; hand-built wrong arity must be rejected.
	if err != nil {
		t.Fatalf("assembler spawn failed: %v", err)
	}
	prog := svm.NewProgram("bad")
	w := &svm.Function{Name: "w", NumParams: 2, NumLocals: 2, Code: []svm.Instr{{Op: svm.OpRet}}}
	main := &svm.Function{Name: "main", NumLocals: 1, Code: []svm.Instr{
		{Op: svm.OpIConst, A: 1},
		{Op: svm.OpSpawn, A: 1, B: 1}, // wrong: w takes 2
		{Op: svm.OpPop},
		{Op: svm.OpRet},
	}}
	if _, err := prog.AddFunction(main); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.AddFunction(w); err != nil {
		t.Fatal(err)
	}
	if err := svm.Verify(prog); err == nil {
		t.Fatal("wrong spawn arity accepted")
	}
}

func TestHeapAllocKinds(t *testing.T) {
	h := svm.NewHeap(0)
	for _, kind := range []int{svm.ElemInt, svm.ElemFloat, svm.ElemByte, svm.ElemRef} {
		r, err := h.AllocArray(kind, 16)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if h.Get(r).Len() != 16 {
			t.Fatalf("kind %d len wrong", kind)
		}
	}
	if _, err := h.AllocArray(99, 1); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestHeapAddressesAligned(t *testing.T) {
	h := svm.NewHeap(0)
	f := func(sz uint16) bool {
		r := h.AllocBytes(make([]byte, int(sz)%4096))
		return h.Get(r).Addr%64 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimedMultithreadedDeterministicAcrossSeeds(t *testing.T) {
	// Deterministic multithreading (§3.2): with the Sanity profile the
	// interleaving is identical across hardware seeds, so instruction
	// counts match exactly.
	src := `
.global pos
.func main 0 1
    spawn w
    pop
    spawn w
    pop
    ret
.end
.func w 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 200
    if_icmpge done
    gget pos
    iconst 1
    iadd
    gput pos
    iinc 0 1
    yield
    goto loop
done:
    ret
.end`
	runWith := func(seed uint64) int64 {
		prog := asm.MustAssemble("mt", src)
		plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), seed)
		vm, err := svm.New(prog, nil, svm.Config{Platform: plat, SliceBudget: 13, MaxSteps: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return vm.InstrCount
	}
	if runWith(1) != runWith(2) {
		t.Fatal("instruction counts differ across seeds under deterministic multithreading")
	}
}

func TestSchedulerJitterBreaksDeterminismInDirtyMode(t *testing.T) {
	// The converse: a noisy scheduler (SchedulerJitter > 0) moves the
	// slice boundaries, so multithreaded interleavings vary by seed.
	// This is the "Scheduler" row of Table 1.
	src := `
.global buf
.global pos
.func main 0 1
    iconst 400
    newarr int
    gput buf
    spawn w1
    pop
    spawn w2
    pop
    ret
.end
.func w1 0 2
    iconst 0
    store 0
l:
    load 0
    iconst 100
    if_icmpge d
    gget buf
    gget pos
    iconst 1
    astore
    gget pos
    iconst 1
    iadd
    gput pos
    iinc 0 1
    goto l
d:
    ret
.end
.func w2 0 2
    iconst 0
    store 0
l:
    load 0
    iconst 100
    if_icmpge d
    gget buf
    gget pos
    iconst 2
    astore
    gget pos
    iconst 1
    iadd
    gput pos
    iinc 0 1
    goto l
d:
    ret
.end`
	capture := func(seed uint64) []int64 {
		prog := asm.MustAssemble("mtj", src)
		plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileDirty(), seed)
		vm, err := svm.New(prog, nil, svm.Config{Platform: plat, SliceBudget: 17, MaxSteps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		gi, _ := prog.GlobalIndex("buf")
		return append([]int64(nil), vm.Heap.Get(vm.Globals[gi].Ref()).AI...)
	}
	a := capture(1)
	diff := false
	for s := uint64(2); s < 6 && !diff; s++ {
		b := capture(s)
		for i := range a {
			if a[i] != b[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("dirty-mode scheduler produced identical interleavings across seeds")
	}
}
