package svm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sanity/internal/asm"
	"sanity/internal/hw"
	"sanity/internal/svm"
)

// run assembles src, runs it to completion in plain mode, and returns
// the VM for inspection.
func run(t *testing.T, src string, natives map[string]svm.NativeFunc) *svm.VM {
	t.Helper()
	prog, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm, err := svm.New(prog, natives, svm.Config{MaxSteps: 50_000_000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	if err := vm.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return vm
}

// runErr assembles and runs src, expecting a runtime error containing
// want.
func runErr(t *testing.T, src, want string) {
	t.Helper()
	prog, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm, err := svm.New(prog, nil, svm.Config{MaxSteps: 1_000_000})
	if err != nil {
		t.Fatalf("new vm: %v", err)
	}
	err = vm.Run()
	if err == nil {
		t.Fatalf("expected error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

// mainResult runs a program whose main stores its answer in global
// "out" and returns that value.
func mainResult(t *testing.T, body string) svm.Value {
	t.Helper()
	vm := run(t, ".global out\n.func main 0 8\n"+body+"\n.end\n", nil)
	gi, ok := vm.Prog.GlobalIndex("out")
	if !ok {
		t.Fatal("no out global")
	}
	return vm.Globals[gi]
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int64
	}{
		{"add", "iconst 2\niconst 3\niadd\ngput out\nret", 5},
		{"sub", "iconst 2\niconst 3\nisub\ngput out\nret", -1},
		{"mul", "iconst -4\niconst 3\nimul\ngput out\nret", -12},
		{"div", "iconst 17\niconst 5\nidiv\ngput out\nret", 3},
		{"divneg", "iconst -17\niconst 5\nidiv\ngput out\nret", -3},
		{"rem", "iconst 17\niconst 5\nirem\ngput out\nret", 2},
		{"neg", "iconst 42\nineg\ngput out\nret", -42},
		{"shl", "iconst 1\niconst 10\nishl\ngput out\nret", 1024},
		{"shr", "iconst -16\niconst 2\nishr\ngput out\nret", -4},
		{"ushr", "iconst -1\niconst 60\niushr\ngput out\nret", 15},
		{"and", "iconst 12\niconst 10\niand\ngput out\nret", 8},
		{"or", "iconst 12\niconst 10\nior\ngput out\nret", 14},
		{"xor", "iconst 12\niconst 10\nixor\ngput out\nret", 6},
		{"bigconst", "iconst 1099511627776\ngput out\nret", 1 << 40},
		{"icmp_lt", "iconst 1\niconst 2\nicmp\ngput out\nret", -1},
		{"icmp_eq", "iconst 7\niconst 7\nicmp\ngput out\nret", 0},
		{"f2i", "fconst 3.9\nf2i\ngput out\nret", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := mainResult(t, tc.body)
			if v.K != svm.KInt || v.I != tc.want {
				t.Fatalf("got %v, want i:%d", v, tc.want)
			}
		})
	}
}

func TestFloatArithmetic(t *testing.T) {
	cases := []struct {
		name string
		body string
		want float64
	}{
		{"fadd", "fconst 1.5\nfconst 2.25\nfadd\ngput out\nret", 3.75},
		{"fsub", "fconst 1.5\nfconst 2.25\nfsub\ngput out\nret", -0.75},
		{"fmul", "fconst 1.5\nfconst 4\nfmul\ngput out\nret", 6},
		{"fdiv", "fconst 7\nfconst 2\nfdiv\ngput out\nret", 3.5},
		{"fneg", "fconst 2.5\nfneg\ngput out\nret", -2.5},
		{"i2f", "iconst 9\ni2f\ngput out\nret", 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := mainResult(t, tc.body)
			if v.K != svm.KFloat || v.F != tc.want {
				t.Fatalf("got %v, want f:%g", v, tc.want)
			}
		})
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..100 = 5050 exercises loads, stores, iinc, and branches.
	v := mainResult(t, `
	    iconst 0
	    store 0      ; sum
	    iconst 1
	    store 1      ; i
	loop:
	    load 1
	    iconst 100
	    if_icmpgt done
	    load 0
	    load 1
	    iadd
	    store 0
	    iinc 1 1
	    goto loop
	done:
	    load 0
	    gput out
	    ret`)
	if v.I != 5050 {
		t.Fatalf("sum = %d, want 5050", v.I)
	}
}

func TestFunctionCalls(t *testing.T) {
	vm := run(t, `
.global out
.func main 0 2
    iconst 10
    call fib
    gput out
    ret
.end
.func fib 1 2 retv
    load 0
    iconst 2
    if_icmplt base
    load 0
    iconst -1
    iadd
    call fib
    load 0
    iconst -2
    iadd
    call fib
    iadd
    retv
base:
    load 0
    retv
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if got := vm.Globals[gi].I; got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestArrays(t *testing.T) {
	v := mainResult(t, `
	    iconst 10
	    newarr int
	    store 0
	    iconst 0
	    store 1
	fill:
	    load 1
	    iconst 10
	    if_icmpge sum
	    load 0
	    load 1
	    load 1
	    load 1
	    imul         ; a[i] = i*i
	    astore
	    iinc 1 1
	    goto fill
	sum:
	    iconst 0
	    store 2
	    iconst 0
	    store 1
	sloop:
	    load 1
	    iconst 10
	    if_icmpge done
	    load 2
	    load 0
	    load 1
	    aload
	    iadd
	    store 2
	    iinc 1 1
	    goto sloop
	done:
	    load 2
	    gput out
	    ret`)
	if v.I != 285 { // sum of squares 0..9
		t.Fatalf("sum of squares = %d, want 285", v.I)
	}
}

func TestByteArrays(t *testing.T) {
	v := mainResult(t, `
	    iconst 4
	    newarr byte
	    store 0
	    load 0
	    iconst 0
	    iconst 300   ; truncates to 44
	    astore
	    load 0
	    iconst 0
	    aload
	    gput out
	    ret`)
	if v.I != 44 {
		t.Fatalf("byte truncation got %d, want 44", v.I)
	}
}

func TestArrayLen(t *testing.T) {
	v := mainResult(t, "iconst 17\nnewarr float\nalen\ngput out\nret")
	if v.I != 17 {
		t.Fatalf("alen = %d, want 17", v.I)
	}
}

func TestObjectsAndFields(t *testing.T) {
	vm := run(t, `
.class Point x y
.global out
.func main 0 2
    new Point
    store 0
    load 0
    iconst 3
    putf Point x
    load 0
    iconst 4
    putf Point y
    load 0
    getf Point x
    load 0
    getf Point y
    imul
    gput out
    ret
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if got := vm.Globals[gi].I; got != 12 {
		t.Fatalf("x*y = %d, want 12", got)
	}
}

func TestStringConstants(t *testing.T) {
	vm := run(t, `
.global out
.func main 0 1
    sconst "hello"
    alen
    gput out
    ret
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if got := vm.Globals[gi].I; got != 5 {
		t.Fatalf("len = %d, want 5", got)
	}
}

func TestExceptionsCaught(t *testing.T) {
	v := mainResult(t, `
	tstart:
	    iconst 1
	    iconst 0
	    idiv         ; traps
	    gput out
	    ret
	tend:
	handler:
	    pop          ; discard exception ref
	    iconst 99
	    gput out
	    ret
	.catch tstart tend handler`)
	if v.I != 99 {
		t.Fatalf("handler result = %d, want 99", v.I)
	}
}

func TestExceptionsUncaught(t *testing.T) {
	runErr(t, ".func main 0 1\niconst 1\niconst 0\nidiv\npop\nret\n.end", "division by zero")
}

func TestExplicitThrowAcrossFrames(t *testing.T) {
	v := mainResult(t, `
	tstart:
	    call boom
	    ret
	tend:
	handler:
	    alen        ; exception payload is a byte array; use its length
	    gput out
	    ret
	.catch tstart tend handler
	.end
	.func boom 0 1
	    sconst "bang"
	    throw
	    ret`)
	if v.I != 4 {
		t.Fatalf("payload length = %d, want 4", v.I)
	}
}

func TestTypedCatch(t *testing.T) {
	// A typed handler must not catch a trap (byte-array payload), but
	// a catch-all later in the table must.
	vm := run(t, `
.class IOError code
.global out
.func main 0 1
tstart:
    iconst 1
    iconst 0
    idiv
    pop
    ret
tend:
typed:
    pop
    iconst 1
    gput out
    ret
any:
    pop
    iconst 2
    gput out
    ret
.catch tstart tend typed IOError
.catch tstart tend any
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if got := vm.Globals[gi].I; got != 2 {
		t.Fatalf("catch-all result = %d, want 2", got)
	}
}

func TestTrapNullDeref(t *testing.T) {
	runErr(t, ".class C f\n.func main 0 1\nnullc\ngetf C f\npop\nret\n.end", "null dereference")
}

func TestTrapArrayBounds(t *testing.T) {
	runErr(t, ".func main 0 1\niconst 3\nnewarr int\niconst 5\naload\npop\nret\n.end", "out of range")
}

func TestTrapNegativeArrayLength(t *testing.T) {
	runErr(t, ".func main 0 1\niconst -1\nnewarr int\npop\nret\n.end", "negative array length")
}

func TestTrapTypeConfusion(t *testing.T) {
	runErr(t, ".func main 0 1\nfconst 1.0\niconst 2\niadd\npop\nret\n.end", "non-int")
}

func TestNativeCall(t *testing.T) {
	var got []int64
	natives := map[string]svm.NativeFunc{
		"test.sink": func(ctx *svm.NativeCtx) error {
			got = append(got, ctx.Args[0].I)
			ctx.Result = svm.IntV(ctx.Args[0].I * 2)
			return nil
		},
	}
	vm := run(t, `
.global out
.func main 0 1
    iconst 21
    ncall test.sink 1
    gput out
    ret
.end`, natives)
	gi, _ := vm.Prog.GlobalIndex("out")
	if vm.Globals[gi].I != 42 {
		t.Fatalf("native result = %d, want 42", vm.Globals[gi].I)
	}
	if len(got) != 1 || got[0] != 21 {
		t.Fatalf("native saw %v, want [21]", got)
	}
}

func TestMissingNativeIsLoadError(t *testing.T) {
	prog, err := asm.Assemble("t", ".func main 0 1\niconst 0\nncall no.such 1\npop\nret\n.end")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := svm.New(prog, nil, svm.Config{}); err == nil {
		t.Fatal("expected unresolved-native error")
	}
}

func TestThreadsSpawnAndRun(t *testing.T) {
	// Two workers each add their argument into a global; deterministic
	// round-robin means this always completes with the same result.
	vm := run(t, `
.global out
.func main 0 2
    iconst 100
    spawn worker
    pop
    iconst 200
    spawn worker
    pop
    ret
.end
.func worker 1 2
    gget out
    load 0
    iadd
    gput out
    ret
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("out")
	if vm.Globals[gi].I != 300 {
		t.Fatalf("workers sum = %d, want 300", vm.Globals[gi].I)
	}
}

func TestThreadInterleavingDeterministic(t *testing.T) {
	// Two threads append their IDs into a shared array; the recorded
	// interleaving must be identical across runs (deterministic
	// multithreading, §3.2).
	src := `
.global buf
.global pos
.func main 0 2
    iconst 64
    newarr int
    gput buf
    iconst 1
    spawn writer
    pop
    iconst 2
    spawn writer
    pop
    ret
.end
.func writer 1 2
    iconst 0
    store 1
loop:
    load 1
    iconst 16
    if_icmpge done
    gget buf
    gget pos
    load 0
    astore
    gget pos
    iconst 1
    iadd
    gput pos
    iinc 1 1
    yield
    goto loop
done:
    ret
.end`
	capture := func() []int64 {
		vm := run(t, src, nil)
		gi, _ := vm.Prog.GlobalIndex("buf")
		o := vm.Heap.Get(vm.Globals[gi].Ref())
		return append([]int64(nil), o.AI...)
	}
	a := capture()
	b := capture()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestMonitorsMutualExclusion(t *testing.T) {
	// Without the lock, the read-modify-write of "counter" could
	// interleave badly at slice boundaries; with monitors and a tiny
	// slice budget the result must still be exact.
	src := `
.global lock
.global counter
.func main 0 1
    iconst 1
    newarr int
    gput lock
    spawn adder
    pop
    spawn adder
    pop
    ret
.end
.func adder 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 200
    if_icmpge done
    gget lock
    monenter
    gget counter
    iconst 1
    iadd
    gput counter
    gget lock
    monexit
    iinc 0 1
    goto loop
done:
    ret
.end`
	prog, err := asm.Assemble("mon", src)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := svm.New(prog, nil, svm.Config{SliceBudget: 7, MaxSteps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	gi, _ := vm.Prog.GlobalIndex("counter")
	if vm.Globals[gi].I != 400 {
		t.Fatalf("counter = %d, want 400", vm.Globals[gi].I)
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	prog, err := asm.Assemble("gc", `
.func main 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 2000
    if_icmpge done
    iconst 1024
    newarr byte
    pop              ; immediately garbage
    iinc 0 1
    goto loop
done:
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := svm.New(prog, nil, svm.Config{GCThreshold: 64 << 10, MaxSteps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Heap.Collections == 0 {
		t.Fatal("no collections happened")
	}
	// 2000 KiB allocated with a 64 KiB threshold: live bytes must stay
	// far below the total allocated.
	if vm.Heap.BytesLive > 512<<10 {
		t.Fatalf("live bytes %d suggest GC is not reclaiming", vm.Heap.BytesLive)
	}
}

func TestGCPreservesReachable(t *testing.T) {
	vm := run(t, `
.global keep
.func main 0 2
    iconst 8
    newarr int
    gput keep
    gget keep
    iconst 3
    iconst 777
    astore
    iconst 0
    store 0
loop:
    load 0
    iconst 500
    if_icmpge done
    iconst 4096
    newarr byte
    pop
    iinc 0 1
    goto loop
done:
    gget keep
    iconst 3
    aload
    gput keep
    ret
.end`, nil)
	gi, _ := vm.Prog.GlobalIndex("keep")
	if vm.Globals[gi].I != 777 {
		t.Fatalf("reachable value lost across GC: %v", vm.Globals[gi])
	}
}

func TestGCCollectDirect(t *testing.T) {
	h := svm.NewHeap(0)
	a := h.AllocBytes([]byte("root"))
	h.AllocBytes([]byte("garbage1"))
	h.AllocBytes([]byte("garbage2"))
	marked, swept := h.Collect([]svm.Ref{a})
	if marked != 1 || swept != 2 {
		t.Fatalf("marked=%d swept=%d, want 1,2", marked, swept)
	}
	if h.Get(a) == nil {
		t.Fatal("root was swept")
	}
}

func TestGCTracesReferences(t *testing.T) {
	h := svm.NewHeap(0)
	inner := h.AllocBytes([]byte("inner"))
	arr, err := h.AllocArray(svm.ElemRef, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Get(arr).AR[0] = inner
	obj := h.AllocObject(0, 2)
	h.Get(obj).Fields[1] = svm.RefV(arr)
	marked, swept := h.Collect([]svm.Ref{obj})
	if marked != 3 || swept != 0 {
		t.Fatalf("marked=%d swept=%d, want 3,0", marked, swept)
	}
}

func TestHeapAddressReuseDeterministic(t *testing.T) {
	alloc := func() []int64 {
		h := svm.NewHeap(0)
		var addrs []int64
		a := h.AllocBytes(make([]byte, 100))
		b := h.AllocBytes(make([]byte, 100))
		addrs = append(addrs, h.Get(a).Addr, h.Get(b).Addr)
		h.Collect([]svm.Ref{b}) // frees a
		c := h.AllocBytes(make([]byte, 100))
		addrs = append(addrs, h.Get(c).Addr)
		return addrs
	}
	x, y := alloc(), alloc()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("allocation addresses diverged: %v vs %v", x, y)
		}
	}
	// The freed address must be reused.
	if x[2] != x[0] {
		t.Fatalf("freed address %#x not reused (got %#x)", x[0], x[2])
	}
}

func TestHaltExitCode(t *testing.T) {
	vm := run(t, ".func main 0 1\nhalt 7\n.end", nil)
	if vm.ExitCode != 7 {
		t.Fatalf("exit code %d, want 7", vm.ExitCode)
	}
}

func TestInstrCountDeterministic(t *testing.T) {
	src := `
.func main 0 3
    iconst 0
    store 0
loop:
    load 0
    iconst 1000
    if_icmpge done
    iinc 0 1
    goto loop
done:
    ret
.end`
	count := func() int64 {
		vm := run(t, src, nil)
		return vm.InstrCount
	}
	if count() != count() {
		t.Fatal("instruction count not deterministic")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Main grabs the lock and spawns a worker that blocks on it
	// forever; main returns while still holding it... monitors held by
	// finished threads are released, so instead build a real deadlock:
	// two threads each hold one lock and want the other.
	src := `
.global l1
.global l2
.func main 0 1
    iconst 1
    newarr int
    gput l1
    iconst 1
    newarr int
    gput l2
    spawn w1
    pop
    spawn w2
    pop
    ret
.end
.func w1 0 1
    gget l1
    monenter
    yield
    gget l2
    monenter
    ret
.end
.func w2 0 1
    gget l2
    monenter
    yield
    gget l1
    monenter
    ret
.end`
	prog, err := asm.Assemble("dl", src)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := svm.New(prog, nil, svm.Config{SliceBudget: 3, MaxSteps: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	err = vm.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestVerifyRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"underflow", ".func main 0 1\niadd\nret\n.end", "underflow"},
		{"fallsOff", ".func main 0 1\niconst 1\npop\n.end", "falls off"},
		{"badSlot", ".func main 0 1\nload 5\npop\nret\n.end", "out of"},
		{"retvInVoid", ".func main 0 1\niconst 1\nretv\n.end", "retv in void"},
		{"inconsistentMerge", `
.func main 0 1
    iconst 0
    ifeq merge
    iconst 1
merge:
    ret
.end`, "inconsistent stack depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := asm.Assemble("bad", tc.src)
			if err == nil {
				t.Fatal("expected verify error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestTimedModeChargesCycles(t *testing.T) {
	prog, err := asm.Assemble("timed", `
.func main 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 10000
    if_icmpge done
    iinc 0 1
    goto loop
done:
    ret
.end`)
	if err != nil {
		t.Fatal(err)
	}
	plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), 1)
	plat.Initialize()
	start := plat.Cycles()
	vm, err := svm.New(prog, nil, svm.Config{Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	cycles := plat.Cycles() - start
	if cycles < vm.InstrCount {
		t.Fatalf("charged %d cycles for %d instructions", cycles, vm.InstrCount)
	}
}

func TestTimedModeDeterministicSameSeed(t *testing.T) {
	src := `
.func main 0 2
    iconst 0
    store 0
loop:
    load 0
    iconst 20000
    if_icmpge done
    iinc 0 1
    goto loop
done:
    ret
.end`
	runOnce := func(seed uint64) (int64, int64) {
		prog := asm.MustAssemble("t", src)
		plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), seed)
		plat.Initialize()
		vm, err := svm.New(prog, nil, svm.Config{Platform: plat})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return plat.Cycles(), vm.InstrCount
	}
	c1, i1 := runOnce(5)
	c2, i2 := runOnce(5)
	if c1 != c2 || i1 != i2 {
		t.Fatalf("same seed diverged: cycles %d vs %d, instr %d vs %d", c1, c2, i1, i2)
	}
	// Different seed: instruction count identical (program is
	// deterministic), cycles may differ only within residual noise.
	c3, i3 := runOnce(6)
	if i3 != i1 {
		t.Fatalf("instruction count changed with seed: %d vs %d", i3, i1)
	}
	rel := float64(abs64(c3-c1)) / float64(c1)
	if rel > 0.02 {
		t.Fatalf("sanity-profile cycle variance %.4f above 2%%", rel)
	}
}

func TestSkipIdleAdvancesCounters(t *testing.T) {
	prog := asm.MustAssemble("s", ".func main 0 1\nret\n.end")
	plat := hw.MustNewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), 1)
	vm, err := svm.New(prog, nil, svm.Config{Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	i0, c0 := vm.InstrCount, plat.Cycles()
	vm.SkipIdle(100, 7, 9)
	if vm.InstrCount-i0 != 700 {
		t.Fatalf("instr delta %d, want 700", vm.InstrCount-i0)
	}
	if plat.Cycles()-c0 != 900 {
		t.Fatalf("cycle delta %d, want 900", plat.Cycles()-c0)
	}
}

func TestQuickLoopSumMatchesGo(t *testing.T) {
	// Property test: for random n in [0,400], the VM's 1..n sum must
	// match Go's.
	f := func(nRaw uint16) bool {
		n := int64(nRaw % 401)
		prog := asm.MustAssemble("q", `
.global n
.global out
.func main 0 2
    iconst 0
    store 0
    iconst 1
    store 1
loop:
    load 1
    gget n
    if_icmpgt done
    load 0
    load 1
    iadd
    store 0
    iinc 1 1
    goto loop
done:
    load 0
    gput out
    ret
.end`)
		vm, err := svm.New(prog, nil, svm.Config{MaxSteps: 10_000_000})
		if err != nil {
			return false
		}
		gi, _ := prog.GlobalIndex("n")
		vm.Globals[gi] = svm.IntV(n)
		if err := vm.Run(); err != nil {
			return false
		}
		oi, _ := prog.GlobalIndex("out")
		return vm.Globals[oi].I == n*(n+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
