package svm

import "fmt"

// Verify statically checks a program before it is allowed to run:
// operand ranges, branch targets, call arities, stack-depth
// consistency at every merge point, and termination of every path.
// The check is conservative in the spirit of the JVM's bytecode
// verifier, but tracks only stack depth, not slot types (the
// interpreter checks types dynamically).
func Verify(p *Program) error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("svm: program %q has no functions", p.Name)
	}
	for idx, f := range p.Funcs {
		if err := verifyFunc(p, idx, f); err != nil {
			return err
		}
	}
	return nil
}

func verifyFunc(p *Program, fnIdx int, f *Function) error {
	fail := func(pc int, format string, args ...any) error {
		return fmt.Errorf("svm: verify %s@%d: %s", f.Name, pc, fmt.Sprintf(format, args...))
	}
	if f.NumParams < 0 || f.NumLocals < f.NumParams {
		return fail(0, "locals %d < params %d", f.NumLocals, f.NumParams)
	}
	if len(f.Code) == 0 {
		return fail(0, "empty body")
	}

	// Pass 1: static operand checks, and terminality of fallthrough
	// at the end of the body.
	for pc, in := range f.Code {
		switch in.Op {
		case OpLoad, OpStore, OpIInc:
			if in.A < 0 || int(in.A) >= f.NumLocals {
				return fail(pc, "local slot %d out of %d", in.A, f.NumLocals)
			}
		case OpLConst:
			if in.A < 0 || int(in.A) >= len(p.IntPool) {
				return fail(pc, "int-pool index %d out of range", in.A)
			}
		case OpFConst:
			if in.A < 0 || int(in.A) >= len(p.FloatPool) {
				return fail(pc, "float-pool index %d out of range", in.A)
			}
		case OpSConst:
			if in.A < 0 || int(in.A) >= len(p.StrPool) {
				return fail(pc, "string-pool index %d out of range", in.A)
			}
		case OpGoto, OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe,
			OpIfICmpEq, OpIfICmpNe, OpIfICmpLt, OpIfICmpGe, OpIfICmpGt, OpIfICmpLe,
			OpIfNull, OpIfNonNull:
			if in.A < 0 || int(in.A) >= len(f.Code) {
				return fail(pc, "branch target %d out of range", in.A)
			}
		case OpNewArr:
			if in.A < ElemInt || in.A > ElemRef {
				return fail(pc, "bad array element kind %d", in.A)
			}
		case OpNew:
			if in.A < 0 || int(in.A) >= len(p.Classes) {
				return fail(pc, "class index %d out of range", in.A)
			}
		case OpGetF, OpPutF:
			if in.A < 0 {
				return fail(pc, "negative field offset")
			}
		case OpGGet, OpGPut:
			if in.A < 0 || int(in.A) >= len(p.Globals) {
				return fail(pc, "global index %d out of range", in.A)
			}
		case OpCall, OpSpawn:
			if in.A < 0 || int(in.A) >= len(p.Funcs) {
				return fail(pc, "function index %d out of range", in.A)
			}
			if in.Op == OpSpawn {
				callee := p.Funcs[in.A]
				if int(in.B) != callee.NumParams {
					return fail(pc, "spawn passes %d args, %s takes %d", in.B, callee.Name, callee.NumParams)
				}
			}
		case OpNCall:
			if in.A < 0 || int(in.A) >= len(p.Natives) {
				return fail(pc, "native index %d out of range", in.A)
			}
			if in.B < 0 {
				return fail(pc, "negative native arity")
			}
		case OpRet:
			if f.ReturnsValue {
				return fail(pc, "ret in value-returning function")
			}
		case OpRetV:
			if !f.ReturnsValue {
				return fail(pc, "retv in void function")
			}
		}
		if int(in.Op) >= int(opCount) {
			return fail(pc, "illegal opcode %d", in.Op)
		}
	}

	// Handler table checks.
	for i, h := range f.Handlers {
		if h.Start < 0 || h.End > len(f.Code) || h.Start >= h.End {
			return fail(h.Start, "handler %d has bad range [%d,%d)", i, h.Start, h.End)
		}
		if h.Target < 0 || h.Target >= len(f.Code) {
			return fail(h.Target, "handler %d target out of range", i)
		}
		if h.Class < -1 || h.Class >= len(p.Classes) {
			return fail(h.Start, "handler %d class %d out of range", i, h.Class)
		}
	}

	// Pass 2: stack-depth dataflow. depth[pc] == -1 means unvisited.
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = -1
	}
	type work struct{ pc, d int }
	queue := []work{{0, 0}}
	for _, h := range f.Handlers {
		queue = append(queue, work{h.Target, 1}) // exception ref on stack
	}
	const maxStack = 4096
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if depth[w.pc] != -1 {
			if depth[w.pc] != w.d {
				return fail(w.pc, "inconsistent stack depth %d vs %d at merge", depth[w.pc], w.d)
			}
			continue
		}
		depth[w.pc] = w.d
		in := f.Code[w.pc]
		pops, pushes := stackEffect(p, in)
		d := w.d - pops
		if d < 0 {
			return fail(w.pc, "stack underflow (%s needs %d, has %d)", in.Op, pops, w.d)
		}
		d += pushes
		if d > maxStack {
			return fail(w.pc, "stack depth exceeds %d", maxStack)
		}
		switch in.Op {
		case OpRet, OpRetV, OpHalt, OpThrow:
			// Terminal.
		case OpGoto:
			queue = append(queue, work{int(in.A), d})
		case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe,
			OpIfICmpEq, OpIfICmpNe, OpIfICmpLt, OpIfICmpGe, OpIfICmpGt, OpIfICmpLe,
			OpIfNull, OpIfNonNull:
			queue = append(queue, work{int(in.A), d})
			if w.pc+1 >= len(f.Code) {
				return fail(w.pc, "conditional branch falls off end")
			}
			queue = append(queue, work{w.pc + 1, d})
		default:
			if w.pc+1 >= len(f.Code) {
				return fail(w.pc, "execution falls off end")
			}
			queue = append(queue, work{w.pc + 1, d})
		}
	}
	return nil
}

// stackEffect returns how many slots an instruction pops and pushes,
// resolving call arities from the program.
func stackEffect(p *Program, in Instr) (pops, pushes int) {
	switch in.Op {
	case OpCall:
		callee := p.Funcs[in.A]
		pushes = 0
		if callee.ReturnsValue {
			pushes = 1
		}
		return callee.NumParams, pushes
	case OpNCall:
		return int(in.B), 1
	case OpSpawn:
		return int(in.B), 1
	default:
		info := opTable[in.Op]
		return info.pop, info.push
	}
}
