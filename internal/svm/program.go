package svm

import (
	"fmt"
	"math"
)

// Handler is one entry of a function's exception table: if an
// exception unwinds to a PC in [Start, End) and the handler's class
// matches (Class == -1 is catch-all), control transfers to Target
// with the exception reference on the operand stack.
type Handler struct {
	Start  int
	End    int
	Target int
	Class  int
}

// Function is one compiled SVM function.
type Function struct {
	Name      string
	NumParams int
	NumLocals int // includes parameter slots
	// ReturnsValue declares whether the function returns a value
	// (ends in retv) or is void (ends in ret). The verifier enforces
	// consistency, and call sites use it for stack-depth checking.
	ReturnsValue bool
	Code         []Instr
	Handlers     []Handler
}

// Class describes an object layout: a name and field names (all
// fields are untyped slots).
type Class struct {
	Name   string
	Fields []string
}

// FieldOffset returns the slot index of the named field, or -1.
func (c *Class) FieldOffset(name string) int {
	for i, f := range c.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// Program is a loaded SVM program: functions, classes, constant
// pools, globals, and the names of the native functions it links
// against. Programs are immutable once prepared; the same Program
// value can back many executions.
type Program struct {
	Name    string
	Funcs   []*Function
	Classes []*Class
	Globals []string

	IntPool   []int64
	FloatPool []float64
	StrPool   []string
	Natives   []string

	funcIndex   map[string]int
	classIndex  map[string]int
	globalIndex map[string]int
	nativeIndex map[string]int
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{
		Name:        name,
		funcIndex:   make(map[string]int),
		classIndex:  make(map[string]int),
		globalIndex: make(map[string]int),
		nativeIndex: make(map[string]int),
	}
}

// AddFunction appends a function and returns its index. Duplicate
// names are an error.
func (p *Program) AddFunction(f *Function) (int, error) {
	if _, dup := p.funcIndex[f.Name]; dup {
		return 0, fmt.Errorf("svm: duplicate function %q", f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	p.funcIndex[f.Name] = len(p.Funcs) - 1
	return len(p.Funcs) - 1, nil
}

// AddClass appends a class and returns its index.
func (p *Program) AddClass(c *Class) (int, error) {
	if _, dup := p.classIndex[c.Name]; dup {
		return 0, fmt.Errorf("svm: duplicate class %q", c.Name)
	}
	p.Classes = append(p.Classes, c)
	p.classIndex[c.Name] = len(p.Classes) - 1
	return len(p.Classes) - 1, nil
}

// AddGlobal appends a global slot and returns its index.
func (p *Program) AddGlobal(name string) (int, error) {
	if _, dup := p.globalIndex[name]; dup {
		return 0, fmt.Errorf("svm: duplicate global %q", name)
	}
	p.Globals = append(p.Globals, name)
	p.globalIndex[name] = len(p.Globals) - 1
	return len(p.Globals) - 1, nil
}

// InternInt adds (or finds) an integer constant and returns its pool
// index.
func (p *Program) InternInt(v int64) int {
	for i, x := range p.IntPool {
		if x == v {
			return i
		}
	}
	p.IntPool = append(p.IntPool, v)
	return len(p.IntPool) - 1
}

// InternFloat adds (or finds) a float constant.
func (p *Program) InternFloat(v float64) int {
	for i, x := range p.FloatPool {
		// Compare bit patterns so NaN constants intern correctly.
		if floatBits(x) == floatBits(v) {
			return i
		}
	}
	p.FloatPool = append(p.FloatPool, v)
	return len(p.FloatPool) - 1
}

// InternString adds (or finds) a string constant.
func (p *Program) InternString(s string) int {
	for i, x := range p.StrPool {
		if x == s {
			return i
		}
	}
	p.StrPool = append(p.StrPool, s)
	return len(p.StrPool) - 1
}

// InternNative adds (or finds) a native-function name.
func (p *Program) InternNative(name string) int {
	if i, ok := p.nativeIndex[name]; ok {
		return i
	}
	p.Natives = append(p.Natives, name)
	p.nativeIndex[name] = len(p.Natives) - 1
	return len(p.Natives) - 1
}

// FuncIndex resolves a function name to its index.
func (p *Program) FuncIndex(name string) (int, bool) {
	i, ok := p.funcIndex[name]
	return i, ok
}

// ClassIndex resolves a class name.
func (p *Program) ClassIndex(name string) (int, bool) {
	i, ok := p.classIndex[name]
	return i, ok
}

// GlobalIndex resolves a global name.
func (p *Program) GlobalIndex(name string) (int, bool) {
	i, ok := p.globalIndex[name]
	return i, ok
}

// TotalInstructions returns the static instruction count across all
// functions (used by tests and the stats report).
func (p *Program) TotalInstructions() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
