// Package svm implements the Sanity Virtual Machine: a from-scratch,
// interpreted, stack-based bytecode machine in the spirit of the
// paper's clean-slate JVM (§3.1, §4.1). Like the paper's prototype it
// has no JIT and no reflection; unlike a hosted JVM it charges every
// instruction fetch and memory access through an explicit hardware
// model (internal/hw), which is what makes its timing reproducible.
//
// The VM is single-core (one timed core) with deterministic
// round-robin multithreading (§3.2): each runnable thread executes a
// fixed budget of instructions before it is forced to yield, so
// context switches land at identical instruction counts during play
// and replay and never need to be logged. A single global instruction
// counter identifies any point in the execution.
package svm

import "fmt"

// Opcode identifies one SVM instruction. The set is deliberately
// small (the paper's JVM has 202 instructions; the SVM keeps the same
// flavor — typed arithmetic, arrays, objects, calls, exceptions,
// monitors — without x86-style legacy forms).
type Opcode uint8

// Instruction opcodes. Instructions are fixed-width: an opcode plus
// two int32 operands A and B (most use only A).
const (
	OpNop  Opcode = iota
	OpHalt        // stop the VM; A = exit code

	// Constants.
	OpIConst // push small int A
	OpLConst // push IntPool[A]
	OpFConst // push FloatPool[A]
	OpSConst // push interned string object StrPool[A]
	OpNullC  // push null reference

	// Operand stack.
	OpPop
	OpDup
	OpSwap

	// Locals. A = slot. OpIInc: locals[A] += B without stack traffic.
	OpLoad
	OpStore
	OpIInc

	// Integer arithmetic (64-bit two's complement).
	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIRem
	OpINeg
	OpIShl
	OpIShr
	OpIUshr
	OpIAnd
	OpIOr
	OpIXor

	// Floating-point arithmetic (IEEE-754 double).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Conversions.
	OpI2F
	OpF2I

	// Comparisons: push -1, 0, or +1.
	OpICmp
	OpFCmp

	// Control flow. A = target PC.
	OpGoto
	OpIfEq // pop int; branch if == 0
	OpIfNe
	OpIfLt
	OpIfGe
	OpIfGt
	OpIfLe
	OpIfICmpEq // pop two ints; branch on comparison
	OpIfICmpNe
	OpIfICmpLt
	OpIfICmpGe
	OpIfICmpGt
	OpIfICmpLe
	OpIfNull // pop ref; branch if null
	OpIfNonNull

	// Arrays. OpNewArr: A = element kind (ElemInt..ElemRef), pops
	// length. OpALoad pops (arr, idx); OpAStore pops (arr, idx, val).
	OpNewArr
	OpALoad
	OpAStore
	OpALen

	// Objects. OpNew: A = class index. Field ops: A = field offset.
	OpNew
	OpGetF
	OpPutF

	// Globals. A = global index.
	OpGGet
	OpGPut

	// Calls. OpCall: A = function index. OpNCall: A = native index.
	OpCall
	OpNCall
	OpRet  // return void
	OpRetV // return top of stack

	// Exceptions: pop a reference and unwind to a matching handler.
	OpThrow

	// Threads and monitors.
	OpSpawn // A = function index, B = number of arguments popped
	OpYield
	OpMonEnter // pop object ref; block if lock held by another thread
	OpMonExit

	opCount // sentinel
)

// Array element kinds for OpNewArr.
const (
	ElemInt = iota
	ElemFloat
	ElemByte
	ElemRef
)

// opInfo is the static description of one opcode: mnemonic, base
// cycle cost (charged to the platform on top of fetch and memory
// costs), and net stack effect where it is fixed.
type opInfo struct {
	name string
	cost int64
	pop  int // operands popped (fixed part)
	push int // results pushed (fixed part)
}

var opTable = [opCount]opInfo{
	OpNop:       {"nop", 1, 0, 0},
	OpHalt:      {"halt", 1, 0, 0},
	OpIConst:    {"iconst", 1, 0, 1},
	OpLConst:    {"lconst", 1, 0, 1},
	OpFConst:    {"fconst", 1, 0, 1},
	OpSConst:    {"sconst", 2, 0, 1},
	OpNullC:     {"nullc", 1, 0, 1},
	OpPop:       {"pop", 1, 1, 0},
	OpDup:       {"dup", 1, 1, 2},
	OpSwap:      {"swap", 1, 2, 2},
	OpLoad:      {"load", 1, 0, 1},
	OpStore:     {"store", 1, 1, 0},
	OpIInc:      {"iinc", 1, 0, 0},
	OpIAdd:      {"iadd", 1, 2, 1},
	OpISub:      {"isub", 1, 2, 1},
	OpIMul:      {"imul", 3, 2, 1},
	OpIDiv:      {"idiv", 24, 2, 1},
	OpIRem:      {"irem", 24, 2, 1},
	OpINeg:      {"ineg", 1, 1, 1},
	OpIShl:      {"ishl", 1, 2, 1},
	OpIShr:      {"ishr", 1, 2, 1},
	OpIUshr:     {"iushr", 1, 2, 1},
	OpIAnd:      {"iand", 1, 2, 1},
	OpIOr:       {"ior", 1, 2, 1},
	OpIXor:      {"ixor", 1, 2, 1},
	OpFAdd:      {"fadd", 3, 2, 1},
	OpFSub:      {"fsub", 3, 2, 1},
	OpFMul:      {"fmul", 5, 2, 1},
	OpFDiv:      {"fdiv", 22, 2, 1},
	OpFNeg:      {"fneg", 1, 1, 1},
	OpI2F:       {"i2f", 4, 1, 1},
	OpF2I:       {"f2i", 4, 1, 1},
	OpICmp:      {"icmp", 1, 2, 1},
	OpFCmp:      {"fcmp", 3, 2, 1},
	OpGoto:      {"goto", 1, 0, 0},
	OpIfEq:      {"ifeq", 1, 1, 0},
	OpIfNe:      {"ifne", 1, 1, 0},
	OpIfLt:      {"iflt", 1, 1, 0},
	OpIfGe:      {"ifge", 1, 1, 0},
	OpIfGt:      {"ifgt", 1, 1, 0},
	OpIfLe:      {"ifle", 1, 1, 0},
	OpIfICmpEq:  {"if_icmpeq", 1, 2, 0},
	OpIfICmpNe:  {"if_icmpne", 1, 2, 0},
	OpIfICmpLt:  {"if_icmplt", 1, 2, 0},
	OpIfICmpGe:  {"if_icmpge", 1, 2, 0},
	OpIfICmpGt:  {"if_icmpgt", 1, 2, 0},
	OpIfICmpLe:  {"if_icmple", 1, 2, 0},
	OpIfNull:    {"ifnull", 1, 1, 0},
	OpIfNonNull: {"ifnonnull", 1, 1, 0},
	OpNewArr:    {"newarr", 40, 1, 1},
	OpALoad:     {"aload", 1, 2, 1},
	OpAStore:    {"astore", 1, 3, 0},
	OpALen:      {"alen", 1, 1, 1},
	OpNew:       {"new", 40, 0, 1},
	OpGetF:      {"getf", 1, 1, 1},
	OpPutF:      {"putf", 1, 2, 0},
	OpGGet:      {"gget", 1, 0, 1},
	OpGPut:      {"gput", 1, 1, 0},
	OpCall:      {"call", 10, 0, 0}, // args handled by callee's NumParams
	OpNCall:     {"ncall", 30, 0, 0},
	OpRet:       {"ret", 8, 0, 0},
	OpRetV:      {"retv", 8, 1, 0},
	OpThrow:     {"throw", 50, 1, 0},
	OpSpawn:     {"spawn", 80, 0, 1},
	OpYield:     {"yield", 4, 0, 0},
	OpMonEnter:  {"monenter", 12, 1, 0},
	OpMonExit:   {"monexit", 12, 1, 0},
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// BaseCost returns the opcode's base cycle cost, before memory
// hierarchy effects.
func (o Opcode) BaseCost() int64 {
	if int(o) < len(opTable) {
		return opTable[o].cost
	}
	return 1
}

// opcodeByName maps mnemonics back to opcodes for the assembler.
var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, opCount)
	for op := Opcode(0); op < opCount; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// OpcodeByName resolves a mnemonic; ok is false for unknown names.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}

// Instr is one fixed-width SVM instruction.
type Instr struct {
	Op Opcode
	A  int32
	B  int32
}

// InstrBytes is the architectural size of one instruction; the
// instruction-fetch path charges I-cache accesses at PC*InstrBytes.
const InstrBytes = 8
