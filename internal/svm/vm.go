package svm

import (
	"fmt"

	"sanity/internal/hw"
)

// NativeCtx is what a native function sees: the VM, the calling
// thread, and the popped arguments. Natives return their result via
// Result (every native call pushes exactly one value; natives with
// nothing to say return the zero int).
type NativeCtx struct {
	VM     *VM
	Thread *Thread
	Args   []Value
	Result Value
}

// NativeFunc is the signature of a host-provided primitive. Natives
// are the only way the VM touches the outside world (I/O buffers,
// nanoTime, the covert-delay hook), which is what lets the TDR engine
// interpose on every nondeterministic input.
type NativeFunc func(ctx *NativeCtx) error

// TrapError is a VM-level fault (null dereference, division by zero,
// array bounds, type confusion, uncaught exception). It carries the
// execution point for diagnostics.
type TrapError struct {
	Msg    string
	Func   string
	PC     int
	Thread int
	Instr  int64
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("svm: %s (func %s pc %d thread %d instr %d)", e.Msg, e.Func, e.PC, e.Thread, e.Instr)
}

// Config carries the knobs for one VM instance.
type Config struct {
	// Platform, when non-nil, charges instruction and memory timing.
	// A nil platform runs the VM in plain functional mode (the
	// "Oracle-INT" analog: no TDR bookkeeping at all).
	Platform *hw.Platform
	// SliceBudget is the deterministic multithreading quantum in
	// instructions. Zero selects the default.
	SliceBudget int64
	// GCThreshold in bytes of allocation between collections. Zero
	// selects the default.
	GCThreshold int64
	// MaxSteps aborts runaway programs (0 = no limit).
	MaxSteps int64
	// Prepared, when non-nil and built for the same program, lets New
	// skip bytecode verification and the code-layout computation —
	// the per-program immutable setup an audit pipeline pays once per
	// shard instead of once per replay.
	Prepared *Prepared
}

// Prepared is the immutable per-program state New derives before any
// execution: the verification result and the virtual code layout.
// One Prepared may back any number of concurrent VMs.
type Prepared struct {
	prog      *Program
	codeBases []int64
}

// Prepare verifies the program and computes its code layout once, for
// reuse across VMs via Config.Prepared.
func Prepare(prog *Program) (*Prepared, error) {
	if err := Verify(prog); err != nil {
		return nil, err
	}
	codeBases := make([]int64, len(prog.Funcs))
	addr := codeSpaceBase
	for i, f := range prog.Funcs {
		codeBases[i] = addr
		addr += alignUp(int64(len(f.Code))*InstrBytes, 4096)
	}
	return &Prepared{prog: prog, codeBases: codeBases}, nil
}

// DefaultSliceBudget mirrors the paper's fixed per-thread instruction
// budget.
const DefaultSliceBudget = 5000

// DefaultGCThreshold is the allocation volume between collections.
const DefaultGCThreshold = 8 << 20

// VM is one Sanity virtual machine instance executing one Program.
type VM struct {
	Prog     *Program
	Heap     *Heap
	Globals  []Value
	Platform *hw.Platform

	threads  []*Thread
	monitors map[Ref]*monitor
	natives  []NativeFunc
	strRefs  []Ref
	// codeBases holds each function's virtual code address, indexed by
	// function index. Per-VM (not on the shared, read-only Program) so
	// that VMs on different goroutines can run the same binary.
	codeBases []int64

	cur         int // index of the current thread
	sliceLeft   int64
	SliceBudget int64
	maxSteps    int64

	// InstrCount is the global instruction counter: the replay
	// coordinate system (§3.2 — "a simple global instruction counter
	// is sufficient to identify any point in the execution").
	InstrCount int64

	halted   bool
	ExitCode int64
}

// New prepares a VM for the program: lays out code and globals,
// interns string constants on the heap, resolves natives, and creates
// the main thread on the function named "main" (which must take no
// parameters).
func New(prog *Program, natives map[string]NativeFunc, cfg Config) (*VM, error) {
	mainIdx, ok := prog.FuncIndex("main")
	if !ok {
		return nil, fmt.Errorf("svm: program %q has no main function", prog.Name)
	}
	if prog.Funcs[mainIdx].NumParams != 0 {
		return nil, fmt.Errorf("svm: main must take no parameters")
	}
	prepared := cfg.Prepared
	if prepared != nil && prepared.prog != prog {
		return nil, fmt.Errorf("svm: Prepared was built for program %q, not %q", prepared.prog.Name, prog.Name)
	}
	if prepared == nil {
		var err error
		if prepared, err = Prepare(prog); err != nil {
			return nil, err
		}
	}
	slice := cfg.SliceBudget
	if slice <= 0 {
		slice = DefaultSliceBudget
	}
	gct := cfg.GCThreshold
	if gct <= 0 {
		gct = DefaultGCThreshold
	}
	vm := &VM{
		Prog:        prog,
		Heap:        NewHeap(gct),
		Globals:     make([]Value, len(prog.Globals)),
		Platform:    cfg.Platform,
		monitors:    make(map[Ref]*monitor),
		SliceBudget: slice,
		maxSteps:    cfg.MaxSteps,
	}
	// Code addresses: each function page-aligned so programs have
	// stable, layout-independent fetch behavior. The table comes from
	// the Prepared state, not the Program: programs are shared
	// read-only across concurrently replaying engines (the audit
	// pipeline runs one worker pool over one binary), so New must not
	// write to prog. The slice itself is shared read-only too.
	vm.codeBases = prepared.codeBases
	// Intern string constants as byte arrays; this happens before
	// execution, so addresses are deterministic.
	vm.strRefs = make([]Ref, len(prog.StrPool))
	for i, s := range prog.StrPool {
		vm.strRefs[i] = vm.Heap.AllocBytes([]byte(s))
	}
	// Resolve natives strictly: a missing native is a load error, not
	// a runtime surprise.
	vm.natives = make([]NativeFunc, len(prog.Natives))
	for i, name := range prog.Natives {
		fn, ok := natives[name]
		if !ok {
			return nil, fmt.Errorf("svm: program %q needs unresolved native %q", prog.Name, name)
		}
		vm.natives[i] = fn
	}
	vm.spawn(mainIdx, nil)
	vm.sliceLeft = vm.sliceBudgetWithJitter()
	return vm, nil
}

// spawn creates a thread running fnIdx with args.
func (vm *VM) spawn(fnIdx int, args []Value) *Thread {
	t := &Thread{
		ID:        len(vm.threads),
		stackBase: stackSpaceBase + int64(len(vm.threads))*stackSpaceSize,
	}
	t.stackTop = t.stackBase
	t.pushFrame(vm.Prog.Funcs[fnIdx], fnIdx, args)
	vm.threads = append(vm.threads, t)
	return t
}

// Threads returns the VM's threads (read-only use by engines/tests).
func (vm *VM) Threads() []*Thread { return vm.threads }

// Halted reports whether the VM has stopped.
func (vm *VM) Halted() bool { return vm.halted }

// Halt stops the VM with the given exit code. Engines use it to end
// a windowed replay as soon as the audited range has been
// reproduced; the current instruction (typically the native call
// invoking Halt) still completes.
func (vm *VM) Halt(code int64) {
	vm.halted = true
	vm.ExitCode = code
}

// StringRef returns the heap handle of interned string constant i.
func (vm *VM) StringRef(i int) Ref { return vm.strRefs[i] }

// TimePs returns the virtual time, or the instruction count in plain
// mode (so plain-mode callers still get a monotone clock).
func (vm *VM) TimePs() int64 {
	if vm.Platform != nil {
		return vm.Platform.TimePs()
	}
	return vm.InstrCount
}

// sliceBudgetWithJitter applies the scheduler-noise profile: under
// deterministic multithreading the jitter is zero and slices are
// exact.
func (vm *VM) sliceBudgetWithJitter() int64 {
	b := vm.SliceBudget
	if vm.Platform != nil {
		b += vm.Platform.SliceJitter()
		if b < 1 {
			b = 1
		}
	}
	return b
}

// SkipIdle models k iterations of the TC's fixed-cost input polling
// loop without interpreting them one by one. Each modeled iteration
// advances the instruction counter by instrPerIter and the clock by
// cyclesPerIter. Play and replay perform the same skips (replay
// derives k from the logged instruction count), so the instruction
// streams stay aligned.
func (vm *VM) SkipIdle(iters, instrPerIter, cyclesPerIter int64) {
	if iters <= 0 {
		return
	}
	vm.InstrCount += iters * instrPerIter
	if vm.Platform != nil {
		vm.Platform.AddCycles(iters * cyclesPerIter)
	}
}

// GatherRoots collects every reachable root reference (globals plus
// all thread frames) in deterministic order.
func (vm *VM) GatherRoots() []Ref {
	var roots []Ref
	for _, v := range vm.Globals {
		if v.K == KRef && v.I != 0 {
			roots = append(roots, v.Ref())
		}
	}
	for _, r := range vm.strRefs {
		roots = append(roots, r)
	}
	for _, t := range vm.threads {
		roots = t.roots(roots)
	}
	return roots
}

// maybeGC runs a collection when the heap asks for one, charging a
// deterministic cycle cost proportional to the work done.
func (vm *VM) maybeGC() {
	if !vm.Heap.NeedsGC() {
		return
	}
	marked, swept := vm.Heap.Collect(vm.GatherRoots())
	if vm.Platform != nil {
		vm.Platform.AddCycles(marked*30 + swept*18 + 2000)
	}
}

// trap builds a TrapError at the current execution point.
func (vm *VM) trap(t *Thread, format string, args ...any) *TrapError {
	f := t.top()
	return &TrapError{
		Msg:    fmt.Sprintf(format, args...),
		Func:   f.fn.Name,
		PC:     f.pc,
		Thread: t.ID,
		Instr:  vm.InstrCount,
	}
}

// Run executes until the VM halts, a limit is reached, or a fault
// escapes. It returns nil on clean halt.
func (vm *VM) Run() error {
	for !vm.halted {
		if vm.maxSteps > 0 && vm.InstrCount >= vm.maxSteps {
			return fmt.Errorf("svm: instruction limit %d exceeded", vm.maxSteps)
		}
		if err := vm.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunBudget executes at most n instructions (useful for engines that
// interleave VM execution with device work). It reports whether the
// VM halted.
func (vm *VM) RunBudget(n int64) (bool, error) {
	limit := vm.InstrCount + n
	for !vm.halted && vm.InstrCount < limit {
		if err := vm.Step(); err != nil {
			return vm.halted, err
		}
	}
	return vm.halted, nil
}

// schedule advances to the next runnable thread (round-robin) and
// resets the slice. It reports false when no thread can run.
func (vm *VM) schedule() bool {
	n := len(vm.threads)
	for i := 1; i <= n; i++ {
		idx := (vm.cur + i) % n
		if vm.threads[idx].State == ThreadRunnable {
			vm.cur = idx
			vm.sliceLeft = vm.sliceBudgetWithJitter()
			return true
		}
	}
	return false
}

// Step executes exactly one instruction of the current thread,
// charging its timing, and handles scheduling, GC, and faults.
func (vm *VM) Step() error {
	if vm.halted {
		return nil
	}
	t := vm.threads[vm.cur]
	if t.State != ThreadRunnable || vm.sliceLeft <= 0 {
		if !vm.schedule() {
			if vm.allDone() {
				vm.halted = true
				return nil
			}
			return fmt.Errorf("svm: deadlock: no runnable threads at instr %d", vm.InstrCount)
		}
		t = vm.threads[vm.cur]
	}
	return vm.exec(t)
}

func (vm *VM) allDone() bool {
	for _, t := range vm.threads {
		if t.State != ThreadDone {
			return false
		}
	}
	return true
}

// exec interprets one instruction of thread t.
func (vm *VM) exec(t *Thread) error {
	f := t.top()
	if f.pc < 0 || f.pc >= len(f.fn.Code) {
		return vm.trap(t, "pc out of range")
	}
	in := f.fn.Code[f.pc]
	plat := vm.Platform
	if plat != nil {
		plat.FetchInstr(vm.codeBases[f.fnIdx] + int64(f.pc)*InstrBytes)
		plat.AddCycles(in.Op.BaseCost())
	}
	vm.InstrCount++
	vm.sliceLeft--
	nextPC := f.pc + 1

	push := func(v Value) { f.stack = append(f.stack, v) }
	pop := func() Value {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return v
	}

	switch in.Op {
	case OpNop:
	case OpHalt:
		vm.halted = true
		vm.ExitCode = int64(in.A)
		return nil

	case OpIConst:
		push(IntV(int64(in.A)))
	case OpLConst:
		push(IntV(vm.Prog.IntPool[in.A]))
	case OpFConst:
		push(FloatV(vm.Prog.FloatPool[in.A]))
	case OpSConst:
		push(RefV(vm.strRefs[in.A]))
	case OpNullC:
		push(Null())

	case OpPop:
		pop()
	case OpDup:
		v := f.stack[len(f.stack)-1]
		push(v)
	case OpSwap:
		n := len(f.stack)
		f.stack[n-1], f.stack[n-2] = f.stack[n-2], f.stack[n-1]

	case OpLoad:
		if plat != nil {
			plat.Access(f.localsAddr+int64(in.A)*8, 8, false)
		}
		push(f.locals[in.A])
	case OpStore:
		if plat != nil {
			plat.Access(f.localsAddr+int64(in.A)*8, 8, true)
		}
		f.locals[in.A] = pop()
	case OpIInc:
		if plat != nil {
			plat.Access(f.localsAddr+int64(in.A)*8, 8, true)
		}
		if f.locals[in.A].K != KInt {
			return vm.throwTrap(t, "iinc on non-int local")
		}
		f.locals[in.A].I += int64(in.B)

	case OpIAdd, OpISub, OpIMul, OpIDiv, OpIRem, OpIShl, OpIShr, OpIUshr, OpIAnd, OpIOr, OpIXor:
		b := pop()
		a := pop()
		if a.K != KInt || b.K != KInt {
			return vm.throwTrap(t, "integer op on non-int operands")
		}
		var r int64
		switch in.Op {
		case OpIAdd:
			r = a.I + b.I
		case OpISub:
			r = a.I - b.I
		case OpIMul:
			r = a.I * b.I
		case OpIDiv:
			if b.I == 0 {
				return vm.throwTrap(t, "division by zero")
			}
			r = a.I / b.I
		case OpIRem:
			if b.I == 0 {
				return vm.throwTrap(t, "division by zero")
			}
			r = a.I % b.I
		case OpIShl:
			r = a.I << (uint64(b.I) & 63)
		case OpIShr:
			r = a.I >> (uint64(b.I) & 63)
		case OpIUshr:
			r = int64(uint64(a.I) >> (uint64(b.I) & 63))
		case OpIAnd:
			r = a.I & b.I
		case OpIOr:
			r = a.I | b.I
		case OpIXor:
			r = a.I ^ b.I
		}
		push(IntV(r))
	case OpINeg:
		a := pop()
		if a.K != KInt {
			return vm.throwTrap(t, "ineg on non-int")
		}
		push(IntV(-a.I))

	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		b := pop()
		a := pop()
		if a.K != KFloat || b.K != KFloat {
			return vm.throwTrap(t, "float op on non-float operands")
		}
		var r float64
		switch in.Op {
		case OpFAdd:
			r = a.F + b.F
		case OpFSub:
			r = a.F - b.F
		case OpFMul:
			r = a.F * b.F
		case OpFDiv:
			r = a.F / b.F
		}
		push(FloatV(r))
	case OpFNeg:
		a := pop()
		if a.K != KFloat {
			return vm.throwTrap(t, "fneg on non-float")
		}
		push(FloatV(-a.F))

	case OpI2F:
		a := pop()
		if a.K != KInt {
			return vm.throwTrap(t, "i2f on non-int")
		}
		push(FloatV(float64(a.I)))
	case OpF2I:
		a := pop()
		if a.K != KFloat {
			return vm.throwTrap(t, "f2i on non-float")
		}
		push(IntV(int64(a.F)))

	case OpICmp:
		b := pop()
		a := pop()
		if a.K != KInt || b.K != KInt {
			return vm.throwTrap(t, "icmp on non-int")
		}
		push(IntV(cmp64(a.I, b.I)))
	case OpFCmp:
		b := pop()
		a := pop()
		if a.K != KFloat || b.K != KFloat {
			return vm.throwTrap(t, "fcmp on non-float")
		}
		switch {
		case a.F < b.F:
			push(IntV(-1))
		case a.F > b.F:
			push(IntV(1))
		default:
			push(IntV(0))
		}

	case OpGoto:
		nextPC = int(in.A)
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
		a := pop()
		if a.K != KInt {
			return vm.throwTrap(t, "branch on non-int")
		}
		if intBranch(in.Op, a.I, 0) {
			nextPC = int(in.A)
		}
	case OpIfICmpEq, OpIfICmpNe, OpIfICmpLt, OpIfICmpGe, OpIfICmpGt, OpIfICmpLe:
		b := pop()
		a := pop()
		if a.K != KInt || b.K != KInt {
			return vm.throwTrap(t, "compare-branch on non-int")
		}
		if intBranch(in.Op, a.I, b.I) {
			nextPC = int(in.A)
		}
	case OpIfNull:
		a := pop()
		if a.K != KRef {
			return vm.throwTrap(t, "ifnull on non-ref")
		}
		if a.I == 0 {
			nextPC = int(in.A)
		}
	case OpIfNonNull:
		a := pop()
		if a.K != KRef {
			return vm.throwTrap(t, "ifnonnull on non-ref")
		}
		if a.I != 0 {
			nextPC = int(in.A)
		}

	case OpNewArr:
		n := pop()
		if n.K != KInt {
			return vm.throwTrap(t, "newarr length not int")
		}
		r, err := vm.Heap.AllocArray(int(in.A), int(n.I))
		if err != nil {
			return vm.throwTrap(t, "%v", err)
		}
		o := vm.Heap.Get(r)
		if plat != nil {
			// Zero-fill touches the whole allocation once.
			plat.Access(o.Addr, 8, true)
			plat.AddCycles(o.Size / 16)
		}
		push(RefV(r))
		vm.maybeGC()
	case OpALoad:
		i := pop()
		a := pop()
		o, err := vm.array(t, a)
		if err != nil {
			return err
		}
		if i.K != KInt || i.I < 0 || int(i.I) >= o.Len() {
			return vm.throwTrap(t, "array index %v out of range [0,%d)", i.I, o.Len())
		}
		if plat != nil {
			plat.Access(o.Addr+objHeader+i.I*elemBytes(o.Kind), elemBytes(o.Kind), false)
		}
		push(arrayGet(o, int(i.I)))
	case OpAStore:
		v := pop()
		i := pop()
		a := pop()
		o, err := vm.array(t, a)
		if err != nil {
			return err
		}
		if i.K != KInt || i.I < 0 || int(i.I) >= o.Len() {
			return vm.throwTrap(t, "array index %v out of range [0,%d)", i.I, o.Len())
		}
		if plat != nil {
			plat.Access(o.Addr+objHeader+i.I*elemBytes(o.Kind), elemBytes(o.Kind), true)
		}
		if err := arraySet(o, int(i.I), v); err != nil {
			return vm.throwTrap(t, "%v", err)
		}
	case OpALen:
		a := pop()
		o, err := vm.array(t, a)
		if err != nil {
			return err
		}
		if plat != nil {
			plat.Access(o.Addr, 8, false)
		}
		push(IntV(int64(o.Len())))

	case OpNew:
		cls := vm.Prog.Classes[in.A]
		r := vm.Heap.AllocObject(int(in.A), len(cls.Fields))
		if plat != nil {
			plat.Access(vm.Heap.Get(r).Addr, 8, true)
		}
		push(RefV(r))
		vm.maybeGC()
	case OpGetF:
		a := pop()
		o := vm.object(a)
		if o == nil {
			return vm.throwTrap(t, "null dereference in getf")
		}
		if int(in.A) >= len(o.Fields) {
			return vm.throwTrap(t, "field offset %d out of range", in.A)
		}
		if plat != nil {
			plat.Access(o.Addr+objHeader+int64(in.A)*8, 8, false)
		}
		push(o.Fields[in.A])
	case OpPutF:
		v := pop()
		a := pop()
		o := vm.object(a)
		if o == nil {
			return vm.throwTrap(t, "null dereference in putf")
		}
		if int(in.A) >= len(o.Fields) {
			return vm.throwTrap(t, "field offset %d out of range", in.A)
		}
		if plat != nil {
			plat.Access(o.Addr+objHeader+int64(in.A)*8, 8, true)
		}
		o.Fields[in.A] = v

	case OpGGet:
		if plat != nil {
			plat.Access(globalSpaceBase+int64(in.A)*8, 8, false)
		}
		push(vm.Globals[in.A])
	case OpGPut:
		if plat != nil {
			plat.Access(globalSpaceBase+int64(in.A)*8, 8, true)
		}
		vm.Globals[in.A] = pop()

	case OpCall:
		callee := vm.Prog.Funcs[in.A]
		args := make([]Value, callee.NumParams)
		for i := callee.NumParams - 1; i >= 0; i-- {
			args[i] = pop()
		}
		f.pc = nextPC // return address
		t.pushFrame(callee, int(in.A), args)
		if plat != nil {
			// Frame setup writes the locals area once.
			plat.Access(t.top().localsAddr, 8, true)
		}
		return nil
	case OpNCall:
		n := int(in.B)
		args := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			args[i] = pop()
		}
		ctx := &NativeCtx{VM: vm, Thread: t, Args: args, Result: IntV(0)}
		if err := vm.natives[in.A](ctx); err != nil {
			return vm.throwTrap(t, "native %s: %v", vm.Prog.Natives[in.A], err)
		}
		push(ctx.Result)
	case OpRet, OpRetV:
		var rv Value
		if in.Op == OpRetV {
			rv = pop()
		}
		t.popFrame()
		if len(t.frames) == 0 {
			t.State = ThreadDone
			t.Result = rv
			vm.releaseThreadMonitors(t)
			if vm.allDone() {
				vm.halted = true
			}
			return nil
		}
		if in.Op == OpRetV {
			caller := t.top()
			caller.stack = append(caller.stack, rv)
		}
		return nil

	case OpThrow:
		exc := pop()
		if exc.K != KRef || exc.I == 0 {
			return vm.throwTrap(t, "throw of non-reference")
		}
		return vm.unwind(t, exc.Ref())

	case OpSpawn:
		callee := vm.Prog.Funcs[in.A]
		n := int(in.B)
		if n != callee.NumParams {
			return vm.throwTrap(t, "spawn arg count %d != %d params", n, callee.NumParams)
		}
		args := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			args[i] = pop()
		}
		nt := vm.spawn(int(in.A), args)
		push(IntV(int64(nt.ID)))
	case OpYield:
		vm.sliceLeft = 0
	case OpMonEnter:
		a := pop()
		if a.K != KRef || a.I == 0 {
			return vm.throwTrap(t, "monenter on null")
		}
		m := vm.monitors[a.Ref()]
		if m == nil {
			m = &monitor{owner: -1}
			vm.monitors[a.Ref()] = m
		}
		switch {
		case m.owner == -1:
			m.owner = t.ID
			m.depth = 1
		case m.owner == t.ID:
			m.depth++
		default:
			m.queue = append(m.queue, t.ID)
			t.State = ThreadBlocked
			t.waitingOn = a.Ref()
			f.pc = nextPC
			vm.sliceLeft = 0
			return nil
		}
	case OpMonExit:
		a := pop()
		if a.K != KRef || a.I == 0 {
			return vm.throwTrap(t, "monexit on null")
		}
		m := vm.monitors[a.Ref()]
		if m == nil || m.owner != t.ID {
			return vm.throwTrap(t, "monexit without ownership")
		}
		m.depth--
		if m.depth == 0 {
			vm.releaseMonitor(a.Ref(), m)
		}

	default:
		return vm.trap(t, "illegal opcode %d", in.Op)
	}

	f.pc = nextPC
	return nil
}

// releaseMonitor hands the lock to the first queued thread (FIFO), or
// frees it.
func (vm *VM) releaseMonitor(r Ref, m *monitor) {
	if len(m.queue) == 0 {
		m.owner = -1
		return
	}
	next := m.queue[0]
	m.queue = m.queue[1:]
	m.owner = next
	m.depth = 1
	nt := vm.threads[next]
	nt.State = ThreadRunnable
	nt.waitingOn = 0
}

// releaseThreadMonitors frees any monitors a finished thread still
// owns, so a buggy workload degrades to a trap elsewhere rather than
// a silent deadlock.
func (vm *VM) releaseThreadMonitors(t *Thread) {
	for r, m := range vm.monitors {
		if m.owner == t.ID {
			vm.releaseMonitor(r, m)
		}
	}
}

// throwTrap converts a runtime fault into a VM exception carrying the
// message as a byte array. A handler with a catch-all class can field
// it; otherwise the trap escapes as a Go error.
func (vm *VM) throwTrap(t *Thread, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	r := vm.Heap.AllocBytes([]byte(msg))
	return vm.unwindWithTrap(t, r, msg)
}

// unwind searches the frame stack for a handler matching the thrown
// object and transfers control there.
func (vm *VM) unwind(t *Thread, exc Ref) error {
	return vm.unwindWithTrap(t, exc, "uncaught exception")
}

func (vm *VM) unwindWithTrap(t *Thread, exc Ref, msg string) error {
	o := vm.Heap.Get(exc)
	for len(t.frames) > 0 {
		f := t.top()
		for _, h := range f.fn.Handlers {
			if f.pc < h.Start || f.pc >= h.End {
				continue
			}
			if h.Class >= 0 {
				if o == nil || o.Kind != ObjClass || o.Class != h.Class {
					continue
				}
			}
			f.pc = h.Target
			f.stack = f.stack[:0]
			f.stack = append(f.stack, RefV(exc))
			return nil
		}
		t.popFrame()
	}
	t.State = ThreadDone
	vm.releaseThreadMonitors(t)
	if o != nil && o.Kind == ObjArrB {
		msg = msg + ": " + string(o.AB)
	}
	return &TrapError{Msg: msg, Func: "?", PC: -1, Thread: t.ID, Instr: vm.InstrCount}
}

// array resolves a value to an array object or raises a trap.
func (vm *VM) array(t *Thread, v Value) (*Object, error) {
	if v.K != KRef || v.I == 0 {
		return nil, vm.throwTrap(t, "null array reference")
	}
	o := vm.Heap.Get(v.Ref())
	if o == nil || o.Kind == ObjClass {
		return nil, vm.throwTrap(t, "value is not an array")
	}
	return o, nil
}

// object resolves a value to a class instance (nil on failure).
func (vm *VM) object(v Value) *Object {
	if v.K != KRef || v.I == 0 {
		return nil
	}
	o := vm.Heap.Get(v.Ref())
	if o == nil || o.Kind != ObjClass {
		return nil
	}
	return o
}

func arrayGet(o *Object, i int) Value {
	switch o.Kind {
	case ObjArrI:
		return IntV(o.AI[i])
	case ObjArrF:
		return FloatV(o.AF[i])
	case ObjArrB:
		return IntV(int64(o.AB[i]))
	default:
		return RefV(o.AR[i])
	}
}

func arraySet(o *Object, i int, v Value) error {
	switch o.Kind {
	case ObjArrI:
		if v.K != KInt {
			return fmt.Errorf("storing %v into int array", v)
		}
		o.AI[i] = v.I
	case ObjArrF:
		if v.K != KFloat {
			return fmt.Errorf("storing %v into float array", v)
		}
		o.AF[i] = v.F
	case ObjArrB:
		if v.K != KInt {
			return fmt.Errorf("storing %v into byte array", v)
		}
		o.AB[i] = byte(v.I)
	case ObjArrR:
		if v.K != KRef {
			return fmt.Errorf("storing %v into ref array", v)
		}
		o.AR[i] = v.Ref()
	}
	return nil
}

func elemBytes(k ObjKind) int64 {
	if k == ObjArrB {
		return 1
	}
	return 8
}

func cmp64(a, b int64) int64 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func intBranch(op Opcode, a, b int64) bool {
	switch op {
	case OpIfEq, OpIfICmpEq:
		return a == b
	case OpIfNe, OpIfICmpNe:
		return a != b
	case OpIfLt, OpIfICmpLt:
		return a < b
	case OpIfGe, OpIfICmpGe:
		return a >= b
	case OpIfGt, OpIfICmpGt:
		return a > b
	case OpIfLe, OpIfICmpLe:
		return a <= b
	}
	return false
}
