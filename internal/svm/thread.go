package svm

// ThreadState tracks where a thread is in its lifecycle.
type ThreadState uint8

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadBlocked              // waiting on a monitor
	ThreadDone
)

// Frame is one activation record: function, program counter, locals,
// and operand stack. localsAddr is the virtual address of local slot
// 0; the interpreter charges locals traffic against it so that the
// cache model sees realistic stack behavior.
type Frame struct {
	fn         *Function
	fnIdx      int
	pc         int
	locals     []Value
	stack      []Value
	localsAddr int64
}

// Thread is one SVM thread. Threads are scheduled round-robin with a
// fixed instruction budget (§3.2 deterministic multithreading), so
// their interleaving is a pure function of the program.
type Thread struct {
	ID     int
	State  ThreadState
	frames []*Frame

	stackBase int64 // base of this thread's stack region
	stackTop  int64 // next frame's locals address

	waitingOn Ref // monitor this thread is blocked on (if Blocked)

	// Result holds the main function's return value for thread 0,
	// or the spawned function's return value otherwise.
	Result Value
}

const (
	codeSpaceBase   = int64(0x0100_0000)
	globalSpaceBase = int64(0x0800_0000)
	stackSpaceBase  = int64(0x1000_0000)
	stackSpaceSize  = int64(0x0010_0000) // 1 MB per thread
	frameSlack      = int64(64)          // saved-registers area per frame
)

// top returns the current (innermost) frame.
func (t *Thread) top() *Frame {
	return t.frames[len(t.frames)-1]
}

// pushFrame activates fn with the given arguments in its first slots.
func (t *Thread) pushFrame(fn *Function, fnIdx int, args []Value) {
	f := &Frame{
		fn:         fn,
		fnIdx:      fnIdx,
		locals:     make([]Value, fn.NumLocals),
		localsAddr: t.stackTop,
	}
	copy(f.locals, args)
	t.stackTop += alignUp(int64(fn.NumLocals)*8+frameSlack, 64)
	t.frames = append(t.frames, f)
}

// popFrame deactivates the innermost frame and releases its stack
// region.
func (t *Thread) popFrame() *Frame {
	f := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	t.stackTop = f.localsAddr
	return f
}

// roots appends every reference reachable from this thread's frames.
func (t *Thread) roots(out []Ref) []Ref {
	for _, f := range t.frames {
		for _, v := range f.locals {
			if v.K == KRef && v.I != 0 {
				out = append(out, v.Ref())
			}
		}
		for _, v := range f.stack {
			if v.K == KRef && v.I != 0 {
				out = append(out, v.Ref())
			}
		}
	}
	if t.Result.K == KRef && t.Result.I != 0 {
		out = append(out, t.Result.Ref())
	}
	return out
}

// monitor is the lock state for one object.
type monitor struct {
	owner int // thread ID, -1 when free
	depth int
	queue []int // blocked thread IDs, FIFO (deterministic wakeup)
}

func alignUp(v, a int64) int64 { return (v + a - 1) &^ (a - 1) }
