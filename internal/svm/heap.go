package svm

import "fmt"

// ObjKind distinguishes heap object layouts.
type ObjKind uint8

// Heap object kinds.
const (
	ObjClass ObjKind = iota
	ObjArrI
	ObjArrF
	ObjArrB
	ObjArrR
)

// Object is one heap cell: either a class instance (Fields) or an
// array of one element kind. Addr is the object's virtual base
// address, which is what the cache model sees; it is assigned
// deterministically by the allocator, so the memory-access sequence
// of a deterministic program is itself deterministic (§3.6: "no
// memory pages are allocated or released on the TC; the JVM performs
// its own memory management").
type Object struct {
	Kind   ObjKind
	Class  int
	Fields []Value
	AI     []int64
	AF     []float64
	AB     []byte
	AR     []Ref

	Addr   int64
	Size   int64
	marked bool
}

// Len returns the element count of an array object, or the field
// count of a class instance.
func (o *Object) Len() int {
	switch o.Kind {
	case ObjArrI:
		return len(o.AI)
	case ObjArrF:
		return len(o.AF)
	case ObjArrB:
		return len(o.AB)
	case ObjArrR:
		return len(o.AR)
	default:
		return len(o.Fields)
	}
}

const (
	heapBase  = int64(0x4000_0000)
	objAlign  = int64(64) // objects are line-aligned; keeps conflict analysis clean
	objHeader = int64(16)
)

// Heap is the SVM's object heap with a deterministic mark-and-sweep
// collector. Addresses come from a bump allocator with size-class
// free lists, so allocation order — and therefore the address of
// every object — is a pure function of the program's execution.
type Heap struct {
	objs []*Object // index = Ref-1; nil entries are free slots
	free []Ref     // freed handles, reused LIFO (deterministic)

	nextAddr  int64
	freeAddrs map[int64][]int64 // size class -> freed base addresses (LIFO)

	BytesLive    int64
	BytesTotal   int64 // live + garbage not yet collected
	allocSinceGC int64

	// GCThreshold triggers a collection when the bytes allocated
	// since the last GC exceed it. Zero means "never" (tests).
	GCThreshold int64

	// Collections and MarkedLast expose GC activity for tests and
	// the stats report.
	Collections int64
	MarkedLast  int64
	SweptLast   int64
}

// NewHeap returns an empty heap with the given GC threshold in bytes.
func NewHeap(gcThreshold int64) *Heap {
	return &Heap{
		nextAddr:    heapBase,
		freeAddrs:   make(map[int64][]int64),
		GCThreshold: gcThreshold,
	}
}

// sizeClass rounds a byte size up to the allocator's granularity.
func sizeClass(bytes int64) int64 {
	if bytes < objAlign {
		return objAlign
	}
	return (bytes + objAlign - 1) &^ (objAlign - 1)
}

// allocAddr carves out an address range of the given class.
func (h *Heap) allocAddr(class int64) int64 {
	if lst := h.freeAddrs[class]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		h.freeAddrs[class] = lst[:len(lst)-1]
		return addr
	}
	addr := h.nextAddr
	h.nextAddr += class
	return addr
}

// install registers the object and returns its handle.
func (h *Heap) install(o *Object) Ref {
	var r Ref
	if n := len(h.free); n > 0 {
		r = h.free[n-1]
		h.free = h.free[:n-1]
		h.objs[r-1] = o
	} else {
		h.objs = append(h.objs, o)
		r = Ref(len(h.objs))
	}
	h.BytesLive += o.Size
	h.BytesTotal += o.Size
	h.allocSinceGC += o.Size
	return r
}

// NeedsGC reports whether allocation volume has crossed the
// threshold. The VM checks this at instruction boundaries so that
// collections happen at deterministic points.
func (h *Heap) NeedsGC() bool {
	return h.GCThreshold > 0 && h.allocSinceGC >= h.GCThreshold
}

// AllocObject allocates a class instance with nfields zeroed slots.
func (h *Heap) AllocObject(class, nfields int) Ref {
	size := sizeClass(objHeader + int64(nfields)*8)
	o := &Object{Kind: ObjClass, Class: class, Fields: make([]Value, nfields), Size: size}
	o.Addr = h.allocAddr(size)
	return h.install(o)
}

// AllocArray allocates an array of the given element kind and length.
func (h *Heap) AllocArray(elem int, length int) (Ref, error) {
	if length < 0 {
		return 0, fmt.Errorf("svm: negative array length %d", length)
	}
	var o *Object
	var elemBytes int64
	switch elem {
	case ElemInt:
		o = &Object{Kind: ObjArrI, AI: make([]int64, length)}
		elemBytes = 8
	case ElemFloat:
		o = &Object{Kind: ObjArrF, AF: make([]float64, length)}
		elemBytes = 8
	case ElemByte:
		o = &Object{Kind: ObjArrB, AB: make([]byte, length)}
		elemBytes = 1
	case ElemRef:
		o = &Object{Kind: ObjArrR, AR: make([]Ref, length)}
		elemBytes = 8
	default:
		return 0, fmt.Errorf("svm: bad array element kind %d", elem)
	}
	o.Size = sizeClass(objHeader + int64(length)*elemBytes)
	o.Addr = h.allocAddr(o.Size)
	return h.install(o), nil
}

// AllocBytes allocates a byte array initialized with a copy of b.
func (h *Heap) AllocBytes(b []byte) Ref {
	o := &Object{Kind: ObjArrB, AB: append([]byte(nil), b...)}
	o.Size = sizeClass(objHeader + int64(len(b)))
	o.Addr = h.allocAddr(o.Size)
	return h.install(o)
}

// Get resolves a handle. It returns nil for null or dangling refs;
// the VM turns that into a trap.
func (h *Heap) Get(r Ref) *Object {
	if r <= 0 || int(r) > len(h.objs) {
		return nil
	}
	return h.objs[r-1]
}

// Live returns the number of live objects.
func (h *Heap) Live() int {
	n := 0
	for _, o := range h.objs {
		if o != nil {
			n++
		}
	}
	return n
}

// Collect runs a full mark-and-sweep over the given roots. It returns
// the number of objects marked and swept, which the VM converts into
// a deterministic cycle charge. Garbage collection is not a source of
// time noise as long as it is itself deterministic (§3.6) — and it
// is: collections trigger at exact allocation volumes, and the mark
// order is the deterministic root order.
func (h *Heap) Collect(roots []Ref) (marked, swept int64) {
	var stack []Ref
	for _, r := range roots {
		if o := h.Get(r); o != nil && !o.marked {
			o.marked = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		marked++
		o := h.objs[r-1]
		switch o.Kind {
		case ObjClass:
			for _, f := range o.Fields {
				if f.K == KRef && f.I != 0 {
					if c := h.Get(f.Ref()); c != nil && !c.marked {
						c.marked = true
						stack = append(stack, f.Ref())
					}
				}
			}
		case ObjArrR:
			for _, c := range o.AR {
				if c != 0 {
					if co := h.Get(c); co != nil && !co.marked {
						co.marked = true
						stack = append(stack, c)
					}
				}
			}
		}
	}
	for i, o := range h.objs {
		if o == nil {
			continue
		}
		if o.marked {
			o.marked = false
			continue
		}
		swept++
		h.BytesLive -= o.Size
		h.BytesTotal -= o.Size
		h.freeAddrs[o.Size] = append(h.freeAddrs[o.Size], o.Addr)
		h.objs[i] = nil
		h.free = append(h.free, Ref(i+1))
	}
	h.allocSinceGC = 0
	h.Collections++
	h.MarkedLast = marked
	h.SweptLast = swept
	return marked, swept
}
