package svm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// This file implements full functional-state snapshots of a VM: the
// heap, the globals, every thread's frame stack, and the monitor
// table. A snapshot taken during play at a quiescence boundary can be
// restored into a freshly constructed VM for the same program, which
// then resumes executing the identical instruction stream — the basis
// of windowed replay.
//
// Snapshots capture *functional* state only. Timing state (caches,
// TLB, noise processes) is deliberately excluded: at a quiescence
// boundary it is re-derived from the replay configuration's seed, so
// the recorded machine never has to know — and can never influence —
// the auditor's noise model.
//
// The encoding is deterministic: map-backed structures (the free-list
// size classes, the monitor table) are emitted in sorted order, so the
// same VM state always serializes to the same bytes.

// snapshotVersion tags the snapshot encoding.
const snapshotVersion = 1

// Snapshot caps: a corrupted or hostile snapshot must not be able to
// demand unbounded allocations before validation fails.
const (
	snapMaxCollection = 1 << 22 // elements per collection (objects, values, threads...)
	snapMaxBytes      = 1 << 26 // bytes per byte-array payload
)

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (s *snapWriter) u64(v uint64) {
	if s.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, s.err = s.w.Write(buf[:])
}

func (s *snapWriter) i64(v int64)  { s.u64(uint64(v)) }
func (s *snapWriter) b(v byte)     { s.bytes([]byte{v}) }
func (s *snapWriter) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s *snapWriter) bytes(p []byte) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(p)
}

func (s *snapWriter) value(v Value) {
	s.b(byte(v.K))
	if v.K == KFloat {
		s.f64(v.F)
	} else {
		s.i64(v.I)
	}
}

func (s *snapWriter) values(vs []Value) {
	s.i64(int64(len(vs)))
	for _, v := range vs {
		s.value(v)
	}
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (s *snapReader) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("svm: snapshot: "+format, args...)
	}
}

func (s *snapReader) u64() uint64 {
	if s.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(s.r, buf[:]); err != nil {
		s.err = fmt.Errorf("svm: snapshot: %w", err)
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (s *snapReader) i64() int64    { return int64(s.u64()) }
func (s *snapReader) f64() float64  { return math.Float64frombits(s.u64()) }

func (s *snapReader) b() byte {
	if s.err != nil {
		return 0
	}
	c, err := s.r.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("svm: snapshot: %w", err)
		return 0
	}
	return c
}

// count reads a collection length and validates it against the cap.
func (s *snapReader) count(what string) int {
	n := s.i64()
	if n < 0 || n > snapMaxCollection {
		s.fail("implausible %s count %d", what, n)
		return 0
	}
	return int(n)
}

func (s *snapReader) value() Value {
	k := Kind(s.b())
	switch k {
	case KInt, KRef:
		return Value{K: k, I: s.i64()}
	case KFloat:
		return Value{K: k, F: s.f64()}
	default:
		s.fail("unknown value kind %d", k)
		return Value{}
	}
}

func (s *snapReader) valueSlice(what string) []Value {
	n := s.count(what)
	if s.err != nil {
		return nil
	}
	out := make([]Value, n)
	for i := range out {
		out[i] = s.value()
	}
	return out
}

// EncodeState serializes the VM's complete functional state. The VM
// must be between instructions (not inside a native call); use
// EncodeStateMidNative from native handlers.
func (vm *VM) EncodeState(w io.Writer) error {
	return vm.encodeState(w, nil)
}

// EncodeStateMidNative serializes the state as it will be once the
// currently executing native call completes: result is pushed onto
// the current thread's operand stack and its pc advances past the
// ncall instruction. Engines checkpoint from inside native handlers
// (the only place they run), and a restored VM must resume at the
// *next* instruction, not re-execute the native. The live frame is
// not modified.
func (vm *VM) EncodeStateMidNative(w io.Writer, result Value) error {
	return vm.encodeState(w, &result)
}

func (vm *VM) encodeState(w io.Writer, pendingResult *Value) error {
	s := &snapWriter{w: bufio.NewWriter(w)}
	s.b(snapshotVersion)
	s.i64(vm.InstrCount)
	s.i64(int64(vm.cur))
	s.i64(vm.sliceLeft)
	s.i64(vm.ExitCode)
	if vm.halted {
		s.b(1)
	} else {
		s.b(0)
	}
	s.values(vm.Globals)
	s.i64(int64(len(vm.strRefs)))
	for _, r := range vm.strRefs {
		s.i64(int64(r))
	}
	vm.Heap.encode(s)
	s.i64(int64(len(vm.threads)))
	for ti, t := range vm.threads {
		adjust := pendingResult != nil && ti == vm.cur
		s.b(byte(t.State))
		s.i64(int64(t.waitingOn))
		s.value(t.Result)
		s.i64(t.stackBase)
		s.i64(t.stackTop)
		s.i64(int64(len(t.frames)))
		for fi, f := range t.frames {
			top := adjust && fi == len(t.frames)-1
			pc := f.pc
			if top {
				pc++
			}
			s.i64(int64(f.fnIdx))
			s.i64(int64(pc))
			s.i64(f.localsAddr)
			s.values(f.locals)
			if top {
				s.i64(int64(len(f.stack)) + 1)
				for _, v := range f.stack {
					s.value(v)
				}
				s.value(*pendingResult)
			} else {
				s.values(f.stack)
			}
		}
	}
	refs := make([]int64, 0, len(vm.monitors))
	for r := range vm.monitors {
		refs = append(refs, int64(r))
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	s.i64(int64(len(refs)))
	for _, r := range refs {
		m := vm.monitors[Ref(r)]
		s.i64(r)
		s.i64(int64(m.owner))
		s.i64(int64(m.depth))
		s.i64(int64(len(m.queue)))
		for _, id := range m.queue {
			s.i64(int64(id))
		}
	}
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// encode serializes the heap, free lists included: allocation
// addresses after a restore must be exactly what they would have been
// in an uninterrupted run.
func (h *Heap) encode(s *snapWriter) {
	s.i64(h.nextAddr)
	s.i64(h.BytesLive)
	s.i64(h.BytesTotal)
	s.i64(h.allocSinceGC)
	s.i64(h.Collections)
	s.i64(h.MarkedLast)
	s.i64(h.SweptLast)
	s.i64(int64(len(h.objs)))
	for _, o := range h.objs {
		if o == nil {
			s.b(0)
			continue
		}
		s.b(1)
		s.b(byte(o.Kind))
		s.i64(int64(o.Class))
		s.i64(o.Addr)
		s.i64(o.Size)
		switch o.Kind {
		case ObjClass:
			s.values(o.Fields)
		case ObjArrI:
			s.i64(int64(len(o.AI)))
			for _, v := range o.AI {
				s.i64(v)
			}
		case ObjArrF:
			s.i64(int64(len(o.AF)))
			for _, v := range o.AF {
				s.f64(v)
			}
		case ObjArrB:
			s.i64(int64(len(o.AB)))
			s.bytes(o.AB)
		case ObjArrR:
			s.i64(int64(len(o.AR)))
			for _, v := range o.AR {
				s.i64(int64(v))
			}
		}
	}
	s.i64(int64(len(h.free)))
	for _, r := range h.free {
		s.i64(int64(r))
	}
	classes := make([]int64, 0, len(h.freeAddrs))
	for c := range h.freeAddrs {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	s.i64(int64(len(classes)))
	for _, c := range classes {
		s.i64(c)
		lst := h.freeAddrs[c]
		s.i64(int64(len(lst)))
		for _, a := range lst {
			s.i64(a)
		}
	}
}

// RestoreState replaces the VM's functional state with a snapshot
// previously captured by EncodeState/EncodeStateMidNative for the
// same program. The VM must be freshly constructed (New) and not yet
// run. Snapshots are validated structurally — counts, value kinds,
// function indices — so a corrupted or hostile snapshot fails with an
// error instead of corrupting the process; semantic damage beyond
// that surfaces as a deterministic VM trap during execution.
func (vm *VM) RestoreState(r io.Reader) error {
	s := &snapReader{r: bufio.NewReader(r)}
	if v := s.b(); s.err == nil && v != snapshotVersion {
		return fmt.Errorf("svm: snapshot: unsupported version %d", v)
	}
	instr := s.i64()
	cur := s.i64()
	sliceLeft := s.i64()
	exitCode := s.i64()
	halted := s.b() != 0
	globals := s.valueSlice("globals")
	if s.err == nil && len(globals) != len(vm.Globals) {
		s.fail("%d globals, program has %d", len(globals), len(vm.Globals))
	}
	nStr := s.count("string constants")
	if s.err == nil && nStr != len(vm.strRefs) {
		s.fail("%d string refs, program has %d", nStr, len(vm.strRefs))
	}
	strRefs := make([]Ref, nStr)
	for i := range strRefs {
		strRefs[i] = Ref(s.i64())
	}
	heap := decodeHeap(s, vm.Heap.GCThreshold)
	nThreads := s.count("threads")
	threads := make([]*Thread, 0, nThreads)
	for ti := 0; ti < nThreads && s.err == nil; ti++ {
		t := &Thread{ID: ti}
		st := ThreadState(s.b())
		if st > ThreadDone {
			s.fail("thread %d has unknown state %d", ti, st)
			break
		}
		t.State = st
		t.waitingOn = Ref(s.i64())
		t.Result = s.value()
		t.stackBase = s.i64()
		t.stackTop = s.i64()
		nFrames := s.count("frames")
		for fi := 0; fi < nFrames && s.err == nil; fi++ {
			fnIdx := s.i64()
			if fnIdx < 0 || fnIdx >= int64(len(vm.Prog.Funcs)) {
				s.fail("thread %d frame %d has function index %d of %d", ti, fi, fnIdx, len(vm.Prog.Funcs))
				break
			}
			fn := vm.Prog.Funcs[fnIdx]
			pc := s.i64()
			// pc may legitimately equal len(Code) only transiently; the
			// interpreter bounds-checks on fetch, so cap generously here
			// and let execution trap on real damage.
			if pc < 0 || pc > int64(len(fn.Code)) {
				s.fail("thread %d frame %d pc %d outside %q", ti, fi, pc, fn.Name)
				break
			}
			f := &Frame{
				fn:         fn,
				fnIdx:      int(fnIdx),
				pc:         int(pc),
				localsAddr: s.i64(),
				locals:     s.valueSlice("locals"),
			}
			f.stack = s.valueSlice("stack")
			t.frames = append(t.frames, f)
		}
		threads = append(threads, t)
	}
	nMon := s.count("monitors")
	monitors := make(map[Ref]*monitor, nMon)
	for i := 0; i < nMon && s.err == nil; i++ {
		ref := Ref(s.i64())
		m := &monitor{owner: int(s.i64()), depth: int(s.i64())}
		nq := s.count("monitor queue")
		for j := 0; j < nq && s.err == nil; j++ {
			m.queue = append(m.queue, int(s.i64()))
		}
		if m.owner < -1 || m.owner >= nThreads {
			s.fail("monitor %d owned by unknown thread %d", ref, m.owner)
		}
		monitors[ref] = m
	}
	if s.err != nil {
		return s.err
	}
	if cur < 0 || (nThreads > 0 && cur >= int64(nThreads)) {
		return fmt.Errorf("svm: snapshot: current thread %d of %d", cur, nThreads)
	}
	if nThreads == 0 {
		return fmt.Errorf("svm: snapshot has no threads")
	}
	vm.InstrCount = instr
	vm.cur = int(cur)
	vm.sliceLeft = sliceLeft
	vm.ExitCode = exitCode
	vm.halted = halted
	vm.Globals = globals
	vm.strRefs = strRefs
	vm.Heap = heap
	vm.threads = threads
	vm.monitors = monitors
	return nil
}

func decodeHeap(s *snapReader, gcThreshold int64) *Heap {
	h := NewHeap(gcThreshold)
	h.nextAddr = s.i64()
	h.BytesLive = s.i64()
	h.BytesTotal = s.i64()
	h.allocSinceGC = s.i64()
	h.Collections = s.i64()
	h.MarkedLast = s.i64()
	h.SweptLast = s.i64()
	nObjs := s.count("heap objects")
	h.objs = make([]*Object, 0, min(nObjs, 4096))
	for i := 0; i < nObjs && s.err == nil; i++ {
		if s.b() == 0 {
			h.objs = append(h.objs, nil)
			continue
		}
		o := &Object{Kind: ObjKind(s.b()), Class: int(s.i64()), Addr: s.i64(), Size: s.i64()}
		switch o.Kind {
		case ObjClass:
			o.Fields = s.valueSlice("object fields")
		case ObjArrI:
			n := s.count("int array")
			o.AI = make([]int64, n)
			for j := range o.AI {
				o.AI[j] = s.i64()
			}
		case ObjArrF:
			n := s.count("float array")
			o.AF = make([]float64, n)
			for j := range o.AF {
				o.AF[j] = s.f64()
			}
		case ObjArrB:
			n := s.i64()
			if n < 0 || n > snapMaxBytes {
				s.fail("implausible byte array of %d", n)
				break
			}
			o.AB = make([]byte, n)
			if s.err == nil {
				if _, err := io.ReadFull(s.r, o.AB); err != nil {
					s.err = fmt.Errorf("svm: snapshot: byte array: %w", err)
				}
			}
		case ObjArrR:
			n := s.count("ref array")
			o.AR = make([]Ref, n)
			for j := range o.AR {
				o.AR[j] = Ref(s.i64())
			}
		default:
			s.fail("object %d has unknown kind %d", i, o.Kind)
		}
		h.objs = append(h.objs, o)
	}
	nFree := s.count("free list")
	for i := 0; i < nFree && s.err == nil; i++ {
		h.free = append(h.free, Ref(s.i64()))
	}
	nClasses := s.count("free size classes")
	for i := 0; i < nClasses && s.err == nil; i++ {
		class := s.i64()
		n := s.count("free addresses")
		lst := make([]int64, 0, min(n, 4096))
		for j := 0; j < n && s.err == nil; j++ {
			lst = append(lst, s.i64())
		}
		h.freeAddrs[class] = lst
	}
	return h
}
