package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sanity/internal/hw"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance %v", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("stddev %v", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Percentile(nil, 0.5) != 0 {
		t.Fatal("empty inputs should be zero")
	}
	if KSStatistic(nil, []float64{1}) != 0 {
		t.Fatal("KS of empty sample should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Median(xs); p != 5.5 {
		t.Fatalf("median = %v", p)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := hw.NewRNG(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKSIdenticalSamplesZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d > 1e-12 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKSDisjointSamplesOne(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d < 0.999 {
		t.Fatalf("KS of disjoint samples = %v, want ~1", d)
	}
}

func TestKSShiftSensitivity(t *testing.T) {
	r := hw.NewRNG(1)
	a := make([]float64, 500)
	b := make([]float64, 500)
	c := make([]float64, 500)
	for i := range a {
		a[i] = r.Norm(0, 1)
		b[i] = r.Norm(0, 1)
		c[i] = r.Norm(2, 1)
	}
	same := KSStatistic(a, b)
	diff := KSStatistic(a, c)
	if diff < same*3 {
		t.Fatalf("KS cannot tell shifted distribution: same=%v shifted=%v", same, diff)
	}
}

func TestEquiprobableBins(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	cuts := EquiprobableBins(xs, 5)
	if len(cuts) != 4 {
		t.Fatalf("cuts = %v", cuts)
	}
	counts := make([]int, 5)
	for _, x := range xs {
		counts[BinIndex(cuts, x)]++
	}
	for i, c := range counts {
		if c < 150 || c > 250 {
			t.Fatalf("bin %d has %d items (want ~200): %v", i, c, counts)
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	// Uniform over 4 symbols: H = 2 bits. Constant: H = 0.
	uniform := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	if h := Entropy(uniform, 4); math.Abs(h-2) > 1e-9 {
		t.Fatalf("uniform entropy %v, want 2", h)
	}
	constant := []int{1, 1, 1, 1, 1}
	if h := Entropy(constant, 4); h != 0 {
		t.Fatalf("constant entropy %v, want 0", h)
	}
}

func TestCCERegularVsRandom(t *testing.T) {
	// A strictly periodic sequence has near-zero conditional entropy;
	// a random one stays high. This is the heart of the CCE test.
	regular := make([]int, 2000)
	for i := range regular {
		regular[i] = i % 4
	}
	r := hw.NewRNG(7)
	random := make([]int, 2000)
	for i := range random {
		random[i] = int(r.Int63n(4))
	}
	cceReg := CCE(regular, 4, 6)
	cceRnd := CCE(random, 4, 6)
	if cceReg > 0.3 {
		t.Fatalf("regular CCE %v, want near 0", cceReg)
	}
	if cceRnd < 1.0 {
		t.Fatalf("random CCE %v, want near 2", cceRnd)
	}
}

func TestSlidingCCELocalizesRegularity(t *testing.T) {
	// A random sequence with a strictly periodic middle section: the
	// sliding scan must bottom out on the windows covering it.
	r := hw.NewRNG(11)
	symbols := make([]int, 600)
	for i := range symbols {
		symbols[i] = int(r.Int63n(4))
	}
	for i := 200; i < 400; i++ {
		symbols[i] = i % 2
	}
	const window, step = 100, 50
	scan := SlidingCCE(symbols, 4, 6, window, step)
	if want := (len(symbols)-window)/step + 1; len(scan) != want {
		t.Fatalf("scan has %d windows, want %d", len(scan), want)
	}
	lo := 0
	for i, v := range scan {
		if v < scan[lo] {
			lo = i
		}
	}
	from := lo * step
	if from < 150 || from > 300 {
		t.Fatalf("lowest-entropy window starts at %d, want inside the regular section [200,400): %v", from, scan)
	}
	// The fully-regular window is decisively below the random ones.
	if scan[lo] > 0.3 {
		t.Fatalf("regular window CCE %v, want near 0", scan[lo])
	}
}

func TestSlidingCCEDegenerate(t *testing.T) {
	if got := SlidingCCE([]int{1, 2, 3}, 4, 6, 5, 1); got != nil {
		t.Fatalf("short input scan = %v, want nil", got)
	}
	if got := SlidingCCE([]int{1, 2, 3}, 4, 6, 0, 1); got != nil {
		t.Fatalf("zero window scan = %v, want nil", got)
	}
	if got := SlidingCCE([]int{1, 2, 3}, 4, 6, 2, 0); got != nil {
		t.Fatalf("zero step scan = %v, want nil", got)
	}
	// An exact fit yields exactly one window, equal to the whole-slice CCE.
	s := []int{0, 1, 0, 1, 0, 1}
	got := SlidingCCE(s, 4, 3, len(s), 1)
	if len(got) != 1 || got[0] != CCE(s, 4, 3) {
		t.Fatalf("exact-fit scan = %v, want one whole-slice CCE", got)
	}
}

func TestROCPerfectDetector(t *testing.T) {
	pos := []float64{10, 11, 12}
	neg := []float64{1, 2, 3}
	if a := AUC(pos, neg); a != 1.0 {
		t.Fatalf("perfect AUC = %v", a)
	}
	curve := ROC(pos, neg)
	if curve[len(curve)-1].FPR != 1 || curve[len(curve)-1].TPR != 1 {
		t.Fatalf("curve does not end at (1,1): %+v", curve)
	}
}

func TestROCChanceDetector(t *testing.T) {
	r := hw.NewRNG(3)
	pos := make([]float64, 400)
	neg := make([]float64, 400)
	for i := range pos {
		pos[i] = r.Float64()
		neg[i] = r.Float64()
	}
	a := AUC(pos, neg)
	if a < 0.44 || a > 0.56 {
		t.Fatalf("chance AUC = %v, want ~0.5", a)
	}
}

func TestROCInvertedDetector(t *testing.T) {
	pos := []float64{1, 2, 3}
	neg := []float64{10, 11, 12}
	if a := AUC(pos, neg); a != 0 {
		t.Fatalf("inverted AUC = %v, want 0", a)
	}
}

func TestAUCMatchesCurveIntegral(t *testing.T) {
	f := func(seed uint64) bool {
		r := hw.NewRNG(seed)
		pos := make([]float64, 60)
		neg := make([]float64, 60)
		for i := range pos {
			pos[i] = r.Norm(1, 1)
			neg[i] = r.Norm(0, 1)
		}
		rank := AUC(pos, neg)
		curve := AUCFromCurve(ROC(pos, neg))
		return math.Abs(rank-curve) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCTiesAreHalfCredit(t *testing.T) {
	pos := []float64{5, 5}
	neg := []float64{5, 5}
	if a := AUC(pos, neg); a != 0.5 {
		t.Fatalf("all-ties AUC = %v, want 0.5", a)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestInt64sToFloats(t *testing.T) {
	out := Int64sToFloats([]int64{1, -2, 3})
	if len(out) != 3 || out[1] != -2 {
		t.Fatalf("conversion wrong: %v", out)
	}
}
