// Package stats provides the statistical machinery shared by the
// covert-channel detectors and the evaluation harness: moments,
// percentiles, empirical distribution distances (Kolmogorov-Smirnov),
// entropy estimates including the corrected conditional entropy of
// Gianvecchio & Wang (CCS'07), and ROC/AUC computation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-quantile (0 <= p <= 1) by linear
// interpolation over the sorted sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// MinMax returns the extremes of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov distance: the
// maximum absolute difference between the empirical CDFs of a and b.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Step to the next distinct value, consuming ties from both
		// samples, so equal observations never inflate the distance.
		v := as[i]
		if bs[j] < v {
			v = bs[j]
		}
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// EquiprobableBins builds Q-1 cut points from a training sample such
// that each of the Q bins holds an equal share of the training mass.
// The detectors bin IPDs this way before entropy estimation.
func EquiprobableBins(training []float64, q int) []float64 {
	cuts := make([]float64, 0, q-1)
	for k := 1; k < q; k++ {
		cuts = append(cuts, Percentile(training, float64(k)/float64(q)))
	}
	return cuts
}

// BinIndex maps x to its bin under the given cut points.
func BinIndex(cuts []float64, x float64) int {
	// Linear scan: Q is small (5 in the experiments).
	for i, c := range cuts {
		if x <= c {
			return i
		}
	}
	return len(cuts)
}

// Entropy returns the Shannon entropy (bits) of the symbol histogram.
func Entropy(symbols []int, q int) float64 {
	if len(symbols) == 0 {
		return 0
	}
	counts := make([]int, q)
	for _, s := range symbols {
		counts[s]++
	}
	var h float64
	n := float64(len(symbols))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// patternKey packs up to m symbols (each < q <= 32) into one value.
func patternKey(symbols []int, start, m int) uint64 {
	var k uint64
	for i := 0; i < m; i++ {
		k = k*32 + uint64(symbols[start+i]) + 1
	}
	return k
}

// blockEntropy returns H(X1..Xm), the joint entropy of length-m
// patterns, plus the fraction of patterns that occur exactly once
// (the correction term of the CCE).
func blockEntropy(symbols []int, m int) (h float64, uniqueFrac float64) {
	n := len(symbols) - m + 1
	if n <= 0 {
		return 0, 1
	}
	counts := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		counts[patternKey(symbols, i, m)]++
	}
	// Accumulate in sorted-count order, not map order: float addition
	// is not associative, and entropy summed in Go's randomized map
	// iteration order drifts by an ulp between runs. The repo's
	// determinism contract (identical scores for identical inputs,
	// whatever the interleaving) extends to the detectors.
	cs := make([]int, 0, len(counts))
	unique := 0
	for _, c := range counts {
		if c == 1 {
			unique++
		}
		cs = append(cs, c)
	}
	sort.Ints(cs)
	for _, c := range cs {
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h, float64(unique) / float64(n)
}

// CCE returns the corrected conditional entropy of the symbol
// sequence: min over pattern lengths m of
//
//	CE(m) + perc(m) * H(1)
//
// where CE(m) = H(m) - H(m-1) is the order-m conditional entropy and
// perc(m) is the fraction of unique length-m patterns. Regular
// sequences (covert channels with constant encodings) score low;
// bursty legitimate traffic scores high. Following Gianvecchio & Wang,
// the minimum over m is the test statistic.
func CCE(symbols []int, q, maxM int) float64 {
	if len(symbols) == 0 {
		return 0
	}
	h1 := Entropy(symbols, q)
	best := h1 // m = 1: CE(1) = H(1), perc correction would only add
	prev := h1
	for m := 2; m <= maxM; m++ {
		hm, uniq := blockEntropy(symbols, m)
		ce := hm - prev
		cce := ce + uniq*h1
		if cce < best {
			best = cce
		}
		prev = hm
		if uniq >= 0.999 {
			break // all patterns unique; larger m adds nothing
		}
	}
	return best
}

// SlidingCCE computes the corrected conditional entropy over every
// window of `window` symbols, advanced by `step`: result[i] is
// CCE(symbols[i*step : i*step+window], q, maxM). The final partial
// window is dropped — a shorter window has a systematically different
// entropy level and would need its own baseline. This is the audit
// planner's prefilter primitive: a cheap scan that localizes where in
// a trace the symbol sequence is most (ab)normal before any replay is
// paid for.
func SlidingCCE(symbols []int, q, maxM, window, step int) []float64 {
	if window <= 0 || step <= 0 || len(symbols) < window {
		return nil
	}
	n := (len(symbols)-window)/step + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = CCE(symbols[i*step:i*step+window], q, maxM)
	}
	return out
}

// ROCPoint is one point of a receiver operating characteristic.
type ROCPoint struct {
	FPR float64
	TPR float64
}

// ROC sweeps a threshold over the union of scores (higher score =
// classified positive) and returns the curve from (0,0) to (1,1).
// pos are scores of true positives (covert traces), neg of true
// negatives (legitimate traces).
func ROC(pos, neg []float64) []ROCPoint {
	type labeled struct {
		score float64
		pos   bool
	}
	all := make([]labeled, 0, len(pos)+len(neg))
	for _, s := range pos {
		all = append(all, labeled{s, true})
	}
	for _, s := range neg {
		all = append(all, labeled{s, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	curve := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(all) {
		// Process ties together so the curve is threshold-consistent.
		j := i
		for j < len(all) && all[j].score == all[i].score {
			if all[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		curve = append(curve, ROCPoint{
			FPR: safeDiv(fp, len(neg)),
			TPR: safeDiv(tp, len(pos)),
		})
	}
	return curve
}

// AUC returns the area under the ROC curve via the Mann-Whitney U
// statistic: P(score_pos > score_neg) + 0.5*P(equal). 1.0 is a
// perfect detector, 0.5 is chance.
func AUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return 0.5
	}
	var wins, ties float64
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				ties++
			}
		}
	}
	return (wins + ties/2) / float64(len(pos)*len(neg))
}

// AUCFromCurve integrates a ROC curve with the trapezoid rule —
// useful for verifying the rank-based AUC.
func AUCFromCurve(curve []ROCPoint) float64 {
	var a float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		a += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return a
}

// Int64sToFloats converts picosecond IPD slices to float64 samples.
func Int64sToFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Summary is a compact descriptive-statistics record used in reports.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    lo,
		P50:    Percentile(xs, 0.5),
		P90:    Percentile(xs, 0.9),
		P99:    Percentile(xs, 0.99),
		Max:    hi,
	}
}

// String renders a Summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
