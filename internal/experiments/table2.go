package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sanity/internal/hw"
	"sanity/internal/scimark"
)

// Table2Row is one SciMark kernel's wall-clock comparison across the
// three engines, normalized to the interpreted baseline as in the
// paper's Table 2.
type Table2Row struct {
	Kernel string
	// Median wall-clock seconds per engine.
	SanitySec float64 // Sanity VM with the full timing model
	IntSec    float64 // plain interpreter (Oracle-INT analog)
	JitSec    float64 // native Go twin (Oracle-JIT analog)
	// Normalized to Oracle-INT = 1, as in the paper.
	SanityNorm float64
	JitNorm    float64
}

// Table2 measures host wall-clock time — this is the one experiment
// where real time is the right metric, because it compares engine
// throughput, not reproduced virtual timing. Each measurement is the
// median of Table2Reps repetitions.
func Table2(sizes Sizes, seed uint64) ([]Table2Row, error) {
	median := func(f func() error) (float64, error) {
		times := make([]float64, 0, sizes.Table2Reps)
		for i := 0; i < sizes.Table2Reps; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			times = append(times, time.Since(t0).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2], nil
	}
	var rows []Table2Row
	for _, k := range scimark.Kernels() {
		k := k
		var sanityChk, intChk, jitChk float64
		sanitySec, err := median(func() error {
			plat, err := hw.NewPlatform(hw.Optiplex9020(), hw.ProfileSanity(), seed)
			if err != nil {
				return err
			}
			res, err := scimark.RunVM(k, plat)
			sanityChk = res.Checksum
			return err
		})
		if err != nil {
			return nil, err
		}
		intSec, err := median(func() error {
			res, err := scimark.RunVM(k, nil)
			intChk = res.Checksum
			return err
		})
		if err != nil {
			return nil, err
		}
		jitSec, err := median(func() error {
			jitChk = k.Native()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if sanityChk != intChk || intChk != jitChk {
			return nil, fmt.Errorf("experiments: %s checksums diverge: %v / %v / %v", k.Name, sanityChk, intChk, jitChk)
		}
		rows = append(rows, Table2Row{
			Kernel:     k.Name,
			SanitySec:  sanitySec,
			IntSec:     intSec,
			JitSec:     jitSec,
			SanityNorm: sanitySec / intSec,
			JitNorm:    jitSec / intSec,
		})
	}
	return rows, nil
}

// FormatTable2 renders the table in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: SciMark2 performance, normalized to Oracle-INT (interpreted) = 1\n")
	sb.WriteString("  Benchmark   Sanity   Oracle-INT   Oracle-JIT\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %7.4f   %10.4f   %10.4f   (wall: %.3fs / %.3fs / %.5fs)\n",
			r.Kernel, r.SanityNorm, 1.0, r.JitNorm, r.SanitySec, r.IntSec, r.JitSec)
	}
	return sb.String()
}
