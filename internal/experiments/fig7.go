package experiments

import (
	"fmt"
	"strings"

	"sanity/internal/core"
	"sanity/internal/nfs"
)

// Figure7Result aggregates the play-vs-replay IPD comparison over
// many NFS traces: the scatter of Figure 7 plus the §6.4 accuracy
// numbers.
type Figure7Result struct {
	Traces int
	// Pairs is the pooled scatter (play IPD, replay IPD) in ms.
	Pairs []core.IPDPair
	// MaxRelDev is the worst IPD deviation seen anywhere (the paper
	// reports 1.85%).
	MaxRelDev float64
	// TotalWithin1Pct is the fraction of traces whose total replay
	// time is within 1% of play (the paper reports 97%).
	TotalWithin1Pct float64
	// MedianIPDMs feeds the §6.9 comparison.
	MedianIPDMs float64
}

// Figure7 records Fig7Traces NFS traces and replays each with TDR on
// a differently-seeded machine of the same type.
func Figure7(sizes Sizes, baseSeed uint64) (*Figure7Result, error) {
	res := &Figure7Result{Traces: sizes.Fig7Traces}
	within := 0
	var allPlayIPDs []float64
	for i := 0; i < sizes.Fig7Traces; i++ {
		wseed := baseSeed + uint64(i)*13
		play, log, err := nfsTrace(sizes.Fig7Packets, wseed, wseed+7, nil)
		if err != nil {
			return nil, err
		}
		replay, err := core.ReplayTDR(nfs.ServerProgram(), log, baseConfig(wseed+5000))
		if err != nil {
			return nil, err
		}
		cmp, err := core.Compare(play, replay)
		if err != nil {
			return nil, err
		}
		if !cmp.OutputsMatch {
			return nil, fmt.Errorf("experiments: fig7 trace %d diverged functionally", i)
		}
		res.Pairs = append(res.Pairs, cmp.IPDs...)
		if cmp.MaxRelIPDDev > res.MaxRelDev {
			res.MaxRelDev = cmp.MaxRelIPDDev
		}
		if cmp.TotalRelDev <= 0.01 {
			within++
		}
		for _, d := range play.OutputIPDs() {
			allPlayIPDs = append(allPlayIPDs, float64(d)/1e9)
		}
	}
	res.TotalWithin1Pct = float64(within) / float64(sizes.Fig7Traces)
	res.MedianIPDMs = median(allPlayIPDs)
	return res, nil
}

// FormatFigure7 renders a sampled scatter and the summary statistics.
func FormatFigure7(r *Figure7Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: inter-packet delays during play vs replay\n")
	step := len(r.Pairs)/12 + 1
	for i := 0; i < len(r.Pairs); i += step {
		p := r.Pairs[i]
		fmt.Fprintf(&sb, "  play=%8.3f ms   replay=%8.3f ms   dev=%6.3f%%\n",
			float64(p.PlayPs)/1e9, float64(p.ReplayPs)/1e9, p.RelDev()*100)
	}
	fmt.Fprintf(&sb, "  traces: %d, pooled IPDs: %d\n", r.Traces, len(r.Pairs))
	fmt.Fprintf(&sb, "  max IPD deviation: %.3f%% (paper: 1.85%%)\n", r.MaxRelDev*100)
	fmt.Fprintf(&sb, "  traces with total time within 1%%: %.0f%% (paper: 97%%)\n", r.TotalWithin1Pct*100)
	fmt.Fprintf(&sb, "  median play IPD: %.2f ms (paper: 7.4 ms)\n", r.MedianIPDMs)
	return sb.String()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
