package experiments

import (
	"fmt"
	"strings"

	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/nfs"
)

// AblationRow quantifies one Table-1 mitigation: the replay accuracy
// with the mitigation turned off, versus the full Sanity design.
type AblationRow struct {
	Name         string
	MaxRelIPDDev float64
	TotalRelDev  float64
}

// ablationProfiles builds one profile per disabled mitigation.
func ablationProfiles() []struct {
	name    string
	profile hw.NoiseProfile
} {
	full := hw.ProfileSanity()

	noFlush := full
	noFlush.Name = "no-cache-flush"
	noFlush.FlushAtStart = false

	randFrames := full
	randFrames.Name = "no-frame-pinning"
	randFrames.RandomFrames = true

	noPad := full
	noPad.Name = "no-io-padding"
	noPad.IOPadding = false

	irqs := full
	irqs.Name = "no-interrupt-confinement"
	irqs.InterruptsEnabled = true
	irqs.InterruptRate = 1.2
	irqs.InterruptCycles = 15_000
	irqs.InterruptEvicts = 80

	freq := full
	freq.Name = "no-freq-scaling-disable"
	freq.FreqScalingEnabled = true
	freq.FreqScalingSpread = 0.05

	sched := full
	sched.Name = "no-deterministic-sched"
	sched.SchedulerJitter = 4000

	return []struct {
		name    string
		profile hw.NoiseProfile
	}{
		{"full-sanity", full},
		{"no-cache-flush", noFlush},
		{"no-frame-pinning", randFrames},
		{"no-io-padding", noPad},
		{"no-interrupt-confinement", irqs},
		{"no-freq-scaling-disable", freq},
		{"no-deterministic-sched", sched},
	}
}

// Ablation measures replay accuracy on the NFS workload with each
// Table-1 mitigation individually disabled (both during play and
// replay, as if Sanity had shipped without it).
func Ablation(packets int, seed uint64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, a := range ablationProfiles() {
		cfgPlay := baseConfig(seed)
		cfgPlay.Profile = a.profile
		w := nfs.ClientWorkload(packets, netsim.DefaultThinkTime(), seed+4)
		inputs := w.ToServerInputs(netsim.PaperPath(seed^0x1234), 0)
		play, log, err := core.Play(nfs.ServerProgram(), inputs, cfgPlay)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", a.name, err)
		}
		cfgReplay := cfgPlay
		cfgReplay.Seed = seed + 9001
		replay, err := core.ReplayTDR(nfs.ServerProgram(), log, cfgReplay)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s replay: %w", a.name, err)
		}
		cmp, err := core.Compare(play, replay)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:         a.name,
			MaxRelIPDDev: cmp.MaxRelIPDDev,
			TotalRelDev:  cmp.TotalRelDev,
		})
	}
	return rows, nil
}

// FormatAblation renders the per-mitigation accuracy table.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: replay accuracy with one mitigation disabled (Table 1 design choices)\n")
	sb.WriteString("  configuration              max IPD dev   total dev\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-26s %9.4f%%   %8.4f%%\n", r.Name, r.MaxRelIPDDev*100, r.TotalRelDev*100)
	}
	return sb.String()
}
