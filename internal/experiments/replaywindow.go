package experiments

import (
	"fmt"
	"strings"
	"time"

	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// ReplayWindowPoint is one audited-window size against the full-audit
// baseline over the same checkpointed corpus.
type ReplayWindowPoint struct {
	// WindowIPDs is the trailing IPD window each trace was audited
	// over; 0 marks the full-audit baseline row.
	WindowIPDs int

	TracesPerSec float64
	// Speedup is TracesPerSec over the full-audit baseline's.
	Speedup float64

	// VerdictAgreement is the fraction of traces whose binary verdict
	// matches the full audit's. Windowing changes *coverage* (a
	// delay outside the window is invisible by construction), never
	// the correctness of what is covered, so agreement measures how
	// representative a trailing window is of the whole trace for this
	// channel mix.
	VerdictAgreement float64

	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// ReplayWindowResult is the windowed-replay sweep.
type ReplayWindowResult struct {
	Traces          int
	Packets         int
	CheckpointEvery int
	Points          []ReplayWindowPoint
}

// ReplayWindow measures what checkpointed logs buy the audit hot
// path: one labeled corpus is recorded with quiescence-boundary
// checkpoints, then audited in full and with progressively narrower
// trailing windows. Every windowed audit resumes each trace's replay
// from the last checkpoint before its window and halts at the
// window's end, so the per-trace replay cost shrinks from the whole
// log to roughly window + checkpoint-interval outputs.
func ReplayWindow(sizes Sizes, baseSeed uint64) (*ReplayWindowResult, error) {
	batch, err := fixtures.CheckpointedAuditBatch(
		sizes.ReplayWindowTraces, sizes.ReplayWindowPackets, sizes.ReplayWindowEvery, baseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: replaywindow corpus: %w", err)
	}
	res := &ReplayWindowResult{
		Traces:          len(batch.Jobs),
		Packets:         sizes.ReplayWindowPackets,
		CheckpointEvery: sizes.ReplayWindowEvery,
	}

	run := func(window int) (*pipeline.Results, float64, error) {
		cfg := pipeline.Config{WindowIPDs: window}
		start := time.Now()
		r, err := pipeline.New(cfg).Run(batch)
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start).Seconds()
		tps := 0.0
		if elapsed > 0 {
			tps = float64(len(r.Verdicts)) / elapsed
		}
		return r, tps, nil
	}

	full, fullTps, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("experiments: replaywindow full audit: %w", err)
	}
	res.Points = append(res.Points, pointFrom(0, full, full, fullTps, fullTps))

	for _, w := range sizes.ReplayWindowSweep {
		r, tps, err := run(w)
		if err != nil {
			return nil, fmt.Errorf("experiments: replaywindow window=%d: %w", w, err)
		}
		res.Points = append(res.Points, pointFrom(w, r, full, tps, fullTps))
	}
	return res, nil
}

func pointFrom(window int, r, full *pipeline.Results, tps, fullTps float64) ReplayWindowPoint {
	p := ReplayWindowPoint{
		WindowIPDs:     window,
		TracesPerSec:   tps,
		TruePositives:  r.Metrics.TruePositives,
		FalsePositives: r.Metrics.FalsePositives,
		TrueNegatives:  r.Metrics.TrueNegatives,
		FalseNegatives: r.Metrics.FalseNegatives,
	}
	if fullTps > 0 {
		p.Speedup = tps / fullTps
	}
	agree := 0
	for i := range r.Verdicts {
		if r.Verdicts[i].Suspicious == full.Verdicts[i].Suspicious {
			agree++
		}
	}
	if n := len(r.Verdicts); n > 0 {
		p.VerdictAgreement = float64(agree) / float64(n)
	}
	return p
}

// FormatReplayWindow renders the sweep.
func FormatReplayWindow(r *ReplayWindowResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Windowed replay: %d traces x %d packets, checkpoints every %d outputs\n",
		r.Traces, r.Packets, r.CheckpointEvery)
	sb.WriteString("  window   traces/s   speedup   agree   TP  FP  TN  FN\n")
	for _, p := range r.Points {
		label := fmt.Sprintf("%6d", p.WindowIPDs)
		if p.WindowIPDs == 0 {
			label = "  full"
		}
		fmt.Fprintf(&sb, "  %s  %9.2f  %7.2fx  %5.1f%%  %3d %3d %3d %3d\n",
			label, p.TracesPerSec, p.Speedup, p.VerdictAgreement*100,
			p.TruePositives, p.FalsePositives, p.TrueNegatives, p.FalseNegatives)
	}
	return sb.String()
}
