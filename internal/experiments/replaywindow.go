package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sanity/internal/audit"
	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// ReplayWindowPoint is one audited-window policy against the
// full-audit baseline over the same checkpointed corpus.
type ReplayWindowPoint struct {
	// WindowIPDs is the IPD window each trace was audited over; 0
	// marks the full-audit baseline row.
	WindowIPDs int
	// Auto marks the auto-selection arm: the window is not a fixed
	// trailing range but the per-trace region the CCE prefilter
	// flagged, with whole-trace fallback when nothing stood out.
	Auto bool

	TracesPerSec float64
	// Speedup is TracesPerSec over the full-audit baseline's.
	Speedup float64

	// VerdictAgreement is the fraction of traces whose binary verdict
	// matches the full audit's; CovertAgreement restricts it to the
	// covert-labeled traces — the population windowing could hurt.
	// Trailing windows change *coverage* (a delay outside the window
	// is invisible by construction); the auto arm narrows only where
	// the statistics localize the anomaly and must therefore hold
	// CovertAgreement at 1.0.
	VerdictAgreement float64
	CovertAgreement  float64

	// Narrowed counts traces the auto prefilter narrowed; CoverageFrac
	// is the fraction of all IPDs the TDR path replayed (1.0 for the
	// baseline; the auto arm's measure of "fewer IPDs").
	Narrowed     int
	CoverageFrac float64

	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// ReplayWindowResult is the windowed-replay sweep.
type ReplayWindowResult struct {
	Traces          int
	Packets         int
	CheckpointEvery int
	AutoWindowIPDs  int
	Points          []ReplayWindowPoint
}

// ReplayWindow measures what checkpointed logs buy the audit hot
// path: one labeled corpus is recorded with quiescence-boundary
// checkpoints, then audited in full, with progressively narrower
// trailing windows, and through the auto-selection arm, where the
// CCE-over-sliding-windows prefilter picks each trace's audited
// range. Every windowed audit resumes each trace's replay from the
// last checkpoint before its window and halts at the window's end,
// so the per-trace replay cost shrinks from the whole log to roughly
// window + checkpoint-interval outputs.
func ReplayWindow(sizes Sizes, baseSeed uint64) (*ReplayWindowResult, error) {
	batch, err := fixtures.CheckpointedAuditBatch(
		sizes.ReplayWindowTraces, sizes.ReplayWindowPackets, sizes.ReplayWindowEvery, baseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: replaywindow corpus: %w", err)
	}
	res := &ReplayWindowResult{
		Traces:          len(batch.Jobs),
		Packets:         sizes.ReplayWindowPackets,
		CheckpointEvery: sizes.ReplayWindowEvery,
		AutoWindowIPDs:  sizes.ReplayWindowAutoIPDs,
	}

	run := func(window int) (*pipeline.Results, float64, error) {
		cfg := pipeline.Config{WindowIPDs: window}
		start := time.Now()
		r, err := pipeline.New(cfg).Run(batch)
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start).Seconds()
		tps := 0.0
		if elapsed > 0 {
			tps = float64(len(r.Verdicts)) / elapsed
		}
		return r, tps, nil
	}

	full, fullTps, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("experiments: replaywindow full audit: %w", err)
	}
	base := pointFrom(0, full, full, fullTps, fullTps)
	base.CoverageFrac = 1
	res.Points = append(res.Points, base)

	for _, w := range sizes.ReplayWindowSweep {
		r, tps, err := run(w)
		if err != nil {
			return nil, fmt.Errorf("experiments: replaywindow window=%d: %w", w, err)
		}
		res.Points = append(res.Points, pointFrom(w, r, full, tps, fullTps))
	}

	// The auto-selection arm: plan (prefilter included in the timed
	// cost — it is part of what an auto audit spends) and run.
	auditor, err := audit.New(audit.WithWindow(audit.WindowAuto(sizes.ReplayWindowAutoIPDs)))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	plan, err := auditor.Plan(context.Background(), audit.FromBatch(batch))
	if err != nil {
		return nil, fmt.Errorf("experiments: replaywindow auto plan: %w", err)
	}
	r, err := plan.RunAll(context.Background())
	if err != nil {
		return nil, fmt.Errorf("experiments: replaywindow auto audit: %w", err)
	}
	elapsed := time.Since(start).Seconds()
	tps := 0.0
	if elapsed > 0 {
		tps = float64(len(r.Verdicts)) / elapsed
	}
	p := pointFrom(sizes.ReplayWindowAutoIPDs, r, full, tps, fullTps)
	p.Auto = true
	info := plan.Info()
	p.Narrowed = info.Narrowed
	if info.TotalIPDs > 0 {
		p.CoverageFrac = float64(info.AuditIPDs) / float64(info.TotalIPDs)
	}
	res.Points = append(res.Points, p)
	return res, nil
}

func pointFrom(window int, r, full *pipeline.Results, tps, fullTps float64) ReplayWindowPoint {
	p := ReplayWindowPoint{
		WindowIPDs:     window,
		TracesPerSec:   tps,
		TruePositives:  r.Metrics.TruePositives,
		FalsePositives: r.Metrics.FalsePositives,
		TrueNegatives:  r.Metrics.TrueNegatives,
		FalseNegatives: r.Metrics.FalseNegatives,
	}
	if fullTps > 0 {
		p.Speedup = tps / fullTps
	}
	agree, covertAgree, covert := 0, 0, 0
	for i := range r.Verdicts {
		same := r.Verdicts[i].Suspicious == full.Verdicts[i].Suspicious
		if same {
			agree++
		}
		if full.Verdicts[i].Label == pipeline.LabelCovert {
			covert++
			if same {
				covertAgree++
			}
		}
	}
	if n := len(r.Verdicts); n > 0 {
		p.VerdictAgreement = float64(agree) / float64(n)
	}
	if covert > 0 {
		p.CovertAgreement = float64(covertAgree) / float64(covert)
	}
	return p
}

// FormatReplayWindow renders the sweep.
func FormatReplayWindow(r *ReplayWindowResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Windowed replay: %d traces x %d packets, checkpoints every %d outputs\n",
		r.Traces, r.Packets, r.CheckpointEvery)
	sb.WriteString("  window   traces/s   speedup   agree   covert-agree   TP  FP  TN  FN\n")
	for _, p := range r.Points {
		label := fmt.Sprintf("%6d", p.WindowIPDs)
		if p.WindowIPDs == 0 {
			label = "  full"
		}
		if p.Auto {
			label = fmt.Sprintf("auto%2d", p.WindowIPDs)
		}
		fmt.Fprintf(&sb, "  %s  %9.2f  %7.2fx  %5.1f%%  %12.1f%%  %3d %3d %3d %3d",
			label, p.TracesPerSec, p.Speedup, p.VerdictAgreement*100, p.CovertAgreement*100,
			p.TruePositives, p.FalsePositives, p.TrueNegatives, p.FalseNegatives)
		if p.Auto {
			fmt.Fprintf(&sb, "  (narrowed %d/%d traces, %.0f%% of IPDs replayed)",
				p.Narrowed, r.Traces, p.CoverageFrac*100)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
