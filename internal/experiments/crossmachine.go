package experiments

import (
	"fmt"
	"os"
	"strings"

	"sanity/internal/calib"
	"sanity/internal/fixtures"
	"sanity/internal/hw"
	"sanity/internal/pipeline"
	"sanity/internal/store"
)

// CrossMachineConfusion is one audit's detection outcome on a labeled
// corpus.
type CrossMachineConfusion struct {
	TP, FP, TN, FN int
}

// CrossMachinePoint is one calibration-training size of the sweep: the
// model fitted from TrainTraces known-good traces and the detection
// cost of auditing with it.
type CrossMachinePoint struct {
	TrainTraces int

	// Fitted model summary.
	Scale          float64
	ScaleLow       float64
	ScaleHigh      float64
	ResidualSpread float64

	// Calibrated audit outcome on the labeled corpus.
	Confusion CrossMachineConfusion
	// MatchesBaseline reports whether the calibrated cross-machine
	// audit reached exactly the per-trace verdicts of the same-machine
	// audit — the paper's cloud-verification promise.
	MatchesBaseline bool
}

// CrossMachineDirection is one directed machine pair of the
// experiment: a corpus recorded on Recorded audited by an auditor
// owning only Auditor machines.
type CrossMachineDirection struct {
	Program  string
	Recorded string
	Auditor  string

	// Baseline is the same-machine audit of the identical corpus (the
	// auditor owning the recorded type), the reference the calibrated
	// audits are charged against.
	Baseline CrossMachineConfusion
	Points   []CrossMachinePoint
}

// CrossMachineResult is the full experiment: both directions of the
// Optiplex/SlowerT pair swept over calibration-training sizes.
type CrossMachineResult struct {
	Traces     int
	Packets    int
	Directions []CrossMachineDirection
}

// suspicion extracts the per-trace verdict vector, the quantity the
// baseline comparison is over (scores legitimately differ across
// machine types; verdicts must not).
func suspicion(r *pipeline.Results) []bool {
	out := make([]bool, len(r.Verdicts))
	for i, v := range r.Verdicts {
		out[i] = v.Suspicious
	}
	return out
}

func confusionOf(r *pipeline.Results) CrossMachineConfusion {
	return CrossMachineConfusion{
		TP: r.Metrics.TruePositives, FP: r.Metrics.FalsePositives,
		TN: r.Metrics.TrueNegatives, FN: r.Metrics.FalseNegatives,
	}
}

func sameVerdicts(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CrossMachine reproduces the paper's §5.2 cloud-verification
// deployment as a measured experiment: a labeled corpus recorded on
// machine type T is persisted to a store, then audited end-to-end
// (store → resolver → pipeline) twice — once by an auditor owning T
// (the same-machine baseline) and once by an auditor owning only T',
// through a calibration model fitted from a sweep of known-good
// training-set sizes. Both directions run: nfsd-on-Optiplex audited
// from SlowerT, and echod-on-SlowerT audited from Optiplex. The
// reported FP/FN deltas against the baseline are the cost of
// heterogeneous-fleet auditing.
func CrossMachine(sizes Sizes, baseSeed uint64) (*CrossMachineResult, error) {
	res := &CrossMachineResult{Traces: sizes.CrossTraces, Packets: sizes.CrossPackets}
	corpus := fixtures.AuditSizes(sizes.CrossTraces, sizes.CrossPackets)

	type direction struct {
		program  string
		recorded hw.MachineSpec
		auditor  hw.MachineSpec
		record   func() (*fixtures.Set, error)
		meta     store.ShardMeta
	}
	dirs := []direction{
		{
			program: "nfsd", recorded: hw.Optiplex9020(), auditor: hw.SlowerT(),
			record: func() (*fixtures.Set, error) { return fixtures.PlayedSet(corpus, baseSeed) },
			meta:   fixtures.NFSShardMeta(baseSeed + 777),
		},
		{
			program: "echod", recorded: hw.SlowerT(), auditor: hw.Optiplex9020(),
			record: func() (*fixtures.Set, error) { return fixtures.EchoSet(corpus, baseSeed+0x51AB) },
			meta:   fixtures.EchoShardMeta(baseSeed + 778),
		},
	}

	cfg := pipeline.Config{}
	for _, d := range dirs {
		set, err := d.record()
		if err != nil {
			return nil, fmt.Errorf("experiments: crossmachine corpus %s: %w", d.program, err)
		}
		dir, err := os.MkdirTemp("", "crossmachine-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Create(dir)
		if err != nil {
			return nil, err
		}
		if err := fixtures.ExportSet(st, set, d.meta); err != nil {
			return nil, fmt.Errorf("experiments: exporting %s corpus: %w", d.program, err)
		}

		// Same-machine baseline, end to end from the store.
		bb, err := pipeline.BatchFromStore(st, fixtures.Resolver)
		if err != nil {
			return nil, err
		}
		baseline, err := pipeline.New(cfg).Run(bb)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline audit %s: %w", d.program, err)
		}
		dres := CrossMachineDirection{
			Program:  d.program,
			Recorded: d.recorded.Name,
			Auditor:  d.auditor.Name,
			Baseline: confusionOf(baseline),
		}
		baseVerdicts := suspicion(baseline)

		for _, train := range sizes.CrossTrainSweep {
			mod, err := fixtures.CalibratePair(d.program, d.recorded, d.auditor, train, sizes.CrossPackets, baseSeed+0xCC)
			if err != nil {
				return nil, fmt.Errorf("experiments: calibrating %s %s->%s (train=%d): %w",
					d.program, d.recorded.Name, d.auditor.Name, train, err)
			}
			models := calib.NewSet()
			models.Add(mod)
			cb, err := pipeline.BatchFromStore(st, fixtures.CalibratedResolver(d.auditor, models))
			if err != nil {
				return nil, err
			}
			r, err := pipeline.New(cfg).Run(cb)
			if err != nil {
				return nil, fmt.Errorf("experiments: calibrated audit %s (train=%d): %w", d.program, train, err)
			}
			dres.Points = append(dres.Points, CrossMachinePoint{
				TrainTraces:     train,
				Scale:           mod.Scale,
				ScaleLow:        mod.ScaleLow,
				ScaleHigh:       mod.ScaleHigh,
				ResidualSpread:  mod.ResidualSpread,
				Confusion:       confusionOf(r),
				MatchesBaseline: sameVerdicts(baseVerdicts, suspicion(r)),
			})
		}
		res.Directions = append(res.Directions, dres)
	}
	return res, nil
}

// FormatCrossMachine renders the sweep.
func FormatCrossMachine(r *CrossMachineResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cross-machine calibrated audits (§5.2 cloud verification): %d traces x %d packets per direction\n",
		r.Traces, r.Packets)
	for _, d := range r.Directions {
		fmt.Fprintf(&sb, "  %s recorded on %s, audited from %s\n", d.Program, d.Recorded, d.Auditor)
		fmt.Fprintf(&sb, "    same-machine baseline: TP %d  FP %d  TN %d  FN %d\n",
			d.Baseline.TP, d.Baseline.FP, d.Baseline.TN, d.Baseline.FN)
		sb.WriteString("    train   scale [low, high]          spread    TP  FP  TN  FN  matches-baseline\n")
		for _, p := range d.Points {
			fmt.Fprintf(&sb, "    %5d   %.4f [%.4f, %.4f]   %6.3f%%  %3d %3d %3d %3d  %v\n",
				p.TrainTraces, p.Scale, p.ScaleLow, p.ScaleHigh, p.ResidualSpread*100,
				p.Confusion.TP, p.Confusion.FP, p.Confusion.TN, p.Confusion.FN, p.MatchesBaseline)
		}
	}
	return sb.String()
}
