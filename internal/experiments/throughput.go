package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"

	"sanity/internal/fixtures"
	"sanity/internal/pipeline"
)

// ThroughputPoint is one pipeline configuration's measured
// performance over the shared audit batch.
type ThroughputPoint struct {
	Workers   int
	BatchSize int

	TracesPerSec float64
	P50LatencyNs int64
	P99LatencyNs int64
	// Speedup is TracesPerSec normalized by the 1-worker baseline.
	Speedup float64
}

// ThroughputResult is the full sweep: worker counts at a fixed batch
// size, then batch sizes at the widest worker count, all over one
// batch of recorded traces audited through the full TDR path.
type ThroughputResult struct {
	Traces  int
	Packets int
	Points  []ThroughputPoint

	// Deterministic reports whether every configuration produced
	// byte-identical canonical verdicts — the pipeline's ordering
	// contract, verified as part of the experiment.
	Deterministic bool
	// Confusion of the (shared) verdicts against ground truth.
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// Throughput measures how the audit pipeline scales with its worker
// pool: one labeled batch (half benign, half covert across the four
// channels, every trace with its replay log) is audited repeatedly
// under different Workers/BatchSize configurations. The audit work
// per trace is dominated by the TDR replay, which is embarrassingly
// parallel across traces — the sweep quantifies how close the
// pipeline gets to that ideal.
func Throughput(sizes Sizes, baseSeed uint64) (*ThroughputResult, error) {
	batch, err := fixtures.LabeledAuditBatch(sizes.ThroughputTraces, sizes.ThroughputPackets, baseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: throughput corpus: %w", err)
	}
	res := &ThroughputResult{
		Traces:        len(batch.Jobs),
		Packets:       sizes.ThroughputPackets,
		Deterministic: true,
	}

	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers > 8 {
		maxWorkers = 8
	}
	var configs []pipeline.Config
	for w := 1; w <= maxWorkers; w *= 2 {
		configs = append(configs, pipeline.Config{Workers: w, BatchSize: 8})
	}
	// Batch-size sweep at the widest pool.
	for _, bs := range []int{1, 32} {
		configs = append(configs, pipeline.Config{Workers: maxWorkers, BatchSize: bs})
	}

	var canonical []byte
	var baseline float64
	for i, cfg := range configs {
		r, err := pipeline.New(cfg).Run(batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput workers=%d: %w", cfg.Workers, err)
		}
		if i == 0 {
			canonical = r.Canonical()
			baseline = r.Metrics.ThroughputPerSec
			res.TruePositives = r.Metrics.TruePositives
			res.FalsePositives = r.Metrics.FalsePositives
			res.TrueNegatives = r.Metrics.TrueNegatives
			res.FalseNegatives = r.Metrics.FalseNegatives
		} else if !bytes.Equal(canonical, r.Canonical()) {
			res.Deterministic = false
		}
		p := ThroughputPoint{
			Workers:      r.Metrics.Workers,
			BatchSize:    r.Metrics.BatchSize,
			TracesPerSec: r.Metrics.ThroughputPerSec,
			P50LatencyNs: r.Metrics.P50LatencyNs,
			P99LatencyNs: r.Metrics.P99LatencyNs,
		}
		if baseline > 0 {
			p.Speedup = p.TracesPerSec / baseline
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// FormatThroughput renders the sweep.
func FormatThroughput(r *ThroughputResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Audit pipeline throughput: %d traces x %d packets, full TDR path per trace\n",
		r.Traces, r.Packets)
	sb.WriteString("  workers  batch   traces/s   p50 ms   p99 ms   speedup\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %7d  %5d  %9.1f  %7.1f  %7.1f  %6.2fx\n",
			p.Workers, p.BatchSize, p.TracesPerSec,
			float64(p.P50LatencyNs)/1e6, float64(p.P99LatencyNs)/1e6, p.Speedup)
	}
	fmt.Fprintf(&sb, "  verdicts identical across configurations: %v\n", r.Deterministic)
	fmt.Fprintf(&sb, "  detection on labeled batch: TP %d  FP %d  TN %d  FN %d\n",
		r.TruePositives, r.FalsePositives, r.TrueNegatives, r.FalseNegatives)
	return sb.String()
}
