// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each experiment is a pure function from a
// size/seed configuration to a structured result with a Format method
// that prints the same rows/series the paper reports; cmd/tdrbench
// and the repository's benchmarks are thin wrappers around this
// package.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Figure2      — timing variance zeroing a 4 MB array, 4 scenarios
//	Figure3      — play vs replay event times under functional replay
//	Table2       — SciMark speed: Sanity vs Oracle-INT vs Oracle-JIT
//	Figure6      — SciMark timing variance: dirty / clean / Sanity
//	Figure7      — NFS inter-packet delays, play vs TDR replay
//	LogSize      — §6.5 log growth rate and composition
//	Figure8      — ROC/AUC, 4 channels x 5 detectors
//	NoiseVsJitter— §6.9 replay noise vs WAN jitter
//	Ablation     — per-mitigation contribution to replay accuracy
package experiments

import (
	"fmt"

	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/nfs"
	"sanity/internal/replaylog"
)

// Sizes scales the experiments. Defaults keep a full sweep in the
// range of a coffee break on the interpreting VM; Full approaches the
// paper's dimensions (100 one-minute traces etc.) and takes
// correspondingly longer.
type Sizes struct {
	// Figure 2.
	Fig2Runs       int
	Fig2ArrayWords int // 8-byte words; paper zeroes 4 MB = 524288 words

	// Figure 3.
	Fig3Packets int

	// Table 2.
	Table2Reps int

	// Figure 6.
	Fig6Runs int

	// Figure 7.
	Fig7Traces  int
	Fig7Packets int

	// Log size experiment.
	LogPackets int

	// Figure 8.
	Fig8TrainTraces  int
	Fig8LegitTraces  int
	Fig8CovertTraces int
	Fig8Packets      int

	// Throughput experiment (audit pipeline scaling).
	ThroughputTraces  int // total test traces (half benign, half covert)
	ThroughputPackets int

	// Cross-machine calibrated-audit experiment.
	CrossTraces     int   // labeled test traces per direction
	CrossPackets    int   // packets per trace
	CrossTrainSweep []int // calibration-training sizes to sweep

	// Triage ROC experiment (ingest-time suspicion scoring).
	TriageTraces        int     // traces per class (benign, and per channel)
	TriagePackets       int     // IPDs per trace
	TriageNeedlePeriods []int64 // needle bit periods to sweep (packets per bit)
	TriageMatchFP       float64 // FP budget the TP comparison is read at

	// Windowed-replay experiment.
	ReplayWindowTraces   int   // labeled test traces
	ReplayWindowPackets  int   // packets per trace
	ReplayWindowEvery    int   // checkpoint interval (outputs)
	ReplayWindowSweep    []int // audited tail-window sizes (IPDs)
	ReplayWindowAutoIPDs int   // auto-selection arm's window size (IPDs)
}

// DefaultSizes is the quick configuration used by tests and the
// default tdrbench run.
func DefaultSizes() Sizes {
	return Sizes{
		Fig2Runs:         10,
		Fig2ArrayWords:   131072, // 1 MB; -full restores the paper's 4 MB
		Fig3Packets:      40,
		Table2Reps:       3,
		Fig6Runs:         8,
		Fig7Traces:       12,
		Fig7Packets:      120,
		LogPackets:       400,
		Fig8TrainTraces:  8,
		Fig8LegitTraces:  16,
		Fig8CovertTraces: 16,
		Fig8Packets:      220,

		ThroughputTraces:  120,
		ThroughputPackets: 60,

		CrossTraces:     16,
		CrossPackets:    60,
		CrossTrainSweep: []int{2, 4},

		TriageTraces:        32,
		TriagePackets:       256,
		TriageNeedlePeriods: []int64{8, 16, 32, 64},
		TriageMatchFP:       0.2,

		ReplayWindowTraces:   24,
		ReplayWindowPackets:  96,
		ReplayWindowEvery:    16,
		ReplayWindowSweep:    []int{8, 16, 32},
		ReplayWindowAutoIPDs: 32,
	}
}

// FullSizes approximates the paper's experiment dimensions.
func FullSizes() Sizes {
	return Sizes{
		Fig2Runs:         50,
		Fig2ArrayWords:   524288, // 4 MB
		Fig3Packets:      150,
		Table2Reps:       5,
		Fig6Runs:         50,
		Fig7Traces:       100,
		Fig7Packets:      400,
		LogPackets:       2000,
		Fig8TrainTraces:  20,
		Fig8LegitTraces:  50,
		Fig8CovertTraces: 50,
		Fig8Packets:      400,

		ThroughputTraces:  240,
		ThroughputPackets: 220,

		CrossTraces:     48,
		CrossPackets:    120,
		CrossTrainSweep: []int{1, 2, 4, 8},

		TriageTraces:        64,
		TriagePackets:       512,
		TriageNeedlePeriods: []int64{8, 16, 32, 64, 100},
		TriageMatchFP:       0.1,

		ReplayWindowTraces:   64,
		ReplayWindowPackets:  400,
		ReplayWindowEvery:    25,
		ReplayWindowSweep:    []int{10, 25, 50, 100, 200},
		ReplayWindowAutoIPDs: 100,
	}
}

// baseConfig is the Sanity execution environment on the paper's
// testbed machine.
func baseConfig(seed uint64) core.Config {
	return core.Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		Files:    nfs.FileStore(),
		MaxSteps: 4_000_000_000,
	}
}

// nfsTrace runs one NFS session and returns the play execution and
// log. The workload seed controls the client's request pattern; the
// engine seed controls the hardware noise; hook, when non-nil,
// compromises the server with a covert channel.
func nfsTrace(packets int, workloadSeed, engineSeed uint64, hook core.DelayHook) (*core.Execution, *replaylog.Log, error) {
	w := nfs.ClientWorkload(packets, netsim.DefaultThinkTime(), workloadSeed)
	inputs := w.ToServerInputs(netsim.PaperPath(workloadSeed^0xABCD), 0)
	cfg := baseConfig(engineSeed)
	cfg.Hook = hook
	exec, log, err := core.Play(nfs.ServerProgram(), inputs, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: nfs trace: %w", err)
	}
	return exec, log, nil
}

// Ms is one millisecond in picoseconds.
const Ms = netsim.Ms
