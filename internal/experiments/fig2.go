package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sanity/internal/asm"
	"sanity/internal/hw"
	"sanity/internal/svm"
)

// Figure2Result holds one scenario's run-time spread for the
// array-zeroing microbenchmark: the per-run variance relative to the
// fastest run, which is what the paper's Figure 2 plots as a CDF.
type Figure2Result struct {
	Scenario  string
	Variances []float64 // sorted, (t_i / t_min) - 1 per run
}

// zeroArraySource builds the §2.4 microbenchmark: zero out an array.
func zeroArraySource(words int) string {
	return fmt.Sprintf(`
.program zeroarray
.func main 0 2
    iconst %[1]d
    newarr int
    store 0
    iconst 0
    store 1
loop:
    load 1
    iconst %[1]d
    if_icmpge done
    load 0
    load 1
    iconst 0
    astore
    iinc 1 1
    goto loop
done:
    ret
.end
`, words)
}

// Figure2 reproduces the timing-variance CDF of zeroing a 4 MB array
// in four environments: (1) user level with GUI and network, (2) user
// level in single-user mode, (3) kernel mode, (4) kernel mode with
// IRQs off, caches flushed, and the execution pinned. Variance must
// shrink monotonically as the environment gets more controlled.
func Figure2(sizes Sizes, baseSeed uint64) ([]Figure2Result, error) {
	prog, err := asm.Assemble("zeroarray", zeroArraySource(sizes.Fig2ArrayWords))
	if err != nil {
		return nil, err
	}
	scenarios := []hw.NoiseProfile{
		hw.ProfileUserNoisy(),
		hw.ProfileUserQuiet(),
		hw.ProfileKernel(),
		hw.ProfileKernelQuiet(),
	}
	var out []Figure2Result
	for si, profile := range scenarios {
		times := make([]int64, 0, sizes.Fig2Runs)
		for r := 0; r < sizes.Fig2Runs; r++ {
			seed := baseSeed + uint64(si*1000+r)
			plat, err := hw.NewPlatform(hw.Optiplex9020(), profile, seed)
			if err != nil {
				return nil, err
			}
			plat.Initialize()
			start := plat.Cycles()
			vm, err := svm.New(prog, nil, svm.Config{Platform: plat, MaxSteps: 1_000_000_000})
			if err != nil {
				return nil, err
			}
			if err := vm.Run(); err != nil {
				return nil, err
			}
			times = append(times, plat.Cycles()-start)
		}
		minT := times[0]
		for _, t := range times {
			if t < minT {
				minT = t
			}
		}
		vars := make([]float64, len(times))
		for i, t := range times {
			vars[i] = float64(t-minT) / float64(minT)
		}
		sort.Float64s(vars)
		out = append(out, Figure2Result{Scenario: profile.Name, Variances: vars})
	}
	return out, nil
}

// FormatFigure2 renders the CDF series the way the paper's plot
// labels them.
func FormatFigure2(results []Figure2Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: timing variance zeroing an array (CDF, % of fastest execution)\n")
	for _, r := range results {
		max := 0.0
		if n := len(r.Variances); n > 0 {
			max = r.Variances[n-1]
		}
		fmt.Fprintf(&sb, "  %-12s max=%6.2f%%  cdf:", r.Scenario, max*100)
		for _, q := range []float64{0.25, 0.5, 0.75, 1.0} {
			idx := int(q*float64(len(r.Variances))) - 1
			if idx < 0 {
				idx = 0
			}
			fmt.Fprintf(&sb, " p%.0f=%.2f%%", q*100, r.Variances[idx]*100)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
