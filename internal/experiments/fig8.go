package experiments

import (
	"fmt"
	"strings"

	"sanity/internal/covert"
	"sanity/internal/detect"
	"sanity/internal/nfs"
	"sanity/internal/stats"
)

// Figure8Cell is one (channel, detector) entry: the AUC and the ROC
// curve behind it.
type Figure8Cell struct {
	Channel  string
	Detector string
	AUC      float64
	Curve    []stats.ROCPoint
}

// Figure8Result is the full 4x5 detection matrix.
type Figure8Result struct {
	Cells []Figure8Cell
}

// Cell finds one entry.
func (r *Figure8Result) Cell(channel, detector string) (Figure8Cell, bool) {
	for _, c := range r.Cells {
		if c.Channel == channel && c.Detector == detector {
			return c, true
		}
	}
	return Figure8Cell{}, false
}

// Figure8 runs the full covert-channel detection experiment:
//
//  1. Record training traces of legitimate traffic and train the
//     statistical detectors (and the adaptive channels, which also
//     learn from legitimate traffic).
//  2. Record test traces: legitimate ones, and compromised ones for
//     each of the four channels (fresh secret bits per trace).
//  3. Score every test trace with every detector; sweep thresholds
//     into ROC curves and AUCs.
//
// The TDR detector replays each test trace's log on the known-good
// binary; the statistical detectors see only the server-side IPDs.
func Figure8(sizes Sizes, baseSeed uint64) (*Figure8Result, error) {
	// --- 1. Training traffic ---
	var training [][]int64
	var pooledTraining []int64
	for i := 0; i < sizes.Fig8TrainTraces; i++ {
		seed := baseSeed + uint64(i)*31
		exec, _, err := nfsTrace(sizes.Fig8Packets, seed, seed+1, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 training: %w", err)
		}
		ipds := exec.OutputIPDs()
		training = append(training, ipds)
		pooledTraining = append(pooledTraining, ipds...)
	}
	detectors, err := detect.Statistical(training)
	if err != nil {
		return nil, err
	}
	// Scale the regularity window to the trace length so short test
	// configurations still produce enough windows.
	regWindow := sizes.Fig8Packets / 5
	if regWindow > 100 {
		regWindow = 100
	}
	if regWindow < 20 {
		regWindow = 20
	}
	for i, d := range detectors {
		if d.Name() == "regularity" {
			detectors[i] = detect.NewRegularity(regWindow)
		}
	}
	tdr := detect.NewTDR(nfs.ServerProgram(), baseConfig(baseSeed+777))
	allDetectors := append(detectors, tdr)

	channels, err := covert.All(pooledTraining, baseSeed+99)
	if err != nil {
		return nil, err
	}
	// The needle transmits one bit every Period packets; the paper's
	// one-minute traces carry ~80 marks at Period=100. Scale the
	// period so scaled-down traces still carry several marks (a trace
	// with zero 1-bits modifies nothing and is undetectable by
	// definition).
	for _, ch := range channels {
		if n, ok := ch.(*covert.Needle); ok {
			p := int64(sizes.Fig8Packets / 8)
			if p < 16 {
				p = 16
			}
			if p > 100 {
				p = 100
			}
			n.Period = p
		}
	}

	// --- 2. Test traces ---
	var legit []*detect.Trace
	for i := 0; i < sizes.Fig8LegitTraces; i++ {
		seed := baseSeed + 10_000 + uint64(i)*37
		exec, log, err := nfsTrace(sizes.Fig8Packets, seed, seed+2, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 legit: %w", err)
		}
		legit = append(legit, &detect.Trace{IPDs: exec.OutputIPDs(), Log: log, Play: exec})
	}
	covertTraces := make(map[string][]*detect.Trace)
	for ci, ch := range channels {
		for i := 0; i < sizes.Fig8CovertTraces; i++ {
			seed := baseSeed + 50_000 + uint64(ci)*10_000 + uint64(i)*41
			secret := covert.RandomBits(sizes.Fig8Packets, seed^0xFEED)
			exec, log, err := nfsTrace(sizes.Fig8Packets, seed, seed+2, ch.Hook(secret))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 %s: %w", ch.Name(), err)
			}
			covertTraces[ch.Name()] = append(covertTraces[ch.Name()], &detect.Trace{
				IPDs: exec.OutputIPDs(), Log: log, Play: exec,
			})
		}
	}

	// --- 3. Score and build the matrix ---
	// Legitimate scores per detector are shared across channels.
	negScores := make(map[string][]float64)
	for _, d := range allDetectors {
		for _, tr := range legit {
			s, err := d.Score(tr)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 %s on legit: %w", d.Name(), err)
			}
			negScores[d.Name()] = append(negScores[d.Name()], s)
		}
	}
	res := &Figure8Result{}
	for _, ch := range channels {
		for _, d := range allDetectors {
			var pos []float64
			for _, tr := range covertTraces[ch.Name()] {
				s, err := d.Score(tr)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig8 %s on %s: %w", d.Name(), ch.Name(), err)
				}
				pos = append(pos, s)
			}
			neg := negScores[d.Name()]
			res.Cells = append(res.Cells, Figure8Cell{
				Channel:  ch.Name(),
				Detector: d.Name(),
				AUC:      stats.AUC(pos, neg),
				Curve:    stats.ROC(pos, neg),
			})
		}
	}
	return res, nil
}

// FormatFigure8 renders the AUC matrix the way the paper's legends
// report it.
func FormatFigure8(r *Figure8Result) string {
	detOrder := []string{"shape", "ks", "regularity", "cce", "sanity-tdr"}
	chanOrder := []string{"ipctc", "trctc", "mbctc", "needle"}
	paperAUC := map[string]map[string]float64{
		"ipctc":  {"shape": 1.000, "ks": 1.000, "regularity": 1.000, "cce": 1.000, "sanity-tdr": 1.000},
		"trctc":  {"shape": 0.457, "ks": 0.833, "regularity": 0.726, "cce": 1.000, "sanity-tdr": 1.000},
		"mbctc":  {"shape": 0.223, "ks": 0.412, "regularity": 0.527, "cce": 0.885, "sanity-tdr": 1.000},
		"needle": {"shape": 0.751, "ks": 0.813, "regularity": 0.532, "cce": 0.638, "sanity-tdr": 1.000},
	}
	var sb strings.Builder
	sb.WriteString("Figure 8: detection AUC per channel and detector (paper's AUC in parentheses)\n")
	sb.WriteString("  channel   shape        ks           regularity   cce          sanity-tdr\n")
	for _, ch := range chanOrder {
		fmt.Fprintf(&sb, "  %-8s", ch)
		for _, d := range detOrder {
			if cell, ok := r.Cell(ch, d); ok {
				fmt.Fprintf(&sb, "  %.3f (%.3f)", cell.AUC, paperAUC[ch][d])
			} else {
				sb.WriteString("      -      ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
