package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sanity/internal/covert"
	"sanity/internal/fixtures"
	"sanity/internal/stats"
	"sanity/internal/triage"
)

// TriageEnsemble names the combined suspicion score in TriageCell,
// alongside the individual detector names from Score.PerDetector.
const TriageEnsemble = "ensemble"

// TriageCell is one (channel, scorer) entry of the triage ROC
// experiment: how well one score — the ensemble suspicion or a single
// detector's raw score — separates that channel's traces from benign
// traffic.
type TriageCell struct {
	Channel string
	Scorer  string
	AUC     float64
	// TPAtFP is the best true-positive rate reachable while the
	// false-positive rate stays at or under the experiment's matched
	// FP budget — the operating point a triage funnel actually runs
	// at, where AUC alone can hide a useless low-FP region.
	TPAtFP float64
	Curve  []stats.ROCPoint
}

// TriageResult is the triage ROC experiment's outcome: per-channel
// cells for the ensemble and every detector (including the needle at
// each swept period), plus the same comparison pooled over all covert
// traces — the ranking job the daemon's priority queue actually does.
type TriageResult struct {
	MatchedFP float64
	Cells     []TriageCell
}

// Cell finds one entry ("all" pools every covert channel).
func (r *TriageResult) Cell(channel, scorer string) (TriageCell, bool) {
	for _, c := range r.Cells {
		if c.Channel == channel && c.Scorer == scorer {
			return c, true
		}
	}
	return TriageCell{}, false
}

// Scorers lists the scorer names present, ensemble first.
func (r *TriageResult) Scorers() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range r.Cells {
		if !seen[c.Scorer] {
			seen[c.Scorer] = true
			out = append(out, c.Scorer)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i] == TriageEnsemble {
			return true
		}
		if out[j] == TriageEnsemble {
			return false
		}
		return out[i] < out[j]
	})
	return out
}

// TriageROC evaluates the ingest-time triage ensemble the way Figure 8
// evaluates the offline detectors: benign and covert traces are
// scored with triage.ScoreIPDs — the exact scorer the store runs at
// ingest — and each score's ROC is swept per channel and pooled. The
// dense channels run at their default configuration; the needle runs
// once per swept period, so the result shows the rate at which the
// cheap streaming detectors start to see a low-rate channel.
func TriageROC(sizes Sizes, baseSeed uint64) (*TriageResult, error) {
	channels, err := triageChannels(sizes, baseSeed)
	if err != nil {
		return nil, err
	}

	// Benign scores are shared by every channel's comparison.
	neg := map[string][]float64{}
	for i := 0; i < sizes.TriageTraces; i++ {
		sc := triage.ScoreIPDs(fixtures.SyntheticIPDs(sizes.TriagePackets, baseSeed+uint64(i)*31), triage.Options{})
		neg[TriageEnsemble] = append(neg[TriageEnsemble], sc.Suspicion)
		for d, v := range sc.PerDetector {
			neg[d] = append(neg[d], v)
		}
	}

	res := &TriageResult{MatchedFP: sizes.TriageMatchFP}
	pooled := map[string][]float64{}
	for ci, nc := range channels {
		pos := map[string][]float64{}
		for i := 0; i < sizes.TriageTraces; i++ {
			seed := baseSeed + 50_000 + uint64(ci)*10_000 + uint64(i)*41
			sc := triage.ScoreIPDs(fixtures.SyntheticCovertIPDs(nc.ch, sizes.TriagePackets, seed), triage.Options{})
			pos[TriageEnsemble] = append(pos[TriageEnsemble], sc.Suspicion)
			for d, v := range sc.PerDetector {
				pos[d] = append(pos[d], v)
			}
		}
		for scorer, p := range pos {
			curve := stats.ROC(p, neg[scorer])
			res.Cells = append(res.Cells, TriageCell{
				Channel: nc.name,
				Scorer:  scorer,
				AUC:     stats.AUC(p, neg[scorer]),
				TPAtFP:  tpAtFP(curve, sizes.TriageMatchFP),
				Curve:   curve,
			})
			pooled[scorer] = append(pooled[scorer], p...)
		}
	}
	for scorer, p := range pooled {
		curve := stats.ROC(p, neg[scorer])
		res.Cells = append(res.Cells, TriageCell{
			Channel: "all",
			Scorer:  scorer,
			AUC:     stats.AUC(p, neg[scorer]),
			TPAtFP:  tpAtFP(curve, sizes.TriageMatchFP),
			Curve:   curve,
		})
	}
	return res, nil
}

// namedChannel pairs a covert channel with the experiment's row name
// (the needle appears once per swept period).
type namedChannel struct {
	name string
	ch   covert.Channel
}

// triageChannels builds the experiment's channel population: the
// dense channels at their default configuration plus one needle per
// swept period.
func triageChannels(sizes Sizes, baseSeed uint64) ([]namedChannel, error) {
	pooled := fixtures.SyntheticIPDs(4*sizes.TriagePackets, baseSeed+7)
	base, err := covert.All(pooled, baseSeed+99)
	if err != nil {
		return nil, err
	}
	var out []namedChannel
	for _, ch := range base {
		if _, ok := ch.(*covert.Needle); ok {
			continue
		}
		out = append(out, namedChannel{ch.Name(), ch})
	}
	for _, period := range sizes.TriageNeedlePeriods {
		n := covert.NewNeedle()
		n.Period = period
		out = append(out, namedChannel{fmt.Sprintf("needle/p%d", period), n})
	}
	return out, nil
}

// tpAtFP reads the operating point off a ROC curve: the best TPR
// whose FPR stays within budget.
func tpAtFP(curve []stats.ROCPoint, fp float64) float64 {
	best := 0.0
	for _, p := range curve {
		if p.FPR <= fp && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// FormatTriageROC renders the AUC and matched-FP TP matrix, scorers
// across, channels down, the pooled row last.
func FormatTriageROC(r *TriageResult) string {
	scorers := r.Scorers()
	var channels []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if c.Channel != "all" && !seen[c.Channel] {
			seen[c.Channel] = true
			channels = append(channels, c.Channel)
		}
	}
	channels = append(channels, "all")

	var sb strings.Builder
	fmt.Fprintf(&sb, "Triage ROC: ingest-time suspicion, AUC (TP at FP<=%.2f) per channel and scorer\n", r.MatchedFP)
	fmt.Fprintf(&sb, "  %-12s", "channel")
	for _, s := range scorers {
		fmt.Fprintf(&sb, "  %-14s", s)
	}
	sb.WriteByte('\n')
	for _, ch := range channels {
		fmt.Fprintf(&sb, "  %-12s", ch)
		for _, s := range scorers {
			if cell, ok := r.Cell(ch, s); ok {
				fmt.Fprintf(&sb, "  %.3f (%.2f)  ", cell.AUC, cell.TPAtFP)
			} else {
				sb.WriteString("       -       ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
