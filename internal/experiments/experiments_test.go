package experiments

import (
	"fmt"
	"testing"
)

// tinySizes keeps the experiment tests fast; the assertions check
// shapes (orderings, floors, ceilings), not absolute numbers.
func tinySizes() Sizes {
	return Sizes{
		Fig2Runs:         5,
		Fig2ArrayWords:   16384,
		Fig3Packets:      12,
		Table2Reps:       1,
		Fig6Runs:         4,
		Fig7Traces:       3,
		Fig7Packets:      40,
		LogPackets:       60,
		Fig8TrainTraces:  4,
		Fig8LegitTraces:  6,
		Fig8CovertTraces: 6,
		Fig8Packets:      140,

		ThroughputTraces:  16,
		ThroughputPackets: 60,

		CrossTraces:     8,
		CrossPackets:    50,
		CrossTrainSweep: []int{2, 3},

		ReplayWindowTraces:   8,
		ReplayWindowPackets:  60,
		ReplayWindowEvery:    12,
		ReplayWindowSweep:    []int{10},
		ReplayWindowAutoIPDs: 24,
	}
}

func TestFigure2VarianceOrdering(t *testing.T) {
	res, err := Figure2(tinySizes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("scenarios = %d", len(res))
	}
	maxOf := func(i int) float64 {
		v := res[i].Variances
		return v[len(v)-1]
	}
	// Noisy user level must be the worst; kernel-quiet the best.
	if !(maxOf(0) > maxOf(3)) {
		t.Fatalf("user-noisy %.4f not above kernel-quiet %.4f", maxOf(0), maxOf(3))
	}
	if maxOf(3) > 0.05 {
		t.Fatalf("kernel-quiet variance %.4f too high", maxOf(3))
	}
	if FormatFigure2(res) == "" {
		t.Fatal("empty rendering")
	}
}

func TestFigure3FunctionalDivergesTDRDoesNot(t *testing.T) {
	res, err := Figure3(tinySizes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFunctionalDev < 0.05 {
		t.Fatalf("functional replay too accurate (%.4f); Figure 3 expects divergence", res.MaxFunctionalDev)
	}
	if res.MaxTDRDev > 0.02 {
		t.Fatalf("TDR replay deviation %.4f above 2%%", res.MaxTDRDev)
	}
	if len(res.Functional) == 0 || len(res.TDR) == 0 {
		t.Fatal("no event pairs")
	}
	if FormatFigure3(res) == "" {
		t.Fatal("empty rendering")
	}
}

func TestTable2Ordering(t *testing.T) {
	rows, err := Table2(tinySizes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The timed Sanity engine cannot be faster than the plain
		// interpreter, and native code must beat both by a wide margin.
		if r.SanityNorm < 1.0 {
			t.Fatalf("%s: Sanity %.3f unexpectedly faster than the plain interpreter", r.Kernel, r.SanityNorm)
		}
		if r.JitNorm > 0.5 {
			t.Fatalf("%s: JIT analog %.3f not clearly faster than interpretation", r.Kernel, r.JitNorm)
		}
	}
	if FormatTable2(rows) == "" {
		t.Fatal("empty rendering")
	}
}

func TestFigure6Ordering(t *testing.T) {
	rows, err := Figure6(tinySizes(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.DirtyPct > r.SanityPct) {
			t.Fatalf("%s: dirty %.3f%% not above sanity %.4f%%", r.Kernel, r.DirtyPct, r.SanityPct)
		}
		if r.SanityPct > 2.0 {
			t.Fatalf("%s: sanity variance %.3f%% above the paper's ~1.22%% ceiling", r.Kernel, r.SanityPct)
		}
	}
	if FormatFigure6(rows) == "" {
		t.Fatal("empty rendering")
	}
}

func TestFigure7Accuracy(t *testing.T) {
	res, err := Figure7(tinySizes(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelDev > 0.02 {
		t.Fatalf("max IPD deviation %.4f above 2%% (paper: 1.85%%)", res.MaxRelDev)
	}
	if res.TotalWithin1Pct < 0.9 {
		t.Fatalf("only %.0f%% of traces within 1%% total time", res.TotalWithin1Pct*100)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no IPD pairs")
	}
	if FormatFigure7(res) == "" {
		t.Fatal("empty rendering")
	}
}

func TestLogSizeComposition(t *testing.T) {
	res, err := LogSize(tinySizes(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 || res.TotalBytes == 0 {
		t.Fatalf("empty log result: %+v", res)
	}
	// Packets dominate (84% in the paper).
	if res.PacketFraction < 0.5 {
		t.Fatalf("packet fraction %.2f unexpectedly low", res.PacketFraction)
	}
	if FormatLogSize(res) == "" {
		t.Fatal("empty rendering")
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 8 is slow; skipped with -short")
	}
	res, err := Figure8(tinySizes(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 20 {
		t.Fatalf("cells = %d, want 20", len(res.Cells))
	}
	// The paper's headline shape: the TDR detector is perfect on
	// every channel.
	for _, ch := range []string{"ipctc", "trctc", "mbctc", "needle"} {
		cell, ok := res.Cell(ch, "sanity-tdr")
		if !ok {
			t.Fatalf("missing TDR cell for %s", ch)
		}
		if cell.AUC < 0.999 {
			t.Fatalf("TDR AUC on %s = %.3f, want 1.0", ch, cell.AUC)
		}
	}
	// IPCTC is caught by everything.
	for _, d := range []string{"shape", "ks", "cce"} {
		cell, _ := res.Cell("ipctc", d)
		if cell.AUC < 0.9 {
			t.Fatalf("%s AUC on ipctc = %.3f, want ~1", d, cell.AUC)
		}
	}
	// The needle evades the statistical detectors (none of them
	// reaches TDR's perfection).
	for _, d := range []string{"shape", "ks", "regularity", "cce"} {
		cell, _ := res.Cell("needle", d)
		if cell.AUC > 0.95 {
			t.Fatalf("%s AUC on needle = %.3f; the needle should be hard statistically", d, cell.AUC)
		}
	}
	t.Log("\n" + FormatFigure8(res))
}

func TestThroughputScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep is slow; skipped with -short")
	}
	res, err := Throughput(tinySizes(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("verdicts diverged across pipeline configurations")
	}
	if res.FalsePositives != 0 || res.FalseNegatives != 0 {
		t.Fatalf("TDR misclassified labeled traces: FP %d FN %d", res.FalsePositives, res.FalseNegatives)
	}
	if len(res.Points) < 2 {
		t.Fatalf("sweep produced %d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.TracesPerSec <= 0 {
			t.Fatalf("workers=%d: throughput %.2f", p.Workers, p.TracesPerSec)
		}
	}
	t.Log("\n" + FormatThroughput(res))
}

// TestCrossMachineCalibratedAudit is the cross-machine acceptance
// path: a corpus recorded on T, audited end-to-end from the store by a
// T'-only auditor through a fitted calibration, must reach the same
// verdicts as the same-machine audit — in both directions of the
// Optiplex/SlowerT pair.
func TestCrossMachineCalibratedAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("played corpora in -short mode")
	}
	res, err := CrossMachine(tinySizes(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Directions) != 2 {
		t.Fatalf("%d directions, want both T->T' and T'->T", len(res.Directions))
	}
	for _, d := range res.Directions {
		if d.Recorded == d.Auditor {
			t.Fatalf("direction %s is not cross-machine: %s -> %s", d.Program, d.Recorded, d.Auditor)
		}
		if d.Baseline.TP == 0 || d.Baseline.TN == 0 {
			t.Fatalf("%s baseline audit has no signal: %+v", d.Program, d.Baseline)
		}
		if len(d.Points) != 2 {
			t.Fatalf("%s swept %d training sizes", d.Program, len(d.Points))
		}
		for _, p := range d.Points {
			if p.Scale <= 0 || p.ScaleLow > p.Scale || p.Scale > p.ScaleHigh {
				t.Fatalf("%s train=%d: implausible scale %f [%f, %f]", d.Program, p.TrainTraces, p.Scale, p.ScaleLow, p.ScaleHigh)
			}
			if !p.MatchesBaseline {
				t.Errorf("%s train=%d: calibrated verdicts diverged from the same-machine baseline (%+v vs %+v)",
					d.Program, p.TrainTraces, p.Confusion, d.Baseline)
			}
		}
	}
	t.Log("\n" + FormatCrossMachine(res))
}

func TestNoiseVsJitter(t *testing.T) {
	fig7, err := Figure7(tinySizes(), 13)
	if err != nil {
		t.Fatal(err)
	}
	res := NoiseVsJitter(fig7)
	if res.MedianIPDMs <= 0 {
		t.Fatal("no median IPD")
	}
	// The core §6.9 claim: median jitter exceeds the noise Sanity
	// allows.
	if res.JitterOverNoise < 1.0 {
		t.Fatalf("jitter/noise ratio %.2f below 1; evasion would be practical", res.JitterOverNoise)
	}
	if FormatNoiseVsJitter(res) == "" {
		t.Fatal("empty rendering")
	}
}

func TestAblationFullSanityBest(t *testing.T) {
	rows, err := Ablation(30, 15)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Name != "full-sanity" {
		t.Fatal("first row must be the full design")
	}
	full := rows[0].MaxRelIPDDev
	worse := 0
	for _, r := range rows[1:] {
		if r.MaxRelIPDDev > full {
			worse++
		}
	}
	// Most single-mitigation ablations must hurt accuracy.
	if worse < 3 {
		t.Fatalf("only %d/%d ablations degraded accuracy (full=%.5f)", worse, len(rows)-1, full)
	}
	if FormatAblation(rows) == "" {
		t.Fatal("empty rendering")
	}
}

// TestReplayWindowSpeedsUpWithoutDisagreement: the windowed sweep
// must beat the full-audit baseline on throughput while keeping the
// verdicts it covers consistent — a windowed audit may only disagree
// by missing a delay outside its window (covert -> undetected), never
// by inventing one (benign traces stay clean).
func TestReplayWindowSpeedsUpWithoutDisagreement(t *testing.T) {
	if testing.Short() {
		t.Skip("records a played corpus")
	}
	res, err := ReplayWindow(tinySizes(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want baseline + 1 window + auto arm", len(res.Points))
	}
	base, win, auto := res.Points[0], res.Points[1], res.Points[2]
	if base.WindowIPDs != 0 || win.WindowIPDs != 10 || !auto.Auto {
		t.Fatalf("unexpected sweep shape: %+v", res.Points)
	}
	if win.Speedup <= 1.2 {
		t.Fatalf("windowed audit speedup %.2fx; expected a clear win", win.Speedup)
	}
	if win.FalsePositives > base.FalsePositives {
		t.Fatalf("windowing invented false positives: %d > %d", win.FalsePositives, base.FalsePositives)
	}
	if win.VerdictAgreement < 0.75 {
		t.Fatalf("verdict agreement %.2f unexpectedly low for this channel mix", win.VerdictAgreement)
	}
	// The auto arm's contract is stronger than the trailing sweep's:
	// it narrows only where the prefilter localizes the anomaly, so it
	// must agree with the full audit on every trace — covert traces
	// included — while replaying fewer IPDs overall.
	if auto.VerdictAgreement != 1 || auto.CovertAgreement != 1 {
		t.Fatalf("auto arm disagreement: verdicts %.2f covert %.2f\n%s",
			auto.VerdictAgreement, auto.CovertAgreement, FormatReplayWindow(res))
	}
	if auto.CoverageFrac >= 1 || auto.Narrowed == 0 {
		t.Fatalf("auto arm replayed %.0f%% of IPDs (narrowed %d traces); expected a real reduction\n%s",
			auto.CoverageFrac*100, auto.Narrowed, FormatReplayWindow(res))
	}
	if auto.FalsePositives != base.FalsePositives {
		t.Fatalf("auto windowing changed false positives: %d vs %d", auto.FalsePositives, base.FalsePositives)
	}
	if FormatReplayWindow(res) == "" {
		t.Fatal("empty rendering")
	}
}

// TestTriageEnsembleBeatsSingles is the triage funnel's acceptance
// gate: pooled over every covert channel — the ranking job the
// daemon's priority queue actually does — the ensemble suspicion must
// reach at least every single detector's true-positive rate at the
// experiment's matched false-positive budget, and the ensemble must
// be decisive on IPCTC, the channel the funnel exists to fast-path.
func TestTriageEnsembleBeatsSingles(t *testing.T) {
	sizes := DefaultSizes() // scoring is cheap; full trace counts keep the ROC stable
	res, err := TriageROC(sizes, 42)
	if err != nil {
		t.Fatal(err)
	}
	ens, ok := res.Cell("all", TriageEnsemble)
	if !ok {
		t.Fatal("no pooled ensemble cell")
	}
	for _, scorer := range res.Scorers() {
		if scorer == TriageEnsemble {
			continue
		}
		single, _ := res.Cell("all", scorer)
		if single.TPAtFP > ens.TPAtFP {
			t.Errorf("pooled at FP<=%.2f: detector %s TP %.3f beats ensemble TP %.3f",
				res.MatchedFP, scorer, single.TPAtFP, ens.TPAtFP)
		}
	}
	ipctc, ok := res.Cell("ipctc", TriageEnsemble)
	if !ok {
		t.Fatal("no ipctc ensemble cell")
	}
	if ipctc.AUC < 0.99 || ipctc.TPAtFP < 0.99 {
		t.Errorf("ipctc ensemble AUC %.3f TP %.3f, want ~1.0 on the funnel's headline channel", ipctc.AUC, ipctc.TPAtFP)
	}
	// The needle sweep must be present: one row per configured period.
	for _, p := range sizes.TriageNeedlePeriods {
		if _, ok := res.Cell(fmt.Sprintf("needle/p%d", p), TriageEnsemble); !ok {
			t.Errorf("missing needle/p%d row", p)
		}
	}
	t.Log("\n" + FormatTriageROC(res))
}
