package experiments

import (
	"fmt"
	"strings"

	"sanity/internal/hw"
	"sanity/internal/scimark"
)

// Figure6Row is one kernel's max-min run-time variance in the three
// Figure-6 configurations, as a percentage of the fastest run.
type Figure6Row struct {
	Kernel    string
	DirtyPct  float64
	CleanPct  float64
	SanityPct float64
}

// Figure6 repeats each SciMark kernel under the dirty, clean, and
// Sanity configurations and reports the spread between the fastest
// and slowest run. The paper's ordering is dirty ≫ clean ≫ Sanity
// (0.08%–1.22% for the latter).
func Figure6(sizes Sizes, baseSeed uint64) ([]Figure6Row, error) {
	profiles := []hw.NoiseProfile{hw.ProfileDirty(), hw.ProfileClean(), hw.ProfileSanity()}
	var rows []Figure6Row
	for _, k := range scimark.Kernels() {
		var spreads [3]float64
		for pi, profile := range profiles {
			var lo, hi int64
			for r := 0; r < sizes.Fig6Runs; r++ {
				plat, err := hw.NewPlatform(hw.Optiplex9020(), profile, baseSeed+uint64(pi*100+r))
				if err != nil {
					return nil, err
				}
				res, err := scimark.RunVM(k, plat)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig6 %s/%s: %w", k.Name, profile.Name, err)
				}
				if r == 0 || res.Cycles < lo {
					lo = res.Cycles
				}
				if r == 0 || res.Cycles > hi {
					hi = res.Cycles
				}
			}
			spreads[pi] = float64(hi-lo) / float64(lo) * 100
		}
		rows = append(rows, Figure6Row{
			Kernel:    k.Name,
			DirtyPct:  spreads[0],
			CleanPct:  spreads[1],
			SanityPct: spreads[2],
		})
	}
	return rows, nil
}

// FormatFigure6 renders the bar data of Figure 6.
func FormatFigure6(rows []Figure6Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: SciMark timing variance, (max-min)/min over repeated runs\n")
	sb.WriteString("  Kernel    Dirty      Clean      Sanity\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-6s %8.2f%%  %8.3f%%  %8.4f%%\n", r.Kernel, r.DirtyPct, r.CleanPct, r.SanityPct)
	}
	return sb.String()
}
