package experiments

import (
	"fmt"
	"strings"
)

// LogSizeResult reproduces §6.5: how fast the log grows and what it
// is made of.
type LogSizeResult struct {
	Packets        int
	ValueRecords   int
	TotalBytes     int64
	VirtualMinutes float64
	BytesPerMinute float64
	PacketFraction float64 // share of log bytes that are packet records
}

// LogSize records one NFS trace and measures its log.
func LogSize(sizes Sizes, seed uint64) (*LogSizeResult, error) {
	play, log, err := nfsTrace(sizes.LogPackets, seed, seed+3, nil)
	if err != nil {
		return nil, err
	}
	st := log.Stats()
	minutes := float64(play.TotalPs) / 1e12 / 60
	res := &LogSizeResult{
		Packets:        st.Packets,
		ValueRecords:   st.ValueRecords,
		TotalBytes:     st.TotalBytes,
		VirtualMinutes: minutes,
		PacketFraction: float64(st.PacketBytes) / float64(st.TotalBytes),
	}
	if minutes > 0 {
		res.BytesPerMinute = float64(st.TotalBytes) / minutes
	}
	return res, nil
}

// FormatLogSize renders the §6.5 numbers.
func FormatLogSize(r *LogSizeResult) string {
	var sb strings.Builder
	sb.WriteString("Log size (paper section 6.5)\n")
	fmt.Fprintf(&sb, "  trace length:      %.2f virtual minutes (%d packets)\n", r.VirtualMinutes, r.Packets)
	fmt.Fprintf(&sb, "  log size:          %d bytes\n", r.TotalBytes)
	fmt.Fprintf(&sb, "  growth rate:       %.1f kB/minute (paper: ~20 kB/minute)\n", r.BytesPerMinute/1024)
	fmt.Fprintf(&sb, "  packet records:    %.0f%% of log bytes (paper: 84%%)\n", r.PacketFraction*100)
	fmt.Fprintf(&sb, "  other records:     %d (nanoTime etc.)\n", r.ValueRecords)
	return sb.String()
}
