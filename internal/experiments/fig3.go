package experiments

import (
	"fmt"
	"strings"

	"sanity/internal/core"
	"sanity/internal/nfs"
)

// Figure3Point is one replay-visible event: its virtual time during
// play (Tp) and during replay (Tr), in milliseconds. With ideal TDR
// the points lie on the diagonal; with functional replay they wander
// off it (§2.5).
type Figure3Point struct {
	Kind string
	TpMs float64
	TrMs float64
}

// Figure3Result carries the event scatter for both replay flavors.
type Figure3Result struct {
	Functional []Figure3Point
	TDR        []Figure3Point
	// MaxFunctionalDev and MaxTDRDev are max |Tr-Tp|/Tp across events.
	MaxFunctionalDev float64
	MaxTDRDev        float64
}

// Figure3 records an NFS trace, replays it both conventionally
// (XenTT-style functional replay) and with TDR, and pairs every
// event's play time with its replay time.
func Figure3(sizes Sizes, seed uint64) (*Figure3Result, error) {
	play, log, err := nfsTrace(sizes.Fig3Packets, seed, seed+1, nil)
	if err != nil {
		return nil, err
	}
	functional, err := core.ReplayFunctional(nfs.ServerProgram(), log, baseConfig(seed+2))
	if err != nil {
		return nil, err
	}
	tdr, err := core.ReplayTDR(nfs.ServerProgram(), log, baseConfig(seed+3))
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	pair := func(replay *core.Execution) ([]Figure3Point, float64) {
		n := len(play.Events)
		if len(replay.Events) < n {
			n = len(replay.Events)
		}
		pts := make([]Figure3Point, 0, n)
		var maxDev float64
		for i := 0; i < n; i++ {
			tp := float64(play.Events[i].TimePs) / 1e9
			tr := float64(replay.Events[i].TimePs) / 1e9
			pts = append(pts, Figure3Point{Kind: play.Events[i].Kind, TpMs: tp, TrMs: tr})
			if tp > 0 {
				dev := (tr - tp) / tp
				if dev < 0 {
					dev = -dev
				}
				if dev > maxDev {
					maxDev = dev
				}
			}
		}
		return pts, maxDev
	}
	res.Functional, res.MaxFunctionalDev = pair(functional)
	res.TDR, res.MaxTDRDev = pair(tdr)
	return res, nil
}

// FormatFigure3 renders a sampled scatter plus the deviation summary.
func FormatFigure3(r *Figure3Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: elapsed time during play vs replay (ms)\n")
	sb.WriteString("  conventional (functional) replay, XenTT-style:\n")
	step := len(r.Functional)/10 + 1
	for i := 0; i < len(r.Functional); i += step {
		p := r.Functional[i]
		fmt.Fprintf(&sb, "    Tp=%9.3f  Tr=%9.3f  (%s)\n", p.TpMs, p.TrMs, p.Kind)
	}
	fmt.Fprintf(&sb, "  functional replay max deviation: %.1f%% (far off the diagonal)\n", r.MaxFunctionalDev*100)
	fmt.Fprintf(&sb, "  TDR replay max deviation:        %.4f%% (on the diagonal)\n", r.MaxTDRDev*100)
	return sb.String()
}
