package experiments

import (
	"fmt"
	"strings"

	"sanity/internal/netsim"
)

// NoiseVsJitterResult reproduces the §6.9 argument: the adversary's
// only evasion strategy — timing changes below TDR's replay accuracy
// — is drowned out by the network's own jitter.
type NoiseVsJitterResult struct {
	MedianIPDMs     float64
	MaxReplayDevPct float64 // TDR's noise floor, in % of IPD
	AllowedNoiseMs  float64 // MedianIPD * noise floor
	JitterP50Ms     float64
	JitterP90Ms     float64
	JitterP99Ms     float64
	JitterOverNoise float64 // p50 jitter as a multiple of allowed noise
	BroadbandP50Ms  float64
}

// NoiseVsJitter derives the comparison from a Figure-7 run plus the
// calibrated jitter models.
func NoiseVsJitter(fig7 *Figure7Result) *NoiseVsJitterResult {
	jm := netsim.PaperJitter()
	res := &NoiseVsJitterResult{
		MedianIPDMs:     fig7.MedianIPDMs,
		MaxReplayDevPct: fig7.MaxRelDev * 100,
		AllowedNoiseMs:  fig7.MedianIPDMs * fig7.MaxRelDev,
		JitterP50Ms:     float64(jm.Percentile(0.50)) / 1e9,
		JitterP90Ms:     float64(jm.Percentile(0.90)) / 1e9,
		JitterP99Ms:     float64(jm.Percentile(0.99)) / 1e9,
		BroadbandP50Ms:  float64(netsim.BroadbandJitter().Percentile(0.50)) / 1e9,
	}
	if res.AllowedNoiseMs > 0 {
		res.JitterOverNoise = res.JitterP50Ms / res.AllowedNoiseMs
	}
	return res
}

// FormatNoiseVsJitter renders the comparison.
func FormatNoiseVsJitter(r *NoiseVsJitterResult) string {
	var sb strings.Builder
	sb.WriteString("Time noise vs network jitter (paper section 6.9)\n")
	fmt.Fprintf(&sb, "  median IPD:               %.2f ms (paper: 7.4 ms)\n", r.MedianIPDMs)
	fmt.Fprintf(&sb, "  TDR replay noise floor:   %.3f%% of IPD (paper: 1.85%%)\n", r.MaxReplayDevPct)
	fmt.Fprintf(&sb, "  noise allowed by Sanity:  %.3f ms (paper: 0.14 ms)\n", r.AllowedNoiseMs)
	fmt.Fprintf(&sb, "  WAN jitter p50/p90/p99:   %.2f / %.2f / %.2f ms (paper: 0.18/0.80/3.91)\n",
		r.JitterP50Ms, r.JitterP90Ms, r.JitterP99Ms)
	fmt.Fprintf(&sb, "  median jitter / allowed noise: %.0f%% (paper: 129%%)\n", r.JitterOverNoise*100)
	fmt.Fprintf(&sb, "  broadband median jitter:  %.1f ms (paper: ~2.5 ms)\n", r.BroadbandP50Ms)
	sb.WriteString("  => sub-noise timing channels are lost in network jitter; evasion is impractical\n")
	return sb.String()
}
