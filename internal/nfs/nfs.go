// Package nfs provides the paper's evaluation workload: an NFS-like
// file server that runs inside the Sanity VM (the paper used nfsj, an
// NFS server written in Java, §6.4). The protocol is a minimal
// read-only subset — a client asks for a file, the server checksums
// it and returns a header plus the first data block — but it
// exercises the same code path as the paper's server: poll the S-T
// buffer, touch file data in memory, write the T-S buffer.
//
// The workload matches §6.6: 30 files with sizes between 1 kB and
// 30 kB, read one after the other by a remote client.
package nfs

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"sanity/internal/asm"
	"sanity/internal/hw"
	"sanity/internal/netsim"
	"sanity/internal/svm"
)

// NumFiles is the number of files in the store (paper §6.6).
const NumFiles = 30

// DataBlock is the number of file bytes echoed in each response.
const DataBlock = 512

// RequestSize is the fixed request length. The first four bytes are
// the protocol (op, fileID, 2-byte seq); the rest is the RPC framing
// a real NFS request carries (xid, credentials, verifier), which
// matters for the §6.5 log-size experiment because incoming packets
// are logged in their entirety.
const RequestSize = 120

// header bytes in a response: 2-byte seq echo + 8-byte checksum.
const respHeader = 10

// OpRead is the only protocol operation.
const OpRead = 1

// FileName returns the store key of file i.
func FileName(i int) string { return fmt.Sprintf("f%02d", i) }

// FileStore builds the deterministic file store: file i holds (i+1) kB
// of seeded pseudo-random bytes. The store is part of the machine's
// initial state and therefore identical during play and replay.
func FileStore() map[string][]byte {
	rng := hw.NewRNG(0x5EED_F11E)
	files := make(map[string][]byte, NumFiles)
	for i := 0; i < NumFiles; i++ {
		b := make([]byte, (i+1)*1024)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		files[FileName(i)] = b
	}
	return files
}

// Request encodes a read request for fileID with a sequence number.
// Bytes beyond the protocol header are deterministic RPC-style
// filler (credential/verifier fields).
func Request(fileID int, seq uint16) []byte {
	req := make([]byte, RequestSize)
	req[0] = OpRead
	req[1] = byte(fileID)
	req[2] = byte(seq >> 8)
	req[3] = byte(seq)
	for i := 4; i < RequestSize; i++ {
		req[i] = byte((i*7 + int(seq)) & 0xFF)
	}
	return req
}

// ParseResponse splits a response into its sequence number, checksum,
// and data block.
func ParseResponse(resp []byte) (seq uint16, checksum uint64, data []byte, err error) {
	if len(resp) < respHeader {
		return 0, 0, nil, fmt.Errorf("nfs: short response (%d bytes)", len(resp))
	}
	seq = uint16(resp[0])<<8 | uint16(resp[1])
	checksum = binary.LittleEndian.Uint64(resp[2:10])
	return seq, checksum, resp[respHeader:], nil
}

// Checksum computes the server's file checksum (byte sum over a
// 64-byte stride) for verification in tests.
func Checksum(file []byte) uint64 {
	var sum uint64
	for i := 0; i < len(file); i += 64 {
		sum += uint64(file[i])
	}
	return sum
}

// ValidateResponse checks that resp correctly answers req against the
// given store.
func ValidateResponse(req, resp []byte, files map[string][]byte) error {
	if len(req) != RequestSize {
		return fmt.Errorf("nfs: bad request size %d", len(req))
	}
	fileID := int(req[1]) % NumFiles
	file := files[FileName(fileID)]
	seq, sum, data, err := ParseResponse(resp)
	if err != nil {
		return err
	}
	wantSeq := uint16(req[2])<<8 | uint16(req[3])
	if seq != wantSeq {
		return fmt.Errorf("nfs: seq %d, want %d", seq, wantSeq)
	}
	if sum != Checksum(file) {
		return fmt.Errorf("nfs: checksum %#x, want %#x", sum, Checksum(file))
	}
	n := len(file)
	if n > DataBlock {
		n = DataBlock
	}
	if len(data) != n {
		return fmt.Errorf("nfs: data block %d bytes, want %d", len(data), n)
	}
	for i := range data {
		if data[i] != file[i] {
			return fmt.Errorf("nfs: data mismatch at %d", i)
		}
	}
	return nil
}

// ServerSource generates the SVM assembly of the server. The file
// loading section is unrolled per file (the assembly language has no
// string formatting), which is why the source is generated rather
// than written by hand.
func ServerSource() string {
	var sb strings.Builder
	sb.WriteString(".program nfsd\n.global names\n")
	sb.WriteString(".func main 0 1\n")
	fmt.Fprintf(&sb, "    iconst %d\n    newarr ref\n    gput names\n", NumFiles)
	for i := 0; i < NumFiles; i++ {
		fmt.Fprintf(&sb, "    gget names\n    iconst %d\n    sconst \"%s\"\n    astore\n", i, FileName(i))
	}
	sb.WriteString("    call serve\n    ret\n.end\n")

	// serve locals: 0=req 1=sum 2=i 3=fileid 4=file 5=resp 6=n
	// Each request reads its file from stable storage (the padded-I/O
	// path of §3.7), checksums it, and answers with the first block.
	sb.WriteString(".func serve 0 7\nloop:\n")
	sb.WriteString(`    ncall io.recvblock 0
    store 0
    load 0
    ifnull done
    ncall sys.nanotime 0
    pop                      ; request timestamp (logged nondeterminism)
    load 0
    iconst 1
    aload
    store 3
    gget names
    load 3
`)
	fmt.Fprintf(&sb, "    iconst %d\n    irem\n    aload\n    ncall fs.read 1\n    store 4\n", NumFiles)
	// Checksum loop, stride 64 — touches the whole file through the
	// cache hierarchy the way a real read path would.
	sb.WriteString(`    iconst 0
    store 1
    iconst 0
    store 2
ck:
    load 2
    load 4
    alen
    if_icmpge szcalc
    load 1
    load 4
    load 2
    aload
    iadd
    store 1
    iinc 2 64
    goto ck
szcalc:
    load 4
    alen
    store 6
    load 6
`)
	fmt.Fprintf(&sb, "    iconst %d\n    if_icmple szok\n    iconst %d\n    store 6\nszok:\n", DataBlock, DataBlock)
	fmt.Fprintf(&sb, "    load 6\n    iconst %d\n    iadd\n    newarr byte\n    store 5\n", respHeader)
	// Sequence echo: resp[0] = req[2], resp[1] = req[3].
	sb.WriteString(`    load 5
    iconst 0
    load 0
    iconst 2
    aload
    astore
    load 5
    iconst 1
    load 0
    iconst 3
    aload
    astore
`)
	// Checksum little-endian into resp[2..9].
	for k := 0; k < 8; k++ {
		fmt.Fprintf(&sb, "    load 5\n    iconst %d\n    load 1\n    iconst %d\n    iushr\n    iconst 255\n    iand\n    astore\n", 2+k, 8*k)
	}
	// Copy the data block.
	fmt.Fprintf(&sb, `    iconst 0
    store 2
copy:
    load 2
    load 6
    if_icmpge send
    load 5
    load 2
    iconst %d
    iadd
    load 4
    load 2
    aload
    astore
    iinc 2 1
    goto copy
send:
    load 5
    ncall io.send 1
    pop
    goto loop
done:
    ret
.end
`, respHeader)
	return sb.String()
}

var (
	progOnce sync.Once
	progMemo *svm.Program
)

// ServerProgram assembles (and memoizes) the server. Programs are
// immutable, so sharing one instance across executions is safe.
func ServerProgram() *svm.Program {
	progOnce.Do(func() {
		progMemo = asm.MustAssemble("nfsd", ServerSource())
	})
	return progMemo
}

// ClientWorkload builds a client session of n requests cycling
// through the 30 files, with think times from the given model.
func ClientWorkload(n int, think netsim.ThinkTimeModel, seed uint64) *netsim.Workload {
	rng := hw.NewRNG(seed)
	w := &netsim.Workload{
		Requests:   make([][]byte, n),
		Departures: think.Schedule(n, rng),
	}
	for i := 0; i < n; i++ {
		w.Requests[i] = Request(i%NumFiles, uint16(i))
	}
	return w
}
