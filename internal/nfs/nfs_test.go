package nfs

import (
	"testing"

	"sanity/internal/core"
	"sanity/internal/hw"
	"sanity/internal/netsim"
)

func TestFileStoreShape(t *testing.T) {
	files := FileStore()
	if len(files) != NumFiles {
		t.Fatalf("store has %d files", len(files))
	}
	for i := 0; i < NumFiles; i++ {
		f := files[FileName(i)]
		if len(f) != (i+1)*1024 {
			t.Fatalf("file %d has %d bytes, want %d", i, len(f), (i+1)*1024)
		}
	}
}

func TestFileStoreDeterministic(t *testing.T) {
	a, b := FileStore(), FileStore()
	for name := range a {
		if string(a[name]) != string(b[name]) {
			t.Fatalf("file %s differs across builds", name)
		}
	}
}

func TestRequestEncoding(t *testing.T) {
	r := Request(7, 0x1234)
	if len(r) != RequestSize || r[0] != OpRead || r[1] != 7 || r[2] != 0x12 || r[3] != 0x34 {
		t.Fatalf("request = %v", r[:8])
	}
	// The RPC filler must be deterministic per sequence number.
	r2 := Request(7, 0x1234)
	for i := range r {
		if r[i] != r2[i] {
			t.Fatalf("request filler nondeterministic at %d", i)
		}
	}
}

func TestServerProgramAssembles(t *testing.T) {
	p := ServerProgram()
	if p == nil || p.Name != "nfsd" {
		t.Fatal("server program missing")
	}
	if _, ok := p.FuncIndex("serve"); !ok {
		t.Fatal("no serve function")
	}
}

func serverConfig(seed uint64) core.Config {
	return core.Config{
		Machine:  hw.Optiplex9020(),
		Profile:  hw.ProfileSanity(),
		Seed:     seed,
		Files:    FileStore(),
		MaxSteps: 500_000_000,
	}
}

func TestServerAnswersRequests(t *testing.T) {
	w := ClientWorkload(6, netsim.DefaultThinkTime(), 42)
	path := netsim.PaperPath(7)
	inputs := w.ToServerInputs(path, 0)
	exec, log, err := core.Play(ServerProgram(), inputs, serverConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Outputs) != 6 {
		t.Fatalf("outputs = %d, want 6", len(exec.Outputs))
	}
	files := FileStore()
	for i, out := range exec.Outputs {
		if err := ValidateResponse(w.Requests[i], out.Payload, files); err != nil {
			t.Fatalf("response %d invalid: %v", i, err)
		}
	}
	if got := len(log.Packets()); got != 6 {
		t.Fatalf("log has %d packets", got)
	}
}

func TestServerReplaysExactly(t *testing.T) {
	w := ClientWorkload(8, netsim.DefaultThinkTime(), 43)
	inputs := w.ToServerInputs(netsim.PaperPath(8), 0)
	play, log, err := core.Play(ServerProgram(), inputs, serverConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := core.ReplayTDR(ServerProgram(), log, serverConfig(202))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := core.Compare(play, replay)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OutputsMatch {
		t.Fatalf("outputs diverged at %d", cmp.MismatchAt)
	}
	if cmp.MaxRelIPDDev > 0.02 {
		t.Fatalf("NFS replay IPD deviation %.4f above 2%%", cmp.MaxRelIPDDev)
	}
	if play.Instructions != replay.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", play.Instructions, replay.Instructions)
	}
}

func TestChecksumMatchesServer(t *testing.T) {
	w := ClientWorkload(1, netsim.DefaultThinkTime(), 44)
	inputs := w.ToServerInputs(netsim.PaperPath(9), 0)
	exec, _, err := core.Play(ServerProgram(), inputs, serverConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	_, sum, _, err := ParseResponse(exec.Outputs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	want := Checksum(FileStore()[FileName(0)])
	if sum != want {
		t.Fatalf("server checksum %#x, Go checksum %#x", sum, want)
	}
}

func TestParseResponseShortInput(t *testing.T) {
	if _, _, _, err := ParseResponse([]byte{1, 2, 3}); err == nil {
		t.Fatal("short response accepted")
	}
}

func TestClientWorkloadShape(t *testing.T) {
	w := ClientWorkload(65, netsim.DefaultThinkTime(), 45)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Requests) != 65 {
		t.Fatalf("requests = %d", len(w.Requests))
	}
	// Requests cycle through the files.
	if w.Requests[0][1] != 0 || w.Requests[31][1] != 1 {
		t.Fatalf("file cycling wrong: %v %v", w.Requests[0], w.Requests[31])
	}
}
