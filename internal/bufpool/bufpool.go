// Package bufpool provides size-classed pooled byte buffers for the
// decode hot paths (replaylog records, checkpoint state blobs, store
// exec payloads). The load stage used to allocate a fresh
// make([]byte, n) per record — ~35MB of churn per audited trace at
// bench scale — almost all of which dies as soon as the trace is
// audited. An Arena turns that churn into pool round-trips.
//
// Ownership contract (documented in README "Performance"): buffers
// handed out by an Arena belong to the Arena's owner until Release is
// called. Release returns every outstanding buffer to the shared
// pools at once, so the caller must not retain any slice obtained
// from the Arena (or any sub-slice of one) past Release. Types that
// embed an Arena (replaylog.Log, detect.Trace) re-export this as
// their own Release method; callers that never call Release just fall
// back to ordinary GC behavior — pooling is an optimization, never a
// correctness requirement.
package bufpool

import (
	"math/bits"
	"sync"
)

// Size classes are powers of two from minClass (4KB) to maxClass
// (4MB). Requests below minClass share the 4KB class (a replay log is
// decoded as thousands of small payloads; pooling them individually
// would cost more in pool traffic than it saves). Requests above
// maxClass are plainly allocated and never pooled — they are rare
// (giant checkpoint states) and would pin too much memory.
const (
	minClassBits = 12 // 4 KiB
	maxClassBits = 22 // 4 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

var classes [numClasses]sync.Pool

func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

func getClass(c int) []byte {
	if v := classes[c].Get(); v != nil {
		return v.([]byte)
	}
	return make([]byte, 1<<(minClassBits+c))
}

// An Arena hands out byte slices carved from pooled blocks and
// returns all of them to the shared pools in one Release call. The
// zero value is ready to use. An Arena is not safe for concurrent
// use; decode paths are single-goroutine.
type Arena struct {
	blocks []poolBlock // pooled blocks to return on Release
	cur    []byte      // remaining tail of the current block
	curCls int
}

type poolBlock struct {
	buf []byte
	cls int
}

// Alloc returns a zeroed-length-n slice owned by the arena. The
// contents are NOT zeroed beyond what the caller writes — callers
// fill the full slice (io.ReadFull et al) before reading it.
func (a *Arena) Alloc(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	if n == 0 {
		return []byte{}
	}
	if n <= len(a.cur) {
		s := a.cur[:n:n]
		a.cur = a.cur[n:]
		return s
	}
	c := classFor(n)
	if c < 0 {
		// Oversized: plain allocation, never pooled.
		return make([]byte, n)
	}
	// Start a new block. Carving from a fresh block wastes the old
	// tail, but blocks are already tracked for release so nothing
	// leaks — at most one partial tail per block is unused.
	buf := getClass(c)
	a.blocks = append(a.blocks, poolBlock{buf: buf, cls: c})
	s := buf[:n:n]
	a.cur = buf[n:]
	a.curCls = c
	return s
}

// Copy is Alloc followed by copy: a pooled duplicate of src.
func (a *Arena) Copy(src []byte) []byte {
	if len(src) == 0 {
		return []byte{}
	}
	dst := a.Alloc(len(src))
	copy(dst, src)
	return dst
}

// Release returns every block to the shared pools and resets the
// arena for reuse. All slices previously returned by Alloc/Copy are
// invalid after Release — the caller must not read or write them.
// Safe on a nil or zero arena.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i := range a.blocks {
		b := a.blocks[i]
		classes[b.cls].Put(b.buf[:cap(b.buf)])
		a.blocks[i] = poolBlock{}
	}
	a.blocks = a.blocks[:0]
	a.cur = nil
}

// Outstanding reports the number of pooled blocks currently held —
// test hook for leak accounting.
func (a *Arena) Outstanding() int {
	if a == nil {
		return 0
	}
	return len(a.blocks)
}

// Scratch is a single reusable buffer for transient fixed-role reads
// (one store frame, one snapshot chunk): Grow returns a slice of
// length n backed by a buffer that is reused — and may be
// overwritten — on the next Grow. Callers must fully consume or copy
// the contents before calling Grow again.
type Scratch struct {
	buf []byte
}

// Grow returns s's buffer resized to length n, reallocating (with
// headroom) only when the capacity is insufficient.
func (s *Scratch) Grow(n int) []byte {
	if cap(s.buf) < n {
		s.buf = make([]byte, n+n/4)
	}
	return s.buf[:n]
}
