package bufpool

import (
	"bytes"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {4096, 0}, {4097, 1}, {8192, 1}, {8193, 2},
		{1 << 22, numClasses - 1}, {1<<22 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestArenaAllocAndRelease(t *testing.T) {
	var a Arena
	bufs := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		b := a.Alloc(100 + i)
		if len(b) != 100+i {
			t.Fatalf("Alloc(%d) returned len %d", 100+i, len(b))
		}
		for j := range b {
			b[j] = byte(i)
		}
		bufs = append(bufs, b)
	}
	// All slices must remain distinct and intact until Release.
	for i, b := range bufs {
		for _, v := range b {
			if v != byte(i) {
				t.Fatalf("buffer %d corrupted: got %d", i, v)
			}
		}
	}
	if a.Outstanding() == 0 {
		t.Fatal("expected pooled blocks outstanding")
	}
	a.Release()
	if a.Outstanding() != 0 {
		t.Fatalf("Outstanding() = %d after Release", a.Outstanding())
	}
	// Arena is reusable after Release.
	b := a.Alloc(64)
	if len(b) != 64 {
		t.Fatalf("post-Release Alloc: len %d", len(b))
	}
	a.Release()
}

func TestArenaSliceCapsAreTight(t *testing.T) {
	// Appending to an arena slice must not scribble over a sibling.
	var a Arena
	defer a.Release()
	b1 := a.Alloc(16)
	b2 := a.Alloc(16)
	copy(b2, bytes.Repeat([]byte{7}, 16))
	_ = append(b1, 0xFF) // must reallocate, not touch b2
	for _, v := range b2 {
		if v != 7 {
			t.Fatal("append to sibling slice corrupted arena buffer")
		}
	}
}

func TestArenaOversized(t *testing.T) {
	var a Arena
	b := a.Alloc((1 << 22) + 1)
	if len(b) != (1<<22)+1 {
		t.Fatalf("oversized Alloc len = %d", len(b))
	}
	if a.Outstanding() != 0 {
		t.Fatal("oversized allocation must not be pooled")
	}
	a.Release()
}

func TestArenaCopy(t *testing.T) {
	var a Arena
	defer a.Release()
	src := []byte("hello, arena")
	dst := a.Copy(src)
	if !bytes.Equal(src, dst) {
		t.Fatalf("Copy = %q", dst)
	}
	src[0] = 'H'
	if dst[0] != 'h' {
		t.Fatal("Copy aliases source")
	}
	if got := a.Copy(nil); len(got) != 0 {
		t.Fatalf("Copy(nil) len = %d", len(got))
	}
}

func TestNilArena(t *testing.T) {
	var a *Arena
	b := a.Alloc(32)
	if len(b) != 32 {
		t.Fatalf("nil-arena Alloc len = %d", len(b))
	}
	a.Release() // must not panic
	if a.Outstanding() != 0 {
		t.Fatal("nil arena Outstanding != 0")
	}
}

func TestScratchGrow(t *testing.T) {
	var s Scratch
	b1 := s.Grow(100)
	if len(b1) != 100 {
		t.Fatalf("Grow(100) len = %d", len(b1))
	}
	b2 := s.Grow(50)
	if len(b2) != 50 {
		t.Fatalf("Grow(50) len = %d", len(b2))
	}
	if &b1[0] != &b2[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
	b3 := s.Grow(1000)
	if len(b3) != 1000 {
		t.Fatalf("Grow(1000) len = %d", len(b3))
	}
}

func BenchmarkArenaAlloc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var a Arena
		for j := 0; j < 64; j++ {
			_ = a.Alloc(512)
		}
		a.Release()
	}
}
