package replaylog_test

import (
	"bytes"
	"strings"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/replaylog"
)

// encodeLog renders a log to bytes, failing the test on error.
func encodeLog(t testing.TB, l *replaylog.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestEncodeDecodeRoundTrip is the seeded-corpus round-trip property:
// Decode(Encode(l)).Equal(l) for every log in the fuzz seed corpus,
// which exercises all three record kinds.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		l := fixtures.RoundTripLog(seed)
		got, err := replaylog.Decode(bytes.NewReader(encodeLog(t, l)))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !got.Equal(l) {
			t.Fatalf("seed %d: round trip lost records", seed)
		}
		if got.SizeBytes() != l.SizeBytes() {
			t.Fatalf("seed %d: size drifted: %d -> %d", seed, l.SizeBytes(), got.SizeBytes())
		}
	}
}

// TestEqual checks the comparison notices every kind of difference.
func TestEqual(t *testing.T) {
	base := func() *replaylog.Log { return fixtures.RoundTripLog(3) }
	if !base().Equal(base()) {
		t.Fatal("identical logs compare unequal")
	}
	mutations := map[string]func(l *replaylog.Log){
		"program":  func(l *replaylog.Log) { l.Program = "other" },
		"machine":  func(l *replaylog.Log) { l.Machine = "other" },
		"profile":  func(l *replaylog.Log) { l.Profile = "other" },
		"truncate": func(l *replaylog.Log) { l.Records = l.Records[:len(l.Records)-1] },
		"kind":     func(l *replaylog.Log) { l.Records[0].Kind = replaylog.KindRandom },
		"instr":    func(l *replaylog.Log) { l.Records[1].Instr++ },
		"value":    func(l *replaylog.Log) { l.Records[1].Value++ },
		"playps":   func(l *replaylog.Log) { l.Records[1].PlayPs++ },
		"payload":  func(l *replaylog.Log) { l.Records[0].Payload = append(l.Records[0].Payload, 1) },
	}
	for name, mutate := range mutations {
		l := base()
		mutate(l)
		if l.Equal(base()) {
			t.Errorf("%s mutation went unnoticed", name)
		}
	}
	var nilLog *replaylog.Log
	if nilLog.Equal(base()) || base().Equal(nilLog) {
		t.Fatal("nil log equals a real one")
	}
	if !nilLog.Equal(nil) {
		t.Fatal("nil != nil")
	}
}

// TestDecodeRejectsTrailingGarbage: bytes after the last record are
// corruption, not padding — Decode must not silently ignore them.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	valid := encodeLog(t, fixtures.RoundTripLog(5))
	for _, extra := range [][]byte{{0}, []byte("junk"), valid} {
		data := append(append([]byte(nil), valid...), extra...)
		if _, err := replaylog.Decode(bytes.NewReader(data)); err == nil {
			t.Fatalf("accepted %d trailing bytes", len(extra))
		}
	}
}

// TestDecodeRejectsCorruption feeds structured corruptions and
// demands errors, never panics.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := encodeLog(t, fixtures.RoundTripLog(7))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOTALOG\n")},
		{"truncated magic", valid[:4]},
		{"truncated header", valid[:10]},
		{"truncated mid-records", valid[:len(valid)-9]},
		{"unknown record kind", corrupt(valid, func(b []byte) { b[findRecordStart(valid)] = 'Z' })},
		{"huge string length", corrupt(valid, func(b []byte) {
			// First string length prefix sits right after the magic.
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := replaylog.Decode(bytes.NewReader(tc.data)); err == nil {
				t.Fatalf("corrupted input accepted")
			}
		})
	}
}

// TestDecodeHugeCountClaim checks the header's record count cannot
// force a giant allocation: a log claiming 2^29 records backed by no
// bytes must fail cheaply.
func TestDecodeHugeCountClaim(t *testing.T) {
	l := replaylog.New("p", "m", "prof")
	data := encodeLog(t, l)
	// The record count is the 8 bytes before the (empty) record area:
	// magic(8) + 3×(len prefix 4 + str) + count(8).
	countOff := 8 + 4 + 1 + 4 + 1 + 4 + 4
	data[countOff] = 0
	data[countOff+1] = 0
	data[countOff+2] = 0
	data[countOff+3] = 0x20 // 2^29 records
	if _, err := replaylog.Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("claimed 2^29 records with empty body, decode accepted")
	}
}

// findRecordStart returns the offset of the first record's kind byte.
func findRecordStart(valid []byte) int {
	// magic(8) + for each of 3 strings: 4-byte length + bytes, then
	// 8-byte count. RoundTripLog uses fixed identity strings.
	off := 8
	for i := 0; i < 3; i++ {
		n := int(uint32(valid[off]) | uint32(valid[off+1])<<8 | uint32(valid[off+2])<<16 | uint32(valid[off+3])<<24)
		off += 4 + n
	}
	return off + 8
}

func corrupt(valid []byte, f func([]byte)) []byte {
	b := append([]byte(nil), valid...)
	f(b)
	return b
}

// FuzzDecode is the round-trip fuzz target: any input that decodes
// must re-encode and re-decode to the identical log; any input that
// does not decode must fail with an error, not a panic or a runaway
// allocation.
func FuzzDecode(f *testing.F) {
	for seed := uint64(1); seed <= 3; seed++ {
		f.Add(encodeLog(f, fixtures.RoundTripLog(seed)))
		f.Add(encodeLog(f, fixtures.RoundTripLogCheckpointed(seed)))
	}
	valid := encodeLog(f, fixtures.RoundTripLog(9))
	f.Add(valid[:len(valid)/2])
	ckpt := encodeLog(f, fixtures.RoundTripLogCheckpointed(9))
	f.Add(ckpt[:len(ckpt)-7])
	f.Add([]byte("SANLOG1\n"))
	f.Add([]byte("SANLOG2\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := replaylog.Decode(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "replaylog:") && !isIOError(err) {
				t.Fatalf("unwrapped error: %v", err)
			}
			return
		}
		reencoded := encodeLog(t, l)
		l2, err := replaylog.Decode(bytes.NewReader(reencoded))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !l2.Equal(l) {
			t.Fatal("decode(encode(l)) != l")
		}
	})
}

// isIOError recognizes the raw io errors Decode lets through on
// truncated fixed-width fields.
func isIOError(err error) bool {
	s := err.Error()
	return strings.Contains(s, "EOF")
}
