package replaylog_test

import (
	"bytes"
	"strings"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/replaylog"
)

// encodeLog renders a log to bytes, failing the test on error.
func encodeLog(t testing.TB, l *replaylog.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// logsEqual compares two logs record by record, treating nil and
// empty payloads as equal (Decode materializes empty payloads,
// AppendPacket may keep them nil).
func logsEqual(a, b *replaylog.Log) bool {
	if a.Program != b.Program || a.Machine != b.Machine || a.Profile != b.Profile {
		return false
	}
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Kind != rb.Kind || ra.Instr != rb.Instr || ra.PlayPs != rb.PlayPs || ra.Value != rb.Value {
			return false
		}
		if !bytes.Equal(ra.Payload, rb.Payload) {
			return false
		}
	}
	return true
}

// TestEncodeDecodeRoundTrip is the seeded-corpus round-trip check:
// decode-of-encode reproduces every record of a log that exercises
// all three record kinds.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		l := fixtures.RoundTripLog(seed)
		got, err := replaylog.Decode(bytes.NewReader(encodeLog(t, l)))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !logsEqual(l, got) {
			t.Fatalf("seed %d: round trip lost records", seed)
		}
		if got.SizeBytes() != l.SizeBytes() {
			t.Fatalf("seed %d: size drifted: %d -> %d", seed, l.SizeBytes(), got.SizeBytes())
		}
	}
}

// TestDecodeRejectsCorruption feeds structured corruptions and
// demands errors, never panics.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := encodeLog(t, fixtures.RoundTripLog(7))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOTALOG\n")},
		{"truncated magic", valid[:4]},
		{"truncated header", valid[:10]},
		{"truncated mid-records", valid[:len(valid)-9]},
		{"unknown record kind", corrupt(valid, func(b []byte) { b[findRecordStart(valid)] = 'Z' })},
		{"huge string length", corrupt(valid, func(b []byte) {
			// First string length prefix sits right after the magic.
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := replaylog.Decode(bytes.NewReader(tc.data)); err == nil {
				t.Fatalf("corrupted input accepted")
			}
		})
	}
}

// TestDecodeHugeCountClaim checks the header's record count cannot
// force a giant allocation: a log claiming 2^29 records backed by no
// bytes must fail cheaply.
func TestDecodeHugeCountClaim(t *testing.T) {
	l := replaylog.New("p", "m", "prof")
	data := encodeLog(t, l)
	// The record count is the 8 bytes before the (empty) record area:
	// magic(8) + 3×(len prefix 4 + str) + count(8).
	countOff := 8 + 4 + 1 + 4 + 1 + 4 + 4
	data[countOff] = 0
	data[countOff+1] = 0
	data[countOff+2] = 0
	data[countOff+3] = 0x20 // 2^29 records
	if _, err := replaylog.Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("claimed 2^29 records with empty body, decode accepted")
	}
}

// findRecordStart returns the offset of the first record's kind byte.
func findRecordStart(valid []byte) int {
	// magic(8) + for each of 3 strings: 4-byte length + bytes, then
	// 8-byte count. RoundTripLog uses fixed identity strings.
	off := 8
	for i := 0; i < 3; i++ {
		n := int(uint32(valid[off]) | uint32(valid[off+1])<<8 | uint32(valid[off+2])<<16 | uint32(valid[off+3])<<24)
		off += 4 + n
	}
	return off + 8
}

func corrupt(valid []byte, f func([]byte)) []byte {
	b := append([]byte(nil), valid...)
	f(b)
	return b
}

// FuzzDecode is the round-trip fuzz target: any input that decodes
// must re-encode and re-decode to the identical log; any input that
// does not decode must fail with an error, not a panic or a runaway
// allocation.
func FuzzDecode(f *testing.F) {
	for seed := uint64(1); seed <= 3; seed++ {
		f.Add(encodeLog(f, fixtures.RoundTripLog(seed)))
	}
	valid := encodeLog(f, fixtures.RoundTripLog(9))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SANLOG1\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := replaylog.Decode(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "replaylog:") && !isIOError(err) {
				t.Fatalf("unwrapped error: %v", err)
			}
			return
		}
		reencoded := encodeLog(t, l)
		l2, err := replaylog.Decode(bytes.NewReader(reencoded))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !logsEqual(l, l2) {
			t.Fatal("decode(encode(l)) != l")
		}
	})
}

// isIOError recognizes the raw io errors Decode lets through on
// truncated fixed-width fields.
func isIOError(err error) bool {
	s := err.Error()
	return strings.Contains(s, "EOF")
}
