package replaylog

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() *Log {
	l := New("echo", "optiplex9020", "sanity")
	l.AppendPacket(100, 5000, []byte("first packet"))
	l.AppendValue(KindTimeRead, 150, 6000, 123456789)
	l.AppendPacket(300, 9000, []byte{0, 1, 2, 3, 255})
	l.AppendValue(KindRandom, 400, 9500, -42)
	return l
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != l.Program || got.Machine != l.Machine || got.Profile != l.Profile {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Records) != len(l.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(l.Records))
	}
	for i := range l.Records {
		a, b := l.Records[i], got.Records[i]
		if a.Kind != b.Kind || a.Instr != b.Instr || a.Value != b.Value || a.PlayPs != b.PlayPs {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("record %d payload differs", i)
		}
	}
}

func TestEncodedSizeMatchesSizeBytes(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != l.SizeBytes() {
		t.Fatalf("encoded %d bytes, SizeBytes says %d", buf.Len(), l.SizeBytes())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a log at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, len(magic) + 2} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestStatsComposition(t *testing.T) {
	l := sample()
	s := l.Stats()
	if s.Packets != 2 || s.ValueRecords != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.PacketBytes <= int64(len("first packet")) {
		t.Fatal("packet bytes should include framing")
	}
	if s.TotalBytes != l.SizeBytes() {
		t.Fatal("total bytes inconsistent")
	}
}

func TestPacketHeavyLogComposition(t *testing.T) {
	// Packets dominate the log for packet-heavy workloads (84% in the
	// paper's NFS trace, §6.5).
	l := New("nfs", "m", "sanity")
	for i := int64(0); i < 100; i++ {
		l.AppendPacket(i*1000, i*5000, bytes.Repeat([]byte{byte(i)}, 120))
		if i%10 == 0 {
			l.AppendValue(KindTimeRead, i*1000+5, i*5000+9, i)
		}
	}
	s := l.Stats()
	frac := float64(s.PacketBytes) / float64(s.TotalBytes)
	if frac < 0.8 {
		t.Fatalf("packet fraction %.2f, want >= 0.8", frac)
	}
}

func TestPacketsAndValuesSplit(t *testing.T) {
	l := sample()
	if got := len(l.Packets()); got != 2 {
		t.Fatalf("Packets() = %d", got)
	}
	if got := len(l.Values()); got != 2 {
		t.Fatalf("Values() = %d", got)
	}
	if l.Packets()[0].Instr != 100 || l.Values()[1].Value != -42 {
		t.Fatal("wrong records in split")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(instrs []int64, payload []byte, value int64) bool {
		l := New("p", "m", "prof")
		for _, i := range instrs {
			l.AppendPacket(i, i*2, payload)
			l.AppendValue(KindTimeRead, i, i*2, value)
		}
		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(l.Records) {
			return false
		}
		for i := range l.Records {
			if got.Records[i].Instr != l.Records[i].Instr {
				return false
			}
			if !bytes.Equal(got.Records[i].Payload, l.Records[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendPacketCopiesPayload(t *testing.T) {
	l := New("p", "m", "prof")
	buf := []byte{1, 2, 3}
	l.AppendPacket(1, 1, buf)
	buf[0] = 99
	if l.Records[0].Payload[0] != 1 {
		t.Fatal("log aliases caller's buffer")
	}
}
