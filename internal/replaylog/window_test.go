package replaylog_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"sanity/internal/fixtures"
	"sanity/internal/replaylog"
)

// TestCheckpointRoundTrip: the v2 format (records + checkpoint
// section) survives encode/decode bit-exactly, and a checkpoint-free
// log still encodes as v1 so old corpora stay byte-stable.
func TestCheckpointRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		l := fixtures.RoundTripLogCheckpointed(seed)
		data := encodeLog(t, l)
		if !bytes.HasPrefix(data, []byte("SANLOG2\n")) {
			t.Fatalf("seed %d: checkpointed log did not encode as v2", seed)
		}
		got, err := replaylog.Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !got.Equal(l) {
			t.Fatalf("seed %d: round trip lost checkpoints", seed)
		}
		if got.SizeBytes() != l.SizeBytes() {
			t.Fatalf("seed %d: size drifted: %d -> %d", seed, l.SizeBytes(), got.SizeBytes())
		}
	}
	plain := encodeLog(t, fixtures.RoundTripLog(1))
	if !bytes.HasPrefix(plain, []byte("SANLOG1\n")) {
		t.Fatal("checkpoint-free log stopped encoding as v1")
	}
}

// TestEqualNoticesCheckpointMutations extends the Equal matrix to the
// checkpoint index.
func TestEqualNoticesCheckpointMutations(t *testing.T) {
	base := func() *replaylog.Log { return fixtures.RoundTripLogCheckpointed(3) }
	mutations := map[string]func(l *replaylog.Log){
		"drop":    func(l *replaylog.Log) { l.Checkpoints = l.Checkpoints[:len(l.Checkpoints)-1] },
		"instr":   func(l *replaylog.Log) { l.Checkpoints[0].Instr++ },
		"outputs": func(l *replaylog.Log) { l.Checkpoints[1].Outputs++ },
		"records": func(l *replaylog.Log) { l.Checkpoints[1].Records-- },
		"cycles":  func(l *replaylog.Log) { l.Checkpoints[2].PlayCycles++ },
		"state":   func(l *replaylog.Log) { l.Checkpoints[0].State[0] ^= 0xFF },
	}
	for name, mutate := range mutations {
		l := base()
		mutate(l)
		if l.Equal(base()) {
			t.Errorf("checkpoint %s mutation went unnoticed", name)
		}
	}
}

// TestWindowSelection pins the segment-index query: which checkpoint
// a window resumes from, how the record stream is sliced, and the
// skipped-randoms count the engine fast-forwards with.
func TestWindowSelection(t *testing.T) {
	l := fixtures.RoundTripLogCheckpointed(5) // checkpoints at outputs 8, 16, 24
	countKind := func(recs []replaylog.Record, k replaylog.Kind) int64 {
		var n int64
		for _, r := range recs {
			if r.Kind == k {
				n++
			}
		}
		return n
	}
	cases := []struct {
		name       string
		from, to   int
		wantCkpt   int // index into l.Checkpoints, -1 = none
	}{
		{"before first checkpoint", 0, 5, -1},
		{"just short of first", 7, 9, -1},
		{"exactly on a boundary", 8, 12, 0},
		{"between boundaries", 17, 20, 1},
		{"far past the last", 500, 600, 2},
		{"empty window", 16, 16, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := l.Window(tc.from, tc.to)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantCkpt < 0 {
				if w.Start != nil {
					t.Fatalf("expected full-replay fallback, got checkpoint at outputs %d", w.Start.Outputs)
				}
				if len(w.Suffix.Records) != len(l.Records) {
					t.Fatalf("fallback window sliced the record stream")
				}
				return
			}
			want := &l.Checkpoints[tc.wantCkpt]
			if w.Start != want {
				t.Fatalf("resumed from the wrong checkpoint: got %+v want outputs=%d", w.Start, want.Outputs)
			}
			if got, want := int64(len(w.Suffix.Records)), int64(len(l.Records))-want.Records; got != want {
				t.Fatalf("suffix holds %d records, want %d", got, want)
			}
			if w.Suffix.Program != l.Program || w.Suffix.Machine != l.Machine || w.Suffix.Profile != l.Profile {
				t.Fatal("suffix lost the log identity")
			}
			if got, want := w.SkippedRandoms, countKind(l.Records[:want.Records], replaylog.KindRandom); got != want {
				t.Fatalf("SkippedRandoms = %d, want %d", got, want)
			}
			if got, want := w.SkippedPackets, countKind(l.Records[:want.Records], replaylog.KindPacket); got != want {
				t.Fatalf("SkippedPackets = %d, want %d", got, want)
			}
		})
	}
	if _, err := l.Window(-1, 4); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := l.Window(9, 3); err == nil {
		t.Fatal("inverted window accepted")
	}
}

// TestDecodeRejectsMalformedCheckpoints: overlapping boundaries,
// out-of-range record cursors, oversized state claims, and trailing
// garbage after the checkpoint section must all fail with errors.
func TestDecodeRejectsMalformedCheckpoints(t *testing.T) {
	mutate := func(f func(l *replaylog.Log)) []byte {
		l := fixtures.RoundTripLogCheckpointed(7)
		f(l)
		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"overlapping outputs": mutate(func(l *replaylog.Log) {
			l.Checkpoints[1].Outputs = l.Checkpoints[0].Outputs
		}),
		"non-monotone instr": mutate(func(l *replaylog.Log) {
			l.Checkpoints[2].Instr = l.Checkpoints[0].Instr
		}),
		"record cursor past stream": mutate(func(l *replaylog.Log) {
			l.Checkpoints[2].Records = int64(len(l.Records)) + 9
		}),
		"negative outputs": mutate(func(l *replaylog.Log) {
			l.Checkpoints[0].Outputs = -3
		}),
		"trailing garbage": append(mutate(func(*replaylog.Log) {}), 0xAB),
	}
	// A state-length claim far past the actual bytes.
	huge := mutate(func(*replaylog.Log) {})
	lenOff := bytes.LastIndex(huge, fixtures.RoundTripLogCheckpointed(7).Checkpoints[2].State)
	if lenOff > 8 {
		binary.LittleEndian.PutUint64(huge[lenOff-8:], 1<<40)
		cases["huge state length"] = huge
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := replaylog.Decode(bytes.NewReader(data)); err == nil {
				t.Fatal("malformed checkpoint section accepted")
			}
		})
	}
}

// FuzzWindow fuzzes the segment-index path end to end: any input
// that decodes must answer arbitrary Window queries without panics,
// and every answer must satisfy the plan's invariants (suffix is a
// tail of the records, the checkpoint really is at-or-before the
// window, skipped randoms within range).
func FuzzWindow(f *testing.F) {
	for seed := uint64(1); seed <= 3; seed++ {
		var buf bytes.Buffer
		if err := fixtures.RoundTripLogCheckpointed(seed).Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), 4, 20)
	}
	var plain bytes.Buffer
	if err := fixtures.RoundTripLog(4).Encode(&plain); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes(), 0, 1)
	f.Add([]byte("SANLOG2\n"), 0, 100)
	f.Fuzz(func(t *testing.T, data []byte, from, to int) {
		l, err := replaylog.Decode(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "replaylog:") && !isIOError(err) {
				t.Fatalf("unwrapped error: %v", err)
			}
			return
		}
		w, err := l.Window(from, to)
		if err != nil {
			if from >= 0 && to >= from {
				t.Fatalf("valid window [%d,%d) rejected: %v", from, to, err)
			}
			return
		}
		if w.Start == nil {
			if len(w.Suffix.Records) != len(l.Records) {
				t.Fatal("fallback plan sliced the records")
			}
			if w.SkippedRandoms != 0 {
				t.Fatal("fallback plan skipped randoms")
			}
			return
		}
		if w.Start.Outputs > int64(from) {
			t.Fatalf("checkpoint at outputs %d is past the window start %d", w.Start.Outputs, from)
		}
		if got, want := int64(len(w.Suffix.Records)), int64(len(l.Records))-w.Start.Records; got != want {
			t.Fatalf("suffix length %d, want %d", got, want)
		}
		if w.SkippedRandoms < 0 || w.SkippedPackets < 0 ||
			w.SkippedRandoms+w.SkippedPackets > w.Start.Records {
			t.Fatalf("skipped counts %d+%d outside [0,%d]", w.SkippedRandoms, w.SkippedPackets, w.Start.Records)
		}
	})
}
