// Package replaylog implements the log of nondeterministic events
// that the supporting core writes to stable storage during play and
// injects during replay (paper §3.2, §6.5). Incoming network packets
// are recorded in their entirety (they must be re-injected), while
// outputs are not recorded at all — the replayed execution produces
// an exact copy. Small records capture other nondeterministic values,
// such as the wall-clock readings returned by System.nanoTime.
package replaylog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"sanity/internal/bufpool"
)

// Kind tags one log record.
type Kind byte

// Record kinds.
const (
	// KindPacket is an incoming network packet: the full payload plus
	// the instruction count at which the TC consumed it.
	KindPacket Kind = 'P'
	// KindTimeRead is a logged nanoTime result.
	KindTimeRead Kind = 'T'
	// KindRandom is a logged random value (§3.2: "avoid or log random
	// decisions").
	KindRandom Kind = 'R'
)

// Record is one nondeterministic event.
type Record struct {
	Kind    Kind
	Instr   int64  // global instruction count at the event
	Value   int64  // for KindTimeRead / KindRandom
	PlayPs  int64  // virtual time during play (instrumentation, not replayed)
	Payload []byte // for KindPacket
}

// Checkpoint is one quiescence-boundary snapshot emitted during play
// (core.Play with checkpointing enabled): the machine's functional
// state at the moment the boundary was crossed, plus the indexing an
// auditor needs to resume a replay there. Boundaries double as
// segment markers — Records is the cursor into the record stream, so
// a windowed replay decodes and injects only the suffix.
//
// The State blob is opaque at this layer (the engine owns its
// format). It is produced by the recorded machine, so an auditor
// treats it exactly like the rest of the log: functional state to be
// validated by replaying forward and comparing outputs — never a
// source of timing, which is re-derived from the auditor's own
// configuration at each boundary.
type Checkpoint struct {
	// Instr is the global instruction count at the boundary.
	Instr int64
	// Outputs is the number of packets the TC had sent when the
	// boundary was crossed; a replay resumed here reproduces output
	// timings from index Outputs on, hence IPDs from index Outputs on.
	Outputs int64
	// Records is the number of log records already consumed or
	// written at the boundary — the segment cursor.
	Records int64
	// PlayCycles is the recorded machine's clock at the boundary, so
	// resumed replays report absolute timestamps on the recorded
	// timebase. It never feeds into post-boundary costs.
	PlayCycles int64
	// State is the serialized functional machine state.
	State []byte
}

// Log is an append-only sequence of records plus identifying
// metadata. The metadata binds a log to the software and machine type
// it was recorded on, which the auditor must match during replay.
type Log struct {
	Program string
	Machine string
	Profile string
	Records []Record
	// Checkpoints holds the quiescence-boundary snapshots in boundary
	// order (monotone Instr/Outputs/Records). Empty for logs recorded
	// without checkpointing — the decoder's fallback for old corpora —
	// in which case only full replay is possible.
	Checkpoints []Checkpoint

	// arena backs Payload/State slices of a Decode-produced log;
	// Release returns them to the shared pools. Nil for logs built by
	// AppendPacket/AppendValue, whose Release is a no-op.
	arena *bufpool.Arena
}

// New creates an empty log with the given identity.
func New(program, machine, profile string) *Log {
	return &Log{Program: program, Machine: machine, Profile: profile}
}

// Release returns the pooled buffers backing a Decode-produced log's
// packet payloads and checkpoint states to the shared pools. After
// Release the log's Payload/State slices — and any LogWindow.Suffix
// derived from it, which aliases the same records — are invalid. The
// owner who obtained the log from Decode (directly or via
// store.LoadTrace) calls Release exactly once, after the last read;
// everyone else must treat the log as borrowed. Safe on a nil log or
// a log that was never pooled.
func (l *Log) Release() {
	if l == nil || l.arena == nil {
		return
	}
	for i := range l.Records {
		l.Records[i].Payload = nil
	}
	for i := range l.Checkpoints {
		l.Checkpoints[i].State = nil
	}
	a := l.arena
	l.arena = nil
	a.Release()
}

// Equal reports whether two logs carry the same identity and the same
// record sequence. Nil and empty packet payloads compare equal, since
// Decode materializes empty payloads that AppendPacket may keep nil.
func (l *Log) Equal(other *Log) bool {
	if l == nil || other == nil {
		return l == other
	}
	if l.Program != other.Program || l.Machine != other.Machine || l.Profile != other.Profile {
		return false
	}
	if len(l.Records) != len(other.Records) {
		return false
	}
	for i := range l.Records {
		a, b := l.Records[i], other.Records[i]
		if a.Kind != b.Kind || a.Instr != b.Instr || a.PlayPs != b.PlayPs || a.Value != b.Value {
			return false
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			return false
		}
	}
	if len(l.Checkpoints) != len(other.Checkpoints) {
		return false
	}
	for i := range l.Checkpoints {
		a, b := l.Checkpoints[i], other.Checkpoints[i]
		if a.Instr != b.Instr || a.Outputs != b.Outputs || a.Records != b.Records || a.PlayCycles != b.PlayCycles {
			return false
		}
		if !bytes.Equal(a.State, b.State) {
			return false
		}
	}
	return true
}

// AppendPacket records an incoming packet delivered at instr.
func (l *Log) AppendPacket(instr, playPs int64, payload []byte) {
	l.Records = append(l.Records, Record{
		Kind: KindPacket, Instr: instr, PlayPs: playPs,
		Payload: append([]byte(nil), payload...),
	})
}

// AppendValue records a small nondeterministic value (time or random).
func (l *Log) AppendValue(kind Kind, instr, playPs, value int64) {
	l.Records = append(l.Records, Record{Kind: kind, Instr: instr, PlayPs: playPs, Value: value})
}

// recordOverhead is the on-disk framing cost per record: kind (1) +
// instr (8) + playPs (8) + value-or-length (8).
const recordOverhead = 25

// SizeBytes returns the encoded size of the log, the quantity §6.5
// reports as the log growth rate.
func (l *Log) SizeBytes() int64 {
	// magic + three 4-byte string length prefixes + 8-byte record count.
	n := int64(len(magic)) + 12 + 8 + int64(len(l.Program)+len(l.Machine)+len(l.Profile))
	for _, r := range l.Records {
		n += recordOverhead
		if r.Kind == KindPacket {
			n += int64(len(r.Payload))
		}
	}
	if len(l.Checkpoints) > 0 {
		// v2 checkpoint section: count + per-checkpoint indexing and
		// state-length prefix.
		n += 8
		for _, c := range l.Checkpoints {
			n += 4*8 + 8 + int64(len(c.State))
		}
	}
	return n
}

// Stats summarizes the log composition for the §6.5 experiment.
type Stats struct {
	Packets      int
	PacketBytes  int64 // payload plus framing for packet records
	ValueRecords int
	TotalBytes   int64
}

// Stats returns the log's composition.
func (l *Log) Stats() Stats {
	var s Stats
	for _, r := range l.Records {
		if r.Kind == KindPacket {
			s.Packets++
			s.PacketBytes += int64(len(r.Payload)) + recordOverhead
		} else {
			s.ValueRecords++
		}
	}
	s.TotalBytes = l.SizeBytes()
	return s
}

// Format magics. Version 1 is the checkpoint-free format; version 2
// appends a checkpoint section after the records. Encode emits v1
// whenever the log carries no checkpoints, so corpora recorded
// without checkpointing stay byte-identical to what older writers
// produced, and Decode accepts both.
var (
	magic   = []byte("SANLOG1\n")
	magicV2 = []byte("SANLOG2\n")
)

// maxCheckpoints and maxCheckpointState bound what a decoder will
// accept, mirroring the record-count and payload guards: a hostile
// checkpoint section cannot demand unbounded allocations.
const (
	maxCheckpoints     = 1 << 20
	maxCheckpointState = 1 << 26
)

// Encode writes the log in its binary on-disk format.
func (l *Log) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	m := magic
	if len(l.Checkpoints) > 0 {
		m = magicV2
	}
	if _, err := bw.Write(m); err != nil {
		return err
	}
	writeStr := func(s string) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	for _, s := range []string{l.Program, l.Machine, l.Profile} {
		if err := writeStr(s); err != nil {
			return err
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(l.Records)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, r := range l.Records {
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		for _, v := range []int64{r.Instr, r.PlayPs} {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		if r.Kind == KindPacket {
			binary.LittleEndian.PutUint64(buf[:], uint64(len(r.Payload)))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
			if _, err := bw.Write(r.Payload); err != nil {
				return err
			}
		} else {
			binary.LittleEndian.PutUint64(buf[:], uint64(r.Value))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	if len(l.Checkpoints) > 0 {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(l.Checkpoints)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, c := range l.Checkpoints {
			for _, v := range []int64{c.Instr, c.Outputs, c.Records, c.PlayCycles, int64(len(c.State))} {
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
			if _, err := bw.Write(c.State); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// brPool recycles the decoder's bufio.Reader: Decode runs once per
// audited trace (and once more per LoadIPDs fallback), and the 4KB
// reader buffer is pure churn otherwise.
var brPool = sync.Pool{New: func() any { return bufio.NewReader(nil) }}

// Decode reads a log in the binary format produced by Encode. Packet
// payloads and checkpoint states in the returned log are backed by
// pooled buffers; the caller that owns the log should call Release
// when finished with it (see Log.Release for the aliasing rules).
func Decode(r io.Reader) (*Log, error) {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(r)
	defer func() {
		br.Reset(nil)
		brPool.Put(br)
	}()
	var magicBuf [8]byte // len(magic) == len(magicV2) == 8
	got := magicBuf[:]
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("replaylog: reading magic: %w", err)
	}
	var version int
	switch string(got) {
	case string(magic):
		version = 1
	case string(magicV2):
		version = 2
	default:
		return nil, fmt.Errorf("replaylog: bad magic %q", got)
	}
	readStr := func() (string, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<20 {
			return "", fmt.Errorf("replaylog: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	l := &Log{arena: &bufpool.Arena{}}
	decoded := false
	defer func() {
		// Any error path returns the partially-filled pooled buffers
		// immediately instead of waiting for GC.
		if !decoded {
			l.Release()
		}
	}()
	var err error
	if l.Program, err = readStr(); err != nil {
		return nil, fmt.Errorf("replaylog: program name: %w", err)
	}
	if l.Machine, err = readStr(); err != nil {
		return nil, fmt.Errorf("replaylog: machine name: %w", err)
	}
	if l.Profile, err = readStr(); err != nil {
		return nil, fmt.Errorf("replaylog: profile name: %w", err)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(buf[:])
	if count > 1<<30 {
		return nil, fmt.Errorf("replaylog: implausible record count %d", count)
	}
	// Cap the preallocation independently of the declared count: a
	// corrupted or hostile header must not be able to demand gigabytes
	// before a single record has parsed. The slice still grows to the
	// real count via append.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	l.Records = make([]Record, 0, capHint)
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("replaylog: record %d: %w", i, err)
		}
		var rec Record
		rec.Kind = Kind(kind)
		switch rec.Kind {
		case KindPacket, KindTimeRead, KindRandom:
		default:
			return nil, fmt.Errorf("replaylog: record %d has unknown kind %q", i, kind)
		}
		for _, dst := range []*int64{&rec.Instr, &rec.PlayPs} {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			*dst = int64(binary.LittleEndian.Uint64(buf[:]))
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		if rec.Kind == KindPacket {
			n := binary.LittleEndian.Uint64(buf[:])
			if n > 1<<24 {
				return nil, fmt.Errorf("replaylog: record %d payload too large (%d)", i, n)
			}
			rec.Payload = l.arena.Alloc(int(n))
			if _, err := io.ReadFull(br, rec.Payload); err != nil {
				return nil, err
			}
		} else {
			rec.Value = int64(binary.LittleEndian.Uint64(buf[:]))
		}
		l.Records = append(l.Records, rec)
	}
	if version >= 2 {
		if err := decodeCheckpoints(br, l); err != nil {
			return nil, err
		}
	}
	// The counts are authoritative: anything after the last record (or
	// checkpoint) is corruption (or a concatenated second log), not
	// padding.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("replaylog: after last record: %w", err)
		}
		return nil, fmt.Errorf("replaylog: trailing garbage after record %d", count)
	}
	decoded = true
	return l, nil
}

// decodeCheckpoints reads and validates the v2 checkpoint section.
// The indexing invariants are enforced here — strictly increasing
// boundaries with record cursors inside the record stream — so
// everything downstream (Window, the replay engine) can trust a
// decoded log's segment index structurally.
func decodeCheckpoints(br *bufio.Reader, l *Log) error {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return fmt.Errorf("replaylog: checkpoint count: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf[:])
	if count > maxCheckpoints {
		return fmt.Errorf("replaylog: implausible checkpoint count %d", count)
	}
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	l.Checkpoints = make([]Checkpoint, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var c Checkpoint
		var stateLen int64
		for _, dst := range []*int64{&c.Instr, &c.Outputs, &c.Records, &c.PlayCycles, &stateLen} {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return fmt.Errorf("replaylog: checkpoint %d: %w", i, err)
			}
			*dst = int64(binary.LittleEndian.Uint64(buf[:]))
		}
		if c.Instr < 0 || c.Outputs < 0 || c.PlayCycles < 0 {
			return fmt.Errorf("replaylog: checkpoint %d has negative index", i)
		}
		if c.Records < 0 || c.Records > int64(len(l.Records)) {
			return fmt.Errorf("replaylog: checkpoint %d record cursor %d outside the %d-record stream", i, c.Records, len(l.Records))
		}
		if i > 0 {
			prev := l.Checkpoints[i-1]
			if c.Instr <= prev.Instr || c.Outputs <= prev.Outputs || c.Records < prev.Records {
				return fmt.Errorf("replaylog: checkpoint %d is not past checkpoint %d (overlapping windows)", i, i-1)
			}
		}
		if stateLen < 0 || stateLen > maxCheckpointState {
			return fmt.Errorf("replaylog: checkpoint %d state of %d bytes", i, stateLen)
		}
		c.State = l.arena.Alloc(int(stateLen))
		if _, err := io.ReadFull(br, c.State); err != nil {
			return fmt.Errorf("replaylog: checkpoint %d state: %w", i, err)
		}
		l.Checkpoints = append(l.Checkpoints, c)
	}
	return nil
}

// LogWindow is the replay plan for an audited IPD range: where to
// resume and what remains to inject.
type LogWindow struct {
	// Start is the checkpoint to restore, or nil when the window can
	// only be reached by a full replay from virtual time zero (no
	// checkpoint at or before it — including every log recorded
	// before checkpointing existed).
	Start *Checkpoint
	// Suffix is a view of the log holding only the records after
	// Start (the whole record stream when Start is nil). The record
	// slice aliases the parent log; treat it as read-only.
	Suffix *Log
	// SkippedRandoms counts the KindRandom records before the resume
	// point; the engine uses it to fast-forward its random source to
	// the state a full replay would have at the boundary.
	SkippedRandoms int64
	// SkippedPackets counts the packet records before the resume
	// point; the engine re-derives the input ring's cursor position
	// from it. Both counts come from the same single prefix scan.
	SkippedPackets int64
}

// Window plans a replay of the IPD range [fromIPD, toIPD): it selects
// the last checkpoint at or before the output that opens the window
// (IPD i spans outputs i and i+1, so a checkpoint is usable when its
// Outputs count is <= fromIPD) and slices the record stream there.
// Decode has already validated the checkpoint index, so Window only
// rejects nonsensical ranges.
func (l *Log) Window(fromIPD, toIPD int) (*LogWindow, error) {
	if fromIPD < 0 || toIPD < fromIPD {
		return nil, fmt.Errorf("replaylog: invalid IPD window [%d, %d)", fromIPD, toIPD)
	}
	w := &LogWindow{Suffix: l}
	best := -1
	for i := range l.Checkpoints {
		if l.Checkpoints[i].Outputs <= int64(fromIPD) {
			best = i
		} else {
			break
		}
	}
	if best < 0 {
		return w, nil
	}
	c := &l.Checkpoints[best]
	w.Start = c
	w.Suffix = &Log{
		Program: l.Program,
		Machine: l.Machine,
		Profile: l.Profile,
		Records: l.Records[c.Records:],
	}
	for _, r := range l.Records[:c.Records] {
		switch r.Kind {
		case KindRandom:
			w.SkippedRandoms++
		case KindPacket:
			w.SkippedPackets++
		}
	}
	return w, nil
}

// Packets returns only the packet records, in order.
func (l *Log) Packets() []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Kind == KindPacket {
			out = append(out, r)
		}
	}
	return out
}

// Values returns only the value records (time reads and randoms).
func (l *Log) Values() []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Kind != KindPacket {
			out = append(out, r)
		}
	}
	return out
}
