// Package replaylog implements the log of nondeterministic events
// that the supporting core writes to stable storage during play and
// injects during replay (paper §3.2, §6.5). Incoming network packets
// are recorded in their entirety (they must be re-injected), while
// outputs are not recorded at all — the replayed execution produces
// an exact copy. Small records capture other nondeterministic values,
// such as the wall-clock readings returned by System.nanoTime.
package replaylog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Kind tags one log record.
type Kind byte

// Record kinds.
const (
	// KindPacket is an incoming network packet: the full payload plus
	// the instruction count at which the TC consumed it.
	KindPacket Kind = 'P'
	// KindTimeRead is a logged nanoTime result.
	KindTimeRead Kind = 'T'
	// KindRandom is a logged random value (§3.2: "avoid or log random
	// decisions").
	KindRandom Kind = 'R'
)

// Record is one nondeterministic event.
type Record struct {
	Kind    Kind
	Instr   int64  // global instruction count at the event
	Value   int64  // for KindTimeRead / KindRandom
	PlayPs  int64  // virtual time during play (instrumentation, not replayed)
	Payload []byte // for KindPacket
}

// Log is an append-only sequence of records plus identifying
// metadata. The metadata binds a log to the software and machine type
// it was recorded on, which the auditor must match during replay.
type Log struct {
	Program string
	Machine string
	Profile string
	Records []Record
}

// New creates an empty log with the given identity.
func New(program, machine, profile string) *Log {
	return &Log{Program: program, Machine: machine, Profile: profile}
}

// Equal reports whether two logs carry the same identity and the same
// record sequence. Nil and empty packet payloads compare equal, since
// Decode materializes empty payloads that AppendPacket may keep nil.
func (l *Log) Equal(other *Log) bool {
	if l == nil || other == nil {
		return l == other
	}
	if l.Program != other.Program || l.Machine != other.Machine || l.Profile != other.Profile {
		return false
	}
	if len(l.Records) != len(other.Records) {
		return false
	}
	for i := range l.Records {
		a, b := l.Records[i], other.Records[i]
		if a.Kind != b.Kind || a.Instr != b.Instr || a.PlayPs != b.PlayPs || a.Value != b.Value {
			return false
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			return false
		}
	}
	return true
}

// AppendPacket records an incoming packet delivered at instr.
func (l *Log) AppendPacket(instr, playPs int64, payload []byte) {
	l.Records = append(l.Records, Record{
		Kind: KindPacket, Instr: instr, PlayPs: playPs,
		Payload: append([]byte(nil), payload...),
	})
}

// AppendValue records a small nondeterministic value (time or random).
func (l *Log) AppendValue(kind Kind, instr, playPs, value int64) {
	l.Records = append(l.Records, Record{Kind: kind, Instr: instr, PlayPs: playPs, Value: value})
}

// recordOverhead is the on-disk framing cost per record: kind (1) +
// instr (8) + playPs (8) + value-or-length (8).
const recordOverhead = 25

// SizeBytes returns the encoded size of the log, the quantity §6.5
// reports as the log growth rate.
func (l *Log) SizeBytes() int64 {
	// magic + three 4-byte string length prefixes + 8-byte record count.
	n := int64(len(magic)) + 12 + 8 + int64(len(l.Program)+len(l.Machine)+len(l.Profile))
	for _, r := range l.Records {
		n += recordOverhead
		if r.Kind == KindPacket {
			n += int64(len(r.Payload))
		}
	}
	return n
}

// Stats summarizes the log composition for the §6.5 experiment.
type Stats struct {
	Packets      int
	PacketBytes  int64 // payload plus framing for packet records
	ValueRecords int
	TotalBytes   int64
}

// Stats returns the log's composition.
func (l *Log) Stats() Stats {
	var s Stats
	for _, r := range l.Records {
		if r.Kind == KindPacket {
			s.Packets++
			s.PacketBytes += int64(len(r.Payload)) + recordOverhead
		} else {
			s.ValueRecords++
		}
	}
	s.TotalBytes = l.SizeBytes()
	return s
}

var magic = []byte("SANLOG1\n")

// Encode writes the log in its binary on-disk format.
func (l *Log) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	for _, s := range []string{l.Program, l.Machine, l.Profile} {
		if err := writeStr(s); err != nil {
			return err
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(l.Records)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, r := range l.Records {
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		for _, v := range []int64{r.Instr, r.PlayPs} {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		if r.Kind == KindPacket {
			binary.LittleEndian.PutUint64(buf[:], uint64(len(r.Payload)))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
			if _, err := bw.Write(r.Payload); err != nil {
				return err
			}
		} else {
			binary.LittleEndian.PutUint64(buf[:], uint64(r.Value))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a log in the binary format produced by Encode.
func Decode(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("replaylog: reading magic: %w", err)
	}
	if string(got) != string(magic) {
		return nil, fmt.Errorf("replaylog: bad magic %q", got)
	}
	readStr := func() (string, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<20 {
			return "", fmt.Errorf("replaylog: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	l := &Log{}
	var err error
	if l.Program, err = readStr(); err != nil {
		return nil, fmt.Errorf("replaylog: program name: %w", err)
	}
	if l.Machine, err = readStr(); err != nil {
		return nil, fmt.Errorf("replaylog: machine name: %w", err)
	}
	if l.Profile, err = readStr(); err != nil {
		return nil, fmt.Errorf("replaylog: profile name: %w", err)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(buf[:])
	if count > 1<<30 {
		return nil, fmt.Errorf("replaylog: implausible record count %d", count)
	}
	// Cap the preallocation independently of the declared count: a
	// corrupted or hostile header must not be able to demand gigabytes
	// before a single record has parsed. The slice still grows to the
	// real count via append.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	l.Records = make([]Record, 0, capHint)
	for i := uint64(0); i < count; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("replaylog: record %d: %w", i, err)
		}
		var rec Record
		rec.Kind = Kind(kind)
		switch rec.Kind {
		case KindPacket, KindTimeRead, KindRandom:
		default:
			return nil, fmt.Errorf("replaylog: record %d has unknown kind %q", i, kind)
		}
		for _, dst := range []*int64{&rec.Instr, &rec.PlayPs} {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			*dst = int64(binary.LittleEndian.Uint64(buf[:]))
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		if rec.Kind == KindPacket {
			n := binary.LittleEndian.Uint64(buf[:])
			if n > 1<<24 {
				return nil, fmt.Errorf("replaylog: record %d payload too large (%d)", i, n)
			}
			rec.Payload = make([]byte, n)
			if _, err := io.ReadFull(br, rec.Payload); err != nil {
				return nil, err
			}
		} else {
			rec.Value = int64(binary.LittleEndian.Uint64(buf[:]))
		}
		l.Records = append(l.Records, rec)
	}
	// The record count is authoritative: anything after the last record
	// is corruption (or a concatenated second log), not padding.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("replaylog: after last record: %w", err)
		}
		return nil, fmt.Errorf("replaylog: trailing garbage after record %d", count)
	}
	return l, nil
}

// Packets returns only the packet records, in order.
func (l *Log) Packets() []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Kind == KindPacket {
			out = append(out, r)
		}
	}
	return out
}

// Values returns only the value records (time reads and randoms).
func (l *Log) Values() []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Kind != KindPacket {
			out = append(out, r)
		}
	}
	return out
}
